// Package unisched is a research-quality reproduction of "Understanding
// and Optimizing Workloads for Unified Resource Management in Large Cloud
// Platforms" (EuroSys '23): the Optum unified data-center scheduler, the
// baseline schedulers it is evaluated against, a synthetic
// Alibaba-trace-shaped workload generator, a contention-aware cluster
// simulator, and the full characterization and evaluation pipelines behind
// the paper's figures.
//
// The package is a thin, stable facade over the internal implementation.
// Typical use:
//
//	w := unisched.MustGenerateWorkload(unisched.SmallWorkload())
//	c := unisched.NewCluster(w)
//	res := unisched.Simulate(w, c, unisched.NewAlibabaScheduler(c, 1), unisched.SimConfig{})
//	fmt.Println(res.Placed, "pods placed")
//
// To run Optum itself, first build profiles (offline profiling pass), then
// construct the scheduler:
//
//	setup, _ := unisched.NewEvaluation(unisched.QuickEvaluation())
//	evals := unisched.CompareSchedulers(setup, nil)
package unisched

import (
	"io"

	"unisched/internal/analysis"
	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/engine"
	"unisched/internal/experiments"
	"unisched/internal/federation"
	"unisched/internal/journal"
	"unisched/internal/obs"
	"unisched/internal/profiler"
	"unisched/internal/quota"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/trace"
	"unisched/internal/tracedb"
)

// Workload, pod and trace types.
type (
	// Workload is a generated or loaded trace: applications, pods, nodes.
	Workload = trace.Workload
	// WorkloadConfig controls the synthetic generator.
	WorkloadConfig = trace.Config
	// Pod is a single task instance.
	Pod = trace.Pod
	// App is an application (a group of consistent pods).
	App = trace.App
	// Node is a physical host description.
	Node = trace.Node
	// Resources is a (CPU, memory) vector.
	Resources = trace.Resources
	// SLO is a pod's service-level-objective class.
	SLO = trace.SLO
)

// SLO classes.
const (
	SLOUnknown = trace.SLOUnknown
	SLOSystem  = trace.SLOSystem
	SLOVMEnv   = trace.SLOVMEnv
	SLOLSR     = trace.SLOLSR
	SLOLS      = trace.SLOLS
	SLOBE      = trace.SLOBE
)

// DefaultWorkload returns the mid-scale generator configuration.
func DefaultWorkload() WorkloadConfig { return trace.DefaultConfig() }

// SmallWorkload returns a fast configuration for experimentation.
func SmallWorkload() WorkloadConfig { return trace.SmallConfig() }

// GenerateWorkload builds a reproducible synthetic workload.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) { return trace.Generate(cfg) }

// MustGenerateWorkload is GenerateWorkload for known-good configurations.
func MustGenerateWorkload(cfg WorkloadConfig) *Workload { return trace.MustGenerate(cfg) }

// SaveWorkload / LoadWorkload persist workloads as JSON.
func SaveWorkload(path string, w *Workload) error { return trace.SaveFile(path, w) }

// LoadWorkload reads a workload saved by SaveWorkload.
func LoadWorkload(path string) (*Workload, error) { return trace.LoadFile(path) }

// Cluster simulation types.
type (
	// Cluster is the simulated data-center state.
	Cluster = cluster.Cluster
	// NodeSnapshot is a node's 30-second trace record.
	NodeSnapshot = cluster.NodeSnapshot
	// Physics parameterizes the contention model.
	Physics = cluster.Physics
)

// NewCluster builds an empty cluster over the workload's nodes with the
// default contention physics.
func NewCluster(w *Workload) *Cluster {
	return cluster.New(w.Nodes, cluster.DefaultPhysics())
}

// NewClusterWithPhysics builds a cluster with custom contention physics.
func NewClusterWithPhysics(w *Workload, p Physics) *Cluster {
	return cluster.New(w.Nodes, p)
}

// DefaultPhysics returns the tuned contention model.
func DefaultPhysics() Physics { return cluster.DefaultPhysics() }

// Scheduler types.
type (
	// Scheduler places batches of pending pods.
	Scheduler = sched.Scheduler
	// Decision is one pod's placement verdict.
	Decision = sched.Decision
	// OptumScheduler is the paper's contribution.
	OptumScheduler = core.Optum
	// OptumOptions are Optum's tunables.
	OptumOptions = core.Options
	// Profiles bundles the offline profiler outputs Optum consumes.
	Profiles = core.Profiles
)

// DefaultOptumOptions returns the evaluation defaults (omega_o = 0.7,
// omega_b = 0.3, 5 % PPO sampling, 0.8 memory cap).
func DefaultOptumOptions() OptumOptions { return core.DefaultOptions() }

// NewOptum builds the Optum scheduler over a cluster and trained profiles.
func NewOptum(c *Cluster, p Profiles, opt OptumOptions, seed int64) *OptumScheduler {
	return core.New(c, p, opt, seed)
}

// Baseline schedulers from the paper's evaluation.
func NewAlibabaScheduler(c *Cluster, seed int64) Scheduler { return sched.NewAlibabaLike(c, seed) }

// NewBorgScheduler returns the Borg-like baseline.
func NewBorgScheduler(c *Cluster, seed int64) Scheduler { return sched.NewBorgLike(c, seed) }

// NewNSigmaScheduler returns the N-sigma baseline.
func NewNSigmaScheduler(c *Cluster, seed int64) Scheduler { return sched.NewNSigma(c, seed) }

// NewRCScheduler returns the Resource-Central-like baseline.
func NewRCScheduler(c *Cluster, seed int64) Scheduler { return sched.NewRCLike(c, seed) }

// NewMedeaScheduler returns the Medea baseline (ILP for long-running pods).
func NewMedeaScheduler(c *Cluster, seed int64) Scheduler { return sched.NewMedea(c, seed) }

// NewKubeScheduler returns a stock-Kubernetes-profile scheduler built on
// the plugin framework: strict request fit, least-allocated spreading,
// balanced allocation, replica anti-affinity.
func NewKubeScheduler(c *Cluster, seed int64) Scheduler { return sched.NewKubeLike(c, seed) }

// SchedulerFramework re-exports the plugin framework so users can compose
// their own Filter/Score pipelines.
type SchedulerFramework = sched.Framework

// NewSchedulerFramework returns an empty plugin scheduler; chain WithFilter
// and WithScore to configure it.
func NewSchedulerFramework(c *Cluster, label string, seed int64) *SchedulerFramework {
	return sched.NewFramework(c, label, seed)
}

// NewParallelSchedulers bundles several schedulers into the §4.4
// distributed arrangement: each member decides a hash-partition of every
// batch concurrently. Simulate with SimConfig.ConflictResolve set so the
// Deployment Module arbitrates same-host races.
func NewParallelSchedulers(label string, members ...Scheduler) Scheduler {
	return core.NewParallel(label, members...)
}

// Profiling types.
type (
	// Collector is the Tracing Coordinator feed for the offline profilers.
	Collector = profiler.Collector
	// InterferenceModels are the trained per-application profiles.
	InterferenceModels = profiler.Models
)

// NewCollector returns an empty profiling collector.
func NewCollector(seed int64) *Collector { return profiler.NewCollector(seed) }

// TrainProfiles trains interference models from a collector's samples and
// bundles everything Optum needs.
func TrainProfiles(col *Collector) (Profiles, error) {
	models, err := col.TrainInterference(profiler.DefaultFactory(), 0.25)
	if err != nil {
		return Profiles{}, err
	}
	return Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models}, nil
}

// Simulation types.
type (
	// SimConfig controls a trace-driven run.
	SimConfig = sim.Config
	// SimResult aggregates everything one run produces.
	SimResult = sim.Result
	// RetryPolicy tunes displaced-pod rescheduling under fault injection.
	RetryPolicy = sim.RetryPolicy
	// Disruption aggregates a run's failure-handling metrics.
	Disruption = sim.Disruption
)

// Simulate replays the workload on the cluster under the scheduler.
func Simulate(w *Workload, c *Cluster, s Scheduler, cfg SimConfig) *SimResult {
	return sim.Run(w, c, s, cfg)
}

// DefaultRetryPolicy returns the chaos-mode rescheduling configuration.
func DefaultRetryPolicy() RetryPolicy { return sim.DefaultRetryPolicy() }

// Online engine types (the long-running scheduling service; see
// internal/engine and cmd/unischedd).
type (
	// Engine is the event-driven online scheduling service: N parallel
	// scheduler workers over a sharded cluster-state store, a bounded
	// per-SLO priority admission queue, and a virtual-clock event loop.
	Engine = engine.Engine
	// EngineConfig tunes workers, shards, queueing, pacing, and retries.
	EngineConfig = engine.Config
	// EngineSnapshot is the engine's JSON-ready metrics view.
	EngineSnapshot = engine.Snapshot
	// EngineRetryPolicy tunes the engine's re-dispatch of failed pods.
	EngineRetryPolicy = engine.RetryPolicy
	// SchedulerFactory builds one engine worker's scheduler.
	SchedulerFactory = engine.SchedulerFactory
	// EnginePodStatus / EngineNodeStatus are the engine's query views.
	EnginePodStatus  = engine.PodStatus
	EngineNodeStatus = engine.NodeStatus
	// DecisionTrace is one sampled per-pod placement record: stage spans,
	// candidate funnel counts, top-scored hosts, structured rejections, and
	// (under Optum) the Eq. 11 score decomposition. Enable with
	// EngineConfig.TraceEvery; query via Engine.Traces().
	DecisionTrace = obs.DecisionTrace
	// DecisionRecorder is the sampled ring of DecisionTraces.
	DecisionRecorder = obs.Recorder
	// ClusterHistory is the rolling ring of per-tick utilization samples;
	// query via Engine.History().
	ClusterHistory = obs.History
	// ClusterSamplePoint is one history sample with per-SLO running counts.
	ClusterSamplePoint = obs.SamplePoint
)

// Pod-lifecycle tracing (enable with EngineConfig.LifecycleEvery /
// LifecycleBuffer; see DESIGN.md §4k). The recorder stamps every stage of
// a pod's journey — submit, admission, queue wait, sched, commit, journal
// append, fsync — against one monotonic epoch per process, samples full
// per-pod timelines by ID modulus so federated processes sample the same
// pods, and keeps an always-on flight ring that anomaly trips dump to the
// data dir. Query via Engine.Lifecycle() / Federation.Lifecycle().
type (
	// LifecycleRecorder records pod-lifecycle events. A nil recorder is
	// valid and disabled: every method returns immediately.
	LifecycleRecorder = obs.Lifecycle
	// LifecycleEvent is one recorded stage of one pod's journey.
	LifecycleEvent = obs.LifecycleEvent
	// PodLifecycleTimeline is one sampled pod's journey within one process.
	PodLifecycleTimeline = obs.PodTimeline
	// LifecycleTimelineDoc is the wire form of one process's timeline
	// contribution (GET /v1/debug/pods/{id}/timeline).
	LifecycleTimelineDoc = obs.TimelineDoc
	// StitchedTimeline is the coordinator's merged cross-process view.
	StitchedTimeline = obs.StitchedTimeline
	// LifecycleTraceContext is the W3C-style trace context riding the
	// federation JSON API in the Traceparent header.
	LifecycleTraceContext = obs.TraceContext
	// LifecycleFlightDump is the flight recorder's JSON document (anomaly
	// dumps and GET /v1/debug/flight).
	LifecycleFlightDump = obs.FlightDump
	// PlacementLatencySummary is the engine snapshot's end-to-end placement
	// latency block with the per-stage breakdown (EngineSnapshot.E2E).
	PlacementLatencySummary = engine.E2ESummary
)

// TraceParentHeader is the HTTP header carrying the trace context.
const TraceParentHeader = obs.TraceParentHeader

// DeriveLifecycleTraceContext builds the deterministic trace context for
// one pod: the trace ID is a pure function of the pod ID, the span ID of
// (pod ID, role), so every process in a federation derives the same
// trace and contributes a distinct span.
func DeriveLifecycleTraceContext(podID int64, role string) LifecycleTraceContext {
	return obs.DeriveTraceContext(podID, role)
}

// ParseTraceParent parses a Traceparent header value.
func ParseTraceParent(s string) (LifecycleTraceContext, bool) { return obs.ParseTraceParent(s) }

// WriteMergedChromeTrace renders timeline docs from several processes as
// one chrome://tracing / Perfetto document with a stable pid per process.
func WriteMergedChromeTrace(w io.Writer, docs []LifecycleTimelineDoc) error {
	return obs.WriteMergedChromeTrace(w, docs)
}

// Engine submission errors.
var (
	// ErrQueueFull reports a shed submission under backpressure.
	ErrQueueFull = engine.ErrQueueFull
	// ErrEngineClosed reports a submission to a stopped engine.
	ErrEngineClosed = engine.ErrClosed
	// ErrDuplicatePod reports a pod ID the engine already accepted.
	ErrDuplicatePod = engine.ErrDuplicate
)

// NewEngine builds the online scheduling service over a cluster; factory
// constructs one scheduler per worker. Call Start, Submit pods, and Stop.
func NewEngine(c *Cluster, factory SchedulerFactory, cfg EngineConfig) *Engine {
	return engine.New(c, factory, cfg)
}

// Durable engine state (write-ahead placement journal + checkpoints; see
// DESIGN.md §4g).
type (
	// RecoveryStats reports what OpenDurableEngine did at boot: the
	// checkpoint it restored, the journal tail it replayed, corruption it
	// tolerated, and the recovered state hash.
	RecoveryStats = engine.RecoveryStats
	// JournalStats is the journal's live counter snapshot (also exported
	// as unisched_journal_* metrics); EngineSnapshot.Journal carries it.
	JournalStats = journal.Stats
)

// OpenDurableEngine opens (or creates) the journal in cfg.DataDir,
// recovers the engine state recorded there, and returns the engine ready
// to Start. link resolves a recovered pod spec back to its application
// (use Workload.LinkPod). With a fresh directory it behaves like
// NewEngine plus journaling.
func OpenDurableEngine(c *Cluster, factory SchedulerFactory, cfg EngineConfig, link func(*Pod) error) (*Engine, *RecoveryStats, error) {
	return engine.OpenDurable(c, factory, cfg, link)
}

// Federated scale-out (partitioned schedulers under a fit-routing
// coordinator; see DESIGN.md §4j and cmd/unischedd's -federation /
// -partition-index modes).
type (
	// Federation is the coordinator over N partition schedulers, each
	// owning a disjoint shard of the node fleet: submissions route by
	// predicted fit from cheap per-partition digests, rejects spill over
	// with a bounded hop budget, and shard boundaries rebalance online.
	Federation = federation.Coordinator
	// FederationConfig tunes partition count, routing, spillover, and
	// rebalancing; Engine is the per-partition engine template.
	FederationConfig = federation.Config
	// FederationSnapshot is the merged federation-wide metrics view;
	// loadgen and dashboards read it exactly like an EngineSnapshot.
	FederationSnapshot = federation.Snapshot
)

// ErrFederationShed reports a submission no partition could hold within
// the spillover hop budget.
var ErrFederationShed = federation.ErrShed

// NewFederation builds an in-process federation: cfg.Partitions engines,
// each owning the shard of nodes FederationConfig.Assign maps to it
// (default contiguous blocks). Call Start, Submit pods, and Stop.
func NewFederation(nodes []*Node, factory SchedulerFactory, cfg FederationConfig) (*Federation, error) {
	return federation.New(nodes, factory, cfg)
}

// OpenDurableFederation is NewFederation over per-partition journals
// rooted at cfg.DataDir: every partition recovers its own shard and the
// federation-wide state hash is bit-identical across a crash.
func OpenDurableFederation(nodes []*Node, factory SchedulerFactory, cfg FederationConfig) (*Federation, error) {
	return federation.Open(nodes, factory, cfg)
}

// NewRemoteFederation fronts already-running partition daemons
// (cmd/unischedd -partition-index) over their JSON APIs — the
// coordinator behind cmd/unischedd -federation.
func NewRemoteFederation(urls []string, cfg FederationConfig) (*Federation, error) {
	return federation.NewRemote(urls, cfg)
}

// Multi-tenant quota surface (set EngineConfig.Quota to enable; pods carry
// Tenant/Queue attribution).
type (
	// QuotaTree is the hierarchical root → tenant → queue quota tree with
	// guaranteed and max capacity per node and fair-share ordering.
	QuotaTree = quota.Tree
	// QuotaConfig declares the whole tree; TenantConfig and QueueConfig
	// declare one tenant subtree and one leaf queue.
	QuotaConfig  = quota.Config
	TenantConfig = quota.TenantConfig
	QueueConfig  = quota.QueueConfig
	// QuotaTreeSnapshot / QuotaNodeSnapshot are the tree's JSON view with
	// usage, fair shares, and outcome counters at every level.
	QuotaTreeSnapshot = quota.Snapshot
	QuotaNodeSnapshot = quota.NodeSnapshot
)

// Quota admission and CRUD errors.
var (
	// ErrQuotaOverMax reports an admission the engine shed because it
	// would push some quota ancestor over its max.
	ErrQuotaOverMax = quota.ErrOverMax
	// ErrUnknownTenant / ErrUnknownQueue report unresolvable attribution
	// (hard rejects, like unlinked pods).
	ErrUnknownTenant = quota.ErrUnknownTenant
	ErrUnknownQueue  = quota.ErrUnknownQueue
	// ErrTenantInUse reports a tenant deletion while it still holds
	// admitted usage.
	ErrTenantInUse = quota.ErrInUse
	// ErrNoQuota reports a quota operation on a single-tenant engine.
	ErrNoQuota = engine.ErrNoQuota
)

// DefaultQueue is the implicit per-tenant queue used when a pod names none.
const DefaultQueue = quota.DefaultQueue

// NewQuotaTree builds a quota tree to hand to EngineConfig.Quota.
func NewQuotaTree(cfg QuotaConfig) (*QuotaTree, error) { return quota.New(cfg) }

// Fault injection types (set SimConfig.Chaos to enable).
type (
	// ChaosInjector applies deterministic faults to a cluster tick by tick;
	// it also implements the profiler-blackout signal Profiles.Blackout.
	ChaosInjector = chaos.Injector
	// ChaosEvent is one scheduled fault.
	ChaosEvent = chaos.Event
	// ChaosRates drives seeded stochastic fault generation.
	ChaosRates = chaos.Rates
)

// Fault kinds for scheduled ChaosEvents.
const (
	NodeFail      = chaos.NodeFail
	NodeRecover   = chaos.NodeRecover
	NodeDrain     = chaos.NodeDrain
	PodEvict      = chaos.PodEvict
	BlackoutStart = chaos.BlackoutStart
	BlackoutEnd   = chaos.BlackoutEnd
)

// NewChaosInjector builds a fault injector from an explicit schedule (may
// be nil) plus stochastic rates (may be zero).
func NewChaosInjector(seed int64, schedule []ChaosEvent, rates ChaosRates) *ChaosInjector {
	return chaos.NewInjector(seed, schedule, rates)
}

// DefaultChaosRates returns the moderately hostile churn profile.
func DefaultChaosRates() ChaosRates { return chaos.DefaultRates() }

// Sample recording (the Tracing Coordinator's storage backend).
type (
	// SampleWriter appends 30-second node and pod samples as JSON lines;
	// hook its OnTick into SimConfig.OnTick.
	SampleWriter = tracedb.Writer
	// SampleDB is an in-memory view of a recorded sample stream.
	SampleDB = tracedb.DB
)

// NewSampleWriter wraps w for JSONL sample recording.
func NewSampleWriter(w io.Writer) *SampleWriter { return tracedb.NewWriter(w) }

// ReadSamples parses a JSONL stream written by a SampleWriter.
func ReadSamples(r io.Reader) (*SampleDB, error) { return tracedb.Read(r) }

// Characterization (Section 3) surface.
type (
	// SeriesRecorder samples per-pod metric series during a run.
	SeriesRecorder = analysis.SeriesRecorder
	// CorrSummary summarizes per-application correlation distributions.
	CorrSummary = analysis.CorrSummary
)

// NewSeriesRecorder returns a bounded-memory metric recorder; hook its
// OnTick into SimConfig.OnTick.
func NewSeriesRecorder() *SeriesRecorder { return analysis.NewSeriesRecorder() }

// Evaluation (Section 5) surface.
type (
	// Evaluation is the shared context for the paper's evaluation figures.
	Evaluation = experiments.Setup
	// EvaluationScale sizes an evaluation.
	EvaluationScale = experiments.Scale
	// SchedulerEval is one scheduler's Fig. 19/20 row.
	SchedulerEval = experiments.SchedulerEval
)

// QuickEvaluation returns the seconds-scale evaluation configuration.
func QuickEvaluation() EvaluationScale { return experiments.QuickScale() }

// FullEvaluation returns the paper-shaped evaluation configuration.
func FullEvaluation() EvaluationScale { return experiments.FullScale() }

// NewEvaluation generates the workload, replays the production baseline,
// and trains the profiles — the shared context for every evaluation figure.
func NewEvaluation(s EvaluationScale) (*Evaluation, error) { return experiments.NewSetup(s) }

// CompareSchedulers runs Fig. 19/20: every scheduler against the baseline.
// A nil name list runs the full §5.1 lineup.
func CompareSchedulers(e *Evaluation, names []experiments.SchedulerName) []SchedulerEval {
	return experiments.RunEvaluation(e, names)
}

// ChurnEval is one scheduler's row in the fault-injection comparison.
type ChurnEval = experiments.ChurnEval

// CompareUnderChurn replays the workload under identical fault streams for
// each scheduler (default: Optum vs the Alibaba baseline) and summarizes
// disruption handling. Zero rates plus a nil schedule mean DefaultChaosRates.
func CompareUnderChurn(e *Evaluation, schedule []ChaosEvent, rates ChaosRates, names []experiments.SchedulerName) []ChurnEval {
	return experiments.FigChurn(e, schedule, rates, names)
}
