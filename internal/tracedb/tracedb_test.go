package tracedb

import (
	"bytes"
	"strings"
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/trace"
)

func recordRun(t *testing.T) (*bytes.Buffer, *Writer, *trace.Workload) {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = 8
	cfg.Horizon = 1800
	w := trace.MustGenerate(cfg)
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	sim.Run(w, c, sched.NewAlibabaLike(c, 1), sim.Config{OnTick: wr.OnTick})
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf, wr, w
}

func TestWriteReadRoundTrip(t *testing.T) {
	buf, wr, w := recordRun(t)
	if wr.Records() == 0 {
		t.Fatal("nothing recorded")
	}
	db, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	ticks := int(w.Horizon / trace.SampleInterval)
	if len(db.Nodes) != 8*ticks {
		t.Fatalf("node samples = %d, want %d", len(db.Nodes), 8*ticks)
	}
	if len(db.Pods) == 0 {
		t.Fatal("no pod samples")
	}
	if len(db.Nodes)+len(db.Pods) != wr.Records() {
		t.Fatalf("record count mismatch: %d + %d != %d",
			len(db.Nodes), len(db.Pods), wr.Records())
	}
	// Node series are time-ordered and complete.
	ns := db.NodeSeries(3)
	if len(ns) != ticks {
		t.Fatalf("node 3 series length %d", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].T <= ns[i-1].T {
			t.Fatal("node series out of order")
		}
	}
	// App lookups agree with the raw pod records.
	apps := db.Apps()
	if len(apps) == 0 {
		t.Fatal("no apps")
	}
	total := 0
	for _, a := range apps {
		samples := db.AppSamples(a)
		total += len(samples)
		for _, s := range samples {
			if s.App != a {
				t.Fatal("AppSamples returned a foreign sample")
			}
		}
	}
	if total != len(db.Pods) {
		t.Fatalf("app partition covers %d of %d pod samples", total, len(db.Pods))
	}
	// Pod series sanity.
	series := db.PodSeries(db.Pods[0].Pod)
	if len(series) == 0 {
		t.Fatal("empty pod series")
	}
	for _, s := range series {
		if s.PSI60 < 0 || s.PSI60 > 1 || s.CPUUse < 0 {
			t.Fatalf("bad sample: %+v", s)
		}
	}
}

func TestNodeOnlyMode(t *testing.T) {
	cfg := trace.SmallConfig()
	cfg.NumNodes = 4
	cfg.Horizon = 600
	w := trace.MustGenerate(cfg)
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	wr.SamplePods = false
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	sim.Run(w, c, sched.NewAlibabaLike(c, 1), sim.Config{OnTick: wr.OnTick})
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	db, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Pods) != 0 {
		t.Error("pod samples written in node-only mode")
	}
	if len(db.Nodes) == 0 {
		t.Error("no node samples")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json\n",
		`{"kind":"mystery"}` + "\n",
		`{"kind":"node"}` + "\n",
		`{"kind":"pod"}` + "\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Empty stream is a valid, empty DB.
	db, err := Read(strings.NewReader(""))
	if err != nil || len(db.Nodes) != 0 {
		t.Error("empty stream should give an empty DB")
	}
}
