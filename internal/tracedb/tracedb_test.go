package tracedb

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/trace"
)

func recordRun(t *testing.T) (*bytes.Buffer, *Writer, *trace.Workload) {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = 8
	cfg.Horizon = 1800
	w := trace.MustGenerate(cfg)
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	sim.Run(w, c, sched.NewAlibabaLike(c, 1), sim.Config{OnTick: wr.OnTick})
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf, wr, w
}

func TestWriteReadRoundTrip(t *testing.T) {
	buf, wr, w := recordRun(t)
	if wr.Records() == 0 {
		t.Fatal("nothing recorded")
	}
	db, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	ticks := int(w.Horizon / trace.SampleInterval)
	if len(db.Nodes) != 8*ticks {
		t.Fatalf("node samples = %d, want %d", len(db.Nodes), 8*ticks)
	}
	if len(db.Pods) == 0 {
		t.Fatal("no pod samples")
	}
	if len(db.Nodes)+len(db.Pods) != wr.Records() {
		t.Fatalf("record count mismatch: %d + %d != %d",
			len(db.Nodes), len(db.Pods), wr.Records())
	}
	// Node series are time-ordered and complete.
	ns := db.NodeSeries(3)
	if len(ns) != ticks {
		t.Fatalf("node 3 series length %d", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].T <= ns[i-1].T {
			t.Fatal("node series out of order")
		}
	}
	// App lookups agree with the raw pod records.
	apps := db.Apps()
	if len(apps) == 0 {
		t.Fatal("no apps")
	}
	total := 0
	for _, a := range apps {
		samples := db.AppSamples(a)
		total += len(samples)
		for _, s := range samples {
			if s.App != a {
				t.Fatal("AppSamples returned a foreign sample")
			}
		}
	}
	if total != len(db.Pods) {
		t.Fatalf("app partition covers %d of %d pod samples", total, len(db.Pods))
	}
	// Pod series sanity.
	series := db.PodSeries(db.Pods[0].Pod)
	if len(series) == 0 {
		t.Fatal("empty pod series")
	}
	for _, s := range series {
		if s.PSI60 < 0 || s.PSI60 > 1 || s.CPUUse < 0 {
			t.Fatalf("bad sample: %+v", s)
		}
	}
}

func TestNodeOnlyMode(t *testing.T) {
	cfg := trace.SmallConfig()
	cfg.NumNodes = 4
	cfg.Horizon = 600
	w := trace.MustGenerate(cfg)
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	wr.SamplePods = false
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	sim.Run(w, c, sched.NewAlibabaLike(c, 1), sim.Config{OnTick: wr.OnTick})
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	db, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Pods) != 0 {
		t.Error("pod samples written in node-only mode")
	}
	if len(db.Nodes) == 0 {
		t.Error("no node samples")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json\n",
		`{"kind":"mystery"}` + "\n",
		`{"kind":"node"}` + "\n",
		`{"kind":"pod"}` + "\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Empty stream is a valid, empty DB.
	db, err := Read(strings.NewReader(""))
	if err != nil || len(db.Nodes) != 0 {
		t.Error("empty stream should give an empty DB")
	}
}

// TestConcurrentReaders hammers one shared DB from parallel readers; with
// -race this guards the query surface backing concurrent state queries
// (e.g. the online engine's HTTP handlers). Every query method must be
// safe for concurrent use and return consistent views.
func TestConcurrentReaders(t *testing.T) {
	buf, _, _ := recordRun(t)
	db, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	apps := db.Apps()
	if len(apps) == 0 || len(db.Pods) == 0 {
		t.Fatal("empty DB")
	}
	wantApp := make(map[string]int, len(apps))
	for _, a := range apps {
		wantApp[a] = len(db.AppSamples(a))
	}
	wantNode := len(db.NodeSeries(0))
	podID := db.Pods[0].Pod
	wantPod := len(db.PodSeries(podID))

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := apps[(g+i)%len(apps)]
				if got := len(db.AppSamples(a)); got != wantApp[a] {
					errs <- fmt.Sprintf("AppSamples(%s) = %d, want %d", a, got, wantApp[a])
					return
				}
				if got := len(db.NodeSeries(0)); got != wantNode {
					errs <- fmt.Sprintf("NodeSeries(0) = %d, want %d", got, wantNode)
					return
				}
				if got := len(db.PodSeries(podID)); got != wantPod {
					errs <- fmt.Sprintf("PodSeries(%d) = %d, want %d", podID, got, wantPod)
					return
				}
				if got := db.Apps(); len(got) != len(apps) {
					errs <- fmt.Sprintf("Apps() = %d, want %d", len(got), len(apps))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
