// Package tracedb is the Tracing Coordinator's storage backend (§4.1): an
// append-only store of the 30-second node and pod samples a simulation
// produces, serialized as JSON lines so external tooling (pandas, DuckDB,
// jq) can consume them directly. A Reader restores the records and offers
// the per-application series lookups the offline profilers and the
// characterization study need when they run from recorded data instead of
// a live simulation.
package tracedb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"unisched/internal/cluster"
)

// NodeSample is one node's 30-second record.
type NodeSample struct {
	T        int64   `json:"t"`
	Node     int     `json:"node"`
	CPUUsage float64 `json:"cpu_usage"`
	MemUsage float64 `json:"mem_usage"`
	CPUUtil  float64 `json:"cpu_util"`
	MemUtil  float64 `json:"mem_util"`
	Pressure float64 `json:"cpu_pressure"`
	Pods     int     `json:"pods"`
}

// PodSample is one pod's 30-second record, mirroring the "Pod running
// information" block of Fig. 2(a).
type PodSample struct {
	T      int64   `json:"t"`
	Pod    int     `json:"pod"`
	App    string  `json:"app"`
	Node   int     `json:"node"`
	CPUUse float64 `json:"cpu_use"`
	MemUse float64 `json:"mem_use"`
	QPS    float64 `json:"qps,omitempty"`
	RT     float64 `json:"rt,omitempty"`
	PSI10  float64 `json:"cpu_psi10"`
	PSI60  float64 `json:"cpu_psi60"`
	PSI300 float64 `json:"cpu_psi300"`
}

// record is the on-disk envelope: exactly one of Node or Pod is set.
type record struct {
	Kind string      `json:"kind"`
	Node *NodeSample `json:"node_sample,omitempty"`
	Pod  *PodSample  `json:"pod_sample,omitempty"`
}

// Writer appends samples as JSON lines. It is not safe for concurrent use;
// the simulation tick is single-threaded.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	// SamplePods controls whether per-pod records are written (they
	// dominate the volume); node records are always written.
	SamplePods bool
	n          int
}

// NewWriter wraps w. Close-like flushing is the caller's responsibility
// via Flush.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Writer{bw: bw, enc: json.NewEncoder(bw), SamplePods: true}
}

// Records returns how many records have been written.
func (w *Writer) Records() int { return w.n }

// OnTick is a sim.Config.OnTick hook that records every snapshot.
func (w *Writer) OnTick(t int64, snaps []cluster.NodeSnapshot) {
	for i := range snaps {
		if err := w.WriteSnapshot(&snaps[i]); err != nil {
			// An append-only trace sink has no recovery path mid-run;
			// surface loudly rather than silently truncating data.
			panic(fmt.Sprintf("tracedb: write failed: %v", err))
		}
	}
}

// WriteSnapshot appends one node snapshot (and its pods' records when
// SamplePods is set).
func (w *Writer) WriteSnapshot(s *cluster.NodeSnapshot) error {
	ns := &NodeSample{
		T: s.T, Node: s.Node.Node.ID,
		CPUUsage: s.Usage.CPU, MemUsage: s.Usage.Mem,
		CPUUtil: s.CPUUtil(), MemUtil: s.MemUtil(),
		Pressure: s.CPUPressure, Pods: len(s.Pods),
	}
	if err := w.enc.Encode(record{Kind: "node", Node: ns}); err != nil {
		return err
	}
	w.n++
	if !w.SamplePods {
		return nil
	}
	for i := range s.Pods {
		p := &s.Pods[i]
		ps := &PodSample{
			T: p.T, Pod: p.Pod.Pod.ID, App: p.Pod.Pod.AppID, Node: s.Node.Node.ID,
			CPUUse: p.CPUUse, MemUse: p.MemUse, QPS: p.QPS, RT: p.RT,
			PSI10: p.CPUPSI10, PSI60: p.CPUPSI60, PSI300: p.CPUPSI300,
		}
		if err := w.enc.Encode(record{Kind: "pod", Pod: ps}); err != nil {
			return err
		}
		w.n++
	}
	return nil
}

// Flush drains buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// DB is an in-memory view of a recorded sample stream with the query
// surface the analysis pipeline needs.
type DB struct {
	Nodes []NodeSample
	Pods  []PodSample

	byApp map[string][]int // indexes into Pods
}

// Read parses a JSONL stream written by Writer.
func Read(r io.Reader) (*DB, error) {
	db := &DB{byApp: make(map[string][]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("tracedb: line %d: %w", line, err)
		}
		switch rec.Kind {
		case "node":
			if rec.Node == nil {
				return nil, fmt.Errorf("tracedb: line %d: node record without sample", line)
			}
			db.Nodes = append(db.Nodes, *rec.Node)
		case "pod":
			if rec.Pod == nil {
				return nil, fmt.Errorf("tracedb: line %d: pod record without sample", line)
			}
			db.byApp[rec.Pod.App] = append(db.byApp[rec.Pod.App], len(db.Pods))
			db.Pods = append(db.Pods, *rec.Pod)
		default:
			return nil, fmt.Errorf("tracedb: line %d: unknown kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracedb: %w", err)
	}
	return db, nil
}

// ReadFile loads a JSONL file.
func ReadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracedb: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Apps returns the applications with pod samples.
func (db *DB) Apps() []string {
	out := make([]string, 0, len(db.byApp))
	for app := range db.byApp {
		out = append(out, app)
	}
	return out
}

// AppSamples returns the pod samples of one application, in record order.
func (db *DB) AppSamples(app string) []PodSample {
	idx := db.byApp[app]
	out := make([]PodSample, len(idx))
	for i, k := range idx {
		out[i] = db.Pods[k]
	}
	return out
}

// PodSeries returns one pod's samples in time order (records are appended
// tick by tick, so record order is time order).
func (db *DB) PodSeries(podID int) []PodSample {
	var out []PodSample
	for _, p := range db.Pods {
		if p.Pod == podID {
			out = append(out, p)
		}
	}
	return out
}

// NodeSeries returns one node's samples in time order.
func (db *DB) NodeSeries(nodeID int) []NodeSample {
	var out []NodeSample
	for _, n := range db.Nodes {
		if n.Node == nodeID {
			out = append(out, n)
		}
	}
	return out
}
