package journal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed reports an append to a closed journal.
var ErrClosed = errors.New("journal: closed")

// Journal is the append side of the write-ahead log. One goroutine may
// call WriteCheckpoint concurrently with appends from many goroutines;
// LSNs are assigned under the journal lock, so append order in the log is
// exactly the order callers observed their LSNs.
type Journal struct {
	cfg Config

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	segIdx   int
	segBytes int64
	lastLSN  uint64
	dirty    bool
	closed   bool
	err      error // sticky first I/O error
	scratch  []byte
	// segLast maps a closed segment index to the last LSN it holds, so
	// checkpoint GC can drop segments fully covered by a checkpoint.
	segLast map[int]uint64
	// onSync, when set, observes every completed fsync: upTo is the LSN
	// watermark the sync made durable, start/dur the fsync's wall window.
	// Called under the journal lock — it must be fast and must not call
	// back into the journal. Lifecycle tracing uses it to close
	// fsync-wait spans for placed pods.
	onSync func(upTo uint64, start time.Time, dur time.Duration)

	records     atomic.Int64
	bytes       atomic.Int64
	fsyncs      atomic.Int64
	segments    atomic.Int64
	checkpoints atomic.Int64
	hist        fsyncHist

	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Open recovers whatever the directory holds (newest valid checkpoint,
// replayable log tail, torn-tail truncation) and returns a journal
// appending to a fresh segment after the recovered tail. The caller
// replays Recovered before appending new records.
func Open(cfg Config) (*Journal, *Recovered, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, nil, errors.New("journal: Config.Dir required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rec, segLast, maxSeg, err := scanDir(cfg.Dir, cfg.KeepCheckpoints)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{
		cfg:     cfg,
		segIdx:  maxSeg + 1,
		segLast: segLast,
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	j.lastLSN = rec.lastLSN
	if rec.CheckpointLSN > j.lastLSN {
		j.lastLSN = rec.CheckpointLSN
	}
	if err := j.openSegment(); err != nil {
		return nil, nil, err
	}
	go j.flusher()
	return j, rec, nil
}

func segmentPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", idx))
}

func checkpointPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%020d.ckpt", lsn))
}

// openSegment starts segment j.segIdx; the caller holds mu (or is the only
// goroutine with a reference).
func (j *Journal) openSegment() error {
	f, err := os.OpenFile(segmentPath(j.cfg.Dir, j.segIdx), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriterSize(f, 1<<16)
	j.segBytes = 0
	j.segments.Add(1)
	return nil
}

// Append writes one record and returns its LSN. The record is durable only
// after the next group fsync (or Sync). Appends after an I/O error return
// that error without writing.
func (j *Journal) Append(op Op, t, a, b, c int64, blob []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	if j.err != nil {
		return 0, j.err
	}
	r := Record{Op: op, LSN: j.lastLSN + 1, Time: t, A: a, B: b, C: c, Blob: blob}
	j.scratch = appendFrame(j.scratch[:0], &r)
	if j.segBytes > 0 && j.segBytes+int64(len(j.scratch)) > j.cfg.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.err = err
			return 0, err
		}
	}
	if _, err := j.w.Write(j.scratch); err != nil {
		j.err = err
		return 0, err
	}
	j.lastLSN = r.LSN
	j.segBytes += int64(len(j.scratch))
	j.dirty = true
	j.records.Add(1)
	j.bytes.Add(int64(len(j.scratch)))
	return r.LSN, nil
}

// rotateLocked seals the current segment (flush + fsync + close) and opens
// the next one. Caller holds mu.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.segLast[j.segIdx] = j.lastLSN
	j.segIdx++
	return j.openSegment()
}

// syncLocked flushes the buffer and fsyncs the current segment. Caller
// holds mu.
func (j *Journal) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	t0 := time.Now()
	if err := j.f.Sync(); err != nil {
		return err
	}
	dur := time.Since(t0)
	j.hist.observe(dur)
	j.fsyncs.Add(1)
	j.dirty = false
	if j.onSync != nil {
		j.onSync(j.lastLSN, t0, dur)
	}
	return nil
}

// SetOnSync installs the fsync observer (see the field's contract: it
// runs under the journal lock and must not re-enter the journal). Set it
// before concurrent appends begin.
func (j *Journal) SetOnSync(fn func(upTo uint64, start time.Time, dur time.Duration)) {
	j.mu.Lock()
	j.onSync = fn
	j.mu.Unlock()
}

// Sync forces an immediate flush + fsync of all appended records.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.err != nil {
		return j.err
	}
	if err := j.syncLocked(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// flusher is the group-commit loop: every FsyncEvery it fsyncs whatever
// accumulated, so appenders never wait on the disk.
func (j *Journal) flusher() {
	defer close(j.done)
	tk := time.NewTicker(j.cfg.FsyncEvery)
	defer tk.Stop()
	for {
		select {
		case <-j.stopCh:
			return
		case <-tk.C:
			j.mu.Lock()
			if j.dirty && j.err == nil && !j.closed {
				if err := j.syncLocked(); err != nil {
					j.err = err
				}
			}
			j.mu.Unlock()
		}
	}
}

// LastLSN returns the LSN of the most recently appended record (0 if
// none). With appenders quiesced it is the exact cut point for a
// checkpoint.
func (j *Journal) LastLSN() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastLSN
}

// WriteCheckpoint durably replaces the newest checkpoint with payload,
// which must reflect every record with LSN <= lsn and none after. The file
// appears atomically (write to temp, fsync, rename, fsync dir); old
// checkpoints beyond KeepCheckpoints and the segments they fully cover are
// then garbage-collected.
func (j *Journal) WriteCheckpoint(lsn uint64, payload []byte) error {
	dir := j.cfg.Dir
	final := checkpointPath(dir, lsn)
	tmp := final + ".tmp"
	buf := encodeCheckpoint(lsn, payload)
	if err := writeFileSync(tmp, buf); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	j.checkpoints.Add(1)
	j.gc()
	return nil
}

// gc prunes checkpoints beyond KeepCheckpoints and deletes sealed segments
// whose every record is covered by the oldest kept checkpoint.
func (j *Journal) gc() {
	lsns, err := listCheckpoints(j.cfg.Dir)
	if err != nil || len(lsns) == 0 {
		return
	}
	// lsns sorted descending; drop everything past KeepCheckpoints.
	keep := lsns
	if len(keep) > j.cfg.KeepCheckpoints {
		for _, l := range keep[j.cfg.KeepCheckpoints:] {
			os.Remove(checkpointPath(j.cfg.Dir, l))
		}
		keep = keep[:j.cfg.KeepCheckpoints]
	}
	minKept := keep[len(keep)-1]
	j.mu.Lock()
	for idx, last := range j.segLast {
		if idx != j.segIdx && last <= minKept {
			os.Remove(segmentPath(j.cfg.Dir, idx))
			delete(j.segLast, idx)
		}
	}
	j.mu.Unlock()
}

// Close stops the flusher, fsyncs the tail, and closes the segment. It
// does not write a checkpoint; graceful shutdown cuts one first, a crash
// simulation skips straight here.
func (j *Journal) Close() error {
	j.stopOnce.Do(func() { close(j.stopCh) })
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	if j.err == nil {
		j.err = func() error {
			if err := j.w.Flush(); err != nil {
				return err
			}
			if err := j.f.Sync(); err != nil {
				return err
			}
			return nil
		}()
	}
	if cerr := j.f.Close(); j.err == nil && cerr != nil {
		j.err = cerr
	}
	if j.err != nil {
		return j.err
	}
	return nil
}

// Err returns the sticky I/O error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	last := j.lastLSN
	j.mu.Unlock()
	return Stats{
		Records:     j.records.Load(),
		Bytes:       j.bytes.Load(),
		Fsyncs:      j.fsyncs.Load(),
		Segments:    j.segments.Load(),
		Checkpoints: j.checkpoints.Load(),
		LastLSN:     last,
		FsyncMeanMs: 1000 * j.hist.mean(),
		FsyncP99Ms:  1000 * j.hist.quantile(0.99),
	}
}

// FsyncHistogram exports the fsync-latency histogram in cumulative
// Prometheus form (finite bounds in seconds, cumulative counts, sum in
// seconds, total observations).
func (j *Journal) FsyncHistogram() (bounds []float64, cum []int64, sum float64, total int64) {
	return j.hist.export()
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// listCheckpoints returns checkpoint LSNs present in dir, newest first.
func listCheckpoints(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, ent := range ents {
		var lsn uint64
		if n, _ := fmt.Sscanf(ent.Name(), "checkpoint-%d.ckpt", &lsn); n == 1 &&
			ent.Name() == fmt.Sprintf("checkpoint-%020d.ckpt", lsn) {
			out = append(out, lsn)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i] > out[k] })
	return out, nil
}
