// Package journal is the engine's durability layer: an append-only,
// checksummed, fsync-batched write-ahead log of engine events with segment
// rotation, plus atomically-replaced checkpoint files that serialize the
// full engine state at a known log position.
//
// The contract with the engine (internal/engine/durability.go):
//
//   - Every state mutation appends one Record before (or atomically with)
//     the mutation; records carry a strictly increasing LSN assigned by the
//     single writer.
//   - A checkpoint taken at LSN L reflects every record with LSN <= L and
//     none after it; recovery = restore the newest valid checkpoint, then
//     replay the log tail (LSN > L) in order.
//   - Corruption policy: the log is truncated at the first bad checksum or
//     non-monotone LSN (a torn tail from a crash mid-write loses only
//     unsynced records); corrupt checkpoints are skipped in favor of the
//     next-older valid one.
//
// Appends are buffered and fsynced in groups on a short timer (group
// commit), so a crash can lose up to one fsync interval of acknowledged
// records. The engine's clients recover those via idempotent resubmission:
// replayed pod IDs the journal already knows are deduplicated.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync/atomic"
	"time"
)

// Op identifies one record type. Values are stable on-disk identifiers;
// never renumber.
type Op uint8

// Record types. The semantics (fields A, B, C and the blob) belong to the
// engine; the journal only frames and checksums them.
const (
	// OpAccept admits one pod: A = pod ID, blob = pod spec JSON.
	OpAccept Op = 1 + iota
	// OpShed rolls an accept back: A = pod ID, B = 0 shed under
	// backpressure, B = 1 rejected (engine closed).
	OpShed
	// OpPlace commits one placement: A = pod ID, B = node ID.
	OpPlace
	// OpRemove removes a running pod: A = pod ID, B = outcome (engine
	// codes), C = retry-release time for requeued pods.
	OpRemove
	// OpFail parks a pod after a failed scheduling attempt: A = pod ID,
	// B = reason, C = retry-release time.
	OpFail
	// OpTick advances the virtual clock: A = the new virtual now.
	OpTick
	// OpNodePhase records a node lifecycle transition: A = node ID,
	// B = the new phase.
	OpNodePhase
	// OpQuota records a quota-tree configuration change: A = the quota op
	// (engine codes: set-tenant, delete-tenant), blob = the operand JSON.
	OpQuota
	// OpReject withdraws an accepted pod the scheduler found no capacity
	// for (federation fail-fast): A = pod ID, B = reason.
	OpReject
)

var opNames = [...]string{"?", "accept", "shed", "place", "remove", "fail", "tick", "node-phase", "quota", "reject"}

// String names the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "?"
}

// Record is one journal entry. A, B, C and Blob are opaque to the journal.
type Record struct {
	Op   Op
	LSN  uint64
	Time int64
	A    int64
	B    int64
	C    int64
	Blob []byte
}

// Frame layout: u32 payload length | u32 CRC32-C of the payload | payload.
// Payload: op u8 | lsn u64 | time i64 | a i64 | b i64 | c i64 | blob.
// All integers little-endian.
const (
	frameHeaderLen  = 8
	payloadFixedLen = 1 + 8 + 8 + 8 + 8 + 8
	// maxRecordLen bounds one payload; anything larger during recovery is
	// treated as corruption.
	maxRecordLen = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes r as one checksummed frame appended to buf.
func appendFrame(buf []byte, r *Record) []byte {
	pl := payloadFixedLen + len(r.Blob)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderLen+pl)...)
	p := buf[start+frameHeaderLen:]
	p[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(p[1:], r.LSN)
	binary.LittleEndian.PutUint64(p[9:], uint64(r.Time))
	binary.LittleEndian.PutUint64(p[17:], uint64(r.A))
	binary.LittleEndian.PutUint64(p[25:], uint64(r.B))
	binary.LittleEndian.PutUint64(p[33:], uint64(r.C))
	copy(p[payloadFixedLen:], r.Blob)
	binary.LittleEndian.PutUint32(buf[start:], uint32(pl))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(p, castagnoli))
	return buf
}

// decodePayload decodes one checksum-verified payload into a Record. The
// blob is copied out of the scan buffer.
func decodePayload(p []byte) (Record, error) {
	if len(p) < payloadFixedLen {
		return Record{}, fmt.Errorf("journal: short payload (%d bytes)", len(p))
	}
	r := Record{
		Op:   Op(p[0]),
		LSN:  binary.LittleEndian.Uint64(p[1:]),
		Time: int64(binary.LittleEndian.Uint64(p[9:])),
		A:    int64(binary.LittleEndian.Uint64(p[17:])),
		B:    int64(binary.LittleEndian.Uint64(p[25:])),
		C:    int64(binary.LittleEndian.Uint64(p[33:])),
	}
	if len(p) > payloadFixedLen {
		r.Blob = append([]byte(nil), p[payloadFixedLen:]...)
	}
	return r, nil
}

// Config tunes the journal.
type Config struct {
	// Dir is the journal directory; created if absent.
	Dir string
	// SegmentBytes rotates the log once a segment exceeds this size
	// (default 8 MiB).
	SegmentBytes int64
	// FsyncEvery is the group-commit interval: buffered appends are
	// flushed and fsynced together on this cadence (default 10ms).
	FsyncEvery time.Duration
	// KeepCheckpoints retains this many newest checkpoint files
	// (default 2); older checkpoints and the segments they cover are
	// garbage-collected.
	KeepCheckpoints int
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 10 * time.Millisecond
	}
	if c.KeepCheckpoints <= 0 {
		c.KeepCheckpoints = 2
	}
	return c
}

// Stats is a point-in-time snapshot of the journal's counters.
type Stats struct {
	Records     int64   `json:"records"`
	Bytes       int64   `json:"bytes"`
	Fsyncs      int64   `json:"fsyncs"`
	Segments    int64   `json:"segments"`
	Checkpoints int64   `json:"checkpoints"`
	LastLSN     uint64  `json:"last_lsn"`
	FsyncMeanMs float64 `json:"fsync_mean_ms"`
	FsyncP99Ms  float64 `json:"fsync_p99_ms"`
}

// fsyncBuckets are log-scale fsync-latency bucket bounds: 1µs doubling per
// bucket, 20 buckets (~524ms top finite bound).
const (
	fsyncBase    = 1000 // 1µs in ns
	fsyncBuckets = 20
)

// fsyncHist is a lock-free log-scale latency histogram for fsync calls,
// exportable in cumulative Prometheus form.
type fsyncHist struct {
	buckets [fsyncBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // ns
}

func (h *fsyncHist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := 0
	for bound := int64(fsyncBase); b < fsyncBuckets-1 && ns > bound; b++ {
		bound *= 2
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Export snapshots the histogram in cumulative Prometheus form: finite
// bucket upper bounds in seconds, cumulative counts, total sum in seconds,
// and the total count.
func (h *fsyncHist) export() (bounds []float64, cum []int64, sum float64, total int64) {
	bounds = make([]float64, fsyncBuckets-1)
	cum = make([]int64, fsyncBuckets-1)
	bound := int64(fsyncBase)
	var seen int64
	for b := 0; b < fsyncBuckets-1; b++ {
		seen += h.buckets[b].Load()
		bounds[b] = float64(bound) / 1e9
		cum[b] = seen
		bound *= 2
	}
	total = seen + h.buckets[fsyncBuckets-1].Load()
	return bounds, cum, float64(h.sum.Load()) / 1e9, total
}

func (h *fsyncHist) mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n) / 1e9
}

// quantile interpolates the q-quantile in seconds (log-linear within the
// containing bucket), mirroring the engine's decision histogram.
func (h *fsyncHist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen int64
	bound := int64(fsyncBase)
	for b := 0; b < fsyncBuckets; b++ {
		n := h.buckets[b].Load()
		if float64(seen+n) >= rank && n > 0 {
			frac := (rank - float64(seen)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			if b == 0 {
				return float64(bound) * frac / 1e9
			}
			lower := float64(bound) / 2
			return lower * math.Pow(2, frac) / 1e9
		}
		seen += n
		if b < fsyncBuckets-1 {
			bound *= 2
		}
	}
	return float64(bound) / 1e9
}
