package journal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, cfg Config) (*Journal, *Recovered) {
	t.Helper()
	j, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := openT(t, Config{Dir: dir})
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	blob := []byte(`{"id":7}`)
	for i := 1; i <= 100; i++ {
		lsn, err := j.Append(OpAccept, int64(i*30), int64(i), 2, 3, blob)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, rec2 := openT(t, Config{Dir: dir})
	defer j2.Close()
	if len(rec2.Records) != 100 {
		t.Fatalf("recovered %d records, want 100", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		want := Record{Op: OpAccept, LSN: uint64(i + 1), Time: int64((i + 1) * 30), A: int64(i + 1), B: 2, C: 3}
		if r.Op != want.Op || r.LSN != want.LSN || r.Time != want.Time || r.A != want.A || r.B != want.B || r.C != want.C {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
		if string(r.Blob) != string(blob) {
			t.Fatalf("record %d blob = %q", i, r.Blob)
		}
	}
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("clean log reports %d truncated bytes", rec2.TruncatedBytes)
	}
	// New appends continue the LSN sequence.
	lsn, err := j2.Append(OpTick, 0, 30, 0, 0, nil)
	if err != nil || lsn != 101 {
		t.Fatalf("post-recovery append lsn = %d, err %v; want 101", lsn, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Config{Dir: dir, SegmentBytes: 256})
	for i := 0; i < 100; i++ {
		if _, err := j.Append(OpTick, int64(i), int64(i), 0, 0, nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	_, rec := openT(t, Config{Dir: dir})
	if len(rec.Records) != 100 {
		t.Fatalf("recovered %d records across segments, want 100", len(rec.Records))
	}
	if len(rec.Segments) < 3 {
		t.Fatalf("Segments reports %d, want >= 3", len(rec.Segments))
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Config{Dir: dir})
	for i := 1; i <= 10; i++ {
		j.Append(OpTick, int64(i), int64(i), 0, 0, nil)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	seg := segmentPath(dir, 0)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := len(buf) / 10
	// Corrupt one byte inside record 8's payload, and append torn garbage.
	buf[7*frame+frameHeaderLen+3] ^= 0xff
	buf = append(buf, 0xde, 0xad)
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, Config{Dir: dir})
	defer j2.Close()
	if len(rec.Records) != 7 {
		t.Fatalf("recovered %d records after corruption at record 8, want 7", len(rec.Records))
	}
	if rec.TruncatedBytes != int64(3*frame+2) {
		t.Fatalf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, 3*frame+2)
	}
	if fi, _ := os.Stat(seg); fi.Size() != int64(7*frame) {
		t.Fatalf("segment not truncated: %d bytes, want %d", fi.Size(), 7*frame)
	}
	// The journal must keep assigning LSNs after the surviving tail.
	if lsn, _ := j2.Append(OpTick, 0, 0, 0, 0, nil); lsn != 8 {
		t.Fatalf("post-truncation lsn = %d, want 8", lsn)
	}
}

func TestCorruptionInEarlierSegmentDropsLaterOnes(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Config{Dir: dir, SegmentBytes: 128})
	for i := 1; i <= 30; i++ {
		j.Append(OpTick, int64(i), int64(i), 0, 0, nil)
	}
	j.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Wreck the first record of the second segment.
	buf, _ := os.ReadFile(segs[1])
	buf[frameHeaderLen] ^= 0xff
	os.WriteFile(segs[1], buf, 0o644)

	j2, rec := openT(t, Config{Dir: dir})
	defer j2.Close()
	want := rec.Segments[0].Records
	if len(rec.Records) != want {
		t.Fatalf("recovered %d records, want only segment 0's %d", len(rec.Records), want)
	}
	for _, s := range segs[2:] {
		if _, err := os.Stat(s); !os.IsNotExist(err) {
			t.Fatalf("segment %s after corruption point not deleted", s)
		}
	}
}

func TestCheckpointSelectionAndFallback(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Config{Dir: dir})
	for i := 1; i <= 20; i++ {
		j.Append(OpTick, int64(i), int64(i), 0, 0, nil)
	}
	j.Sync()
	if err := j.WriteCheckpoint(10, []byte(`{"at":10}`)); err != nil {
		t.Fatalf("checkpoint 10: %v", err)
	}
	if err := j.WriteCheckpoint(20, []byte(`{"at":20}`)); err != nil {
		t.Fatalf("checkpoint 20: %v", err)
	}
	j.Close()

	// Newest valid checkpoint wins; tail is records > 20 (none).
	_, rec := openT(t, Config{Dir: dir})
	if rec.CheckpointLSN != 20 || string(rec.Checkpoint) != `{"at":20}` {
		t.Fatalf("recovered checkpoint lsn %d payload %q", rec.CheckpointLSN, rec.Checkpoint)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("tail has %d records, want 0", len(rec.Records))
	}

	// Corrupt the newest checkpoint: recovery falls back to LSN 10 and
	// replays records 11..20.
	buf, _ := os.ReadFile(checkpointPath(dir, 20))
	buf[len(buf)-1] ^= 0xff
	os.WriteFile(checkpointPath(dir, 20), buf, 0o644)
	_, rec2 := openT(t, Config{Dir: dir})
	if rec2.CheckpointLSN != 10 || string(rec2.Checkpoint) != `{"at":10}` {
		t.Fatalf("fallback checkpoint lsn %d payload %q", rec2.CheckpointLSN, rec2.Checkpoint)
	}
	if rec2.CorruptCheckpoints != 1 {
		t.Fatalf("CorruptCheckpoints = %d, want 1", rec2.CorruptCheckpoints)
	}
	if len(rec2.Records) != 10 || rec2.Records[0].LSN != 11 {
		t.Fatalf("tail after fallback: %d records, first LSN %d; want 10 from 11",
			len(rec2.Records), rec2.Records[0].LSN)
	}
}

func TestCheckpointGCDropsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Config{Dir: dir, SegmentBytes: 128, KeepCheckpoints: 2})
	for i := 1; i <= 60; i++ {
		j.Append(OpTick, int64(i), int64(i), 0, 0, nil)
	}
	j.Sync()
	j.WriteCheckpoint(20, []byte("a"))
	j.WriteCheckpoint(40, []byte("b"))
	j.WriteCheckpoint(60, []byte("c"))

	lsns, _ := listCheckpoints(dir)
	if len(lsns) != 2 || lsns[0] != 60 || lsns[1] != 40 {
		t.Fatalf("kept checkpoints %v, want [60 40]", lsns)
	}
	// Segments whose last record <= 40 must be gone; tail after 40 must
	// survive for replay on top of the older kept checkpoint.
	_, rec := openT(t, Config{Dir: dir})
	for _, s := range rec.Segments {
		if s.LastLSN <= 40 {
			t.Fatalf("segment %d (last LSN %d) should have been GCed", s.Index, s.LastLSN)
		}
	}
	if rec.CheckpointLSN != 60 {
		t.Fatalf("recovered checkpoint %d, want 60", rec.CheckpointLSN)
	}
	j.Close()
}

func TestGroupCommitFsyncs(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Config{Dir: dir, FsyncEvery: time.Millisecond})
	j.Append(OpTick, 0, 1, 0, 0, nil)
	deadline := time.Now().Add(2 * time.Second)
	for j.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never fsynced a dirty journal")
		}
		time.Sleep(time.Millisecond)
	}
	st := j.Stats()
	if st.Records != 1 || st.LastLSN != 1 || st.Bytes == 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := j.Append(OpTick, 0, 2, 0, 0, nil); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}
