package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SegmentInfo describes one scanned log segment.
type SegmentInfo struct {
	Index    int
	FirstLSN uint64
	LastLSN  uint64
	Records  int
}

// Recovered is what Open found on disk: the newest valid checkpoint and
// the log tail to replay on top of it.
type Recovered struct {
	// CheckpointLSN is the log position the checkpoint reflects (0 = no
	// checkpoint; replay starts from the beginning of the log).
	CheckpointLSN uint64
	// Checkpoint is the checkpoint payload (nil if none).
	Checkpoint []byte
	// Records is the replayable tail: every valid record with
	// LSN > CheckpointLSN, in LSN order.
	Records []Record
	// TruncatedBytes counts bytes cut from the log tail at the first bad
	// checksum or non-monotone LSN (a torn write from the crash).
	TruncatedBytes int64
	// CorruptCheckpoints counts checkpoint files that failed validation
	// and were skipped (and removed) in favor of an older one.
	CorruptCheckpoints int
	// Segments describes the surviving segments, ascending.
	Segments []SegmentInfo

	lastLSN uint64
}

// checkpoint file layout: magic "UJCK" | version u32 | lsn u64 |
// payload length u32 | CRC32-C of payload u32 | payload.
var ckptMagic = [4]byte{'U', 'J', 'C', 'K'}

const ckptVersion = 1
const ckptHeaderLen = 4 + 4 + 8 + 4 + 4

func encodeCheckpoint(lsn uint64, payload []byte) []byte {
	buf := make([]byte, ckptHeaderLen+len(payload))
	copy(buf, ckptMagic[:])
	binary.LittleEndian.PutUint32(buf[4:], ckptVersion)
	binary.LittleEndian.PutUint64(buf[8:], lsn)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:], crc32.Checksum(payload, castagnoli))
	copy(buf[ckptHeaderLen:], payload)
	return buf
}

func decodeCheckpoint(buf []byte) (lsn uint64, payload []byte, err error) {
	if len(buf) < ckptHeaderLen {
		return 0, nil, fmt.Errorf("journal: checkpoint too short (%d bytes)", len(buf))
	}
	if [4]byte(buf[:4]) != ckptMagic {
		return 0, nil, fmt.Errorf("journal: bad checkpoint magic")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != ckptVersion {
		return 0, nil, fmt.Errorf("journal: unsupported checkpoint version %d", v)
	}
	lsn = binary.LittleEndian.Uint64(buf[8:])
	n := binary.LittleEndian.Uint32(buf[16:])
	crc := binary.LittleEndian.Uint32(buf[20:])
	payload = buf[ckptHeaderLen:]
	if uint32(len(payload)) != n {
		return 0, nil, fmt.Errorf("journal: checkpoint length mismatch (%d != %d)", len(payload), n)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, fmt.Errorf("journal: checkpoint checksum mismatch")
	}
	return lsn, payload, nil
}

// scanDir loads the newest valid checkpoint, scans every segment in index
// order validating checksums and LSN continuity, truncates the log at the
// first corruption, and returns the replayable tail. segLast maps each
// surviving segment to its final LSN (for checkpoint GC); maxSeg is the
// highest segment index seen (even if corrupt), so the writer never reuses
// a name.
func scanDir(dir string, keepCheckpoints int) (rec *Recovered, segLast map[int]uint64, maxSeg int, err error) {
	rec = &Recovered{}
	segLast = make(map[int]uint64)
	maxSeg = -1

	// Checkpoints, newest first: first valid one wins, corrupt ones are
	// removed so the next boot doesn't re-validate them.
	lsns, err := listCheckpoints(dir)
	if err != nil {
		return nil, nil, -1, fmt.Errorf("journal: %w", err)
	}
	for _, lsn := range lsns {
		if rec.Checkpoint != nil {
			continue
		}
		path := checkpointPath(dir, lsn)
		buf, rerr := os.ReadFile(path)
		if rerr == nil {
			if l, payload, derr := decodeCheckpoint(buf); derr == nil && l == lsn {
				rec.CheckpointLSN = l
				rec.Checkpoint = payload
				continue
			}
		}
		rec.CorruptCheckpoints++
		os.Remove(path)
	}
	os.Remove(filepath.Join(dir, "checkpoint.tmp")) // pre-rename leftover

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, -1, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, ent := range ents {
		var idx int
		if n, _ := fmt.Sscanf(ent.Name(), "wal-%d.seg", &idx); n == 1 &&
			ent.Name() == fmt.Sprintf("wal-%08d.seg", idx) {
			segs = append(segs, idx)
			if idx > maxSeg {
				maxSeg = idx
			}
		}
		if filepath.Ext(ent.Name()) == ".tmp" {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
	sort.Ints(segs)

	var prevLSN uint64
	corrupt := false
	for _, idx := range segs {
		path := segmentPath(dir, idx)
		if corrupt {
			// Everything after the first corruption is unreachable tail.
			if fi, e := os.Stat(path); e == nil {
				rec.TruncatedBytes += fi.Size()
			}
			os.Remove(path)
			continue
		}
		info, truncAt, serr := scanSegment(path, &prevLSN, rec)
		if serr != nil {
			return nil, nil, -1, serr
		}
		if truncAt >= 0 {
			// Torn tail: cut the file at the first bad frame and stop
			// trusting anything later.
			if fi, e := os.Stat(path); e == nil {
				rec.TruncatedBytes += fi.Size() - truncAt
			}
			if info.Records == 0 && truncAt == 0 {
				os.Remove(path)
			} else if e := os.Truncate(path, truncAt); e != nil {
				return nil, nil, -1, fmt.Errorf("journal: truncate %s: %w", path, e)
			}
			corrupt = true
		}
		if info.Records > 0 {
			rec.Segments = append(rec.Segments, info)
			segLast[idx] = info.LastLSN
			rec.lastLSN = info.LastLSN
		} else if truncAt < 0 {
			// Empty but intact segment (crash right after rotation).
			os.Remove(path)
		}
	}
	return rec, segLast, maxSeg, nil
}

// scanSegment reads one segment sequentially. Valid records with
// LSN > rec.CheckpointLSN are appended to rec.Records. It returns the
// byte offset at which the file must be truncated (-1 if the whole file is
// valid). prevLSN carries LSN continuity across segments: after the first
// record seen, every record must be exactly prev+1.
func scanSegment(path string, prevLSN *uint64, rec *Recovered) (SegmentInfo, int64, error) {
	var idx int
	fmt.Sscanf(filepath.Base(path), "wal-%d.seg", &idx)
	info := SegmentInfo{Index: idx}

	f, err := os.Open(path)
	if err != nil {
		return info, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	var off int64
	hdr := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		n, rerr := io.ReadFull(f, hdr)
		if rerr == io.EOF {
			return info, -1, nil // clean end
		}
		if rerr != nil {
			return info, off, nil // torn header
		}
		_ = n
		pl := binary.LittleEndian.Uint32(hdr)
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if pl < payloadFixedLen || pl > maxRecordLen {
			return info, off, nil // garbage length
		}
		if int(pl) > cap(payload) {
			payload = make([]byte, pl)
		}
		payload = payload[:pl]
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			return info, off, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return info, off, nil // checksum mismatch
		}
		r, derr := decodePayload(payload)
		if derr != nil {
			return info, off, nil
		}
		if *prevLSN != 0 && r.LSN != *prevLSN+1 {
			return info, off, nil // non-monotone LSN
		}
		*prevLSN = r.LSN
		if info.Records == 0 {
			info.FirstLSN = r.LSN
		}
		info.Records++
		info.LastLSN = r.LSN
		if r.LSN > rec.CheckpointLSN {
			rec.Records = append(rec.Records, r)
		}
		off += int64(frameHeaderLen) + int64(pl)
	}
}
