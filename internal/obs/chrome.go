package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace-event (the "Trace Event Format" JSON
// array form understood by chrome://tracing and Perfetto). Durations are
// "complete" events (ph "X") with microsecond ts/dur.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders decision traces as a Chrome trace-event JSON
// array: one top-level "decision" slice per pod spanning the whole
// attempt, with nested per-stage slices beneath it. Each pod gets its own
// thread row so concurrent worker activity lays out as parallel lanes.
func WriteChromeTrace(w io.Writer, traces []DecisionTrace) error {
	events := make([]chromeEvent, 0, len(traces)*4)
	for _, dt := range traces {
		args := map[string]any{
			"pod":     dt.PodID,
			"app":     dt.App,
			"slo":     dt.SLO,
			"outcome": dt.Outcome,
			"node":    dt.Node,
			"score":   dt.Score,
		}
		if dt.Reason != "" {
			args["reason"] = dt.Reason
		}
		if len(dt.Rejections) > 0 {
			rej := make([]map[string]any, 0, len(dt.Rejections))
			for _, r := range dt.Rejections {
				rej = append(rej, map[string]any{
					"stage": r.Stage, "reason": r.Reason, "count": r.Count,
				})
			}
			args["rejections"] = rej
		}
		if dt.Eq11 != nil {
			args["eq11"] = dt.Eq11
		}
		events = append(events, chromeEvent{
			Name: "decision",
			Cat:  "scheduler",
			Ph:   "X",
			TS:   float64(dt.StartNs) / 1e3,
			Dur:  float64(dt.TotalNs) / 1e3,
			PID:  1,
			TID:  dt.PodID,
			Args: args,
		})
		for _, sp := range dt.Spans {
			events = append(events, chromeEvent{
				Name: sp.Stage,
				Cat:  "stage",
				Ph:   "X",
				TS:   float64(sp.StartNs) / 1e3,
				Dur:  float64(sp.DurNs) / 1e3,
				PID:  1,
				TID:  dt.PodID,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
