package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// chromeEvent is one Chrome trace-event (the "Trace Event Format" JSON
// array form understood by chrome://tracing and Perfetto). Durations are
// "complete" events (ph "X") with microsecond ts/dur; metadata events
// (ph "M") name the process/thread rows.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// processNameEvent labels a pid row so merged multi-process traces show
// process names instead of bare pids.
func processNameEvent(pid int, name string) chromeEvent {
	return chromeEvent{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name}}
}

func threadNameEvent(pid int, tid int64, name string) chromeEvent {
	return chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name}}
}

// WriteChromeTrace renders decision traces as a Chrome trace-event JSON
// array: one top-level "decision" slice per pod spanning the whole
// attempt, with nested per-stage slices beneath it. Each pod gets its own
// thread row so concurrent worker activity lays out as parallel lanes.
func WriteChromeTrace(w io.Writer, traces []DecisionTrace) error {
	events := make([]chromeEvent, 0, len(traces)*4+1)
	events = append(events, processNameEvent(1, "unisched scheduler"))
	named := make(map[int64]bool, len(traces))
	for _, dt := range traces {
		if tid := int64(dt.PodID); !named[tid] {
			named[tid] = true
			events = append(events, threadNameEvent(1, tid, fmt.Sprintf("pod %d", dt.PodID)))
		}
		args := map[string]any{
			"pod":     dt.PodID,
			"app":     dt.App,
			"slo":     dt.SLO,
			"outcome": dt.Outcome,
			"node":    dt.Node,
			"score":   dt.Score,
		}
		if dt.Reason != "" {
			args["reason"] = dt.Reason
		}
		if len(dt.Rejections) > 0 {
			rej := make([]map[string]any, 0, len(dt.Rejections))
			for _, r := range dt.Rejections {
				rej = append(rej, map[string]any{
					"stage": r.Stage, "reason": r.Reason, "count": r.Count,
				})
			}
			args["rejections"] = rej
		}
		if dt.Eq11 != nil {
			args["eq11"] = dt.Eq11
		}
		events = append(events, chromeEvent{
			Name: "decision",
			Cat:  "scheduler",
			Ph:   "X",
			TS:   float64(dt.StartNs) / 1e3,
			Dur:  float64(dt.TotalNs) / 1e3,
			PID:  1,
			TID:  int64(dt.PodID),
			Args: args,
		})
		for _, sp := range dt.Spans {
			events = append(events, chromeEvent{
				Name: sp.Stage,
				Cat:  "stage",
				Ph:   "X",
				TS:   float64(sp.StartNs) / 1e3,
				Dur:  float64(sp.DurNs) / 1e3,
				PID:  1,
				TID:  int64(dt.PodID),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// ChromePID maps a process role to its stable Chrome-trace pid: the
// coordinator is always pid 1 and partition i pid i+2, so repeated
// exports of the same federation line up row-for-row.
func ChromePID(process string) int {
	if process == "coordinator" {
		return 1
	}
	if rest, ok := strings.CutPrefix(process, "partition-"); ok {
		if i, err := strconv.Atoi(rest); err == nil && i >= 0 {
			return i + 2
		}
	}
	return 0 // unknown; caller assigns
}

// WriteMergedChromeTrace renders per-process timeline docs (one
// coordinator + N partitions, same pod) as a single multi-process Chrome
// trace. Each process keeps a stable pid (ChromePID) labelled by a
// process_name metadata event; event timestamps are re-anchored to the
// earliest process epoch via each doc's EpochUnixNs so cross-process
// spans align on one axis.
func WriteMergedChromeTrace(w io.Writer, docs []TimelineDoc) error {
	var t0 int64
	for i, d := range docs {
		if i == 0 || d.EpochUnixNs < t0 {
			t0 = d.EpochUnixNs
		}
	}
	events := make([]chromeEvent, 0, 16)
	nextPID := 1000
	for _, d := range docs {
		pid := ChromePID(d.Process)
		if pid == 0 {
			pid = nextPID
			nextPID++
		}
		name := d.Process
		if name == "" {
			name = fmt.Sprintf("process %d", pid)
		}
		events = append(events, processNameEvent(pid, name))
		named := make(map[int64]bool, 4)
		base := d.EpochUnixNs - t0
		for _, ev := range d.Events {
			if !named[ev.PodID] {
				named[ev.PodID] = true
				events = append(events, threadNameEvent(pid, ev.PodID, fmt.Sprintf("pod %d", ev.PodID)))
			}
			args := map[string]any{"pod": ev.PodID}
			if ev.Lane != "" {
				args["lane"] = ev.Lane
			}
			if ev.Attempt > 0 {
				args["attempt"] = ev.Attempt
			}
			if ev.Detail != "" {
				args["detail"] = ev.Detail
			}
			if d.Trace != "" {
				args["trace"] = d.Trace
			}
			events = append(events, chromeEvent{
				Name: ev.Stage,
				Cat:  "lifecycle",
				Ph:   "X",
				TS:   float64(base+ev.StartNs) / 1e3,
				Dur:  float64(ev.DurNs) / 1e3,
				PID:  pid,
				TID:  ev.PodID,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
