// Package obs is the observability layer: decision tracing, Prometheus
// text exposition, and rolling cluster telemetry. It answers the two
// questions an operator of a running scheduler actually asks — "why did
// pod X land on host Y (or fail to land anywhere)?" and "what did the
// cluster look like over the last hour?" — without rerunning a
// simulation.
//
// The package deliberately depends on nothing but the standard library:
// the pipeline, the schedulers, and the engine all feed it, so it must
// sit below every one of them in the import graph.
//
// Design invariant: when tracing is off the hot path pays nothing. A nil
// *Recorder is a valid, fully-disabled recorder (every method is
// nil-receiver safe), and a recorder with sampling rate 0 rejects
// decisions with one atomic load and no allocation. Only the sampled
// path — a small fixed fraction of decisions — allocates a trace record
// and takes the ring-buffer lock.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TopK bounds how many scored hosts a decision trace retains, best first.
const TopK = 8

// Span is one pipeline stage of a single scheduling decision: the stage
// name, its start offset from the decision's start, and its duration.
type Span struct {
	Stage   string `json:"stage"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// ScoredHost is one admitted candidate and its score.
type ScoredHost struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// Rejection is a structured reason for one group of rejected candidates:
// which stage rejected them, why, and how many.
type Rejection struct {
	Stage  string `json:"stage"`
	Reason string `json:"reason"`
	Count  int    `json:"count"`
}

// Eq11 decomposes Optum's Node-Selector score (paper Eq. 11) for the
// chosen host: score = util - omegaO*ls - omegaB*be. In the default delta
// form UtilTerm is the placement-induced change of the joint-utilization
// objective and the degradation terms are increases over the host's
// pre-placement level.
type Eq11 struct {
	// UtilTerm is the (joint CPUxmem) utilization term of the score.
	UtilTerm float64 `json:"util_term"`
	// LSDegradation and BEDegradation are the unweighted interference
	// sums; the score subtracts OmegaO*LS + OmegaB*BE.
	LSDegradation float64 `json:"ls_degradation"`
	BEDegradation float64 `json:"be_degradation"`
	OmegaO        float64 `json:"omega_o"`
	OmegaB        float64 `json:"omega_b"`
	// Score is UtilTerm - OmegaO*LSDegradation - OmegaB*BEDegradation.
	Score float64 `json:"score"`
	// Degraded marks a pod scored under the request-based fallback (no
	// trained models, or an active profiler blackout): no prediction
	// terms exist for it.
	Degraded bool `json:"degraded,omitempty"`
	// Summary cache counters at trace time (cumulative per scheduler):
	// prediction-summary hits, O(1) appends, and full rebuilds.
	SummaryHits     int64 `json:"summary_hits"`
	SummaryAppends  int64 `json:"summary_appends"`
	SummaryRebuilds int64 `json:"summary_rebuilds"`
}

// DecisionTrace records one scheduling attempt for one pod as it moved
// through the placement pipeline. Instances are created by
// Recorder.Start, filled by the pipeline on its own goroutine, published
// with Recorder.Commit, and from then on amended only through the
// recorder (which serializes against readers).
type DecisionTrace struct {
	// Seq is the global decision-attempt sequence number at sampling
	// time; two traces of the same pod (retries) differ in Seq.
	Seq uint64 `json:"seq"`

	PodID int    `json:"pod_id"`
	App   string `json:"app,omitempty"`
	SLO   string `json:"slo,omitempty"`

	// Now is the virtual clock (seconds) of the attempt; filled by the
	// engine at commit time, 0 on the batch-sim path.
	Now int64 `json:"now"`
	// StartNs is the wall-clock start, nanoseconds since the recorder's
	// epoch; TotalNs the end-to-end attempt duration.
	StartNs int64 `json:"start_ns"`
	TotalNs int64 `json:"total_ns"`

	// Outcome: "placed", "preempt-placed", "failed", and after the
	// engine's commit stage possibly "conflict-placed",
	// "conflict-rejected", or "stale-rejected".
	Outcome string `json:"outcome"`
	// Node is the chosen host (-1 when the pod stayed pending) and Score
	// its winning score.
	Node   int     `json:"node"`
	Score  float64 `json:"score"`
	Reason string  `json:"reason,omitempty"`

	// Candidate accounting through the stages: the affinity-filtered
	// universe, the post-sampler scan set, nodes pruned wholesale via
	// headroom buckets, nodes the filters actually visited, and nodes
	// that were admitted and scored.
	Candidates int `json:"candidates"`
	Sampled    int `json:"sampled"`
	Pruned     int `json:"pruned"`
	Visited    int `json:"visited"`
	Scored     int `json:"scored"`

	Spans      []Span       `json:"spans"`
	Top        []ScoredHost `json:"top,omitempty"`
	Rejections []Rejection  `json:"rejections,omitempty"`
	Eq11       *Eq11        `json:"eq11,omitempty"`

	start time.Time
}

// SpanFrom appends a stage span that started at t0 and took d, with the
// offset computed against the decision's start.
func (dt *DecisionTrace) SpanFrom(stage string, t0 time.Time, d time.Duration) {
	dt.Spans = append(dt.Spans, Span{Stage: stage, StartNs: t0.Sub(dt.start).Nanoseconds(), DurNs: d.Nanoseconds()})
}

// Reject records one rejected candidate group; zero counts are dropped.
func (dt *DecisionTrace) Reject(stage, reason string, count int) {
	if count <= 0 {
		return
	}
	dt.Rejections = append(dt.Rejections, Rejection{Stage: stage, Reason: reason, Count: count})
}

// NoteScore offers one admitted candidate to the trace's top-K list
// (kept sorted, best first, within the slice's fixed capacity).
func (dt *DecisionTrace) NoteScore(id int, score float64) {
	i := len(dt.Top)
	for i > 0 && (score > dt.Top[i-1].Score || (score == dt.Top[i-1].Score && id < dt.Top[i-1].Node)) {
		i--
	}
	if i >= TopK {
		return
	}
	if len(dt.Top) < TopK {
		dt.Top = append(dt.Top, ScoredHost{})
	}
	copy(dt.Top[i+1:], dt.Top[i:])
	dt.Top[i] = ScoredHost{Node: id, Score: score}
}

// clone deep-copies the trace for handing to readers.
func (dt *DecisionTrace) clone() DecisionTrace {
	out := *dt
	out.Spans = append([]Span(nil), dt.Spans...)
	out.Top = append([]ScoredHost(nil), dt.Top...)
	out.Rejections = append([]Rejection(nil), dt.Rejections...)
	if dt.Eq11 != nil {
		e := *dt.Eq11
		out.Eq11 = &e
	}
	return out
}

// Recorder is the sampled decision-trace store: a fixed-size ring buffer
// of the most recent sampled traces plus a per-pod index for point
// queries. All mutation after Commit goes through the recorder so
// concurrent readers always observe consistent traces.
type Recorder struct {
	every atomic.Int64  // sample 1 in every; 0 disables
	seq   atomic.Uint64 // decision-attempt counter (drives sampling)

	started   atomic.Int64 // traces created by Start
	committed atomic.Int64 // traces published by Commit

	epoch time.Time

	mu    sync.Mutex
	ring  []*DecisionTrace
	next  int
	total int64 // traces ever committed into the ring
	byPod map[int][]*DecisionTrace
}

// NewRecorder builds a recorder retaining up to capacity sampled traces,
// sampling one of every `every` decisions (1 traces everything, 0
// disables).
func NewRecorder(capacity, every int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	r := &Recorder{
		epoch: time.Now(),
		ring:  make([]*DecisionTrace, 0, capacity),
		byPod: make(map[int][]*DecisionTrace),
	}
	r.every.Store(int64(every))
	return r
}

// SetSampleEvery retunes the sampling rate at runtime (0 disables).
func (r *Recorder) SetSampleEvery(every int) {
	if r != nil {
		r.every.Store(int64(every))
	}
}

// Enabled reports whether any decision could currently be sampled.
func (r *Recorder) Enabled() bool { return r != nil && r.every.Load() > 0 }

// Start begins a trace for one scheduling attempt, or returns nil when
// the attempt is not sampled. The fast path is one atomic load (rate 0)
// or one load plus one increment; only sampled attempts allocate.
func (r *Recorder) Start(podID int, app, slo string) *DecisionTrace {
	if r == nil {
		return nil
	}
	ev := r.every.Load()
	if ev <= 0 {
		return nil
	}
	n := r.seq.Add(1)
	if n%uint64(ev) != 0 {
		return nil
	}
	r.started.Add(1)
	now := time.Now()
	return &DecisionTrace{
		Seq:     n,
		PodID:   podID,
		App:     app,
		SLO:     slo,
		StartNs: now.Sub(r.epoch).Nanoseconds(),
		Node:    -1,
		start:   now,
		Spans:   make([]Span, 0, 8),
		Top:     make([]ScoredHost, 0, TopK),
	}
}

// Commit finalizes the trace's duration and publishes it into the ring,
// evicting the oldest trace when full. nil traces are ignored.
func (r *Recorder) Commit(dt *DecisionTrace) {
	if r == nil || dt == nil {
		return
	}
	dt.TotalNs = time.Since(dt.start).Nanoseconds()
	r.committed.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, dt)
	} else {
		old := r.ring[r.next]
		r.unindex(old)
		r.ring[r.next] = dt
		r.next = (r.next + 1) % cap(r.ring)
	}
	r.byPod[dt.PodID] = append(r.byPod[dt.PodID], dt)
}

// unindex removes an evicted trace from the per-pod index. Caller holds mu.
func (r *Recorder) unindex(old *DecisionTrace) {
	lst := r.byPod[old.PodID]
	for i, dt := range lst {
		if dt == old {
			lst = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	if len(lst) == 0 {
		delete(r.byPod, old.PodID)
	} else {
		r.byPod[old.PodID] = lst
	}
}

// Amend mutates a committed trace under the recorder lock, so concurrent
// readers never observe a half-written amendment. The engine uses it for
// the commit/conflict stage and Optum for the Eq. 11 breakdown.
func (r *Recorder) Amend(dt *DecisionTrace, fn func(*DecisionTrace)) {
	if r == nil || dt == nil || fn == nil {
		return
	}
	r.mu.Lock()
	fn(dt)
	r.mu.Unlock()
}

// Counts reports how many traces were started and committed — equal on a
// quiescent recorder; a gap means a scheduler lost a record.
func (r *Recorder) Counts() (started, committed int64) {
	if r == nil {
		return 0, 0
	}
	return r.started.Load(), r.committed.Load()
}

// Len returns the number of traces currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Total returns the number of traces ever committed (retained or
// evicted).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// ByPod returns copies of every retained trace for one pod, oldest
// first.
func (r *Recorder) ByPod(podID int) []DecisionTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	lst := r.byPod[podID]
	out := make([]DecisionTrace, 0, len(lst))
	for _, dt := range lst {
		out = append(out, dt.clone())
	}
	return out
}

// Last returns copies of up to n of the most recent traces, newest
// first, optionally filtered by outcome. outcome "failed" matches every
// non-placed outcome ("failed", "conflict-rejected", "stale-rejected");
// any other non-empty outcome matches exactly.
func (r *Recorder) Last(n int, outcome string) []DecisionTrace {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DecisionTrace, 0, n)
	for i := 0; i < len(r.ring) && len(out) < n; i++ {
		// Newest-first: walk backwards from the slot before next.
		idx := r.next - 1 - i
		for idx < 0 {
			idx += len(r.ring)
		}
		dt := r.ring[idx%len(r.ring)]
		if !matchOutcome(dt.Outcome, outcome) {
			continue
		}
		out = append(out, dt.clone())
	}
	return out
}

func matchOutcome(got, want string) bool {
	if want == "" {
		return true
	}
	if want == "failed" {
		return got == "failed" || got == "conflict-rejected" || got == "stale-rejected"
	}
	return got == want
}

// All returns copies of every retained trace, oldest first — the
// exporter path.
func (r *Recorder) All() []DecisionTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DecisionTrace, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		idx := (r.next + i) % len(r.ring)
		out = append(out, r.ring[idx].clone())
	}
	return out
}
