package obs

import "sync"

// maxClasses bounds the per-class running-count array so samples can be
// fixed-size structs (no per-record allocation).
const maxClasses = 8

// ClusterSample is one point of the rolling cluster time series:
// allocation (requested/capacity), usage (actual/capacity), the
// over-commitment ratio (requested/usage where usage > 0), and how many
// pods of each workload class are running.
type ClusterSample struct {
	T             int64             `json:"t"`
	UpNodes       int               `json:"up_nodes"`
	CPUAlloc      float64           `json:"cpu_alloc"`
	MemAlloc      float64           `json:"mem_alloc"`
	CPUUtil       float64           `json:"cpu_util"`
	MemUtil       float64           `json:"mem_util"`
	CPUOverCommit float64           `json:"cpu_overcommit"`
	Violation     float64           `json:"violation"`
	Running       [maxClasses]int64 `json:"-"`
}

// SamplePoint is the query-time view of a ClusterSample with the running
// counts expanded to a class-name map (built only when serving reads, so
// the record path stays allocation-free).
type SamplePoint struct {
	T             int64            `json:"t"`
	UpNodes       int              `json:"up_nodes"`
	CPUAlloc      float64          `json:"cpu_alloc"`
	MemAlloc      float64          `json:"mem_alloc"`
	CPUUtil       float64          `json:"cpu_util"`
	MemUtil       float64          `json:"mem_util"`
	CPUOverCommit float64          `json:"cpu_overcommit"`
	Violation     float64          `json:"violation"`
	Running       map[string]int64 `json:"running_by_slo"`
}

// History is a fixed-capacity ring of cluster samples. Record is called
// from the engine tick loop and performs no allocation: the sample is
// copied into a preallocated slot. Readers take the same mutex but only
// at query time.
type History struct {
	mu      sync.Mutex
	classes []string
	ring    []ClusterSample
	next    int
	n       int
	total   int64
}

// NewHistory builds a ring holding up to capacity samples. classes names
// the per-class running-count slots (at most maxClasses are kept; the
// engine passes the SLO names).
func NewHistory(capacity int, classes []string) *History {
	if capacity <= 0 {
		capacity = 2880 // 24h of 30s samples
	}
	if len(classes) > maxClasses {
		classes = classes[:maxClasses]
	}
	cs := make([]string, len(classes))
	copy(cs, classes)
	return &History{
		classes: cs,
		ring:    make([]ClusterSample, capacity),
	}
}

// Record copies s into the ring, evicting the oldest sample when full.
// Nil-receiver safe so callers can leave history unconfigured.
func (h *History) Record(s ClusterSample) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ring[h.next] = s
	h.next = (h.next + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
	h.total++
	h.mu.Unlock()
}

// Len reports how many samples are retained.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Total reports how many samples were ever recorded.
func (h *History) Total() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Classes returns the per-class slot names.
func (h *History) Classes() []string {
	if h == nil {
		return nil
	}
	out := make([]string, len(h.classes))
	copy(out, h.classes)
	return out
}

// Samples returns the retained window oldest-first, with running counts
// expanded to class-name maps.
func (h *History) Samples() []SamplePoint {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]SamplePoint, 0, h.n)
	start := h.next - h.n
	if start < 0 {
		start += len(h.ring)
	}
	for i := 0; i < h.n; i++ {
		out = append(out, h.point(h.ring[(start+i)%len(h.ring)]))
	}
	return out
}

// Last returns the most recent sample, or false when empty.
func (h *History) Last() (SamplePoint, bool) {
	if h == nil {
		return SamplePoint{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return SamplePoint{}, false
	}
	idx := h.next - 1
	if idx < 0 {
		idx += len(h.ring)
	}
	return h.point(h.ring[idx]), true
}

func (h *History) point(s ClusterSample) SamplePoint {
	running := make(map[string]int64, len(h.classes))
	for i, name := range h.classes {
		running[name] = s.Running[i]
	}
	return SamplePoint{
		T:             s.T,
		UpNodes:       s.UpNodes,
		CPUAlloc:      s.CPUAlloc,
		MemAlloc:      s.MemAlloc,
		CPUUtil:       s.CPUUtil,
		MemUtil:       s.MemUtil,
		CPUOverCommit: s.CPUOverCommit,
		Violation:     s.Violation,
		Running:       running,
	}
}
