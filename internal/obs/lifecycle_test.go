package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestDeriveTraceContextDeterministic(t *testing.T) {
	a := DeriveTraceContext(42, "coordinator")
	b := DeriveTraceContext(42, "coordinator")
	if a != b {
		t.Fatal("same pod+role derived different contexts")
	}
	c := DeriveTraceContext(42, "partition-0")
	if a.TraceID != c.TraceID {
		t.Error("same pod derived different trace IDs across roles")
	}
	if a.SpanID == c.SpanID {
		t.Error("different roles derived the same span ID")
	}
	d := DeriveTraceContext(43, "coordinator")
	if a.TraceID == d.TraceID {
		t.Error("different pods derived the same trace ID")
	}
	if !a.Valid() {
		t.Error("derived context invalid")
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tc := DeriveTraceContext(7, "coordinator")
	s := tc.String()
	if len(s) != 55 || !strings.HasPrefix(s, "00-") || !strings.HasSuffix(s, "-01") {
		t.Fatalf("traceparent %q not in W3C form", s)
	}
	got, ok := ParseTraceParent(s)
	if !ok {
		t.Fatalf("own traceparent %q failed to parse", s)
	}
	if got != tc {
		t.Fatalf("round trip mangled context: %v -> %v", tc, got)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	valid := DeriveTraceContext(7, "x").String()
	bad := []string{
		"",
		"00-short",
		strings.Replace(valid, "-", "_", 1),
		"00-" + strings.Repeat("0", 32) + "-" + valid[36:52] + "-01", // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + "-01",                 // zero span ID
		"00-" + strings.Repeat("g", 32) + "-" + valid[36:52] + "-01", // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent accepted %q", s)
		}
	}
}

func TestLatencyHistQuantilesAndExport(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram reported nonzero stats")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	if h.Count() != 1010 {
		t.Fatalf("count %d, want 1010", h.Count())
	}
	p50, p999 := h.Quantile(0.50), h.Quantile(0.999)
	if p50 < 0.0005 || p50 > 0.002 {
		t.Errorf("p50 %.6fs, want ~1ms", p50)
	}
	if p999 < 0.5 || p999 > 2 {
		t.Errorf("p99.9 %.6fs, want ~1s", p999)
	}
	if p50 > p999 {
		t.Errorf("p50 %.6f above p99.9 %.6f", p50, p999)
	}
	mean := h.Mean()
	want := (1000*0.001 + 10*1.0) / 1010
	if mean < want*0.99 || mean > want*1.01 {
		t.Errorf("mean %.6fs, want ~%.6fs", mean, want)
	}

	bounds, cum, sum, total := h.Export()
	if len(bounds) != len(cum) || len(bounds) != latencyBuckets-1 {
		t.Fatalf("export geometry: %d bounds, %d cum", len(bounds), len(cum))
	}
	if total != 1010 {
		t.Errorf("export total %d, want 1010", total)
	}
	if sum < want*1010*0.99 || sum > want*1010*1.01 {
		t.Errorf("export sum %.3f, want ~%.3f", sum, want*1010)
	}
	prev := int64(0)
	for i, c := range cum {
		if c < prev {
			t.Fatalf("bucket %d count %d below predecessor %d", i, c, prev)
		}
		if i > 0 && bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing at %d", i)
		}
		prev = c
	}
	if cum[len(cum)-1] > total {
		t.Errorf("last finite bucket %d above total %d", cum[len(cum)-1], total)
	}
}

func TestLifecycleSamplingModulus(t *testing.T) {
	l := NewLifecycle(64, 10, "engine")
	if !l.Sampled(0) || !l.Sampled(20) || l.Sampled(7) {
		t.Error("modulus sampling wrong")
	}
	flightOnly := NewLifecycle(64, 0, "engine")
	if flightOnly.Sampled(0) {
		t.Error("every=0 sampled a pod")
	}
	var nilL *Lifecycle
	if nilL.Sampled(0) || nilL.On() {
		t.Error("nil recorder claims to be live")
	}
}

// TestLifecycleNilSafety calls every method on a disabled (nil) recorder;
// the zero-cost-when-off contract is that none of them panic or record.
func TestLifecycleNilSafety(t *testing.T) {
	var l *Lifecycle
	now := time.Now()
	l.SetContext(1, DeriveTraceContext(1, "x"))
	l.Submitted(1, "ls", now, now)
	l.Shed(1, "r", now)
	l.Dequeued(1, "ls", now)
	l.SchedAttempt(1, 0, now, 0, 0, "")
	l.Committed(1, 0, now, 0, "placed")
	l.Retried(1, 1, "r", now)
	l.Rejected(1, "r", now)
	l.Placed(1, 0, now, 0)
	l.FsyncCovered(1, now, 0)
	l.Routed(1, 0, now, now)
	l.Spilled(1, 0, "r", now)
	if l.StageHistogram(StagePlaced) != nil {
		t.Error("nil recorder returned a histogram")
	}
	if _, ok := l.Timeline(1); ok {
		t.Error("nil recorder returned a timeline")
	}
	if _, ok := l.TimelineDoc(1); ok {
		t.Error("nil recorder returned a timeline doc")
	}
	if l.Total() != 0 || l.LastFsyncNanos() != 0 || l.FlightEvents(0, now) != nil {
		t.Error("nil recorder reported recorded state")
	}
	if err := l.WriteFlight(&bytes.Buffer{}, time.Second, "r", ""); err == nil {
		t.Error("nil recorder wrote a flight dump")
	}
}

func TestLifecycleTimelineOrderingAndStages(t *testing.T) {
	l := NewLifecycle(256, 1, "engine")
	base := l.Epoch()
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }

	l.Submitted(5, "ls", at(0), at(1))
	l.Dequeued(5, "ls", at(10))
	l.SchedAttempt(5, 0, at(10), 2*time.Millisecond, time.Millisecond, "")
	l.Committed(5, 0, at(12), time.Millisecond, "placed")
	l.Placed(5, 3, at(13), 42)
	l.FsyncCovered(42, at(14), time.Millisecond)

	tl, ok := l.Timeline(5)
	if !ok {
		t.Fatal("sampled pod has no timeline")
	}
	var stages []string
	for _, ev := range tl.Events {
		stages = append(stages, ev.Stage)
	}
	// Events sort by start offset: the placed span starts at submit time
	// (it covers the whole journey), so it sorts with the submit marker.
	want := []string{StageSubmit, StageAdmission, StagePlaced, StageQueueWait, StageSched, StageCommit, StageJournalAppend, StageFsyncWait}
	if len(stages) != len(want) {
		t.Fatalf("stages %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage[%d] = %q, want %q (all: %v)", i, stages[i], want[i], stages)
		}
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].StartNs < tl.Events[i-1].StartNs {
			t.Fatalf("events not start-ordered: %+v", tl.Events)
		}
	}
	// The placed span covers the whole journey.
	var placed LifecycleEvent
	for _, ev := range tl.Events {
		if ev.Stage == StagePlaced {
			placed = ev
		}
	}
	if placed.DurNs < (13 * time.Millisecond).Nanoseconds() {
		t.Errorf("placed span %dns, want >= 13ms", placed.DurNs)
	}
	// Stage histograms observed one sample each.
	for _, st := range []string{StagePlaced, StageQueueWait, StageSched, StageCommit, StageFsyncWait} {
		if n := l.StageHistogram(st).Count(); n != 1 {
			t.Errorf("stage %q histogram count %d, want 1", st, n)
		}
	}
}

func TestLifecycleFsyncWatchSweep(t *testing.T) {
	l := NewLifecycle(64, 1, "engine")
	now := time.Now()
	l.Submitted(1, "ls", now, now)
	l.Submitted(2, "ls", now, now)
	l.Placed(1, 0, now, 10)
	l.Placed(2, 0, now, 20)
	l.FsyncCovered(15, now, time.Millisecond)
	if n := l.StageHistogram(StageFsyncWait).Count(); n != 1 {
		t.Fatalf("fsync at LSN 15 released %d watches, want 1 (pod at LSN 10)", n)
	}
	if _, ok := l.Timeline(2); !ok {
		t.Fatal("pod 2 timeline missing")
	}
	l.FsyncCovered(25, now, time.Millisecond)
	if n := l.StageHistogram(StageFsyncWait).Count(); n != 2 {
		t.Fatalf("second fsync left count %d, want 2", n)
	}
	if l.LastFsyncNanos() != time.Millisecond.Nanoseconds() {
		t.Errorf("LastFsyncNanos %d, want 1ms", l.LastFsyncNanos())
	}
}

func TestLifecycleSetContextAdoptsUpstream(t *testing.T) {
	l := NewLifecycle(64, 1, "partition-0")
	up := DeriveTraceContext(9, "coordinator")
	l.SetContext(9, up)
	l.Submitted(9, "ls", time.Now(), time.Now())
	doc, ok := l.TimelineDoc(9)
	if !ok {
		t.Fatal("no timeline doc")
	}
	if doc.Trace != up.TraceIDString() {
		t.Errorf("doc trace %q, want upstream %q", doc.Trace, up.TraceIDString())
	}
	local := DeriveTraceContext(9, "partition-0")
	wantSpan := local.String()[36:52]
	if doc.Span != wantSpan {
		t.Errorf("doc span %q, want local %q", doc.Span, wantSpan)
	}
	wantParent := up.String()[36:52]
	if doc.ParentSpan != wantParent {
		t.Errorf("doc parent span %q, want upstream %q", doc.ParentSpan, wantParent)
	}
	if doc.Process != "partition-0" {
		t.Errorf("doc process %q", doc.Process)
	}
}

func TestLifecycleTimelineEviction(t *testing.T) {
	l := NewLifecycle(64, 1, "engine")
	now := time.Now()
	for id := int64(0); id < int64(l.tcap)+5; id++ {
		l.Submitted(id, "ls", now, now)
	}
	if _, ok := l.Timeline(0); ok {
		t.Error("oldest timeline not evicted at capacity")
	}
	if _, ok := l.Timeline(int64(l.tcap)); !ok {
		t.Error("recent timeline evicted")
	}
}

func TestFlightRingWrapAndWindow(t *testing.T) {
	l := NewLifecycle(8, 0, "engine")
	base := l.Epoch()
	for i := 0; i < 20; i++ {
		l.Shed(int64(i), "r", base.Add(time.Duration(i)*time.Second))
	}
	if l.Total() != 20 {
		t.Fatalf("total %d, want 20", l.Total())
	}
	// The ring holds the last 8 events (pods 12..19), oldest first.
	evs := l.FlightEvents(0, base.Add(20*time.Second))
	if len(evs) != 8 {
		t.Fatalf("ring returned %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if ev.PodID != int64(12+i) {
			t.Fatalf("ring order wrong: got pod %d at %d, want %d (%+v)", ev.PodID, i, 12+i, evs)
		}
	}
	// A 3.5s trailing window keeps only the last 4 (t=16..19 at now=19.5s).
	evs = l.FlightEvents(3500*time.Millisecond, base.Add(19500*time.Millisecond))
	if len(evs) != 4 {
		t.Fatalf("windowed ring returned %d events, want 4: %+v", len(evs), evs)
	}
}

func TestWriteFlightJSON(t *testing.T) {
	l := NewLifecycle(64, 1, "partition-1")
	now := time.Now()
	l.Submitted(4, "lsr", now, now)
	var buf bytes.Buffer
	if err := l.WriteFlight(&buf, time.Minute, "shed-spike", "shed 100 in one tick"); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("flight dump not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.Reason != "shed-spike" || dump.Role != "partition-1" || dump.WindowMs != 60000 {
		t.Errorf("dump header wrong: %+v", dump)
	}
	if len(dump.Events) != 2 {
		t.Errorf("dump has %d events, want 2 (submit+admission)", len(dump.Events))
	}
}

func TestMergedChromeTracePIDMapping(t *testing.T) {
	for _, tc := range []struct {
		process string
		want    int
	}{{"coordinator", 1}, {"partition-0", 2}, {"partition-3", 5}, {"mystery", 0}} {
		if got := ChromePID(tc.process); got != tc.want {
			t.Errorf("ChromePID(%q) = %d, want %d", tc.process, got, tc.want)
		}
	}

	co := NewLifecycle(64, 1, "coordinator")
	part := NewLifecycle(64, 1, "partition-0")
	now := time.Now()
	co.Routed(3, 0, now, now.Add(time.Millisecond))
	part.SetContext(3, DeriveTraceContext(3, "coordinator"))
	part.Submitted(3, "ls", now, now.Add(time.Millisecond))
	coDoc, ok1 := co.TimelineDoc(3)
	partDoc, ok2 := part.TimelineDoc(3)
	if !ok1 || !ok2 {
		t.Fatal("missing timeline docs")
	}
	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, []TimelineDoc{coDoc, partDoc}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("merged trace not valid JSON: %v\n%s", err, buf.String())
	}
	pids := map[float64]bool{}
	procNames := map[string]float64{}
	for _, ev := range events {
		pid, _ := ev["pid"].(float64)
		pids[pid] = true
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			args, _ := ev["args"].(map[string]any)
			name, _ := args["name"].(string)
			procNames[name] = pid
		}
	}
	if procNames["coordinator"] != 1 || procNames["partition-0"] != 2 {
		t.Errorf("process metadata pids wrong: %v", procNames)
	}
	if !pids[1] || !pids[2] {
		t.Errorf("merged trace missing a process: pids %v", pids)
	}
	// Timestamps must be non-negative (aligned to the earliest epoch).
	for _, ev := range events {
		if ts, ok := ev["ts"].(float64); ok && ts < 0 {
			t.Errorf("negative aligned timestamp %v in %v", ts, ev)
		}
	}
}
