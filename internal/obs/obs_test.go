package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(16, 4)
	var sampled int
	for i := 0; i < 100; i++ {
		if dt := r.Start(i, "app", "LS"); dt != nil {
			sampled++
			r.Commit(dt)
		}
	}
	if sampled != 25 {
		t.Fatalf("every=4 over 100 decisions sampled %d, want 25", sampled)
	}
	started, committed := r.Counts()
	if started != 25 || committed != 25 {
		t.Fatalf("counts = (%d, %d), want (25, 25)", started, committed)
	}
}

func TestRecorderDisabled(t *testing.T) {
	var r *Recorder // nil recorder: fully disabled
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if dt := r.Start(1, "a", "LS"); dt != nil {
		t.Fatal("nil recorder sampled a decision")
	}
	r.Commit(nil)
	r.Amend(nil, nil)
	if got := r.Last(10, ""); got != nil {
		t.Fatalf("nil recorder returned traces: %v", got)
	}

	r2 := NewRecorder(16, 0) // rate 0: constructed but off
	if r2.Enabled() {
		t.Fatal("rate-0 recorder reports enabled")
	}
	for i := 0; i < 10; i++ {
		if dt := r2.Start(i, "a", "LS"); dt != nil {
			t.Fatal("rate-0 recorder sampled a decision")
		}
	}
	r2.SetSampleEvery(1)
	if !r2.Enabled() {
		t.Fatal("recorder not enabled after SetSampleEvery(1)")
	}
	if dt := r2.Start(11, "a", "LS"); dt == nil {
		t.Fatal("every=1 recorder skipped a decision")
	}
}

func TestRecorderStartZeroAllocWhenOff(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		if dt := nilRec.Start(1, "a", "LS"); dt != nil {
			t.Fatal("sampled")
		}
	}); n != 0 {
		t.Fatalf("nil recorder Start allocates %.1f/op, want 0", n)
	}
	off := NewRecorder(16, 0)
	if n := testing.AllocsPerRun(1000, func() {
		if dt := off.Start(1, "a", "LS"); dt != nil {
			t.Fatal("sampled")
		}
	}); n != 0 {
		t.Fatalf("rate-0 recorder Start allocates %.1f/op, want 0", n)
	}
	// Unsampled attempts of an enabled recorder must not allocate either.
	sparse := NewRecorder(16, 1_000_000)
	sparse.Start(0, "a", "LS") // burn the aligned first sample if any
	if n := testing.AllocsPerRun(1000, func() {
		sparse.Start(1, "a", "LS")
	}); n != 0 {
		t.Fatalf("unsampled Start allocates %.1f/op, want 0", n)
	}
}

func TestRecorderRingEvictionAndIndex(t *testing.T) {
	r := NewRecorder(4, 1)
	for i := 0; i < 10; i++ {
		dt := r.Start(i%2, "app", "BE") // two pods, five traces each
		if dt == nil {
			t.Fatalf("every=1 skipped decision %d", i)
		}
		dt.Outcome = "placed"
		dt.Node = i
		r.Commit(dt)
	}
	if r.Len() != 4 {
		t.Fatalf("ring holds %d, want capacity 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("total %d, want 10", r.Total())
	}
	// Only the last four commits (nodes 6..9) survive; pods 0 and 1 keep
	// two traces each.
	for pod := 0; pod <= 1; pod++ {
		lst := r.ByPod(pod)
		if len(lst) != 2 {
			t.Fatalf("pod %d has %d traces, want 2", pod, len(lst))
		}
		for _, dt := range lst {
			if dt.Node < 6 {
				t.Fatalf("pod %d retains evicted trace node=%d", pod, dt.Node)
			}
		}
	}
	last := r.Last(2, "")
	if len(last) != 2 || last[0].Node != 9 || last[1].Node != 8 {
		t.Fatalf("Last(2) = %+v, want nodes 9 then 8", last)
	}
}

func TestRecorderLastOutcomeFilter(t *testing.T) {
	r := NewRecorder(16, 1)
	outcomes := []string{"placed", "failed", "conflict-rejected", "placed", "stale-rejected"}
	for i, oc := range outcomes {
		dt := r.Start(i, "a", "LS")
		dt.Outcome = oc
		r.Commit(dt)
	}
	failed := r.Last(10, "failed")
	if len(failed) != 3 {
		t.Fatalf("outcome=failed matched %d traces, want 3 (failed + conflict/stale rejected)", len(failed))
	}
	placed := r.Last(10, "placed")
	if len(placed) != 2 {
		t.Fatalf("outcome=placed matched %d, want 2", len(placed))
	}
}

func TestNoteScoreTopK(t *testing.T) {
	dt := &DecisionTrace{Top: make([]ScoredHost, 0, TopK)}
	for i := 0; i < 20; i++ {
		dt.NoteScore(i, float64(i%10))
	}
	if len(dt.Top) != TopK {
		t.Fatalf("top-K holds %d, want %d", len(dt.Top), TopK)
	}
	for i := 1; i < len(dt.Top); i++ {
		if dt.Top[i].Score > dt.Top[i-1].Score {
			t.Fatalf("top-K not sorted: %+v", dt.Top)
		}
		if dt.Top[i].Score == dt.Top[i-1].Score && dt.Top[i].Node < dt.Top[i-1].Node {
			t.Fatalf("top-K ties not id-ordered: %+v", dt.Top)
		}
	}
	if dt.Top[0].Score != 9 || dt.Top[0].Node != 9 {
		t.Fatalf("best = %+v, want node 9 score 9", dt.Top[0])
	}
}

func TestSpanAndRejection(t *testing.T) {
	r := NewRecorder(4, 1)
	dt := r.Start(7, "app", "LSR")
	t0 := time.Now()
	dt.SpanFrom("prefilter", t0, 5*time.Microsecond)
	dt.Reject("scan", "insufficient cpu", 3)
	dt.Reject("scan", "nothing", 0) // dropped
	dt.Outcome = "failed"
	dt.Reason = "CPU"
	r.Commit(dt)

	got := r.ByPod(7)
	if len(got) != 1 {
		t.Fatalf("ByPod(7) returned %d traces", len(got))
	}
	tr := got[0]
	if len(tr.Spans) != 1 || tr.Spans[0].Stage != "prefilter" || tr.Spans[0].DurNs != 5000 {
		t.Fatalf("spans = %+v", tr.Spans)
	}
	if len(tr.Rejections) != 1 || tr.Rejections[0].Reason != "insufficient cpu" || tr.Rejections[0].Count != 3 {
		t.Fatalf("rejections = %+v", tr.Rejections)
	}
	if tr.TotalNs <= 0 {
		t.Fatalf("TotalNs = %d, want > 0", tr.TotalNs)
	}
}

func TestAmendSerializesWithReaders(t *testing.T) {
	r := NewRecorder(8, 1)
	dt := r.Start(1, "a", "BE")
	dt.Outcome = "placed"
	r.Commit(dt)
	r.Amend(dt, func(d *DecisionTrace) {
		d.Outcome = "conflict-rejected"
		d.Reject("commit", "commit conflict", 1)
	})
	got := r.ByPod(1)
	if got[0].Outcome != "conflict-rejected" || len(got[0].Rejections) != 1 {
		t.Fatalf("amendment not visible: %+v", got[0])
	}
}

func TestHistoryRing(t *testing.T) {
	h := NewHistory(3, []string{"LSR", "LS", "BE"})
	for i := 0; i < 5; i++ {
		s := ClusterSample{T: int64(30 * i), CPUAlloc: float64(i) / 10, UpNodes: 100 - i}
		s.Running[2] = int64(i)
		h.Record(s)
	}
	if h.Len() != 3 || h.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3 and 5", h.Len(), h.Total())
	}
	pts := h.Samples()
	if len(pts) != 3 {
		t.Fatalf("Samples returned %d", len(pts))
	}
	for i, want := range []int64{60, 90, 120} {
		if pts[i].T != want {
			t.Fatalf("sample %d at t=%d, want %d (oldest-first window)", i, pts[i].T, want)
		}
	}
	last, ok := h.Last()
	if !ok || last.T != 120 || last.Running["BE"] != 4 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
	if _, ok := last.Running["LSR"]; !ok {
		t.Fatal("running_by_slo missing LSR class")
	}
}

func TestHistoryRecordZeroAlloc(t *testing.T) {
	h := NewHistory(64, []string{"LSR", "LS", "BE"})
	s := ClusterSample{T: 30, CPUAlloc: 0.5}
	if n := testing.AllocsPerRun(1000, func() { h.Record(s) }); n != 0 {
		t.Fatalf("History.Record allocates %.1f/op, want 0", n)
	}
	var nilH *History
	if n := testing.AllocsPerRun(100, func() { nilH.Record(s) }); n != 0 {
		t.Fatalf("nil History.Record allocates %.1f/op, want 0", n)
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder(8, 1)
	for i := 0; i < 3; i++ {
		dt := r.Start(i, fmt.Sprintf("app-%d", i), "LS")
		dt.SpanFrom("prefilter", time.Now(), time.Microsecond)
		dt.SpanFrom("scan", time.Now(), 3*time.Microsecond)
		if i == 2 {
			dt.Outcome = "failed"
			dt.Reason = "CPU"
			dt.Reject("scan", "insufficient cpu", 5)
		} else {
			dt.Outcome = "placed"
			dt.Node = i
			dt.Eq11 = &Eq11{UtilTerm: 0.5, Score: 0.4, OmegaO: 1, OmegaB: 1}
		}
		r.Commit(dt)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.All()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	// 3 decision events + 2 spans each, plus process_name and 3
	// thread_name metadata events labelling the rows.
	if len(events) != 13 {
		t.Fatalf("exported %d events, want 13", len(events))
	}
	var decisions, failed, procNames, threadNames int
	for _, ev := range events {
		if ev["ph"] == "M" {
			switch ev["name"] {
			case "process_name":
				procNames++
				args := ev["args"].(map[string]any)
				if args["name"] != "unisched scheduler" {
					t.Fatalf("process_name args = %+v", args)
				}
			case "thread_name":
				threadNames++
			default:
				t.Fatalf("unexpected metadata event %v", ev["name"])
			}
			continue
		}
		if ev["ph"] != "X" {
			t.Fatalf("event ph = %v, want X", ev["ph"])
		}
		if ev["name"] == "decision" {
			decisions++
			args := ev["args"].(map[string]any)
			if args["outcome"] == "failed" {
				failed++
				if args["reason"] != "CPU" {
					t.Fatalf("failed decision lacks reason: %+v", args)
				}
			}
		}
	}
	if decisions != 3 || failed != 1 {
		t.Fatalf("decisions=%d failed=%d, want 3 and 1", decisions, failed)
	}
	if procNames != 1 || threadNames != 3 {
		t.Fatalf("procNames=%d threadNames=%d, want 1 and 3", procNames, threadNames)
	}
}
