package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestExpositionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	x := NewExposition(&buf)
	x.Counter("unisched_decisions_total", "Scheduling decisions attempted.", 1234)
	x.Gauge("unisched_queue_depth", "Pods waiting in the admission queue.", 17)
	x.Family("unisched_placed_total", "Pods placed, by SLO class.", "counter")
	x.Sample("unisched_placed_total", []Label{{Name: "slo", Value: "LSR"}}, 10)
	x.Sample("unisched_placed_total", []Label{{Name: "slo", Value: "BE"}}, 90)
	bounds := []float64{0.001, 0.01, 0.1}
	cum := []int64{5, 42, 99}
	x.Histogram("unisched_decision_seconds", "Decision latency.", bounds, cum, 1.5, 100)
	if err := x.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE unisched_decisions_total counter",
		"unisched_decisions_total 1234",
		`unisched_placed_total{slo="LSR"} 10`,
		`unisched_decision_seconds_bucket{le="0.001"} 5`,
		`unisched_decision_seconds_bucket{le="+Inf"} 100`,
		"unisched_decision_seconds_sum 1.5",
		"unisched_decision_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, out)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no samples", "# HELP x y\n# TYPE x counter\n"},
		{"missing type", "foo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo one\n"},
		{"bad name", "# TYPE 9foo counter\n9foo 1\n"},
		{"negative counter", "# TYPE foo counter\nfoo -3\n"},
		{"duplicate type", "# TYPE foo counter\nfoo 1\n# TYPE foo gauge\n"},
		{"unknown type", "# TYPE foo widget\nfoo 1\n"},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 10` + "\n" +
				`h_bucket{le="2"} 5` + "\n" +
				`h_bucket{le="+Inf"} 10` + "\nh_sum 1\nh_count 10\n",
		},
		{
			"unordered bounds",
			"# TYPE h histogram\n" +
				`h_bucket{le="2"} 5` + "\n" +
				`h_bucket{le="1"} 10` + "\n" +
				`h_bucket{le="+Inf"} 10` + "\nh_sum 1\nh_count 10\n",
		},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 10` + "\nh_sum 1\nh_count 10\n",
		},
		{
			"missing sum",
			"# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 10` + "\nh_count 10\n",
		},
		{"bucket without le", "# TYPE h histogram\nh_bucket 10\nh_sum 1\nh_count 10\n"},
		{"unquoted label", "# TYPE foo counter\nfoo{a=b} 1\n"},
		{"unterminated label", `# TYPE foo counter` + "\n" + `foo{a="b} 1` + "\n"},
		{
			"+Inf bucket disagrees with count",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				`h_bucket{le="+Inf"} 10` + "\nh_sum 1\nh_count 12\n",
		},
		{
			"zero count with nonzero sum",
			"# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 0` + "\nh_sum 3.5\nh_count 0\n",
		},
		{"NaN count", "# TYPE h histogram\n" + `h_bucket{le="+Inf"} 0` + "\nh_sum 0\nh_count NaN\n"},
		{"negative count", "# TYPE h histogram\n" + `h_bucket{le="+Inf"} 0` + "\nh_sum 0\nh_count -1\n"},
		{"NaN sum", "# TYPE h histogram\n" + `h_bucket{le="+Inf"} 0` + "\nh_sum NaN\nh_count 0\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: validator accepted malformed input:\n%s", tc.name, tc.in)
		}
	}
}

// TestValidateExpositionHistogramConsistency pins the cross-sample
// checks: a histogram whose +Inf bucket, _count, and _sum agree passes;
// an empty histogram with a zero sum passes.
func TestValidateExpositionHistogramConsistency(t *testing.T) {
	ok := []string{
		"# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" +
			`h_bucket{le="+Inf"} 10` + "\nh_sum 1.5\nh_count 10\n",
		"# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 0` + "\nh_sum 0\nh_count 0\n",
	}
	for _, in := range ok {
		if err := ValidateExposition(strings.NewReader(in)); err != nil {
			t.Errorf("validator rejected consistent histogram: %v\n%s", err, in)
		}
	}
}

func TestValidateExpositionAcceptsEscapes(t *testing.T) {
	in := "# TYPE foo counter\n" +
		`foo{msg="a \"quoted\" value, with \\ and comma"} 1` + "\n"
	if err := ValidateExposition(strings.NewReader(in)); err != nil {
		t.Fatalf("escaped labels rejected: %v", err)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	x := NewExposition(&buf)
	x.Family("foo", "has \"quotes\" and\nnewlines", "gauge")
	x.Sample("foo", []Label{{Name: "r", Value: `a"b\c`}}, 1)
	if err := x.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("escaped output fails validation: %v\n%s", err, buf.String())
	}
}
