package obs

// Distributed pod-lifecycle tracing: every stage of a pod's journey —
// submit → route/spillover (federation) → admission+quota gate → queue
// wait per SLO lane → sched attempts with conflict retries → batched
// commit → journal append/fsync — is stamped against one per-process
// monotonic epoch and stitched across processes by a W3C-style
// trace-context header riding the federation JSON API. The same
// invariant as the decision recorder holds: a nil *Lifecycle is a valid
// disabled recorder, every method on it returns immediately, and callers
// pay one nil-check branch when tracing is off.
//
// The recorder is three structures behind one mutex discipline:
//
//   - the flight ring: a bounded circular buffer of LifecycleEvent
//     values (no per-event allocation once warm) holding the most recent
//     events for every pod — the always-on flight recorder an anomaly
//     dump drains;
//   - per-pod clocks: submit/enqueue wall stamps for every in-flight
//     pod, feeding the end-to-end and stage latency histograms;
//   - sampled timelines: full per-pod event lists for pods with
//     ID % every == 0 — ID-based so a coordinator and its partitions
//     sample the *same* pods and their events stitch into one trace.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Lifecycle stage names. StartNs/DurNs semantics per stage are noted in
// DESIGN.md §4k; all are wall-clock (monotonic) offsets from the
// recorder's epoch.
const (
	StageSubmit        = "submit"         // arrival marker (dur 0)
	StageRoute         = "route"          // coordinator fit-routing + backend submit
	StageSpill         = "spillover"      // coordinator re-dispatch hop
	StageAdmission     = "admission"      // dedup + quota gate, submit → enqueue
	StageQueueWait     = "queue-wait"     // enqueue → worker dequeue, per SLO lane
	StageSched         = "sched"          // zero-lock scoring pass (batch window)
	StageCommit        = "commit"         // batched commit validation (batch window)
	StageRetry         = "retry"          // failed attempt parked for backoff
	StageReject        = "reject"         // fail-fast withdrawal (spills back)
	StageShed          = "shed"           // terminal backpressure/quota shed
	StagePlaced        = "placed"         // terminal: submit → placement (end-to-end)
	StageJournalAppend = "journal-append" // OpPlace appended (awaiting group fsync)
	StageFsyncWait     = "fsync-wait"     // append → covering group fsync completion
)

// TraceParentHeader is the HTTP header carrying the trace context through
// the federation JSON API, W3C trace-context style:
// "00-<32 hex trace-id>-<16 hex span-id>-01".
const TraceParentHeader = "Traceparent"

// TraceContext identifies one distributed trace (the pod's journey) and
// the sending process's span within it.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// splitmix64 is the deterministic ID mixer (public-domain constants):
// trace IDs must be stable under a fixed seed so two runs of the same
// workload produce identical stitched timelines.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveTraceContext builds the deterministic context for one pod: the
// trace ID is a pure function of the pod ID (so every process that sees
// the pod derives the same trace), the span ID a pure function of pod ID
// and role ("coordinator", "partition-0", ...), so each process
// contributes a distinct span to the same trace.
func DeriveTraceContext(podID int64, role string) TraceContext {
	var tc TraceContext
	hi := splitmix64(uint64(podID))
	lo := splitmix64(hi ^ 0xa5a5a5a5a5a5a5a5)
	if hi == 0 && lo == 0 {
		lo = 1
	}
	for i := 0; i < 8; i++ {
		tc.TraceID[i] = byte(hi >> (56 - 8*i))
		tc.TraceID[8+i] = byte(lo >> (56 - 8*i))
	}
	sp := splitmix64(uint64(podID))
	for _, c := range []byte(role) {
		sp = splitmix64(sp ^ uint64(c))
	}
	if sp == 0 {
		sp = 1
	}
	for i := 0; i < 8; i++ {
		tc.SpanID[i] = byte(sp >> (56 - 8*i))
	}
	return tc
}

// Valid reports whether the context carries a non-zero trace ID.
func (tc TraceContext) Valid() bool { return tc.TraceID != [16]byte{} }

// String renders the W3C traceparent form (version 00, sampled flag 01).
func (tc TraceContext) String() string {
	return fmt.Sprintf("00-%032x-%016x-01", tc.TraceID, tc.SpanID)
}

// TraceIDString is the 32-hex-digit trace ID alone.
func (tc TraceContext) TraceIDString() string { return fmt.Sprintf("%032x", tc.TraceID) }

// ParseTraceParent parses a traceparent header value. It accepts any
// version byte (per the W3C spec, unknown versions parse as version 00)
// and rejects all-zero trace or span IDs.
func ParseTraceParent(s string) (TraceContext, bool) {
	var tc TraceContext
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, false
	}
	if !hexDecode(tc.TraceID[:], s[3:35]) || !hexDecode(tc.SpanID[:], s[36:52]) {
		return tc, false
	}
	if !tc.Valid() || tc.SpanID == [8]byte{} {
		return tc, false
	}
	return tc, true
}

func hexDecode(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// LifecycleEvent is one stage of one pod's journey. StartNs is
// nanoseconds since the recorder's epoch (one monotonic clock per
// process); DurNs the stage's duration.
type LifecycleEvent struct {
	PodID   int64  `json:"pod"`
	Stage   string `json:"stage"`
	Lane    string `json:"lane,omitempty"`
	Attempt int32  `json:"attempt,omitempty"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Detail  string `json:"detail,omitempty"`
}

// PodTimeline is the full recorded journey of one sampled pod within one
// process.
type PodTimeline struct {
	PodID int64 `json:"pod"`
	// Trace is the stitched trace context; Parent the span ID of the
	// upstream process (zero when this process originated the trace).
	Trace  TraceContext     `json:"-"`
	Parent [8]byte          `json:"-"`
	Events []LifecycleEvent `json:"events"`
}

// TimelineDoc is the wire form of one process's contribution to a
// stitched timeline (GET /v1/debug/pods/{id}/timeline).
type TimelineDoc struct {
	// Process names the contributing process ("coordinator",
	// "partition-0", ...); it becomes the Chrome trace process_name.
	Process string `json:"process"`
	// EpochUnixNs anchors the process's monotonic StartNs offsets to the
	// wall clock so a merged export can align processes.
	EpochUnixNs int64            `json:"epoch_unix_ns"`
	Trace       string           `json:"trace,omitempty"`
	Span        string           `json:"span,omitempty"`
	ParentSpan  string           `json:"parent_span,omitempty"`
	Events      []LifecycleEvent `json:"events"`
}

// StitchedTimeline is the coordinator's merged view: its own route spans
// plus every partition's stages, one trace ID across all of them.
type StitchedTimeline struct {
	Pod       int64         `json:"pod"`
	Trace     string        `json:"trace,omitempty"`
	Processes []TimelineDoc `json:"processes"`
}

// Latency-histogram geometry, shared with the engine's decision
// histogram: power-of-two bounds from 1 µs to ~34 s.
const (
	latencyBase    = 1000 // 1 µs in ns
	latencyBuckets = 26
)

// LatencyHist is a lock-free log-scale latency histogram, the shared
// building block behind the end-to-end and per-stage placement-latency
// series (engine) and the route-latency series (federation coordinator).
type LatencyHist struct {
	buckets [latencyBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := 0
	for bound := int64(latencyBase); b < latencyBuckets-1 && ns > bound; b++ {
		bound *= 2
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *LatencyHist) Count() int64 { return h.count.Load() }

// Mean returns the mean latency in seconds (0 with no observations).
func (h *LatencyHist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n) / 1e9
}

// Quantile returns the q-quantile in seconds, log-linearly interpolated
// within the containing bucket (linearly in the first).
func (h *LatencyHist) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen int64
	bound := int64(latencyBase)
	for b := 0; b < latencyBuckets; b++ {
		n := h.buckets[b].Load()
		if float64(seen+n) >= rank && n > 0 {
			frac := (rank - float64(seen)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			if b == 0 {
				return float64(bound) * frac / 1e9
			}
			lower := float64(bound) / 2
			return lower * math.Pow(2, frac) / 1e9
		}
		seen += n
		if b < latencyBuckets-1 {
			bound *= 2
		}
	}
	return float64(bound) / 1e9
}

// Export snapshots the histogram in cumulative Prometheus form. The
// total is derived from the same per-bucket snapshot, so cumulative
// counts stay monotone and the +Inf bucket always equals _count even
// while writers keep observing.
func (h *LatencyHist) Export() (bounds []float64, cum []int64, sum float64, total int64) {
	bounds = make([]float64, latencyBuckets-1)
	cum = make([]int64, latencyBuckets-1)
	bound := int64(latencyBase)
	var seen int64
	for b := 0; b < latencyBuckets-1; b++ {
		seen += h.buckets[b].Load()
		bounds[b] = float64(bound) / 1e9
		cum[b] = seen
		bound *= 2
	}
	total = seen + h.buckets[latencyBuckets-1].Load()
	return bounds, cum, float64(h.sum.Load()) / 1e9, total
}

// podClock carries the wall stamps the latency attribution needs while a
// pod is in flight.
type podClock struct {
	submitNs  int64
	enqueueNs int64
}

// fsyncWatch is one placed pod awaiting the group fsync that covers its
// OpPlace journal record.
type fsyncWatch struct {
	podID    int64
	lsn      uint64
	appendNs int64
}

// Lifecycle is the pod-lifecycle recorder. A nil *Lifecycle is a valid
// disabled recorder: every method returns immediately, so the engine's
// hot paths pay exactly one nil-check branch when lifecycle tracing is
// off (the zero-cost-when-off invariant the allocs/op benchmark pins).
type Lifecycle struct {
	every int64 // timeline sampling modulus (pod ID based); <=0: flight ring only
	role  string
	epoch time.Time

	mu      sync.Mutex
	ring    []LifecycleEvent
	next    int
	total   uint64
	pending map[int64]podClock
	watches []fsyncWatch

	// Stage histograms (lock-free; exported through Prometheus).
	e2e    LatencyHist
	qwait  LatencyHist
	sched  LatencyHist
	commit LatencyHist
	fsync  LatencyHist
	route  LatencyHist

	lastFsyncNs atomic.Int64 // latest group-fsync duration (anomaly detection)

	tmu       sync.Mutex
	timelines map[int64]*PodTimeline
	order     []int64
	tcap      int
}

// NewLifecycle builds a recorder with a flight ring of `buffer` events
// (default 8192) sampling full timelines for pods with ID % every == 0
// (every <= 0 keeps only the flight ring). role names this process in
// stitched traces and seeds its span IDs.
func NewLifecycle(buffer, every int, role string) *Lifecycle {
	if buffer <= 0 {
		buffer = 8192
	}
	tcap := 1024
	l := &Lifecycle{
		every:     int64(every),
		role:      role,
		epoch:     time.Now(),
		ring:      make([]LifecycleEvent, buffer),
		pending:   make(map[int64]podClock, 1024),
		timelines: make(map[int64]*PodTimeline, 64),
		tcap:      tcap,
	}
	return l
}

// On reports whether the recorder is live; callers use it to skip
// clock reads entirely when tracing is off.
func (l *Lifecycle) On() bool { return l != nil }

// Role returns the process role string ("", when disabled).
func (l *Lifecycle) Role() string {
	if l == nil {
		return ""
	}
	return l.role
}

// Epoch returns the recorder's wall-clock epoch (zero when disabled).
// Event StartNs offsets are nanoseconds since this instant.
func (l *Lifecycle) Epoch() time.Time {
	if l == nil {
		return time.Time{}
	}
	return l.epoch
}

// Sampled reports whether the pod's full timeline is recorded. Sampling
// is by pod ID (not a process-local counter), so every process in a
// federation samples the same pods and their spans stitch.
func (l *Lifecycle) Sampled(podID int64) bool {
	return l != nil && l.every > 0 && podID%l.every == 0
}

func (l *Lifecycle) ns(t time.Time) int64 { return t.Sub(l.epoch).Nanoseconds() }

// record appends ev to the flight ring and, for sampled pods, to the
// pod's timeline.
func (l *Lifecycle) record(ev LifecycleEvent) {
	l.mu.Lock()
	l.ring[l.next] = ev
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
	}
	l.total++
	l.mu.Unlock()
	if l.Sampled(ev.PodID) {
		l.tmu.Lock()
		tl := l.timelines[ev.PodID]
		if tl == nil {
			tl = &PodTimeline{PodID: ev.PodID, Trace: DeriveTraceContext(ev.PodID, l.role)}
			if len(l.order) >= l.tcap {
				delete(l.timelines, l.order[0])
				l.order = l.order[1:]
			}
			l.timelines[ev.PodID] = tl
			l.order = append(l.order, ev.PodID)
		}
		tl.Events = append(tl.Events, ev)
		l.tmu.Unlock()
	}
}

// SetContext adopts an upstream trace context for one sampled pod:
// the partition daemon calls it with the parsed Traceparent header
// before submitting, so its events join the coordinator's trace. The
// upstream span becomes this timeline's parent; the local span ID stays
// derived from (pod, role).
func (l *Lifecycle) SetContext(podID int64, tc TraceContext) {
	if l == nil || !l.Sampled(podID) || !tc.Valid() {
		return
	}
	local := DeriveTraceContext(podID, l.role)
	l.tmu.Lock()
	tl := l.timelines[podID]
	if tl == nil {
		tl = &PodTimeline{PodID: podID}
		if len(l.order) >= l.tcap {
			delete(l.timelines, l.order[0])
			l.order = l.order[1:]
		}
		l.timelines[podID] = tl
		l.order = append(l.order, podID)
	}
	tl.Trace = TraceContext{TraceID: tc.TraceID, SpanID: local.SpanID}
	tl.Parent = tc.SpanID
	l.tmu.Unlock()
}

// Submitted stamps a pod's arrival (t0) and its successful admission
// through the dedup + quota gate into the queue (t1): a StageSubmit
// marker plus a StageAdmission span, and the clocks later stages bill
// against.
func (l *Lifecycle) Submitted(podID int64, lane string, t0, t1 time.Time) {
	if l == nil {
		return
	}
	s0, s1 := l.ns(t0), l.ns(t1)
	l.mu.Lock()
	l.pending[podID] = podClock{submitNs: s0, enqueueNs: s1}
	l.mu.Unlock()
	l.record(LifecycleEvent{PodID: podID, Stage: StageSubmit, Lane: lane, StartNs: s0})
	l.record(LifecycleEvent{PodID: podID, Stage: StageAdmission, Lane: lane, StartNs: s0, DurNs: s1 - s0})
}

// Shed stamps a terminal shed (backpressure or quota gate) and drops the
// pod's clocks.
func (l *Lifecycle) Shed(podID int64, reason string, t time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	delete(l.pending, podID)
	l.mu.Unlock()
	l.record(LifecycleEvent{PodID: podID, Stage: StageShed, StartNs: l.ns(t), Detail: reason})
}

// Dequeued stamps the end of one queue wait: a StageQueueWait span from
// the last enqueue (or park) to t, observed into the queue-wait
// histogram. The clock is re-stamped so a retried pod's next wait is
// measured from this dequeue.
func (l *Lifecycle) Dequeued(podID int64, lane string, t time.Time) {
	if l == nil {
		return
	}
	now := l.ns(t)
	l.mu.Lock()
	pc, ok := l.pending[podID]
	start := pc.enqueueNs
	if ok {
		pc.enqueueNs = now
		l.pending[podID] = pc
	}
	l.mu.Unlock()
	if !ok {
		return
	}
	wait := now - start
	l.qwait.Observe(time.Duration(wait))
	l.record(LifecycleEvent{PodID: podID, Stage: StageQueueWait, Lane: lane, StartNs: start, DurNs: wait})
}

// SchedAttempt stamps one scoring pass over the pod: the event spans the
// batch's zero-lock scheduling window; perPod (the batch span amortized
// over its pods) feeds the sched histogram so the per-stage breakdown
// sums to wall time.
func (l *Lifecycle) SchedAttempt(podID int64, attempt int32, start time.Time, span, perPod time.Duration, detail string) {
	if l == nil {
		return
	}
	l.sched.Observe(perPod)
	l.record(LifecycleEvent{PodID: podID, Stage: StageSched, Attempt: attempt,
		StartNs: l.ns(start), DurNs: span.Nanoseconds(), Detail: detail})
}

// Committed stamps the batched commit validation covering the pod, with
// the commit outcome ("placed", "conflict-placed", "conflict-rejected",
// "stale-rejected") as the detail.
func (l *Lifecycle) Committed(podID int64, attempt int32, start time.Time, span time.Duration, outcome string) {
	if l == nil {
		return
	}
	l.commit.Observe(span)
	l.record(LifecycleEvent{PodID: podID, Stage: StageCommit, Attempt: attempt,
		StartNs: l.ns(start), DurNs: span.Nanoseconds(), Detail: outcome})
}

// Retried stamps a failed attempt parked for backoff.
func (l *Lifecycle) Retried(podID int64, attempt int32, reason string, t time.Time) {
	if l == nil {
		return
	}
	now := l.ns(t)
	l.mu.Lock()
	if pc, ok := l.pending[podID]; ok {
		pc.enqueueNs = now
		l.pending[podID] = pc
	}
	l.mu.Unlock()
	l.record(LifecycleEvent{PodID: podID, Stage: StageRetry, Attempt: attempt, StartNs: now, Detail: reason})
}

// Rejected stamps a fail-fast withdrawal (the pod spills back to the
// federation coordinator) and drops the pod's clocks.
func (l *Lifecycle) Rejected(podID int64, reason string, t time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	delete(l.pending, podID)
	l.mu.Unlock()
	l.record(LifecycleEvent{PodID: podID, Stage: StageReject, StartNs: l.ns(t), Detail: reason})
}

// Placed stamps the terminal placement: the StagePlaced event spans the
// whole submit → placed journey (the end-to-end histogram's sample).
// lsn, when non-zero, is a journal LSN at or after the pod's OpPlace
// append: a StageJournalAppend marker is recorded and the pod is watched
// until FsyncCovered reports a group fsync at or past that LSN.
func (l *Lifecycle) Placed(podID int64, node int, t time.Time, lsn uint64) {
	if l == nil {
		return
	}
	now := l.ns(t)
	l.mu.Lock()
	pc, ok := l.pending[podID]
	delete(l.pending, podID)
	if lsn > 0 {
		l.watches = append(l.watches, fsyncWatch{podID: podID, lsn: lsn, appendNs: now})
	}
	l.mu.Unlock()
	if ok {
		e2e := now - pc.submitNs
		l.e2e.Observe(time.Duration(e2e))
		l.record(LifecycleEvent{PodID: podID, Stage: StagePlaced, StartNs: pc.submitNs, DurNs: e2e,
			Detail: "node " + strconv.Itoa(node)})
	}
	if lsn > 0 {
		l.record(LifecycleEvent{PodID: podID, Stage: StageJournalAppend, StartNs: now,
			Detail: "lsn " + strconv.FormatUint(lsn, 10)})
	}
}

// FsyncCovered reports one completed group fsync covering every journal
// record with LSN <= upTo; start/dur are the fsync's wall window. Watched
// pods get their StageFsyncWait span (append → fsync completion) and
// feed the fsync-wait histogram. Called from the journal's sync path; it
// must not call back into the journal. Its signature matches
// journal.SetOnSync so it installs directly.
func (l *Lifecycle) FsyncCovered(upTo uint64, start time.Time, dur time.Duration) {
	if l == nil {
		return
	}
	l.lastFsyncNs.Store(dur.Nanoseconds())
	endNs := l.ns(start.Add(dur))
	var done []fsyncWatch
	l.mu.Lock()
	kept := l.watches[:0]
	for _, w := range l.watches {
		if w.lsn <= upTo {
			done = append(done, w)
		} else {
			kept = append(kept, w)
		}
	}
	l.watches = kept
	l.mu.Unlock()
	for _, w := range done {
		wait := endNs - w.appendNs
		if wait < 0 {
			wait = 0
		}
		l.fsync.Observe(time.Duration(wait))
		l.record(LifecycleEvent{PodID: w.podID, Stage: StageFsyncWait, StartNs: w.appendNs, DurNs: wait})
	}
}

// LastFsyncNanos returns the duration of the most recent group fsync
// reported through FsyncCovered (anomaly detection input).
func (l *Lifecycle) LastFsyncNanos() int64 {
	if l == nil {
		return 0
	}
	return l.lastFsyncNs.Load()
}

// Routed stamps a coordinator routing decision: digest-fit selection plus
// the backend submit round trip, observed into the route histogram.
func (l *Lifecycle) Routed(podID int64, partition int, t0, t1 time.Time) {
	if l == nil {
		return
	}
	s0 := l.ns(t0)
	d := l.ns(t1) - s0
	l.route.Observe(time.Duration(d))
	l.record(LifecycleEvent{PodID: podID, Stage: StageRoute, StartNs: s0, DurNs: d,
		Detail: "partition " + strconv.Itoa(partition)})
}

// Spilled stamps one spillover hop: the pod left partition `from` and
// re-enters routing.
func (l *Lifecycle) Spilled(podID int64, from int, reason string, t time.Time) {
	if l == nil {
		return
	}
	det := reason
	if from >= 0 {
		det = "from partition " + strconv.Itoa(from) + ": " + reason
	}
	l.record(LifecycleEvent{PodID: podID, Stage: StageSpill, StartNs: l.ns(t), Detail: det})
}

// StageHistogram returns the shared histogram for one of the exported
// stages (StagePlaced = end-to-end, StageQueueWait, StageSched,
// StageCommit, StageFsyncWait, StageRoute); nil for other stages or a
// disabled recorder.
func (l *Lifecycle) StageHistogram(stage string) *LatencyHist {
	if l == nil {
		return nil
	}
	switch stage {
	case StagePlaced:
		return &l.e2e
	case StageQueueWait:
		return &l.qwait
	case StageSched:
		return &l.sched
	case StageCommit:
		return &l.commit
	case StageFsyncWait:
		return &l.fsync
	case StageRoute:
		return &l.route
	}
	return nil
}

// Timeline returns a copy of one sampled pod's recorded timeline, its
// events sorted by start offset, or false when the pod is not sampled
// (or evicted).
func (l *Lifecycle) Timeline(podID int64) (PodTimeline, bool) {
	if l == nil {
		return PodTimeline{}, false
	}
	l.tmu.Lock()
	tl := l.timelines[podID]
	var out PodTimeline
	if tl != nil {
		out = PodTimeline{PodID: tl.PodID, Trace: tl.Trace, Parent: tl.Parent,
			Events: append([]LifecycleEvent(nil), tl.Events...)}
	}
	l.tmu.Unlock()
	if tl == nil {
		return PodTimeline{}, false
	}
	sort.SliceStable(out.Events, func(i, j int) bool { return out.Events[i].StartNs < out.Events[j].StartNs })
	return out, true
}

// TimelineDoc renders one sampled pod's timeline in wire form, or false
// when the pod has no recorded timeline.
func (l *Lifecycle) TimelineDoc(podID int64) (TimelineDoc, bool) {
	tl, ok := l.Timeline(podID)
	if !ok {
		return TimelineDoc{}, false
	}
	doc := TimelineDoc{
		Process:     l.role,
		EpochUnixNs: l.epoch.UnixNano(),
		Events:      tl.Events,
	}
	if tl.Trace.Valid() {
		doc.Trace = tl.Trace.TraceIDString()
		doc.Span = fmt.Sprintf("%016x", tl.Trace.SpanID)
	}
	if tl.Parent != ([8]byte{}) {
		doc.ParentSpan = fmt.Sprintf("%016x", tl.Parent)
	}
	return doc, true
}

// Total returns the number of events recorded since construction.
func (l *Lifecycle) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// FlightEvents returns the flight-ring events with StartNs within the
// trailing window ending at nowNs, oldest first. A window <= 0 returns
// the whole ring.
func (l *Lifecycle) FlightEvents(window time.Duration, now time.Time) []LifecycleEvent {
	if l == nil {
		return nil
	}
	cut := int64(math.MinInt64)
	if window > 0 {
		cut = l.ns(now) - window.Nanoseconds()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.ring)
	count := int(l.total)
	if count > n {
		count = n
	}
	out := make([]LifecycleEvent, 0, count)
	// Oldest event is at next-count (mod n) once the ring has wrapped.
	start := l.next - count
	if start < 0 {
		start += n
	}
	for i := 0; i < count; i++ {
		ev := l.ring[(start+i)%n]
		if ev.Stage != "" && ev.StartNs >= cut {
			out = append(out, ev)
		}
	}
	return out
}

// FlightDump is the JSON document an anomaly trip writes to the data
// dir: the trigger, the trailing window of lifecycle events, and the
// wall anchor to line them up against other processes' dumps.
type FlightDump struct {
	Reason      string           `json:"reason"`
	Role        string           `json:"role,omitempty"`
	EpochUnixNs int64            `json:"epoch_unix_ns"`
	WallUnixNs  int64            `json:"wall_unix_ns"`
	WindowMs    int64            `json:"window_ms"`
	Detail      string           `json:"detail,omitempty"`
	Events      []LifecycleEvent `json:"events"`
}

// WriteFlight dumps the last `window` of flight-ring events as JSON —
// the flight recorder's black-box extraction, triggered by an anomaly
// (shed spike, commit-conflict storm, fsync stall) or a debug endpoint.
func (l *Lifecycle) WriteFlight(w io.Writer, window time.Duration, reason, detail string) error {
	if l == nil {
		return fmt.Errorf("obs: lifecycle tracing disabled")
	}
	now := time.Now()
	dump := FlightDump{
		Reason:      reason,
		Role:        l.role,
		EpochUnixNs: l.epoch.UnixNano(),
		WallUnixNs:  now.UnixNano(),
		WindowMs:    window.Milliseconds(),
		Detail:      detail,
		Events:      l.FlightEvents(window, now),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&dump)
}
