package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one metric label pair.
type Label struct {
	Name, Value string
}

// Exposition writes Prometheus text-format (version 0.0.4) metric
// families using only the standard library. Errors are sticky: the first
// write failure is retained and every later call is a no-op.
type Exposition struct {
	w       *bufio.Writer
	err     error
	current string
}

// NewExposition wraps w in an exposition writer.
func NewExposition(w io.Writer) *Exposition {
	return &Exposition{w: bufio.NewWriter(w)}
}

// Family opens a metric family: one # HELP and # TYPE header pair.
// Samples of the family follow via Sample (or the Counter/Gauge
// shortcuts).
func (x *Exposition) Family(name, help, typ string) {
	if x.err != nil {
		return
	}
	_, x.err = fmt.Fprintf(x.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	x.current = name
}

// Sample writes one sample line of the current family. Non-finite values
// are rendered as +Inf/-Inf/NaN per the format.
func (x *Exposition) Sample(name string, labels []Label, v float64) {
	if x.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
	_, x.err = x.w.WriteString(sb.String())
}

// Counter writes a single-sample counter family.
func (x *Exposition) Counter(name, help string, v float64) {
	x.Family(name, help, "counter")
	x.Sample(name, nil, v)
}

// Gauge writes a single-sample gauge family.
func (x *Exposition) Gauge(name, help string, v float64) {
	x.Family(name, help, "gauge")
	x.Sample(name, nil, v)
}

// Histogram writes one histogram family in proper _bucket/_sum/_count
// form. bounds are the buckets' upper limits (seconds, ascending) and
// cumulative the matching cumulative counts; the +Inf bucket is emitted
// from total.
func (x *Exposition) Histogram(name, help string, bounds []float64, cumulative []int64, sum float64, total int64) {
	x.Family(name, help, "histogram")
	for i, b := range bounds {
		x.Sample(name+"_bucket", []Label{{Name: "le", Value: formatValue(b)}}, float64(cumulative[i]))
	}
	x.Sample(name+"_bucket", []Label{{Name: "le", Value: "+Inf"}}, float64(total))
	x.Sample(name+"_sum", nil, sum)
	x.Sample(name+"_count", nil, float64(total))
}

// Flush writes buffered output and returns the first error encountered.
func (x *Exposition) Flush() error {
	if x.err != nil {
		return x.err
	}
	return x.w.Flush()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ValidateExposition parses r under the Prometheus text-format rules and
// returns the first violation: malformed sample lines, samples of a
// family not announced by # TYPE, duplicate TYPE headers, histogram
// buckets that are non-cumulative or missing the +Inf bucket, histograms
// without _sum/_count, and histograms whose +Inf bucket, _count, and
// _sum disagree (the +Inf cumulative count must equal _count, and a
// zero-observation histogram must have a zero _sum). Tests and the CI
// smoke gate use it to fail on malformed /metrics output.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	types := map[string]string{}
	var histograms []string
	bucketLast := map[string]float64{} // last cumulative bucket value per histogram
	bucketLe := map[string]float64{}   // last le bound per histogram
	seen := map[string]bool{}          // suffixes seen per histogram: name|suffix
	infVal := map[string]float64{}     // +Inf cumulative bucket value per histogram
	countVal := map[string]float64{}   // _count sample value per histogram
	sumVal := map[string]float64{}     // _sum sample value per histogram

	line := 0
	samples := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				name, typ := fields[2], ""
				if len(fields) == 4 {
					typ = strings.TrimSpace(fields[3])
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q for %s", line, typ, name)
				}
				types[name] = typ
				if typ == "histogram" {
					histograms = append(histograms, name)
					bucketLe[name] = math.Inf(-1)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		samples++
		family := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", line, name)
		}
		if typ == "histogram" {
			if suffix == "" {
				return fmt.Errorf("line %d: histogram %s sample must be _bucket/_sum/_count", line, family)
			}
			seen[family+"|"+suffix] = true
			switch suffix {
			case "_count":
				if math.IsNaN(value) || value < 0 {
					return fmt.Errorf("line %d: histogram %s _count %v invalid", line, family, value)
				}
				countVal[family] = value
			case "_sum":
				if math.IsNaN(value) {
					return fmt.Errorf("line %d: histogram %s _sum is NaN", line, family)
				}
				sumVal[family] = value
			}
			if suffix == "_bucket" {
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket of %s without le label", line, family)
				}
				bound, err := parseLe(le)
				if err != nil {
					return fmt.Errorf("line %d: %v", line, err)
				}
				if bound <= bucketLe[family] {
					return fmt.Errorf("line %d: histogram %s bucket bounds not ascending", line, family)
				}
				if value < bucketLast[family] {
					return fmt.Errorf("line %d: histogram %s buckets not cumulative", line, family)
				}
				bucketLe[family] = bound
				bucketLast[family] = value
				if math.IsInf(bound, 1) {
					seen[family+"|+Inf"] = true
					infVal[family] = value
				}
			}
		}
		if typ == "counter" && value < 0 {
			return fmt.Errorf("line %d: counter %s is negative", line, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for _, h := range histograms {
		for _, req := range []string{"|_bucket", "|_sum", "|_count", "|+Inf"} {
			if !seen[h+req] {
				return fmt.Errorf("histogram %s missing %s", h, strings.TrimPrefix(req, "|"))
			}
		}
		// Cross-series consistency: the +Inf cumulative bucket IS the
		// observation count, so it must equal _count exactly, and a
		// histogram that has observed nothing cannot have accumulated sum.
		if infVal[h] != countVal[h] {
			return fmt.Errorf("histogram %s inconsistent: +Inf bucket %v != _count %v", h, infVal[h], countVal[h])
		}
		if countVal[h] == 0 && sumVal[h] != 0 {
			return fmt.Errorf("histogram %s inconsistent: _count 0 with _sum %v", h, sumVal[h])
		}
	}
	return nil
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// parseSample splits one sample line into name, labels, and value.
func parseSample(text string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", text)
		}
		if err := parseLabels(rest[i+1:j], labels); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", text)
		}
		name = fields[0]
		rest = fields[1]
	}
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	// A trailing timestamp is permitted by the format; value is field 0.
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", text)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %v", text, err)
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string, into map[string]string) error {
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label in %q", s)
		}
		lname := strings.TrimSpace(s[:eq])
		if !validName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest := s[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", s)
		}
		// Scan for the closing quote, honoring escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", s)
		}
		into[lname] = rest[1:end]
		s = strings.TrimSpace(rest[end+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// SortedLabelNames is a test helper: label names of a parsed sample in
// stable order.
func SortedLabelNames(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
