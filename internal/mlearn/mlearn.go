// Package mlearn is a small, dependency-free machine-learning toolkit
// implementing the regression models the paper's Offline Profiler compares
// (Fig. 18): Linear Regression, Ridge Regression, a linear ε-SVR, a
// Multi-Layer Perceptron, and a CART-based Random Forest — together with
// the bucketized-target protocol of §4.2.1 and evaluation metrics.
//
// All models implement Regressor. Training is deterministic given the seed
// passed at construction.
package mlearn

import (
	"errors"
	"fmt"
	"math"
)

// Regressor is a trainable single-output regression model.
type Regressor interface {
	// Name identifies the model family ("RF", "LR", ...).
	Name() string
	// Fit trains the model on rows X (one feature vector per row) against
	// targets y. It returns an error if the data is empty or ragged.
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for one feature vector. Calling
	// Predict before a successful Fit returns 0.
	Predict(x []float64) float64
}

var (
	errNoData = errors.New("mlearn: empty training set")
	errRagged = errors.New("mlearn: ragged feature matrix")
)

// checkXY validates training data shape.
func checkXY(X [][]float64, y []float64) (nfeat int, err error) {
	if len(X) == 0 || len(y) == 0 {
		return 0, errNoData
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("mlearn: %d rows vs %d targets", len(X), len(y))
	}
	nfeat = len(X[0])
	if nfeat == 0 {
		return 0, errors.New("mlearn: zero-width feature vectors")
	}
	for _, row := range X {
		if len(row) != nfeat {
			return 0, errRagged
		}
	}
	return nfeat, nil
}

// Bucketizer discretizes a continuous target into k equal-width buckets
// over [Lo, Hi], mapping a value to the upper bound of its bucket — the
// protocol Optum uses to stabilize PSI and completion-time predictions
// (§4.2.1: "takes the upper bound of the bucket as the final prediction").
type Bucketizer struct {
	Lo, Hi float64
	K      int
}

// NewBucketizer returns a bucketizer with k buckets over [lo, hi].
// It panics if k <= 0 or hi <= lo, which indicates a construction bug.
func NewBucketizer(lo, hi float64, k int) Bucketizer {
	if k <= 0 || hi <= lo {
		panic(fmt.Sprintf("mlearn: invalid bucketizer [%v,%v] k=%d", lo, hi, k))
	}
	return Bucketizer{Lo: lo, Hi: hi, K: k}
}

// Apply maps v to the upper bound of its bucket. Values at or below Lo map
// to Lo itself (a zero PSI must stay zero — inflating calm hosts to the
// first bucket bound would manufacture phantom interference); values above
// Hi clamp to the last bucket bound.
func (b Bucketizer) Apply(v float64) float64 {
	w := (b.Hi - b.Lo) / float64(b.K)
	i := int(math.Ceil((v - b.Lo) / w))
	if i < 0 {
		i = 0
	}
	if i > b.K {
		i = b.K
	}
	return b.Lo + float64(i)*w
}

// ApplyAll bucketizes a slice, returning a new slice.
func (b Bucketizer) ApplyAll(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = b.Apply(v)
	}
	return out
}

// Bucketized wraps an inner model with target discretization: Fit trains on
// bucketized targets and Predict bucketizes the model output.
type Bucketized struct {
	Inner Regressor
	B     Bucketizer
}

// Name returns the inner model's name (the bucketization is a protocol
// detail, not a model family).
func (m *Bucketized) Name() string { return m.Inner.Name() }

// Fit trains the inner model against bucketized targets.
func (m *Bucketized) Fit(X [][]float64, y []float64) error {
	return m.Inner.Fit(X, m.B.ApplyAll(y))
}

// Predict returns the bucketized inner prediction.
func (m *Bucketized) Predict(x []float64) float64 {
	return m.B.Apply(m.Inner.Predict(x))
}

// EvaluateMAPE fits nothing; it scores a trained model on a test set with
// the Mean Absolute Percentage Error used in Fig. 18. Zero targets are
// skipped (MAPE is undefined there); if all are zero it returns 0.
func EvaluateMAPE(m Regressor, X [][]float64, y []float64) float64 {
	var s float64
	var k int
	for i, row := range X {
		if y[i] == 0 {
			continue
		}
		s += math.Abs(m.Predict(row)-y[i]) / math.Abs(y[i])
		k++
	}
	if k == 0 {
		return 0
	}
	return s / float64(k)
}

// TrainTestSplit deterministically splits rows into train and test sets:
// every k-th row (k = 1/testFrac) goes to the test set. A deterministic
// stride split keeps experiments reproducible without shuffling.
func TrainTestSplit(X [][]float64, y []float64, testFrac float64) (trX [][]float64, trY []float64, teX [][]float64, teY []float64) {
	if testFrac <= 0 || testFrac >= 1 || len(X) == 0 {
		return X, y, nil, nil
	}
	stride := int(1 / testFrac)
	if stride < 2 {
		stride = 2
	}
	for i := range X {
		if i%stride == stride-1 {
			teX = append(teX, X[i])
			teY = append(teY, y[i])
		} else {
			trX = append(trX, X[i])
			trY = append(trY, y[i])
		}
	}
	return trX, trY, teX, teY
}

// Standardizer scales features to zero mean and unit variance; the MLP and
// SVR need this to converge on the heterogeneous feature ranges the
// profiler uses (utilizations in [0,1], QPS in the hundreds).
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-feature means and standard deviations.
func FitStandardizer(X [][]float64) *Standardizer {
	if len(X) == 0 {
		return &Standardizer{}
	}
	nf := len(X[0])
	s := &Standardizer{Mean: make([]float64, nf), Std: make([]float64, nf)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(len(X))
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(len(X)))
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Standardizer) Transform(x []float64) []float64 {
	if len(s.Mean) == 0 {
		return x
	}
	out := make([]float64, len(x))
	for j, v := range x {
		if j < len(s.Mean) {
			out[j] = (v - s.Mean[j]) / s.Std[j]
		} else {
			out[j] = v
		}
	}
	return out
}

// TransformAll standardizes every row.
func (s *Standardizer) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}
