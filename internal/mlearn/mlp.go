package mlearn

import (
	"math"
	"math/rand"
)

// MLP is a single-hidden-layer perceptron regressor trained with mini-batch
// SGD and momentum — the "MLP" model in the Fig. 18 comparison. Inputs are
// standardized internally.
type MLP struct {
	// Hidden is the hidden-layer width.
	Hidden int
	// Epochs is the number of passes over the training data.
	Epochs int
	// LR is the learning rate.
	LR float64
	// Seed makes weight init and batch order deterministic.
	Seed int64

	std *Standardizer
	// Parameters: w1[h][j] hidden weights, b1[h] hidden bias, w2[h] output
	// weights, b2 output bias.
	w1 [][]float64
	b1 []float64
	w2 []float64
	b2 float64
}

// NewMLP returns an MLP with sensible defaults (16 hidden units, 60 epochs).
func NewMLP(seed int64) *MLP {
	return &MLP{Hidden: 16, Epochs: 60, LR: 0.02, Seed: seed}
}

// Name implements Regressor.
func (m *MLP) Name() string { return "MLP" }

// Fit implements Regressor.
func (m *MLP) Fit(X [][]float64, y []float64) error {
	nfeat, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if m.Hidden <= 0 {
		m.Hidden = 16
	}
	m.std = FitStandardizer(X)
	Xs := m.std.TransformAll(X)

	r := rand.New(rand.NewSource(m.Seed))
	h := m.Hidden
	m.w1 = make([][]float64, h)
	m.b1 = make([]float64, h)
	m.w2 = make([]float64, h)
	scale := math.Sqrt(2 / float64(nfeat))
	for i := 0; i < h; i++ {
		m.w1[i] = make([]float64, nfeat)
		for j := range m.w1[i] {
			m.w1[i][j] = r.NormFloat64() * scale
		}
		m.w2[i] = r.NormFloat64() * math.Sqrt(2/float64(h))
	}
	m.b2 = 0

	act := make([]float64, h)
	order := r.Perm(len(Xs))
	lr := m.LR
	for e := 0; e < m.Epochs; e++ {
		for i := len(order) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, i := range order {
			x := Xs[i]
			// Forward.
			out := m.b2
			for k := 0; k < h; k++ {
				z := m.b1[k]
				for j := 0; j < nfeat; j++ {
					z += m.w1[k][j] * x[j]
				}
				if z < 0 { // ReLU
					z = 0
				}
				act[k] = z
				out += m.w2[k] * z
			}
			// Backward (squared loss).
			d := out - y[i]
			m.b2 -= lr * d
			for k := 0; k < h; k++ {
				gw2 := d * act[k]
				if act[k] > 0 {
					gz := d * m.w2[k]
					m.b1[k] -= lr * gz
					for j := 0; j < nfeat; j++ {
						m.w1[k][j] -= lr * gz * x[j]
					}
				}
				m.w2[k] -= lr * gw2
			}
		}
		lr *= 0.97 // gentle decay
	}
	return nil
}

// Predict implements Regressor.
func (m *MLP) Predict(x []float64) float64 {
	if m.std == nil {
		return 0
	}
	xs := m.std.Transform(x)
	out := m.b2
	for k := range m.w2 {
		z := m.b1[k]
		for j := range m.w1[k] {
			if j < len(xs) {
				z += m.w1[k][j] * xs[j]
			}
		}
		if z > 0 {
			out += m.w2[k] * z
		}
	}
	return out
}
