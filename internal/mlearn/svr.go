package mlearn

import "math/rand"

// SVR is a linear ε-insensitive support-vector regressor trained with
// averaged stochastic sub-gradient descent on the primal objective
// (Pegasos-style). It stands in for scikit-learn's SVR in the Fig. 18 model
// comparison: like the paper's, it is a shallow model that underfits the
// strongly nonlinear PSI surface relative to the Random Forest.
type SVR struct {
	// Epsilon is the ε-insensitive tube half-width.
	Epsilon float64
	// C is the inverse regularization strength.
	C float64
	// Epochs is the number of passes over the training data.
	Epochs int
	// Seed makes training order deterministic.
	Seed int64

	std *Standardizer
	w   []float64
}

// NewSVR returns an SVR with common defaults (ε=0.01, C=1, 30 epochs).
func NewSVR(seed int64) *SVR {
	return &SVR{Epsilon: 0.01, C: 1, Epochs: 30, Seed: seed}
}

// Name implements Regressor.
func (m *SVR) Name() string { return "SVR" }

// Fit implements Regressor.
func (m *SVR) Fit(X [][]float64, y []float64) error {
	nfeat, err := checkXY(X, y)
	if err != nil {
		return err
	}
	m.std = FitStandardizer(X)
	Xs := m.std.TransformAll(X)

	r := rand.New(rand.NewSource(m.Seed))
	w := make([]float64, nfeat+1)
	lambda := 1 / (m.C * float64(len(X)))
	order := r.Perm(len(Xs))
	step := 0
	for e := 0; e < m.Epochs; e++ {
		// Re-shuffle between epochs for SGD mixing.
		for i := len(order) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, i := range order {
			step++
			eta := 1 / (lambda * float64(step+10))
			pred := dotBias(w, Xs[i])
			diff := pred - y[i]
			// Shrink weights (not bias) toward zero.
			for j := 0; j < nfeat; j++ {
				w[j] *= 1 - eta*lambda
			}
			// Sub-gradient of the ε-insensitive loss.
			var g float64
			switch {
			case diff > m.Epsilon:
				g = 1
			case diff < -m.Epsilon:
				g = -1
			}
			if g != 0 {
				for j := 0; j < nfeat; j++ {
					w[j] -= eta * g * Xs[i][j]
				}
				w[nfeat] -= eta * g
			}
		}
	}
	m.w = w
	return nil
}

// Predict implements Regressor.
func (m *SVR) Predict(x []float64) float64 {
	if m.std == nil {
		return 0
	}
	return dotBias(m.w, m.std.Transform(x))
}
