package mlearn

import (
	"fmt"
	"math"
)

// Linear is an ordinary-least-squares linear regressor solved by the normal
// equations with Gaussian elimination and partial pivoting. It is the "LR"
// model of Fig. 18.
type Linear struct {
	w []float64 // weights; w[len-1] is the intercept
}

// NewLinear returns an untrained linear regressor.
func NewLinear() *Linear { return &Linear{} }

// Name implements Regressor.
func (m *Linear) Name() string { return "LR" }

// Fit implements Regressor.
func (m *Linear) Fit(X [][]float64, y []float64) error {
	w, err := solveRidge(X, y, 1e-9) // tiny jitter for numerical stability
	if err != nil {
		return err
	}
	m.w = w
	return nil
}

// Predict implements Regressor.
func (m *Linear) Predict(x []float64) float64 { return dotBias(m.w, x) }

// Ridge is L2-regularized linear regression ("Ridge" in Fig. 18).
type Ridge struct {
	Lambda float64
	w      []float64
}

// NewRidge returns a ridge regressor with regularization strength lambda.
func NewRidge(lambda float64) *Ridge { return &Ridge{Lambda: lambda} }

// Name implements Regressor.
func (m *Ridge) Name() string { return "Ridge" }

// Fit implements Regressor.
func (m *Ridge) Fit(X [][]float64, y []float64) error {
	lambda := m.Lambda
	if lambda < 0 {
		return fmt.Errorf("mlearn: negative ridge lambda %v", lambda)
	}
	w, err := solveRidge(X, y, lambda)
	if err != nil {
		return err
	}
	m.w = w
	return nil
}

// Predict implements Regressor.
func (m *Ridge) Predict(x []float64) float64 { return dotBias(m.w, x) }

// dotBias evaluates w·[x, 1]; an untrained model (nil w) returns 0.
func dotBias(w, x []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var s float64
	n := len(w) - 1
	for j := 0; j < n && j < len(x); j++ {
		s += w[j] * x[j]
	}
	return s + w[n]
}

// solveRidge solves (AᵀA + λI) w = Aᵀy where A is X with an appended bias
// column. The intercept is not regularized.
func solveRidge(X [][]float64, y []float64, lambda float64) ([]float64, error) {
	nfeat, err := checkXY(X, y)
	if err != nil {
		return nil, err
	}
	n := nfeat + 1 // + bias
	// Build normal-equation system.
	ata := make([][]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n+1) // augmented with Aᵀy
	}
	row := make([]float64, n)
	for r, xr := range X {
		copy(row, xr)
		row[nfeat] = 1
		for i := 0; i < n; i++ {
			if row[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				ata[i][j] += row[i] * row[j]
			}
			ata[i][n] += row[i] * y[r]
		}
	}
	for i := 0; i < nfeat; i++ { // skip bias
		ata[i][i] += lambda
	}
	w, err := gaussSolve(ata)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// gaussSolve solves the augmented system m (n x n+1) in place.
func gaussSolve(m [][]float64) ([]float64, error) {
	n := len(m)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		if math.Abs(m[col][col]) < 1e-12 {
			// Singular column (e.g. constant feature): zero it out and
			// continue; the corresponding weight stays 0.
			m[col][col] = 1
			for j := col + 1; j <= n; j++ {
				m[col][j] = 0
			}
			continue
		}
		inv := 1 / m[col][col]
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col] * inv
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = m[i][n] / m[i][i]
	}
	return w, nil
}
