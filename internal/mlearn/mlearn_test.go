package mlearn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth generates a noisy dataset from f over [0,1]^nfeat.
func synth(n, nfeat int, seed int64, noise float64, f func([]float64) float64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, nfeat)
		for j := range x {
			x[j] = r.Float64()
		}
		X[i] = x
		y[i] = f(x) + noise*r.NormFloat64()
	}
	return X, y
}

func linearFn(x []float64) float64 { return 2*x[0] - 3*x[1] + 0.5 }

// nonlinearFn mimics the PSI surface: a threshold interaction.
func nonlinearFn(x []float64) float64 {
	v := 0.1
	if x[0] > 0.6 {
		v += 2 * (x[0] - 0.6) * (0.5 + x[1])
	}
	return v
}

func rmse(m Regressor, X [][]float64, y []float64) float64 {
	var s float64
	for i, row := range X {
		d := m.Predict(row) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(X)))
}

func TestCheckXY(t *testing.T) {
	if _, err := checkXY(nil, nil); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := checkXY([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := checkXY([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := checkXY([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero-width rows should fail")
	}
	if n, err := checkXY([][]float64{{1, 2}}, []float64{3}); err != nil || n != 2 {
		t.Errorf("valid data rejected: %v %v", n, err)
	}
}

func TestLinearRecoversCoefficients(t *testing.T) {
	X, y := synth(500, 2, 1, 0, linearFn)
	m := NewLinear()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(m, X, y); e > 1e-6 {
		t.Errorf("LR rmse on noiseless linear data = %v", e)
	}
	// Spot-check extrapolation.
	if got := m.Predict([]float64{1, 0}); math.Abs(got-2.5) > 1e-6 {
		t.Errorf("Predict(1,0) = %v, want 2.5", got)
	}
}

func TestLinearHandlesConstantFeature(t *testing.T) {
	// A constant column makes the normal equations singular without care.
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{2, 4, 6, 8}
	m := NewLinear()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{5, 5}); math.Abs(got-10) > 1e-3 {
		t.Errorf("Predict = %v, want 10", got)
	}
}

func TestRidgeShrinks(t *testing.T) {
	X, y := synth(200, 2, 2, 0.1, linearFn)
	strong := NewRidge(1e6)
	if err := strong.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With huge regularization, slope weights shrink toward zero, so
	// predictions collapse toward the intercept/mean.
	spread := math.Abs(strong.Predict([]float64{1, 0}) - strong.Predict([]float64{0, 1}))
	if spread > 0.2 {
		t.Errorf("heavily regularized ridge should be nearly flat; spread=%v", spread)
	}
	weak := NewRidge(1e-6)
	if err := weak.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(weak, X, y); e > 0.2 {
		t.Errorf("weak ridge rmse = %v", e)
	}
	if err := NewRidge(-1).Fit(X, y); err == nil {
		t.Error("negative lambda should fail")
	}
}

func TestUntrainedModelsPredictZero(t *testing.T) {
	models := []Regressor{NewLinear(), NewRidge(1), NewSVR(1), NewMLP(1), NewTree(4, 1), NewForest(5, 1)}
	for _, m := range models {
		if got := m.Predict([]float64{1, 2}); got != 0 {
			t.Errorf("%s untrained Predict = %v, want 0", m.Name(), got)
		}
	}
}

func TestSVRFitsLinear(t *testing.T) {
	X, y := synth(600, 2, 3, 0.02, linearFn)
	m := NewSVR(7)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(m, X, y); e > 0.25 {
		t.Errorf("SVR rmse on linear data = %v", e)
	}
}

func TestMLPFitsNonlinear(t *testing.T) {
	X, y := synth(800, 2, 4, 0.01, nonlinearFn)
	m := NewMLP(11)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mlpErr := rmse(m, X, y)
	lr := NewLinear()
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if lrErr := rmse(lr, X, y); mlpErr >= lrErr {
		t.Errorf("MLP (%v) should beat LR (%v) on nonlinear data", mlpErr, lrErr)
	}
}

func TestTreeFitsNonlinear(t *testing.T) {
	X, y := synth(800, 2, 5, 0.01, nonlinearFn)
	m := NewTree(10, 3)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(m, X, y); e > 0.1 {
		t.Errorf("tree rmse = %v", e)
	}
}

func TestTreeDepthBound(t *testing.T) {
	X, y := synth(200, 2, 6, 0.5, nonlinearFn)
	shallow := NewTree(1, 1)
	if err := shallow.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Depth-1 tree has at most 2 distinct outputs.
	seen := map[float64]bool{}
	for _, x := range X {
		seen[shallow.Predict(x)] = true
	}
	if len(seen) > 2 {
		t.Errorf("depth-1 tree produced %d distinct outputs", len(seen))
	}
}

func TestForestBeatsLinearOnNonlinear(t *testing.T) {
	X, y := synth(1200, 3, 8, 0.02, nonlinearFn)
	trX, trY, teX, teY := TrainTestSplit(X, y, 0.25)
	rf := NewForest(25, 9)
	if err := rf.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	lr := NewLinear()
	if err := lr.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	rfErr := rmse(rf, teX, teY)
	lrErr := rmse(lr, teX, teY)
	if rfErr >= lrErr {
		t.Errorf("RF test rmse (%v) should beat LR (%v) — the Fig. 18 ordering", rfErr, lrErr)
	}
}

func TestForestDeterministic(t *testing.T) {
	X, y := synth(300, 2, 10, 0.05, nonlinearFn)
	a := NewForest(10, 42)
	b := NewForest(10, 42)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:50] {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("forest training not deterministic under fixed seed")
		}
	}
}

func TestForestSerialMatchesParallel(t *testing.T) {
	X, y := synth(300, 2, 12, 0.05, nonlinearFn)
	par := NewForest(8, 5)
	ser := NewForest(8, 5)
	ser.Parallel = false
	if err := par.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := ser.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:50] {
		if par.Predict(x) != ser.Predict(x) {
			t.Fatal("parallel and serial forest training disagree")
		}
	}
}

func TestBucketizer(t *testing.T) {
	b := NewBucketizer(0, 1, 10)
	cases := []struct{ in, want float64 }{
		{0.25, 0.3}, // §4.2.1's worked example: 0.2-0.3 bucket -> 0.3
		{0.0, 0.0},  // exact zero stays zero
		{0.05, 0.1},
		{1.0, 1.0},
		{-5, 0.0},
		{5, 1.0},
		{0.3, 0.3}, // boundary maps to its own bucket's upper bound
	}
	for _, c := range cases {
		if got := b.Apply(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Apply(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	all := b.ApplyAll([]float64{0.25, 0.95})
	if all[0] != b.Apply(0.25) || all[1] != b.Apply(0.95) {
		t.Error("ApplyAll inconsistent with Apply")
	}
}

func TestBucketizerPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBucketizer(1, 0, 10)
}

// Property: bucketization is idempotent and within bounds.
func TestBucketizeIdempotentProperty(t *testing.T) {
	b := NewBucketizer(0, 1, 25)
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		one := b.Apply(v)
		return b.Apply(one) == one && one >= 0 && one <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBucketizedModel(t *testing.T) {
	X, y := synth(500, 2, 13, 0.02, func(x []float64) float64 {
		return 0.5 * (x[0] + x[1])
	})
	m := &Bucketized{Inner: NewForest(10, 3), B: NewBucketizer(0, 1, 25)}
	if m.Name() != "RF" {
		t.Errorf("Name = %q", m.Name())
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Every prediction must be a bucket bound.
	for _, x := range X[:100] {
		p := m.Predict(x)
		k := p * 25
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("prediction %v not on bucket grid", p)
		}
	}
	if mape := EvaluateMAPE(m, X, y); mape > 0.4 {
		t.Errorf("bucketized RF MAPE = %v", mape)
	}
}

func TestTrainTestSplit(t *testing.T) {
	X, y := synth(100, 2, 14, 0, linearFn)
	trX, trY, teX, teY := TrainTestSplit(X, y, 0.25)
	if len(trX) != len(trY) || len(teX) != len(teY) {
		t.Fatal("split length mismatch")
	}
	if len(trX)+len(teX) != 100 {
		t.Fatalf("split lost rows: %d + %d", len(trX), len(teX))
	}
	if len(teX) != 25 {
		t.Errorf("test size = %d, want 25", len(teX))
	}
	// Degenerate fractions: everything in train.
	trX, _, teX, _ = TrainTestSplit(X, y, 0)
	if len(trX) != 100 || teX != nil {
		t.Error("testFrac=0 should keep all rows in train")
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	s := FitStandardizer(X)
	out := s.TransformAll(X)
	for j := 0; j < 2; j++ {
		var col []float64
		for i := range out {
			col = append(col, out[i][j])
		}
		var mean, v float64
		for _, x := range col {
			mean += x
		}
		mean /= 3
		for _, x := range col {
			v += (x - mean) * (x - mean)
		}
		if math.Abs(mean) > 1e-9 || math.Abs(v/3-1) > 1e-9 {
			t.Errorf("col %d not standardized: mean=%v var=%v", j, mean, v/3)
		}
	}
	// Constant column must not divide by zero.
	s2 := FitStandardizer([][]float64{{5}, {5}})
	if got := s2.Transform([]float64{5})[0]; got != 0 {
		t.Errorf("constant column transform = %v", got)
	}
}

func TestEvaluateMAPE(t *testing.T) {
	m := NewLinear()
	X := [][]float64{{1}, {2}}
	y := []float64{2, 4}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := EvaluateMAPE(m, X, y); got > 1e-9 {
		t.Errorf("MAPE on training fit = %v", got)
	}
	if got := EvaluateMAPE(m, [][]float64{{1}}, []float64{0}); got != 0 {
		t.Errorf("MAPE with zero target = %v, want 0 (skipped)", got)
	}
}

func TestAllModelsRejectBadData(t *testing.T) {
	models := []Regressor{NewLinear(), NewRidge(0.1), NewSVR(1), NewMLP(1), NewTree(4, 1), NewForest(3, 1)}
	for _, m := range models {
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%s accepted empty data", m.Name())
		}
		if err := m.Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
			t.Errorf("%s accepted ragged data", m.Name())
		}
	}
}
