package mlearn

import (
	"math/rand"
	"sort"
)

// Tree is a CART regression tree grown by variance reduction. It is the
// building block of the Random Forest and can also be used standalone.
type Tree struct {
	// MaxDepth bounds tree depth (<=0 means 12).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (<=0 means 3).
	MinLeaf int
	// MaxFeatures limits the number of features considered per split
	// (<=0 means all). The forest sets this for feature bagging.
	MaxFeatures int
	// Seed drives the feature subsampling.
	Seed int64

	root *treeNode
	r    *rand.Rand
}

type treeNode struct {
	feature int // -1 for leaves
	thresh  float64
	value   float64 // leaf prediction
	left    *treeNode
	right   *treeNode
}

// NewTree returns a regression tree with the given depth bound.
func NewTree(maxDepth int, seed int64) *Tree {
	return &Tree{MaxDepth: maxDepth, Seed: seed}
}

// Name implements Regressor.
func (t *Tree) Name() string { return "Tree" }

// Fit implements Regressor.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	if t.MaxDepth <= 0 {
		t.MaxDepth = 12
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 3
	}
	t.r = rand.New(rand.NewSource(t.Seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(X, y, idx, 0)
	return nil
}

// Predict implements Regressor.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for n.feature >= 0 {
		if n.feature < len(x) && x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

func (t *Tree) grow(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	mean, sse := meanSSE(y, idx)
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf || sse < 1e-12 {
		return &treeNode{feature: -1, value: mean}
	}
	feat, thresh, ok := t.bestSplit(X, y, idx, sse)
	if !ok {
		return &treeNode{feature: -1, value: mean}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][feat] <= thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < t.MinLeaf || len(ri) < t.MinLeaf {
		return &treeNode{feature: -1, value: mean}
	}
	return &treeNode{
		feature: feat,
		thresh:  thresh,
		left:    t.grow(X, y, li, depth+1),
		right:   t.grow(X, y, ri, depth+1),
	}
}

// bestSplit scans a (possibly subsampled) feature set for the split with the
// largest SSE reduction using the sorted-prefix-sum method.
func (t *Tree) bestSplit(X [][]float64, y []float64, idx []int, parentSSE float64) (feat int, thresh float64, ok bool) {
	nfeat := len(X[0])
	feats := make([]int, nfeat)
	for j := range feats {
		feats[j] = j
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < nfeat {
		t.r.Shuffle(nfeat, func(a, b int) { feats[a], feats[b] = feats[b], feats[a] })
		feats = feats[:t.MaxFeatures]
	}

	bestGain := 1e-12
	sorted := make([]int, len(idx))
	for _, f := range feats {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return X[sorted[a]][f] < X[sorted[b]][f] })
		// Prefix sums of y and y².
		var sumL, sumL2 float64
		var sumAll, sumAll2 float64
		for _, i := range sorted {
			sumAll += y[i]
			sumAll2 += y[i] * y[i]
		}
		n := float64(len(sorted))
		for k := 0; k < len(sorted)-1; k++ {
			i := sorted[k]
			sumL += y[i]
			sumL2 += y[i] * y[i]
			// Can't split between equal feature values.
			if X[sorted[k+1]][f] == X[i][f] {
				continue
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < t.MinLeaf || int(nr) < t.MinLeaf {
				continue
			}
			sseL := sumL2 - sumL*sumL/nl
			sumR := sumAll - sumL
			sseR := (sumAll2 - sumL2) - sumR*sumR/nr
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				feat = f
				thresh = (X[i][f] + X[sorted[k+1]][f]) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

func meanSSE(y []float64, idx []int) (mean, sse float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	var s, s2 float64
	for _, i := range idx {
		s += y[i]
		s2 += y[i] * y[i]
	}
	n := float64(len(idx))
	mean = s / n
	sse = s2 - s*s/n
	if sse < 0 {
		sse = 0
	}
	return mean, sse
}
