package mlearn

import (
	"math/rand"
	"runtime"
	"sync"
)

// Forest is a Random Forest regressor: bagged CART trees with per-split
// feature subsampling. It is the model the Offline Profiler adopts, "as it
// can yield the highest accuracy among various models" (§4.2.1, Fig. 18).
type Forest struct {
	// Trees is the ensemble size (<=0 means 30).
	Trees int
	// MaxDepth bounds each tree (<=0 means 12).
	MaxDepth int
	// MinLeaf is each tree's minimum leaf size (<=0 means 3).
	MinLeaf int
	// Seed drives bootstrap sampling and feature bagging.
	Seed int64
	// Parallel trains trees across CPUs when true.
	Parallel bool

	trees []*Tree
}

// NewForest returns a Random Forest with n trees.
func NewForest(n int, seed int64) *Forest {
	return &Forest{Trees: n, Seed: seed, Parallel: true}
}

// Name implements Regressor.
func (f *Forest) Name() string { return "RF" }

// Fit implements Regressor.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	nfeat, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if f.Trees <= 0 {
		f.Trees = 30
	}
	maxFeat := isqrtCeil(nfeat)

	// Pre-draw bootstrap samples sequentially so results do not depend on
	// goroutine interleaving.
	r := rand.New(rand.NewSource(f.Seed))
	n := len(X)
	samples := make([][][]float64, f.Trees)
	targets := make([][]float64, f.Trees)
	seeds := make([]int64, f.Trees)
	for t := 0; t < f.Trees; t++ {
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			k := r.Intn(n)
			bx[i] = X[k]
			by[i] = y[k]
		}
		samples[t], targets[t] = bx, by
		seeds[t] = r.Int63()
	}

	f.trees = make([]*Tree, f.Trees)
	build := func(t int) error {
		tr := &Tree{MaxDepth: f.MaxDepth, MinLeaf: f.MinLeaf, MaxFeatures: maxFeat, Seed: seeds[t]}
		if err := tr.Fit(samples[t], targets[t]); err != nil {
			return err
		}
		f.trees[t] = tr
		return nil
	}

	if !f.Parallel || f.Trees < 4 {
		for t := 0; t < f.Trees; t++ {
			if err := build(t); err != nil {
				return err
			}
		}
		return nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > f.Trees {
		workers = f.Trees
	}
	var wg sync.WaitGroup
	errCh := make(chan error, f.Trees)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range work {
				if err := build(t); err != nil {
					errCh <- err
				}
			}
		}()
	}
	for t := 0; t < f.Trees; t++ {
		work <- t
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Predict implements Regressor: the mean of the per-tree predictions.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// isqrtCeil returns ceil(sqrt(n)) for small positive n.
func isqrtCeil(n int) int {
	k := 1
	for k*k < n {
		k++
	}
	return k
}
