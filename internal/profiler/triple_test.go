package profiler

import (
	"testing"
	"testing/quick"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

func TestTripleKeySortsOperands(t *testing.T) {
	perms := [][3]int32{
		{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1},
	}
	want := tripleKey(1, 2, 3)
	for _, p := range perms {
		if tripleKey(p[0], p[1], p[2]) != want {
			t.Fatalf("tripleKey not order-invariant for %v", p)
		}
	}
	if tripleKey(1, 2, 3) == tripleKey(1, 2, 4) {
		t.Fatal("distinct triples collide")
	}
}

func TestTripleKeyProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		x, y, z := int32(a), int32(b), int32(c)
		k := tripleKey(x, y, z)
		return k == tripleKey(z, y, x) && k == tripleKey(y, z, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTriplesDisabledByDefault(t *testing.T) {
	s := NewEROStore()
	if s.TriplesEnabled() {
		t.Fatal("triples enabled by default")
	}
	if got := s.ERO3("a", "b", "c"); got != 1 {
		t.Fatalf("unknown-everything ERO3 = %v, want 1", got)
	}
}

func TestTriplesObservedAndTighter(t *testing.T) {
	cfg := trace.SmallConfig()
	cfg.NumNodes = 4
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	// Place a modest pod set so the O(n^3) scan runs (< tripleCap).
	placed := 0
	for _, p := range w.Pods {
		if placed >= 20 {
			break
		}
		if _, err := c.Place(p, 0, 0); err == nil {
			placed++
		}
	}
	s := NewEROStore()
	s.EnableTriples(1)
	if !s.TriplesEnabled() {
		t.Fatal("EnableTriples did not enable")
	}
	for ts := int64(0); ts < 1800; ts += 30 {
		snap := c.Snapshot(0, ts, false)
		s.ObserveSnapshot(&snap)
	}
	if s.Triples() == 0 {
		t.Fatal("no triples observed")
	}
	// For any observed triple, ERO3 <= max pairwise ERO + epsilon: a
	// three-way peak coincidence is rarer than a two-way one, and both are
	// normalized by their own request sums.
	pods := c.Node(0).Pods()
	tighter, total := 0, 0
	for i := 0; i < len(pods); i++ {
		for j := i + 1; j < len(pods); j++ {
			for k := j + 1; k < len(pods); k++ {
				a := pods[i].Pod.AppID
				b := pods[j].Pod.AppID
				cc := pods[k].Pod.AppID
				e3 := s.ERO3(a, b, cc)
				if e3 <= 0 || e3 > 1 {
					t.Fatalf("ERO3 out of range: %v", e3)
				}
				maxPair := s.ERO(a, b)
				if v := s.ERO(a, cc); v > maxPair {
					maxPair = v
				}
				if v := s.ERO(b, cc); v > maxPair {
					maxPair = v
				}
				total++
				if e3 <= maxPair+1e-9 {
					tighter++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no triples to check")
	}
	if frac := float64(tighter) / float64(total); frac < 0.8 {
		t.Errorf("only %.2f of triples at or below their loosest pair", frac)
	}
}

func TestTripleFallbackToPairs(t *testing.T) {
	s := NewEROStore()
	s.EnableTriples(1)
	// Observe only a pair; the triple involving a third app must fall back
	// to the pairwise max.
	cfg := trace.SmallConfig()
	cfg.NumNodes = 2
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	var a, b *trace.Pod
	for _, p := range w.Pods {
		if a == nil {
			a = p
			continue
		}
		if p.AppID != a.AppID {
			b = p
			break
		}
	}
	if _, err := c.Place(a, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(b, 0, 0); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot(0, 60, false)
	s.ObserveSnapshot(&snap)
	pairERO := s.ERO(a.AppID, b.AppID)
	if pairERO >= 1 {
		t.Skip("pair not observed below 1")
	}
	got := s.ERO3(a.AppID, b.AppID, "never-seen-app")
	if got != pairERO {
		t.Errorf("fallback ERO3 = %v, want pairwise %v", got, pairERO)
	}
}

func TestTripleSubsampling(t *testing.T) {
	cfg := trace.SmallConfig()
	cfg.NumNodes = 2
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	for i, p := range w.Pods {
		if i >= 10 {
			break
		}
		c.Place(p, 0, 0) //nolint:errcheck
	}
	every4 := NewEROStore()
	every4.EnableTriples(4)
	every1 := NewEROStore()
	every1.EnableTriples(1)
	for ts := int64(0); ts < 16*30; ts += 30 {
		snap := c.Snapshot(0, ts, false)
		every4.ObserveSnapshot(&snap)
		every1.ObserveSnapshot(&snap)
	}
	if every4.Triples() == 0 {
		t.Error("subsampled store observed nothing")
	}
	if every1.Triples() < every4.Triples() {
		t.Error("denser sampling observed fewer triples")
	}
}
