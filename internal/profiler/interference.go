package profiler

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"unisched/internal/cluster"
	"unisched/internal/mlearn"
	"unisched/internal/trace"
)

// maxRowsPerApp bounds per-application training data with reservoir
// sampling: enough for the learning curves to flatten, flat in memory.
const maxRowsPerApp = 3000

// LSFeatures builds the Eq. 1 feature vector for a latency-sensitive pod:
// pod CPU and memory utilization (fractions of request), host CPU and
// memory utilization, and QPS.
func LSFeatures(podCPUUtil, podMemUtil, hostCPUUtil, hostMemUtil, qps float64) []float64 {
	return []float64{podCPUUtil, podMemUtil, hostCPUUtil, hostMemUtil, qps}
}

// BEFeatures builds the Eq. 2 feature vector for a best-effort pod: the
// maxima over its run of pod CPU/memory utilization and host CPU/memory
// utilization.
func BEFeatures(maxPodCPUUtil, maxPodMemUtil, maxHostCPUUtil, maxHostMemUtil float64) []float64 {
	return []float64{maxPodCPUUtil, maxPodMemUtil, maxHostCPUUtil, maxHostMemUtil}
}

// ModelFactory constructs a fresh regressor for one application's profile.
// The default is the bucketized Random Forest the paper settles on.
type ModelFactory func(seed int64) mlearn.Regressor

// DefaultFactory returns the Random Forest factory the scheduler's
// profiles use. Training targets are always discretized per §4.2.1 (see
// trainGroup), but the scheduler consumes the continuous ensemble output:
// the Node Selector compares marginal interference between candidate
// hosts, and quantizing predictions to bucket bounds would erase that
// signal. BucketizedFactory applies the full §4.2.1 protocol including
// output discretization, as evaluated in Fig. 18.
func DefaultFactory() ModelFactory {
	return func(seed int64) mlearn.Regressor {
		return mlearn.NewForest(20, seed)
	}
}

// BucketizedFactory returns the literal §4.2.1 protocol: a Random Forest
// whose predictions are mapped to the upper bound of their bucket.
func BucketizedFactory() ModelFactory {
	return func(seed int64) mlearn.Regressor {
		return &mlearn.Bucketized{
			Inner: mlearn.NewForest(20, seed),
			B:     mlearn.NewBucketizer(0, 1, 25),
		}
	}
}

// appSamples holds the training rows for one application in two stratified
// reservoirs: calm samples (target below stratGate) and contended ones.
// Long calm stretches would otherwise dilute the contended regime out of a
// single reservoir, leaving the profile blind exactly where it matters.
type appSamples struct {
	lo, hi reservoir
	maxCT  float64 // BE: largest raw completion time, for normalization
}

// stratGate splits the PSI target space into calm vs contended strata.
const stratGate = 0.05

type reservoir struct {
	x    [][]float64
	y    []float64
	seen int
}

func (rv *reservoir) add(r *rand.Rand, x []float64, y float64, cap int) {
	rv.seen++
	if len(rv.x) < cap {
		rv.x = append(rv.x, x)
		rv.y = append(rv.y, y)
		return
	}
	if k := r.Intn(rv.seen); k < cap {
		rv.x[k] = x
		rv.y[k] = y
	}
}

func (a *appSamples) add(r *rand.Rand, x []float64, y float64) {
	if y >= stratGate {
		a.hi.add(r, x, y, maxRowsPerApp/2)
		return
	}
	a.lo.add(r, x, y, maxRowsPerApp/2)
}

// rows returns the concatenated strata (calm first, then contended).
func (a *appSamples) rows() ([][]float64, []float64) {
	x := make([][]float64, 0, len(a.lo.x)+len(a.hi.x))
	y := make([]float64, 0, len(a.lo.y)+len(a.hi.y))
	x = append(append(x, a.lo.x...), a.hi.x...)
	y = append(append(y, a.lo.y...), a.hi.y...)
	return x, y
}

func (a *appSamples) len() int { return len(a.lo.x) + len(a.hi.x) }

// Collector accumulates profiler training data from trace samples. It is
// the offline half of the Tracing Coordinator pipeline.
type Collector struct {
	mu sync.Mutex
	r  *rand.Rand

	ero   *EROStore
	stats *AppStatsStore

	ls map[string]*appSamples // PSI rows per LS app
	be map[string]*appSamples // raw-CT rows per BE app

	// beRun aggregates per-running-BE-pod maxima until completion.
	beRun map[int]*beAgg
}

type beAgg struct {
	appID                  string
	maxPodCPU, maxPodMem   float64
	maxHostCPU, maxHostMem float64
}

// NewCollector returns an empty collector seeded for reproducible
// reservoir sampling.
func NewCollector(seed int64) *Collector {
	return &Collector{
		r:     rand.New(rand.NewSource(seed)),
		ero:   NewEROStore(),
		stats: NewAppStatsStore(),
		ls:    make(map[string]*appSamples),
		be:    make(map[string]*appSamples),
		beRun: make(map[int]*beAgg),
	}
}

// ERO exposes the live Resource Usage Profiler store.
func (c *Collector) ERO() *EROStore { return c.ero }

// Stats exposes the live per-application maxima store.
func (c *Collector) Stats() *AppStatsStore { return c.stats }

// ObserveTick feeds one simulation tick's node snapshots into every
// profiler: pairwise ERO updates, memory statistics, LS PSI rows, and BE
// per-run maxima.
func (c *Collector) ObserveTick(snaps []cluster.NodeSnapshot) {
	for i := range snaps {
		c.ero.ObserveSnapshot(&snaps[i])
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for si := range snaps {
		snap := &snaps[si]
		hostC := snap.CPUUtil()
		hostM := snap.MemUtil()
		for pi := range snap.Pods {
			p := &snap.Pods[pi]
			pod := p.Pod.Pod
			req := pod.Request
			podC, podM := 0.0, 0.0
			if req.CPU > 0 {
				podC = p.CPUUse / req.CPU
			}
			if req.Mem > 0 {
				podM = p.MemUse / req.Mem
			}
			c.stats.Observe(pod.AppID, podC, podM, p.QPS)
			switch {
			case pod.SLO.LatencySensitive():
				s := c.ls[pod.AppID]
				if s == nil {
					s = &appSamples{}
					c.ls[pod.AppID] = s
				}
				s.add(c.r, LSFeatures(podC, podM, hostC, hostM, p.QPS), p.CPUPSI60)
			case pod.SLO == trace.SLOBE:
				agg := c.beRun[pod.ID]
				if agg == nil {
					agg = &beAgg{appID: pod.AppID}
					c.beRun[pod.ID] = agg
				}
				agg.maxPodCPU = maxf(agg.maxPodCPU, podC)
				agg.maxPodMem = maxf(agg.maxPodMem, podM)
				agg.maxHostCPU = maxf(agg.maxHostCPU, hostC)
				agg.maxHostMem = maxf(agg.maxHostMem, hostM)
			}
		}
	}
}

// ObserveCompletion records a finished BE pod's completion time against the
// maxima aggregated over its run. Preempted pods are skipped — their
// truncated runtimes are not completion times.
func (c *Collector) ObserveCompletion(ps *cluster.PodState) {
	if ps.Pod.SLO != trace.SLOBE || !ps.Done || ps.Preempted {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	agg, ok := c.beRun[ps.Pod.ID]
	if !ok {
		return
	}
	delete(c.beRun, ps.Pod.ID)
	ct := float64(ps.Finish - ps.Start)
	if ct <= 0 {
		return
	}
	s := c.be[ps.Pod.AppID]
	if s == nil {
		s = &appSamples{}
		c.be[ps.Pod.AppID] = s
	}
	if ct > s.maxCT {
		s.maxCT = ct
	}
	s.add(c.r, BEFeatures(agg.maxPodCPU, agg.maxPodMem, agg.maxHostCPU, agg.maxHostMem), ct)
}

// AppModel is one application's trained interference profile plus its
// held-out accuracy, which the scheduler uses to decide whether the profile
// is trustworthy (§5.2: Optum only optimizes BE apps with MAPE below 0.2).
type AppModel struct {
	App   string
	Model mlearn.Regressor
	MAPE  float64
	Rows  int
}

// Models is the trained Interference Profiler output: per-application PSI
// models for LS apps and normalized-CT models for BE apps.
type Models struct {
	LS map[string]*AppModel
	BE map[string]*AppModel
}

// minRowsToTrain is the smallest per-app sample count worth fitting.
const minRowsToTrain = 40

// targetBuckets is the §4.2.1 ground-truth discretization: PSI and
// normalized completion time are mapped to the upper bound of their bucket
// before the models ever see them, and accuracy is evaluated against these
// discretized targets (the evaluation in §5.2 uses 25 intervals).
var targetBuckets = mlearn.NewBucketizer(0, 1, 25)

// TrainInterference fits one model per application using the factory and
// scores each on a held-out split. BE targets are normalized to the
// application's maximum observed completion time before fitting, matching
// Eq. 2's normalized CT.
func (c *Collector) TrainInterference(factory ModelFactory, testFrac float64) (*Models, error) {
	if factory == nil {
		factory = DefaultFactory()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &Models{LS: make(map[string]*AppModel), BE: make(map[string]*AppModel)}
	if err := trainGroup(c.ls, factory, testFrac, false, out.LS); err != nil {
		return nil, err
	}
	if err := trainGroup(c.be, factory, testFrac, true, out.BE); err != nil {
		return nil, err
	}
	return out, nil
}

func trainGroup(group map[string]*appSamples, factory ModelFactory, testFrac float64, normalizeCT bool, out map[string]*AppModel) error {
	// Deterministic iteration order for reproducible seeds.
	apps := make([]string, 0, len(group))
	for app := range group {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for seed, app := range apps {
		s := group[app]
		if s.len() < minRowsToTrain {
			continue
		}
		x, y := s.rows()
		if normalizeCT && s.maxCT > 0 {
			for i := range y {
				y[i] /= s.maxCT
			}
		}
		// Discretize the ground truth (§4.2.1).
		y = targetBuckets.ApplyAll(y)
		trX, trY, teX, teY := mlearn.TrainTestSplit(x, y, testFrac)
		if len(teX) == 0 {
			trX, trY = x, y
			teX, teY = x, y
		}
		m := factory(int64(seed) + 1)
		if err := m.Fit(trX, trY); err != nil {
			return fmt.Errorf("profiler: fit %s: %w", app, err)
		}
		out[app] = &AppModel{App: app, Model: m, MAPE: mlearn.EvaluateMAPE(m, teX, teY), Rows: s.len()}
	}
	return nil
}

// featPool recycles prediction feature vectors. A literal slice would
// escape through the Regressor interface call, costing one heap allocation
// per model evaluation — the scheduler evaluates several per candidate on
// its zero-alloc scan path. Pooled (not per-Models) scratch keeps Predict*
// safe for the scan's concurrent goroutines.
var featPool = sync.Pool{New: func() any { return new([5]float64) }}

// PredictPSI evaluates an LS application's profile (Eq. 9 input shape);
// unknown applications return the conservative worst case 1.
func (m *Models) PredictPSI(app string, podCPUUtil, podMemUtil, hostCPUUtil, hostMemUtil, qps float64) float64 {
	am, ok := m.LS[app]
	if !ok {
		return 1
	}
	f := featPool.Get().(*[5]float64)
	*f = [5]float64{podCPUUtil, podMemUtil, hostCPUUtil, hostMemUtil, qps}
	v := clamp01(am.Model.Predict(f[:]))
	featPool.Put(f)
	return v
}

// PredictCT evaluates a BE application's normalized-completion-time profile
// (Eq. 10 input shape); unknown applications return 1.
func (m *Models) PredictCT(app string, maxPodCPUUtil, maxPodMemUtil, maxHostCPUUtil, maxHostMemUtil float64) float64 {
	am, ok := m.BE[app]
	if !ok {
		return 1
	}
	f := featPool.Get().(*[5]float64)
	*f = [5]float64{maxPodCPUUtil, maxPodMemUtil, maxHostCPUUtil, maxHostMemUtil, 0}
	v := clamp01(am.Model.Predict(f[:4]))
	featPool.Put(f)
	return v
}

// TrustedBE reports whether a BE application's profile is accurate enough
// to optimize for (MAPE below the gate, §5.2 uses 0.2).
func (m *Models) TrustedBE(app string, mapeGate float64) bool {
	am, ok := m.BE[app]
	return ok && am.MAPE <= mapeGate
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
