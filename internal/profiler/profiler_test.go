package profiler

import (
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/mlearn"
	"unisched/internal/trace"
)

// buildLoadedCluster places pods round-robin and runs ticks feeding a
// collector, returning everything needed by profiler tests.
func buildLoadedCluster(t *testing.T, ticks int) (*Collector, *cluster.Cluster, *trace.Workload) {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = 12
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	col := NewCollector(1)

	next := 0
	placed := map[int]bool{}
	for tick := 0; tick < ticks; tick++ {
		now := int64(tick) * trace.SampleInterval
		// Admit newly submitted pods round-robin (no scheduler here; the
		// profiler only needs co-location variety).
		for _, p := range w.Pods {
			if p.Submit > now {
				break
			}
			if placed[p.ID] {
				continue
			}
			if _, err := c.Place(p, next%len(w.Nodes), now); err == nil {
				placed[p.ID] = true
				next++
			}
		}
		completed, snaps := c.Tick(now, float64(trace.SampleInterval))
		col.ObserveTick(snaps)
		for _, ps := range completed {
			col.ObserveCompletion(ps)
		}
	}
	return col, c, w
}

func TestEROBounds(t *testing.T) {
	col, _, _ := buildLoadedCluster(t, 60)
	s := col.ERO()
	if s.Pairs() == 0 {
		t.Fatal("no pairs observed")
	}
	lo, hi := eroUpperBound(s)
	if lo <= 0 || hi > 1 {
		t.Errorf("ERO range [%v, %v] outside (0, 1]", lo, hi)
	}
}

func TestERODefaultsToOne(t *testing.T) {
	s := NewEROStore()
	if got := s.ERO("a", "b"); got != 1 {
		t.Errorf("unknown pair ERO = %v, want 1", got)
	}
	if got := s.MemProfile("a"); got != 1 {
		t.Errorf("unknown app MemProfile = %v, want 1", got)
	}
}

func TestEROObservedBelowOne(t *testing.T) {
	// Co-located pods whose combined usage is far below combined requests
	// must get ERO << 1 — the whole point of Eq. 3.
	col, c, _ := buildLoadedCluster(t, 60)
	s := col.ERO()
	// Find an actually observed pair on some node.
	var a, b string
	for _, n := range c.Nodes() {
		pods := n.Pods()
		for i := 0; i < len(pods) && a == ""; i++ {
			for j := i + 1; j < len(pods); j++ {
				if pods[i].Pod.AppID != pods[j].Pod.AppID {
					a, b = pods[i].Pod.AppID, pods[j].Pod.AppID
					break
				}
			}
		}
	}
	if a == "" {
		t.Skip("no co-located pair found")
	}
	if got := s.ERO(a, b); got >= 1 {
		t.Errorf("observed pair ERO = %v, want < 1 (usage far below request)", got)
	}
	// Symmetry.
	if s.ERO(a, b) != s.ERO(b, a) {
		t.Error("ERO not symmetric")
	}
}

func TestEROMonotoneUnderObservations(t *testing.T) {
	// ERO only grows as more peaks are observed.
	cfg := trace.SmallConfig()
	cfg.NumNodes = 4
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	for _, p := range w.Pods[:40] {
		c.Place(p, 0, 0) //nolint:errcheck
	}
	s := NewEROStore()
	snap := c.Snapshot(0, 0, false)
	s.ObserveSnapshot(&snap)
	pods := c.Node(0).Pods()
	a, b := pods[0].Pod.AppID, pods[1].Pod.AppID
	before := s.ERO(a, b)
	for ts := int64(30); ts < 3000; ts += 30 {
		snap := c.Snapshot(0, ts, false)
		s.ObserveSnapshot(&snap)
		after := s.ERO(a, b)
		if after < before {
			t.Fatalf("ERO decreased from %v to %v", before, after)
		}
		before = after
	}
}

func TestMemProfileStableVsUnstable(t *testing.T) {
	col, _, w := buildLoadedCluster(t, 80)
	s := col.ERO()
	stable, unstable := 0, 0
	for _, a := range w.Apps {
		p := s.MemProfile(a.ID)
		if p < 0 || p > 1 {
			t.Fatalf("MemProfile(%s) = %v outside [0,1]", a.ID, p)
		}
		if p < 1 {
			stable++
		} else {
			unstable++
		}
	}
	// BE apps have tiny MemCoV, so at least some profiles must be learned.
	if stable == 0 {
		t.Error("no app got a sub-unity memory profile")
	}
	// Apps with large generator MemCoV must stay conservative.
	for _, a := range w.Apps {
		if a.MemCoV > 0.1 && s.MemProfile(a.ID) < 1 {
			t.Errorf("high-CoV app %s (CoV=%v) got profile %v, want 1",
				a.ID, a.MemCoV, s.MemProfile(a.ID))
		}
	}
}

func TestCollectorTrainsModels(t *testing.T) {
	col, _, _ := buildLoadedCluster(t, 240)
	models, err := col.TrainInterference(DefaultFactory(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(models.LS) == 0 {
		t.Fatal("no LS models trained")
	}
	if len(models.BE) == 0 {
		t.Fatal("no BE models trained")
	}
	for app, m := range models.LS {
		if m.MAPE < 0 {
			t.Errorf("LS %s MAPE = %v", app, m.MAPE)
		}
		if m.Rows < minRowsToTrain {
			t.Errorf("LS %s trained on %d rows", app, m.Rows)
		}
	}
	// The learned PSI profile should be usable and bounded.
	for app := range models.LS {
		v := models.PredictPSI(app, 0.5, 0.5, 0.9, 0.5, 100)
		if v < 0 || v > 1 {
			t.Fatalf("PredictPSI out of range: %v", v)
		}
		// Higher host utilization must not predict (much) lower PSI on
		// average across apps — checked loosely per app pair of points.
		lo := models.PredictPSI(app, 0.5, 0.5, 0.2, 0.3, 100)
		hi := models.PredictPSI(app, 0.5, 0.5, 1.0, 0.6, 100)
		if hi+0.3 < lo {
			t.Errorf("PSI profile of %s decreases sharply with load: %v -> %v", app, lo, hi)
		}
		break
	}
}

func TestModelsUnknownAppConservative(t *testing.T) {
	m := &Models{LS: map[string]*AppModel{}, BE: map[string]*AppModel{}}
	if got := m.PredictPSI("nope", 0, 0, 0, 0, 0); got != 1 {
		t.Errorf("unknown LS app PSI = %v, want 1", got)
	}
	if got := m.PredictCT("nope", 0, 0, 0, 0); got != 1 {
		t.Errorf("unknown BE app CT = %v, want 1", got)
	}
	if m.TrustedBE("nope", 0.2) {
		t.Error("unknown BE app should not be trusted")
	}
}

func TestTrustedBEGate(t *testing.T) {
	m := &Models{BE: map[string]*AppModel{
		"good": {App: "good", MAPE: 0.1},
		"bad":  {App: "bad", MAPE: 0.5},
	}}
	if !m.TrustedBE("good", 0.2) || m.TrustedBE("bad", 0.2) {
		t.Error("TrustedBE gate misbehaves")
	}
}

func TestRFBeatsLinearOnPSI(t *testing.T) {
	// The Fig. 18 ordering: RF achieves lower MAPE than LR on the PSI
	// profiles, because the PSI surface has a contention knee.
	col, _, _ := buildLoadedCluster(t, 240)
	rf, err := col.TrainInterference(DefaultFactory(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := col.TrainInterference(func(seed int64) mlearn.Regressor {
		return &mlearn.Bucketized{Inner: mlearn.NewLinear(), B: mlearn.NewBucketizer(0, 1, 25)}
	}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var rfSum, lrSum float64
	var n int
	for app, m := range rf.LS {
		if l, ok := lr.LS[app]; ok {
			rfSum += m.MAPE
			lrSum += l.MAPE
			n++
		}
	}
	if n == 0 {
		t.Fatal("no comparable apps")
	}
	if rfSum/float64(n) > lrSum/float64(n)+0.02 {
		t.Errorf("mean RF MAPE %v should not exceed LR %v", rfSum/float64(n), lrSum/float64(n))
	}
}

func TestBECompletionNormalization(t *testing.T) {
	col, _, _ := buildLoadedCluster(t, 240)
	models, err := col.TrainInterference(DefaultFactory(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for app := range models.BE {
		v := models.PredictCT(app, 0.8, 0.9, 0.9, 0.7)
		if v < 0 || v > 1 {
			t.Fatalf("normalized CT prediction %v outside [0,1]", v)
		}
	}
}

func TestObserveCompletionSkipsPreempted(t *testing.T) {
	cfg := trace.SmallConfig()
	cfg.NumNodes = 2
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	col := NewCollector(1)
	var be *trace.Pod
	for _, p := range w.Pods {
		if p.SLO == trace.SLOBE {
			be = p
			break
		}
	}
	if _, err := c.Place(be, 0, 0); err != nil {
		t.Fatal(err)
	}
	_, snaps := c.Tick(0, 30)
	col.ObserveTick(snaps)
	c.Remove(be.ID, 60, true) // preempted
	col.ObserveCompletion(c.PodState(be.ID))
	if len(col.be) != 0 {
		t.Error("preempted pod produced a CT row")
	}
}
