package profiler

import "sync"

// AppStatsStore tracks per-application maxima of pod CPU utilization,
// memory utilization and QPS. The Interference Predictor (Eq. 9-10) feeds
// these application-level maxima — not the instantaneous pod values — into
// the profiles when scoring a candidate host.
type AppStatsStore struct {
	mu sync.RWMutex
	m  map[string]*appMax
}

type appMax struct {
	cpuUtil, memUtil, qps float64
	n                     int
}

// NewAppStatsStore returns an empty store.
func NewAppStatsStore() *AppStatsStore {
	return &AppStatsStore{m: make(map[string]*appMax)}
}

// Observe folds one pod sample into the application's maxima.
func (s *AppStatsStore) Observe(app string, cpuUtil, memUtil, qps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.m[app]
	if a == nil {
		a = &appMax{}
		s.m[app] = a
	}
	a.n++
	if cpuUtil > a.cpuUtil {
		a.cpuUtil = cpuUtil
	}
	if memUtil > a.memUtil {
		a.memUtil = memUtil
	}
	if qps > a.qps {
		a.qps = qps
	}
}

// Max returns the observed maxima for an application. Unknown applications
// return conservative defaults (full utilization, zero QPS) and ok=false.
func (s *AppStatsStore) Max(app string) (cpuUtil, memUtil, qps float64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, found := s.m[app]
	if !found || a.n == 0 {
		return 1, 1, 0, false
	}
	return a.cpuUtil, a.memUtil, a.qps, true
}

// Apps returns the number of applications with observations.
func (s *AppStatsStore) Apps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
