package profiler

import "unisched/internal/cluster"

// Triple-wise profiling — the extension §4.2.2 sketches: ERO(·) generalized
// to combinations of three applications, trading profiling overhead for a
// tighter peak estimate (three pods' peaks coincide even more rarely than
// two). The store keeps it optional and bounds its cost by observing
// triples on a subsampled schedule and only on moderately-populated hosts.

// tripleCap bounds the pod count per host for which full triple
// enumeration runs; beyond it the O(n^3) scan would dominate profiling.
const tripleCap = 32

// EnableTriples switches on triple-wise observation, sampling every
// `every`-th snapshot (0 disables; 1 observes every snapshot).
func (s *EROStore) EnableTriples(every int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tripleEvery = every
	if s.ero3 == nil {
		s.ero3 = make(map[uint64]float64)
	}
	// Toggling triples changes how the predictor groups pods, so cached
	// prediction summaries must rebuild.
	s.version.Add(1)
}

// TriplesEnabled reports whether triple-wise profiling is on.
func (s *EROStore) TriplesEnabled() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tripleEvery > 0
}

// Triples returns the number of application triples with observations.
func (s *EROStore) Triples() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ero3)
}

// tripleKey packs three app indices (sorted) into one key; 21 bits each
// supports two million applications.
func tripleKey(a, b, c int32) uint64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<42 | uint64(uint32(b))<<21 | uint64(uint32(c))
}

// ERO3 returns the effective resource-usage coefficient for a triple of
// applications, falling back to the most conservative pairwise coefficient
// among the three pairs when the triple was never observed, and to 1.0
// when nothing is known.
func (s *EROStore) ERO3(appA, appB, appC string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ia, okA := s.appIdx[appA]
	ib, okB := s.appIdx[appB]
	ic, okC := s.appIdx[appC]
	if okA && okB && okC && s.ero3 != nil {
		if v, ok := s.ero3[tripleKey(ia, ib, ic)]; ok {
			return v
		}
	}
	// Fall back to the max of the pairwise coefficients (a triple's peak
	// ratio can never exceed the loosest pair's bound of 1, and using the
	// max keeps the estimate safe).
	best := 0.0
	known := false
	pair := func(x, y int32, okX, okY bool) {
		if !okX || !okY {
			return
		}
		if v, ok := s.ero[pairKey(x, y)]; ok {
			known = true
			if v > best {
				best = v
			}
		}
	}
	pair(ia, ib, okA, okB)
	pair(ia, ic, okA, okC)
	pair(ib, ic, okB, okC)
	if !known {
		return 1
	}
	return best
}

// observeTriples updates triple-wise coefficients for one snapshot. The
// caller holds s.mu.
func (s *EROStore) observeTriples(snap *cluster.NodeSnapshot) {
	pods := snap.Pods
	if len(pods) < 3 || len(pods) > tripleCap {
		return
	}
	for i := range pods {
		pi := &pods[i]
		ia := s.idxLocked(pi.Pod.Pod.AppID)
		for j := i + 1; j < len(pods); j++ {
			pj := &pods[j]
			ib := s.idxLocked(pj.Pod.Pod.AppID)
			req2 := pi.Pod.Pod.Request.CPU + pj.Pod.Pod.Request.CPU
			use2 := pi.CPUUse + pj.CPUUse
			for k := j + 1; k < len(pods); k++ {
				pk := &pods[k]
				reqSum := req2 + pk.Pod.Pod.Request.CPU
				if reqSum <= 0 {
					continue
				}
				ro := (use2 + pk.CPUUse) / reqSum
				if ro > 1 {
					ro = 1
				}
				key := tripleKey(ia, ib, s.idxLocked(pk.Pod.Pod.AppID))
				if cur, ok := s.ero3[key]; !ok || ro > cur {
					s.ero3[key] = ro
				}
			}
		}
	}
}
