// Package profiler implements Optum's Offline Profiler (§4.2): the
// Resource Usage Profiler, which learns pairwise effective
// resource-occupancy (ERO) coefficients and per-application memory
// profiles, and the Interference Profiler, which learns per-application
// models of CPU PSI (latency-sensitive apps, Eq. 1) and normalized
// completion time (best-effort apps, Eq. 2).
//
// Both profilers consume the same 30-second node snapshots the tracing
// system produces; neither peeks at the simulator's ground-truth physics.
package profiler

import (
	"math"
	"sync"
	"sync/atomic"

	"unisched/internal/cluster"
)

// EROStore holds the pairwise ERO(·) coefficients of Eq. 5 and the
// conservative per-application memory profiles of §4.2.2. It is safe for
// concurrent use: the Online Scheduler reads while the Tracing Coordinator
// keeps updating observations.
type EROStore struct {
	mu sync.RWMutex

	appIdx map[string]int32
	// ero maps a packed (i<=j) app-index pair to the maximum observed
	// resource-usage ratio; missing pairs mean "never co-located" and
	// default to the conservative 1.0.
	ero map[uint64]float64

	// mem tracks per-application memory utilization statistics
	// (utilization = usage/request) for the memory profile rule.
	mem map[string]*memStats

	// MemCoVGate is the CoV threshold below which an app's memory is
	// considered stable enough to profile with its observed maximum
	// (§4.2.2 uses 0.01); unstable apps profile as 1.0.
	MemCoVGate float64

	// Triple-wise extension (§4.2.2): optional, subsampled.
	ero3        map[uint64]float64
	tripleEvery int
	tripleTick  int

	// version counts mutations that may change any ERO, ERO3 or MemProfile
	// answer. Consumers that cache derived values (the predictor's node
	// summaries) compare it to decide whether their cache is still exact.
	version atomic.Uint64
}

type memStats struct {
	n        float64
	mean, m2 float64
	maxUtil  float64
}

// NewEROStore returns an empty store with the paper's CoV gate.
func NewEROStore() *EROStore {
	return &EROStore{
		appIdx:     make(map[string]int32),
		ero:        make(map[uint64]float64),
		mem:        make(map[string]*memStats),
		MemCoVGate: 0.01,
	}
}

func (s *EROStore) idxLocked(app string) int32 {
	if i, ok := s.appIdx[app]; ok {
		return i
	}
	i := int32(len(s.appIdx))
	s.appIdx[app] = i
	return i
}

func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// ERO implements predictor.EROTable: the maximum observed combined-usage
// ratio for the application pair, or 1.0 for never-observed pairs (the
// new-application default).
func (s *EROStore) ERO(appA, appB string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ia, ok := s.appIdx[appA]
	if !ok {
		return 1
	}
	ib, ok := s.appIdx[appB]
	if !ok {
		return 1
	}
	if v, ok := s.ero[pairKey(ia, ib)]; ok {
		return v
	}
	return 1
}

// MemProfile implements predictor.EROTable: the observed maximum memory
// utilization for apps whose pods hold stable memory (CoV below the gate),
// and the conservative 1.0 otherwise.
func (s *EROStore) MemProfile(app string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ms, ok := s.mem[app]
	if !ok || ms.n < 8 {
		return 1
	}
	cov := 0.0
	if ms.mean > 0 {
		cov = math.Sqrt(ms.m2/ms.n) / ms.mean
	}
	if cov > s.MemCoVGate {
		return 1
	}
	p := ms.maxUtil
	if p > 1 {
		p = 1
	}
	if p <= 0 {
		return 1
	}
	return p
}

// TableVersion reports a counter that advances whenever an observation may
// have changed any ERO, ERO3 or MemProfile result. Two reads under the same
// version are guaranteed to return identical values for identical inputs,
// which is what lets the Optum predictor cache per-node prediction
// summaries and invalidate them exactly when the table moves.
func (s *EROStore) TableVersion() uint64 { return s.version.Load() }

// Pairs returns the number of application pairs with observations.
func (s *EROStore) Pairs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ero)
}

// ObserveSnapshot feeds one node's 30-second sample into the profiler:
// every co-located pod pair from different applications updates its ERO
// per Eq. 4-5, and each pod updates its application's memory statistics.
func (s *EROStore) ObserveSnapshot(snap *cluster.NodeSnapshot) {
	pods := snap.Pods
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(pods) > 0 {
		// Any pod sample can move a memory profile or an ERO coefficient;
		// advance the version so cached predictions rebuild.
		s.version.Add(1)
	}
	if s.tripleEvery > 0 {
		s.tripleTick++
		if s.tripleTick%s.tripleEvery == 0 {
			s.observeTriples(snap)
		}
	}
	for i := range pods {
		pi := &pods[i]
		reqI := pi.Pod.Pod.Request
		// Memory statistics (Welford).
		if reqI.Mem > 0 {
			util := pi.MemUse / reqI.Mem
			ms := s.mem[pi.Pod.Pod.AppID]
			if ms == nil {
				ms = &memStats{}
				s.mem[pi.Pod.Pod.AppID] = ms
			}
			ms.n++
			d := util - ms.mean
			ms.mean += d / ms.n
			ms.m2 += d * (util - ms.mean)
			if util > ms.maxUtil {
				ms.maxUtil = util
			}
		}
		ia := s.idxLocked(pi.Pod.Pod.AppID)
		for j := i + 1; j < len(pods); j++ {
			// Eq. 5 ranges over application pairs; A == B is a valid pair
			// (two pods of one application co-located), and burst placement
			// makes such pairs common.
			pj := &pods[j]
			reqSum := reqI.CPU + pj.Pod.Pod.Request.CPU
			if reqSum <= 0 {
				continue
			}
			ro := (pi.CPUUse + pj.CPUUse) / reqSum
			if ro > 1 { // Eq. 4 bounds RO at 1
				ro = 1
			}
			ib := s.idxLocked(pj.Pod.Pod.AppID)
			k := pairKey(ia, ib)
			if cur, ok := s.ero[k]; !ok || ro > cur {
				s.ero[k] = ro
			}
		}
	}
}

// Bound sanity check at compile time: EROStore must satisfy the predictor
// table contract without importing predictor (which would be cyclic-free
// anyway, but the duck-typed check documents the coupling).
var _ interface {
	ERO(a, b string) float64
	MemProfile(app string) float64
} = (*EROStore)(nil)

// eroUpperBound is used by property tests: observed EROs must stay in (0,1].
func eroUpperBound(s *EROStore) (lo, hi float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range s.ero {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
