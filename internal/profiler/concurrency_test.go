package profiler

import (
	"sync"
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// TestEROStoreConcurrentAccess hammers the live profile stores from
// concurrent writers (Tracing Coordinator) and readers (Online Scheduler),
// the deployment §4.2.2 describes. Run with -race.
func TestEROStoreConcurrentAccess(t *testing.T) {
	cfg := trace.SmallConfig()
	cfg.NumNodes = 4
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	placed := 0
	for _, p := range w.Pods {
		if placed >= 40 {
			break
		}
		if _, err := c.Place(p, placed%4, 0); err == nil {
			placed++
		}
	}
	s := NewEROStore()
	s.EnableTriples(2)
	stats := NewAppStatsStore()

	var wg sync.WaitGroup
	// Writers: observe snapshots at different times.
	for wr := 0; wr < 4; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for ts := int64(wr); ts < 100; ts += 4 {
				for n := 0; n < 4; n++ {
					snap := c.Snapshot(n, ts*30, false)
					s.ObserveSnapshot(&snap)
					for i := range snap.Pods {
						p := &snap.Pods[i]
						stats.Observe(p.Pod.Pod.AppID, p.CPUUse, p.MemUse, p.QPS)
					}
				}
			}
		}(wr)
	}
	// Readers: query profiles while writes are in flight.
	apps := make([]string, 0, len(w.Apps))
	for _, a := range w.Apps {
		apps = append(apps, a.ID)
	}
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a := apps[i%len(apps)]
				b := apps[(i+7)%len(apps)]
				cc := apps[(i+13)%len(apps)]
				if v := s.ERO(a, b); v <= 0 || v > 1 {
					t.Errorf("ERO out of range: %v", v)
					return
				}
				if v := s.ERO3(a, b, cc); v <= 0 || v > 1 {
					t.Errorf("ERO3 out of range: %v", v)
					return
				}
				if v := s.MemProfile(a); v <= 0 || v > 1 {
					t.Errorf("MemProfile out of range: %v", v)
					return
				}
				stats.Max(a)
				_ = s.Pairs()
				_ = s.Triples()
			}
		}()
	}
	wg.Wait()
}
