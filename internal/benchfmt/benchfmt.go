// Package benchfmt parses `go test -bench` text output into the JSON
// document shape committed as BENCH_engine.json, shared by cmd/benchjson
// (which writes the document) and cmd/benchcheck (which gates merges on
// it). Only stdlib is used; custom b.ReportMetric values (placements/s,
// nodes_visited/decision, ...) are preserved by unit.
package benchfmt

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string  `json:"name"`
	N    int64   `json:"n"`
	NsOp float64 `json:"ns_op"`
	// AllocsOp and BytesOp are present with -benchmem.
	BytesOp  *float64 `json:"bytes_op,omitempty"`
	AllocsOp *float64 `json:"allocs_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Find returns the first benchmark whose name matches exactly, or nil.
func (r *Report) Find(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// ParseStream reads `go test -bench` text output and accumulates every
// result line (plus the goos/goarch/pkg/cpu header) into a Report.
func ParseStream(in io.Reader) (Report, error) {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := ParseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// ParseLine parses one result line of the form
//
//	BenchmarkName-8  3  111882528 ns/op  36723 placements/s  42 B/op  12 allocs/op
//
// Fields come in (value, unit) pairs after the name and iteration count.
func ParseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	// Trim the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, N: n}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsOp = v
		case "B/op":
			b.BytesOp = &v
		case "allocs/op":
			b.AllocsOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
