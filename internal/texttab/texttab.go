// Package texttab renders small plain-text tables and series for the
// command-line tools, so every figure's data prints as the rows/series the
// paper plots — no plotting dependencies needed.
package texttab

import (
	"fmt"
	"io"
	"strings"

	"unisched/internal/stats"
)

// Table accumulates rows under a header and renders with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// New creates a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v unless already strings.
func (t *Table) Row(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CDFRow renders a CDF as a compact quantile row for tables.
func CDFRow(c *stats.CDF) string {
	if c == nil || c.Len() == 0 {
		return "(empty)"
	}
	return fmt.Sprintf("p25=%.3g p50=%.3g p75=%.3g p90=%.3g p99=%.3g max=%.3g",
		c.Quantile(0.25), c.Quantile(0.5), c.Quantile(0.75),
		c.Quantile(0.9), c.Quantile(0.99), c.Max())
}

// Sparkline renders a series as a unicode mini-chart, handy for the
// utilization-over-time figures in terminal output.
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 || width <= 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	step := float64(len(xs)) / float64(width)
	if step < 1 {
		step = 1
		width = len(xs)
	}
	for i := 0; i < width; i++ {
		// Average the bucket for stability.
		start := int(float64(i) * step)
		end := int(float64(i+1) * step)
		if end > len(xs) {
			end = len(xs)
		}
		if start >= end {
			break
		}
		var sum float64
		for _, x := range xs[start:end] {
			sum += x
		}
		v := sum / float64(end-start)
		k := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		if k < 0 {
			k = 0
		}
		if k >= len(blocks) {
			k = len(blocks) - 1
		}
		b.WriteRune(blocks[k])
	}
	return b.String()
}
