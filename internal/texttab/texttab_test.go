package texttab

import (
	"strings"
	"testing"

	"unisched/internal/stats"
)

func TestTableRender(t *testing.T) {
	var sb strings.Builder
	New("name", "value").
		Row("alpha", 1.5).
		Row("b", "text").
		Row("gamma", 12).
		Render(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") ||
		!strings.Contains(out, "text") || !strings.Contains(out, "12") {
		t.Errorf("cells missing:\n%s", out)
	}
	// Columns align: "value" column starts at the same offset everywhere.
	head := strings.Index(lines[0], "value")
	if !strings.Contains(lines[2][head:], "1.5") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableShortRow(t *testing.T) {
	var sb strings.Builder
	New("a", "b", "c").Row("only").Render(&sb)
	if !strings.Contains(sb.String(), "only") {
		t.Error("short row dropped")
	}
}

func TestCDFRow(t *testing.T) {
	if got := CDFRow(nil); got != "(empty)" {
		t.Errorf("nil CDF = %q", got)
	}
	if got := CDFRow(stats.NewCDF(nil)); got != "(empty)" {
		t.Errorf("empty CDF = %q", got)
	}
	got := CDFRow(stats.NewCDF([]float64{1, 2, 3, 4}))
	if !strings.Contains(got, "p50=") || !strings.Contains(got, "max=4") {
		t.Errorf("CDFRow = %q", got)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty input should render empty")
	}
	if Sparkline([]float64{1, 2}, 0) != "" {
		t.Error("zero width should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("width = %d, want 8", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] >= runes[7] {
		t.Errorf("rising series should rise: %q", s)
	}
	// Constant series renders without panic.
	if Sparkline([]float64{3, 3, 3}, 3) == "" {
		t.Error("constant series should render")
	}
	// More width than points.
	if got := Sparkline([]float64{1, 2}, 10); len([]rune(got)) != 2 {
		t.Errorf("short series should clamp to its length, got %q", got)
	}
}
