// Package analysis reproduces the paper's Section-3 characterization of
// unified-scheduling workloads: SLO distribution, submission and QPS
// series, utilization, over-commitment, request-vs-usage gaps, waiting
// times and delay sources, host-rank analysis, within-application
// consistency (CoV), and the metric-correlation studies behind
// Figures 2-16.
//
// Figures that need time series per pod use a SeriesRecorder hooked into
// the simulation via sim.Config.OnTick; figures about scheduling outcomes
// read the sim.Result directly; figures about the submitted workload read
// the trace.Workload.
package analysis

import (
	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// PodSeries holds one pod's sampled metric streams, aligned by index.
type PodSeries struct {
	PodID int
	AppID string
	SLO   trace.SLO

	CPUUse, MemUse         []float64 // absolute usage
	PodCPUUtil, PodMemUtil []float64 // fractions of request
	HostCPUUtil            []float64
	HostMemUtil            []float64
	QPS, RT                []float64
	PSI10, PSI60, PSI300   []float64
	MemPSISome, MemPSIFull []float64
	RX, TX                 []float64
}

func (s *PodSeries) record(p *cluster.PodSnapshot, hostC, hostM float64) {
	req := p.Pod.Pod.Request
	s.CPUUse = append(s.CPUUse, p.CPUUse)
	s.MemUse = append(s.MemUse, p.MemUse)
	pc, pm := 0.0, 0.0
	if req.CPU > 0 {
		pc = p.CPUUse / req.CPU
	}
	if req.Mem > 0 {
		pm = p.MemUse / req.Mem
	}
	s.PodCPUUtil = append(s.PodCPUUtil, pc)
	s.PodMemUtil = append(s.PodMemUtil, pm)
	s.HostCPUUtil = append(s.HostCPUUtil, hostC)
	s.HostMemUtil = append(s.HostMemUtil, hostM)
	s.QPS = append(s.QPS, p.QPS)
	s.RT = append(s.RT, p.RT)
	s.PSI10 = append(s.PSI10, p.CPUPSI10)
	s.PSI60 = append(s.PSI60, p.CPUPSI60)
	s.PSI300 = append(s.PSI300, p.CPUPSI300)
	s.MemPSISome = append(s.MemPSISome, p.MemPSISome)
	s.MemPSIFull = append(s.MemPSIFull, p.MemPSIFull)
	s.RX = append(s.RX, p.RX)
	s.TX = append(s.TX, p.TX)
}

// BEAggregate summarizes one completed BE pod for the Fig. 16 correlation
// study: run maxima plus total traffic.
type BEAggregate struct {
	PodID                  int
	AppID                  string
	MaxPodCPU, MaxPodMem   float64
	MaxHostCPU, MaxHostMem float64
	SumRX, SumTX           float64
}

// SeriesRecorder samples per-pod metric series from simulation ticks with
// bounded memory: at most MaxPodsPerApp pods tracked per application and
// MaxSamples samples per pod.
type SeriesRecorder struct {
	// MaxPodsPerApp bounds tracked pods per application (default 8).
	MaxPodsPerApp int
	// MaxSamples bounds samples per pod (default 2048).
	MaxSamples int
	// NodeOvercommitEvery samples per-node over-commitment rates every
	// k-th tick (default 10).
	NodeOvercommitEvery int

	series  map[string]map[int]*PodSeries
	beAgg   map[int]*BEAggregate
	tracked map[int]bool

	// Over-commitment samples across (node, time): request- and
	// limit-based rates per dimension.
	OCReqCPU, OCReqMem     []float64
	OCLimitCPU, OCLimitMem []float64

	tick int
}

// NewSeriesRecorder returns a recorder with default bounds.
func NewSeriesRecorder() *SeriesRecorder {
	return &SeriesRecorder{
		MaxPodsPerApp:       8,
		MaxSamples:          2048,
		NodeOvercommitEvery: 10,
		series:              make(map[string]map[int]*PodSeries),
		beAgg:               make(map[int]*BEAggregate),
		tracked:             make(map[int]bool),
	}
}

// OnTick is the sim.Config.OnTick hook.
func (r *SeriesRecorder) OnTick(t int64, snaps []cluster.NodeSnapshot) {
	r.tick++
	sampleOC := r.tick%r.NodeOvercommitEvery == 0
	for i := range snaps {
		snap := &snaps[i]
		hostC := snap.CPUUtil()
		hostM := snap.MemUtil()
		if sampleOC && len(snap.Pods) > 0 {
			req, lim := snap.Node.OvercommitRate()
			r.OCReqCPU = append(r.OCReqCPU, req.CPU)
			r.OCReqMem = append(r.OCReqMem, req.Mem)
			r.OCLimitCPU = append(r.OCLimitCPU, lim.CPU)
			r.OCLimitMem = append(r.OCLimitMem, lim.Mem)
		}
		for j := range snap.Pods {
			p := &snap.Pods[j]
			pod := p.Pod.Pod
			r.observePod(p, pod, hostC, hostM)
		}
	}
}

func (r *SeriesRecorder) observePod(p *cluster.PodSnapshot, pod *trace.Pod, hostC, hostM float64) {
	// BE aggregates are cheap; track every BE pod.
	if pod.SLO == trace.SLOBE {
		agg := r.beAgg[pod.ID]
		if agg == nil {
			agg = &BEAggregate{PodID: pod.ID, AppID: pod.AppID}
			r.beAgg[pod.ID] = agg
		}
		req := pod.Request
		if req.CPU > 0 && p.CPUUse/req.CPU > agg.MaxPodCPU {
			agg.MaxPodCPU = p.CPUUse / req.CPU
		}
		if req.Mem > 0 && p.MemUse/req.Mem > agg.MaxPodMem {
			agg.MaxPodMem = p.MemUse / req.Mem
		}
		if hostC > agg.MaxHostCPU {
			agg.MaxHostCPU = hostC
		}
		if hostM > agg.MaxHostMem {
			agg.MaxHostMem = hostM
		}
		agg.SumRX += p.RX
		agg.SumTX += p.TX
	}

	apps := r.series[pod.AppID]
	if apps == nil {
		apps = make(map[int]*PodSeries)
		r.series[pod.AppID] = apps
	}
	ps := apps[pod.ID]
	if ps == nil {
		if len(apps) >= r.MaxPodsPerApp && !r.tracked[pod.ID] {
			return
		}
		ps = &PodSeries{PodID: pod.ID, AppID: pod.AppID, SLO: pod.SLO}
		apps[pod.ID] = ps
		r.tracked[pod.ID] = true
	}
	if len(ps.CPUUse) >= r.MaxSamples {
		return
	}
	ps.record(p, hostC, hostM)
}

// AppSeries returns the tracked pod series for one application.
func (r *SeriesRecorder) AppSeries(app string) []*PodSeries {
	m := r.series[app]
	out := make([]*PodSeries, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	return out
}

// Apps returns every application with tracked series.
func (r *SeriesRecorder) Apps() []string {
	out := make([]string, 0, len(r.series))
	for app := range r.series {
		out = append(out, app)
	}
	return out
}

// BEAggregates returns the per-pod aggregates of completed or running BE
// pods, keyed by pod ID.
func (r *SeriesRecorder) BEAggregates() map[int]*BEAggregate { return r.beAgg }
