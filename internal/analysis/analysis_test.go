package analysis

import (
	"math"
	"sync"
	"testing"

	"unisched/internal/sim"
	"unisched/internal/trace"
)

// sharedRun caches one simulated run for all analysis tests — the
// characterization functions are read-only over its outputs.
var (
	runOnce sync.Once
	gW      *trace.Workload
	gRes    *sim.Result
	gRec    *SeriesRecorder
)

func setup(t *testing.T) (*trace.Workload, *sim.Result, *SeriesRecorder) {
	t.Helper()
	runOnce.Do(func() {
		gW, gRes, gRec = RunStudy(DefaultStudy())
	})
	return gW, gRes, gRec
}

func TestSLODistribution(t *testing.T) {
	w, _, _ := setup(t)
	dist := SLODistribution(w)
	var total float64
	for _, f := range dist {
		total += f
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("fractions sum to %v", total)
	}
	// Fig 2b: explicit-SLO pods dominate; BE largest single class.
	if dist[trace.SLOBE] < dist[trace.SLOLS] {
		t.Error("BE should outnumber LS")
	}
	if dist[trace.SLOLS]+dist[trace.SLOLSR] == 0 {
		t.Error("no LS/LSR pods")
	}
}

func TestSubmissionSeries(t *testing.T) {
	w, _, _ := setup(t)
	be, ls := SubmissionSeries(w, 600)
	if len(be.Times) != len(ls.Times) || len(be.Times) == 0 {
		t.Fatal("bad series shape")
	}
	var beSum, lsSum float64
	for i := range be.Values {
		beSum += be.Values[i]
		lsSum += ls.Values[i]
	}
	if beSum <= lsSum {
		t.Errorf("BE submissions (%v) should exceed LS (%v) — Fig 3a", beSum, lsSum)
	}
}

func TestQPSSeries(t *testing.T) {
	w, _, _ := setup(t)
	q := QPSSeries(w, 900)
	if len(q.Values) == 0 {
		t.Fatal("empty QPS series")
	}
	for _, v := range q.Values {
		if v < 0 {
			t.Fatal("negative QPS")
		}
	}
}

func TestOvercommitCDF(t *testing.T) {
	_, _, rec := setup(t)
	oc := OvercommitCDF(rec)
	if oc.ReqCPU.Len() == 0 {
		t.Fatal("no overcommit samples")
	}
	// Fig 5: limit-based rate dominates request-based; CPU overcommits
	// (some hosts above 1); memory overcommits rarely.
	if oc.LimitCPU.Quantile(0.9) < oc.ReqCPU.Quantile(0.9) {
		t.Error("limit overcommit should exceed request overcommit")
	}
	if oc.ReqCPU.Max() <= 1 {
		t.Error("no CPU request overcommitment observed")
	}
	cpuOver := 1 - oc.ReqCPU.At(1.0)
	memOver := 1 - oc.ReqMem.At(1.0)
	if memOver > cpuOver {
		t.Errorf("memory overcommit fraction (%v) should be below CPU (%v)", memOver, cpuOver)
	}
}

func TestRequestUsageCDF(t *testing.T) {
	w, _, rec := setup(t)
	ru := RequestUsageCDF(rec, w, true)
	if ru.BEReq.Len() == 0 || ru.LSReq.Len() == 0 {
		t.Fatal("missing classes")
	}
	// Fig 6a: requests far above usage per pod, LS gap bigger than BE's
	// (the paper quotes ~3x for BE and ~5x for LS).
	beGap := ru.BEGap.Quantile(0.5)
	lsGap := ru.LSGap.Quantile(0.5)
	if beGap < 1.5 {
		t.Errorf("BE request/usage gap = %v, want > 1.5", beGap)
	}
	if lsGap < beGap {
		t.Errorf("LS gap (%v) should exceed BE gap (%v)", lsGap, beGap)
	}
	// Fig 6b: BE memory nearly fully used; LS memory under-used.
	rm := RequestUsageCDF(rec, w, false)
	if g := rm.BEGap.Quantile(0.5); g > 1.6 {
		t.Errorf("BE memory nearly fully used; per-pod gap = %v", g)
	}
	if rm.LSGap.Quantile(0.5) < rm.BEGap.Quantile(0.5) {
		t.Error("LS memory should be less utilized than BE")
	}
}

func TestArrivalRateCDF(t *testing.T) {
	w, _, _ := setup(t)
	c := ArrivalRateCDF(w)
	if c.Len() == 0 {
		t.Fatal("no samples")
	}
	// Fig 7: heavy-tailed.
	if c.Max() < 3*c.Quantile(0.9) {
		t.Errorf("arrival rate not heavy-tailed: max=%v p90=%v", c.Max(), c.Quantile(0.9))
	}
}

func TestWaitingTimeCDF(t *testing.T) {
	_, res, _ := setup(t)
	cdfs := WaitingTimeCDF(res)
	be, ls := cdfs[trace.SLOBE], cdfs[trace.SLOLS]
	if be == nil || ls == nil {
		t.Fatal("missing classes")
	}
	// Fig 8 shapes: heavy tails; LSR shorter than BE at the tail.
	if lsr := cdfs[trace.SLOLSR]; lsr != nil && be.Len() > 50 {
		if lsr.Quantile(0.9) > be.Quantile(0.99)+600 {
			t.Errorf("LSR p90 wait %v far above BE p99 %v", lsr.Quantile(0.9), be.Quantile(0.99))
		}
	}
}

func TestWaitingByRequestSize(t *testing.T) {
	w, res, _ := setup(t)
	m := WaitingByRequestSize(res, w)
	be, ok := m[trace.SLOBE]
	if !ok {
		t.Fatal("no BE buckets")
	}
	for i, v := range be {
		if v < 0 {
			t.Fatalf("bucket %d negative wait %v", i, v)
		}
	}
	if ReqLow.String() != "Low" || ReqVeryHigh.String() != "VeryHigh" {
		t.Error("bucket names broken")
	}
}

func TestDelaySources(t *testing.T) {
	_, res, _ := setup(t)
	ds := DelaySources(res)
	for slo, m := range ds {
		var total float64
		for _, f := range m {
			total += f
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%v delay fractions sum to %v", slo, total)
		}
	}
}

func TestHostRankCDF(t *testing.T) {
	_, res, _ := setup(t)
	usage, request := HostRankCDF(res)
	beU, beR := usage[trace.SLOBE], request[trace.SLOBE]
	lsU, lsR := usage[trace.SLOLS], request[trace.SLOLS]
	if beU == nil || beR == nil || lsU == nil || lsR == nil {
		t.Fatal("missing ranks")
	}
	// Fig 10's headline contrast: the production scheduler over-commits BE
	// against actual usage, so BE-chosen hosts rank near the top of the
	// usage view (most in the upper half, well ahead of LS). LS placement
	// is conservative, so LS-chosen hosts sit far down both views. (The
	// paper's LS-ranks-top-by-requests detail does not emerge under strict
	// capacity admission on a homogeneous cluster; see EXPERIMENTS.md.)
	if beU.At(0.25) < lsU.At(0.25)+0.1 {
		t.Errorf("usage view: BE top-quartile fraction (%v) should exceed LS (%v)",
			beU.At(0.25), lsU.At(0.25))
	}
	if beU.At(0.5) < 0.5 {
		t.Errorf("usage view: only %v of BE placements in the top half", beU.At(0.5))
	}
	_ = lsR
	_ = beR
}

func TestCoVDistribution(t *testing.T) {
	w, res, rec := setup(t)
	cov := CoVDistribution(rec, res, w, 2)
	if cov.LSCPUUsed.Len() == 0 || cov.BECT.Len() == 0 {
		t.Fatal("missing CoV samples")
	}
	// Fig 12a: most LS apps behave consistently (CoV < 1); QPS tightest;
	// RT less consistent than QPS.
	if f := cov.LSCPUUsed.At(1.0); f < 0.7 {
		t.Errorf("only %v of LS apps have CPU CoV < 1", f)
	}
	if cov.LSQPS.Quantile(0.5) > cov.LSRT.Quantile(0.5) {
		t.Errorf("QPS CoV median (%v) should be below RT's (%v)",
			cov.LSQPS.Quantile(0.5), cov.LSRT.Quantile(0.5))
	}
	// Fig 12b: BE memory more consistent than BE CPU.
	if cov.BEMemUtil.Quantile(0.5) > cov.BECPUUsed.Quantile(0.5) {
		t.Errorf("BE mem CoV median (%v) should be below CPU's (%v)",
			cov.BEMemUtil.Quantile(0.5), cov.BECPUUsed.Quantile(0.5))
	}
}

func TestRTCorrelations(t *testing.T) {
	_, _, rec := setup(t)
	rows := RTCorrelations(rec)
	if len(rows) != len(LSMetricNames) {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]CorrSummary{}
	for _, r := range rows {
		byName[r.Metric] = r
	}
	// Fig 13: CPU PSI correlates with RT much better than memory PSI.
	if byName["CPUPSI60"].P50 < byName["MemFPSI"].P50 {
		t.Errorf("CPU PSI median corr (%v) should exceed mem PSI (%v)",
			byName["CPUPSI60"].P50, byName["MemFPSI"].P50)
	}
	if byName["CPUPSI60"].P50 < 0.2 {
		t.Errorf("CPU PSI-RT correlation too weak: %v", byName["CPUPSI60"].P50)
	}
}

func TestQPSCorrelations(t *testing.T) {
	_, _, rec := setup(t)
	rows := QPSCorrelations(rec)
	byName := map[string]CorrSummary{}
	for _, r := range rows {
		byName[r.Metric] = r
	}
	// Fig 14: PSI positively correlated with QPS for most apps.
	if byName["CPUPSI60"].P50 <= 0 {
		t.Errorf("QPS-PSI60 median correlation %v should be positive", byName["CPUPSI60"].P50)
	}
}

func TestPSIUtilCorrelations(t *testing.T) {
	_, _, rec := setup(t)
	host := PSIUtilCorrelations(rec, true)
	pod := PSIUtilCorrelations(rec, false)
	if len(host) != 3 || len(pod) != 3 {
		t.Fatal("expected 3 windows")
	}
	for _, r := range host {
		if r.N == 0 {
			t.Fatalf("no samples for %s", r.Metric)
		}
	}
	// Fig 15a: strong positive correlation between PSI and host CPU util.
	var psi60 CorrSummary
	for _, r := range host {
		if r.Metric == "CPUPSI60" {
			psi60 = r
		}
	}
	if psi60.P50 < 0.3 {
		t.Errorf("PSI60-host util median correlation %v too weak", psi60.P50)
	}
}

func TestBECorrelations(t *testing.T) {
	_, res, rec := setup(t)
	rows := BECorrelations(rec, res.BECT, 3)
	byName := map[string]CorrSummary{}
	for _, r := range rows {
		byName[r.Metric] = r
	}
	if byName["NodeCPUUtil"].N == 0 {
		t.Fatal("no BE correlation samples")
	}
	// Fig 16: node CPU utilization strongly correlates with BE CT.
	if byName["NodeCPUUtil"].P50 < 0.2 {
		t.Errorf("CT-node CPU correlation median %v too weak", byName["NodeCPUUtil"].P50)
	}
}

func TestRecorderBounds(t *testing.T) {
	_, _, rec := setup(t)
	for _, app := range rec.Apps() {
		series := rec.AppSeries(app)
		if len(series) > rec.MaxPodsPerApp {
			t.Fatalf("app %s tracks %d pods > cap %d", app, len(series), rec.MaxPodsPerApp)
		}
		for _, s := range series {
			if len(s.CPUUse) > rec.MaxSamples {
				t.Fatalf("pod %d has %d samples", s.PodID, len(s.CPUUse))
			}
			// All parallel arrays aligned.
			if len(s.RT) != len(s.CPUUse) || len(s.PSI60) != len(s.CPUUse) ||
				len(s.HostCPUUtil) != len(s.CPUUse) || len(s.RX) != len(s.CPUUse) {
				t.Fatal("series arrays misaligned")
			}
		}
	}
}
