package analysis

import (
	"unisched/internal/cluster"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/trace"
)

// StudyConfig sizes a Section-3 characterization run. The characterization
// observes a production-shaped cluster: heavier load and a looser BE
// over-commit ceiling than the evaluation baseline, so hosts actually
// reach the high-pressure regimes the paper measures (Fig. 4b shows host
// CPU utilization peaking at 100 %).
type StudyConfig struct {
	Nodes   int
	Horizon int64
	Seed    int64
}

// DefaultStudy is the test-scale study configuration. The horizon covers a
// full diurnal cycle: shorter windows sit on one side of the daily peak and
// bias every time-averaged statistic.
func DefaultStudy() StudyConfig {
	return StudyConfig{Nodes: 24, Horizon: trace.Day, Seed: 1}
}

// RunStudy generates a production-shaped workload, replays it under the
// Alibaba-like scheduler with the Fig. 5-consistent over-commitment, and
// returns the workload, the run result (ranks recorded), and the series
// recorder holding per-pod metric streams.
func RunStudy(sc StudyConfig) (*trace.Workload, *sim.Result, *SeriesRecorder) {
	cfg := trace.SmallConfig()
	if sc.Nodes > 50 {
		cfg = trace.DefaultConfig()
	}
	cfg.Seed = sc.Seed
	cfg.NumNodes = sc.Nodes
	cfg.Horizon = sc.Horizon
	// Production pressure: more of the cluster's capacity requested, so
	// diurnal peaks push hosts through the contention knee.
	cfg.LSRequestFactor = 1.0
	cfg.BERequestFactor = 0.6
	cfg.OtherRequestFactor = 0.15
	w := trace.MustGenerate(cfg)

	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	s := sched.NewAlibabaLike(c, sc.Seed)
	// The trace shows request over-commitment reaching ~4x on the tail
	// (Fig. 5a); let the production scheduler go further than the
	// evaluation's conservative default.
	s.BEOvercommitCeil = 3.0
	s.NoGuaranteedReserve = true
	rec := NewSeriesRecorder()
	rec.MaxSamples = 4096 // cover the full day at 30 s per sample
	res := sim.Run(w, c, s, sim.Config{RecordRanks: true, OnTick: rec.OnTick})
	return w, res, rec
}
