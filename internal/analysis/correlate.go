package analysis

import (
	"sort"

	"unisched/internal/stats"
)

// LSMetricNames are the OS-level metric columns of the Fig. 13/14
// correlation study, in display order.
var LSMetricNames = []string{
	"NodeCPUUtil", "NodeMemUtil", "PodCPUUtil", "PodMemUtil",
	"CPUPSI10", "CPUPSI60", "CPUPSI300",
	"MemFPSI", "MemSPSI",
}

func lsMetric(s *PodSeries, name string) []float64 {
	switch name {
	case "NodeCPUUtil":
		return s.HostCPUUtil
	case "NodeMemUtil":
		return s.HostMemUtil
	case "PodCPUUtil":
		return s.PodCPUUtil
	case "PodMemUtil":
		return s.PodMemUtil
	case "CPUPSI10":
		return s.PSI10
	case "CPUPSI60":
		return s.PSI60
	case "CPUPSI300":
		return s.PSI300
	case "MemFPSI":
		return s.MemPSIFull
	case "MemSPSI":
		return s.MemPSISome
	default:
		return nil
	}
}

// CorrSummary is the distribution of per-application correlation
// coefficients for one metric: the data behind one box of the Fig. 13-16
// box plots.
type CorrSummary struct {
	Metric                  string
	N                       int
	P10, P25, P50, P75, P90 float64
	Mean                    float64
}

func summarize(metric string, xs []float64) CorrSummary {
	c := stats.NewCDF(xs)
	return CorrSummary{
		Metric: metric, N: len(xs),
		P10: c.Quantile(0.10), P25: c.Quantile(0.25), P50: c.Quantile(0.5),
		P75: c.Quantile(0.75), P90: c.Quantile(0.90), Mean: c.Mean(),
	}
}

// lsCorrelations computes, per application, the mean over its pods of the
// Pearson correlation between target(series) and each metric, then
// summarizes the per-app distribution.
func lsCorrelations(r *SeriesRecorder, target func(*PodSeries) []float64, minSamples int) []CorrSummary {
	perMetric := map[string][]float64{}
	apps := r.Apps()
	sort.Strings(apps)
	for _, app := range apps {
		series := r.AppSeries(app)
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, s := range series {
			if !s.SLO.LatencySensitive() || len(s.RT) < minSamples {
				continue
			}
			y := target(s)
			for _, m := range LSMetricNames {
				x := lsMetric(s, m)
				if c := stats.Pearson(x, y); c == c { // skip NaN
					sums[m] += c
					counts[m]++
				}
			}
		}
		for _, m := range LSMetricNames {
			if counts[m] > 0 {
				perMetric[m] = append(perMetric[m], sums[m]/float64(counts[m]))
			}
		}
	}
	out := make([]CorrSummary, 0, len(LSMetricNames))
	for _, m := range LSMetricNames {
		out = append(out, summarize(m, perMetric[m]))
	}
	return out
}

// RTCorrelations reproduces Fig. 13: the per-application distribution of
// correlations between pod response time and OS-level metrics.
func RTCorrelations(r *SeriesRecorder) []CorrSummary {
	return lsCorrelations(r, func(s *PodSeries) []float64 { return s.RT }, 16)
}

// QPSCorrelations reproduces Fig. 14: correlations between pod QPS and the
// same metric set.
func QPSCorrelations(r *SeriesRecorder) []CorrSummary {
	return lsCorrelations(r, func(s *PodSeries) []float64 { return s.QPS }, 16)
}

// PSIUtilCorrelations reproduces Fig. 15: the distribution across LS
// applications of the correlation between each PSI window and host or pod
// CPU utilization.
func PSIUtilCorrelations(r *SeriesRecorder, host bool) []CorrSummary {
	util := func(s *PodSeries) []float64 {
		if host {
			return s.HostCPUUtil
		}
		return s.PodCPUUtil
	}
	perMetric := map[string][]float64{}
	windows := []string{"CPUPSI10", "CPUPSI60", "CPUPSI300"}
	apps := r.Apps()
	sort.Strings(apps)
	for _, app := range apps {
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, s := range r.AppSeries(app) {
			if !s.SLO.LatencySensitive() || len(s.PSI60) < 16 {
				continue
			}
			u := util(s)
			for _, w := range windows {
				if c := stats.Pearson(lsMetric(s, w), u); c == c {
					sums[w] += c
					counts[w]++
				}
			}
		}
		for _, w := range windows {
			if counts[w] > 0 {
				perMetric[w] = append(perMetric[w], sums[w]/float64(counts[w]))
			}
		}
	}
	out := make([]CorrSummary, 0, len(windows))
	for _, w := range windows {
		out = append(out, summarize(w, perMetric[w]))
	}
	return out
}

// BEMetricNames are the Fig. 16 columns: per-run aggregates correlated with
// BE pod completion time.
var BEMetricNames = []string{
	"NodeCPUUtil", "NodeMemUtil", "PodCPUUtil", "PodMemUtil", "RX", "TX",
}

// BECorrelations reproduces Fig. 16: per BE application, the correlation
// across its pods between completion time and each per-run aggregate.
func BECorrelations(r *SeriesRecorder, bect map[int]float64, minPods int) []CorrSummary {
	if minPods < 3 {
		minPods = 3
	}
	type rows struct {
		ct, nodeC, nodeM, podC, podM, rx, tx []float64
	}
	byApp := map[string]*rows{}
	for id, ct := range bect {
		agg := r.BEAggregates()[id]
		if agg == nil {
			continue
		}
		rw := byApp[agg.AppID]
		if rw == nil {
			rw = &rows{}
			byApp[agg.AppID] = rw
		}
		rw.ct = append(rw.ct, ct)
		rw.nodeC = append(rw.nodeC, agg.MaxHostCPU)
		rw.nodeM = append(rw.nodeM, agg.MaxHostMem)
		rw.podC = append(rw.podC, agg.MaxPodCPU)
		rw.podM = append(rw.podM, agg.MaxPodMem)
		rw.rx = append(rw.rx, agg.SumRX)
		rw.tx = append(rw.tx, agg.SumTX)
	}
	perMetric := map[string][]float64{}
	for _, rw := range byApp {
		if len(rw.ct) < minPods {
			continue
		}
		cols := map[string][]float64{
			"NodeCPUUtil": rw.nodeC, "NodeMemUtil": rw.nodeM,
			"PodCPUUtil": rw.podC, "PodMemUtil": rw.podM,
			"RX": rw.rx, "TX": rw.tx,
		}
		for m, xs := range cols {
			if c := stats.Pearson(xs, rw.ct); c == c {
				perMetric[m] = append(perMetric[m], c)
			}
		}
	}
	out := make([]CorrSummary, 0, len(BEMetricNames))
	for _, m := range BEMetricNames {
		out = append(out, summarize(m, perMetric[m]))
	}
	return out
}
