package analysis

import (
	"sort"

	"unisched/internal/sim"
	"unisched/internal/stats"
	"unisched/internal/trace"
)

// SLODistribution returns the fraction of pods per SLO class — Fig. 2(b).
func SLODistribution(w *trace.Workload) map[trace.SLO]float64 {
	counts := map[trace.SLO]int{}
	for _, p := range w.Pods {
		counts[p.SLO]++
	}
	out := make(map[trace.SLO]float64, len(counts))
	for slo, c := range counts {
		out[slo] = float64(c) / float64(len(w.Pods))
	}
	return out
}

// Series is a labelled time series.
type Series struct {
	Label  string
	Times  []int64
	Values []float64
}

// SubmissionSeries bins pod submissions per class — Fig. 3(a). LS and LSR
// are merged, as in the paper.
func SubmissionSeries(w *trace.Workload, bin int64) (be, ls Series) {
	nbins := int(w.Horizon/bin) + 1
	be = Series{Label: "BE", Times: make([]int64, nbins), Values: make([]float64, nbins)}
	ls = Series{Label: "LS", Times: make([]int64, nbins), Values: make([]float64, nbins)}
	for i := 0; i < nbins; i++ {
		be.Times[i] = int64(i) * bin
		ls.Times[i] = int64(i) * bin
	}
	for _, p := range w.Pods {
		i := int(p.Submit / bin)
		switch {
		case p.SLO == trace.SLOBE:
			be.Values[i]++
		case p.SLO.LatencySensitive():
			ls.Values[i]++
		}
	}
	return be, ls
}

// QPSSeries returns the average per-pod QPS of LS pods over time —
// Fig. 3(b). It evaluates the demand-side QPS of all live LS pods.
func QPSSeries(w *trace.Workload, bin int64) Series {
	out := Series{Label: "LS QPS"}
	for ts := int64(0); ts < w.Horizon; ts += bin {
		var sum float64
		var n int
		for _, p := range w.Pods {
			if p.Submit > ts || !p.SLO.LatencySensitive() {
				continue
			}
			if p.Lifetime > 0 && p.Lifetime < ts {
				continue
			}
			sum += p.QPS(ts)
			n++
		}
		v := 0.0
		if n > 0 {
			v = sum / float64(n)
		}
		out.Times = append(out.Times, ts)
		out.Values = append(out.Values, v)
	}
	return out
}

// OvercommitCDFs returns the Fig. 5 distributions of per-(host, sample)
// over-commitment rates gathered by a SeriesRecorder.
type OvercommitCDFs struct {
	ReqCPU, LimitCPU *stats.CDF
	ReqMem, LimitMem *stats.CDF
}

// OvercommitCDF builds Fig. 5 from recorder samples.
func OvercommitCDF(r *SeriesRecorder) OvercommitCDFs {
	return OvercommitCDFs{
		ReqCPU:   stats.NewCDF(r.OCReqCPU),
		LimitCPU: stats.NewCDF(r.OCLimitCPU),
		ReqMem:   stats.NewCDF(r.OCReqMem),
		LimitMem: stats.NewCDF(r.OCLimitMem),
	}
}

// RequestUsage holds the Fig. 6 distributions: per-pod resource requests
// and mean actual usage, per class, plus the per-pod request/usage gap
// ratios the figure's discussion quotes (BE ~3x, LS ~5x for CPU).
type RequestUsage struct {
	BEReq, BEUsed *stats.CDF
	LSReq, LSUsed *stats.CDF
	BEGap, LSGap  *stats.CDF
}

// RequestUsageCDF builds Fig. 6 for one dimension; cpu selects CPU vs
// memory.
func RequestUsageCDF(r *SeriesRecorder, w *trace.Workload, cpu bool) RequestUsage {
	var beReq, beUsed, lsReq, lsUsed []float64
	var beGap, lsGap []float64
	for _, app := range r.Apps() {
		for _, s := range r.AppSeries(app) {
			if len(s.CPUUse) == 0 {
				continue
			}
			var req, used float64
			if cpu {
				used = stats.Mean(s.CPUUse)
			} else {
				used = stats.Mean(s.MemUse)
			}
			pod := findPod(w, s.PodID)
			if pod == nil {
				continue
			}
			if cpu {
				req = pod.Request.CPU
			} else {
				req = pod.Request.Mem
			}
			gap := 0.0
			if used > 0 {
				gap = req / used
			}
			switch {
			case s.SLO == trace.SLOBE:
				beReq = append(beReq, req)
				beUsed = append(beUsed, used)
				if gap > 0 {
					beGap = append(beGap, gap)
				}
			case s.SLO.LatencySensitive():
				lsReq = append(lsReq, req)
				lsUsed = append(lsUsed, used)
				if gap > 0 {
					lsGap = append(lsGap, gap)
				}
			}
		}
	}
	return RequestUsage{
		BEReq: stats.NewCDF(beReq), BEUsed: stats.NewCDF(beUsed),
		LSReq: stats.NewCDF(lsReq), LSUsed: stats.NewCDF(lsUsed),
		BEGap: stats.NewCDF(beGap), LSGap: stats.NewCDF(lsGap),
	}
}

func findPod(w *trace.Workload, id int) *trace.Pod {
	if id < 0 || id >= len(w.Pods) {
		return nil
	}
	return w.Pods[id]
}

// ArrivalRateCDF returns the distribution of pods-to-schedule per minute —
// Fig. 7.
func ArrivalRateCDF(w *trace.Workload) *stats.CDF {
	perMin := map[int64]float64{}
	for _, p := range w.Pods {
		perMin[p.Submit/60]++
	}
	xs := make([]float64, 0, len(perMin))
	for _, c := range perMin {
		xs = append(xs, c)
	}
	return stats.NewCDF(xs)
}

// WaitingTimeCDF returns per-class waiting-time distributions — Fig. 8.
func WaitingTimeCDF(res *sim.Result) map[trace.SLO]*stats.CDF {
	byClass := map[trace.SLO][]float64{}
	for _, pw := range res.Waits {
		byClass[pw.SLO] = append(byClass[pw.SLO], float64(pw.Wait))
	}
	out := make(map[trace.SLO]*stats.CDF, len(byClass))
	for slo, xs := range byClass {
		out[slo] = stats.NewCDF(xs)
	}
	return out
}

// RequestSizeBucket labels Fig. 9(a)'s request-size groups.
type RequestSizeBucket int

// Fig. 9(a) buckets.
const (
	ReqLow RequestSizeBucket = iota
	ReqMed
	ReqHigh
	ReqVeryHigh
)

var bucketNames = [...]string{"Low", "Med", "High", "VeryHigh"}

// String names the bucket.
func (b RequestSizeBucket) String() string { return bucketNames[b] }

// WaitingByRequestSize returns, per class and per request-size quartile,
// the mean waiting time — Fig. 9(a). Quartiles are computed per class so
// the buckets are populated for every class.
func WaitingByRequestSize(res *sim.Result, w *trace.Workload) map[trace.SLO][4]float64 {
	type rec struct {
		req  float64
		wait float64
	}
	byClass := map[trace.SLO][]rec{}
	for _, pw := range res.Waits {
		pod := findPod(w, pw.PodID)
		if pod == nil {
			continue
		}
		byClass[pw.SLO] = append(byClass[pw.SLO], rec{pod.Request.CPU, float64(pw.Wait)})
	}
	out := map[trace.SLO][4]float64{}
	for slo, recs := range byClass {
		reqs := make([]float64, len(recs))
		for i, r := range recs {
			reqs[i] = r.req
		}
		q1 := stats.Quantile(reqs, 0.25)
		q2 := stats.Quantile(reqs, 0.5)
		q3 := stats.Quantile(reqs, 0.75)
		var sums, ns [4]float64
		for _, r := range recs {
			b := ReqVeryHigh
			switch {
			case r.req <= q1:
				b = ReqLow
			case r.req <= q2:
				b = ReqMed
			case r.req <= q3:
				b = ReqHigh
			}
			sums[b] += r.wait
			ns[b]++
		}
		var means [4]float64
		for i := range sums {
			if ns[i] > 0 {
				means[i] = sums[i] / ns[i]
			}
		}
		out[slo] = means
	}
	return out
}

// DelaySources returns, per class, the proportion of delayed pods blocked
// by each resource — Fig. 9(b). A pod counts as delayed when it waited more
// than one sampling interval.
func DelaySources(res *sim.Result) map[trace.SLO]map[string]float64 {
	counts := map[trace.SLO]map[string]int{}
	totals := map[trace.SLO]int{}
	for _, pw := range res.Waits {
		if pw.Wait <= trace.SampleInterval {
			continue
		}
		m := counts[pw.SLO]
		if m == nil {
			m = map[string]int{}
			counts[pw.SLO] = m
		}
		m[pw.Reason.String()]++
		totals[pw.SLO]++
	}
	out := map[trace.SLO]map[string]float64{}
	for slo, m := range counts {
		om := map[string]float64{}
		for reason, c := range m {
			om[reason] = float64(c) / float64(totals[slo])
		}
		out[slo] = om
	}
	return out
}

// HostRankCDF returns per-class CDFs of the chosen host's normalized rank
// under the usage-based and request-based policies — Fig. 10. Ranks are
// normalized to (rank-1)/(nodes-1) in [0, 1], 0 being the best-aligned.
func HostRankCDF(res *sim.Result) (usage, request map[trace.SLO]*stats.CDF) {
	u := map[trace.SLO][]float64{}
	q := map[trace.SLO][]float64{}
	for _, r := range res.Ranks {
		if r.Nodes < 2 {
			continue
		}
		d := float64(r.Nodes - 1)
		u[r.SLO] = append(u[r.SLO], float64(r.UsageRank-1)/d)
		q[r.SLO] = append(q[r.SLO], float64(r.ReqRank-1)/d)
	}
	usage = map[trace.SLO]*stats.CDF{}
	request = map[trace.SLO]*stats.CDF{}
	for slo := range u {
		usage[slo] = stats.NewCDF(u[slo])
		request[slo] = stats.NewCDF(q[slo])
	}
	return usage, request
}

// CoVResult holds Fig. 12's within-application coefficient-of-variation
// distributions: one CoV sample per application per metric.
type CoVResult struct {
	// LS metrics.
	LSCPUUsed, LSMemUtil, LSRT, LSQPS *stats.CDF
	// BE metrics.
	BECPUUsed, BEMemUtil, BECT *stats.CDF
}

// CoVDistribution computes Fig. 12 from recorded series and completion
// times. Only applications with at least minPods tracked pods contribute.
func CoVDistribution(r *SeriesRecorder, res *sim.Result, w *trace.Workload, minPods int) CoVResult {
	if minPods < 2 {
		minPods = 2
	}
	var lsCPU, lsMem, lsRT, lsQPS, beCPU, beMem, beCT []float64

	// Per-app BE completion times.
	ctByApp := map[string][]float64{}
	for id, ct := range res.BECT {
		pod := findPod(w, id)
		if pod != nil {
			ctByApp[pod.AppID] = append(ctByApp[pod.AppID], ct)
		}
	}

	apps := r.Apps()
	sort.Strings(apps)
	for _, app := range apps {
		series := r.AppSeries(app)
		if len(series) < minPods {
			continue
		}
		var cpuMeans, memMeans, rtMeans, qpsMeans []float64
		var slo trace.SLO
		for _, s := range series {
			if len(s.CPUUse) == 0 {
				continue
			}
			slo = s.SLO
			cpuMeans = append(cpuMeans, stats.Mean(s.CPUUse))
			memMeans = append(memMeans, stats.Mean(s.PodMemUtil))
			rtMeans = append(rtMeans, stats.Mean(s.RT))
			qpsMeans = append(qpsMeans, stats.Mean(s.QPS))
		}
		if len(cpuMeans) < minPods {
			continue
		}
		switch {
		case slo.LatencySensitive():
			lsCPU = append(lsCPU, stats.CoV(cpuMeans))
			lsMem = append(lsMem, stats.CoV(memMeans))
			lsRT = append(lsRT, stats.CoV(rtMeans))
			lsQPS = append(lsQPS, stats.CoV(qpsMeans))
		case slo == trace.SLOBE:
			beCPU = append(beCPU, stats.CoV(cpuMeans))
			beMem = append(beMem, stats.CoV(memMeans))
		}
	}
	for _, cts := range ctByApp {
		if len(cts) >= minPods {
			beCT = append(beCT, stats.CoV(cts))
		}
	}
	return CoVResult{
		LSCPUUsed: stats.NewCDF(lsCPU), LSMemUtil: stats.NewCDF(lsMem),
		LSRT: stats.NewCDF(lsRT), LSQPS: stats.NewCDF(lsQPS),
		BECPUUsed: stats.NewCDF(beCPU), BEMemUtil: stats.NewCDF(beMem),
		BECT: stats.NewCDF(beCT),
	}
}
