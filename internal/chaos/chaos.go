// Package chaos injects deterministic faults into a simulated cluster:
// node crashes, recoveries and drains, random pod evictions, and profiler
// data blackouts. Faults come from an explicit schedule, from seeded
// stochastic rates, or both; given the same seed, schedule and tick
// sequence the injector produces byte-identical fault streams, so chaos
// runs are as reproducible as failure-free ones.
//
// The injector is driven by the testbed once per tick (sim.Config.Chaos)
// and doubles as the scheduler's data-availability signal: it implements
// core.BlackoutSource, so Optum degrades to request-based scoring for
// applications whose profiles are blacked out.
package chaos

import (
	"math/rand"
	"sort"

	"unisched/internal/cluster"
)

// Kind classifies a fault event.
type Kind int

// Fault kinds. Node events target one host; PodEvict displaces running
// pods; the Blackout pair gates profiler data per application ("" = all).
const (
	NodeFail Kind = iota
	NodeRecover
	NodeDrain
	PodEvict
	BlackoutStart
	BlackoutEnd
)

var kindNames = [...]string{"NodeFail", "NodeRecover", "NodeDrain", "PodEvict", "BlackoutStart", "BlackoutEnd"}

// String names the fault kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "?"
	}
	return kindNames[k]
}

// Event is one scheduled fault.
type Event struct {
	// At is when the event fires (seconds from trace start).
	At   int64
	Kind Kind
	// NodeID targets a node event; -1 lets the injector pick a seeded
	// random eligible host (Up for fail/drain, not-Up for recover).
	NodeID int
	// AppID scopes a blackout; "" blacks out every application.
	AppID string
	// Count is how many pods a PodEvict displaces (0 means 1).
	Count int
	// For is an optional BlackoutStart duration in seconds; 0 falls back
	// to Rates.BlackoutFor, and if both are zero the blackout lasts until
	// an explicit BlackoutEnd.
	For int64
}

// Rates drives stochastic fault generation: expected events per hour across
// the whole cluster, sampled once per tick from the injector's seeded RNG.
// A zero rate disables that fault class.
type Rates struct {
	// NodeFailPerHour crashes a random Up node.
	NodeFailPerHour float64
	// MTTR is how long a failed node stays Down before auto-recovery
	// (seconds; 0 means failed nodes never come back on their own).
	MTTR int64
	// NodeDrainPerHour cordons and drains a random Up node.
	NodeDrainPerHour float64
	// DrainFor is how long a drained node stays cordoned before returning
	// to service (0 = forever).
	DrainFor int64
	// PodEvictPerHour displaces one random running pod.
	PodEvictPerHour float64
	// BlackoutPerHour starts a cluster-wide profiler blackout.
	BlackoutPerHour float64
	// BlackoutFor is the duration of rate-generated blackouts (seconds).
	BlackoutFor int64
}

// DefaultRates is a moderately hostile churn profile: a couple of crashes
// and a drain per hour with half-hour repair times, occasional random
// evictions, and a profiler outage roughly every other hour.
func DefaultRates() Rates {
	return Rates{
		NodeFailPerHour:  2,
		MTTR:             1800,
		NodeDrainPerHour: 1,
		DrainFor:         3600,
		PodEvictPerHour:  4,
		BlackoutPerHour:  0.5,
		BlackoutFor:      1800,
	}
}

// Injector applies faults to a cluster tick by tick.
type Injector struct {
	rng   *rand.Rand
	rates Rates

	schedule []Event
	next     int

	now       int64
	pendingAt []Event // auto-generated future events (recoveries, blackout ends)

	// blackouts maps application ID ("" = all) to the end time of its
	// blackout (negative = until an explicit BlackoutEnd).
	blackouts map[string]int64

	applied []Event
}

// NewInjector builds an injector over an explicit schedule (may be nil)
// plus stochastic rates (may be zero). The schedule is sorted by time;
// order among same-time events is preserved.
func NewInjector(seed int64, schedule []Event, rates Rates) *Injector {
	s := append([]Event(nil), schedule...)
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return &Injector{
		rng:       rand.New(rand.NewSource(seed)),
		rates:     rates,
		schedule:  s,
		blackouts: make(map[string]int64),
	}
}

// Step fires every fault due at time now against the cluster and returns
// the displaced pods, in deterministic order. dt is the tick length in
// seconds (the window the stochastic rates are sampled over).
func (in *Injector) Step(c *cluster.Cluster, now, dt int64) []*cluster.PodState {
	in.now = now
	var displaced []*cluster.PodState

	// 1. Auto-generated events (recoveries, blackout ends) that came due.
	keep := in.pendingAt[:0]
	for _, e := range in.pendingAt {
		if e.At <= now {
			in.apply(c, e, &displaced)
		} else {
			keep = append(keep, e)
		}
	}
	in.pendingAt = keep

	// 2. Scheduled events.
	for in.next < len(in.schedule) && in.schedule[in.next].At <= now {
		in.apply(c, in.schedule[in.next], &displaced)
		in.next++
	}

	// 3. Rate-driven events: one Bernoulli draw per fault class per tick.
	// Draws happen unconditionally so the random stream (and therefore the
	// fault sequence) does not depend on cluster state.
	h := float64(dt) / 3600
	fail := in.rng.Float64() < in.rates.NodeFailPerHour*h
	drain := in.rng.Float64() < in.rates.NodeDrainPerHour*h
	evict := in.rng.Float64() < in.rates.PodEvictPerHour*h
	black := in.rng.Float64() < in.rates.BlackoutPerHour*h
	if fail && in.rates.NodeFailPerHour > 0 {
		in.apply(c, Event{At: now, Kind: NodeFail, NodeID: -1}, &displaced)
	}
	if drain && in.rates.NodeDrainPerHour > 0 {
		in.apply(c, Event{At: now, Kind: NodeDrain, NodeID: -1}, &displaced)
	}
	if evict && in.rates.PodEvictPerHour > 0 {
		in.apply(c, Event{At: now, Kind: PodEvict, Count: 1}, &displaced)
	}
	if black && in.rates.BlackoutPerHour > 0 {
		in.apply(c, Event{At: now, Kind: BlackoutStart}, &displaced)
	}

	// 4. Expire timed blackouts.
	for app, until := range in.blackouts {
		if until >= 0 && until <= now {
			delete(in.blackouts, app)
		}
	}
	return displaced
}

func (in *Injector) apply(c *cluster.Cluster, e Event, displaced *[]*cluster.PodState) {
	e.At = in.now
	switch e.Kind {
	case NodeFail:
		id := e.NodeID
		if id < 0 {
			id = in.pickNode(c, true)
		}
		if id < 0 {
			return
		}
		e.NodeID = id
		*displaced = append(*displaced, c.FailNode(id, in.now)...)
		if in.rates.MTTR > 0 {
			in.pendingAt = append(in.pendingAt, Event{At: in.now + in.rates.MTTR, Kind: NodeRecover, NodeID: id})
		}
	case NodeDrain:
		id := e.NodeID
		if id < 0 {
			id = in.pickNode(c, true)
		}
		if id < 0 {
			return
		}
		e.NodeID = id
		*displaced = append(*displaced, c.DrainNode(id, in.now)...)
		if in.rates.DrainFor > 0 {
			in.pendingAt = append(in.pendingAt, Event{At: in.now + in.rates.DrainFor, Kind: NodeRecover, NodeID: id})
		}
	case NodeRecover:
		id := e.NodeID
		if id < 0 {
			id = in.pickNode(c, false)
		}
		if id < 0 {
			return
		}
		e.NodeID = id
		c.RecoverNode(id)
	case PodEvict:
		count := e.Count
		if count <= 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			ps := in.pickPod(c)
			if ps == nil {
				continue // keep drawing: rng use must not depend on state
			}
			if ev := c.Evict(ps.Pod.ID, in.now); ev != nil {
				*displaced = append(*displaced, ev)
			}
		}
	case BlackoutStart:
		until := int64(-1)
		if e.For > 0 {
			until = in.now + e.For
		} else if in.rates.BlackoutFor > 0 {
			until = in.now + in.rates.BlackoutFor
		}
		in.blackouts[e.AppID] = until
	case BlackoutEnd:
		delete(in.blackouts, e.AppID)
	}
	in.applied = append(in.applied, e)
}

// pickNode returns a seeded random node ID: among Up nodes when up is true
// (fail/drain targets), among non-Up nodes otherwise (recover targets).
// Returns -1 when no node is eligible. Exactly one rng draw is consumed
// regardless of eligibility, so the fault stream — the sequence of event
// kinds and times — cannot depend on cluster state.
func (in *Injector) pickNode(c *cluster.Cluster, up bool) int {
	r := in.rng.Float64()
	var ids []int
	for _, n := range c.Nodes() {
		if n.Schedulable() == up {
			ids = append(ids, n.Node.ID)
		}
	}
	if len(ids) == 0 {
		return -1
	}
	return ids[int(r*float64(len(ids)))]
}

// pickPod returns a seeded random running pod, scanning nodes in ID order
// for determinism. Returns nil when the cluster is idle. Like pickNode it
// always consumes exactly one rng draw.
func (in *Injector) pickPod(c *cluster.Cluster) *cluster.PodState {
	r := in.rng.Float64()
	total := 0
	for _, n := range c.Nodes() {
		total += len(n.Pods())
	}
	if total == 0 {
		return nil
	}
	k := int(r * float64(total))
	for _, n := range c.Nodes() {
		pods := n.Pods()
		if k < len(pods) {
			return pods[k]
		}
		k -= len(pods)
	}
	return nil
}

// Blacked implements core.BlackoutSource: true while the application (or
// everything) is inside a profiler blackout.
func (in *Injector) Blacked(app string) bool {
	if until, ok := in.blackouts[""]; ok && (until < 0 || until > in.now) {
		return true
	}
	until, ok := in.blackouts[app]
	return ok && (until < 0 || until > in.now)
}

// Applied returns the log of fired events (with picked targets resolved),
// in firing order.
func (in *Injector) Applied() []Event { return in.applied }
