package chaos

import (
	"reflect"
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

func testCluster(t *testing.T) (*cluster.Cluster, *trace.Workload) {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = 8
	w := trace.MustGenerate(cfg)
	return cluster.New(w.Nodes, cluster.DefaultPhysics()), w
}

func TestScheduledEventsFireInOrder(t *testing.T) {
	c, w := testCluster(t)
	for _, p := range w.Pods[:6] {
		if _, err := c.Place(p, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	in := NewInjector(1, []Event{
		{At: 90, Kind: NodeRecover, NodeID: 1}, // out of order on purpose
		{At: 30, Kind: NodeFail, NodeID: 1},
	}, Rates{})

	if got := in.Step(c, 0, 30); len(got) != 0 {
		t.Fatalf("events fired early: %d pods displaced", len(got))
	}
	displaced := in.Step(c, 30, 30)
	if len(displaced) != 6 {
		t.Fatalf("displaced %d pods, want 6", len(displaced))
	}
	if c.Node(1).Phase() != cluster.NodeDown {
		t.Fatal("node 1 not down after scheduled failure")
	}
	in.Step(c, 60, 30)
	if c.Node(1).Phase() != cluster.NodeDown {
		t.Fatal("node recovered early")
	}
	in.Step(c, 90, 30)
	if c.Node(1).Phase() != cluster.NodeUp {
		t.Fatal("node 1 not recovered at 90s")
	}
	applied := in.Applied()
	if len(applied) != 2 || applied[0].Kind != NodeFail || applied[1].Kind != NodeRecover {
		t.Fatalf("applied log = %+v", applied)
	}
}

func TestMTTRAutoRecovery(t *testing.T) {
	c, _ := testCluster(t)
	in := NewInjector(1, []Event{{At: 0, Kind: NodeFail, NodeID: 3}}, Rates{MTTR: 60})
	in.Step(c, 0, 30)
	if c.Node(3).Phase() != cluster.NodeDown {
		t.Fatal("not down")
	}
	in.Step(c, 30, 30)
	if c.Node(3).Phase() != cluster.NodeUp {
		// MTTR recovery lands at t=60.
		in.Step(c, 60, 30)
	}
	if c.Node(3).Phase() != cluster.NodeUp {
		t.Fatal("MTTR auto-recovery never fired")
	}
}

func TestBlackoutSemantics(t *testing.T) {
	c, _ := testCluster(t)
	in := NewInjector(1, []Event{
		{At: 0, Kind: BlackoutStart, AppID: "app-1", For: 60},
		{At: 0, Kind: BlackoutStart, AppID: "app-2"}, // open-ended
	}, Rates{})
	in.Step(c, 0, 30)
	if !in.Blacked("app-1") || !in.Blacked("app-2") {
		t.Fatal("blackouts not active")
	}
	if in.Blacked("app-3") {
		t.Fatal("unrelated app blacked out")
	}
	in.Step(c, 60, 30) // app-1's 60s window expires at t=60
	if in.Blacked("app-1") {
		t.Error("timed blackout did not expire")
	}
	if !in.Blacked("app-2") {
		t.Error("open-ended blackout expired on its own")
	}
	in.Step(c, 90, 30)
	inEnd := Event{At: 90, Kind: BlackoutEnd, AppID: "app-2"}
	in.apply(c, inEnd, nil)
	if in.Blacked("app-2") {
		t.Error("explicit BlackoutEnd ignored")
	}

	// A global blackout ("" app) covers everything.
	in2 := NewInjector(1, []Event{{At: 0, Kind: BlackoutStart}}, Rates{BlackoutFor: 120})
	in2.Step(c, 0, 30)
	if !in2.Blacked("anything") {
		t.Error("global blackout not covering all apps")
	}
}

func TestRateStreamDeterministicAndStateIndependent(t *testing.T) {
	// Two injectors with the same seed must fire identical fault sequences
	// even when the clusters they act on diverge (one has pods, one is
	// empty): the Bernoulli draws must not depend on cluster state.
	cfg := trace.SmallConfig()
	cfg.NumNodes = 8
	w := trace.MustGenerate(cfg)
	c1 := cluster.New(w.Nodes, cluster.DefaultPhysics())
	c2 := cluster.New(w.Nodes, cluster.DefaultPhysics())
	for _, p := range w.Pods[:10] {
		if _, err := c1.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	rates := Rates{NodeFailPerHour: 40, MTTR: 300, PodEvictPerHour: 40}
	a := NewInjector(5, nil, rates)
	b := NewInjector(5, nil, rates)
	for now := int64(0); now < 2*3600; now += 30 {
		a.Step(c1, now, 30)
		b.Step(c2, now, 30)
	}
	// Node targets may differ (different eligible sets) but the sequence
	// of fired kinds and times must match.
	ka := eventKinds(a.Applied())
	kb := eventKinds(b.Applied())
	if !reflect.DeepEqual(ka, kb) {
		t.Fatalf("fault streams diverged:\n%v\n%v", ka, kb)
	}
	if len(ka) == 0 {
		t.Fatal("high rates fired nothing in two hours")
	}
}

type kindAt struct {
	At   int64
	Kind Kind
}

func eventKinds(evs []Event) []kindAt {
	out := make([]kindAt, len(evs))
	for i, e := range evs {
		out[i] = kindAt{e.At, e.Kind}
	}
	return out
}

func TestPodEvictCountAndIdleCluster(t *testing.T) {
	c, w := testCluster(t)
	in := NewInjector(1, []Event{{At: 0, Kind: PodEvict, Count: 3}}, Rates{})
	// Idle cluster: eviction is a no-op, not a panic.
	if got := in.Step(c, 0, 30); len(got) != 0 {
		t.Fatalf("evicted %d pods from an empty cluster", len(got))
	}

	for _, p := range w.Pods[:5] {
		if _, err := c.Place(p, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	in2 := NewInjector(1, []Event{{At: 0, Kind: PodEvict, Count: 3}}, Rates{})
	if got := in2.Step(c, 0, 30); len(got) != 3 {
		t.Fatalf("evicted %d pods, want 3", len(got))
	}
	if c.RunningPods() != 2 {
		t.Fatalf("running pods = %d, want 2", c.RunningPods())
	}
}

func TestRandomNodePickSkipsIneligible(t *testing.T) {
	c, _ := testCluster(t)
	// Fail all but one node via schedule, then a rate-driven failure must
	// pick the last Up node; once none are Up, failures become no-ops.
	var schedule []Event
	for i := 0; i < 7; i++ {
		schedule = append(schedule, Event{At: 0, Kind: NodeFail, NodeID: i})
	}
	in := NewInjector(9, schedule, Rates{})
	in.Step(c, 0, 30)
	var d []*cluster.PodState
	in.apply(c, Event{Kind: NodeFail, NodeID: -1}, &d)
	if c.Node(7).Phase() != cluster.NodeDown {
		t.Fatal("random pick did not hit the only Up node")
	}
	before := len(in.Applied())
	in.apply(c, Event{Kind: NodeFail, NodeID: -1}, &d)
	if len(in.Applied()) != before {
		t.Error("failure with no eligible nodes was logged as applied")
	}
}
