package federation

import (
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sort"

	"unisched/internal/engine"
	"unisched/internal/trace"
)

// Open builds a durable federation: every partition journals and
// checkpoints under cfg.DataDir/p<i> through the engine's own
// durability machinery, and the coordinator's routing table is
// reconstructed from the partitions' recovered records. Node-ownership
// migrations replay from the journals, so the recovered shard
// boundaries — and the federation StateHash — are bit-identical to the
// pre-crash state.
func Open(nodes []*trace.Node, factory engine.SchedulerFactory, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Partitions > 64 {
		return nil, fmt.Errorf("federation: %d partitions (max 64)", cfg.Partitions)
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("federation: Open requires Config.DataDir")
	}
	co := newCoordinator(cfg)
	for pi := 0; pi < cfg.Partitions; pi++ {
		dir := filepath.Join(cfg.DataDir, fmt.Sprintf("p%d", pi))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		part, err := co.buildPartition(nodes, factory, pi, dir)
		if err != nil {
			return nil, err
		}
		co.parts = append(co.parts, part)
		co.local = append(co.local, part)
	}
	co.digests = make([]engine.Digest, len(co.parts))
	co.submitsSince = make([]int, len(co.parts))
	co.reconcile()
	return co, nil
}

// podInfo accumulates one pod's records across the partitions during
// reconciliation.
type podInfo struct {
	pod      *trace.Pod
	tried    uint64
	rejected uint64
	shed     uint64
	home     int
	hasHome  bool
}

// reconcile rebuilds the coordinator's routing table and conservation
// counters from the recovered partition records. The rules mirror the
// live bookkeeping exactly, so a recovered federation's merged snapshot
// balances the same way a never-crashed one does:
//
//   - a pod with a live record somewhere: that record is authoritative;
//     every reject/shed record it left behind is superseded.
//   - a pod with only reject/shed records and budget left: it was
//     mid-spillover when the process died — back into the respill queue
//     (sorted by ID, so recovery re-dispatch order is deterministic).
//   - a pod with only reject/shed records and no budget: a federation
//     shed; its newest record stands as the terminal one.
func (co *Coordinator) reconcile() {
	info := make(map[int]*podInfo)
	for pi, part := range co.local {
		idx := pi
		part.Engine().EachPod(func(id int, phase engine.PodPhase, pod *trace.Pod) {
			fi := info[id]
			if fi == nil {
				fi = &podInfo{pod: pod, home: -1}
				info[id] = fi
			}
			fi.tried |= 1 << uint(idx)
			switch phase {
			case engine.PodRejected:
				fi.rejected |= 1 << uint(idx)
			case engine.PodShed:
				fi.shed |= 1 << uint(idx)
			default:
				fi.home = idx
				fi.hasHome = true
			}
		})
	}
	ids := make([]int, 0, len(info))
	for id := range info {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fi := info[id]
		rej := int64(bits.OnesCount64(fi.rejected))
		shd := int64(bits.OnesCount64(fi.shed))
		rec := &fedRecord{
			pod:   fi.pod,
			tried: fi.tried,
			hops:  bits.OnesCount64(fi.tried) - 1,
			last:  fi.home,
		}
		co.recs[id] = rec
		co.submitted++
		switch {
		case fi.hasHome:
			rec.state = frActive
			co.exclRejected += rej
			co.exclShed += shd
		case co.untriedLocked(rec) > 0 && rec.hops < co.cfg.MaxHops:
			rec.state = frRespill
			co.exclRejected += rej
			co.exclShed += shd
			co.respillQueued++
			co.respill = append(co.respill, rec)
		default:
			rec.state = frShed
			co.fedShed++
			if rej > 0 {
				co.reshedRejected++
				co.exclRejected += rej - 1
				co.exclShed += shd
			} else {
				co.exclShed += shd - 1
			}
		}
	}
}
