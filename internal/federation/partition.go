package federation

import (
	"time"

	"unisched/internal/engine"
	"unisched/internal/trace"
)

// Backend is one partition as the coordinator sees it. In-process
// partitions wrap an engine directly; remote partitions speak the
// unischedd JSON API (Remote).
type Backend interface {
	Start()
	Stop()
	// Submit hands the pod to the partition. engine.ErrQueueFull means
	// the partition shed it (and accounted the shed); engine.ErrDuplicate
	// means it already has a record for the ID.
	Submit(p *trace.Pod) error
	// Digest returns the partition's routing summary.
	Digest() (engine.Digest, error)
	// Snapshot returns the partition's full metrics snapshot.
	Snapshot() (engine.Snapshot, error)
	// Status queries one pod's record.
	Status(id int) (engine.PodStatus, bool, error)
	// Drain waits until the partition settles (no queued work).
	Drain(timeout time.Duration) bool
}

// Reject is one spillover notification from a remote partition.
type Reject struct {
	Seq    uint64 `json:"seq"`
	ID     int    `json:"id"`
	Reason string `json:"reason"`
}

// RejectSource is implemented by backends that cannot invoke the
// in-process fail-fast hook: the coordinator polls their reject cursor.
type RejectSource interface {
	PollRejects(after uint64) ([]Reject, uint64, error)
}

// Migrator is implemented by backends whose node ownership the
// rebalancer can change online.
type Migrator interface {
	SetNodeActive(id int, active bool) error
	IdleOwnedNodes(max int) []int
}

// Partition is an in-process partition: one engine over its own cluster
// instance, with every non-owned node Down from genesis.
type Partition struct {
	// Index is the partition's position in the federation.
	Index int
	eng   *engine.Engine
	// recovery is non-nil when the partition was built by Open.
	recovery *engine.RecoveryStats
}

// Engine exposes the wrapped engine (tests, state hashing).
func (p *Partition) Engine() *engine.Engine { return p.eng }

// Recovery returns the crash-recovery stats, nil for fresh partitions.
func (p *Partition) Recovery() *engine.RecoveryStats { return p.recovery }

func (p *Partition) Start() { p.eng.Start() }
func (p *Partition) Stop()  { p.eng.Stop() }

func (p *Partition) Submit(pod *trace.Pod) error { return p.eng.Submit(pod) }

func (p *Partition) Digest() (engine.Digest, error) { return p.eng.Digest(), nil }

func (p *Partition) Snapshot() (engine.Snapshot, error) { return p.eng.Snapshot(), nil }

func (p *Partition) Status(id int) (engine.PodStatus, bool, error) {
	st, ok := p.eng.PodStatus(id)
	return st, ok, nil
}

func (p *Partition) Drain(timeout time.Duration) bool { return p.eng.Drain(timeout) }

func (p *Partition) SetNodeActive(id int, active bool) error {
	return p.eng.SetNodeActive(id, active)
}

func (p *Partition) IdleOwnedNodes(max int) []int { return p.eng.IdleOwnedNodes(max) }
