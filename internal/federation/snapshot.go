package federation

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"unisched/internal/engine"
)

// Snapshot is the federation-wide metrics view: the merged conservation
// accounting plus every partition's own snapshot. The top-level JSON
// field names match the single-engine snapshot where the meaning
// carries over, so loadgen and the dashboards read a coordinator
// exactly like a single unischedd.
type Snapshot struct {
	WallSeconds    float64 `json:"wall_seconds"`
	PartitionCount int     `json:"partition_count"`

	Submitted int64 `json:"submitted"`
	Placed    int64 `json:"placed"`
	Completed int64 `json:"completed"`
	Expired   int64 `json:"expired"`
	Exhausted int64 `json:"exhausted"`
	Shed      int64 `json:"shed"`

	// Spills counts spillover re-dispatches (hops) taken; FedShed the
	// pods the coordinator gave up on after the hop budget; RespillQueued
	// the pods currently waiting for re-dispatch; Rebalanced the nodes
	// migrated between partitions.
	Spills        int64 `json:"spillover_hops"`
	FedShed       int64 `json:"federation_shed"`
	RespillQueued int64 `json:"respill_queued"`
	Rebalanced    int64 `json:"rebalanced_nodes"`

	// Remote submit failures by HTTP status class, counted by the
	// coordinator when a partition daemon's response was not 202. Always
	// zero with in-process partitions.
	Remote429   int64 `json:"remote_429,omitempty"`
	Remote503   int64 `json:"remote_503,omitempty"`
	Remote409   int64 `json:"remote_409,omitempty"`
	RemoteOther int64 `json:"remote_other,omitempty"`

	CommitConflicts int64 `json:"commit_conflicts"`

	QueueDepth int `json:"queue_depth"`
	Backlogged int `json:"backlogged"`
	InFlight   int `json:"in_flight"`
	Pending    int `json:"pending"`
	Running    int `json:"running"`

	// DecisionP99Ms is the worst partition's p99 — the federation's tail.
	DecisionP99Ms    float64 `json:"decision_p99_ms"`
	PlacementsPerSec float64 `json:"placements_per_sec"`

	// States is the merged pod-phase accounting; Submitted equals the sum
	// of all states (Lost() == 0) exactly as for a single engine. The
	// "rejected" bucket is the merge residual and must be zero: every
	// partition-side reject is either superseded by a re-dispatch or
	// re-counted as a federation shed.
	States map[string]int64 `json:"states"`

	// Partitions holds each partition's own snapshot, in index order.
	Partitions []engine.Snapshot `json:"partitions"`
}

// Lost returns the number of submissions unaccounted for across the
// whole federation — zero when the engines and the coordinator agree.
// Transient nonzero readings are possible while pods move between a
// partition and the respill queue mid-snapshot; at a settled instant it
// is exact.
func (s Snapshot) Lost() int64 {
	var sum int64
	for _, v := range s.States {
		sum += v
	}
	return s.Submitted - sum
}

// Snapshot assembles the federation-wide view. Partition snapshots are
// taken sequentially (each internally consistent); the coordinator
// counters are read under the routing lock.
func (co *Coordinator) Snapshot() Snapshot {
	sn := Snapshot{
		PartitionCount: len(co.parts),
		WallSeconds:    time.Since(co.start).Seconds(),
		States:         make(map[string]int64),
	}
	for _, p := range co.parts {
		ps, err := p.Snapshot()
		if err != nil {
			continue
		}
		sn.Partitions = append(sn.Partitions, ps)
		sn.Placed += ps.Placed
		sn.Completed += ps.Completed
		sn.Expired += ps.Expired
		sn.Exhausted += ps.Exhausted
		sn.CommitConflicts += ps.CommitConflicts
		sn.QueueDepth += ps.QueueDepth
		sn.Backlogged += ps.Backlogged
		sn.InFlight += ps.InFlight
		sn.Pending += ps.Pending
		sn.Running += ps.Running
		if ps.DecisionP99Ms > sn.DecisionP99Ms {
			sn.DecisionP99Ms = ps.DecisionP99Ms
		}
		for k, v := range ps.States {
			sn.States[k] += v
		}
	}
	co.mu.Lock()
	sn.Submitted = co.submitted
	sn.Spills = co.spills
	sn.FedShed = co.fedShed
	sn.RespillQueued = co.respillQueued
	sn.Rebalanced = co.rebalanced
	sn.Remote429 = co.remote429
	sn.Remote503 = co.remote503
	sn.Remote409 = co.remote409
	sn.RemoteOther = co.remoteOther
	// Merge corrections: pods owned by the coordinator count as queued;
	// superseded partition records come out of their buckets; terminal
	// rejects the coordinator gave up on become federation sheds.
	sn.States["queued"] += co.respillQueued
	sn.States["shed"] += -co.exclShed + co.reshedRejected + co.shedOrphan
	sn.States["rejected"] += -co.exclRejected - co.reshedRejected
	co.mu.Unlock()
	sn.Pending += int(sn.RespillQueued)
	for k, v := range sn.States {
		if v == 0 {
			delete(sn.States, k)
		}
	}
	sn.Shed = sn.States["shed"]
	if sn.WallSeconds > 0 {
		sn.PlacementsPerSec = float64(sn.Placed) / sn.WallSeconds
	}
	return sn
}

// StateHash fingerprints the entire federation's durable state: the
// SHA-256 over the partition StateHashes in index order. Two federations
// with pairwise-identical partition states hash identically — the
// crash-recovery tests compare this across a kill and a re-open. Only
// meaningful when every partition runs in-process.
func (co *Coordinator) StateHash() string {
	if len(co.local) != len(co.parts) {
		return ""
	}
	h := sha256.New()
	for _, p := range co.local {
		if p == nil {
			return ""
		}
		fmt.Fprintf(h, "p%d:%s\n", p.Index, p.Engine().StateHash())
	}
	return hex.EncodeToString(h.Sum(nil))
}
