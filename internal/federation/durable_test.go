package federation

import (
	"fmt"
	"testing"
	"time"

	"unisched/internal/engine"
	"unisched/internal/trace"
)

// detDurableConfig pins the virtual horizon so every partition's clock
// parks at the same tick: the state hash is position-independent of
// when the crash lands relative to the (otherwise free-running) clock.
func detDurableConfig(queueCap int, horizon int64) engine.Config {
	cfg := detConfig(queueCap)
	cfg.Horizon = horizon
	return cfg
}

// waitClocksParked polls until every partition's virtual clock reached
// the horizon, so the journals hold a deterministic tick count.
func waitClocksParked(t *testing.T, co *Coordinator, horizon int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		parked := true
		for _, p := range co.Partitions() {
			sn, err := p.Snapshot()
			if err != nil || sn.VirtualNow < horizon {
				parked = false
				break
			}
		}
		if parked {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("virtual clocks did not reach horizon %d", horizon)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFederationCrashRecovery pins durable federation state across a
// crash, for every partition count: run a saturating workload (so
// spillover and federation sheds are part of the recovered state), hash
// the federation, kill every partition without a final checkpoint, and
// re-open from the journals. The recovered StateHash must be
// bit-identical, the routing table must balance (Lost()==0, zero merge
// residual), and the recovered federation must keep scheduling.
func TestFederationCrashRecovery(t *testing.T) {
	for _, parts := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			dir := t.TempDir()
			reqs := append(uniform(20, 0.4), 2.0) // one pod fits nowhere
			w := fedWorkload(t, uniform(8, 1), reqs)
			cfg := Config{
				Partitions: parts,
				Engine:     detDurableConfig(64, w.Horizon),
				DataDir:    dir,
				Link:       w.LinkPod,
			}
			co, err := Open(w.Nodes, alibabaFactory, cfg)
			if err != nil {
				t.Fatal(err)
			}
			co.Start()
			for _, p := range w.Pods {
				if err := co.Submit(p); err != nil && err != ErrShed {
					t.Fatalf("submit pod %d: %v", p.ID, err)
				}
			}
			if !co.Drain(60 * time.Second) {
				t.Fatalf("did not settle: %+v", co.Snapshot())
			}
			waitClocksParked(t, co, w.Horizon)
			before := co.Snapshot()
			checkConservation(t, before)
			hash := co.StateHash()
			if hash == "" {
				t.Fatal("empty federation state hash")
			}
			// Crash: no clean Stop, no final checkpoint.
			for _, p := range co.local {
				p.Engine().Crash()
			}

			re, err := Open(w.Nodes, alibabaFactory, cfg)
			if err != nil {
				t.Fatalf("re-open: %v", err)
			}
			if got := re.StateHash(); got != hash {
				t.Fatalf("state hash diverged across crash:\n before %s\n after  %s", hash, got)
			}
			after := re.Snapshot()
			checkConservation(t, after)
			if after.Submitted != before.Submitted || after.Placed != before.Placed || after.Shed != before.Shed {
				t.Fatalf("recovered accounting differs: before %+v after %+v", before.States, after.States)
			}
			// Duplicate detection survives recovery at the coordinator.
			if err := re.Submit(w.Pods[0]); err == nil {
				t.Fatal("recovered coordinator accepted a duplicate")
			}
			// And the recovered federation still schedules.
			re.Start()
			extra := &trace.Pod{
				ID: len(w.Pods), AppID: "app", SLO: trace.SLOLS,
				Request:  trace.Resources{CPU: 0.1, Mem: 0.1},
				Limit:    trace.Resources{CPU: 0.1, Mem: 0.1},
				CPUScale: 1, MemScale: 1,
			}
			if err := w.LinkPod(extra); err != nil {
				t.Fatal(err)
			}
			if err := re.Submit(extra); err != nil {
				t.Fatal(err)
			}
			if !re.Drain(30 * time.Second) {
				t.Fatalf("recovered federation did not settle: %+v", re.Snapshot())
			}
			fin := re.Snapshot()
			checkConservation(t, fin)
			if fin.Placed != before.Placed+1 {
				t.Fatalf("post-recovery pod not placed: %+v", fin.States)
			}
			re.Stop()
		})
	}
}

// TestFederationRecoveryMidSpill crashes while rejected pods sit in the
// respill queue: the partitions know them only as rejects. Reconcile
// must re-queue them (not lose them, not double-count them) and the
// recovered federation must finish the spillover.
func TestFederationRecoveryMidSpill(t *testing.T) {
	dir := t.TempDir()
	// 2 partitions x 2 unit nodes; pods of 0.6 fit one per node.
	w := fedWorkload(t, uniform(4, 1), uniform(8, 0.6))
	cfg := Config{
		Partitions: 2,
		Engine:     detDurableConfig(32, w.Horizon),
		DataDir:    dir,
		Link:       w.LinkPod,
	}
	co, err := Open(w.Nodes, alibabaFactory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	co.Start()
	for _, p := range w.Pods {
		if err := co.Submit(p); err != nil && err != ErrShed {
			t.Fatal(err)
		}
	}
	// Let the partitions settle so rejects have fired, but do NOT pump
	// the respill queue (no Drain): the queue dies with the process.
	for _, p := range co.Partitions() {
		p.Drain(30 * time.Second)
	}
	for _, p := range co.local {
		p.Engine().Crash()
	}

	re, err := Open(w.Nodes, alibabaFactory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Stop()
	mid := re.Snapshot()
	checkConservation(t, mid)
	re.Start()
	if !re.Drain(30 * time.Second) {
		t.Fatalf("recovered federation did not settle: %+v", re.Snapshot())
	}
	fin := re.Snapshot()
	checkConservation(t, fin)
	if fin.Placed != 4 {
		t.Fatalf("placed %d of 4 after recovery: %+v", fin.Placed, fin.States)
	}
	if fin.States["shed"] != 4 {
		t.Fatalf("shed %d of 4 after recovery: %+v", fin.States["shed"], fin.States)
	}
}
