// Package federation scales the scheduling engine out horizontally:
// N partition engines, each owning a disjoint shard of the cluster's
// nodes, run under a thin coordinator that routes every incoming pod to
// the partition most likely to fit it. Routing reads only cheap
// per-partition digests (headroom-bucket histograms plus top-K free
// vectors, engine.Digest) refreshed on a submission cadence — the
// decision path takes no partition lock. A pod the routed partition
// cannot place comes back through the engine's fail-fast hook and is
// re-dispatched to the next-best digest with a bounded hop count before
// the coordinator sheds it; a rebalancer migrates empty nodes from
// under- to over-utilized partitions when the skew crosses a threshold.
//
// The per-decision win on one core is scan-cost reduction, not
// parallelism: a partition engine's candidate indexes only ever admit
// its owned subset (Config.InactiveNodes pins the rest Down from
// genesis), so each decision visits ~N/P nodes instead of N.
package federation

import (
	"errors"
	"fmt"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/engine"
	"unisched/internal/obs"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// ErrShed reports that the coordinator gave up on a pod: every eligible
// partition rejected it (or was full) within the hop budget.
var ErrShed = errors.New("federation: pod shed after spillover budget")

// BlockAssign is the default shard map: contiguous node-ID blocks of
// ceil(nodes/partitions). Contiguity matters for throughput, not just
// tidiness — a partition's candidate scan then walks node states that
// are adjacent in memory, keeping the cache behavior of the scan
// identical to an unpartitioned engine's sequential sweep. (An
// interleaved id%P map makes every visit a stride-P miss: measured on
// the 100k-node replay it inflates per-visit cost by ~60% at 8
// partitions.)
func BlockAssign(nodeID, nodes, partitions int) int {
	block := (nodes + partitions - 1) / partitions
	return nodeID / block
}

// Config tunes the federation.
type Config struct {
	// Partitions is the number of partition engines (1..64).
	Partitions int
	// Assign maps a node ID to its genesis partition; nil defaults to
	// BlockAssign (contiguous shards). It must be pure: recovery
	// re-derives the baseline from it.
	Assign func(nodeID, nodes, partitions int) int
	// MaxHops bounds spillover re-dispatches per pod (default
	// Partitions-1: a pod may try every partition once).
	MaxHops int
	// RefreshEvery re-reads every partition digest after this many
	// routed submissions (default 512). Drain rounds always refresh.
	RefreshEvery int
	// Async runs a background dispatcher goroutine that re-dispatches
	// rejected pods as they arrive (live service mode). The default,
	// false, re-dispatches in deterministic rounds inside Drain: all
	// partitions settle, the round's rejects are sorted by pod ID, then
	// re-routed — reproducible spillover for tests and benchmarks.
	Async bool
	// RebalanceSkew triggers node migration when the max-min utilization
	// spread across partitions exceeds it (0 disables rebalancing).
	RebalanceSkew float64
	// RebalanceBatch bounds nodes migrated per rebalance step (default 64).
	RebalanceBatch int

	// Engine is the per-partition engine template. InactiveNodes,
	// OnUnschedulable, BlockOnFull, and DataDir are owned by the
	// federation and overwritten; Seed is de-correlated per partition.
	Engine engine.Config
	// Physics configures each partition's cluster; nil uses defaults.
	Physics *cluster.Physics

	// DataDir, when set, makes every partition durable under
	// DataDir/p<i> (see Open). Ignored by New.
	DataDir string
	// Link resolves a recovered pod's app reference (Workload.LinkPod).
	// Required by Open, unused by New.
	Link func(*trace.Pod) error
}

func (c Config) withDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.Assign == nil {
		c.Assign = BlockAssign
	}
	if c.MaxHops <= 0 {
		c.MaxHops = c.Partitions - 1
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 512
	}
	if c.RebalanceBatch <= 0 {
		c.RebalanceBatch = 64
	}
	return c
}

// fedRecord states.
const (
	frActive  int8 = iota // authoritative record lives in partition rec.last
	frRespill             // authority is the coordinator's respill queue
	frShed                // terminal: coordinator gave up
)

// fedRecord is the coordinator's routing state for one pod.
type fedRecord struct {
	pod    *trace.Pod
	tried  uint64 // bitmask of partitions this pod was submitted to
	hops   int    // re-dispatches consumed
	last   int    // partition holding the authoritative record (frActive)
	state  int8
	reason string
}

// Coordinator is the federation front door: it owns the partition
// backends, the routing digests, and the spillover queue.
type Coordinator struct {
	cfg   Config
	parts []Backend
	// local[i] is non-nil when partition i runs in-process (rebalancing
	// and state hashing need engine access).
	local []*Partition

	mu   sync.Mutex
	cond *sync.Cond
	recs map[int]*fedRecord
	// digests are the cached routing summaries; submitsSince[i] counts
	// submissions routed to partition i since its digest was read — the
	// pending-load penalty the digest cannot see yet.
	digests      []engine.Digest
	submitsSince []int
	sinceRefresh int
	respill      []*fedRecord

	// Conservation counters (all under mu). Every pod has exactly one
	// authoritative record: a partition record (frActive — including a
	// terminal shed or reject the coordinator accepted as final) or the
	// coordinator's respill queue (frRespill). Merged states exclude the
	// superseded partition records:
	//
	//   queued   = sum(partition queued)   + respillQueued
	//   shed     = sum(partition shed)     - exclShed + reshedRejected + shedOrphan
	//   rejected = sum(partition rejected) - exclRejected - reshedRejected  (== 0)
	submitted      int64
	spills         int64 // re-dispatches performed (spillover hops taken)
	fedShed        int64 // pods the coordinator gave up on
	respillQueued  int64 // pods whose authority is the coordinator
	exclRejected   int64 // partition reject records superseded by a re-dispatch
	exclShed       int64 // partition queue-full sheds superseded by a re-dispatch
	reshedRejected int64 // terminal rejects counted as federation sheds
	shedOrphan     int64 // give-ups with no surviving partition record
	rebalanced     int64 // nodes migrated between partitions

	// Remote submit failures by HTTP status class (RemoteError; local
	// partitions never produce these). 429/503/409 are the statuses a
	// partition daemon emits under backpressure, load-shedding middleware,
	// and dedup; everything else lands in remoteOther.
	remote429   int64
	remote503   int64
	remote409   int64
	remoteOther int64

	// lc records the coordinator's own lifecycle events (route spans and
	// spillover hops) for stitched traces; nil when the engine config has
	// lifecycle tracing off.
	lc *obs.Lifecycle

	start   time.Time
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// New builds an in-process federation over one node list: each partition
// gets its own cluster and engine, with every node outside its shard
// pinned Down from genesis. Call Start, Submit pods, then Drain/Stop.
func New(nodes []*trace.Node, factory engine.SchedulerFactory, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Partitions > 64 {
		return nil, fmt.Errorf("federation: %d partitions (max 64)", cfg.Partitions)
	}
	co := newCoordinator(cfg)
	for pi := 0; pi < cfg.Partitions; pi++ {
		part, err := co.buildPartition(nodes, factory, pi, "")
		if err != nil {
			return nil, err
		}
		co.parts = append(co.parts, part)
		co.local = append(co.local, part)
	}
	co.digests = make([]engine.Digest, len(co.parts))
	co.submitsSince = make([]int, len(co.parts))
	return co, nil
}

func newCoordinator(cfg Config) *Coordinator {
	co := &Coordinator{
		cfg:    cfg,
		recs:   make(map[int]*fedRecord),
		start:  time.Now(),
		stopCh: make(chan struct{}),
	}
	co.cond = sync.NewCond(&co.mu)
	if cfg.Engine.LifecycleBuffer > 0 || cfg.Engine.LifecycleEvery > 0 {
		// The coordinator shares the partitions' lifecycle config: same
		// ID-modulus sampling, so both sides of the federation record the
		// same pods and the traces stitch.
		co.lc = obs.NewLifecycle(cfg.Engine.LifecycleBuffer, cfg.Engine.LifecycleEvery, "coordinator")
	}
	return co
}

// Lifecycle returns the coordinator's lifecycle recorder (nil when
// lifecycle tracing is off; a nil *obs.Lifecycle is safe to call).
func (co *Coordinator) Lifecycle() *obs.Lifecycle { return co.lc }

// buildPartition constructs one in-process partition engine. dataDir
// non-empty makes it durable (Open path).
func (co *Coordinator) buildPartition(nodes []*trace.Node, factory engine.SchedulerFactory, pi int, dataDir string) (*Partition, error) {
	mask := make([]bool, len(nodes))
	for id := range nodes {
		if co.cfg.Assign(id, len(nodes), co.cfg.Partitions) != pi {
			mask[id] = true
		}
	}
	ecfg := co.cfg.Engine
	ecfg.InactiveNodes = mask
	// Contiguous store shards align with BlockAssign ownership: the
	// partition's commits republish (and its worker re-adopts) only the
	// store shards holding owned nodes, so reconcile cost scales with the
	// shard, not the fleet. Harmless (perf-neutral at worst) under a
	// custom interleaved Assign.
	ecfg.BlockShards = true
	ecfg.BlockOnFull = false
	ecfg.DataDir = dataDir
	ecfg.Seed = co.cfg.Engine.Seed + int64(pi)*7919
	idx := pi
	ecfg.OnUnschedulable = func(p *trace.Pod, reason sched.Reason) {
		co.onReject(idx, p.ID, reason.String())
	}
	phys := cluster.DefaultPhysics()
	if co.cfg.Physics != nil {
		phys = *co.cfg.Physics
	}
	c := cluster.New(nodes, phys)
	if dataDir == "" {
		return &Partition{Index: pi, eng: engine.New(c, factory, ecfg)}, nil
	}
	e, rs, err := engine.OpenDurable(c, factory, ecfg, co.cfg.Link)
	if err != nil {
		return nil, fmt.Errorf("federation: partition %d: %w", pi, err)
	}
	return &Partition{Index: pi, eng: e, recovery: rs}, nil
}

// Start starts every partition, takes the initial digest reading, and —
// in Async mode — launches the spillover dispatcher.
func (co *Coordinator) Start() {
	for _, p := range co.parts {
		p.Start()
	}
	co.mu.Lock()
	co.refreshLocked()
	co.mu.Unlock()
	if co.cfg.Async {
		co.wg.Add(1)
		go co.dispatcher()
	}
	for pi, p := range co.parts {
		if src, ok := p.(RejectSource); ok {
			co.wg.Add(1)
			go co.pollRejects(pi, src)
		}
	}
}

// Stop stops the dispatcher and every partition. Pods still in the
// respill queue stay there (they are counted as queued).
func (co *Coordinator) Stop() {
	co.mu.Lock()
	if co.stopped {
		co.mu.Unlock()
		return
	}
	co.stopped = true
	co.cond.Broadcast()
	co.mu.Unlock()
	close(co.stopCh)
	co.wg.Wait()
	for _, p := range co.parts {
		p.Stop()
	}
}

// Submit routes one linked pod to the best-fit partition. It returns
// nil when some partition accepted the pod (it may still come back and
// spill over later), engine.ErrQueueFull when every eligible partition's
// queue was full (the pod is accounted as shed), and engine.ErrDuplicate
// for a pod ID the federation has already seen.
func (co *Coordinator) Submit(p *trace.Pod) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.recs[p.ID] != nil {
		return engine.ErrDuplicate
	}
	rec := &fedRecord{pod: p, last: -1}
	co.recs[p.ID] = rec
	co.submitted++
	return co.dispatchLocked(rec)
}

// untriedLocked counts partitions the pod has not been submitted to.
func (co *Coordinator) untriedLocked(rec *fedRecord) int {
	return len(co.parts) - bits.OnesCount64(rec.tried)
}

// routeLocked picks the untried partition with the best score: the
// digest's fit estimate minus the pressure already heading there (queue
// depth, backoff backlog, and submissions routed since the digest was
// read). Ties break toward the lower index, so routing is deterministic
// given the digests and the submission order.
func (co *Coordinator) routeLocked(rec *fedRecord) int {
	best := -1
	var bestScore int64
	for pi := range co.parts {
		if rec.tried&(1<<uint(pi)) != 0 {
			continue
		}
		d := &co.digests[pi]
		score := int64(d.EstimateFit(rec.pod.Request)) -
			int64(d.QueueDepth+d.Backlogged+co.submitsSince[pi])
		if best < 0 || score > bestScore {
			best, bestScore = pi, score
		}
	}
	return best
}

// maybeRefreshLocked re-reads every digest on the submission cadence.
func (co *Coordinator) maybeRefreshLocked() {
	if co.sinceRefresh >= co.cfg.RefreshEvery {
		co.refreshLocked()
	}
}

func (co *Coordinator) refreshLocked() {
	for pi, p := range co.parts {
		if d, err := p.Digest(); err == nil {
			co.digests[pi] = d
			co.submitsSince[pi] = 0
		}
	}
	co.sinceRefresh = 0
}

// dispatchLocked submits rec to successive partitions until one accepts
// it or the budget runs out. Called with mu held; mu is released around
// each backend Submit.
func (co *Coordinator) dispatchLocked(rec *fedRecord) error {
	for {
		co.maybeRefreshLocked()
		pi := co.routeLocked(rec)
		if pi < 0 {
			// No untried partition left (only reachable on a re-dispatch
			// race): every partition record was already superseded, so the
			// give-up needs its own bucket to keep conservation.
			rec.state = frShed
			co.fedShed++
			co.shedOrphan++
			return ErrShed
		}
		// State flips to frActive before mu is released: a worker can pick
		// the pod up and reject it before Submit even returns, and that
		// reject must see the authoritative state, not overwrite it.
		rec.tried |= 1 << uint(pi)
		rec.last = pi
		rec.state = frActive
		co.submitsSince[pi]++
		co.sinceRefresh++
		part := co.parts[pi]
		co.mu.Unlock()
		var rt0 time.Time
		if co.lc != nil {
			rt0 = time.Now()
		}
		err := part.Submit(rec.pod)
		var rt1 time.Time
		if co.lc != nil {
			rt1 = time.Now()
		}
		co.mu.Lock()
		if err != nil {
			var re *RemoteError
			if errors.As(err, &re) {
				switch re.Status {
				case http.StatusTooManyRequests:
					co.remote429++
				case http.StatusServiceUnavailable:
					co.remote503++
				case http.StatusConflict:
					co.remote409++
				default:
					co.remoteOther++
				}
			}
		}
		switch {
		case err == nil:
			// rec.state may already have moved to frRespill/frShed via a
			// racing reject; leave it alone.
			if co.lc != nil {
				co.lc.Routed(int64(rec.pod.ID), pi, rt0, rt1)
			}
			return nil
		case errors.Is(err, engine.ErrQueueFull):
			// The partition recorded a shed. Spill to the next partition if
			// the budget allows; otherwise that shed record is the pod's
			// terminal state.
			if rec.hops >= co.cfg.MaxHops || co.untriedLocked(rec) == 0 {
				rec.state = frShed
				co.fedShed++
				if co.lc != nil {
					co.lc.Shed(int64(rec.pod.ID), "federation: spill budget exhausted", rt1)
				}
				return engine.ErrQueueFull
			}
			rec.hops++
			co.spills++
			co.exclShed++
			if co.lc != nil {
				co.lc.Spilled(int64(rec.pod.ID), pi, "queue full", rt1)
			}
		case errors.Is(err, engine.ErrDuplicate):
			// The partition already knows this pod (recovery resubmission).
			// A live record there is the authority; a reject spills on.
			st, ok, serr := part.Status(rec.pod.ID)
			if serr == nil && ok && st.Phase == engine.PodRejected.String() {
				if rec.hops >= co.cfg.MaxHops || co.untriedLocked(rec) == 0 {
					rec.state = frShed
					co.fedShed++
					co.reshedRejected++
					return ErrShed
				}
				rec.hops++
				co.spills++
				co.exclRejected++
				if co.lc != nil {
					co.lc.Spilled(int64(rec.pod.ID), pi, "rejected", rt1)
				}
				continue
			}
			rec.state = frActive
			return nil
		default:
			return err
		}
	}
}

// onReject is the partition fail-fast hook: the scheduler found no
// capacity for the pod, its record there is terminal-rejected, and the
// coordinator decides between re-dispatch and giving up. Runs on a
// partition worker goroutine with no engine lock held.
func (co *Coordinator) onReject(pi, podID int, reason string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	rec := co.recs[podID]
	if rec == nil || rec.state != frActive || rec.last != pi {
		// Stale notification (a re-dispatch already superseded it).
		return
	}
	rec.reason = reason
	if rec.hops >= co.cfg.MaxHops || co.untriedLocked(rec) == 0 {
		rec.state = frShed
		co.fedShed++
		co.reshedRejected++
		return
	}
	rec.state = frRespill
	co.exclRejected++
	co.respillQueued++
	co.respill = append(co.respill, rec)
	if co.lc != nil {
		co.lc.Spilled(int64(podID), pi, reason, time.Now())
	}
	co.cond.Signal()
}

// redispatchLocked consumes one respill entry: a hop, then the normal
// dispatch loop. Authority transfers back to a partition either way.
func (co *Coordinator) redispatchLocked(rec *fedRecord) {
	rec.hops++
	co.spills++
	co.dispatchLocked(rec)
	co.respillQueued--
}

// dispatcher is the Async-mode spillover loop: re-dispatch rejects as
// they arrive.
func (co *Coordinator) dispatcher() {
	defer co.wg.Done()
	co.mu.Lock()
	for {
		for len(co.respill) == 0 && !co.stopped {
			co.cond.Wait()
		}
		if len(co.respill) == 0 && co.stopped {
			co.mu.Unlock()
			return
		}
		rec := co.respill[0]
		co.respill = co.respill[1:]
		co.redispatchLocked(rec)
	}
}

// pollRejects drives spillover for remote partitions, which cannot call
// the in-process hook: poll the partition's reject cursor and feed the
// same path.
func (co *Coordinator) pollRejects(pi int, src RejectSource) {
	defer co.wg.Done()
	var after uint64
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-co.stopCh:
			return
		case <-tick.C:
		}
		rejects, next, err := src.PollRejects(after)
		if err != nil {
			continue
		}
		after = next
		for _, r := range rejects {
			co.onReject(pi, r.ID, r.Reason)
		}
	}
}

// Drain waits until every partition settles and the spillover queue is
// empty. In the default synchronous mode it is also the spillover pump:
// each round drains the partitions, sorts the round's rejects by pod ID,
// refreshes the digests, optionally rebalances, and re-dispatches — so
// spillover order is a pure function of the workload and the
// configuration, independent of worker timing.
func (co *Coordinator) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		for _, p := range co.parts {
			if !p.Drain(time.Until(deadline)) {
				return false
			}
		}
		co.mu.Lock()
		batch := co.respill
		co.respill = nil
		if len(batch) == 0 {
			settled := co.respillQueued == 0
			co.mu.Unlock()
			if settled {
				// Re-dispatches may have refilled a partition queue after
				// its drain; one confirming pass over the partitions.
				again := false
				for _, p := range co.parts {
					sn, err := p.Snapshot()
					if err == nil && sn.Pending > 0 {
						again = true
						break
					}
				}
				if !again {
					return true
				}
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(time.Millisecond)
			continue
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].pod.ID < batch[j].pod.ID })
		co.refreshLocked()
		co.mu.Unlock()
		co.Rebalance()
		co.mu.Lock()
		for _, rec := range batch {
			co.redispatchLocked(rec)
		}
		co.mu.Unlock()
	}
}

// PodStatus reports one pod's federation-wide status: the authoritative
// partition record, or a synthetic shed status after a give-up whose
// last record was a reject.
func (co *Coordinator) PodStatus(id int) (engine.PodStatus, bool) {
	co.mu.Lock()
	rec := co.recs[id]
	var last int
	var state int8
	var reason string
	if rec != nil {
		last, state, reason = rec.last, rec.state, rec.reason
	}
	co.mu.Unlock()
	if rec == nil {
		return engine.PodStatus{}, false
	}
	if state == frRespill {
		return engine.PodStatus{ID: id, SLO: rec.pod.SLO.String(), Phase: "queued", Node: -1, Reason: reason}, true
	}
	if last >= 0 {
		if st, ok, err := co.parts[last].Status(id); err == nil && ok {
			if state == frShed && st.Phase == engine.PodRejected.String() {
				st.Phase = engine.PodShed.String()
			}
			return st, true
		}
	}
	return engine.PodStatus{ID: id, SLO: rec.pod.SLO.String(), Phase: "shed", Node: -1, Reason: reason}, true
}

// Partitions returns the partition backends (read-only).
func (co *Coordinator) Partitions() []Backend { return co.parts }
