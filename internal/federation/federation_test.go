package federation

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/engine"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

func alibabaFactory(c *cluster.Cluster, worker int, seed int64) sched.Scheduler {
	return sched.NewAlibabaLike(c, seed)
}

// fedWorkload builds one app, nodes with the given capacities, and pods
// with the given requests.
func fedWorkload(t testing.TB, caps []float64, reqs []float64) *trace.Workload {
	t.Helper()
	app := &trace.App{
		ID: "app", SLO: trace.SLOLS,
		Request: trace.Resources{CPU: 1, Mem: 1},
		Limit:   trace.Resources{CPU: 1, Mem: 1},
		MemUtil: 0.5, CPUBaseUtil: 0.3, Affinity: -1,
	}
	w := &trace.Workload{Apps: []*trace.App{app}, Horizon: 3600, Seed: 1}
	for i, c := range caps {
		w.Nodes = append(w.Nodes, &trace.Node{ID: i, Capacity: trace.Resources{CPU: c, Mem: c}})
	}
	for i, r := range reqs {
		p := &trace.Pod{
			ID: i, AppID: "app", SLO: trace.SLOLS,
			Request:  trace.Resources{CPU: r, Mem: r},
			Limit:    trace.Resources{CPU: r, Mem: r},
			CPUScale: 1, MemScale: 1,
		}
		if err := w.LinkPod(p); err != nil {
			t.Fatal(err)
		}
		w.Pods = append(w.Pods, p)
	}
	return w
}

func uniform(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// detConfig is the deterministic partition template: one worker, batch
// size one, ample queue — outcomes depend only on submission order.
func detConfig(queueCap int) engine.Config {
	return engine.Config{Workers: 1, MaxBatch: 1, Shards: 4, QueueCap: queueCap, Seed: 42}
}

// runFed submits the whole workload through a coordinator and drains it.
func runFed(t *testing.T, w *trace.Workload, cfg Config) (*Coordinator, Snapshot) {
	t.Helper()
	co, err := New(w.Nodes, alibabaFactory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	co.Start()
	for _, p := range w.Pods {
		if err := co.Submit(p); err != nil && err != engine.ErrQueueFull && err != ErrShed {
			t.Fatalf("submit pod %d: %v", p.ID, err)
		}
	}
	if !co.Drain(60 * time.Second) {
		co.Stop()
		t.Fatalf("federation did not settle: %+v", co.Snapshot())
	}
	sn := co.Snapshot()
	return co, sn
}

// outcomeHash digests every pod's terminal phase (not its node: routing
// legitimately changes node assignment across partition counts, but
// which pods the federation serves must not change).
func outcomeHash(co *Coordinator, podIDs []int) uint64 {
	h := fnv.New64a()
	for _, id := range podIDs {
		st, ok := co.PodStatus(id)
		if !ok {
			fmt.Fprintf(h, "%d:missing\n", id)
			continue
		}
		fmt.Fprintf(h, "%d:%s\n", id, st.Phase)
	}
	return h.Sum64()
}

// placementMap records pod->node for every placed pod.
func placementMap(co *Coordinator, podIDs []int) map[int]int {
	out := make(map[int]int)
	for _, id := range podIDs {
		if st, ok := co.PodStatus(id); ok && st.Phase == "placed" {
			out[id] = st.Node
		}
	}
	return out
}

func checkConservation(t *testing.T, sn Snapshot) {
	t.Helper()
	if lost := sn.Lost(); lost != 0 {
		t.Fatalf("lost %d submissions: %+v", lost, sn.States)
	}
	if r := sn.States["rejected"]; r != 0 {
		t.Fatalf("merge residual: %d rejected records unaccounted: %+v", r, sn.States)
	}
}

func TestFederationPlacesAll(t *testing.T) {
	w := fedWorkload(t, uniform(64, 1), uniform(200, 0.1))
	for _, parts := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			co, sn := runFed(t, w, Config{Partitions: parts, Engine: detConfig(256)})
			defer co.Stop()
			checkConservation(t, sn)
			if sn.Placed != 200 {
				t.Fatalf("placed %d of 200: %+v", sn.Placed, sn.States)
			}
			if sn.FedShed != 0 {
				t.Fatalf("unexpected federation sheds: %d", sn.FedShed)
			}
		})
	}
}

// TestFederationSpilloverDeterministic saturates every partition: one
// node per partition, pods twice as many as fit. The losers must spill
// through the hop budget and shed — and the whole outcome (who placed
// where, who shed, how many hops) must be identical run over run.
func TestFederationSpilloverDeterministic(t *testing.T) {
	w := fedWorkload(t, uniform(4, 1), uniform(10, 0.6))
	podIDs := make([]int, len(w.Pods))
	for i := range w.Pods {
		podIDs[i] = i
	}
	type result struct {
		placements map[int]int
		hash       uint64
		spills     int64
		shed       int64
	}
	var runs []result
	for i := 0; i < 2; i++ {
		co, sn := runFed(t, w, Config{Partitions: 4, Engine: detConfig(16)})
		checkConservation(t, sn)
		if sn.Placed != 4 {
			t.Fatalf("run %d: placed %d of 4 (one 0.6 pod per unit node): %+v", i, sn.Placed, sn.States)
		}
		if sn.Shed != 6 {
			t.Fatalf("run %d: shed %d of 6: %+v", i, sn.Shed, sn.States)
		}
		if sn.Spills == 0 {
			t.Fatalf("run %d: saturation produced no spillover hops", i)
		}
		runs = append(runs, result{placementMap(co, podIDs), outcomeHash(co, podIDs), sn.Spills, sn.FedShed})
		co.Stop()
	}
	if runs[0].hash != runs[1].hash {
		t.Fatalf("outcome hash differs across identical runs: %x vs %x", runs[0].hash, runs[1].hash)
	}
	if runs[0].spills != runs[1].spills {
		t.Fatalf("spill hop count differs: %d vs %d", runs[0].spills, runs[1].spills)
	}
	for id, n := range runs[0].placements {
		if runs[1].placements[id] != n {
			t.Fatalf("pod %d placed on node %d then %d", id, n, runs[1].placements[id])
		}
	}
}

// TestFederationAsyncSpillover runs the saturated shape in live-service
// mode: the background dispatcher re-routes rejects as they arrive
// instead of at drain barriers. Outcome counts (not identities — async
// ordering is timing-dependent) and conservation must still hold.
func TestFederationAsyncSpillover(t *testing.T) {
	w := fedWorkload(t, uniform(4, 1), uniform(10, 0.6))
	co, sn := runFed(t, w, Config{Partitions: 4, Async: true, Engine: detConfig(16)})
	defer co.Stop()
	checkConservation(t, sn)
	if sn.Placed != 4 {
		t.Fatalf("placed %d of 4: %+v", sn.Placed, sn.States)
	}
	if sn.Shed != 6 {
		t.Fatalf("shed %d of 6: %+v", sn.Shed, sn.States)
	}
	if sn.Spills == 0 {
		t.Fatal("saturation produced no spillover hops")
	}
}

// TestFederationOutcome1v4 pins the scale-out equivalence: with
// sufficient capacity, partitioning must not change which pods are
// served. The workload mixes placeable pods with pods too large for any
// node (they shed under every partition count), so the compared hash is
// not trivially all-placed.
func TestFederationOutcome1v4(t *testing.T) {
	reqs := uniform(300, 0.2)
	reqs = append(reqs, uniform(5, 2.0)...) // oversize: fits no node
	w := fedWorkload(t, uniform(64, 1), reqs)
	podIDs := make([]int, len(w.Pods))
	for i := range w.Pods {
		podIDs[i] = i
	}
	hashes := make(map[int]uint64)
	for _, parts := range []int{1, 4} {
		co, sn := runFed(t, w, Config{Partitions: parts, Engine: detConfig(512)})
		checkConservation(t, sn)
		if sn.Placed != 300 {
			t.Fatalf("parts=%d: placed %d of 300: %+v", parts, sn.Placed, sn.States)
		}
		if sn.Shed != 5 {
			t.Fatalf("parts=%d: shed %d of 5 oversize: %+v", parts, sn.Shed, sn.States)
		}
		hashes[parts] = outcomeHash(co, podIDs)
		co.Stop()
	}
	if hashes[1] != hashes[4] {
		t.Fatalf("terminal outcomes differ across partition counts: 1p=%x 4p=%x", hashes[1], hashes[4])
	}
}

// TestFederationRebalance manufactures skew — only even nodes (owned by
// partition 0) can host the pods — and asserts the rebalancer migrates
// partition 1's idle nodes over, conserving total ownership.
func TestFederationRebalance(t *testing.T) {
	caps := make([]float64, 32)
	for i := range caps {
		if i%2 == 0 {
			caps[i] = 4 // partition 0: big hosts
		} else {
			caps[i] = 0.3 // partition 1: too small for the pods
		}
	}
	w := fedWorkload(t, caps, uniform(40, 0.5))
	cfg := Config{
		Partitions: 2,
		// Interleaved assignment concentrates the skew: even (big) nodes
		// in partition 0, odd (small) ones in partition 1.
		Assign:         func(id, _, parts int) int { return id % parts },
		Engine:         detConfig(64),
		RebalanceSkew:  0.2,
		RebalanceBatch: 8,
	}
	co, sn := runFed(t, w, cfg)
	defer co.Stop()
	checkConservation(t, sn)
	if sn.Placed != 40 {
		t.Fatalf("placed %d of 40: %+v", sn.Placed, sn.States)
	}
	// Spillover rounds during the drain may already have rebalanced
	// (pods routed to the small-node partition come back rejected); the
	// explicit call tops it up. The cumulative counter is the reference.
	co.Rebalance()
	migrated := co.Snapshot().Rebalanced
	if migrated == 0 {
		t.Fatalf("no nodes migrated at skew %+v", sn)
	}
	var active int
	var d0 engine.Digest
	for pi, p := range co.Partitions() {
		d, err := p.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if pi == 0 {
			d0 = d
		}
		active += d.ActiveNodes
	}
	if active != 32 {
		t.Fatalf("ownership not conserved: %d active nodes across partitions, want 32", active)
	}
	if d0.ActiveNodes != 16+int(migrated) {
		t.Fatalf("recipient owns %d nodes after migrating %d in, want %d", d0.ActiveNodes, migrated, 16+int(migrated))
	}
	// The federation still schedules after migration.
	extra := &trace.Pod{
		ID: len(w.Pods), AppID: "app", SLO: trace.SLOLS,
		Request:  trace.Resources{CPU: 0.5, Mem: 0.5},
		Limit:    trace.Resources{CPU: 0.5, Mem: 0.5},
		CPUScale: 1, MemScale: 1,
	}
	if err := w.LinkPod(extra); err != nil {
		t.Fatal(err)
	}
	if err := co.Submit(extra); err != nil {
		t.Fatal(err)
	}
	if !co.Drain(30 * time.Second) {
		t.Fatalf("did not settle after migration: %+v", co.Snapshot())
	}
	sn = co.Snapshot()
	checkConservation(t, sn)
	if sn.Placed != 41 {
		t.Fatalf("post-migration pod not placed: %+v", sn.States)
	}
}

// TestFederationDuplicate pins the duplicate contract at the
// coordinator: the same pod ID is refused exactly like a single engine
// refuses it.
func TestFederationDuplicate(t *testing.T) {
	w := fedWorkload(t, uniform(8, 1), uniform(4, 0.1))
	co, sn := runFed(t, w, Config{Partitions: 2, Engine: detConfig(16)})
	defer co.Stop()
	checkConservation(t, sn)
	if err := co.Submit(w.Pods[0]); err != engine.ErrDuplicate {
		t.Fatalf("resubmit: got %v, want ErrDuplicate", err)
	}
	sn2 := co.Snapshot()
	if sn2.Submitted != sn.Submitted {
		t.Fatalf("duplicate changed submitted: %d -> %d", sn.Submitted, sn2.Submitted)
	}
}

// TestFederationPodStatus spot-checks the federation-wide status view.
func TestFederationPodStatus(t *testing.T) {
	reqs := append(uniform(6, 0.4), 2.0) // last pod fits nowhere
	w := fedWorkload(t, uniform(4, 1), reqs)
	co, sn := runFed(t, w, Config{Partitions: 2, Engine: detConfig(16)})
	defer co.Stop()
	checkConservation(t, sn)
	var phases []string
	for i := range w.Pods {
		st, ok := co.PodStatus(i)
		if !ok {
			t.Fatalf("pod %d unknown", i)
		}
		phases = append(phases, st.Phase)
	}
	sort.Strings(phases)
	if phases[len(phases)-1] != "shed" {
		t.Fatalf("oversize pod not reported shed: %v", phases)
	}
	if _, ok := co.PodStatus(9999); ok {
		t.Fatal("unknown pod reported present")
	}
}
