package federation

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"unisched/internal/engine"
)

// benchEnv reads an integer override from the environment, for scaling
// the federation benchmark up to the full trace shape
// (FED_BENCH_NODES=100000 FED_BENCH_PODS=1000000) without bloating the
// default CI run.
func benchEnv(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// BenchmarkFederationThroughput is the federation headline: replay one
// workload against a 100k-node cluster federated into 1/2/4/8
// partitions and measure end-to-end placements per wall second. On one
// core the speedup is pure scan-cost reduction — each partition's
// candidate indexes only ever contain its ~N/P owned nodes, so
// nodes_visited/decision drops with the partition count while the
// coordinator's digest routing stays O(partitions) per pod. speedup_x
// is relative to the parts=1 run of the same process; bench-check gates
// the parts=4 value.
func BenchmarkFederationThroughput(b *testing.B) {
	nodes := benchEnv("FED_BENCH_NODES", 100_000)
	pods := benchEnv("FED_BENCH_PODS", 32_768)
	w := fedWorkload(b, uniform(nodes, 1), uniform(pods, 0.25))
	var base float64
	for _, parts := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			var placed, visited, decisions, spills int64
			var busy time.Duration
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				co, err := New(w.Nodes, alibabaFactory, Config{
					Partitions: parts,
					// Digest refreshes are O(nodes) per partition: on the
					// uniform replay the pending-load penalty does the
					// balancing, so a sparse cadence keeps the router off
					// the critical path.
					RefreshEvery: 8192,
					Engine: engine.Config{
						Workers:  1,
						Shards:   16,
						QueueCap: pods + 1,
						Seed:     int64(i + 1),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				start := time.Now()
				co.Start()
				for _, p := range w.Pods {
					if err := co.Submit(p); err != nil {
						b.Fatalf("submit pod %d: %v", p.ID, err)
					}
				}
				if !co.Drain(10 * time.Minute) {
					b.Fatalf("federation did not settle: %+v", co.Snapshot())
				}
				busy += time.Since(start)
				b.StopTimer()
				sn := co.Snapshot()
				if sn.Lost() != 0 {
					b.Fatalf("lost %d submissions", sn.Lost())
				}
				if sn.Placed != int64(pods) {
					b.Fatalf("placed %d of %d: %+v", sn.Placed, pods, sn.States)
				}
				placed += sn.Placed
				spills += sn.Spills
				for _, ps := range sn.Partitions {
					if ps.Pipeline != nil {
						visited += ps.Pipeline.VisitedNodes
						decisions += ps.Pipeline.Decisions
					}
				}
				co.Stop()
			}
			if busy > 0 {
				pps := float64(placed) / busy.Seconds()
				b.ReportMetric(pps, "placements/s")
				if parts == 1 {
					base = pps
				} else if base > 0 {
					b.ReportMetric(pps/base, "speedup_x")
				}
			}
			if decisions > 0 {
				b.ReportMetric(float64(visited)/float64(decisions), "nodes_visited/decision")
			}
			b.ReportMetric(float64(spills), "spillover_hops")
		})
	}
}
