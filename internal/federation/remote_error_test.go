package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unisched/internal/engine"
	"unisched/internal/trace"
)

// newStatusServer fakes a partition daemon whose POST /v1/pods always
// answers the given status. The read-only endpoints answer just enough
// for the coordinator's digest refresh and snapshot merge.
func newStatusServer(t *testing.T, status int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/pods", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(status)
	})
	mux.HandleFunc("GET /v1/federation/digest", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(engine.Digest{})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(engine.Snapshot{})
	})
	mux.HandleFunc("GET /v1/pods/{id}", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "unknown pod", http.StatusNotFound)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRemoteErrorCounters drives one submission into partitions that
// answer each failure status and checks the coordinator counts them in
// distinct buckets, surfaces them in the merged snapshot, and maps each
// onto the right dispatch outcome.
func TestRemoteErrorCounters(t *testing.T) {
	cases := []struct {
		name    string
		status  int
		wantErr error // nil means "some non-nil error" when errAny is set
		errAny  bool
		count   func(sn Snapshot) int64
	}{
		{"queue full 429", http.StatusTooManyRequests, engine.ErrQueueFull, false,
			func(sn Snapshot) int64 { return sn.Remote429 }},
		{"unavailable 503", http.StatusServiceUnavailable, nil, true,
			func(sn Snapshot) int64 { return sn.Remote503 }},
		{"duplicate 409", http.StatusConflict, nil, false,
			func(sn Snapshot) int64 { return sn.Remote409 }},
		{"other 500", http.StatusInternalServerError, nil, true,
			func(sn Snapshot) int64 { return sn.RemoteOther }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := newStatusServer(t, tc.status)
			co, err := NewRemote([]string{srv.URL}, Config{})
			if err != nil {
				t.Fatal(err)
			}
			p := &trace.Pod{ID: 1, Submit: 0, Lifetime: 60}
			err = co.Submit(p)
			switch {
			case tc.errAny:
				if err == nil {
					t.Fatalf("Submit returned nil, want an error for HTTP %d", tc.status)
				}
			case tc.wantErr != nil:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Submit returned %v, want %v", err, tc.wantErr)
				}
			default:
				if err != nil {
					t.Fatalf("Submit returned %v, want nil", err)
				}
			}
			sn := co.Snapshot()
			if got := tc.count(sn); got != 1 {
				t.Errorf("HTTP %d counted %d, want 1 (snapshot %+v)", tc.status, got, sn)
			}
			var others int64
			for _, f := range cases {
				if f.status != tc.status {
					others += f.count(sn)
				}
			}
			if others != 0 {
				t.Errorf("HTTP %d leaked into other buckets: %+v", tc.status, sn)
			}
		})
	}
}

// TestRemoteErrorExposition checks the status-labelled counter family
// reaches the merged Prometheus page.
func TestRemoteErrorExposition(t *testing.T) {
	srv := newStatusServer(t, http.StatusServiceUnavailable)
	co, err := NewRemote([]string{srv.URL}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Submit(&trace.Pod{ID: 7, Lifetime: 60}); err == nil {
		t.Fatal("Submit to a 503 partition returned nil")
	}
	var buf bytes.Buffer
	if err := co.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `unisched_federation_remote_errors_total{status="503"} 1`) {
		t.Errorf("exposition missing 503 sample:\n%s", out)
	}
	if !strings.Contains(out, `unisched_federation_remote_errors_total{status="429"} 0`) {
		t.Errorf("exposition missing zero-valued 429 sample:\n%s", out)
	}
}
