package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"unisched/internal/engine"
	"unisched/internal/obs"
	"unisched/internal/trace"
)

// RemoteError reports a remote partition's HTTP response status for a
// failed submit. It unwraps to the matching engine sentinel (429 →
// ErrQueueFull, 409 → ErrDuplicate) so the coordinator's errors.Is
// dispatch is untouched, while errors.As(&RemoteError{}) lets the
// coordinator count remote failures by status class.
type RemoteError struct {
	Status int
	URL    string
	PodID  int
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("federation: %s: submit pod %d: HTTP %d", e.URL, e.PodID, e.Status)
}

// Unwrap maps the remote status back onto the engine sentinel the local
// dispatch path expects.
func (e *RemoteError) Unwrap() error {
	switch e.Status {
	case http.StatusTooManyRequests:
		return engine.ErrQueueFull
	case http.StatusConflict:
		return engine.ErrDuplicate
	}
	return nil
}

// RejectsPage is the wire format of a partition daemon's reject cursor
// (GET /v1/federation/rejects?after=SEQ): the rejects recorded after the
// cursor, plus the new cursor position.
type RejectsPage struct {
	Rejects []Reject `json:"rejects"`
	Next    uint64   `json:"next"`
}

// HTTPBackend drives one partition that runs as its own unischedd
// process (started with -partition-index/-partition-count), speaking the
// daemon's JSON API. It implements Backend and RejectSource but not
// Migrator: shard boundaries of out-of-process partitions are fixed, so
// a remote federation routes and spills but does not rebalance.
type HTTPBackend struct {
	// BaseURL is the partition daemon's address, e.g. "http://127.0.0.1:8081".
	BaseURL string
	// Client is the HTTP client; nil uses a 10-second-timeout default.
	Client *http.Client
}

// NewRemote builds a coordinator over already-running partition daemons,
// one URL per partition. The daemons own their engines (and their
// journals, with -data-dir); the coordinator only routes, spills, and
// merges metrics. Spillover is driven by polling each daemon's reject
// cursor, so Async mode is forced on — a remote federation has no
// deterministic drain rounds.
func NewRemote(urls []string, cfg Config) (*Coordinator, error) {
	if len(urls) == 0 {
		return nil, errors.New("federation: no partition URLs")
	}
	if len(urls) > 64 {
		return nil, fmt.Errorf("federation: %d partitions (max 64)", len(urls))
	}
	cfg.Partitions = len(urls)
	cfg.Async = true
	cfg = cfg.withDefaults()
	co := newCoordinator(cfg)
	for _, u := range urls {
		co.parts = append(co.parts, &HTTPBackend{BaseURL: u})
	}
	co.digests = make([]engine.Digest, len(co.parts))
	co.submitsSince = make([]int, len(co.parts))
	return co, nil
}

func (b *HTTPBackend) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Start is a no-op: the partition process has its own lifecycle.
func (b *HTTPBackend) Start() {}

// Stop is a no-op: stopping the coordinator must not kill partitions.
func (b *HTTPBackend) Stop() {}

// Submit posts the pod to the partition with the coordinator's trace
// context in the Traceparent header (so a sampled pod's partition-side
// lifecycle events stitch into the coordinator's trace), translating the
// daemon's status codes into RemoteErrors that unwrap to the engine's
// sentinel errors (202 accepted, 429 queue full, 409 duplicate).
func (b *HTTPBackend) Submit(p *trace.Pod) error {
	body, err := json.Marshal(p)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, b.BaseURL+"/v1/pods", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceParentHeader, obs.DeriveTraceContext(int64(p.ID), "coordinator").String())
	resp, err := b.client().Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusAccepted {
		return nil
	}
	return &RemoteError{Status: resp.StatusCode, URL: b.BaseURL, PodID: p.ID}
}

// Digest fetches the partition's routing digest.
func (b *HTTPBackend) Digest() (engine.Digest, error) {
	var d engine.Digest
	err := b.getJSON("/v1/federation/digest", &d)
	return d, err
}

// Snapshot fetches the partition's metrics snapshot.
func (b *HTTPBackend) Snapshot() (engine.Snapshot, error) {
	var sn engine.Snapshot
	err := b.getJSON("/v1/metrics", &sn)
	return sn, err
}

// Status fetches one pod's status; a 404 means the partition never saw
// the pod.
func (b *HTTPBackend) Status(id int) (engine.PodStatus, bool, error) {
	var st engine.PodStatus
	resp, err := b.client().Get(fmt.Sprintf("%s/v1/pods/%d", b.BaseURL, id))
	if err != nil {
		return st, false, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return st, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return st, false, fmt.Errorf("federation: %s: pod %d status: HTTP %d", b.BaseURL, id, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false, err
	}
	return st, true, nil
}

// Drain polls the partition's snapshot until nothing is pending.
func (b *HTTPBackend) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		sn, err := b.Snapshot()
		if err == nil && sn.Pending == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// PollRejects reads the partition's reject cursor past `after`.
func (b *HTTPBackend) PollRejects(after uint64) ([]Reject, uint64, error) {
	var page RejectsPage
	if err := b.getJSON(fmt.Sprintf("/v1/federation/rejects?after=%d", after), &page); err != nil {
		return nil, after, err
	}
	return page.Rejects, page.Next, nil
}

func (b *HTTPBackend) getJSON(path string, into any) error {
	resp, err := b.client().Get(b.BaseURL + path)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("federation: %s: GET %s: HTTP %d", b.BaseURL, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// drainClose consumes the rest of a response body before closing so the
// keep-alive connection returns to the pool.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, body)
	body.Close()
}
