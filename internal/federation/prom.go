package federation

import (
	"fmt"
	"io"
	"net/http"
	"sort"

	"unisched/internal/obs"
)

// WritePrometheus renders the federation-wide merged counters plus
// per-partition series (labelled partition="<index>") in Prometheus text
// exposition format. It takes the same snapshots the JSON endpoint
// takes; partition hot paths are never touched — the per-partition
// routing statistics (visited nodes, decisions, spillover) ride on
// counters the engines and the coordinator already maintain.
func (co *Coordinator) WritePrometheus(w io.Writer) error {
	sn := co.Snapshot()
	x := obs.NewExposition(w)

	x.Gauge("unisched_federation_partitions", "Partition engines under this coordinator.", float64(sn.PartitionCount))
	x.Counter("unisched_federation_submitted_total", "Pods ever submitted to the coordinator.", float64(sn.Submitted))
	x.Counter("unisched_federation_placed_total", "Pods placed across all partitions.", float64(sn.Placed))
	x.Counter("unisched_federation_completed_total", "BE pods that finished their work, all partitions.", float64(sn.Completed))
	x.Counter("unisched_federation_expired_total", "Pods that reached their lifetime, all partitions.", float64(sn.Expired))
	x.Counter("unisched_federation_shed_total", "Pods shed federation-wide (merged accounting).", float64(sn.Shed))
	x.Counter("unisched_federation_spillover_hops_total", "Spillover re-dispatches performed by the coordinator.", float64(sn.Spills))
	x.Counter("unisched_federation_giveups_total", "Pods the coordinator gave up on after the hop budget.", float64(sn.FedShed))
	x.Counter("unisched_federation_rebalanced_nodes_total", "Nodes migrated between partitions by the rebalancer.", float64(sn.Rebalanced))
	x.Counter("unisched_federation_commit_conflicts_total", "Optimistic-commit conflicts, all partitions.", float64(sn.CommitConflicts))

	x.Family("unisched_federation_remote_errors_total", "Remote partition submit failures, by HTTP status class.", "counter")
	for _, rc := range []struct {
		status string
		v      int64
	}{{"429", sn.Remote429}, {"503", sn.Remote503}, {"409", sn.Remote409}, {"other", sn.RemoteOther}} {
		x.Sample("unisched_federation_remote_errors_total", []obs.Label{{Name: "status", Value: rc.status}}, float64(rc.v))
	}

	if co.lc != nil {
		bounds, cum, rsum, rtotal := co.lc.StageHistogram(obs.StageRoute).Export()
		x.Histogram("unisched_federation_route_seconds", "Coordinator routing latency: digest fit selection plus the backend submit round trip.", bounds, cum, rsum, rtotal)
	}

	x.Gauge("unisched_federation_respill_queued", "Pods waiting in the coordinator's re-dispatch queue.", float64(sn.RespillQueued))
	x.Gauge("unisched_federation_queue_depth", "Summed partition admission-queue depth.", float64(sn.QueueDepth))
	x.Gauge("unisched_federation_pending", "Accepted pods not yet placed or shed, federation-wide.", float64(sn.Pending))
	x.Gauge("unisched_federation_running", "Pods currently running, all partitions.", float64(sn.Running))
	x.Gauge("unisched_federation_decision_p99_seconds", "Worst partition's p99 decision latency.", sn.DecisionP99Ms/1e3)

	x.Family("unisched_federation_pods", "Merged pod-phase accounting, by state.", "gauge")
	states := make([]string, 0, len(sn.States))
	for st := range sn.States {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		x.Sample("unisched_federation_pods", []obs.Label{{Name: "state", Value: st}}, float64(sn.States[st]))
	}

	x.Family("unisched_partition_submitted_total", "Pods submitted to the partition (including spillover retries).", "counter")
	x.Family("unisched_partition_placed_total", "Pods placed by the partition.", "counter")
	x.Family("unisched_partition_shed_total", "Pods shed by the partition (pre-merge).", "counter")
	x.Family("unisched_partition_queue_depth", "Partition admission-queue depth.", "gauge")
	x.Family("unisched_partition_running", "Pods running on the partition's shard.", "gauge")
	x.Family("unisched_partition_visited_nodes_total", "Per-node filter or eval executions in the partition's pipeline.", "counter")
	x.Family("unisched_partition_decisions_total", "Placement-pipeline decisions in the partition.", "counter")
	for pi, ps := range sn.Partitions {
		lbl := []obs.Label{{Name: "partition", Value: fmt.Sprint(pi)}}
		x.Sample("unisched_partition_submitted_total", lbl, float64(ps.Submitted))
		x.Sample("unisched_partition_placed_total", lbl, float64(ps.Placed))
		x.Sample("unisched_partition_shed_total", lbl, float64(ps.Shed))
		x.Sample("unisched_partition_queue_depth", lbl, float64(ps.QueueDepth))
		x.Sample("unisched_partition_running", lbl, float64(ps.Running))
		if pp := ps.Pipeline; pp != nil {
			x.Sample("unisched_partition_visited_nodes_total", lbl, float64(pp.VisitedNodes))
			x.Sample("unisched_partition_decisions_total", lbl, float64(pp.Decisions))
		}
	}

	return x.Flush()
}

// MetricsHandler serves WritePrometheus over HTTP — mounted at /metrics
// by the coordinator mode of cmd/unischedd.
func (co *Coordinator) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		co.WritePrometheus(w)
	})
}
