package federation

import "unisched/internal/engine"

// partUtil is the utilization the rebalancer compares: the hotter of
// the two dimensions, requested over capacity across active nodes.
func partUtil(d *engine.Digest) float64 {
	u := 0.0
	if d.CapCPU > 0 {
		u = 1 - d.FreeCPU/d.CapCPU
	}
	if d.CapMem > 0 {
		if m := 1 - d.FreeMem/d.CapMem; m > u {
			u = m
		}
	}
	return u
}

// Rebalance migrates empty nodes from the least- to the most-utilized
// partition when the utilization spread exceeds Config.RebalanceSkew.
// Each move is two journaled membership flips — the donor drops the
// node (refused unless it is empty), the recipient adopts it — so a
// durable federation recovers the post-migration ownership
// bit-identically. Returns the number of nodes migrated; 0 when
// rebalancing is disabled, the skew is below threshold, or a partition
// runs remotely (remote backends do not migrate).
func (co *Coordinator) Rebalance() int {
	if co.cfg.RebalanceSkew <= 0 || len(co.parts) < 2 {
		return 0
	}
	migrators := make([]Migrator, len(co.parts))
	for i, p := range co.parts {
		m, ok := p.(Migrator)
		if !ok {
			return 0
		}
		migrators[i] = m
	}
	co.mu.Lock()
	co.refreshLocked()
	hi, lo := 0, 0
	for pi := range co.digests {
		if partUtil(&co.digests[pi]) > partUtil(&co.digests[hi]) {
			hi = pi
		}
		if partUtil(&co.digests[pi]) < partUtil(&co.digests[lo]) {
			lo = pi
		}
	}
	skew := partUtil(&co.digests[hi]) - partUtil(&co.digests[lo])
	co.mu.Unlock()
	if hi == lo || skew < co.cfg.RebalanceSkew {
		return 0
	}
	donor, recipient := migrators[lo], migrators[hi]
	moved := 0
	for _, id := range donor.IdleOwnedNodes(co.cfg.RebalanceBatch) {
		// Ownership invariant: the donor must have released the node (it
		// re-checks emptiness under its write locks) before the recipient
		// adopts it, so a node is Up in at most one partition at any time.
		if donor.SetNodeActive(id, false) != nil {
			continue
		}
		if recipient.SetNodeActive(id, true) != nil {
			// Roll back so the node is not orphaned.
			donor.SetNodeActive(id, true)
			continue
		}
		moved++
	}
	if moved > 0 {
		co.mu.Lock()
		co.rebalanced += int64(moved)
		co.refreshLocked()
		co.mu.Unlock()
	}
	return moved
}
