package predictor

import (
	"math/rand"
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/profiler"
	"unisched/internal/trace"
)

// The property the whole summary optimization rests on: after ANY sequence
// of cluster events, the incremental summary must reproduce the
// from-scratch Eq. 7-8 walk bit-for-bit — not approximately, because the
// golden placement hashes freeze exact scores. The test drives a
// SummaryStore through randomized place / remove / evict / node-lifecycle /
// profiler-retrain sequences against the real profiler.EROStore (live
// version counter and all) and compares every node's cached prediction to
// PredictCPUPods / PredictMemPods after every single event, with and
// without pending extras.
func TestSummaryMatchesFullWalk(t *testing.T) {
	t.Run("pairs", func(t *testing.T) { runSummaryProperty(t, false) })
	// The triples variant also flips triple-wise profiling on mid-run: the
	// grouping-mode change must invalidate every cached summary.
	t.Run("triples", func(t *testing.T) { runSummaryProperty(t, true) })
}

func runSummaryProperty(t *testing.T, triples bool) {
	rng := rand.New(rand.NewSource(7))
	cfg := trace.SmallConfig()
	cfg.NumNodes = 6
	w := trace.MustGenerate(cfg)

	store := profiler.NewEROStore()
	pred := NewOptum(store)
	pred.UseTriples = triples
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	sums := NewSummaryStore(pred, c)

	var pending []*trace.Pod // not running: never placed or displaced
	pending = append(pending, w.Pods...)
	var running []*cluster.PodState
	now := int64(0)

	dropRunning := func(victims ...*cluster.PodState) {
		for _, v := range victims {
			for i, ps := range running {
				if ps == v {
					running = append(running[:i], running[i+1:]...)
					break
				}
			}
			pending = append(pending, v.Pod)
		}
	}

	// check asserts, for every node, that the summary path equals the
	// from-scratch walk exactly — first bare, then with a random slice of
	// pending pods standing in for batch reservations plus a candidate.
	check := func(step int) {
		t.Helper()
		for _, n := range c.Nodes() {
			sum := sums.ForNode(n)
			if got, want := sums.CPUWith(sum, nil, nil), pred.PredictCPUPods(n.Pods(), nil); got != want {
				t.Fatalf("step %d node %d: summary CPU %v != full walk %v", step, n.Node.ID, got, want)
			}
			if got, want := sums.MemWith(sum, nil, nil), pred.PredictMemPods(n.Pods(), nil); got != want {
				t.Fatalf("step %d node %d: summary mem %v != full walk %v", step, n.Node.ID, got, want)
			}
			if len(pending) == 0 {
				continue
			}
			k := rng.Intn(3)
			if k >= len(pending) {
				k = len(pending) - 1
			}
			extras := pending[:k]
			cand := pending[k]
			full := append(append([]*trace.Pod(nil), extras...), cand)
			if got, want := sums.CPUWith(sum, extras, cand), pred.PredictCPUPods(n.Pods(), full); got != want {
				t.Fatalf("step %d node %d: summary CPU with %d extras %v != full walk %v",
					step, n.Node.ID, len(full), got, want)
			}
			if got, want := sums.MemWith(sum, extras, cand), pred.PredictMemPods(n.Pods(), full); got != want {
				t.Fatalf("step %d node %d: summary mem with extras %v != %v", step, n.Node.ID, got, want)
			}
		}
	}

	steps := 400
	for step := 0; step < steps; step++ {
		now += 30
		switch op := rng.Intn(12); {
		case op < 5: // place a pending pod on a random node
			if len(pending) == 0 {
				continue
			}
			i := rng.Intn(len(pending))
			p := pending[i]
			if ps, err := c.Place(p, rng.Intn(cfg.NumNodes), now); err == nil {
				pending = append(pending[:i], pending[i+1:]...)
				running = append(running, ps)
			}
		case op < 7: // remove a random running pod (completion)
			if len(running) == 0 {
				continue
			}
			i := rng.Intn(len(running))
			ps := running[i]
			c.Remove(ps.Pod.ID, now, false)
			dropRunning(ps)
		case op == 7: // chaos-style eviction
			if len(running) == 0 {
				continue
			}
			ps := running[rng.Intn(len(running))]
			if v := c.Evict(ps.Pod.ID, now); v != nil {
				dropRunning(v)
			}
		case op == 8: // node crash: all residents displaced, summary stale
			dropRunning(c.FailNode(rng.Intn(cfg.NumNodes), now)...)
		case op == 9: // drain + immediate recovery elsewhere
			id := rng.Intn(cfg.NumNodes)
			dropRunning(c.DrainNode(id, now)...)
			if rng.Intn(2) == 0 {
				c.RecoverNode(id)
			}
		case op == 10:
			c.RecoverNode(rng.Intn(cfg.NumNodes))
		default: // profiler retrain: coefficients move, version advances
			id := rng.Intn(cfg.NumNodes)
			if c.Node(id).Phase() == cluster.NodeUp {
				snap := c.Snapshot(id, now, false)
				store.ObserveSnapshot(&snap)
			}
		}
		if triples && step == steps/2 {
			// Mid-run grouping flip: pairs -> triples. Every valid summary
			// was built under pair grouping and must rebuild.
			store.EnableTriples(1)
		}
		check(step)
	}

	hits, appends, rebuilds := sums.Counters()
	if hits == 0 || appends == 0 || rebuilds == 0 {
		t.Errorf("property run never exercised all cache paths: hits=%d appends=%d rebuilds=%d",
			hits, appends, rebuilds)
	}
}

// fixedERO3 from predictor_test.go has no version counter; a summary over
// such a frozen table must still follow pod-composition changes.
func TestSummaryUnversionedTable(t *testing.T) {
	cfg := trace.SmallConfig()
	cfg.NumNodes = 2
	w := trace.MustGenerate(cfg)
	pred := NewOptum(fixedERO{ero: 0.5, mem: 0.8})
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	sums := NewSummaryStore(pred, c)

	for i, p := range w.Pods {
		if i >= 6 {
			break
		}
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatalf("place: %v", err)
		}
		n := c.Node(0)
		sum := sums.ForNode(n)
		if got, want := sums.CPUWith(sum, nil, nil), pred.PredictCPUPods(n.Pods(), nil); got != want {
			t.Fatalf("after %d placements: summary %v != walk %v", i+1, got, want)
		}
	}
	n := c.Node(0)
	c.Remove(n.Pods()[2].Pod.ID, 30, false)
	sum := sums.ForNode(n)
	if got, want := sums.CPUWith(sum, nil, nil), pred.PredictCPUPods(n.Pods(), nil); got != want {
		t.Fatalf("after removal: summary %v != walk %v", got, want)
	}
}
