package predictor

import (
	"math"
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// fixedERO is a stub profile table with one coefficient for every pair.
type fixedERO struct {
	ero float64
	mem float64
}

func (f fixedERO) ERO(a, b string) float64       { return f.ero }
func (f fixedERO) MemProfile(app string) float64 { return f.mem }

func buildCluster(t *testing.T, podCount, nodeID int) (*cluster.Cluster, *trace.Workload) {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = 4
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	placed := 0
	for _, p := range w.Pods {
		if placed >= podCount {
			break
		}
		if _, err := c.Place(p, nodeID, 0); err == nil {
			placed++
		}
	}
	return c, w
}

// warm runs some ticks so histories exist.
func warm(c *cluster.Cluster, ticks int) {
	for i := 0; i < ticks; i++ {
		c.Tick(int64(i)*trace.SampleInterval, float64(trace.SampleInterval))
	}
}

func TestBorgDefault(t *testing.T) {
	c, _ := buildCluster(t, 10, 0)
	n := c.Node(0)
	b := NewBorgDefault()
	if got, want := b.PredictCPU(n), 0.9*n.ReqSum().CPU; math.Abs(got-want) > 1e-12 {
		t.Errorf("PredictCPU = %v, want %v", got, want)
	}
	if got, want := b.PredictMem(n), 0.9*n.ReqSum().Mem; math.Abs(got-want) > 1e-12 {
		t.Errorf("PredictMem = %v, want %v", got, want)
	}
	if b.Name() == "" {
		t.Error("empty name")
	}
}

func TestBorgOverestimates(t *testing.T) {
	// The headline finding of Fig. 11(a): request-based prediction vastly
	// over-estimates actual usage, because usage << request.
	c, _ := buildCluster(t, 30, 0)
	warm(c, 10)
	n := c.Node(0)
	truth := n.LastUsage().CPU
	pred := NewBorgDefault().PredictCPU(n)
	if Error(pred, truth) < 0.5 {
		t.Errorf("Borg error = %v, expected severe over-estimation", Error(pred, truth))
	}
}

func TestResourceCentralUsesHistory(t *testing.T) {
	c, _ := buildCluster(t, 20, 0)
	n := c.Node(0)
	rc := ResourceCentral{}
	// Without history: falls back to requests.
	if got, want := rc.PredictCPU(n), n.ReqSum().CPU; math.Abs(got-want) > 1e-9 {
		t.Errorf("no-history PredictCPU = %v, want request sum %v", got, want)
	}
	warm(c, 20)
	// With history: close to actual usage, far below requests.
	pred := rc.PredictCPU(n)
	truth := n.LastUsage().CPU
	if pred >= n.ReqSum().CPU*0.8 {
		t.Errorf("RC prediction %v should be far below requests %v", pred, n.ReqSum().CPU)
	}
	if e := math.Abs(Error(pred, truth)); e > 1.0 {
		t.Errorf("RC error %v too large", e)
	}
}

func TestNSigma(t *testing.T) {
	c, _ := buildCluster(t, 20, 0)
	n := c.Node(0)
	s := NewNSigma()
	if got, want := s.PredictCPU(n), n.ReqSum().CPU; math.Abs(got-want) > 1e-9 {
		t.Errorf("no-history fallback = %v, want %v", got, want)
	}
	warm(c, 30)
	pred := s.PredictCPU(n)
	truth := n.LastUsage().CPU
	// Prediction should be above the mean usage (it adds 5 sigma)...
	if pred <= truth*0.3 {
		t.Errorf("N-sigma prediction %v implausibly low vs truth %v", pred, truth)
	}
	// ...but far below the request-based bound on steady workloads.
	if pred >= n.ReqSum().CPU {
		t.Errorf("N-sigma %v above request sum %v", pred, n.ReqSum().CPU)
	}
	if s.PredictMem(n) <= 0 {
		t.Error("PredictMem should be positive with history")
	}
}

func TestMaxPredictorDominates(t *testing.T) {
	c, _ := buildCluster(t, 25, 0)
	warm(c, 15)
	n := c.Node(0)
	m := NewMax()
	got := m.PredictCPU(n)
	for _, member := range m.Members {
		if v := member.PredictCPU(n); v > got+1e-12 {
			t.Errorf("Max %v below member %s %v", got, member.Name(), v)
		}
	}
	gotMem := m.PredictMem(n)
	for _, member := range m.Members {
		if v := member.PredictMem(n); v > gotMem+1e-12 {
			t.Errorf("Max mem below member %s", member.Name())
		}
	}
}

func TestOptumPairing(t *testing.T) {
	c, w := buildCluster(t, 5, 0)
	n := c.Node(0)
	o := NewOptum(fixedERO{ero: 0.5, mem: 0.8})

	// Manual expectation: pairs (0,1), (2,3) at 0.5x, pod 4 raw.
	pods := n.Pods()
	if len(pods) != 5 {
		t.Fatalf("placed %d pods", len(pods))
	}
	want := 0.5*(pods[0].Pod.Request.CPU+pods[1].Pod.Request.CPU) +
		0.5*(pods[2].Pod.Request.CPU+pods[3].Pod.Request.CPU) +
		pods[4].Pod.Request.CPU
	if got := o.PredictCPU(n); math.Abs(got-want) > 1e-12 {
		t.Errorf("PredictCPU = %v, want %v", got, want)
	}

	// With an incoming pod, the trailing pod pairs with it.
	extra := w.Pods[len(w.Pods)-1]
	wantWith := 0.5*(pods[0].Pod.Request.CPU+pods[1].Pod.Request.CPU) +
		0.5*(pods[2].Pod.Request.CPU+pods[3].Pod.Request.CPU) +
		0.5*(pods[4].Pod.Request.CPU+extra.Request.CPU)
	if got := o.PredictCPUWith(n, extra); math.Abs(got-wantWith) > 1e-12 {
		t.Errorf("PredictCPUWith = %v, want %v", got, wantWith)
	}

	// Memory: profiled fraction of each request.
	var wantMem float64
	for _, ps := range pods {
		wantMem += 0.8 * ps.Pod.Request.Mem
	}
	if got := o.PredictMem(n); math.Abs(got-wantMem) > 1e-12 {
		t.Errorf("PredictMem = %v, want %v", got, wantMem)
	}
	if got := o.PredictMemWith(n, extra); math.Abs(got-(wantMem+0.8*extra.Request.Mem)) > 1e-12 {
		t.Errorf("PredictMemWith = %v", got)
	}
}

func TestOptumEvenPodsWithExtra(t *testing.T) {
	c, w := buildCluster(t, 4, 0)
	n := c.Node(0)
	o := NewOptum(fixedERO{ero: 0.6, mem: 1})
	extra := w.Pods[len(w.Pods)-1]
	pods := n.Pods()
	want := 0.6*(pods[0].Pod.Request.CPU+pods[1].Pod.Request.CPU) +
		0.6*(pods[2].Pod.Request.CPU+pods[3].Pod.Request.CPU) +
		extra.Request.CPU
	if got := o.PredictCPUWith(n, extra); math.Abs(got-want) > 1e-12 {
		t.Errorf("even+extra = %v, want %v", got, want)
	}
}

func TestOptumEmptyNode(t *testing.T) {
	c, w := buildCluster(t, 0, 0)
	o := NewOptum(fixedERO{ero: 0.5, mem: 1})
	n := c.Node(1)
	if got := o.PredictCPU(n); got != 0 {
		t.Errorf("empty node prediction = %v", got)
	}
	extra := w.Pods[0]
	if got := o.PredictCPUWith(n, extra); math.Abs(got-extra.Request.CPU) > 1e-12 {
		t.Errorf("empty node with extra = %v, want %v", got, extra.Request.CPU)
	}
}

func TestOptumConservativeWithUnitERO(t *testing.T) {
	// ERO = 1 degenerates to the request sum — the new-application default.
	c, _ := buildCluster(t, 8, 0)
	n := c.Node(0)
	o := NewOptum(fixedERO{ero: 1, mem: 1})
	if got, want := o.PredictCPU(n), n.ReqSum().CPU; math.Abs(got-want) > 1e-9 {
		t.Errorf("unit-ERO prediction = %v, want request sum %v", got, want)
	}
}

func TestOptumTighterThanBorg(t *testing.T) {
	// With learned (sub-unity) ERO, Optum predicts less than Borg-style
	// request sums — that gap is exactly the utilization headroom of Fig. 19.
	c, _ := buildCluster(t, 20, 0)
	warm(c, 10)
	n := c.Node(0)
	o := NewOptum(fixedERO{ero: 0.4, mem: 0.6})
	if o.PredictCPU(n) >= NewBorgDefault().PredictCPU(n) {
		t.Error("learned-ERO Optum should predict below Borg default")
	}
}

func TestErrorMetric(t *testing.T) {
	cases := []struct{ pred, truth, want float64 }{
		{150, 100, 0.5},
		{50, 100, -0.5},
		{100, 100, 0},
		{0, 0, 0},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := Error(c.pred, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Error(%v,%v) = %v, want %v", c.pred, c.truth, got, c.want)
		}
	}
}

func TestAllPredictorsNamed(t *testing.T) {
	tbl := fixedERO{ero: 1, mem: 1}
	ps := []Predictor{NewBorgDefault(), ResourceCentral{}, NewNSigma(), NewMax(), NewOptum(tbl)}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name() == "" || seen[p.Name()] {
			t.Errorf("bad or duplicate name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

// fixedERO3 extends the stub with triple support.
type fixedERO3 struct {
	fixedERO
	ero3    float64
	enabled bool
}

func (f fixedERO3) ERO3(a, b, c string) float64 { return f.ero3 }
func (f fixedERO3) TriplesEnabled() bool        { return f.enabled }

func TestOptumTripleGrouping(t *testing.T) {
	c, w := buildCluster(t, 7, 0)
	n := c.Node(0)
	tbl := fixedERO3{fixedERO: fixedERO{ero: 0.6, mem: 1}, ero3: 0.5, enabled: true}
	o := NewOptum(tbl)
	o.UseTriples = true

	pods := n.Pods()
	req := func(i int) float64 { return pods[i].Pod.Request.CPU }
	// 7 pods: triples (0,1,2), (3,4,5) at 0.5x; trailing single at raw.
	want := 0.5*(req(0)+req(1)+req(2)) + 0.5*(req(3)+req(4)+req(5)) + req(6)
	if got := o.PredictCPU(n); math.Abs(got-want) > 1e-12 {
		t.Errorf("triple PredictCPU = %v, want %v", got, want)
	}

	// Trailing pair uses the pairwise coefficient.
	extra := w.Pods[len(w.Pods)-1]
	want8 := 0.5*(req(0)+req(1)+req(2)) + 0.5*(req(3)+req(4)+req(5)) +
		0.6*(req(6)+extra.Request.CPU)
	if got := o.PredictCPUWith(n, extra); math.Abs(got-want8) > 1e-12 {
		t.Errorf("triple+pair PredictCPUWith = %v, want %v", got, want8)
	}

	// Disabled table: falls back to pairwise grouping.
	tbl.enabled = false
	o2 := NewOptum(tbl)
	o2.UseTriples = true
	wantPair := 0.6*(req(0)+req(1)) + 0.6*(req(2)+req(3)) + 0.6*(req(4)+req(5)) + req(6)
	if got := o2.PredictCPU(n); math.Abs(got-wantPair) > 1e-12 {
		t.Errorf("disabled-triples PredictCPU = %v, want pairwise %v", got, wantPair)
	}
}

func TestOptumTripleTighterPrediction(t *testing.T) {
	// With ERO3 < ERO (the expected relationship), the triple predictor is
	// tighter than the pairwise one on the same host.
	c, _ := buildCluster(t, 9, 0)
	n := c.Node(0)
	tbl := fixedERO3{fixedERO: fixedERO{ero: 0.6, mem: 1}, ero3: 0.45, enabled: true}
	pair := NewOptum(tbl)
	tri := NewOptum(tbl)
	tri.UseTriples = true
	if tri.PredictCPU(n) >= pair.PredictCPU(n) {
		t.Errorf("triple prediction (%v) should be below pairwise (%v)",
			tri.PredictCPU(n), pair.PredictCPU(n))
	}
}
