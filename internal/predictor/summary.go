package predictor

import (
	"sync/atomic"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// This file makes Optum's per-candidate cost O(extras) amortized instead of
// O(residents): a SummaryStore caches, per node, the Eq. 7-8 prediction
// state over the node's resident pods — the partial ERO sum of all complete
// pod groups, the trailing ungrouped pods, and the memory-profile sum —
// plus the node's app-composition multiset for the Eq. 11 interference
// terms. Scoring a candidate then only appends the batch reservations and
// the candidate pod to the cached tail.
//
// Exactness. Floating-point addition is not associative, so the cache keeps
// the *accumulation order* of a from-scratch PredictCPUPods walk: pairSum
// is the exact left-to-right partial sum after the last complete resident
// group, and CPUWith continues that same sequence of additions with the
// extras. A placement appends to the node's pod list, so the cached prefix
// is untouched and the summary extends by one pod; a removal re-pairs every
// subsequent pod, so the summary invalidates and rebuilds once per exit —
// not once per candidate. Results are therefore bit-identical to the full
// walk (golden placement hashes must not move).
//
// Concurrency. Summaries follow the same contract as pipeline.Index, which
// is maintained through the identical cluster-observer hook: observer
// mutations run synchronously on the mutating goroutine (the sim's single
// thread, or an engine worker holding its shard's write lock), while reads
// happen with no commit in flight on the node's shard. ForNode may rebuild
// in place during a read, which is safe because the pipeline's parallel
// scan hands each goroutine a disjoint set of node IDs. Counters are
// atomic so concurrent scanners can bump them.

// VersionedTable is implemented by profile tables whose answers change over
// time (the live profiler.EROStore): TableVersion advances whenever any
// ERO, ERO3 or MemProfile result may have moved, which is what lets a
// SummaryStore invalidate cached sums exactly when the table does. Tables
// without it (immutable test stubs) are treated as frozen at version 0.
type VersionedTable interface {
	TableVersion() uint64
}

// StatsSink receives summary cache counter deltas; pipeline.Stats
// implements it.
type StatsSink interface {
	AddSummary(hits, appends, rebuilds int64)
}

// AppCount is one entry of a node's app-composition multiset: a distinct
// (application, SLO class) pair with its resident pod count.
type AppCount struct {
	App string
	// LS marks the latency-sensitive entry for the application; a false LS
	// covers its best-effort pods.
	LS bool
	// N counts the resident pods in this entry.
	N int
}

// NodeSummary is one node's cached prediction state. Zero value = invalid;
// the first ForNode read builds it.
type NodeSummary struct {
	valid   bool
	triples bool   // grouping mode the summary was built under
	version uint64 // table version the sums were computed against
	npods   int    // resident pods covered

	// pairSum is the exact partial Eq. 7-8 sum over all complete resident
	// groups, accumulated left-to-right exactly as PredictCPUPods would.
	pairSum float64
	// tail holds the trailing residents of an incomplete group (at most 1
	// in pair mode, 2 in triple mode).
	tail    [2]*trace.Pod
	tailLen int
	// memSum is the Eq. 8 memory sum Σ MemProfile(app)·request.Mem over
	// residents, in scheduling order.
	memSum float64

	// apps is the app-composition multiset; termIdx maps each resident pod
	// (in scheduling order) to its entry, -1 for pods outside both
	// interference classes. Both slices are reused across rebuilds.
	apps    []AppCount
	termIdx []int32
}

// Apps returns the distinct (application, SLO class) entries among the
// node's residents. The slice is owned by the summary: do not modify or
// retain it past the current scoring call.
func (sum *NodeSummary) Apps() []AppCount { return sum.apps }

// TermIdx maps each resident pod, in scheduling order, to its Apps entry
// (-1 for pods in no interference class). Replaying per-pod additions
// through it reproduces the exact floating-point accumulation order of a
// full resident walk — per-entry count·term multiplication would not.
func (sum *NodeSummary) TermIdx() []int32 { return sum.termIdx }

// Pods reports how many resident pods the summary covers.
func (sum *NodeSummary) Pods() int { return sum.npods }

// appIdx returns the multiset entry for (app, ls), adding one if missing,
// and bumps its count. Distinct apps per node are few, so a linear scan
// beats a map (and allocates nothing).
func (sum *NodeSummary) appIdx(app string, ls bool) int32 {
	for i := range sum.apps {
		if sum.apps[i].LS == ls && sum.apps[i].App == app {
			sum.apps[i].N++
			return int32(i)
		}
	}
	sum.apps = append(sum.apps, AppCount{App: app, LS: ls, N: 1})
	return int32(len(sum.apps) - 1)
}

// SummaryStore maintains one NodeSummary per node, kept fresh through the
// cluster's observer hook.
type SummaryStore struct {
	pred *Optum
	c    *cluster.Cluster
	vt   VersionedTable // nil when the table is immutable
	sums []NodeSummary

	hits, appends, rebuilds atomic.Int64
	// Flush bookkeeping; only the (serial) batch goroutine touches these.
	lastHits, lastAppends, lastRebuilds int64
}

// NewSummaryStore builds a store over the cluster's nodes and registers its
// observer. Call once per scheduler instance, before scheduling starts.
func NewSummaryStore(pred *Optum, c *cluster.Cluster) *SummaryStore {
	s := &SummaryStore{
		pred: pred,
		c:    c,
		sums: make([]NodeSummary, len(c.Nodes())),
	}
	s.vt, _ = pred.Table.(VersionedTable)
	c.AddObserver(s.observe)
	return s
}

func (s *SummaryStore) tableVersion() uint64 {
	if s.vt == nil {
		return 0
	}
	return s.vt.TableVersion()
}

// triplesOn reports the current Eq. 7-8 grouping mode, mirroring the
// dispatch in PredictCPUPods.
func (s *SummaryStore) triplesOn() bool {
	if !s.pred.UseTriples {
		return false
	}
	t3, ok := s.pred.Table.(EROTable3)
	return ok && t3.TriplesEnabled()
}

// observe is the cluster observer: it fires after every single node
// mutation. The pod-count delta identifies the mutation — the only change
// that grows the list is Place, which appends, so the cached prefix is
// untouched and the summary extends in O(1); a shrink (or any valid=false
// state) defers to a lazy rebuild so a burst of exits costs one rebuild at
// the next read, not one per event.
func (s *SummaryStore) observe(nodeID int) {
	sum := &s.sums[nodeID]
	if !sum.valid {
		return
	}
	pods := s.c.Node(nodeID).Pods()
	switch len(pods) {
	case sum.npods + 1:
		if sum.version != s.tableVersion() {
			// The table moved since the summary was built; extending it
			// would mix coefficient versions. Rebuild on next read.
			sum.valid = false
			return
		}
		s.appendPod(sum, pods[len(pods)-1].Pod)
		s.appends.Add(1)
	case sum.npods:
		// Phase-only lifecycle event: pod composition unchanged.
	default:
		sum.valid = false
	}
}

// appendPod extends the summary by one pod, continuing the exact Eq. 7-8
// accumulation sequence. Shared by the observer's O(1) append and rebuild.
func (s *SummaryStore) appendPod(sum *NodeSummary, p *trace.Pod) {
	t := s.pred.Table
	if sum.triples {
		if sum.tailLen == 2 {
			a, b := sum.tail[0], sum.tail[1]
			sum.pairSum += t.(EROTable3).ERO3(a.AppID, b.AppID, p.AppID) *
				(a.Request.CPU + b.Request.CPU + p.Request.CPU)
			sum.tail[0], sum.tail[1] = nil, nil
			sum.tailLen = 0
		} else {
			sum.tail[sum.tailLen] = p
			sum.tailLen++
		}
	} else {
		if sum.tailLen == 1 {
			a := sum.tail[0]
			sum.pairSum += t.ERO(a.AppID, p.AppID) * (a.Request.CPU + p.Request.CPU)
			sum.tail[0] = nil
			sum.tailLen = 0
		} else {
			sum.tail[0] = p
			sum.tailLen = 1
		}
	}
	sum.memSum += t.MemProfile(p.AppID) * p.Request.Mem

	idx := int32(-1)
	switch {
	case p.SLO.LatencySensitive():
		idx = sum.appIdx(p.AppID, true)
	case p.SLO == trace.SLOBE:
		idx = sum.appIdx(p.AppID, false)
	}
	sum.termIdx = append(sum.termIdx, idx)
	sum.npods++
}

// rebuild recomputes the summary from scratch: the same left-to-right walk
// PredictCPUPods performs over the residents, so the cached partial sums
// are bitwise prefixes of the full computation.
func (s *SummaryStore) rebuild(sum *NodeSummary, n *cluster.NodeState) {
	sum.version = s.tableVersion()
	sum.triples = s.triplesOn()
	sum.npods = 0
	sum.pairSum = 0
	sum.tail[0], sum.tail[1] = nil, nil
	sum.tailLen = 0
	sum.memSum = 0
	sum.apps = sum.apps[:0]
	sum.termIdx = sum.termIdx[:0]
	for _, ps := range n.Pods() {
		s.appendPod(sum, ps.Pod)
	}
	sum.valid = true
	s.rebuilds.Add(1)
}

// ForNode returns the node's summary, rebuilding it if a removal, a table
// version change, or a grouping-mode flip made the cache stale.
func (s *SummaryStore) ForNode(n *cluster.NodeState) *NodeSummary {
	sum := &s.sums[n.Node.ID]
	if sum.valid && sum.npods == len(n.Pods()) && sum.version == s.tableVersion() &&
		(!s.pred.UseTriples || sum.triples == s.triplesOn()) {
		s.hits.Add(1)
		return sum
	}
	s.rebuild(sum, n)
	return sum
}

// CPUWith evaluates Eq. 7-8 for the summarized node as if extras and then p
// (extras may be empty, p may be nil) were appended in scheduling order. It
// continues the cached accumulation exactly where the residents left off,
// so the result is bit-identical to PredictCPUPods over the full list — in
// O(len(extras)) and without materializing a combined slice.
func (s *SummaryStore) CPUWith(sum *NodeSummary, extras []*trace.Pod, p *trace.Pod) float64 {
	t := s.pred.Table
	total := sum.pairSum
	m := len(extras)
	if p != nil {
		m++
	}
	if sum.triples {
		t3 := t.(EROTable3)
		a, b := sum.tail[0], sum.tail[1]
		for i := 0; i < m; i++ {
			e := p
			if i < len(extras) {
				e = extras[i]
			}
			switch {
			case a == nil:
				a = e
			case b == nil:
				b = e
			default:
				total += t3.ERO3(a.AppID, b.AppID, e.AppID) *
					(a.Request.CPU + b.Request.CPU + e.Request.CPU)
				a, b = nil, nil
			}
		}
		switch {
		case b != nil:
			total += t.ERO(a.AppID, b.AppID) * (a.Request.CPU + b.Request.CPU)
		case a != nil:
			total += a.Request.CPU
		}
		return total
	}
	hold := sum.tail[0]
	for i := 0; i < m; i++ {
		e := p
		if i < len(extras) {
			e = extras[i]
		}
		if hold == nil {
			hold = e
			continue
		}
		total += t.ERO(hold.AppID, e.AppID) * (hold.Request.CPU + e.Request.CPU)
		hold = nil
	}
	if hold != nil {
		total += hold.Request.CPU
	}
	return total
}

// MemWith is the memory counterpart of CPUWith: the cached resident sum
// plus the extras' profiled terms, in order.
func (s *SummaryStore) MemWith(sum *NodeSummary, extras []*trace.Pod, p *trace.Pod) float64 {
	t := s.pred.Table
	total := sum.memSum
	for _, e := range extras {
		total += t.MemProfile(e.AppID) * e.Request.Mem
	}
	if p != nil {
		total += t.MemProfile(p.AppID) * p.Request.Mem
	}
	return total
}

// Counters returns the cumulative hit / O(1)-append / rebuild counts.
func (s *SummaryStore) Counters() (hits, appends, rebuilds int64) {
	return s.hits.Load(), s.appends.Load(), s.rebuilds.Load()
}

// FlushStats reports the counters accrued since the previous flush to the
// sink. Flushes must be serialized by the caller (Optum flushes once per
// scheduling batch, on the batch goroutine).
func (s *SummaryStore) FlushStats(sink StatsSink) {
	h, a, r := s.hits.Load(), s.appends.Load(), s.rebuilds.Load()
	sink.AddSummary(h-s.lastHits, a-s.lastAppends, r-s.lastRebuilds)
	s.lastHits, s.lastAppends, s.lastRebuilds = h, a, r
}
