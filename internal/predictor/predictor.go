// Package predictor implements the host resource-usage predictors the
// paper compares for resource over-commitment (§3.2.2, Fig. 11): the Borg
// default request-ratio rule, Microsoft's Resource Central percentile sum,
// the N-sigma Gaussian bound, the industry Max ensemble, and Optum's
// pairwise effective-resource-occupancy (ERO) predictor built on Eq. 7-8.
//
// A predictor answers: "how much CPU (memory) will this host actually use
// in the near future?". Over-commitment admits a pod when the prediction —
// not the request sum — fits the capacity.
package predictor

import (
	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// Predictor estimates a host's upcoming resource usage.
type Predictor interface {
	// Name identifies the method in reports ("Borg default", ...).
	Name() string
	// PredictCPU estimates the node's CPU usage over the next interval,
	// in normalized cores.
	PredictCPU(n *cluster.NodeState) float64
	// PredictMem estimates the node's memory usage over the next interval.
	PredictMem(n *cluster.NodeState) float64
}

// BorgDefault predicts usage as λ times the sum of resource requests — the
// Google Borg default. λ = 1.0 is fully conservative; 0.9 is the common
// production setting.
type BorgDefault struct {
	Lambda float64
}

// NewBorgDefault returns the standard λ=0.9 Borg predictor.
func NewBorgDefault() *BorgDefault { return &BorgDefault{Lambda: 0.9} }

// Name implements Predictor.
func (b *BorgDefault) Name() string { return "Borg default" }

// PredictCPU implements Predictor.
func (b *BorgDefault) PredictCPU(n *cluster.NodeState) float64 {
	return b.Lambda * n.ReqSum().CPU
}

// PredictMem implements Predictor.
func (b *BorgDefault) PredictMem(n *cluster.NodeState) float64 {
	return b.Lambda * n.ReqSum().Mem
}

// ResourceCentral predicts usage as the sum of each pod's k-th percentile
// historical usage (k = 99 in Azure's deployment).
type ResourceCentral struct{}

// Name implements Predictor.
func (ResourceCentral) Name() string { return "Resource Central" }

// PredictCPU implements Predictor. Pods with no history yet contribute
// their full request (nothing better is known).
func (ResourceCentral) PredictCPU(n *cluster.NodeState) float64 {
	var s float64
	for _, ps := range n.Pods() {
		if p99 := ps.P99CPU(); p99 > 0 {
			s += p99
		} else {
			s += ps.Pod.Request.CPU
		}
	}
	return s
}

// PredictMem implements Predictor using observed per-pod peaks.
func (ResourceCentral) PredictMem(n *cluster.NodeState) float64 {
	var s float64
	for _, ps := range n.Pods() {
		if m := ps.MaxMem(); m > 0 {
			s += m
		} else {
			s += ps.Pod.Request.Mem
		}
	}
	return s
}

// NSigma predicts usage as mean + N·stddev of the node's recent overall
// usage, assuming the total follows a Gaussian. N = 5 in production use.
type NSigma struct {
	N float64
}

// NewNSigma returns the standard 5-sigma predictor.
func NewNSigma() *NSigma { return &NSigma{N: 5} }

// Name implements Predictor.
func (s *NSigma) Name() string { return "N-Sigma" }

// PredictCPU implements Predictor. With no history it falls back to the
// request sum; pods placed since the last sample are reserved at their
// full request because the history cannot have seen them yet.
func (s *NSigma) PredictCPU(n *cluster.NodeState) float64 {
	if n.HistoryLen() == 0 {
		return n.ReqSum().CPU
	}
	mean, std, _, _ := n.UsageStats()
	return mean + s.N*std + n.UnmeasuredReq().CPU
}

// PredictMem implements Predictor.
func (s *NSigma) PredictMem(n *cluster.NodeState) float64 {
	if n.HistoryLen() == 0 {
		return n.ReqSum().Mem
	}
	_, _, mean, std := n.UsageStats()
	return mean + s.N*std + n.UnmeasuredReq().Mem
}

// Max takes the maximum of its member predictions — the MaxPredictor of
// Bashir et al., designed to be safe at the price of over-estimation.
type Max struct {
	Members []Predictor
}

// NewMax returns the standard Borg/RC/N-sigma ensemble.
func NewMax() *Max {
	return &Max{Members: []Predictor{NewBorgDefault(), ResourceCentral{}, NewNSigma()}}
}

// Name implements Predictor.
func (m *Max) Name() string { return "Max Predictor" }

// PredictCPU implements Predictor.
func (m *Max) PredictCPU(n *cluster.NodeState) float64 {
	var best float64
	for _, p := range m.Members {
		if v := p.PredictCPU(n); v > best {
			best = v
		}
	}
	return best
}

// PredictMem implements Predictor.
func (m *Max) PredictMem(n *cluster.NodeState) float64 {
	var best float64
	for _, p := range m.Members {
		if v := p.PredictMem(n); v > best {
			best = v
		}
	}
	return best
}

// EROTable is the profile store the Optum predictor consults: pairwise
// effective resource-occupancy coefficients (Eq. 5) and per-application
// memory profiles. internal/profiler provides the production
// implementation; tests can stub it.
type EROTable interface {
	// ERO returns the effective resource-usage coefficient for a pair of
	// applications, in (0, 1]. Unknown pairs return 1 (fully conservative).
	ERO(appA, appB string) float64
	// MemProfile returns the profiled maximum memory utilization (fraction
	// of request) for an application; unknown apps return 1.
	MemProfile(app string) float64
}

// EROTable3 is the optional triple-wise extension of §4.2.2: combined
// usage coefficients for application triples.
type EROTable3 interface {
	EROTable
	// ERO3 returns the coefficient for a triple of applications, in
	// (0, 1]; unknown triples fall back conservatively.
	ERO3(appA, appB, appC string) float64
	// TriplesEnabled reports whether triple observations exist at all.
	TriplesEnabled() bool
}

// Optum is the paper's pairwise predictor: it walks the host's pods in
// scheduling order, estimates each consecutive pair's combined usage as
// ERO(A,B)·(req_A + req_B) (Eq. 7), and sums the pairs, adding the raw
// request of an unpaired trailing pod (Eq. 8). Memory is the conservative
// per-application profile sum.
//
// With UseTriples set and a table implementing EROTable3, pods are grouped
// in threes instead — the §4.2.2 extension trading profiling overhead for
// tighter peak estimates.
type Optum struct {
	Table EROTable
	// UseTriples groups pods three at a time via ERO3 when the table
	// supports it.
	UseTriples bool
}

// NewOptum returns an Optum predictor over the given profile table.
func NewOptum(table EROTable) *Optum { return &Optum{Table: table} }

// Name implements Predictor.
func (o *Optum) Name() string { return "Optum Predictor" }

// PredictCPU implements Predictor (Eq. 8).
func (o *Optum) PredictCPU(n *cluster.NodeState) float64 {
	return o.PredictCPUWith(n, nil)
}

// PredictCPUWith predicts the node's CPU usage as if extra (possibly nil)
// were also scheduled there — the form the Online Scheduler evaluates for
// each candidate host before placement.
func (o *Optum) PredictCPUWith(n *cluster.NodeState, extra *trace.Pod) float64 {
	if extra == nil {
		return o.PredictCPUPods(n.Pods(), nil)
	}
	return o.PredictCPUPods(n.Pods(), []*trace.Pod{extra})
}

// PredictCPUPods evaluates Eq. 7-8 over the node's running pods followed by
// additional not-yet-deployed pods (this batch's reservations plus the
// candidate), in scheduling order.
func (o *Optum) PredictCPUPods(pods []*cluster.PodState, extras []*trace.Pod) float64 {
	n := len(pods) + len(extras)
	at := func(i int) *trace.Pod {
		if i < len(pods) {
			return pods[i].Pod
		}
		return extras[i-len(pods)]
	}
	if o.UseTriples {
		if t3, ok := o.Table.(EROTable3); ok && t3.TriplesEnabled() {
			return o.predictTriples(t3, at, n)
		}
	}
	total := 0.0
	var i int
	for ; i+1 < n; i += 2 {
		a, b := at(i), at(i+1)
		total += o.Table.ERO(a.AppID, b.AppID) * (a.Request.CPU + b.Request.CPU)
	}
	if i < n {
		total += at(i).Request.CPU
	}
	return total
}

// predictTriples is the §4.2.2 extension: group pods three at a time; a
// trailing pair uses the pairwise coefficient and a trailing single its
// raw request.
func (o *Optum) predictTriples(t3 EROTable3, at func(int) *trace.Pod, n int) float64 {
	total := 0.0
	var i int
	for ; i+2 < n; i += 3 {
		a, b, c := at(i), at(i+1), at(i+2)
		total += t3.ERO3(a.AppID, b.AppID, c.AppID) *
			(a.Request.CPU + b.Request.CPU + c.Request.CPU)
	}
	switch n - i {
	case 2:
		a, b := at(i), at(i+1)
		total += o.Table.ERO(a.AppID, b.AppID) * (a.Request.CPU + b.Request.CPU)
	case 1:
		total += at(i).Request.CPU
	}
	return total
}

// PredictMem implements Predictor: the sum of profiled per-pod memory.
func (o *Optum) PredictMem(n *cluster.NodeState) float64 {
	return o.PredictMemWith(n, nil)
}

// PredictMemWith predicts memory usage as if extra were also placed.
func (o *Optum) PredictMemWith(n *cluster.NodeState, extra *trace.Pod) float64 {
	var total float64
	for _, ps := range n.Pods() {
		total += o.Table.MemProfile(ps.Pod.AppID) * ps.Pod.Request.Mem
	}
	if extra != nil {
		total += o.Table.MemProfile(extra.AppID) * extra.Request.Mem
	}
	return total
}

// PredictMemPods is PredictMemWith generalized to several pending pods.
func (o *Optum) PredictMemPods(pods []*cluster.PodState, extras []*trace.Pod) float64 {
	var total float64
	for _, ps := range pods {
		total += o.Table.MemProfile(ps.Pod.AppID) * ps.Pod.Request.Mem
	}
	for _, p := range extras {
		total += o.Table.MemProfile(p.AppID) * p.Request.Mem
	}
	return total
}

// Error quantifies a prediction against ground truth as (pred-truth)/truth
// (§3.2.2): negative values are under-estimations that risk performance,
// positive values are over-estimations that waste resources. A zero truth
// with a positive prediction reports +1 (100 % over-estimation).
func Error(pred, truth float64) float64 {
	if truth == 0 {
		if pred == 0 {
			return 0
		}
		return 1
	}
	return (pred - truth) / truth
}
