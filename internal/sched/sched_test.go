package sched

import (
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

func testSetup(t *testing.T, nodes int) (*cluster.Cluster, *trace.Workload) {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = nodes
	w := trace.MustGenerate(cfg)
	return cluster.New(w.Nodes, cluster.DefaultPhysics()), w
}

func findPod(w *trace.Workload, slo trace.SLO) *trace.Pod {
	for _, p := range w.Pods {
		if p.SLO == slo {
			return p
		}
	}
	return nil
}

func TestReasonString(t *testing.T) {
	for _, r := range []Reason{ReasonNone, ReasonCPUMem, ReasonCPU, ReasonMem, ReasonOther} {
		if r.String() == "" || r.String() == "?" {
			t.Errorf("Reason %d has no name", r)
		}
	}
	if Reason(99).String() != "?" {
		t.Error("out-of-range reason should be ?")
	}
}

func TestCandidatesAffinity(t *testing.T) {
	c, w := testSetup(t, 8)
	b := NewBase(c, 1)
	// Find an app with affinity; if none, force one.
	var app *trace.App
	for _, a := range w.Apps {
		if a.Affinity >= 0 {
			app = a
			break
		}
	}
	if app == nil {
		app = w.Apps[0]
		app.Affinity = 1
	}
	var pod *trace.Pod
	for _, p := range w.Pods {
		if p.AppID == app.ID {
			pod = p
			break
		}
	}
	if pod == nil {
		t.Skip("no pod for affinity app")
	}
	for _, id := range b.Candidates(pod) {
		if c.Node(id).Node.Group != app.Affinity {
			t.Fatalf("candidate %d in group %d, want %d", id, c.Node(id).Node.Group, app.Affinity)
		}
	}
	// No-affinity pods see all nodes.
	var free *trace.Pod
	for _, p := range w.Pods {
		if p.App().Affinity < 0 {
			free = p
			break
		}
	}
	if free != nil && len(b.Candidates(free)) != 8 {
		t.Errorf("unconstrained candidates = %d, want 8", len(b.Candidates(free)))
	}
}

func TestAlibabaConservativeForLS(t *testing.T) {
	c, w := testSetup(t, 2)
	s := NewAlibabaLike(c, 1)
	ls := findPod(w, trace.SLOLS)
	// Fill node requests to capacity with LS pods.
	for _, p := range w.Pods {
		if !p.SLO.LatencySensitive() {
			continue
		}
		d := s.Schedule([]*trace.Pod{p}, 0)[0]
		if d.NodeID < 0 {
			break
		}
		if _, err := c.Place(p, d.NodeID, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Every node's request sum must stay within capacity for LS admission.
	for _, n := range c.Nodes() {
		if n.ReqSum().CPU > n.Capacity().CPU+1e-9 {
			t.Fatalf("conservative LS policy overcommitted: %v > %v",
				n.ReqSum().CPU, n.Capacity().CPU)
		}
	}
	// Once requests are saturated, further LS pods are rejected even
	// though actual usage is low.
	d := s.Schedule([]*trace.Pod{ls}, 3600)[0]
	if d.NodeID >= 0 && !d.NeedPreempt {
		n := c.Node(d.NodeID)
		if n.ReqSum().Add(ls.Request).CPU > n.Capacity().CPU {
			t.Error("LS pod admitted beyond request capacity")
		}
	}
}

func TestAlibabaAggressiveForBE(t *testing.T) {
	c, w := testSetup(t, 2)
	s := NewAlibabaLike(c, 1)
	// Saturate requests with LS pods on node 0.
	n0 := c.Node(0)
	for _, p := range w.Pods {
		if !p.SLO.LatencySensitive() {
			continue
		}
		if n0.ReqSum().CPU+p.Request.CPU > n0.Capacity().CPU {
			break
		}
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Run a tick so usage history exists (usage << requests).
	c.Tick(0, 30)
	be := findPod(w, trace.SLOBE)
	d := s.Schedule([]*trace.Pod{be}, 30)[0]
	if d.NodeID < 0 {
		t.Fatalf("BE pod rejected despite low actual usage: %v", d.Reason)
	}
}

func TestGreedyReasonClassification(t *testing.T) {
	c, w := testSetup(t, 2)
	b := NewBase(c, 1)
	p := findPod(w, trace.SLOBE)
	// All candidates fail on memory only.
	d := b.Greedy(p, []int{0, 1},
		func(*cluster.NodeState, *trace.Pod, trace.Resources) (bool, bool) { return true, false },
		func(*cluster.NodeState, *trace.Pod) float64 { return 0 })
	if d.Reason != ReasonMem || d.NodeID != -1 {
		t.Errorf("mem-blocked reason = %v", d.Reason)
	}
	// CPU only.
	d = b.Greedy(p, []int{0, 1},
		func(*cluster.NodeState, *trace.Pod, trace.Resources) (bool, bool) { return false, true },
		func(*cluster.NodeState, *trace.Pod) float64 { return 0 })
	if d.Reason != ReasonCPU {
		t.Errorf("cpu-blocked reason = %v", d.Reason)
	}
	// Both.
	d = b.Greedy(p, []int{0, 1},
		func(*cluster.NodeState, *trace.Pod, trace.Resources) (bool, bool) { return false, false },
		func(*cluster.NodeState, *trace.Pod) float64 { return 0 })
	if d.Reason != ReasonCPUMem {
		t.Errorf("both-blocked reason = %v", d.Reason)
	}
	// No candidates.
	d = b.Greedy(p, nil, nil, nil)
	if d.Reason != ReasonOther {
		t.Errorf("no-candidate reason = %v", d.Reason)
	}
}

func TestGreedyPicksBestScore(t *testing.T) {
	c, w := testSetup(t, 4)
	b := NewBase(c, 1)
	p := findPod(w, trace.SLOBE)
	d := b.Greedy(p, []int{0, 1, 2, 3},
		func(*cluster.NodeState, *trace.Pod, trace.Resources) (bool, bool) { return true, true },
		func(n *cluster.NodeState, _ *trace.Pod) float64 { return float64(n.Node.ID) })
	if d.NodeID != 3 {
		t.Errorf("picked node %d, want 3 (highest score)", d.NodeID)
	}
}

func TestLSRPreemptionFallback(t *testing.T) {
	c, w := testSetup(t, 1)
	b := NewBase(c, 1)
	// Fill node 0 with BE pods beyond LSR admission.
	n := c.Node(0)
	for _, p := range w.Pods {
		if p.SLO != trace.SLOBE {
			continue
		}
		if n.ReqSum().CPU > n.Capacity().CPU*1.2 {
			break
		}
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	lsr := findPod(w, trace.SLOLSR)
	d := b.Greedy(lsr, []int{0},
		func(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
			req := n.ReqSum().Add(resv).Add(p.Request)
			return req.CPU <= n.Capacity().CPU, req.Mem <= n.Capacity().Mem
		},
		func(*cluster.NodeState, *trace.Pod) float64 { return 0 })
	if !d.NeedPreempt || d.NodeID != 0 {
		t.Errorf("LSR should fall back to preemption: %+v", d)
	}
	// A BE pod in the same spot must NOT get preemption.
	be := findPod(w, trace.SLOBE)
	d = b.Greedy(be, []int{0},
		func(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) { return false, false },
		func(*cluster.NodeState, *trace.Pod) float64 { return 0 })
	if d.NeedPreempt {
		t.Error("BE pod must not trigger preemption")
	}
}

func TestPredictorSchedulers(t *testing.T) {
	for _, mk := range []func(*cluster.Cluster, int64) *PredictorScheduler{
		NewBorgLike, NewNSigma, NewRCLike,
	} {
		c, w := testSetup(t, 4)
		s := mk(c, 1)
		if s.Name() == "" {
			t.Fatal("unnamed scheduler")
		}
		placed := 0
		for _, p := range w.Pods[:100] {
			d := s.Schedule([]*trace.Pod{p}, 0)[0]
			if d.NodeID >= 0 && !d.NeedPreempt {
				if _, err := c.Place(p, d.NodeID, 0); err != nil {
					t.Fatal(err)
				}
				placed++
			}
			c.Tick(0, 30)
		}
		if placed == 0 {
			t.Errorf("%s placed nothing", s.Name())
		}
	}
}

func TestRCLikeOvercommitCap(t *testing.T) {
	c, w := testSetup(t, 1)
	s := NewRCLike(c, 1)
	// Place pods until rejected; request overcommit must stay <= 1.2.
	for _, p := range w.Pods {
		d := s.Schedule([]*trace.Pod{p}, 0)[0]
		if d.NodeID < 0 || d.NeedPreempt {
			continue
		}
		if _, err := c.Place(p, d.NodeID, 0); err != nil {
			t.Fatal(err)
		}
		c.Tick(0, 30)
	}
	r, _ := c.Node(0).OvercommitRate()
	if r.CPU > 1.2+1e-9 || r.Mem > 1.2+1e-9 {
		t.Errorf("RC-like exceeded 1.2 overcommit: %+v", r)
	}
}

func TestMedeaBatchOptimal(t *testing.T) {
	c, w := testSetup(t, 3)
	m := NewMedea(c, 1)
	m.MaxHosts = 3
	// Hand-craft: three long-running pods that each fit exactly one node's
	// remaining space. Use real LS pods and shrink capacity artificially by
	// pre-filling.
	var long []*trace.Pod
	for _, p := range w.Pods {
		if p.App().LongRunning() && p.App().Affinity < 0 {
			long = append(long, p)
		}
		if len(long) == 6 {
			break
		}
	}
	if len(long) < 6 {
		t.Skip("not enough long-running pods")
	}
	ds := m.Schedule(long, 0)
	placed := 0
	for _, d := range ds {
		if d.NodeID >= 0 {
			placed++
		}
	}
	// With empty nodes everything must place.
	if placed != len(long) {
		t.Errorf("Medea placed %d/%d on empty cluster", placed, len(long))
	}
}

func TestMedeaRespectsCapacity(t *testing.T) {
	c, w := testSetup(t, 2)
	m := NewMedea(c, 1)
	var long []*trace.Pod
	for _, p := range w.Pods {
		if p.App().LongRunning() {
			long = append(long, p)
		}
	}
	// Schedule in batches and deploy; requests must never exceed capacity.
	for start := 0; start < len(long); start += 15 {
		end := start + 15
		if end > len(long) {
			end = len(long)
		}
		for _, d := range m.Schedule(long[start:end], 0) {
			if d.NodeID >= 0 && !d.NeedPreempt {
				if _, err := c.Place(d.Pod, d.NodeID, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, n := range c.Nodes() {
		if n.ReqSum().CPU > n.Capacity().CPU+1e-9 {
			t.Fatalf("Medea overcommitted requests: %v > %v", n.ReqSum().CPU, n.Capacity().CPU)
		}
	}
}

func TestMedeaShortPodsGreedy(t *testing.T) {
	c, w := testSetup(t, 4)
	m := NewMedea(c, 1)
	be := findPod(w, trace.SLOBE)
	d := m.Schedule([]*trace.Pod{be}, 0)[0]
	if d.NodeID < 0 {
		t.Errorf("short pod rejected on empty cluster: %v", d.Reason)
	}
}

func TestMedeaILPDeterministicUnderPipeline(t *testing.T) {
	// The ILP tier reserves through the shared pipeline ledger and reads
	// its host set from the indexed store; two identically-seeded runs over
	// the same batch stream must produce identical decision streams.
	run := func() []int {
		c, w := testSetup(t, 6)
		m := NewMedea(c, 1)
		var out []int
		for start := 0; start+20 <= 200; start += 20 {
			for _, d := range m.Schedule(w.Pods[start:start+20], 0) {
				out = append(out, d.NodeID)
				if d.NodeID >= 0 && !d.NeedPreempt {
					if _, err := c.Place(d.Pod, d.NodeID, 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			c.Tick(0, 30)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMedeaILPRespectsRestrictTo(t *testing.T) {
	// pickHosts draws from the pipeline's schedulable universe, so a
	// partitioned Medea must keep both tiers inside its partition.
	c, w := testSetup(t, 8)
	m := NewMedea(c, 1)
	part := []int{1, 3, 5, 7}
	m.RestrictTo(part)
	allowed := map[int]bool{1: true, 3: true, 5: true, 7: true}
	for _, d := range m.Schedule(w.Pods[:60], 0) {
		if d.NodeID >= 0 && !allowed[d.NodeID] {
			t.Fatalf("pod %d placed on node %d outside the partition", d.Pod.ID, d.NodeID)
		}
	}
}

func TestMedeaBudgetTermination(t *testing.T) {
	c, w := testSetup(t, 40)
	m := NewMedea(c, 1)
	m.NodeBudget = 100 // tiny budget must still terminate with a decision set
	var long []*trace.Pod
	for _, p := range w.Pods {
		if p.App().LongRunning() {
			long = append(long, p)
		}
		if len(long) == 15 {
			break
		}
	}
	ds := m.Schedule(long, 0)
	if len(ds) != len(long) {
		t.Fatalf("decisions %d != pods %d", len(ds), len(long))
	}
}
