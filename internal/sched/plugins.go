package sched

import (
	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/trace"
)

// A Kubernetes-style scheduling framework: composable PreFilter, Filter
// and Score plugins over the shared placement pipeline. The unified
// scheduling the paper studies is deployed on exactly this kind of plugin
// substrate (Alibaba's unified scheduler is Kubernetes-compatible), so the
// repository provides one both as a sixth comparison point and as the
// extension surface users would reach for first. The plugin interfaces are
// the pipeline's, re-exported.

// PreFilterPlugin rejects a pod before any node is considered.
type PreFilterPlugin = pipeline.PreFilterPlugin

// FilterPlugin vetoes hosts for a pod.
type FilterPlugin = pipeline.FilterPlugin

// ScorePlugin ranks an admissible host for a pod; higher is better.
type ScorePlugin = pipeline.ScorePlugin

// WeightedScore pairs a plugin with its weight.
type WeightedScore = pipeline.WeightedScore

// Framework is the plugin-driven scheduler: a named pipeline.Spec.
type Framework struct {
	*Base
	label string
	spec  pipeline.Spec
}

// NewFramework builds a plugin scheduler; add plugins before scheduling.
func NewFramework(c *cluster.Cluster, label string, seed int64) *Framework {
	if label == "" {
		label = "Framework"
	}
	return &Framework{Base: NewBase(c, seed), label: label, spec: pipeline.Spec{Preempt: true}}
}

// WithPreFilter appends a pre-filter plugin and returns the framework.
func (f *Framework) WithPreFilter(p PreFilterPlugin) *Framework {
	f.spec.Pre = append(f.spec.Pre, p)
	return f
}

// WithFilter appends a filter plugin and returns the framework.
func (f *Framework) WithFilter(p FilterPlugin) *Framework {
	f.spec.Filters = append(f.spec.Filters, p)
	return f
}

// WithScore appends a weighted score plugin and returns the framework.
func (f *Framework) WithScore(p ScorePlugin, weight float64) *Framework {
	f.spec.Scores = append(f.spec.Scores, WeightedScore{Plugin: p, Weight: weight})
	return f
}

// Name implements Scheduler.
func (f *Framework) Name() string { return f.label }

// Schedule implements Scheduler.
func (f *Framework) Schedule(pods []*trace.Pod, now int64) []Decision {
	f.BeginBatch()
	out := make([]Decision, len(pods))
	for i, p := range pods {
		out[i] = f.Select(p, &f.spec)
	}
	return out
}

// --- Stock plugins ---

// ValidRequest is a pod-level admissibility gate: a pod requesting nothing
// in both dimensions (a malformed spec) can never be meaningfully placed
// and is rejected before any node is scanned.
type ValidRequest struct{}

// PreFilterName implements PreFilterPlugin.
func (ValidRequest) PreFilterName() string { return "ValidRequest" }

// PreFilter implements PreFilterPlugin.
func (ValidRequest) PreFilter(p *trace.Pod) (Reason, bool) {
	if p.Request.CPU <= 0 && p.Request.Mem <= 0 {
		return ReasonOther, false
	}
	return ReasonNone, true
}

// ResourcesFit admits a pod when requests plus reservations fit the node's
// capacity scaled by MaxOvercommit (1.0 = no over-commitment, the
// kube-scheduler NodeResourcesFit default).
type ResourcesFit struct {
	MaxOvercommit float64
}

// FilterName implements FilterPlugin.
func (ResourcesFit) FilterName() string { return "ResourcesFit" }

// Filter implements FilterPlugin.
func (r ResourcesFit) Filter(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
	oc := r.MaxOvercommit
	if oc <= 0 {
		oc = 1
	}
	req := n.ReqSum().Add(resv).Add(p.Request)
	capc := n.Capacity().Scale(oc)
	return req.CPU <= capc.CPU, req.Mem <= capc.Mem
}

// MinHeadroom implements pipeline.HeadroomBounder: the request-based fit
// bounds static headroom in both dimensions.
func (r ResourcesFit) MinHeadroom(p *trace.Pod, minCap, maxCap trace.Resources) (trace.Resources, bool) {
	oc := r.MaxOvercommit
	if oc <= 0 {
		oc = 1
	}
	return trace.Resources{
		CPU: pipeline.OvercommitBound(p.Request.CPU, oc, minCap.CPU, maxCap.CPU),
		Mem: pipeline.OvercommitBound(p.Request.Mem, oc, minCap.Mem, maxCap.Mem),
	}, true
}

// UsageFit admits a pod when recent peak usage plus unmeasured and reserved
// requests fit a capacity margin — the usage-driven over-commitment filter.
// Usage moves with the workload, so it offers no static headroom bound.
type UsageFit struct {
	Margin float64 // fraction of capacity usable (default 0.9)
}

// FilterName implements FilterPlugin.
func (UsageFit) FilterName() string { return "UsageFit" }

// Filter implements FilterPlugin.
func (u UsageFit) Filter(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
	m := u.Margin
	if m <= 0 {
		m = 0.9
	}
	use := n.PeakUsage().Add(n.UnmeasuredReq()).Add(resv).Add(p.Request)
	capc := n.Capacity().Scale(m)
	return use.CPU <= capc.CPU, use.Mem <= capc.Mem
}

// LeastAllocated prefers emptier hosts (spreading) — the kube-scheduler
// default scoring.
type LeastAllocated struct{}

// ScoreName implements ScorePlugin.
func (LeastAllocated) ScoreName() string { return "LeastAllocated" }

// Score implements ScorePlugin.
func (LeastAllocated) Score(n *cluster.NodeState, p *trace.Pod) float64 {
	capc := n.Capacity()
	req := n.ReqSum()
	free := (capc.CPU-req.CPU)/capc.CPU + (capc.Mem-req.Mem)/capc.Mem
	return free / 2
}

// MostAllocated prefers fuller hosts (bin-packing), the consolidation
// profile.
type MostAllocated struct{}

// ScoreName implements ScorePlugin.
func (MostAllocated) ScoreName() string { return "MostAllocated" }

// Score implements ScorePlugin.
func (MostAllocated) Score(n *cluster.NodeState, p *trace.Pod) float64 {
	capc := n.Capacity()
	req := n.ReqSum()
	return (req.CPU/capc.CPU + req.Mem/capc.Mem) / 2
}

// BalancedAllocation penalizes hosts whose CPU and memory allocation would
// diverge after the placement, keeping both dimensions usable.
type BalancedAllocation struct{}

// ScoreName implements ScorePlugin.
func (BalancedAllocation) ScoreName() string { return "BalancedAllocation" }

// Score implements ScorePlugin.
func (BalancedAllocation) Score(n *cluster.NodeState, p *trace.Pod) float64 {
	capc := n.Capacity()
	req := n.ReqSum().Add(p.Request)
	cu := req.CPU / capc.CPU
	mu := req.Mem / capc.Mem
	d := cu - mu
	if d < 0 {
		d = -d
	}
	return 1 - d
}

// ReplicaSpread penalizes hosts already running replicas of the pod's
// application — soft anti-affinity.
type ReplicaSpread struct{}

// ScoreName implements ScorePlugin.
func (ReplicaSpread) ScoreName() string { return "ReplicaSpread" }

// Score implements ScorePlugin. The node maintains per-application counts
// incrementally, so this is O(distinct apps) rather than O(pods).
func (ReplicaSpread) Score(n *cluster.NodeState, p *trace.Pod) float64 {
	return -float64(n.AppPodCount(p.AppID))
}

// NewKubeLike assembles the kube-scheduler default profile: strict
// request-based fit, least-allocated spreading with balance and replica
// anti-affinity. It is the "what a stock Kubernetes cluster would do"
// comparison point.
func NewKubeLike(c *cluster.Cluster, seed int64) *Framework {
	return NewFramework(c, "Kube-like", seed).
		WithFilter(ResourcesFit{MaxOvercommit: 1}).
		WithScore(LeastAllocated{}, 1).
		WithScore(BalancedAllocation{}, 0.5).
		WithScore(ReplicaSpread{}, 10)
}
