package sched

import (
	"testing"

	"unisched/internal/trace"
)

func TestFrameworkFiltersCompose(t *testing.T) {
	c, w := testSetup(t, 4)
	f := NewFramework(c, "", 1).
		WithFilter(ResourcesFit{MaxOvercommit: 1}).
		WithFilter(UsageFit{Margin: 0.9})
	if f.Name() != "Framework" {
		t.Errorf("default name %q", f.Name())
	}
	d := f.Schedule([]*trace.Pod{w.Pods[0]}, 0)[0]
	if d.NodeID < 0 {
		t.Fatalf("empty cluster rejected pod: %v", d.Reason)
	}
	// Saturate node requests; ResourcesFit must veto.
	limit := 400
	if limit > len(w.Pods) {
		limit = len(w.Pods)
	}
	for _, p := range w.Pods[:limit] {
		d := f.Schedule([]*trace.Pod{p}, 0)[0]
		if d.NodeID < 0 || d.NeedPreempt {
			continue
		}
		if _, err := c.Place(p, d.NodeID, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range c.Nodes() {
		if n.ReqSum().CPU > n.Capacity().CPU+1e-9 {
			t.Fatalf("ResourcesFit let requests exceed capacity: %v", n.ReqSum().CPU)
		}
	}
}

func TestLeastVsMostAllocated(t *testing.T) {
	c, w := testSetup(t, 2)
	// Load node 0.
	for _, p := range w.Pods[:10] {
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	probe := w.Pods[len(w.Pods)-1]
	least := NewFramework(c, "least", 1).
		WithFilter(ResourcesFit{MaxOvercommit: 2}).
		WithScore(LeastAllocated{}, 1)
	most := NewFramework(c, "most", 1).
		WithFilter(ResourcesFit{MaxOvercommit: 2}).
		WithScore(MostAllocated{}, 1)
	if d := least.Schedule([]*trace.Pod{probe}, 0)[0]; d.NodeID != 1 {
		t.Errorf("LeastAllocated picked loaded node %d", d.NodeID)
	}
	if d := most.Schedule([]*trace.Pod{probe}, 0)[0]; d.NodeID != 0 {
		t.Errorf("MostAllocated picked empty node %d", d.NodeID)
	}
}

func TestBalancedAllocationPrefersEvenShape(t *testing.T) {
	c, w := testSetup(t, 2)
	// Skew node 0's allocation: CPU-heavy pods only.
	var skew *trace.Pod
	for _, p := range w.Pods {
		if p.Request.CPU > 2*p.Request.Mem {
			skew = p
			break
		}
	}
	if skew == nil {
		t.Skip("no cpu-heavy pod")
	}
	if _, err := c.Place(skew, 0, 0); err != nil {
		t.Fatal(err)
	}
	b := BalancedAllocation{}
	// Placing another CPU-heavy pod increases divergence on node 0.
	if b.Score(c.Node(0), skew) > b.Score(c.Node(1), skew) {
		t.Error("balanced allocation should penalize the skewed node")
	}
	if b.ScoreName() == "" || (LeastAllocated{}).ScoreName() == "" ||
		(MostAllocated{}).ScoreName() == "" || (ReplicaSpread{}).ScoreName() == "" {
		t.Error("unnamed score plugins")
	}
	if (ResourcesFit{}).FilterName() == "" || (UsageFit{}).FilterName() == "" {
		t.Error("unnamed filter plugins")
	}
}

func TestReplicaSpread(t *testing.T) {
	c, w := testSetup(t, 2)
	var a1, a2 *trace.Pod
	for _, p := range w.Pods {
		if a1 == nil {
			a1 = p
			continue
		}
		if p.AppID == a1.AppID {
			a2 = p
			break
		}
	}
	if a2 == nil {
		t.Skip("no app with two pods")
	}
	if _, err := c.Place(a1, 0, 0); err != nil {
		t.Fatal(err)
	}
	f := NewKubeLike(c, 1)
	d := f.Schedule([]*trace.Pod{a2}, 0)[0]
	if d.NodeID != 1 {
		t.Errorf("replica placed with its sibling on node %d", d.NodeID)
	}
}

func TestKubeLikeEndToEnd(t *testing.T) {
	c, w := testSetup(t, 8)
	k := NewKubeLike(c, 1)
	if k.Name() != "Kube-like" {
		t.Errorf("name %q", k.Name())
	}
	placed := 0
	limit := 200
	if limit > len(w.Pods) {
		limit = len(w.Pods)
	}
	for _, p := range w.Pods[:limit] {
		d := k.Schedule([]*trace.Pod{p}, 0)[0]
		if d.NodeID >= 0 && !d.NeedPreempt {
			if _, err := c.Place(p, d.NodeID, 0); err != nil {
				t.Fatal(err)
			}
			placed++
		}
		c.Tick(0, 30)
	}
	if placed == 0 {
		t.Fatal("Kube-like placed nothing")
	}
	// Strict request fit everywhere.
	for _, n := range c.Nodes() {
		r, _ := n.OvercommitRate()
		if r.CPU > 1+1e-9 || r.Mem > 1+1e-9 {
			t.Fatalf("Kube-like overcommitted: %+v", r)
		}
	}
}

func TestFrameworkNoPlugins(t *testing.T) {
	// A framework with no filters admits everywhere; no scores means ties,
	// resolved deterministically.
	c, w := testSetup(t, 3)
	f := NewFramework(c, "bare", 1)
	a := f.Schedule([]*trace.Pod{w.Pods[0]}, 0)[0]
	b := f.Schedule([]*trace.Pod{w.Pods[0]}, 0)[0]
	if a.NodeID < 0 || b.NodeID < 0 {
		t.Fatal("bare framework rejected a pod")
	}
}
