package sched

import (
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/trace"
)

// The admission filters and ranking scores run once per visited candidate
// inside the parallel scan — the scheduling hot path. Their Resources
// arithmetic is all value-typed chains (PeakUsage().Add(...).Add(...)), so
// a single call must not allocate; a regression that boxes one of them (a
// pointer receiver, an interface conversion, a slice-building accessor)
// would silently multiply per-decision allocations by the nodes visited.
func TestPluginHotPathAllocFree(t *testing.T) {
	cfg := trace.SmallConfig()
	cfg.NumNodes = 2
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	placed := 0
	for _, p := range w.Pods {
		if placed >= 12 {
			break
		}
		if _, err := c.Place(p, 0, 0); err == nil {
			placed++
		}
	}
	// Warm histories so the usage-based paths read real peaks.
	for i := 0; i < 5; i++ {
		c.Tick(int64(i)*trace.SampleInterval, float64(trace.SampleInterval))
	}
	n := c.Node(0)
	p := w.Pods[len(w.Pods)-1]
	resv := trace.Resources{CPU: 0.5, Mem: 1 << 28}

	filters := []pipeline.FilterPlugin{
		GuaranteedFit{},
		BEUsageFit{Ceil: 1.2},
		BEUsageFit{NoGuaranteedReserve: true},
		UsageFit{},
		ResourcesFit{MaxOvercommit: 1.1},
	}
	for _, f := range filters {
		f := f
		if avg := testing.AllocsPerRun(100, func() {
			f.Filter(n, p, resv)
		}); avg != 0 {
			t.Errorf("%s.Filter allocates %v per call, want 0", f.FilterName(), avg)
		}
	}

	scores := []pipeline.ScorePlugin{
		ReqAlignment{},
		UsageAlignment{},
		ReplicaSpread{},
		LeastAllocated{},
		MostAllocated{},
		BalancedAllocation{},
	}
	for _, s := range scores {
		s := s
		if avg := testing.AllocsPerRun(100, func() {
			s.Score(n, p)
		}); avg != 0 {
			t.Errorf("%s.Score allocates %v per call, want 0", s.ScoreName(), avg)
		}
	}
}
