package sched

import (
	"sort"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// Medea reproduces the two-scheduler design of Garefalakis et al. (§5.1):
// long-running pods are placed by an ILP-style exact optimizer over a
// bounded sub-problem (at most MaxHosts candidate hosts and MaxPods pods
// per batch, solved by branch-and-bound), while short-running pods go
// through a traditional low-latency greedy scheduler.
type Medea struct {
	*Base
	short *PredictorScheduler

	// MaxHosts bounds the ILP's host set (the evaluation uses 40).
	MaxHosts int
	// MaxPods bounds the ILP batch size (the evaluation uses 15).
	MaxPods int
	// NodeBudget caps explored branch-and-bound states per batch so the
	// solver stays real-time even on adversarial instances.
	NodeBudget int
}

// NewMedea builds Medea with the paper's sub-problem bounds.
func NewMedea(c *cluster.Cluster, seed int64) *Medea {
	return &Medea{
		Base:       NewBase(c, seed),
		short:      NewBorgLike(c, seed+1),
		MaxHosts:   40,
		MaxPods:    15,
		NodeBudget: 200000,
	}
}

// Name implements Scheduler.
func (m *Medea) Name() string { return "Medea" }

// Schedule implements Scheduler.
func (m *Medea) Schedule(pods []*trace.Pod, now int64) []Decision {
	m.BeginBatch()
	m.short.resv = m.resv // unify the reservation ledger across both tiers
	out := make([]Decision, len(pods))
	var longIdx []int
	for i, p := range pods {
		if p.App().LongRunning() {
			longIdx = append(longIdx, i)
		} else {
			out[i] = m.short.Greedy(p, m.Candidates(p), m.short.admit, m.short.score)
		}
	}
	// Long-running pods in ILP batches.
	for start := 0; start < len(longIdx); start += m.MaxPods {
		end := start + m.MaxPods
		if end > len(longIdx) {
			end = len(longIdx)
		}
		batch := make([]*trace.Pod, 0, end-start)
		for _, i := range longIdx[start:end] {
			batch = append(batch, pods[i])
		}
		decisions := m.solveBatch(batch)
		for k, i := range longIdx[start:end] {
			out[i] = decisions[k]
		}
	}
	return out
}

// solveBatch places a batch of long-running pods on the MaxHosts candidate
// hosts with the most free requestable capacity, maximizing the number of
// placed pods (ties broken by total alignment) subject to request-based
// capacity constraints.
func (m *Medea) solveBatch(batch []*trace.Pod) []Decision {
	hosts := m.pickHosts()
	free := make([]trace.Resources, len(hosts))
	loads := make([]trace.Resources, len(hosts))
	for i, id := range hosts {
		n := m.Cluster.Node(id)
		free[i] = n.Capacity().Sub(n.ReqSum()).Sub(m.Reserved(id))
		loads[i] = n.ReqSum()
	}

	s := &bbState{
		medea: m,
		batch: batch,
		hosts: hosts,
		free:  free,
		loads: loads,
		cur:   make([]int, len(batch)),
		best:  make([]int, len(batch)),
	}
	for i := range s.best {
		s.best[i] = -1
	}
	s.bestPlaced = -1
	s.search(0, 0, 0)

	out := make([]Decision, len(batch))
	for i, p := range batch {
		hi := s.best[i]
		if hi < 0 {
			out[i] = m.classify(p)
			continue
		}
		m.Reserve(hosts[hi], p)
		out[i] = Decision{Pod: p, NodeID: hosts[hi], Score: alignment(loads[hi], p)}
	}
	return out
}

// classify explains an unplaced pod using the shared reason taxonomy.
func (m *Medea) classify(p *trace.Pod) Decision {
	cpuBlock, memBlock := 0, 0
	for _, id := range m.Candidates(p) {
		n := m.Cluster.Node(id)
		req := n.ReqSum().Add(m.Reserved(id)).Add(p.Request)
		capc := n.Capacity()
		if req.CPU > capc.CPU {
			cpuBlock++
		}
		if req.Mem > capc.Mem {
			memBlock++
		}
	}
	d := Decision{Pod: p, NodeID: -1}
	switch {
	case cpuBlock > 0 && memBlock > 0:
		d.Reason = ReasonCPUMem
	case cpuBlock > 0:
		d.Reason = ReasonCPU
	case memBlock > 0:
		d.Reason = ReasonMem
	default:
		// The batch solver gave the room to other pods; retry next round.
		d.Reason = ReasonOther
	}
	if p.SLO == trace.SLOLSR {
		if id, ok := m.PreemptTarget(p, m.Candidates(p)); ok {
			m.Reserve(id, p)
			return Decision{Pod: p, NodeID: id, NeedPreempt: true, Reason: ReasonNone}
		}
	}
	return d
}

// pickHosts selects the MaxHosts candidates with the most free CPU+memory
// request headroom (net of this batch's reservations).
func (m *Medea) pickHosts() []int {
	type hv struct {
		id   int
		head float64
	}
	all := make([]hv, 0, len(m.Cluster.Nodes()))
	for _, n := range m.Cluster.Nodes() {
		if !n.Schedulable() {
			continue
		}
		f := n.Capacity().Sub(n.ReqSum()).Sub(m.Reserved(n.Node.ID))
		all = append(all, hv{n.Node.ID, f.CPU + f.Mem})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].head > all[b].head })
	k := m.MaxHosts
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// bbState is the branch-and-bound search over batch placements.
type bbState struct {
	medea *Medea
	batch []*trace.Pod
	hosts []int
	free  []trace.Resources
	loads []trace.Resources

	cur        []int // current assignment (-1 = unplaced)
	best       []int
	bestPlaced int
	bestScore  float64
	explored   int
}

func (s *bbState) search(idx, placed int, score float64) {
	if s.explored >= s.medea.NodeBudget {
		return
	}
	s.explored++
	if idx == len(s.batch) {
		if placed > s.bestPlaced || (placed == s.bestPlaced && score > s.bestScore) {
			s.bestPlaced = placed
			s.bestScore = score
			copy(s.best, s.cur)
		}
		return
	}
	// Bound: even placing every remaining pod cannot beat the incumbent.
	if placed+(len(s.batch)-idx) < s.bestPlaced {
		return
	}
	p := s.batch[idx]
	aff := p.App().Affinity
	for hi := range s.hosts {
		if aff >= 0 && s.medea.Cluster.Node(s.hosts[hi]).Node.Group != aff {
			continue
		}
		if !p.Request.FitsIn(s.free[hi]) {
			continue
		}
		s.free[hi] = s.free[hi].Sub(p.Request)
		s.cur[idx] = hi
		s.search(idx+1, placed+1, score+alignment(s.loads[hi], p))
		s.free[hi] = s.free[hi].Add(p.Request)
	}
	// Unplaced branch.
	s.cur[idx] = -1
	s.search(idx+1, placed, score)
}
