package sched

import (
	"sort"

	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/predictor"
	"unisched/internal/trace"
)

// Medea reproduces the two-scheduler design of Garefalakis et al. (§5.1):
// long-running pods are placed by an ILP-style exact optimizer over a
// bounded sub-problem (at most MaxHosts candidate hosts and MaxPods pods
// per batch, solved by branch-and-bound), while short-running pods go
// through a traditional low-latency greedy scheduler — here a Borg-style
// plugin set on the shared pipeline. Both tiers reserve through the same
// pipeline ledger, so their in-batch decisions stack correctly.
type Medea struct {
	*Base
	// shortPr predicts host usage for the short-pod tier (Borg default).
	shortPr predictor.Predictor

	// MaxHosts bounds the ILP's host set (the evaluation uses 40).
	MaxHosts int
	// MaxPods bounds the ILP batch size (the evaluation uses 15).
	MaxPods int
	// NodeBudget caps explored branch-and-bound states per batch so the
	// solver stays real-time even on adversarial instances.
	NodeBudget int
}

// NewMedea builds Medea with the paper's sub-problem bounds.
func NewMedea(c *cluster.Cluster, seed int64) *Medea {
	return &Medea{
		Base:       NewBase(c, seed),
		shortPr:    predictor.NewBorgDefault(),
		MaxHosts:   40,
		MaxPods:    15,
		NodeBudget: 200000,
	}
}

// Name implements Scheduler.
func (m *Medea) Name() string { return "Medea" }

// Schedule implements Scheduler.
func (m *Medea) Schedule(pods []*trace.Pod, now int64) []Decision {
	m.BeginBatch()
	short := &pipeline.Spec{
		Filters: []pipeline.FilterPlugin{PredictedFit{Pr: m.shortPr, CapFactor: 1}},
		Scores:  []pipeline.WeightedScore{{Plugin: PredictedAlignment{Pr: m.shortPr}, Weight: 1}},
		Preempt: true,
	}
	// fit mirrors the ILP's request-based capacity constraint; Explain uses
	// it to classify pods the batch solver left unplaced.
	fit := &pipeline.Spec{Filters: []pipeline.FilterPlugin{GuaranteedFit{}}}

	out := make([]Decision, len(pods))
	var longIdx []int
	for i, p := range pods {
		if p.App().LongRunning() {
			longIdx = append(longIdx, i)
		} else {
			out[i] = m.Select(p, short)
		}
	}
	// Long-running pods in ILP batches.
	for start := 0; start < len(longIdx); start += m.MaxPods {
		end := start + m.MaxPods
		if end > len(longIdx) {
			end = len(longIdx)
		}
		batch := make([]*trace.Pod, 0, end-start)
		for _, i := range longIdx[start:end] {
			batch = append(batch, pods[i])
		}
		decisions := m.solveBatch(batch, fit)
		for k, i := range longIdx[start:end] {
			out[i] = decisions[k]
		}
	}
	return out
}

// solveBatch places a batch of long-running pods on the MaxHosts candidate
// hosts with the most free requestable capacity, maximizing the number of
// placed pods (ties broken by total alignment) subject to request-based
// capacity constraints.
func (m *Medea) solveBatch(batch []*trace.Pod, fit *pipeline.Spec) []Decision {
	hosts := m.pickHosts()
	free := make([]trace.Resources, len(hosts))
	loads := make([]trace.Resources, len(hosts))
	for i, id := range hosts {
		n := m.Cluster.Node(id)
		free[i] = n.Capacity().Sub(n.ReqSum()).Sub(m.Reserved(id))
		loads[i] = n.ReqSum()
	}

	s := &bbState{
		medea: m,
		batch: batch,
		hosts: hosts,
		free:  free,
		loads: loads,
		cur:   make([]int, len(batch)),
		best:  make([]int, len(batch)),
	}
	for i := range s.best {
		s.best[i] = -1
	}
	s.bestPlaced = -1
	s.search(0, 0, 0)

	out := make([]Decision, len(batch))
	for i, p := range batch {
		hi := s.best[i]
		if hi < 0 {
			out[i] = m.classify(p, fit)
			continue
		}
		m.Reserve(hosts[hi], p)
		out[i] = Decision{Pod: p, NodeID: hosts[hi], Score: alignment(loads[hi], p)}
	}
	return out
}

// classify explains a pod the batch solver left unplaced, using the
// pipeline's shared reason taxonomy and LSR preemption fallback.
func (m *Medea) classify(p *trace.Pod, fit *pipeline.Spec) Decision {
	d := Decision{Pod: p, NodeID: -1, Reason: m.Pipeline().Explain(p, fit)}
	if p.SLO == trace.SLOLSR {
		if id, ok := m.PreemptTarget(p, m.Candidates(p)); ok {
			m.Reserve(id, p)
			return Decision{Pod: p, NodeID: id, NeedPreempt: true, Reason: ReasonNone}
		}
	}
	return d
}

// pickHosts selects the MaxHosts candidates with the most free CPU+memory
// request headroom (net of this batch's reservations) from the pipeline's
// schedulable universe — which also respects RestrictTo partitions.
func (m *Medea) pickHosts() []int {
	type hv struct {
		id   int
		head float64
	}
	universe := m.Pipeline().Index().Universe()
	all := make([]hv, 0, len(universe))
	for _, id := range universe {
		n := m.Cluster.Node(id)
		f := n.Capacity().Sub(n.ReqSum()).Sub(m.Reserved(id))
		all = append(all, hv{id, f.CPU + f.Mem})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].head > all[b].head })
	k := m.MaxHosts
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// bbState is the branch-and-bound search over batch placements.
type bbState struct {
	medea *Medea
	batch []*trace.Pod
	hosts []int
	free  []trace.Resources
	loads []trace.Resources

	cur        []int // current assignment (-1 = unplaced)
	best       []int
	bestPlaced int
	bestScore  float64
	explored   int
}

func (s *bbState) search(idx, placed int, score float64) {
	if s.explored >= s.medea.NodeBudget {
		return
	}
	s.explored++
	if idx == len(s.batch) {
		if placed > s.bestPlaced || (placed == s.bestPlaced && score > s.bestScore) {
			s.bestPlaced = placed
			s.bestScore = score
			copy(s.best, s.cur)
		}
		return
	}
	// Bound: even placing every remaining pod cannot beat the incumbent.
	if placed+(len(s.batch)-idx) < s.bestPlaced {
		return
	}
	p := s.batch[idx]
	aff := p.App().Affinity
	for hi := range s.hosts {
		if aff >= 0 && s.medea.Cluster.Node(s.hosts[hi]).Node.Group != aff {
			continue
		}
		if !p.Request.FitsIn(s.free[hi]) {
			continue
		}
		s.free[hi] = s.free[hi].Sub(p.Request)
		s.cur[idx] = hi
		s.search(idx+1, placed+1, score+alignment(s.loads[hi], p))
		s.free[hi] = s.free[hi].Add(p.Request)
	}
	// Unplaced branch.
	s.cur[idx] = -1
	s.search(idx+1, placed, score)
}
