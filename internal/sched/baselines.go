package sched

import (
	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/predictor"
	"unisched/internal/trace"
)

// --- Plugins implementing the production admission/scoring policies ---

// GuaranteedFit is the conservative guaranteed-class admission (§3.2):
// requests plus reservations must fit physical capacity in both
// dimensions — no over-commitment.
type GuaranteedFit struct{}

// FilterName implements pipeline.FilterPlugin.
func (GuaranteedFit) FilterName() string { return "GuaranteedFit" }

// Filter implements pipeline.FilterPlugin.
func (GuaranteedFit) Filter(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
	req := n.ReqSum().Add(resv).Add(p.Request)
	capc := n.Capacity()
	return req.CPU <= capc.CPU, req.Mem <= capc.Mem
}

// MinHeadroom implements pipeline.HeadroomBounder: a node whose static
// headroom is below the pod's request in either dimension cannot pass the
// no-over-commit test.
func (GuaranteedFit) MinHeadroom(p *trace.Pod, _, _ trace.Resources) (trace.Resources, bool) {
	return p.Request, true
}

// ReqAlignment is the production multi-resource packing score: alignment
// of the pod's request with the host's request load (§3.2).
type ReqAlignment struct{}

// ScoreName implements pipeline.ScorePlugin.
func (ReqAlignment) ScoreName() string { return "ReqAlignment" }

// Score implements pipeline.ScorePlugin.
func (ReqAlignment) Score(n *cluster.NodeState, p *trace.Pod) float64 {
	return alignment(n.ReqSum(), p)
}

// UsageAlignment scores by alignment with the host's last observed usage —
// the aggressive BE packing signal.
type UsageAlignment struct{}

// ScoreName implements pipeline.ScorePlugin.
func (UsageAlignment) ScoreName() string { return "UsageAlignment" }

// Score implements pipeline.ScorePlugin.
func (UsageAlignment) Score(n *cluster.NodeState, p *trace.Pod) float64 {
	return alignment(n.LastUsage(), p)
}

// BEUsageFit is the §3.2 production BE admission policy: the guaranteed
// classes' requests are a hard reservation ("hardly over-commits when
// scheduling LS pods" — their unused request capacity is NOT given away),
// and best-effort pods over-commit only the leftover, against their own
// observed usage. This is exactly why BE pods wait 100+ seconds while
// hosts sit at ~30 % utilization (Fig. 8, Fig. 9b) — the waste Optum
// exists to reclaim.
type BEUsageFit struct {
	// Ceil caps a host's request over-commitment rate when admitting BE
	// pods (<= 0 disables the cap).
	Ceil float64
	// NoGuaranteedReserve admits BE against total observed usage instead of
	// reserving guaranteed requests — the Section-3 characterization
	// variant.
	NoGuaranteedReserve bool
}

// FilterName implements pipeline.FilterPlugin.
func (BEUsageFit) FilterName() string { return "BEUsageFit" }

// Filter implements pipeline.FilterPlugin.
func (f BEUsageFit) Filter(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
	base := n.GuaranteedReq().Add(n.BEPeakUsage())
	if f.NoGuaranteedReserve {
		base = n.PeakUsage()
	}
	load := base.Add(n.UnmeasuredReq()).Add(resv).Add(p.Request)
	req := n.ReqSum().Add(resv).Add(p.Request)
	full := n.Capacity()
	cpuOK := load.CPU <= 0.9*full.CPU
	if f.Ceil > 0 {
		cpuOK = cpuOK && req.CPU <= f.Ceil*full.CPU
	}
	// Memory: conservative — requests must fit capacity, because an
	// OOM kills every pod on the host (Fig. 5b: memory is almost
	// never over-committed in production).
	memOK := req.Mem <= full.Mem
	return cpuOK, memOK
}

// MinHeadroom implements pipeline.HeadroomBounder. Memory admission is
// request-based with no over-commit, so the memory request bounds it; CPU
// is usage-based, so only the over-commit ceiling (when enabled) yields a
// static bound.
func (f BEUsageFit) MinHeadroom(p *trace.Pod, minCap, maxCap trace.Resources) (trace.Resources, bool) {
	h := trace.Resources{Mem: p.Request.Mem}
	if f.Ceil > 0 {
		h.CPU = pipeline.OvercommitBound(p.Request.CPU, f.Ceil, minCap.CPU, maxCap.CPU)
	}
	return h, true
}

// lsEval is the fused per-node evaluation of the production guaranteed-
// class path: GuaranteedFit admission, replica-spread-dominated scoring
// with alignment tie-break. One interface call per visited node instead of
// three, with the request sum fetched once — the scan is the engine's
// hottest loop, and the fusion is bit-identical to the unfused plugin
// stack (same operations in the same order), which the fixed-seed
// equivalence tests pin.
type lsEval struct{}

// EvalName implements pipeline.EvalPlugin.
func (lsEval) EvalName() string { return "GuaranteedFit+Spread+Align" }

// Evaluate implements pipeline.EvalPlugin. The score is exactly
// 1e6*ReplicaSpread + 1*ReqAlignment, computed in the weighted-sum order
// Spec.evaluate uses for the unfused spec.
func (lsEval) Evaluate(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (float64, bool, bool) {
	rs := n.ReqSum()
	req := rs.Add(resv).Add(p.Request)
	capc := n.Capacity()
	cpuOK := req.CPU <= capc.CPU
	memOK := req.Mem <= capc.Mem
	if !cpuOK || !memOK {
		return 0, cpuOK, memOK
	}
	score := 1e6 * -float64(n.AppPodCount(p.AppID))
	score += p.Request.Dot(rs)
	return score, true, true
}

// MinHeadroom implements pipeline.HeadroomBounder, identical to
// GuaranteedFit's bound.
func (lsEval) MinHeadroom(p *trace.Pod, _, _ trace.Resources) (trace.Resources, bool) {
	return p.Request, true
}

// beEval is the fused best-effort evaluation: BEUsageFit admission with
// usage-alignment scoring, one call per node.
type beEval struct {
	fit BEUsageFit
}

// EvalName implements pipeline.EvalPlugin.
func (beEval) EvalName() string { return "BEUsageFit+UsageAlign" }

// Evaluate implements pipeline.EvalPlugin.
func (e beEval) Evaluate(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (float64, bool, bool) {
	cpuOK, memOK := e.fit.Filter(n, p, resv)
	if !cpuOK || !memOK {
		return 0, cpuOK, memOK
	}
	return alignment(n.LastUsage(), p), true, true
}

// MinHeadroom implements pipeline.HeadroomBounder, delegating to
// BEUsageFit's bound.
func (e beEval) MinHeadroom(p *trace.Pod, minCap, maxCap trace.Resources) (trace.Resources, bool) {
	return e.fit.MinHeadroom(p, minCap, maxCap)
}

// PredictedFit admits a pod when a usage predictor's host estimate plus
// the pod's request fits a capacity budget — the admission shared by the
// predictor-driven baselines (§5.1).
type PredictedFit struct {
	Pr predictor.Predictor
	// CapFactor scales capacity in the admission test (Resource Central
	// uses 0.8).
	CapFactor float64
	// MaxOvercommit bounds the request over-commit ratio (<= 0 disables;
	// Resource Central uses 1.2).
	MaxOvercommit float64
}

// FilterName implements pipeline.FilterPlugin.
func (PredictedFit) FilterName() string { return "PredictedFit" }

// Filter implements pipeline.FilterPlugin.
func (f PredictedFit) Filter(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
	capc := n.Capacity().Scale(f.CapFactor)
	load := predictedLoad(f.Pr, n).Add(resv)
	cpuOK := load.CPU+p.Request.CPU <= capc.CPU
	memOK := load.Mem+p.Request.Mem <= capc.Mem
	if f.MaxOvercommit > 0 {
		req := n.ReqSum().Add(resv).Add(p.Request)
		full := n.Capacity()
		cpuOK = cpuOK && req.CPU <= f.MaxOvercommit*full.CPU
		memOK = memOK && req.Mem <= f.MaxOvercommit*full.Mem
	}
	return cpuOK, memOK
}

// MinHeadroom implements pipeline.HeadroomBounder. The prediction-based
// test has no static-headroom bound (predictions move with usage), but the
// request over-commit cap, when enabled, does.
func (f PredictedFit) MinHeadroom(p *trace.Pod, minCap, maxCap trace.Resources) (trace.Resources, bool) {
	if f.MaxOvercommit <= 0 {
		return trace.Resources{}, false
	}
	return trace.Resources{
		CPU: pipeline.OvercommitBound(p.Request.CPU, f.MaxOvercommit, minCap.CPU, maxCap.CPU),
		Mem: pipeline.OvercommitBound(p.Request.Mem, f.MaxOvercommit, minCap.Mem, maxCap.Mem),
	}, true
}

// PredictedAlignment scores by alignment with the predictor's host load
// estimate.
type PredictedAlignment struct {
	Pr predictor.Predictor
}

// ScoreName implements pipeline.ScorePlugin.
func (PredictedAlignment) ScoreName() string { return "PredictedAlignment" }

// Score implements pipeline.ScorePlugin.
func (s PredictedAlignment) Score(n *cluster.NodeState, p *trace.Pod) float64 {
	return alignment(predictedLoad(s.Pr, n), p)
}

// --- Baseline schedulers as plugin sets ---

// AlibabaLike reproduces the production unified scheduler the paper
// characterizes (§3.2): alignment-score host ranking with a conservative
// over-commitment policy for LS/LSR pods (admission against request sums)
// and an aggressive one for BE pods (admission against last-interval actual
// usage). It is the baseline every evaluation figure normalizes against.
type AlibabaLike struct {
	*Base
	// BEOvercommitCeil caps a host's request over-commitment rate when
	// admitting BE pods. The trace shows hosts over-committed up to ~4x
	// but with P(rate > 1) ≈ 0.25-0.4 (Fig. 5a) and BE pods waiting 100+
	// seconds despite ~30 % utilization (Fig. 8) — the production
	// scheduler gates BE on requests as well as observed usage.
	BEOvercommitCeil float64
	// NoGuaranteedReserve drops the hard reservation of guaranteed-class
	// requests from BE admission: best-effort pods are then admitted
	// against total observed usage. The Section-3 characterization study
	// uses this aggressive variant so hosts reach the near-100 % peaks the
	// production trace shows (Fig. 4b); the evaluation baseline keeps the
	// reservation, per §3.2.
	NoGuaranteedReserve bool

	// lsSpec and beSpec are built once and their tunable plugin refreshed
	// per batch, so scheduling a batch allocates no plugin machinery.
	lsSpec, beSpec *pipeline.Spec
}

// NewAlibabaLike builds the scheduler over a cluster.
func NewAlibabaLike(c *cluster.Cluster, seed int64) *AlibabaLike {
	return &AlibabaLike{Base: NewBase(c, seed), BEOvercommitCeil: 1.3}
}

// Name implements Scheduler.
func (s *AlibabaLike) Name() string { return "Alibaba" }

// Schedule implements Scheduler. The specs are cached; the BE admission
// plugin is refreshed per batch so tunable fields (BEOvercommitCeil,
// NoGuaranteedReserve) read current values.
func (s *AlibabaLike) Schedule(pods []*trace.Pod, now int64) []Decision {
	s.BeginBatch()
	if s.lsSpec == nil {
		// Replica anti-affinity dominates the guaranteed-class score:
		// long-running service replicas spread across failure domains, the
		// reliability-first policy of production LS schedulers (and a root
		// cause of the low baseline utilization the paper measures).
		// Alignment packing breaks ties. Both paths run as fused Eval
		// plugins — bit-identical to the GuaranteedFit/ReplicaSpread/
		// ReqAlignment and BEUsageFit/UsageAlignment stacks they fold, one
		// plugin call per visited node instead of three.
		s.lsSpec = &pipeline.Spec{Eval: lsEval{}, Preempt: true}
		s.beSpec = &pipeline.Spec{Preempt: true}
	}
	s.beSpec.Eval = beEval{fit: BEUsageFit{Ceil: s.BEOvercommitCeil, NoGuaranteedReserve: s.NoGuaranteedReserve}}
	out := make([]Decision, len(pods))
	for i, p := range pods {
		if p.SLO.LatencySensitive() || p.SLO == trace.SLOSystem {
			out[i] = s.Select(p, s.lsSpec)
		} else {
			out[i] = s.Select(p, s.beSpec)
		}
	}
	return out
}

// PredictorScheduler is the family of §5.1 baselines that differ only in
// their host-usage predictor: admit a pod when the prediction plus the
// pod's request fits a capacity budget, rank hosts by alignment with the
// predicted load.
type PredictorScheduler struct {
	*Base
	label string
	pr    predictor.Predictor
	// CapFactor scales capacity in the admission test (Resource Central
	// uses 0.8).
	CapFactor float64
	// MaxOvercommit bounds the request over-commit ratio (<= 0 disables;
	// Resource Central uses 1.2).
	MaxOvercommit float64

	// cached is the plugin spec, built once and its admission filter
	// refreshed per batch so tuning changes still take effect.
	cached *pipeline.Spec
}

// NewBorgLike returns the Borg-like baseline: prediction = 0.9 x requests.
func NewBorgLike(c *cluster.Cluster, seed int64) *PredictorScheduler {
	return &PredictorScheduler{
		Base: NewBase(c, seed), label: "Borg-like",
		pr: predictor.NewBorgDefault(), CapFactor: 1,
	}
}

// NewNSigma returns the N-sigma baseline: Gaussian mean + 5 sigma bound.
func NewNSigma(c *cluster.Cluster, seed int64) *PredictorScheduler {
	return &PredictorScheduler{
		Base: NewBase(c, seed), label: "N-sigma",
		pr: predictor.NewNSigma(), CapFactor: 1,
	}
}

// NewRCLike returns the Resource-Central-like baseline: per-pod p99 sums
// against 0.8 capacity with a 1.2 over-commit cap (§5.1).
func NewRCLike(c *cluster.Cluster, seed int64) *PredictorScheduler {
	return &PredictorScheduler{
		Base: NewBase(c, seed), label: "RC-like",
		pr: predictor.ResourceCentral{}, CapFactor: 0.8, MaxOvercommit: 1.2,
	}
}

// Name implements Scheduler.
func (s *PredictorScheduler) Name() string { return s.label }

// spec declares the scheduler's plugin set from its current tuning. The
// spec struct is reused across batches; only the admission filter carries
// tunable fields and is rebuilt on each call.
func (s *PredictorScheduler) spec() *pipeline.Spec {
	if s.cached == nil {
		s.cached = &pipeline.Spec{
			Filters: []pipeline.FilterPlugin{nil},
			Scores:  []pipeline.WeightedScore{{Plugin: PredictedAlignment{Pr: s.pr}, Weight: 1}},
			Preempt: true,
		}
	}
	s.cached.Filters[0] = PredictedFit{Pr: s.pr, CapFactor: s.CapFactor, MaxOvercommit: s.MaxOvercommit}
	return s.cached
}

// Schedule implements Scheduler.
func (s *PredictorScheduler) Schedule(pods []*trace.Pod, now int64) []Decision {
	s.BeginBatch()
	sp := s.spec()
	out := make([]Decision, len(pods))
	for i, p := range pods {
		out[i] = s.Select(p, sp)
	}
	return out
}
