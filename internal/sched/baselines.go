package sched

import (
	"unisched/internal/cluster"
	"unisched/internal/predictor"
	"unisched/internal/trace"
)

// AlibabaLike reproduces the production unified scheduler the paper
// characterizes (§3.2): alignment-score host ranking with a conservative
// over-commitment policy for LS/LSR pods (admission against request sums)
// and an aggressive one for BE pods (admission against last-interval actual
// usage). It is the baseline every evaluation figure normalizes against.
type AlibabaLike struct {
	*Base
	// BEOvercommitCeil caps a host's request over-commitment rate when
	// admitting BE pods. The trace shows hosts over-committed up to ~4x
	// but with P(rate > 1) ≈ 0.25-0.4 (Fig. 5a) and BE pods waiting 100+
	// seconds despite ~30 % utilization (Fig. 8) — the production
	// scheduler gates BE on requests as well as observed usage.
	BEOvercommitCeil float64
	// NoGuaranteedReserve drops the hard reservation of guaranteed-class
	// requests from BE admission: best-effort pods are then admitted
	// against total observed usage. The Section-3 characterization study
	// uses this aggressive variant so hosts reach the near-100 % peaks the
	// production trace shows (Fig. 4b); the evaluation baseline keeps the
	// reservation, per §3.2.
	NoGuaranteedReserve bool
}

// NewAlibabaLike builds the scheduler over a cluster.
func NewAlibabaLike(c *cluster.Cluster, seed int64) *AlibabaLike {
	return &AlibabaLike{Base: NewBase(c, seed), BEOvercommitCeil: 1.3}
}

// Name implements Scheduler.
func (s *AlibabaLike) Name() string { return "Alibaba" }

// Schedule implements Scheduler.
func (s *AlibabaLike) Schedule(pods []*trace.Pod, now int64) []Decision {
	s.BeginBatch()
	out := make([]Decision, len(pods))
	for i, p := range pods {
		out[i] = s.one(p)
	}
	return out
}

func (s *AlibabaLike) one(p *trace.Pod) Decision {
	cands := s.Candidates(p)
	if p.SLO.LatencySensitive() || p.SLO == trace.SLOSystem {
		// Conservative: requests must fit physical capacity.
		admit := func(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
			req := n.ReqSum().Add(resv).Add(p.Request)
			capc := n.Capacity()
			return req.CPU <= capc.CPU, req.Mem <= capc.Mem
		}
		// Replica anti-affinity dominates: long-running service replicas
		// spread across failure domains, the reliability-first policy of
		// production LS schedulers (and a root cause of the low baseline
		// utilization the paper measures). Alignment packing breaks ties.
		score := func(n *cluster.NodeState, p *trace.Pod) float64 {
			replicas := 0
			for _, ps := range n.Pods() {
				if ps.Pod.AppID == p.AppID {
					replicas++
				}
			}
			return -1e6*float64(replicas) + alignment(n.ReqSum(), p)
		}
		return s.Greedy(p, cands, admit, score)
	}
	// BE admission, the §3.2 production policy: the guaranteed classes'
	// requests are a hard reservation ("hardly over-commits when
	// scheduling LS pods" — their unused request capacity is NOT given
	// away), and best-effort pods over-commit only the leftover, against
	// their own observed usage. This is exactly why BE pods wait 100+
	// seconds while hosts sit at ~30 % utilization (Fig. 8, Fig. 9b) — the
	// waste Optum exists to reclaim.
	admit := func(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
		base := n.GuaranteedReq().Add(n.BEPeakUsage())
		if s.NoGuaranteedReserve {
			base = n.PeakUsage()
		}
		load := base.Add(n.UnmeasuredReq()).Add(resv).Add(p.Request)
		req := n.ReqSum().Add(resv).Add(p.Request)
		full := n.Capacity()
		cpuOK := load.CPU <= 0.9*full.CPU
		if s.BEOvercommitCeil > 0 {
			cpuOK = cpuOK && req.CPU <= s.BEOvercommitCeil*full.CPU
		}
		// Memory: conservative — requests must fit capacity, because an
		// OOM kills every pod on the host (Fig. 5b: memory is almost
		// never over-committed in production).
		memOK := req.Mem <= full.Mem
		return cpuOK, memOK
	}
	score := func(n *cluster.NodeState, p *trace.Pod) float64 {
		return alignment(n.LastUsage(), p)
	}
	return s.Greedy(p, cands, admit, score)
}

// PredictorScheduler is the family of §5.1 baselines that differ only in
// their host-usage predictor: admit a pod when the prediction plus the
// pod's request fits a capacity budget, rank hosts by alignment with the
// predicted load.
type PredictorScheduler struct {
	*Base
	label string
	pr    predictor.Predictor
	// CapFactor scales capacity in the admission test (Resource Central
	// uses 0.8).
	CapFactor float64
	// MaxOvercommit bounds the request over-commit ratio (<= 0 disables;
	// Resource Central uses 1.2).
	MaxOvercommit float64
}

// NewBorgLike returns the Borg-like baseline: prediction = 0.9 x requests.
func NewBorgLike(c *cluster.Cluster, seed int64) *PredictorScheduler {
	return &PredictorScheduler{
		Base: NewBase(c, seed), label: "Borg-like",
		pr: predictor.NewBorgDefault(), CapFactor: 1,
	}
}

// NewNSigma returns the N-sigma baseline: Gaussian mean + 5 sigma bound.
func NewNSigma(c *cluster.Cluster, seed int64) *PredictorScheduler {
	return &PredictorScheduler{
		Base: NewBase(c, seed), label: "N-sigma",
		pr: predictor.NewNSigma(), CapFactor: 1,
	}
}

// NewRCLike returns the Resource-Central-like baseline: per-pod p99 sums
// against 0.8 capacity with a 1.2 over-commit cap (§5.1).
func NewRCLike(c *cluster.Cluster, seed int64) *PredictorScheduler {
	return &PredictorScheduler{
		Base: NewBase(c, seed), label: "RC-like",
		pr: predictor.ResourceCentral{}, CapFactor: 0.8, MaxOvercommit: 1.2,
	}
}

// Name implements Scheduler.
func (s *PredictorScheduler) Name() string { return s.label }

// Schedule implements Scheduler.
func (s *PredictorScheduler) Schedule(pods []*trace.Pod, now int64) []Decision {
	s.BeginBatch()
	out := make([]Decision, len(pods))
	for i, p := range pods {
		out[i] = s.Greedy(p, s.Candidates(p), s.admit, s.score)
	}
	return out
}

func (s *PredictorScheduler) admit(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
	capc := n.Capacity().Scale(s.CapFactor)
	load := predictedLoad(s.pr, n).Add(resv)
	cpuOK := load.CPU+p.Request.CPU <= capc.CPU
	memOK := load.Mem+p.Request.Mem <= capc.Mem
	if s.MaxOvercommit > 0 {
		req := n.ReqSum().Add(resv).Add(p.Request)
		full := n.Capacity()
		cpuOK = cpuOK && req.CPU <= s.MaxOvercommit*full.CPU
		memOK = memOK && req.Mem <= s.MaxOvercommit*full.Mem
	}
	return cpuOK, memOK
}

func (s *PredictorScheduler) score(n *cluster.NodeState, p *trace.Pod) float64 {
	return alignment(predictedLoad(s.pr, n), p)
}
