// Package sched defines the scheduling interface the trace-driven testbed
// drives and implements the baseline schedulers the paper evaluates against
// (§5.1): the Alibaba-like unified scheduler (alignment scoring with
// conservative-LS / aggressive-BE over-commitment), Borg-like, N-sigma,
// Resource-Central-like, and Medea (ILP placement for long-running pods).
//
// Optum itself lives in internal/core and implements the same interface.
package sched

import (
	"math/rand"

	"unisched/internal/cluster"
	"unisched/internal/predictor"
	"unisched/internal/trace"
)

// Reason classifies why a pod could not be scheduled this round — the
// delay-source taxonomy of Fig. 9(b).
type Reason int

// Delay reasons. ReasonNone means the pod was placed.
const (
	ReasonNone   Reason = iota
	ReasonCPUMem        // both CPU and memory insufficient on candidates
	ReasonCPU           // CPU insufficient
	ReasonMem           // memory insufficient
	ReasonOther         // affinity or no candidates
)

var reasonNames = [...]string{"None", "CPU&Mem", "CPU", "Mem", "Other"}

// String names the reason as in Fig. 9(b).
func (r Reason) String() string {
	if r < 0 || int(r) >= len(reasonNames) {
		return "?"
	}
	return reasonNames[r]
}

// Decision is a scheduler's verdict for one pod.
type Decision struct {
	Pod *trace.Pod
	// NodeID is the chosen host, or -1 when the pod stays pending.
	NodeID int
	// Score is the scheduler's score for the chosen host; the Deployment
	// Module uses it to resolve conflicts between parallel schedulers.
	Score float64
	// NeedPreempt asks the deployer to evict BE pods on NodeID first
	// (LSR admission).
	NeedPreempt bool
	// Reason explains an unplaced pod.
	Reason Reason
}

// Scheduler places batches of pending pods. Implementations read cluster
// state directly and must not mutate it — deployment is the testbed's job.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Schedule proposes placements for the pending pods at time now. It
	// returns one decision per input pod, in order.
	Schedule(pods []*trace.Pod, now int64) []Decision
}

// Base carries the state shared by every scheduler implementation: the
// cluster view, affinity-group indexes, a seeded RNG, and the in-batch
// reservation ledger. A scheduler deciding a batch of pods must account
// for its own earlier decisions before they are deployed and sampled —
// otherwise every pod in the batch piles onto the same "best" host.
type Base struct {
	Cluster *cluster.Cluster
	rng     *rand.Rand
	groups  map[int][]int // node IDs per affinity group
	all     []int

	resv     map[int]trace.Resources // per-node requests reserved this batch
	resvPods map[int][]*trace.Pod    // the reserved pods themselves
}

// NewBase builds the shared scheduler state over a cluster.
func NewBase(c *cluster.Cluster, seed int64) *Base {
	b := &Base{
		Cluster:  c,
		rng:      rand.New(rand.NewSource(seed)),
		groups:   make(map[int][]int),
		resv:     make(map[int]trace.Resources),
		resvPods: make(map[int][]*trace.Pod),
	}
	for _, n := range c.Nodes() {
		b.groups[n.Node.Group] = append(b.groups[n.Node.Group], n.Node.ID)
		b.all = append(b.all, n.Node.ID)
	}
	return b
}

// RestrictTo limits the scheduler's candidate universe to the given node
// IDs (unknown IDs are ignored). Parallel scheduler deployments use it to
// give each worker a disjoint partition of the cluster, which shrinks the
// per-pod scan cost with the worker count. Affinity groups are filtered
// to the intersection; a pod whose affinity group has no nodes in the
// partition simply finds no candidates and is retried elsewhere.
func (b *Base) RestrictTo(ids []int) {
	keep := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id >= 0 && id < len(b.Cluster.Nodes()) {
			keep[id] = true
		}
	}
	filter := func(in []int) []int {
		out := in[:0:0]
		for _, id := range in {
			if keep[id] {
				out = append(out, id)
			}
		}
		return out
	}
	b.all = filter(b.all)
	for g, ids := range b.groups {
		b.groups[g] = filter(ids)
	}
}

// BeginBatch clears the reservation ledger; schedulers call it at the top
// of every Schedule invocation.
func (b *Base) BeginBatch() {
	for k := range b.resv {
		delete(b.resv, k)
	}
	for k := range b.resvPods {
		delete(b.resvPods, k)
	}
}

// Reserve records that this batch has decided to place p on node id.
func (b *Base) Reserve(id int, p *trace.Pod) {
	b.resv[id] = b.resv[id].Add(p.Request)
	b.resvPods[id] = append(b.resvPods[id], p)
}

// Reserved returns the requests this batch has already promised to node id.
func (b *Base) Reserved(id int) trace.Resources { return b.resv[id] }

// ReservedPods returns the pods this batch has promised to node id. The
// slice is shared; callers must not modify it.
func (b *Base) ReservedPods(id int) []*trace.Pod { return b.resvPods[id] }

// Candidates returns the node IDs satisfying the pod's affinity, excluding
// Draining and Down hosts. On a fully healthy cluster it returns the
// precomputed index without allocating.
func (b *Base) Candidates(p *trace.Pod) []int {
	ids := b.all
	if aff := p.App().Affinity; aff >= 0 {
		ids = b.groups[aff]
	}
	if b.Cluster.AllUp() {
		return ids
	}
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if b.Cluster.Node(id).Schedulable() {
			out = append(out, id)
		}
	}
	return out
}

// admitFn reports whether node n can admit pod p, per dimension. resv is
// the batch's already-reserved requests on n; admission must treat them as
// committed load.
type admitFn func(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (cpuOK, memOK bool)

// scoreFn ranks an admissible node for pod p (higher is better).
type scoreFn func(n *cluster.NodeState, p *trace.Pod) float64

// Greedy runs the shared candidate scan: filter by affinity, test
// admission (including this batch's reservations), score the admissible
// nodes and pick the best — reserving the winner. When nothing admits the
// pod it classifies the blocking resource, and for LSR pods it proposes BE
// preemption on the fullest candidate (§3.1.3).
func (b *Base) Greedy(p *trace.Pod, cands []int, admit admitFn, score scoreFn) Decision {
	best := Decision{Pod: p, NodeID: -1, Reason: ReasonOther}
	if len(cands) == 0 {
		return best
	}
	cpuBlock, memBlock := 0, 0
	found := false
	for _, id := range cands {
		n := b.Cluster.Node(id)
		cpuOK, memOK := admit(n, p, b.resv[id])
		if cpuOK && memOK {
			s := score(n, p)
			if !found || s > best.Score {
				best.NodeID = id
				best.Score = s
				best.Reason = ReasonNone
				found = true
			}
			continue
		}
		if !cpuOK {
			cpuBlock++
		}
		if !memOK {
			memBlock++
		}
	}
	if found {
		b.Reserve(best.NodeID, p)
		return best
	}
	switch {
	case cpuBlock > 0 && memBlock > 0:
		best.Reason = ReasonCPUMem
	case cpuBlock > 0:
		best.Reason = ReasonCPU
	case memBlock > 0:
		best.Reason = ReasonMem
	default:
		best.Reason = ReasonOther
	}
	if p.SLO == trace.SLOLSR {
		if id, ok := b.PreemptTarget(p, cands); ok {
			b.Reserve(id, p)
			return Decision{Pod: p, NodeID: id, NeedPreempt: true, Reason: ReasonNone}
		}
	}
	return best
}

// PreemptTarget picks the candidate with the most evictable BE request mass
// that would fit the LSR pod after eviction. Schedulers use it as the LSR
// admission fallback.
func (b *Base) PreemptTarget(p *trace.Pod, cands []int) (int, bool) {
	bestID, bestBE := -1, 0.0
	for _, id := range cands {
		n := b.Cluster.Node(id)
		var beReq trace.Resources
		for _, ps := range n.Pods() {
			if ps.Pod.SLO == trace.SLOBE {
				beReq = beReq.Add(ps.Pod.Request)
			}
		}
		free := n.Capacity().Sub(n.ReqSum()).Sub(b.resv[id]).Add(beReq)
		if p.Request.FitsIn(free) && beReq.CPU > bestBE {
			bestBE = beReq.CPU
			bestID = id
		}
	}
	return bestID, bestID >= 0
}

// alignment is the production multi-resource packing score: the inner
// product of the pod's request vector and the host's load vector (§3.2).
func alignment(load trace.Resources, p *trace.Pod) float64 {
	return p.Request.Dot(load)
}

// predictedLoad builds a host load vector from a resource predictor.
func predictedLoad(pr predictor.Predictor, n *cluster.NodeState) trace.Resources {
	return trace.Resources{CPU: pr.PredictCPU(n), Mem: pr.PredictMem(n)}
}
