// Package sched implements the baseline schedulers the paper evaluates
// against (§5.1) on top of the shared placement pipeline
// (internal/pipeline): the Alibaba-like unified scheduler (alignment
// scoring with conservative-LS / aggressive-BE over-commitment),
// Borg-like, N-sigma, Resource-Central-like, and Medea (ILP placement for
// long-running pods). Each scheduler is a declarative plugin set — a
// pipeline.Spec — rather than a bespoke scan loop; the pipeline owns
// candidate indexing, sampling, scanning, reservation, and preemption.
//
// Optum itself lives in internal/core and runs on the same pipeline.
package sched

import (
	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/predictor"
	"unisched/internal/trace"
)

// Reason classifies why a pod could not be scheduled this round — the
// delay-source taxonomy of Fig. 9(b). It is the pipeline's taxonomy,
// re-exported so existing callers keep compiling.
type Reason = pipeline.Reason

// Delay reasons. ReasonNone means the pod was placed.
const (
	ReasonNone   = pipeline.ReasonNone
	ReasonCPUMem = pipeline.ReasonCPUMem
	ReasonCPU    = pipeline.ReasonCPU
	ReasonMem    = pipeline.ReasonMem
	ReasonOther  = pipeline.ReasonOther
)

// Decision is a scheduler's verdict for one pod.
type Decision = pipeline.Decision

// Scheduler places batches of pending pods.
type Scheduler = pipeline.Scheduler

// Base carries the state shared by every scheduler implementation: the
// cluster view and the placement pipeline (candidate index, in-batch
// reservation ledger, per-stage stats). The seed parameter is kept for
// construction compatibility; schedulers that randomize (Optum's sampler)
// own their RNGs.
type Base struct {
	Cluster *cluster.Cluster
	pl      *pipeline.Pipeline
}

// NewBase builds the shared scheduler state over a cluster.
func NewBase(c *cluster.Cluster, seed int64) *Base {
	_ = seed
	return &Base{Cluster: c, pl: pipeline.New(c)}
}

// Pipeline returns the scheduler's placement pipeline — the drivers use it
// to read per-stage stats and toggle index pruning.
func (b *Base) Pipeline() *pipeline.Pipeline { return b.pl }

// RestrictTo limits the scheduler's candidate universe to the given node
// IDs (unknown IDs are ignored). Parallel scheduler deployments use it to
// give each worker a disjoint partition of the cluster, which shrinks the
// per-pod scan cost with the worker count. Affinity groups compose with
// the partition (partition ∩ group); a pod whose affinity group has no
// nodes in the partition simply finds no candidates and is retried
// elsewhere.
func (b *Base) RestrictTo(ids []int) { b.pl.RestrictTo(ids) }

// BeginBatch clears the reservation ledger; schedulers call it at the top
// of every Schedule invocation.
func (b *Base) BeginBatch() { b.pl.BeginBatch() }

// Reserve records that this batch has decided to place p on node id.
func (b *Base) Reserve(id int, p *trace.Pod) { b.pl.Reserve(id, p) }

// Reserved returns the requests this batch has already promised to node id.
func (b *Base) Reserved(id int) trace.Resources { return b.pl.Ledger().Reserved(id) }

// ReservedPods returns the pods this batch has promised to node id. The
// slice is shared; callers must not modify it.
func (b *Base) ReservedPods(id int) []*trace.Pod { return b.pl.Ledger().Pods(id) }

// Candidates returns the node IDs satisfying the pod's affinity, excluding
// Draining and Down hosts, in ascending ID order. The slice is the live
// index; callers must not modify it.
func (b *Base) Candidates(p *trace.Pod) []int { return b.pl.Candidates(p) }

// Select drives one pod through the pipeline with the given plugin spec.
func (b *Base) Select(p *trace.Pod, sp *pipeline.Spec) Decision { return b.pl.Select(p, sp) }

// admitFn reports whether node n can admit pod p, per dimension. resv is
// the batch's already-reserved requests on n; admission must treat them as
// committed load.
type admitFn func(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (cpuOK, memOK bool)

// scoreFn ranks an admissible node for pod p (higher is better).
type scoreFn func(n *cluster.NodeState, p *trace.Pod) float64

// funcEval adapts an admit/score closure pair to the pipeline's fused
// evaluation plugin — the compatibility shim behind Greedy.
type funcEval struct {
	admit admitFn
	score scoreFn
}

func (funcEval) EvalName() string { return "func" }

func (e funcEval) Evaluate(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (float64, bool, bool) {
	cpuOK, memOK := e.admit(n, p, resv)
	if !cpuOK || !memOK {
		return 0, cpuOK, memOK
	}
	return e.score(n, p), true, true
}

// Greedy runs a pipeline scan over an explicit candidate list with
// closure-based admission and scoring, preserving the list's order for
// tie-breaking (first admissible host with the top score wins). It remains
// for callers that compute their own candidate sets; scheduler
// implementations declare a pipeline.Spec instead.
func (b *Base) Greedy(p *trace.Pod, cands []int, admit admitFn, score scoreFn) Decision {
	sp := &pipeline.Spec{Eval: funcEval{admit: admit, score: score}, Preempt: true}
	return b.pl.SelectFrom(p, cands, sp)
}

// PreemptTarget picks the candidate with the most evictable BE request mass
// that would fit the LSR pod after eviction. Schedulers use it as the LSR
// admission fallback.
func (b *Base) PreemptTarget(p *trace.Pod, cands []int) (int, bool) {
	return b.pl.PreemptTarget(p, cands)
}

// alignment is the production multi-resource packing score: the inner
// product of the pod's request vector and the host's load vector (§3.2).
func alignment(load trace.Resources, p *trace.Pod) float64 {
	return p.Request.Dot(load)
}

// predictedLoad builds a host load vector from a resource predictor.
func predictedLoad(pr predictor.Predictor, n *cluster.NodeState) trace.Resources {
	return trace.Resources{CPU: pr.PredictCPU(n), Mem: pr.PredictMem(n)}
}
