// Package sim is the trace-driven testbed (§5.1): it replays a workload's
// pod submissions against a cluster under a pluggable scheduler, executes
// decisions through the conflict-resolving Deployment Module, advances the
// contention physics in 30-second ticks, and records everything the
// evaluation figures need — utilization and violation series, waiting
// times and delay reasons, per-pod worst PSI, best-effort completion
// times, and wall-clock scheduling latencies.
package sim

import (
	"container/heap"
	"sort"
	"time"

	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// Config controls one simulation run.
type Config struct {
	// Tick is the simulation step in seconds (default trace.SampleInterval).
	Tick int64
	// MaxRounds bounds scheduling rounds per tick: after a conflict, losers
	// are re-dispatched within the same tick until no progress or the
	// bound is hit.
	MaxRounds int
	// Chaos, when non-nil, injects faults at the top of every tick (node
	// crashes, drains, evictions, profiler blackouts); pods it displaces
	// re-enter the scheduling queue under the Retry policy.
	Chaos *chaos.Injector
	// Retry tunes displaced-pod rescheduling. The zero value preserves the
	// failure-free behaviour (no backoff, no budget); when Chaos is set and
	// Retry is zero, DefaultRetryPolicy applies.
	Retry RetryPolicy
	// Collector, when non-nil, receives every tick's snapshots and every
	// BE completion — the Tracing Coordinator feed for the profilers.
	Collector *profiler.Collector
	// RecordRanks computes, for every placement, the rank of the chosen
	// host among all hosts under usage-based and request-based alignment
	// scoring (the Fig. 10 analysis). Costs O(nodes) per placement.
	RecordRanks bool
	// ConflictResolve deploys through the §4.4 conflict-resolving path:
	// when several decisions target one host in the same tick, only the
	// highest score deploys and the rest retry next tick. Required when
	// the scheduler is a core.Parallel bundle, whose members cannot see
	// each other's in-batch reservations.
	ConflictResolve bool
	// Until stops the simulation early (seconds; 0 means full horizon).
	Until int64
	// OnTick, when non-nil, is called after every tick with the fresh
	// snapshots (for custom analyses).
	OnTick func(t int64, snaps []cluster.NodeSnapshot)
}

// PodWait records one pod's scheduling outcome. A pod placed, displaced and
// placed again has one record per placement.
type PodWait struct {
	PodID     int
	SLO       trace.SLO
	Wait      int64 // seconds from submission to placement (or censoring)
	Scheduled bool
	Reason    sched.Reason // last blocking reason for delayed pods
	// Exhausted marks a displaced pod abandoned after the retry budget
	// (RetryPolicy.MaxDisplacements) — the terminal
	// evicted-with-exhausted-retries outcome.
	Exhausted bool
}

// RetryPolicy tunes how displaced and evicted pods are rescheduled. The
// zero value preserves the failure-free behaviour: retry every tick,
// forever.
type RetryPolicy struct {
	// MaxDisplacements bounds how many times one pod may be removed while
	// running (node failure, drain, chaos eviction, or LSR preemption)
	// before the testbed abandons it as evicted-with-exhausted-retries
	// (0 = unlimited).
	MaxDisplacements int
	// BaseBackoff is the initial best-effort backoff in seconds: a BE pod
	// that fails a scheduling attempt or is displaced sits out at least
	// this long, doubling per failed attempt. Displaced LSR/LS pods never
	// back off — they jump the queue instead (0 = retry every tick).
	BaseBackoff int64
	// MaxBackoff caps the exponential backoff (0 = 32x BaseBackoff).
	MaxBackoff int64
}

// DefaultRetryPolicy returns the chaos-mode rescheduling configuration:
// one-tick initial backoff doubling to at most 16 minutes, and a budget of
// 8 displacements per pod.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxDisplacements: 8, BaseBackoff: trace.SampleInterval, MaxBackoff: 960}
}

// backoff returns the wait before retry number attempts+1 (attempts failed
// tries so far), or 0 when backoff is disabled.
func (rp RetryPolicy) backoff(attempts int) int64 {
	if rp.BaseBackoff <= 0 {
		return 0
	}
	cap := rp.MaxBackoff
	if cap <= 0 {
		cap = 32 * rp.BaseBackoff
	}
	b := rp.BaseBackoff
	for i := 0; i < attempts && b < cap; i++ {
		b *= 2
	}
	if b > cap {
		b = cap
	}
	return b
}

// Disruption aggregates a run's failure-handling metrics.
type Disruption struct {
	// Evictions counts displacement events: pods removed while running by
	// node failures, drains, or chaos evictions. LSR preemptions are
	// tracked separately in Result.BEPreempted.
	Evictions int
	// Reschedules counts displaced pods successfully placed again.
	Reschedules int
	// Exhausted counts pods abandoned after the retry budget.
	Exhausted int
	// TimeToReplace holds seconds from each displacement to the pod's
	// next placement.
	TimeToReplace []float64
	// CapacityLost is the per-tick fraction of cluster CPU capacity on
	// Down hosts.
	CapacityLost []float64
	// DownNodes is the per-tick count of Down hosts.
	DownNodes []int
}

// Rank records a placement's host rank under the two §3.2 over-commitment
// policies: 1 is the best-aligned host.
type Rank struct {
	PodID     int
	SLO       trace.SLO
	UsageRank int // rank under usage-based (aggressive) scoring
	ReqRank   int // rank under request-based (conservative) scoring
	Nodes     int
}

// Result aggregates everything one run produces.
type Result struct {
	Scheduler string
	Workload  *trace.Workload

	// Per-tick series.
	Times      []int64
	CPUUtilAvg []float64 // mean host CPU utilization (all hosts)
	CPUUtilMax []float64
	MemUtilAvg []float64
	// CPUUtilBusy and MemUtilBusy average only over non-idle hosts — the
	// utilization the Eq. 6 objective actually optimizes (fewer, fuller
	// hosts) and the quantity Fig. 19(a) improves.
	CPUUtilBusy []float64
	MemUtilBusy []float64
	// GoodputBusy is the mean over non-idle hosts of the *effective* CPU
	// rate: latency-sensitive usage plus best-effort progress rate. Unlike
	// raw utilization it does not count cycles burnt to contention
	// slowdown as useful, so it cannot be inflated by over-packing.
	GoodputBusy []float64
	Violation   []float64 // fraction of hosts with demand above capacity

	// Per-class mean pod CPU utilization per tick (Fig. 4a).
	ClassUtil map[trace.SLO][]float64

	// Scheduling outcomes.
	Waits   []PodWait
	Placed  int
	Pending int // still waiting at the end

	// Per-pod performance.
	MaxPSI      map[int]float64 // LS pod -> worst CPU PSI60 while running
	BECT        map[int]float64 // BE pod -> completion time (seconds)
	BEPreempted map[int]int     // BE pod -> preemption count

	// NodeOf maps placed pods to their host.
	NodeOf map[int]int

	// Ranks (only when Config.RecordRanks).
	Ranks []Rank

	// Disruption holds the failure-handling metrics (all zero/empty series
	// when no faults were injected).
	Disruption Disruption

	// SchedLatency holds wall-clock seconds per pod decision. It is the
	// one non-deterministic field of a Result.
	SchedLatency []float64

	// Pipeline holds the placement pipeline's per-stage counters (visited
	// nodes, pruning effectiveness, stage latencies) when the scheduler
	// runs on the shared pipeline; nil otherwise. Stage timings share
	// SchedLatency's non-determinism caveat.
	Pipeline *pipeline.StatsSnapshot
}

// Run replays the workload on the cluster under the scheduler. The cluster
// must have been built over w.Nodes and be empty.
func Run(w *trace.Workload, c *cluster.Cluster, s sched.Scheduler, cfg Config) *Result {
	if cfg.Tick <= 0 {
		cfg.Tick = trace.SampleInterval
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 8
	}
	horizon := w.Horizon
	if cfg.Until > 0 && cfg.Until < horizon {
		horizon = cfg.Until
	}

	res := &Result{
		Scheduler:   s.Name(),
		Workload:    w,
		ClassUtil:   make(map[trace.SLO][]float64),
		MaxPSI:      make(map[int]float64),
		BECT:        make(map[int]float64),
		BEPreempted: make(map[int]int),
		NodeOf:      make(map[int]int),
	}
	dep := &pipeline.Deployer{Cluster: c}

	retry := cfg.Retry
	if cfg.Chaos != nil && retry == (RetryPolicy{}) {
		retry = DefaultRetryPolicy()
	}

	var queue []*pending
	nextPod := 0

	// Expiry heap for long-running pods with finite lifetimes.
	var expiry lifetimeHeap

	// Displacement bookkeeping: lifetime displacement counts (retry budget)
	// and, for pods currently awaiting replacement, when they were displaced.
	displaceCount := make(map[int]int)
	displacedAt := make(map[int]int64)
	totalCap := c.TotalCapacity()

	for now := int64(0); now < horizon; now += cfg.Tick {
		// 0. Inject faults. Displaced pods are still-live workloads: they
		// re-enter the queue under the retry policy — LSR/LS pods jump the
		// queue, BE pods back off — unless their lifetime already passed or
		// their displacement budget is spent.
		if cfg.Chaos != nil {
			for _, ps := range cfg.Chaos.Step(c, now, cfg.Tick) {
				res.Disruption.Evictions++
				p := ps.Pod
				displaceCount[p.ID]++
				delete(res.NodeOf, p.ID)
				if p.Lifetime > 0 && p.Lifetime <= now {
					// Its scheduled life is over anyway; nothing to replace.
					continue
				}
				if retry.MaxDisplacements > 0 && displaceCount[p.ID] > retry.MaxDisplacements {
					res.Disruption.Exhausted++
					res.Waits = append(res.Waits, PodWait{
						PodID: p.ID, SLO: p.SLO, Scheduled: false, Exhausted: true,
					})
					continue
				}
				displacedAt[p.ID] = now
				pe := &pending{pod: p, since: now, displaced: true}
				if p.SLO == trace.SLOBE {
					pe.notBefore = now + retry.backoff(0)
				}
				queue = append(queue, pe)
			}
		}

		// 1. Admit newly submitted pods.
		for nextPod < len(w.Pods) && w.Pods[nextPod].Submit <= now {
			p := w.Pods[nextPod]
			queue = append(queue, &pending{pod: p, since: p.Submit})
			nextPod++
		}

		// 2. Expire finished-lifetime pods.
		for expiry.Len() > 0 && expiry[0].at <= now {
			e := heap.Pop(&expiry).(lifetimeEntry)
			c.Remove(e.podID, now, false)
		}

		// 3. Scheduling: batched decision passes over the pods whose backoff
		// has expired. With ConflictResolve, conflict losers and stale-target
		// pods are re-dispatched within the same tick for up to MaxRounds
		// rounds — a pod that loses every round stays pending for the next
		// tick; it is never dropped.
		ready := make([]*pending, 0, len(queue))
		for _, pe := range queue {
			if pe.notBefore <= now {
				ready = append(ready, pe)
			}
		}
		placedSet := make(map[int]bool)
		var evictedAll []*cluster.PodState
		if len(ready) > 0 {
			sortQueue(ready)
			byPod := make(map[int]*pending, len(ready))
			for _, pe := range ready {
				byPod[pe.pod.ID] = pe
			}
			rounds := 1
			if cfg.ConflictResolve {
				rounds = cfg.MaxRounds
			}
			remaining := ready
			for round := 0; round < rounds && len(remaining) > 0; round++ {
				batch := make([]*trace.Pod, len(remaining))
				for i, pe := range remaining {
					batch[i] = pe.pod
				}
				start := time.Now()
				decisions := s.Schedule(batch, now)
				elapsed := time.Since(start).Seconds() / float64(len(batch))
				for range batch {
					res.SchedLatency = append(res.SchedLatency, elapsed)
				}

				// Rank the selected hosts before deployment mutates the state
				// the selection was made against.
				var preRanks map[int]Rank
				if cfg.RecordRanks {
					preRanks = make(map[int]Rank)
					for _, d := range decisions {
						if d.NodeID >= 0 {
							preRanks[d.Pod.ID] = rankPlacement(c, d.Pod, d.NodeID)
						}
					}
				}

				var outcome pipeline.Outcome
				if cfg.ConflictResolve {
					outcome = dep.Apply(decisions, now)
				} else {
					outcome = dep.ApplyAll(decisions, now)
				}
				evictedAll = append(evictedAll, outcome.Evicted...)

				// Record reasons for unplaced pods.
				for _, d := range decisions {
					if d.NodeID < 0 {
						if pe := byPod[d.Pod.ID]; pe != nil {
							pe.reason = d.Reason
						}
					}
				}

				for _, d := range outcome.Placed {
					placedSet[d.Pod.ID] = true
					pe := byPod[d.Pod.ID]
					res.Waits = append(res.Waits, PodWait{
						PodID: d.Pod.ID, SLO: d.Pod.SLO,
						Wait: now - pe.since, Scheduled: true, Reason: pe.reason,
					})
					res.Placed++
					res.NodeOf[d.Pod.ID] = d.NodeID
					if cfg.RecordRanks {
						res.Ranks = append(res.Ranks, preRanks[d.Pod.ID])
					}
					if d.Pod.Lifetime > 0 {
						heap.Push(&expiry, lifetimeEntry{at: d.Pod.Lifetime, podID: d.Pod.ID})
					}
					if at, ok := displacedAt[d.Pod.ID]; ok {
						res.Disruption.Reschedules++
						res.Disruption.TimeToReplace = append(res.Disruption.TimeToReplace, float64(now-at))
						delete(displacedAt, d.Pod.ID)
					}
				}

				// Re-dispatch only this round's deployment rejects (conflict
				// losers and stale targets); stop when a round deploys
				// nothing — the schedulers' view did not change, so another
				// round would decide identically.
				if len(outcome.Requeued) == 0 || len(outcome.Placed) == 0 {
					break
				}
				reQ := make([]*pending, 0, len(outcome.Requeued))
				for _, p := range outcome.Requeued {
					if pe := byPod[p.ID]; pe != nil && !placedSet[p.ID] {
						reQ = append(reQ, pe)
					}
				}
				remaining = reQ
			}
		}

		// Rebuild the queue: drop placed pods; pods that were attempted and
		// failed accrue a backoff (BE only), pods still in backoff ride
		// through untouched.
		if len(ready) > 0 || len(evictedAll) > 0 {
			next := queue[:0]
			for _, pe := range queue {
				if placedSet[pe.pod.ID] {
					continue
				}
				if pe.notBefore <= now {
					pe.attempts++
					if pe.pod.SLO == trace.SLOBE {
						if b := retry.backoff(pe.attempts - 1); b > 0 {
							pe.notBefore = now + b
						}
					}
				}
				next = append(next, pe)
			}
			queue = next
			// Preempted BE pods re-enter the queue (unless their budget is
			// spent — preemption counts as a displacement too).
			for _, ev := range evictedAll {
				res.BEPreempted[ev.Pod.ID]++
				displaceCount[ev.Pod.ID]++
				delete(res.NodeOf, ev.Pod.ID)
				if retry.MaxDisplacements > 0 && displaceCount[ev.Pod.ID] > retry.MaxDisplacements {
					res.Disruption.Exhausted++
					res.Waits = append(res.Waits, PodWait{
						PodID: ev.Pod.ID, SLO: ev.Pod.SLO, Scheduled: false, Exhausted: true,
					})
					continue
				}
				pe := &pending{pod: ev.Pod, since: now}
				if b := retry.backoff(0); b > 0 {
					pe.notBefore = now + b
				}
				queue = append(queue, pe)
			}
		}

		// 4. Advance physics.
		completed, snaps := c.Tick(now, float64(cfg.Tick))
		if cfg.Collector != nil {
			cfg.Collector.ObserveTick(snaps)
			for _, ps := range completed {
				cfg.Collector.ObserveCompletion(ps)
			}
		}
		if cfg.OnTick != nil {
			cfg.OnTick(now, snaps)
		}
		res.observeTick(now, snaps)
		downN, downCap := c.DownStats()
		res.Disruption.DownNodes = append(res.Disruption.DownNodes, downN)
		lost := 0.0
		if totalCap.CPU > 0 {
			lost = downCap.CPU / totalCap.CPU
		}
		res.Disruption.CapacityLost = append(res.Disruption.CapacityLost, lost)
		for _, ps := range completed {
			if ps.Pod.SLO == trace.SLOBE {
				res.BECT[ps.Pod.ID] = float64(ps.Finish - ps.Start)
			}
		}
	}

	// Pods submitted within the final tick never reached the queue; account
	// for them as pending with zero-ish waits.
	for nextPod < len(w.Pods) && w.Pods[nextPod].Submit <= horizon {
		p := w.Pods[nextPod]
		queue = append(queue, &pending{pod: p, since: p.Submit})
		nextPod++
	}

	// Censored waits for pods still pending at the end.
	for _, pe := range queue {
		res.Waits = append(res.Waits, PodWait{
			PodID: pe.pod.ID, SLO: pe.pod.SLO,
			Wait: horizon - pe.since, Scheduled: false, Reason: pe.reason,
		})
	}
	res.Pending = len(queue)
	if ps, ok := s.(interface{ Pipeline() *pipeline.Pipeline }); ok {
		snap := ps.Pipeline().Stats().Snapshot()
		res.Pipeline = &snap
	}
	return res
}

// sortQueue orders pending pods by SLO priority (LSR, LS, then the rest)
// and then submission time — the production queueing discipline. Displaced
// latency-sensitive pods jump the whole queue: they already held capacity
// and their users are actively degraded until replacement.
func sortQueue(q []*pending) {
	prio := func(pe *pending) int {
		if pe.displaced && pe.pod.SLO.LatencySensitive() {
			return -1
		}
		switch pe.pod.SLO {
		case trace.SLOLSR:
			return 0
		case trace.SLOLS:
			return 1
		case trace.SLOSystem, trace.SLOVMEnv:
			return 2
		case trace.SLOBE:
			return 4
		default:
			return 3
		}
	}
	sort.SliceStable(q, func(a, b int) bool {
		pa, pb := prio(q[a]), prio(q[b])
		if pa != pb {
			return pa < pb
		}
		return q[a].since < q[b].since
	})
}

// pending is a submitted-but-unplaced pod in the scheduler queue.
type pending struct {
	pod    *trace.Pod
	since  int64
	reason sched.Reason
	// attempts counts failed scheduling tries since the pod last entered
	// the queue; it drives the BE exponential backoff.
	attempts int
	// notBefore keeps the pod out of scheduling batches until its backoff
	// expires.
	notBefore int64
	// displaced marks a pod that was running and lost its node; displaced
	// LSR/LS pods jump the queue.
	displaced bool
}

func (r *Result) observeTick(now int64, snaps []cluster.NodeSnapshot) {
	r.Times = append(r.Times, now)
	var cpuSum, memSum, cpuMax, violated float64
	var busyCPU, busyMem, busyGood float64
	busy := 0
	classSum := map[trace.SLO]float64{}
	classN := map[trace.SLO]int{}
	up := 0
	for i := range snaps {
		s := &snaps[i]
		if s.Phase == cluster.NodeDown {
			// Crashed hosts report nothing; averaging their zeros in would
			// make failures look like utilization wins.
			continue
		}
		up++
		cu := s.CPUUtil()
		cpuSum += cu
		memSum += s.MemUtil()
		if cu > cpuMax {
			cpuMax = cu
		}
		if s.Violated() {
			violated++
		}
		if len(s.Pods) > 0 {
			busy++
			busyCPU += cu
			busyMem += s.MemUtil()
			var good float64
			for j := range s.Pods {
				p := &s.Pods[j]
				if p.Pod.Pod.Work > 0 {
					good += p.Rate
				} else {
					good += p.CPUUse
				}
			}
			busyGood += good / s.Node.Node.Capacity.CPU
		}
		for j := range s.Pods {
			p := &s.Pods[j]
			pod := p.Pod.Pod
			if pod.Request.CPU > 0 {
				classSum[pod.SLO] += p.CPUUse / pod.Request.CPU
				classN[pod.SLO]++
			}
			if pod.SLO.LatencySensitive() {
				if cur, ok := r.MaxPSI[pod.ID]; !ok || p.CPUPSI60 > cur {
					r.MaxPSI[pod.ID] = p.CPUPSI60
				}
			}
		}
	}
	n := float64(up)
	if up == 0 {
		n = 1 // whole cluster down: report zeros, not NaNs
	}
	r.CPUUtilAvg = append(r.CPUUtilAvg, cpuSum/n)
	r.CPUUtilMax = append(r.CPUUtilMax, cpuMax)
	r.MemUtilAvg = append(r.MemUtilAvg, memSum/n)
	r.Violation = append(r.Violation, violated/n)
	if busy > 0 {
		r.CPUUtilBusy = append(r.CPUUtilBusy, busyCPU/float64(busy))
		r.MemUtilBusy = append(r.MemUtilBusy, busyMem/float64(busy))
		r.GoodputBusy = append(r.GoodputBusy, busyGood/float64(busy))
	} else {
		r.CPUUtilBusy = append(r.CPUUtilBusy, 0)
		r.MemUtilBusy = append(r.MemUtilBusy, 0)
		r.GoodputBusy = append(r.GoodputBusy, 0)
	}
	for _, slo := range []trace.SLO{trace.SLOBE, trace.SLOLS, trace.SLOLSR} {
		v := 0.0
		if classN[slo] > 0 {
			v = classSum[slo] / float64(classN[slo])
		}
		r.ClassUtil[slo] = append(r.ClassUtil[slo], v)
	}
}

// rankPlacement computes the chosen host's rank among all hosts under
// usage-based and request-based alignment scoring (Fig. 10). Rank 1 is the
// highest-scoring host.
func rankPlacement(c *cluster.Cluster, p *trace.Pod, chosen int) Rank {
	nodes := c.Nodes()
	useScore := make([]float64, len(nodes))
	reqScore := make([]float64, len(nodes))
	for i, n := range nodes {
		useScore[i] = p.Request.Dot(n.LastUsage())
		reqScore[i] = p.Request.Dot(n.ReqSum())
	}
	rank := func(scores []float64) int {
		r := 1
		for i, s := range scores {
			if i == chosen {
				continue
			}
			if s > scores[chosen] {
				r++
			}
		}
		return r
	}
	return Rank{
		PodID: p.ID, SLO: p.SLO,
		UsageRank: rank(useScore), ReqRank: rank(reqScore), Nodes: len(nodes),
	}
}

// lifetimeHeap is a min-heap of pod expiry times.
type lifetimeEntry struct {
	at    int64
	podID int
}

type lifetimeHeap []lifetimeEntry

func (h lifetimeHeap) Len() int            { return len(h) }
func (h lifetimeHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h lifetimeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lifetimeHeap) Push(x interface{}) { *h = append(*h, x.(lifetimeEntry)) }
func (h *lifetimeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
