// Package sim is the trace-driven testbed (§5.1): it replays a workload's
// pod submissions against a cluster under a pluggable scheduler, executes
// decisions through the conflict-resolving Deployment Module, advances the
// contention physics in 30-second ticks, and records everything the
// evaluation figures need — utilization and violation series, waiting
// times and delay reasons, per-pod worst PSI, best-effort completion
// times, and wall-clock scheduling latencies.
package sim

import (
	"container/heap"
	"sort"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// Config controls one simulation run.
type Config struct {
	// Tick is the simulation step in seconds (default trace.SampleInterval).
	Tick int64
	// MaxRounds bounds scheduling rounds per tick: after a conflict, losers
	// are re-dispatched within the same tick until no progress or the
	// bound is hit.
	MaxRounds int
	// Collector, when non-nil, receives every tick's snapshots and every
	// BE completion — the Tracing Coordinator feed for the profilers.
	Collector *profiler.Collector
	// RecordRanks computes, for every placement, the rank of the chosen
	// host among all hosts under usage-based and request-based alignment
	// scoring (the Fig. 10 analysis). Costs O(nodes) per placement.
	RecordRanks bool
	// ConflictResolve deploys through the §4.4 conflict-resolving path:
	// when several decisions target one host in the same tick, only the
	// highest score deploys and the rest retry next tick. Required when
	// the scheduler is a core.Parallel bundle, whose members cannot see
	// each other's in-batch reservations.
	ConflictResolve bool
	// Until stops the simulation early (seconds; 0 means full horizon).
	Until int64
	// OnTick, when non-nil, is called after every tick with the fresh
	// snapshots (for custom analyses).
	OnTick func(t int64, snaps []cluster.NodeSnapshot)
}

// PodWait records one pod's scheduling outcome.
type PodWait struct {
	PodID     int
	SLO       trace.SLO
	Wait      int64 // seconds from submission to placement (or censoring)
	Scheduled bool
	Reason    sched.Reason // last blocking reason for delayed pods
}

// Rank records a placement's host rank under the two §3.2 over-commitment
// policies: 1 is the best-aligned host.
type Rank struct {
	PodID     int
	SLO       trace.SLO
	UsageRank int // rank under usage-based (aggressive) scoring
	ReqRank   int // rank under request-based (conservative) scoring
	Nodes     int
}

// Result aggregates everything one run produces.
type Result struct {
	Scheduler string
	Workload  *trace.Workload

	// Per-tick series.
	Times      []int64
	CPUUtilAvg []float64 // mean host CPU utilization (all hosts)
	CPUUtilMax []float64
	MemUtilAvg []float64
	// CPUUtilBusy and MemUtilBusy average only over non-idle hosts — the
	// utilization the Eq. 6 objective actually optimizes (fewer, fuller
	// hosts) and the quantity Fig. 19(a) improves.
	CPUUtilBusy []float64
	MemUtilBusy []float64
	// GoodputBusy is the mean over non-idle hosts of the *effective* CPU
	// rate: latency-sensitive usage plus best-effort progress rate. Unlike
	// raw utilization it does not count cycles burnt to contention
	// slowdown as useful, so it cannot be inflated by over-packing.
	GoodputBusy []float64
	Violation   []float64 // fraction of hosts with demand above capacity

	// Per-class mean pod CPU utilization per tick (Fig. 4a).
	ClassUtil map[trace.SLO][]float64

	// Scheduling outcomes.
	Waits   []PodWait
	Placed  int
	Pending int // still waiting at the end

	// Per-pod performance.
	MaxPSI      map[int]float64 // LS pod -> worst CPU PSI60 while running
	BECT        map[int]float64 // BE pod -> completion time (seconds)
	BEPreempted map[int]int     // BE pod -> preemption count

	// NodeOf maps placed pods to their host.
	NodeOf map[int]int

	// Ranks (only when Config.RecordRanks).
	Ranks []Rank

	// SchedLatency holds wall-clock seconds per pod decision.
	SchedLatency []float64
}

// Run replays the workload on the cluster under the scheduler. The cluster
// must have been built over w.Nodes and be empty.
func Run(w *trace.Workload, c *cluster.Cluster, s sched.Scheduler, cfg Config) *Result {
	if cfg.Tick <= 0 {
		cfg.Tick = trace.SampleInterval
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 8
	}
	horizon := w.Horizon
	if cfg.Until > 0 && cfg.Until < horizon {
		horizon = cfg.Until
	}

	res := &Result{
		Scheduler:   s.Name(),
		Workload:    w,
		ClassUtil:   make(map[trace.SLO][]float64),
		MaxPSI:      make(map[int]float64),
		BECT:        make(map[int]float64),
		BEPreempted: make(map[int]int),
		NodeOf:      make(map[int]int),
	}
	dep := &core.Deployer{Cluster: c}

	var queue []*pending
	nextPod := 0

	// Expiry heap for long-running pods with finite lifetimes.
	var expiry lifetimeHeap

	for now := int64(0); now < horizon; now += cfg.Tick {
		// 1. Admit newly submitted pods.
		for nextPod < len(w.Pods) && w.Pods[nextPod].Submit <= now {
			p := w.Pods[nextPod]
			queue = append(queue, &pending{pod: p, since: p.Submit})
			nextPod++
		}

		// 2. Expire finished-lifetime pods.
		for expiry.Len() > 0 && expiry[0].at <= now {
			e := heap.Pop(&expiry).(lifetimeEntry)
			c.Remove(e.podID, now, false)
		}

		// 3. Scheduling: one batched decision pass per tick. The scheduler
		// reserves capacity for its own in-batch decisions, so every
		// placement can deploy; pods left out wait for the next tick.
		if len(queue) > 0 {
			sortQueue(queue)
			batch := make([]*trace.Pod, len(queue))
			for i, pe := range queue {
				batch[i] = pe.pod
			}
			start := time.Now()
			decisions := s.Schedule(batch, now)
			elapsed := time.Since(start).Seconds() / float64(len(batch))
			for range batch {
				res.SchedLatency = append(res.SchedLatency, elapsed)
			}

			// Rank the selected hosts before deployment mutates the state
			// the selection was made against.
			var preRanks map[int]Rank
			if cfg.RecordRanks {
				preRanks = make(map[int]Rank)
				for _, d := range decisions {
					if d.NodeID >= 0 {
						preRanks[d.Pod.ID] = rankPlacement(c, d.Pod, d.NodeID)
					}
				}
			}

			var outcome core.Outcome
			if cfg.ConflictResolve {
				outcome = dep.Apply(decisions, now)
			} else {
				outcome = dep.ApplyAll(decisions, now)
			}

			// Record reasons for unplaced pods.
			byPod := make(map[int]*pending, len(queue))
			for _, pe := range queue {
				byPod[pe.pod.ID] = pe
			}
			for _, d := range decisions {
				if d.NodeID < 0 {
					if pe := byPod[d.Pod.ID]; pe != nil {
						pe.reason = d.Reason
					}
				}
			}

			placedSet := make(map[int]bool, len(outcome.Placed))
			for _, d := range outcome.Placed {
				placedSet[d.Pod.ID] = true
				pe := byPod[d.Pod.ID]
				res.Waits = append(res.Waits, PodWait{
					PodID: d.Pod.ID, SLO: d.Pod.SLO,
					Wait: now - pe.since, Scheduled: true, Reason: pe.reason,
				})
				res.Placed++
				res.NodeOf[d.Pod.ID] = d.NodeID
				if cfg.RecordRanks {
					res.Ranks = append(res.Ranks, preRanks[d.Pod.ID])
				}
				if d.Pod.Lifetime > 0 {
					heap.Push(&expiry, lifetimeEntry{at: d.Pod.Lifetime, podID: d.Pod.ID})
				}
			}

			// Rebuild the queue: drop placed pods, re-add evicted BE pods.
			next := queue[:0]
			for _, pe := range queue {
				if !placedSet[pe.pod.ID] {
					next = append(next, pe)
				}
			}
			queue = next
			for _, ev := range outcome.Evicted {
				res.BEPreempted[ev.Pod.ID]++
				queue = append(queue, &pending{pod: ev.Pod, since: now})
			}
		}

		// 4. Advance physics.
		completed, snaps := c.Tick(now, float64(cfg.Tick))
		if cfg.Collector != nil {
			cfg.Collector.ObserveTick(snaps)
			for _, ps := range completed {
				cfg.Collector.ObserveCompletion(ps)
			}
		}
		if cfg.OnTick != nil {
			cfg.OnTick(now, snaps)
		}
		res.observeTick(now, snaps)
		for _, ps := range completed {
			if ps.Pod.SLO == trace.SLOBE {
				res.BECT[ps.Pod.ID] = float64(ps.Finish - ps.Start)
			}
		}
	}

	// Pods submitted within the final tick never reached the queue; account
	// for them as pending with zero-ish waits.
	for nextPod < len(w.Pods) && w.Pods[nextPod].Submit <= horizon {
		p := w.Pods[nextPod]
		queue = append(queue, &pending{pod: p, since: p.Submit})
		nextPod++
	}

	// Censored waits for pods still pending at the end.
	for _, pe := range queue {
		res.Waits = append(res.Waits, PodWait{
			PodID: pe.pod.ID, SLO: pe.pod.SLO,
			Wait: horizon - pe.since, Scheduled: false, Reason: pe.reason,
		})
	}
	res.Pending = len(queue)
	return res
}

// sortQueue orders pending pods by SLO priority (LSR, LS, then the rest)
// and then submission time — the production queueing discipline.
func sortQueue(q []*pending) {
	prio := func(s trace.SLO) int {
		switch s {
		case trace.SLOLSR:
			return 0
		case trace.SLOLS:
			return 1
		case trace.SLOSystem, trace.SLOVMEnv:
			return 2
		case trace.SLOBE:
			return 4
		default:
			return 3
		}
	}
	sort.SliceStable(q, func(a, b int) bool {
		pa, pb := prio(q[a].pod.SLO), prio(q[b].pod.SLO)
		if pa != pb {
			return pa < pb
		}
		return q[a].since < q[b].since
	})
}

// pending is a submitted-but-unplaced pod in the scheduler queue.
type pending struct {
	pod    *trace.Pod
	since  int64
	reason sched.Reason
}

func (r *Result) observeTick(now int64, snaps []cluster.NodeSnapshot) {
	r.Times = append(r.Times, now)
	var cpuSum, memSum, cpuMax, violated float64
	var busyCPU, busyMem, busyGood float64
	busy := 0
	classSum := map[trace.SLO]float64{}
	classN := map[trace.SLO]int{}
	for i := range snaps {
		s := &snaps[i]
		cu := s.CPUUtil()
		cpuSum += cu
		memSum += s.MemUtil()
		if cu > cpuMax {
			cpuMax = cu
		}
		if s.Violated() {
			violated++
		}
		if len(s.Pods) > 0 {
			busy++
			busyCPU += cu
			busyMem += s.MemUtil()
			var good float64
			for j := range s.Pods {
				p := &s.Pods[j]
				if p.Pod.Pod.Work > 0 {
					good += p.Rate
				} else {
					good += p.CPUUse
				}
			}
			busyGood += good / s.Node.Node.Capacity.CPU
		}
		for j := range s.Pods {
			p := &s.Pods[j]
			pod := p.Pod.Pod
			if pod.Request.CPU > 0 {
				classSum[pod.SLO] += p.CPUUse / pod.Request.CPU
				classN[pod.SLO]++
			}
			if pod.SLO.LatencySensitive() {
				if cur, ok := r.MaxPSI[pod.ID]; !ok || p.CPUPSI60 > cur {
					r.MaxPSI[pod.ID] = p.CPUPSI60
				}
			}
		}
	}
	n := float64(len(snaps))
	r.CPUUtilAvg = append(r.CPUUtilAvg, cpuSum/n)
	r.CPUUtilMax = append(r.CPUUtilMax, cpuMax)
	r.MemUtilAvg = append(r.MemUtilAvg, memSum/n)
	r.Violation = append(r.Violation, violated/n)
	if busy > 0 {
		r.CPUUtilBusy = append(r.CPUUtilBusy, busyCPU/float64(busy))
		r.MemUtilBusy = append(r.MemUtilBusy, busyMem/float64(busy))
		r.GoodputBusy = append(r.GoodputBusy, busyGood/float64(busy))
	} else {
		r.CPUUtilBusy = append(r.CPUUtilBusy, 0)
		r.MemUtilBusy = append(r.MemUtilBusy, 0)
		r.GoodputBusy = append(r.GoodputBusy, 0)
	}
	for _, slo := range []trace.SLO{trace.SLOBE, trace.SLOLS, trace.SLOLSR} {
		v := 0.0
		if classN[slo] > 0 {
			v = classSum[slo] / float64(classN[slo])
		}
		r.ClassUtil[slo] = append(r.ClassUtil[slo], v)
	}
}

// rankPlacement computes the chosen host's rank among all hosts under
// usage-based and request-based alignment scoring (Fig. 10). Rank 1 is the
// highest-scoring host.
func rankPlacement(c *cluster.Cluster, p *trace.Pod, chosen int) Rank {
	nodes := c.Nodes()
	useScore := make([]float64, len(nodes))
	reqScore := make([]float64, len(nodes))
	for i, n := range nodes {
		useScore[i] = p.Request.Dot(n.LastUsage())
		reqScore[i] = p.Request.Dot(n.ReqSum())
	}
	rank := func(scores []float64) int {
		r := 1
		for i, s := range scores {
			if i == chosen {
				continue
			}
			if s > scores[chosen] {
				r++
			}
		}
		return r
	}
	return Rank{
		PodID: p.ID, SLO: p.SLO,
		UsageRank: rank(useScore), ReqRank: rank(reqScore), Nodes: len(nodes),
	}
}

// lifetimeHeap is a min-heap of pod expiry times.
type lifetimeEntry struct {
	at    int64
	podID int
}

type lifetimeHeap []lifetimeEntry

func (h lifetimeHeap) Len() int            { return len(h) }
func (h lifetimeHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h lifetimeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lifetimeHeap) Push(x interface{}) { *h = append(*h, x.(lifetimeEntry)) }
func (h *lifetimeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
