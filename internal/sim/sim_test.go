package sim

import (
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/stats"
	"unisched/internal/trace"
)

func testWorkload(t *testing.T) *trace.Workload {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = 20
	return trace.MustGenerate(cfg)
}

func runAlibaba(t *testing.T, w *trace.Workload, cfg Config) *Result {
	t.Helper()
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	return Run(w, c, sched.NewAlibabaLike(c, 1), cfg)
}

func TestRunBasicInvariants(t *testing.T) {
	w := testWorkload(t)
	res := runAlibaba(t, w, Config{})
	if res.Scheduler != "Alibaba" {
		t.Errorf("scheduler name %q", res.Scheduler)
	}
	ticks := int(w.Horizon / trace.SampleInterval)
	if len(res.Times) != ticks {
		t.Fatalf("tick count %d, want %d", len(res.Times), ticks)
	}
	for i, u := range res.CPUUtilAvg {
		if u < 0 || u > 1.001 {
			t.Fatalf("tick %d avg CPU util %v out of range", i, u)
		}
		if res.CPUUtilMax[i] < u-1e-9 {
			t.Fatalf("max util below avg at tick %d", i)
		}
		if res.Violation[i] < 0 || res.Violation[i] > 1 {
			t.Fatalf("violation rate %v", res.Violation[i])
		}
	}
	// Most pods get placed eventually.
	if res.Placed == 0 {
		t.Fatal("nothing placed")
	}
	// Every pod appears at most once in Waits per placement, and the sum
	// placed+pending equals the wait records.
	if res.Placed+res.Pending > len(res.Waits)+res.Placed {
		t.Fatal("wait accounting broken")
	}
	for _, pw := range res.Waits {
		if pw.Wait < 0 {
			t.Fatalf("negative wait for pod %d", pw.PodID)
		}
	}
	// BE completion times recorded and positive.
	if len(res.BECT) == 0 {
		t.Fatal("no BE completions")
	}
	for id, ct := range res.BECT {
		if ct <= 0 {
			t.Fatalf("pod %d CT %v", id, ct)
		}
	}
	// LS pods have PSI records.
	if len(res.MaxPSI) == 0 {
		t.Fatal("no PSI records")
	}
	for id, psi := range res.MaxPSI {
		if psi < 0 || psi > 1 {
			t.Fatalf("pod %d PSI %v", id, psi)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	w := testWorkload(t)
	a := runAlibaba(t, w, Config{})
	b := runAlibaba(t, w, Config{})
	if a.Placed != b.Placed || a.Pending != b.Pending {
		t.Fatalf("placement differs: %d/%d vs %d/%d", a.Placed, a.Pending, b.Placed, b.Pending)
	}
	for i := range a.CPUUtilAvg {
		if a.CPUUtilAvg[i] != b.CPUUtilAvg[i] {
			t.Fatalf("util series differs at %d", i)
		}
	}
	for id, n := range a.NodeOf {
		if b.NodeOf[id] != n {
			t.Fatalf("pod %d node differs", id)
		}
	}
}

func TestRunUntil(t *testing.T) {
	w := testWorkload(t)
	res := runAlibaba(t, w, Config{Until: 3600})
	if len(res.Times) != int(3600/trace.SampleInterval) {
		t.Errorf("Until ignored: %d ticks", len(res.Times))
	}
}

func TestCollectorFeed(t *testing.T) {
	w := testWorkload(t)
	col := profiler.NewCollector(1)
	runAlibaba(t, w, Config{Collector: col})
	if col.ERO().Pairs() == 0 {
		t.Error("collector saw no pairs")
	}
	if col.Stats().Apps() == 0 {
		t.Error("collector saw no app stats")
	}
	models, err := col.TrainInterference(nil, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(models.LS) == 0 {
		t.Error("no LS models from sim feed")
	}
}

func TestRanksRecorded(t *testing.T) {
	w := testWorkload(t)
	res := runAlibaba(t, w, Config{RecordRanks: true, Until: 3600})
	if len(res.Ranks) == 0 {
		t.Fatal("no ranks recorded")
	}
	for _, r := range res.Ranks {
		if r.UsageRank < 1 || r.UsageRank > r.Nodes || r.ReqRank < 1 || r.ReqRank > r.Nodes {
			t.Fatalf("rank out of range: %+v", r)
		}
	}
}

func TestOnTickCallback(t *testing.T) {
	w := testWorkload(t)
	calls := 0
	runAlibaba(t, w, Config{Until: 600, OnTick: func(ts int64, snaps []cluster.NodeSnapshot) {
		calls++
		if len(snaps) != len(w.Nodes) {
			t.Fatalf("snapshot count %d", len(snaps))
		}
	}})
	if calls != int(600/trace.SampleInterval) {
		t.Errorf("OnTick calls = %d", calls)
	}
}

func TestHeavyTailedWaits(t *testing.T) {
	// Fig. 8: the waiting-time distribution under the production scheduler
	// is heavy-tailed — most pods place immediately, a tail waits long.
	w := testWorkload(t)
	res := runAlibaba(t, w, Config{})
	var waits []float64
	for _, pw := range res.Waits {
		waits = append(waits, float64(pw.Wait))
	}
	cdf := stats.NewCDF(waits)
	if cdf.Quantile(0.5) > 60 {
		t.Errorf("median wait %v too high — queue melting down", cdf.Quantile(0.5))
	}
	if cdf.Max() < 5*cdf.Quantile(0.9)+1 && cdf.Max() < 300 {
		t.Logf("waits: %v", cdf)
	}
}

func TestLSRWaitsShorterThanBE(t *testing.T) {
	// §3.1.3: LSR pods wait less than BE pods thanks to preemption.
	w := testWorkload(t)
	res := runAlibaba(t, w, Config{})
	var lsr, be []float64
	for _, pw := range res.Waits {
		switch pw.SLO {
		case trace.SLOLSR:
			lsr = append(lsr, float64(pw.Wait))
		case trace.SLOBE:
			be = append(be, float64(pw.Wait))
		}
	}
	if len(lsr) == 0 || len(be) == 0 {
		t.Skip("missing classes")
	}
	if stats.Mean(lsr) > stats.Mean(be)+60 {
		t.Errorf("LSR mean wait %v should not exceed BE %v by much",
			stats.Mean(lsr), stats.Mean(be))
	}
}

func TestEndToEndOptum(t *testing.T) {
	// Full pipeline: warm up under the baseline with a collector, train,
	// then run Optum on the same workload with profiles.
	w := testWorkload(t)
	col := profiler.NewCollector(1)
	runAlibaba(t, w, Config{Collector: col})
	models, err := col.TrainInterference(nil, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	prof := core.Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models}

	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	o := core.New(c, prof, core.DefaultOptions(), 3)
	res := Run(w, c, o, Config{})
	if res.Placed == 0 {
		t.Fatal("Optum placed nothing")
	}
	// Memory cap must hold in expectation: mean memory utilization below
	// the 0.8 cap plus slack for profile error.
	if m := stats.Mean(res.MemUtilAvg); m > 0.95 {
		t.Errorf("mean memory utilization %v above cap region", m)
	}
	// Scheduling latency is recorded.
	if len(res.SchedLatency) == 0 {
		t.Error("no scheduling latencies recorded")
	}
}

func TestPreemptionRequeuesBE(t *testing.T) {
	// A tight cluster forces LSR preemption; evicted BE pods must re-enter
	// the queue and eventually finish or stay pending — never vanish.
	cfg := trace.SmallConfig()
	cfg.NumNodes = 6
	cfg.LSRequestFactor = 1.6 // pressure
	w := trace.MustGenerate(cfg)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	res := Run(w, c, sched.NewAlibabaLike(c, 1), Config{})
	// Accounting: every BE pod is placed, pending, or was never submitted.
	seen := map[int]bool{}
	for _, pw := range res.Waits {
		seen[pw.PodID] = true
	}
	for _, p := range w.Pods {
		if !seen[p.ID] {
			t.Fatalf("pod %d vanished from accounting", p.ID)
		}
	}
}

func TestParallelSchedulersEndToEnd(t *testing.T) {
	// A full simulation under 3 parallel Optum schedulers (§4.4) with
	// conflict resolution: everything still gets placed and accounted.
	w := testWorkload(t)
	col := profiler.NewCollector(1)
	runAlibaba(t, w, Config{Collector: col})
	models, err := col.TrainInterference(nil, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	prof := core.Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models}

	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	members := make([]sched.Scheduler, 3)
	for m := range members {
		members[m] = core.New(c, prof, core.DefaultOptions(), int64(7+m))
	}
	par := core.NewParallel("Optum-x3", members...)
	res := Run(w, c, par, Config{ConflictResolve: true})
	if res.Scheduler != "Optum-x3" {
		t.Errorf("scheduler name %q", res.Scheduler)
	}
	// Conflict resolution admits one pod per host per *round* (losers are
	// re-dispatched within the tick up to MaxRounds), so a parallel bundle
	// trades a little throughput for coordination-free members.
	frac := float64(res.Placed) / float64(len(w.Pods))
	if frac < 0.75 {
		t.Errorf("only %.2f of pods placed under parallel schedulers", frac)
	}
	// Accounting still holds: every pod has a wait record.
	seen := map[int]bool{}
	for _, pw := range res.Waits {
		seen[pw.PodID] = true
	}
	for _, p := range w.Pods {
		if !seen[p.ID] {
			t.Fatalf("pod %d missing from accounting", p.ID)
		}
	}
}

func TestGoodputBounded(t *testing.T) {
	// Goodput can never exceed raw utilization (slowdown only subtracts),
	// and both series stay aligned in length.
	w := testWorkload(t)
	res := runAlibaba(t, w, Config{})
	if len(res.GoodputBusy) != len(res.CPUUtilBusy) {
		t.Fatal("series misaligned")
	}
	for i := range res.GoodputBusy {
		if res.GoodputBusy[i] > res.CPUUtilBusy[i]+1e-9 {
			t.Fatalf("tick %d goodput %v above utilization %v",
				i, res.GoodputBusy[i], res.CPUUtilBusy[i])
		}
		if res.GoodputBusy[i] < 0 {
			t.Fatalf("negative goodput at %d", i)
		}
	}
}
