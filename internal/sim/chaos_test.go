package sim

import (
	"reflect"
	"testing"

	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// chaosRun replays the test workload under the Alibaba baseline with a
// fresh injector built from the given seed, schedule and rates.
func chaosRun(t *testing.T, w *trace.Workload, seed int64, schedule []chaos.Event, rates chaos.Rates) *Result {
	t.Helper()
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	inj := chaos.NewInjector(seed, schedule, rates)
	return Run(w, c, sched.NewAlibabaLike(c, 1), Config{Chaos: inj})
}

func TestChaosRunByteIdenticalAcrossRuns(t *testing.T) {
	// The acceptance bar for fault injection: the same seed + schedule must
	// yield a byte-identical Result — chaos runs are exactly as
	// reproducible as failure-free ones. SchedLatency is wall-clock (the
	// documented sole non-deterministic field), so it is zeroed first.
	w := testWorkload(t)
	schedule := []chaos.Event{
		{At: 1800, Kind: chaos.NodeFail, NodeID: 2},
		{At: 3600, Kind: chaos.NodeRecover, NodeID: 2},
		{At: 5400, Kind: chaos.BlackoutStart, For: 900},
	}
	rates := chaos.DefaultRates()
	a := chaosRun(t, w, 7, schedule, rates)
	b := chaosRun(t, w, 7, schedule, rates)
	a.SchedLatency, b.SchedLatency = nil, nil
	stripWallClock(a)
	stripWallClock(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seed and schedule produced different Results")
	}

	// A different seed must actually change the stochastic fault stream
	// (otherwise the test above proves nothing).
	c := chaosRun(t, w, 8, schedule, rates)
	c.SchedLatency = nil
	stripWallClock(c)
	if reflect.DeepEqual(a, c) {
		t.Error("different chaos seeds produced identical Results")
	}
}

// stripWallClock drops the pipeline stage timings — like SchedLatency they
// are wall-clock; the stage *counters* stay under the determinism check.
func stripWallClock(r *Result) {
	if r.Pipeline != nil {
		r.Pipeline.StageMicros = nil
		r.Pipeline.StageMicrosPerDecision = nil
	}
}

func TestChaosDisruptionAccounting(t *testing.T) {
	w := testWorkload(t)
	res := chaosRun(t, w, 7, nil, chaos.DefaultRates())

	d := &res.Disruption
	if d.Evictions == 0 {
		t.Fatal("default rates injected no displacements over the horizon")
	}
	if d.Reschedules+d.Exhausted > d.Evictions {
		t.Errorf("reschedules %d + exhausted %d exceed evictions %d",
			d.Reschedules, d.Exhausted, d.Evictions)
	}
	if len(d.TimeToReplace) != d.Reschedules {
		t.Errorf("TimeToReplace entries %d != reschedules %d", len(d.TimeToReplace), d.Reschedules)
	}
	for _, ttr := range d.TimeToReplace {
		if ttr < 0 {
			t.Fatalf("negative time-to-replacement %v", ttr)
		}
	}
	if len(d.DownNodes) != len(res.Times) || len(d.CapacityLost) != len(res.Times) {
		t.Fatalf("disruption series misaligned: %d/%d vs %d ticks",
			len(d.DownNodes), len(d.CapacityLost), len(res.Times))
	}
	for i, f := range d.CapacityLost {
		if f < 0 || f > 1 {
			t.Fatalf("capacity lost %v out of range", f)
		}
		if (f > 0) != (d.DownNodes[i] > 0) {
			t.Fatalf("tick %d: capacity lost %v with %d down nodes", i, f, d.DownNodes[i])
		}
	}

	// Zero lost pods: every submitted pod is placed, pending, or reported
	// evicted-with-exhausted-retries — displacement never silently loses
	// workloads.
	seen := map[int]bool{}
	exhausted := 0
	for _, pw := range res.Waits {
		seen[pw.PodID] = true
		if pw.Exhausted {
			exhausted++
		}
	}
	for _, p := range w.Pods {
		if p.Submit <= w.Horizon && !seen[p.ID] {
			t.Fatalf("pod %d vanished from accounting under chaos", p.ID)
		}
	}
	if exhausted != d.Exhausted {
		t.Errorf("exhausted wait records %d != counter %d", exhausted, d.Exhausted)
	}
}

func TestScheduledFailAndRecoverShowInSeries(t *testing.T) {
	w := testWorkload(t)
	schedule := []chaos.Event{
		{At: 1800, Kind: chaos.NodeFail, NodeID: 0},
		{At: 3600, Kind: chaos.NodeRecover, NodeID: 0},
	}
	res := chaosRun(t, w, 1, schedule, chaos.Rates{})
	tick := func(at int64) int { return int(at / trace.SampleInterval) }
	if got := res.Disruption.DownNodes[tick(1800)]; got != 1 {
		t.Errorf("down nodes at failure = %d, want 1", got)
	}
	if got := res.Disruption.DownNodes[tick(1800)-1]; got != 0 {
		t.Errorf("down nodes before failure = %d, want 0", got)
	}
	if got := res.Disruption.DownNodes[tick(3600)]; got != 0 {
		t.Errorf("down nodes after recovery = %d, want 0", got)
	}
}

func TestRetryBudgetExhaustsUnderPermanentPressure(t *testing.T) {
	// Evict pods relentlessly with a tiny budget: some pod must hit the
	// budget and be reported, not retried forever or dropped.
	w := testWorkload(t)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	inj := chaos.NewInjector(3, nil, chaos.Rates{PodEvictPerHour: 600})
	res := Run(w, c, sched.NewAlibabaLike(c, 1), Config{
		Chaos: inj,
		Retry: RetryPolicy{MaxDisplacements: 2, BaseBackoff: trace.SampleInterval},
	})
	if res.Disruption.Exhausted == 0 {
		t.Error("no pod exhausted a 2-displacement budget under 600 evictions/hour")
	}
}

func TestBackoffSchedule(t *testing.T) {
	rp := RetryPolicy{BaseBackoff: 30, MaxBackoff: 200}
	want := []int64{30, 60, 120, 200, 200}
	for i, w := range want {
		if got := rp.backoff(i); got != w {
			t.Errorf("backoff(%d) = %d, want %d", i, got, w)
		}
	}
	if got := (RetryPolicy{}).backoff(5); got != 0 {
		t.Errorf("zero policy backoff = %d", got)
	}
	if got := (RetryPolicy{BaseBackoff: 10}).backoff(50); got != 320 {
		t.Errorf("default cap = %d, want 32x base", got)
	}
}

// floodScheduler targets node 0 for every pod — the adversarial input for
// the conflict-resolution path: every decision in a batch races on the
// same host.
type floodScheduler struct{ name string }

func (f *floodScheduler) Name() string { return f.name }
func (f *floodScheduler) Schedule(pods []*trace.Pod, now int64) []sched.Decision {
	out := make([]sched.Decision, len(pods))
	for i, p := range pods {
		out[i] = sched.Decision{Pod: p, NodeID: 0, Score: float64(p.ID)}
	}
	return out
}

func TestConflictLoserNeverDroppedAndRoundsProgress(t *testing.T) {
	// Regression for the within-tick re-queue path: two parallel members
	// flooding one host produce a conflict for every pod every round. The
	// losers must survive to the next tick (never dropped), and the
	// MaxRounds loop must deploy more than one pod per tick — one winner
	// per round, not one per tick.
	w := testWorkload(t)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	par := core.NewParallel("flood-x2",
		&floodScheduler{name: "flood-a"}, &floodScheduler{name: "flood-b"})
	until := int64(10 * trace.SampleInterval)
	res := Run(w, c, par, Config{ConflictResolve: true, Until: until})

	ticks := int(until / trace.SampleInterval)
	if res.Placed <= ticks {
		t.Errorf("placed %d pods over %d ticks — conflict rounds are not re-dispatching within the tick", res.Placed, ticks)
	}
	if res.Placed > ticks*8 {
		t.Errorf("placed %d pods over %d ticks — MaxRounds bound (8) not applied", res.Placed, ticks)
	}
	// Every submitted pod is accounted: placed or still pending.
	seen := map[int]bool{}
	for _, pw := range res.Waits {
		seen[pw.PodID] = true
	}
	for _, p := range w.Pods {
		if p.Submit <= until && !seen[p.ID] {
			t.Fatalf("pod %d dropped after losing conflicts", p.ID)
		}
	}
	if res.Placed+res.Pending != len(seen) {
		t.Errorf("placed %d + pending %d != %d accounted pods",
			res.Placed, res.Pending, len(seen))
	}
	// All placements landed on the flooded host.
	for id, n := range res.NodeOf {
		if n != 0 {
			t.Fatalf("pod %d placed on node %d by a node-0-only scheduler", id, n)
		}
	}
}

func TestLegacyConfigUnchangedByRetryPlumbing(t *testing.T) {
	// A zero-value Config (no chaos, no retry) must behave exactly as
	// before the fault-injection rework: this pins the refactor.
	w := testWorkload(t)
	a := runAlibaba(t, w, Config{})
	if a.Disruption.Evictions != 0 || a.Disruption.Exhausted != 0 {
		t.Errorf("failure-free run reports disruption: %+v", a.Disruption)
	}
	for _, f := range a.Disruption.CapacityLost {
		if f != 0 {
			t.Fatal("capacity lost without chaos")
		}
	}
	for _, pw := range a.Waits {
		if pw.Exhausted {
			t.Fatal("exhausted pod without a retry budget")
		}
	}
}
