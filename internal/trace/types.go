// Package trace defines the unified-scheduling trace schema used throughout
// the study — applications, pods, nodes, and 30-second samples of resource
// usage and performance — together with a synthetic workload generator that
// mirrors the statistical structure of the Alibaba unified-scheduling
// traces the paper characterizes (heavy-tailed best-effort arrivals,
// diurnal latency-sensitive load, consistent within-application behaviour,
// and large request-vs-usage gaps).
package trace

import (
	"fmt"
	"math"
)

// SampleInterval is the OS-level metric sampling interval used by the
// tracing system, in seconds (the Alibaba trace samples every 30 s).
const SampleInterval int64 = 30

// Day is one day in seconds; the diurnal QPS period.
const Day int64 = 86400

// SLO is the service-level-objective class of a pod, mirroring Fig. 2(b).
type SLO int

// SLO classes in the trace. LSR binds CPU cores and may preempt BE; LS is
// long-running latency-sensitive; BE is best-effort batch. System, VMEnv
// and Unknown pods carry no explicit SLO and are excluded from most of the
// characterization, as in the paper.
const (
	SLOUnknown SLO = iota
	SLOSystem
	SLOVMEnv
	SLOLSR
	SLOLS
	SLOBE
)

var sloNames = [...]string{"Unknown", "SYSTEM", "VMEnv", "LSR", "LS", "BE"}

// String returns the trace-file name of the SLO class.
func (s SLO) String() string {
	if s < 0 || int(s) >= len(sloNames) {
		return fmt.Sprintf("SLO(%d)", int(s))
	}
	return sloNames[s]
}

// ParseSLO converts a trace-file SLO name back to an SLO value.
func ParseSLO(name string) (SLO, error) {
	for i, n := range sloNames {
		if n == name {
			return SLO(i), nil
		}
	}
	return SLOUnknown, fmt.Errorf("trace: unknown SLO %q", name)
}

// LatencySensitive reports whether the class is LS or LSR. The paper merges
// the two for most of the characterization because their utilization
// patterns are similar.
func (s SLO) LatencySensitive() bool { return s == SLOLS || s == SLOLSR }

// Explicit reports whether the class carries an explicit SLO requirement.
func (s SLO) Explicit() bool { return s == SLOLSR || s == SLOLS || s == SLOBE }

// Resources is a (CPU, memory) vector. Both dimensions are normalized: a
// node has capacity ~1.0 in each, matching the normalized Alibaba traces.
type Resources struct {
	CPU float64 `json:"cpu"`
	Mem float64 `json:"mem"`
}

// Add returns r + o component-wise.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.CPU + o.CPU, r.Mem + o.Mem}
}

// Sub returns r - o component-wise.
func (r Resources) Sub(o Resources) Resources {
	return Resources{r.CPU - o.CPU, r.Mem - o.Mem}
}

// Scale returns r scaled by k in both dimensions.
func (r Resources) Scale(k float64) Resources {
	return Resources{r.CPU * k, r.Mem * k}
}

// FitsIn reports whether r fits within capacity c in both dimensions.
func (r Resources) FitsIn(c Resources) bool {
	return r.CPU <= c.CPU && r.Mem <= c.Mem
}

// Dot returns the inner product of the two vectors — the "alignment score"
// production schedulers use to rank hosts for multi-dimensional packing.
func (r Resources) Dot(o Resources) float64 {
	return r.CPU*o.CPU + r.Mem*o.Mem
}

// App is an application: a group of pods that provide the same service (LS)
// or belong to the same batch framework job class (BE). Pods within an app
// behave fairly consistently (Implication 6), so the behavioural parameters
// live here and individual pods only carry small per-pod perturbations.
type App struct {
	ID  string `json:"id"`
	SLO SLO    `json:"slo"`

	// Request and Limit are the per-pod resource template. Limit >= Request.
	Request Resources `json:"request"`
	Limit   Resources `json:"limit"`

	// CPUBaseUtil is the mean fraction of the CPU request a pod actually
	// uses; the trace shows this is far below 1 (Fig. 6).
	CPUBaseUtil float64 `json:"cpu_base_util"`
	// CPUDiurnalAmp is the relative amplitude of the diurnal CPU/QPS cycle
	// for LS apps (0 for BE).
	CPUDiurnalAmp float64 `json:"cpu_diurnal_amp"`
	// CPUNoise is the relative per-sample noise on CPU usage.
	CPUNoise float64 `json:"cpu_noise"`

	// MemUtil is the mean fraction of the memory request a pod uses. BE
	// apps use memory nearly fully; LS apps under-use it (Fig. 6b).
	MemUtil float64 `json:"mem_util"`
	// MemCoV controls within-app memory variability; apps with MemCoV
	// below ~0.01 are "stable" for the Resource Usage Profiler.
	MemCoV float64 `json:"mem_cov"`

	// QPSBase is the base per-pod query rate for LS apps.
	QPSBase float64 `json:"qps_base"`
	// RTBase is the base response time (ms) for LS apps at zero pressure.
	RTBase float64 `json:"rt_base"`

	// PSISensitivity scales how strongly host contention translates into
	// CPU PSI for this app's pods (the per-app profile Optum learns).
	PSISensitivity float64 `json:"psi_sensitivity"`
	// RTDepNoise is the amplitude of the dependency-induced RT noise: a
	// service request traverses many pods, so one pod's RT is polluted by
	// its dependencies (the paper's reason RT is a poor indicator).
	RTDepNoise float64 `json:"rt_dep_noise"`

	// CTSlowCPU and CTSlowMem scale how strongly host CPU / memory
	// contention inflates a BE pod's completion time (Fig. 16).
	CTSlowCPU float64 `json:"ct_slow_cpu"`
	CTSlowMem float64 `json:"ct_slow_mem"`

	// MeanDuration is the mean nominal duration (seconds) of a BE pod at
	// zero contention; 0 means long-running (LS/LSR).
	MeanDuration float64 `json:"mean_duration"`
	// InputCoV is the per-pod input-size variability for BE apps — batch
	// pods are data-parallel with widely varying input sizes, which is why
	// BE CPU usage is less consistent than memory (Fig. 12b).
	InputCoV float64 `json:"input_cov"`

	// Phase is the app's diurnal phase offset in [0, 1).
	Phase float64 `json:"phase"`

	// Affinity, when >= 0, restricts the app's pods to nodes whose Group
	// matches. -1 means no affinity constraint.
	Affinity int `json:"affinity"`
}

// LongRunning reports whether the app's pods run until the end of the trace.
func (a *App) LongRunning() bool { return a.MeanDuration == 0 }

// Diurnal returns the diurnal multiplier for this app at time t: a smooth
// daily cycle in [1-amp, 1+amp] shifted by the app's phase.
func (a *App) Diurnal(t int64) float64 {
	if a.CPUDiurnalAmp == 0 {
		return 1
	}
	x := 2 * math.Pi * (float64(t)/float64(Day) + a.Phase)
	return 1 + a.CPUDiurnalAmp*math.Sin(x)
}

// Pod is a single task instance. Each pod belongs to exactly one App and is
// scheduled onto exactly one node where it runs inside a container group.
type Pod struct {
	ID     int    `json:"id"`
	AppID  string `json:"app_id"`
	SLO    SLO    `json:"slo"`
	Submit int64  `json:"submit"` // submission time, seconds from trace start

	Request Resources `json:"request"`
	Limit   Resources `json:"limit"`

	// CPUScale and MemScale are the per-pod multipliers drawn at
	// generation time (input-size effects for BE, replica skew for LS).
	CPUScale float64 `json:"cpu_scale"`
	MemScale float64 `json:"mem_scale"`

	// Work is the total CPU work (normalized core-seconds) a BE pod must
	// complete; 0 for long-running pods.
	Work float64 `json:"work"`

	// Lifetime is the scheduled removal time for long-running pods
	// (seconds from trace start); 0 means "runs to the end of the trace".
	Lifetime int64 `json:"lifetime"`

	// Tenant and Queue attribute the pod to a leaf of the engine's
	// multi-tenant quota tree (internal/quota). Empty values mean "the
	// default tenant's default queue" and keep single-tenant specs, journal
	// blobs, and hashes byte-identical to pods that predate attribution.
	Tenant string `json:"tenant,omitempty"`
	Queue  string `json:"queue,omitempty"`

	app *App // resolved pointer; set by Workload.link
}

// Linked reports whether the pod's application pointer is resolved.
// Schedulers require linked pods; services accepting pods over the wire
// check this before admission.
func (p *Pod) Linked() bool { return p.app != nil }

// App returns the pod's application. It panics if the pod has not been
// linked into a Workload, which indicates a construction bug.
func (p *Pod) App() *App {
	if p.app == nil {
		panic(fmt.Sprintf("trace: pod %d not linked to app %q", p.ID, p.AppID))
	}
	return p.app
}

// NominalDuration returns the duration a BE pod would take with its demand
// fully satisfied and no contention, or 0 for long-running pods.
func (p *Pod) NominalDuration() float64 {
	if p.Work == 0 {
		return 0
	}
	rate := p.Request.CPU * p.app.CPUBaseUtil * p.CPUScale
	if rate <= 0 {
		return 0
	}
	return p.Work / rate
}

// CPUDemand returns the CPU the pod wants to consume at time t, before any
// contention capping by the host, in normalized cores. The demand is the
// app's base utilization modulated by the diurnal cycle (LS) and
// deterministic per-(pod, sample) noise, clamped to the pod's limit.
func (p *Pod) CPUDemand(t int64) float64 {
	t -= t % SampleInterval
	a := p.App()
	base := p.Request.CPU * a.CPUBaseUtil * p.CPUScale * a.Diurnal(t)
	if a.CPUNoise > 0 {
		base *= 1 + a.CPUNoise*noiseSym(uint64(p.ID), t)
	}
	if base < 0 {
		base = 0
	}
	if lim := p.Limit.CPU; lim > 0 && base > lim {
		base = lim
	}
	return base
}

// MemDemand returns the memory the pod holds at time t. Memory is far more
// stable than CPU in the trace; the noise term is small and most BE apps
// sit near their request.
func (p *Pod) MemDemand(t int64) float64 {
	t -= t % SampleInterval
	a := p.App()
	base := p.Request.Mem * a.MemUtil * p.MemScale
	if a.MemCoV > 0 {
		base *= 1 + a.MemCoV*noiseSym(uint64(p.ID)^0x9e3779b97f4a7c15, t)
	}
	if base < 0 {
		base = 0
	}
	if lim := p.Limit.Mem; lim > 0 && base > lim {
		base = lim
	}
	return base
}

// QPS returns the query rate hitting the pod at time t (0 for BE pods).
// QPS is well balanced across the pods of an app (Fig. 12a), so there is no
// per-pod scale factor, only small sample noise.
func (p *Pod) QPS(t int64) float64 {
	t -= t % SampleInterval
	a := p.App()
	if !p.SLO.LatencySensitive() || a.QPSBase == 0 {
		return 0
	}
	q := a.QPSBase * a.Diurnal(t) * (1 + 0.05*noiseSym(uint64(p.ID)^0xdeadbeef, t))
	if q < 0 {
		q = 0
	}
	return q
}

// Node is a physical host. Capacity is normalized (≈1.0 per dimension).
type Node struct {
	ID       int       `json:"id"`
	Capacity Resources `json:"capacity"`
	// Group is the node's affinity group (rack/zone/hardware pool).
	Group int `json:"group"`
}

// Workload bundles the applications, pods, and nodes of one generated or
// loaded trace.
type Workload struct {
	Apps  []*App  `json:"apps"`
	Pods  []*Pod  `json:"pods"`
	Nodes []*Node `json:"nodes"`
	// Horizon is the trace length in seconds.
	Horizon int64 `json:"horizon"`
	// Seed records the generator seed for reproducibility.
	Seed int64 `json:"seed"`

	appByID map[string]*App
}

// AppByID returns the application with the given ID, or nil.
func (w *Workload) AppByID(id string) *App {
	if w.appByID == nil {
		w.link()
	}
	return w.appByID[id]
}

// LinkPod resolves an externally-constructed pod (e.g. decoded from an API
// request) against this workload's applications. The pod is not appended
// to w.Pods; callers own its lifecycle.
func (w *Workload) LinkPod(p *Pod) error {
	if w.appByID == nil {
		w.link()
	}
	a := w.appByID[p.AppID]
	if a == nil {
		return fmt.Errorf("trace: pod %d references unknown app %q", p.ID, p.AppID)
	}
	p.app = a
	return nil
}

// link resolves pod->app pointers and builds the app index. It must be
// called after constructing or decoding a Workload; public constructors and
// decoders do this automatically.
func (w *Workload) link() {
	w.appByID = make(map[string]*App, len(w.Apps))
	for _, a := range w.Apps {
		w.appByID[a.ID] = a
	}
	for _, p := range w.Pods {
		p.app = w.appByID[p.AppID]
		if p.app == nil {
			panic(fmt.Sprintf("trace: pod %d references unknown app %q", p.ID, p.AppID))
		}
	}
}

// Validate checks structural invariants of the workload and returns the
// first violation found, or nil.
func (w *Workload) Validate() error {
	if w.Horizon <= 0 {
		return fmt.Errorf("trace: non-positive horizon %d", w.Horizon)
	}
	if len(w.Nodes) == 0 {
		return fmt.Errorf("trace: no nodes")
	}
	seen := make(map[string]bool, len(w.Apps))
	for _, a := range w.Apps {
		if a.ID == "" {
			return fmt.Errorf("trace: app with empty ID")
		}
		if seen[a.ID] {
			return fmt.Errorf("trace: duplicate app ID %q", a.ID)
		}
		seen[a.ID] = true
		if a.Request.CPU <= 0 || a.Request.Mem <= 0 {
			return fmt.Errorf("trace: app %q has non-positive request", a.ID)
		}
		if a.Limit.CPU < a.Request.CPU || a.Limit.Mem < a.Request.Mem {
			return fmt.Errorf("trace: app %q limit below request", a.ID)
		}
	}
	if w.appByID == nil {
		w.link()
	}
	for _, p := range w.Pods {
		if w.appByID[p.AppID] == nil {
			return fmt.Errorf("trace: pod %d references unknown app %q", p.ID, p.AppID)
		}
		if p.Submit < 0 || p.Submit > w.Horizon {
			return fmt.Errorf("trace: pod %d submit %d outside horizon", p.ID, p.Submit)
		}
		if p.SLO == SLOBE && p.Work <= 0 {
			return fmt.Errorf("trace: BE pod %d has no work", p.ID)
		}
	}
	return nil
}

// noiseSym returns a deterministic pseudo-random value in [-1, 1) derived
// from a pod identity and a sample time. Using a hash rather than a stateful
// RNG means pod usage can be evaluated at any time in any order and still be
// reproducible — which the trace-replay experiments rely on.
func noiseSym(id uint64, t int64) float64 {
	return 2*noise01(id, t) - 1
}

func noise01(id uint64, t int64) float64 {
	// Quantize to the sampling grid so values are stable within a sample.
	x := id*0x9e3779b97f4a7c15 ^ uint64(t/SampleInterval)*0xbf58476d1ce4e5b9
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
