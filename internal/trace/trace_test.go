package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"unisched/internal/stats"
)

func TestSLOStringParse(t *testing.T) {
	for _, s := range []SLO{SLOUnknown, SLOSystem, SLOVMEnv, SLOLSR, SLOLS, SLOBE} {
		got, err := ParseSLO(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSLO(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSLO("bogus"); err == nil {
		t.Error("ParseSLO of bogus name should fail")
	}
	if SLO(99).String() == "" {
		t.Error("out-of-range SLO should still stringify")
	}
}

func TestSLOPredicates(t *testing.T) {
	if !SLOLS.LatencySensitive() || !SLOLSR.LatencySensitive() || SLOBE.LatencySensitive() {
		t.Error("LatencySensitive misclassifies")
	}
	if !SLOBE.Explicit() || SLOUnknown.Explicit() || SLOSystem.Explicit() {
		t.Error("Explicit misclassifies")
	}
}

func TestResourcesOps(t *testing.T) {
	a := Resources{1, 2}
	b := Resources{0.5, 0.5}
	if got := a.Add(b); got != (Resources{1.5, 2.5}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Resources{0.5, 1.5}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Scale(2); got != (Resources{2, 4}) {
		t.Errorf("Scale = %+v", got)
	}
	if !b.FitsIn(a) || a.FitsIn(b) {
		t.Error("FitsIn misbehaves")
	}
	if got := a.Dot(b); got != 1.5 {
		t.Errorf("Dot = %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallConfig()
	w1 := MustGenerate(cfg)
	w2 := MustGenerate(cfg)
	if len(w1.Pods) != len(w2.Pods) || len(w1.Apps) != len(w2.Apps) {
		t.Fatalf("sizes differ: %d/%d pods, %d/%d apps",
			len(w1.Pods), len(w2.Pods), len(w1.Apps), len(w2.Apps))
	}
	for i := range w1.Pods {
		p1, p2 := w1.Pods[i], w2.Pods[i]
		if p1.AppID != p2.AppID || p1.Submit != p2.Submit || p1.Work != p2.Work {
			t.Fatalf("pod %d differs: %+v vs %+v", i, p1, p2)
		}
	}
	// A different seed must change the workload.
	cfg.Seed = 99
	w3 := MustGenerate(cfg)
	if len(w3.Pods) == len(w1.Pods) {
		same := true
		for i := range w3.Pods {
			if w3.Pods[i].Submit != w1.Pods[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config should fail")
	}
	cfg := SmallConfig()
	cfg.Horizon = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestGeneratedShapes(t *testing.T) {
	w := MustGenerate(SmallConfig())
	if len(w.Pods) < 500 {
		t.Fatalf("too few pods: %d", len(w.Pods))
	}

	// Pods sorted by submission time with dense IDs.
	for i := 1; i < len(w.Pods); i++ {
		if w.Pods[i].Submit < w.Pods[i-1].Submit {
			t.Fatal("pods not sorted by submit time")
		}
		if w.Pods[i].ID != i {
			t.Fatal("pod IDs not dense")
		}
	}

	counts := map[SLO]int{}
	for _, p := range w.Pods {
		counts[p.SLO]++
	}
	total := len(w.Pods)
	if counts[SLOBE] == 0 || counts[SLOLS] == 0 || counts[SLOLSR] == 0 {
		t.Fatalf("missing SLO classes: %v", counts)
	}
	// Explicit-SLO pods should dominate but Unknown should exist (Fig 2b).
	if counts[SLOUnknown] == 0 {
		t.Error("no Unknown pods")
	}
	exp := counts[SLOBE] + counts[SLOLS] + counts[SLOLSR]
	if frac := float64(exp) / float64(total); frac < 0.5 {
		t.Errorf("explicit-SLO fraction = %.2f, want > 0.5", frac)
	}

	// BE submissions far outnumber LS submissions (Fig 3a).
	if counts[SLOBE] < 3*counts[SLOLS] {
		t.Errorf("BE (%d) should dominate LS (%d) submissions", counts[SLOBE], counts[SLOLS])
	}

	// Request >> usage: mean CPU demand well below request for LS pods.
	var reqSum, useSum float64
	for _, p := range w.Pods {
		if p.SLO != SLOLS {
			continue
		}
		reqSum += p.Request.CPU
		useSum += p.CPUDemand(p.Submit + 3600)
	}
	if useSum >= 0.6*reqSum {
		t.Errorf("LS usage/request = %.2f, want well below 1", useSum/reqSum)
	}
}

func TestHeavyTailedArrivals(t *testing.T) {
	w := MustGenerate(SmallConfig())
	// Count submissions per minute; the distribution should be heavy-tailed
	// (Fig 7): max far above mean.
	perMin := map[int64]int{}
	for _, p := range w.Pods {
		perMin[p.Submit/60]++
	}
	var xs []float64
	for _, c := range perMin {
		xs = append(xs, float64(c))
	}
	mean := stats.Mean(xs)
	max := stats.Max(xs)
	if max < 5*mean {
		t.Errorf("arrivals not heavy-tailed: max=%v mean=%v", max, mean)
	}
}

func TestDiurnalQPS(t *testing.T) {
	w := MustGenerate(SmallConfig())
	var app *App
	for _, a := range w.Apps {
		if a.SLO == SLOLS && a.QPSBase > 0 {
			app = a
			break
		}
	}
	if app == nil {
		t.Fatal("no LS app")
	}
	// The diurnal multiplier must actually cycle within a day.
	lo, hi := math.Inf(1), math.Inf(-1)
	for ts := int64(0); ts < Day; ts += 600 {
		v := app.Diurnal(ts)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 0.3 {
		t.Errorf("diurnal swing too small: [%v, %v]", lo, hi)
	}
}

func TestBEAntiPhase(t *testing.T) {
	w := MustGenerate(SmallConfig())
	var ls, be *App
	for _, a := range w.Apps {
		if ls == nil && a.SLO == SLOLS {
			ls = a
		}
		if be == nil && a.SLO == SLOBE {
			be = a
		}
	}
	// Sample both diurnal curves; they should be negatively correlated.
	var lsv, bev []float64
	for ts := int64(0); ts < Day; ts += 900 {
		lsv = append(lsv, ls.Diurnal(ts))
		bev = append(bev, be.Diurnal(ts))
	}
	if c := stats.Pearson(lsv, bev); c > -0.5 {
		t.Errorf("BE/LS diurnal correlation = %v, want strongly negative", c)
	}
}

func TestPodDemandProperties(t *testing.T) {
	w := MustGenerate(SmallConfig())
	for _, p := range w.Pods[:200] {
		for _, ts := range []int64{0, 3600, 7200} {
			c := p.CPUDemand(ts)
			m := p.MemDemand(ts)
			if c < 0 || m < 0 {
				t.Fatalf("negative demand for pod %d", p.ID)
			}
			if p.Limit.CPU > 0 && c > p.Limit.CPU+1e-9 {
				t.Fatalf("CPU demand %v exceeds limit %v", c, p.Limit.CPU)
			}
			if p.Limit.Mem > 0 && m > p.Limit.Mem+1e-9 {
				t.Fatalf("mem demand %v exceeds limit %v", m, p.Limit.Mem)
			}
			if q := p.QPS(ts); q < 0 {
				t.Fatalf("negative QPS")
			}
			if p.SLO == SLOBE && p.QPS(ts) != 0 {
				t.Fatal("BE pod has QPS")
			}
		}
	}
}

func TestDemandDeterministicAcrossCalls(t *testing.T) {
	w := MustGenerate(SmallConfig())
	p := w.Pods[10]
	if p.CPUDemand(1234) != p.CPUDemand(1234) {
		t.Error("CPUDemand not deterministic")
	}
	// Stable within a sampling interval, may change across intervals.
	if p.CPUDemand(60) != p.CPUDemand(60+SampleInterval-1) {
		t.Error("demand not stable within sampling interval")
	}
}

func TestNominalDuration(t *testing.T) {
	w := MustGenerate(SmallConfig())
	for _, p := range w.Pods {
		d := p.NominalDuration()
		if p.SLO == SLOBE {
			if d <= 0 {
				t.Fatalf("BE pod %d nominal duration %v", p.ID, d)
			}
		} else if p.Work == 0 && d != 0 {
			t.Fatalf("long-running pod %d has nominal duration %v", p.ID, d)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := MustGenerate(SmallConfig())
	var buf bytes.Buffer
	if err := WriteJSON(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pods) != len(w.Pods) || len(got.Apps) != len(w.Apps) || len(got.Nodes) != len(w.Nodes) {
		t.Fatal("round-trip changed sizes")
	}
	// Linked pods must still compute identical demand.
	for _, i := range []int{0, 17, len(w.Pods) - 1} {
		if got.Pods[i].CPUDemand(300) != w.Pods[i].CPUDemand(300) {
			t.Fatalf("pod %d demand differs after round trip", i)
		}
	}
	if got.AppByID(w.Apps[0].ID) == nil {
		t.Error("AppByID broken after round trip")
	}
}

func TestSaveLoadFile(t *testing.T) {
	w := MustGenerate(SmallConfig())
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveFile(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pods) != len(w.Pods) {
		t.Fatal("file round-trip changed pod count")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	w := MustGenerate(SmallConfig())
	w.Pods[0].AppID = "nope"
	if err := w.Validate(); err == nil {
		t.Error("unknown app ID should fail validation")
	}
	w = MustGenerate(SmallConfig())
	w.Pods[0].Submit = w.Horizon + 10
	if err := w.Validate(); err == nil {
		t.Error("submit beyond horizon should fail validation")
	}
	w = MustGenerate(SmallConfig())
	w.Apps[0].Limit = Resources{}
	if err := w.Validate(); err == nil {
		t.Error("limit below request should fail validation")
	}
}

// Property: noise is bounded and deterministic.
func TestNoiseProperty(t *testing.T) {
	f := func(id uint64, tt int64) bool {
		v := noise01(id, tt)
		return v >= 0 && v < 1 && v == noise01(id, tt) &&
			noiseSym(id, tt) >= -1 && noiseSym(id, tt) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoundedParetoMean(t *testing.T) {
	// Monte-Carlo check of the analytic bounded-Pareto mean.
	got := boundedParetoMean(1, 1.2, 400)
	var sum float64
	const n = 200000
	r := newTestRand()
	for i := 0; i < n; i++ {
		sum += stats.BoundedPareto(r, 1, 1.2, 400)
	}
	mc := sum / n
	if math.Abs(got-mc)/mc > 0.15 {
		t.Errorf("analytic mean %v vs monte-carlo %v", got, mc)
	}
}
