package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"unisched/internal/stats"
)

// Config controls the synthetic workload generator. The defaults reproduce
// the statistical shapes of the Alibaba unified-scheduling trace at a
// configurable scale: heavy-tailed BE submissions, constant-rate LS
// submissions, diurnal QPS, ~30 % average CPU utilization under the
// baseline scheduler, CPU requests overcommitted up to ~4x, and large
// request-vs-usage gaps.
type Config struct {
	Seed int64

	// NumNodes is the cluster size; the paper's testbed uses ~6000.
	NumNodes int
	// NodeGroups is the number of affinity groups nodes are split into.
	NodeGroups int
	// Horizon is the trace length in seconds (the paper analyzes 8 days).
	Horizon int64

	// Application population sizes.
	NumLSApps    int
	NumLSRApps   int
	NumBEApps    int
	NumOtherApps int // Unknown/SYSTEM/VMEnv apps with no explicit SLO

	// LSRequestFactor is the target ratio of the sum of LS+LSR CPU
	// requests to total cluster CPU capacity. Values above 1 overcommit.
	LSRequestFactor float64
	// BERequestFactor is the target steady-state ratio of running BE CPU
	// requests to total cluster CPU capacity.
	BERequestFactor float64
	// OtherRequestFactor is the same for the no-explicit-SLO population.
	OtherRequestFactor float64

	// AffinityFraction is the fraction of apps constrained to a node group.
	AffinityFraction float64

	// BEBurstAlpha is the Pareto shape of BE job fan-out (tasks per job).
	// Values near 1 give the heavy-tailed pods-per-minute of Fig. 7.
	BEBurstAlpha float64
	// BEMaxBurst bounds a single BE job's task count.
	BEMaxBurst int

	// PodSize scales every drawn per-pod resource request. The real trace
	// uses very small normalized requests and hundreds of thousands of
	// pods; larger PodSize values keep the same distributional shapes at a
	// pod count a laptop-scale run can afford.
	PodSize float64
}

// DefaultConfig returns a mid-scale configuration: 1 simulated day on a few
// hundred nodes. Use Scale* helpers or edit fields for other scales.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		NumNodes:           200,
		NodeGroups:         8,
		Horizon:            Day,
		NumLSApps:          60,
		NumLSRApps:         15,
		NumBEApps:          40,
		NumOtherApps:       25,
		LSRequestFactor:    0.55,
		BERequestFactor:    0.25,
		OtherRequestFactor: 0.08,
		AffinityFraction:   0.08,
		BEBurstAlpha:       1.1,
		BEMaxBurst:         400,
		PodSize:            2.0,
	}
}

// SmallConfig returns a fast configuration for unit and integration tests:
// a few thousand pods on a small cluster over a few hours.
func SmallConfig() Config {
	c := DefaultConfig()
	c.NumNodes = 40
	c.NodeGroups = 4
	c.Horizon = 3 * 3600
	c.NumLSApps = 15
	c.NumLSRApps = 5
	c.NumBEApps = 12
	c.NumOtherApps = 8
	c.PodSize = 3.0
	return c
}

// Generate builds a reproducible synthetic Workload from the configuration.
func Generate(cfg Config) (*Workload, error) {
	if cfg.NumNodes <= 0 {
		return nil, fmt.Errorf("trace: NumNodes must be positive, got %d", cfg.NumNodes)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("trace: Horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.NodeGroups <= 0 {
		cfg.NodeGroups = 1
	}
	if cfg.PodSize <= 0 {
		cfg.PodSize = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, r: r}
	w := &Workload{Horizon: cfg.Horizon, Seed: cfg.Seed}

	g.makeNodes(w)
	g.makeApps(w)
	g.makePods(w)

	sort.SliceStable(w.Pods, func(i, j int) bool { return w.Pods[i].Submit < w.Pods[j].Submit })
	for i, p := range w.Pods {
		p.ID = i
	}
	w.link()
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("trace: generated workload invalid: %w", err)
	}
	return w, nil
}

// MustGenerate is Generate for known-good configurations in tests/examples.
func MustGenerate(cfg Config) *Workload {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

type generator struct {
	cfg Config
	r   *rand.Rand

	capCPU float64 // total cluster CPU capacity

	lsApps    []*App
	beApps    []*App
	otherApps []*App
}

func (g *generator) makeNodes(w *Workload) {
	w.Nodes = make([]*Node, g.cfg.NumNodes)
	for i := range w.Nodes {
		cap := Resources{
			CPU: stats.TruncNorm(g.r, 1.0, 0.05, 0.85, 1.15),
			Mem: stats.TruncNorm(g.r, 1.0, 0.05, 0.85, 1.15),
		}
		w.Nodes[i] = &Node{ID: i, Capacity: cap, Group: i % g.cfg.NodeGroups}
		g.capCPU += cap.CPU
	}
}

func (g *generator) affinity() int {
	if g.r.Float64() < g.cfg.AffinityFraction {
		return g.r.Intn(g.cfg.NodeGroups)
	}
	return -1
}

// globalPhase is the common diurnal phase shared by customer-facing LS
// traffic; individual apps jitter around it slightly so the cluster-level
// QPS cycle of Fig. 3(b) emerges.
const globalPhase = 0.25

func (g *generator) makeApps(w *Workload) {
	for i := 0; i < g.cfg.NumLSApps; i++ {
		g.lsApps = append(g.lsApps, g.lsApp(fmt.Sprintf("ls-%03d", i), SLOLS))
	}
	for i := 0; i < g.cfg.NumLSRApps; i++ {
		g.lsApps = append(g.lsApps, g.lsApp(fmt.Sprintf("lsr-%03d", i), SLOLSR))
	}
	for i := 0; i < g.cfg.NumBEApps; i++ {
		g.beApps = append(g.beApps, g.beApp(fmt.Sprintf("be-%03d", i)))
	}
	for i := 0; i < g.cfg.NumOtherApps; i++ {
		g.otherApps = append(g.otherApps, g.otherApp(i))
	}
	w.Apps = append(append(append([]*App{}, g.lsApps...), g.beApps...), g.otherApps...)
}

func (g *generator) lsApp(id string, slo SLO) *App {
	r := g.r
	sz := g.cfg.PodSize
	reqCPU := sz * stats.Clamp(stats.LogNormal(r, -3.3, 0.7), 0.005, 0.15)
	reqMem := sz * stats.Clamp(stats.LogNormal(r, -3.6, 0.7), 0.004, 0.12)
	// Memory stability: most LS apps hold steady heaps; some churn.
	memCoV := 0.005
	if r.Float64() < 0.35 {
		memCoV = 0.02 + 0.25*r.Float64()
	}
	a := &App{
		ID:             id,
		SLO:            slo,
		Request:        Resources{reqCPU, reqMem},
		Limit:          Resources{reqCPU * (1.3 + 1.2*r.Float64()), reqMem * (1.1 + 0.5*r.Float64())},
		CPUBaseUtil:    0.13 + 0.16*r.Float64(), // usage ~4-6x below request (Fig. 6a)
		CPUDiurnalAmp:  0.25 + 0.4*r.Float64(),
		CPUNoise:       0.05 + 0.15*r.Float64(),
		MemUtil:        0.2 + 0.3*r.Float64(),
		MemCoV:         memCoV,
		QPSBase:        stats.Clamp(stats.LogNormal(r, 5.2, 0.6), 20, 2000),
		RTBase:         stats.Clamp(stats.LogNormal(r, 3.6, 0.5), 5, 400),
		PSISensitivity: 0.3 + 1.2*r.Float64(),
		RTDepNoise:     0.2 + 1.2*r.Float64(),
		Phase:          globalPhase + 0.03*r.NormFloat64(),
		Affinity:       g.affinity(),
	}
	if slo == SLOLSR {
		// Reserved pods: bigger, steadier, more sensitive to contention.
		a.CPUBaseUtil += 0.05
		a.CPUNoise *= 0.6
		a.PSISensitivity += 0.2
	}
	return a
}

func (g *generator) beApp(id string) *App {
	r := g.r
	sz := g.cfg.PodSize
	reqCPU := sz * stats.Clamp(stats.LogNormal(r, -3.8, 0.8), 0.004, 0.08)
	reqMem := sz * stats.Clamp(stats.LogNormal(r, -4.5, 0.8), 0.002, 0.05)
	return &App{
		ID:           id,
		SLO:          SLOBE,
		Request:      Resources{reqCPU, reqMem},
		Limit:        Resources{reqCPU * (1.5 + 2.5*r.Float64()), reqMem * (1.05 + 0.4*r.Float64())},
		CPUBaseUtil:  0.25 + 0.3*r.Float64(), // ~3x request-vs-usage gap
		CPUNoise:     0.1 + 0.2*r.Float64(),
		MemUtil:      0.85 + 0.13*r.Float64(), // BE memory almost fully used (Fig. 6b)
		MemCoV:       0.005 + 0.01*r.Float64(),
		CTSlowCPU:    1.0 + 3.0*r.Float64(),
		CTSlowMem:    0.2 + 1.0*r.Float64(),
		MeanDuration: stats.Clamp(stats.LogNormal(r, 5.6, 0.7), 90, 5400),
		InputCoV:     0.4 + 0.6*r.Float64(),
		// BE load is anti-phased with customer traffic: batch frameworks
		// submit more when online services are quiet, the valley-filling
		// behaviour of Fig. 4(a).
		CPUDiurnalAmp: 0.1 + 0.2*r.Float64(),
		Phase:         globalPhase + 0.5 + 0.05*r.NormFloat64(),
		Affinity:      g.affinity(),
	}
}

func (g *generator) otherApp(i int) *App {
	r := g.r
	var slo SLO
	switch {
	case i%8 == 0:
		slo = SLOSystem
	case i%8 == 1:
		slo = SLOVMEnv
	default:
		slo = SLOUnknown
	}
	sz := g.cfg.PodSize
	reqCPU := sz * stats.Clamp(stats.LogNormal(r, -3.9, 0.6), 0.003, 0.06)
	reqMem := sz * stats.Clamp(stats.LogNormal(r, -4.0, 0.6), 0.003, 0.06)
	a := &App{
		ID:             fmt.Sprintf("%s-%03d", slo, i),
		SLO:            slo,
		Request:        Resources{reqCPU, reqMem},
		Limit:          Resources{reqCPU * 1.6, reqMem * 1.3},
		CPUBaseUtil:    0.1 + 0.3*r.Float64(),
		CPUNoise:       0.1,
		MemUtil:        0.3 + 0.4*r.Float64(),
		MemCoV:         0.02,
		PSISensitivity: 0.2 + 0.6*r.Float64(),
		Phase:          r.Float64(),
		Affinity:       -1,
	}
	// Half the Unknown population behaves like short batch work.
	if slo == SLOUnknown && i%2 == 0 {
		a.MeanDuration = stats.Clamp(stats.LogNormal(r, 5.5, 0.7), 120, 5400)
		a.InputCoV = 0.5
		a.CTSlowCPU = 1.5
		a.CTSlowMem = 0.5
	}
	return a
}

func (g *generator) makePods(w *Workload) {
	g.makeLongRunningPods(w, filterLongRunning(g.lsApps), g.cfg.LSRequestFactor)
	g.makeBatchPods(w, g.beApps, g.cfg.BERequestFactor)

	var otherLong, otherBatch []*App
	for _, a := range g.otherApps {
		if a.LongRunning() {
			otherLong = append(otherLong, a)
		} else {
			otherBatch = append(otherBatch, a)
		}
	}
	g.makeLongRunningPods(w, otherLong, g.cfg.OtherRequestFactor*0.6)
	g.makeBatchPods(w, otherBatch, g.cfg.OtherRequestFactor*0.4)
}

func filterLongRunning(apps []*App) []*App {
	out := apps[:0:0]
	for _, a := range apps {
		if a.LongRunning() {
			out = append(out, a)
		}
	}
	return out
}

// makeLongRunningPods creates initial replicas for long-running apps sized
// so their total CPU request is about factor x cluster capacity, plus a
// small constant-rate stream of scale-up pods over the horizon (the flat LS
// submission curve of Fig. 3a).
func (g *generator) makeLongRunningPods(w *Workload, apps []*App, factor float64) {
	if len(apps) == 0 || factor <= 0 {
		return
	}
	r := g.r
	// Draw raw replica weights, then scale to hit the request budget.
	weights := make([]float64, len(apps))
	var rawReq float64
	for i, a := range apps {
		weights[i] = stats.Clamp(stats.LogNormal(r, 3.0, 0.8), 2, 400)
		rawReq += weights[i] * a.Request.CPU
	}
	budget := factor * g.capCPU
	scale := budget / rawReq
	// Initial replicas arrive staggered over the first 30 minutes, or a
	// quarter of very short horizons.
	ramp := int64(1800)
	if g.cfg.Horizon < 4*ramp {
		ramp = g.cfg.Horizon / 4
		if ramp < 1 {
			ramp = 1
		}
	}
	for i, a := range apps {
		replicas := int(weights[i]*scale + 0.5)
		if replicas < 1 {
			replicas = 1
		}
		for k := 0; k < replicas; k++ {
			submit := int64(r.Float64() * float64(ramp))
			g.addLongRunningPod(w, a, submit)
		}
		// Constant trickle of scale-up pods (~6 % of replicas per day).
		extra := float64(replicas) * 0.06 * float64(g.cfg.Horizon) / float64(Day)
		n := int(extra)
		if r.Float64() < extra-float64(n) {
			n++
		}
		for k := 0; k < n; k++ {
			submit := ramp + int64(r.Float64()*float64(g.cfg.Horizon-ramp))
			g.addLongRunningPod(w, a, submit)
		}
	}
}

func (g *generator) addLongRunningPod(w *Workload, a *App, submit int64) {
	r := g.r
	p := &Pod{
		AppID:    a.ID,
		SLO:      a.SLO,
		Submit:   submit,
		Request:  a.Request,
		Limit:    a.Limit,
		CPUScale: stats.TruncNorm(r, 1, 0.05, 0.8, 1.2),
		MemScale: stats.TruncNorm(r, 1, 0.03, 0.9, 1.1),
	}
	// A small share of long-running pods have finite lifetimes (upgrades,
	// migrations); most run to the end of the trace.
	if r.Float64() < 0.1 {
		life := submit + int64(stats.Clamp(stats.LogNormal(r, 9.0, 0.8), 1800, float64(g.cfg.Horizon)))
		if life < w.Horizon {
			p.Lifetime = life
		}
	}
	w.Pods = append(w.Pods, p)
}

// makeBatchPods creates BE-style jobs: Poisson job arrivals whose rate is
// anti-phased with the diurnal cycle, each fanning out into a Pareto-sized
// burst of tasks. The steady-state CPU request of running pods targets
// factor x cluster capacity.
func (g *generator) makeBatchPods(w *Workload, apps []*App, factor float64) {
	if len(apps) == 0 || factor <= 0 {
		return
	}
	r := g.r
	// Expected tasks per job under the bounded Pareto fan-out.
	meanBurst := boundedParetoMean(1, g.cfg.BEBurstAlpha, float64(g.cfg.BEMaxBurst))
	// Aggregate request-seconds needed per second of trace time.
	budget := factor * g.capCPU
	var meanReqDur float64
	for _, a := range apps {
		meanReqDur += a.Request.CPU * a.MeanDuration
	}
	meanReqDur /= float64(len(apps))
	// jobs/sec (all apps combined) so that running request mass ≈ budget.
	// The factor 2 compensates for the diurnal thinning below, whose
	// average acceptance probability is ~1/2.
	jobRate := 2 * budget / (meanReqDur * meanBurst)

	for _, a := range apps {
		rate := jobRate / float64(len(apps))
		t := 0.0
		for {
			t += stats.Exponential(r, 1/rate)
			if int64(t) >= g.cfg.Horizon {
				break
			}
			// Thin arrivals against the app's (anti-phased) diurnal curve.
			if r.Float64() > stats.Clamp(a.Diurnal(int64(t)), 0.1, 2)/2 {
				continue
			}
			burst := int(stats.BoundedPareto(r, 1, g.cfg.BEBurstAlpha, float64(g.cfg.BEMaxBurst)))
			for k := 0; k < burst; k++ {
				g.addBatchPod(w, a, int64(t)+int64(r.Intn(30)))
			}
		}
	}
}

func (g *generator) addBatchPod(w *Workload, a *App, submit int64) {
	if submit >= w.Horizon {
		submit = w.Horizon - 1
	}
	r := g.r
	// Input size stretches the pod's duration (data-parallel tasks chew
	// through their input at roughly their CPU allocation); the demand
	// level itself varies only moderately around the request sizing.
	inputScale := stats.Clamp(stats.LogNormal(r, 0, a.InputCoV), 0.1, 8)
	cpuScale := stats.TruncNorm(r, 1, 0.15, 0.5, 1.5)
	dur := a.MeanDuration * inputScale * stats.Clamp(stats.LogNormal(r, 0, 0.3), 0.4, 2.5)
	p := &Pod{
		AppID:    a.ID,
		SLO:      a.SLO,
		Submit:   submit,
		Request:  a.Request,
		Limit:    a.Limit,
		CPUScale: cpuScale,
		MemScale: stats.TruncNorm(r, 1, 0.03, 0.9, 1.1),
		Work:     a.Request.CPU * a.CPUBaseUtil * cpuScale * dur,
	}
	w.Pods = append(w.Pods, p)
}

// boundedParetoMean returns the mean of a Pareto(xmin, alpha) truncated at
// xmax (approximated for alpha == 1 by the log form).
func boundedParetoMean(xmin, alpha, xmax float64) float64 {
	if alpha == 1 {
		return xmin * (1 + lnf(xmax/xmin))
	}
	// E[X] for bounded Pareto.
	l, h := xmin, xmax
	num := powf(l, alpha) / (1 - powf(l/h, alpha)) * alpha / (alpha - 1) *
		(1/powf(l, alpha-1) - 1/powf(h, alpha-1))
	return num
}
