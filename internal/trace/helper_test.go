package trace

import "math/rand"

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(123)) }
