package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

func lnf(x float64) float64     { return math.Log(x) }
func powf(x, y float64) float64 { return math.Pow(x, y) }

// WriteJSON encodes a Workload to w as a single JSON document.
func WriteJSON(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(wl); err != nil {
		return fmt.Errorf("trace: encode workload: %w", err)
	}
	return bw.Flush()
}

// ReadJSON decodes a Workload written by WriteJSON and re-links pods to
// their applications.
func ReadJSON(r io.Reader) (*Workload, error) {
	var wl Workload
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&wl); err != nil {
		return nil, fmt.Errorf("trace: decode workload: %w", err)
	}
	wl.link()
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	return &wl, nil
}

// SaveFile writes the workload to path as JSON.
func SaveFile(path string, wl *Workload) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := WriteJSON(f, wl); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a workload JSON file written by SaveFile.
func LoadFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
