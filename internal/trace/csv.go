package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV interchange in the spirit of the public Alibaba cluster-data drops:
// one table per entity kind, with explicit headers so files remain
// self-describing. WriteCSV produces three sections (nodes, apps, pods)
// separated by blank lines; ReadCSV parses the same layout. The format is
// intended for interoperability with external analysis tooling (pandas,
// DuckDB, ...), not as the primary store — JSON via WriteJSON keeps full
// fidelity.

var nodeHeader = []string{"machine_id", "cpu_capacity", "mem_capacity", "group"}

var appHeader = []string{
	"app_id", "slo", "cpu_request", "mem_request", "cpu_limit", "mem_limit",
	"cpu_base_util", "cpu_diurnal_amp", "cpu_noise", "mem_util", "mem_cov",
	"qps_base", "rt_base", "psi_sensitivity", "rt_dep_noise",
	"ct_slow_cpu", "ct_slow_mem", "mean_duration", "input_cov", "phase", "affinity",
}

var podHeader = []string{
	"pod_id", "app_id", "slo", "submit_time", "cpu_request", "mem_request",
	"cpu_limit", "mem_limit", "cpu_scale", "mem_scale", "work", "lifetime",
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes the workload as three CSV tables (nodes, apps, pods),
// separated by blank lines, preceded by a comment-ish meta row.
func WriteCSV(w io.Writer, wl *Workload) error {
	cw := csv.NewWriter(w)
	write := func(rec []string) {
		cw.Write(rec) //nolint:errcheck // flushed error checked below
	}
	write([]string{"#meta", strconv.FormatInt(wl.Horizon, 10), strconv.FormatInt(wl.Seed, 10)})

	write(nodeHeader)
	for _, n := range wl.Nodes {
		write([]string{
			strconv.Itoa(n.ID), f2s(n.Capacity.CPU), f2s(n.Capacity.Mem),
			strconv.Itoa(n.Group),
		})
	}
	write(nil)

	write(appHeader)
	for _, a := range wl.Apps {
		write([]string{
			a.ID, a.SLO.String(),
			f2s(a.Request.CPU), f2s(a.Request.Mem), f2s(a.Limit.CPU), f2s(a.Limit.Mem),
			f2s(a.CPUBaseUtil), f2s(a.CPUDiurnalAmp), f2s(a.CPUNoise),
			f2s(a.MemUtil), f2s(a.MemCoV), f2s(a.QPSBase), f2s(a.RTBase),
			f2s(a.PSISensitivity), f2s(a.RTDepNoise),
			f2s(a.CTSlowCPU), f2s(a.CTSlowMem), f2s(a.MeanDuration),
			f2s(a.InputCoV), f2s(a.Phase), strconv.Itoa(a.Affinity),
		})
	}
	write(nil)

	write(podHeader)
	for _, p := range wl.Pods {
		write([]string{
			strconv.Itoa(p.ID), p.AppID, p.SLO.String(),
			strconv.FormatInt(p.Submit, 10),
			f2s(p.Request.CPU), f2s(p.Request.Mem), f2s(p.Limit.CPU), f2s(p.Limit.Mem),
			f2s(p.CPUScale), f2s(p.MemScale), f2s(p.Work),
			strconv.FormatInt(p.Lifetime, 10),
		})
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the layout produced by WriteCSV.
func ReadCSV(r io.Reader) (*Workload, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(recs) == 0 || recs[0][0] != "#meta" || len(recs[0]) < 3 {
		return nil, fmt.Errorf("trace: csv: missing #meta row")
	}
	wl := &Workload{}
	if wl.Horizon, err = strconv.ParseInt(recs[0][1], 10, 64); err != nil {
		return nil, fmt.Errorf("trace: csv horizon: %w", err)
	}
	if wl.Seed, err = strconv.ParseInt(recs[0][2], 10, 64); err != nil {
		return nil, fmt.Errorf("trace: csv seed: %w", err)
	}

	// Split into sections on header rows.
	section := ""
	for i := 1; i < len(recs); i++ {
		rec := recs[i]
		if len(rec) == 0 || (len(rec) == 1 && rec[0] == "") {
			continue
		}
		switch rec[0] {
		case nodeHeader[0]:
			section = "nodes"
			continue
		case appHeader[0]:
			section = "apps"
			continue
		case podHeader[0]:
			section = "pods"
			continue
		}
		switch section {
		case "nodes":
			n, err := parseNodeCSV(rec)
			if err != nil {
				return nil, err
			}
			wl.Nodes = append(wl.Nodes, n)
		case "apps":
			a, err := parseAppCSV(rec)
			if err != nil {
				return nil, err
			}
			wl.Apps = append(wl.Apps, a)
		case "pods":
			p, err := parsePodCSV(rec)
			if err != nil {
				return nil, err
			}
			wl.Pods = append(wl.Pods, p)
		default:
			return nil, fmt.Errorf("trace: csv row %d outside any section", i)
		}
	}
	wl.link()
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	return wl, nil
}

type csvFields struct {
	rec []string
	i   int
	err error
}

func (c *csvFields) str() string {
	if c.err != nil || c.i >= len(c.rec) {
		if c.err == nil {
			c.err = fmt.Errorf("trace: csv: short row %v", c.rec)
		}
		return ""
	}
	v := c.rec[c.i]
	c.i++
	return v
}

func (c *csvFields) f64() float64 {
	s := c.str()
	if c.err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		c.err = fmt.Errorf("trace: csv float %q: %w", s, err)
	}
	return v
}

func (c *csvFields) i64() int64 {
	s := c.str()
	if c.err != nil {
		return 0
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		c.err = fmt.Errorf("trace: csv int %q: %w", s, err)
	}
	return v
}

func (c *csvFields) slo() SLO {
	s := c.str()
	if c.err != nil {
		return SLOUnknown
	}
	v, err := ParseSLO(s)
	if err != nil {
		c.err = err
	}
	return v
}

func parseNodeCSV(rec []string) (*Node, error) {
	f := &csvFields{rec: rec}
	n := &Node{
		ID:       int(f.i64()),
		Capacity: Resources{CPU: f.f64(), Mem: f.f64()},
		Group:    int(f.i64()),
	}
	return n, f.err
}

func parseAppCSV(rec []string) (*App, error) {
	f := &csvFields{rec: rec}
	a := &App{ID: f.str(), SLO: f.slo()}
	a.Request = Resources{CPU: f.f64(), Mem: f.f64()}
	a.Limit = Resources{CPU: f.f64(), Mem: f.f64()}
	a.CPUBaseUtil = f.f64()
	a.CPUDiurnalAmp = f.f64()
	a.CPUNoise = f.f64()
	a.MemUtil = f.f64()
	a.MemCoV = f.f64()
	a.QPSBase = f.f64()
	a.RTBase = f.f64()
	a.PSISensitivity = f.f64()
	a.RTDepNoise = f.f64()
	a.CTSlowCPU = f.f64()
	a.CTSlowMem = f.f64()
	a.MeanDuration = f.f64()
	a.InputCoV = f.f64()
	a.Phase = f.f64()
	a.Affinity = int(f.i64())
	return a, f.err
}

func parsePodCSV(rec []string) (*Pod, error) {
	f := &csvFields{rec: rec}
	p := &Pod{ID: int(f.i64()), AppID: f.str(), SLO: f.slo(), Submit: f.i64()}
	p.Request = Resources{CPU: f.f64(), Mem: f.f64()}
	p.Limit = Resources{CPU: f.f64(), Mem: f.f64()}
	p.CPUScale = f.f64()
	p.MemScale = f.f64()
	p.Work = f.f64()
	p.Lifetime = f.i64()
	return p, f.err
}
