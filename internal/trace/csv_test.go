package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	w := MustGenerate(SmallConfig())
	var buf bytes.Buffer
	if err := WriteCSV(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(w.Nodes) || len(got.Apps) != len(w.Apps) || len(got.Pods) != len(w.Pods) {
		t.Fatalf("sizes changed: %d/%d nodes, %d/%d apps, %d/%d pods",
			len(got.Nodes), len(w.Nodes), len(got.Apps), len(w.Apps), len(got.Pods), len(w.Pods))
	}
	if got.Horizon != w.Horizon || got.Seed != w.Seed {
		t.Error("meta lost")
	}
	// Field-level fidelity on samples of every entity kind.
	if got.Nodes[3].Capacity != w.Nodes[3].Capacity || got.Nodes[3].Group != w.Nodes[3].Group {
		t.Error("node fields lost")
	}
	a, b := got.Apps[5], w.Apps[5]
	if a.ID != b.ID || a.SLO != b.SLO || a.CPUBaseUtil != b.CPUBaseUtil ||
		a.QPSBase != b.QPSBase || a.Affinity != b.Affinity || a.MeanDuration != b.MeanDuration {
		t.Errorf("app fields lost: %+v vs %+v", a, b)
	}
	for _, i := range []int{0, 100, len(w.Pods) - 1} {
		p, q := got.Pods[i], w.Pods[i]
		if p.AppID != q.AppID || p.Submit != q.Submit || p.Work != q.Work ||
			p.CPUScale != q.CPUScale || p.Lifetime != q.Lifetime {
			t.Fatalf("pod %d fields lost", i)
		}
		// Behaviour is identical after the round trip.
		if p.CPUDemand(600) != q.CPUDemand(600) || p.QPS(600) != q.QPS(600) {
			t.Fatalf("pod %d demand differs after CSV round trip", i)
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not,a,meta\n",
		"#meta,notanumber,1\n",
		"#meta,3600,1\nmachine_id,cpu_capacity,mem_capacity,group\nx,y,z,w\n",
		"#meta,3600,1\nstray,row\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestCSVRejectsBadSLO(t *testing.T) {
	in := "#meta,3600,1\n" +
		"pod_id,app_id,slo,submit_time,cpu_request,mem_request,cpu_limit,mem_limit,cpu_scale,mem_scale,work,lifetime\n" +
		"0,a,BOGUS,0,1,1,1,1,1,1,1,0\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Error("bad SLO accepted")
	}
}

func TestCSVShortRow(t *testing.T) {
	in := "#meta,3600,1\n" +
		"machine_id,cpu_capacity,mem_capacity,group\n" +
		"0,1.0\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Error("short row accepted")
	}
}
