package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{3}, 3},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance(nil) != 0 {
		t.Error("Variance(nil) != 0")
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]float64{5, 5, 5}); got != 0 {
		t.Errorf("CoV of constant = %v, want 0", got)
	}
	if got := CoV([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 0.4, 1e-12) {
		t.Errorf("CoV = %v, want 0.4", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("CoV all-zero = %v, want 0", got)
	}
	if got := CoV([]float64{-1, 1}); !math.IsInf(got, 1) {
		t.Errorf("CoV zero-mean nonzero-sd = %v, want +Inf", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.1, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Quantile([]float64{0, 10}, 0.5); !almostEq(got, 5, 1e-12) {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); !almostEq(got, 3, 1e-12) {
		t.Errorf("Percentile(50) = %v", got)
	}
}

func TestMAPE(t *testing.T) {
	if got := MAPE([]float64{110, 90}, []float64{100, 100}); !almostEq(got, 0.1, 1e-12) {
		t.Errorf("MAPE = %v, want 0.1", got)
	}
	// Zero truths skipped.
	if got := MAPE([]float64{1, 110}, []float64{0, 100}); !almostEq(got, 0.1, 1e-12) {
		t.Errorf("MAPE with zero truth = %v, want 0.1", got)
	}
	if MAPE([]float64{1}, []float64{0}) != 0 {
		t.Error("MAPE all-zero truth should be 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestRank(t *testing.T) {
	got := Rank([]float64{10, 30, 20})
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
	// Ties share the first rank.
	got = Rank([]float64{5, 5, 5, 1})
	if got[3] != 1 || got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Errorf("Rank with ties = %v", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect positive corr = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect negative corr = %v", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("constant series corr = %v, want 0", got)
	}
	if Pearson([]float64{1}, []float64{1}) != 0 {
		t.Error("corr of single sample should be 0")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone nonlinear relation: Spearman = 1 even though Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman of monotone = %v, want 1", got)
	}
	// Ties handled via average ranks: still finite and bounded.
	got := Spearman([]float64{1, 1, 2, 2}, []float64{1, 2, 3, 4})
	if got < -1 || got > 1 {
		t.Errorf("Spearman with ties out of range: %v", got)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(2); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if !almostEq(c.Mean(), 2.5, 1e-12) {
		t.Errorf("Mean = %v", c.Mean())
	}
	if s := c.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].P < pts[i-1].P {
			t.Errorf("Points not monotone at %d: %+v", i, pts)
		}
	}
	if c.Points(0) != nil {
		t.Error("Points(0) should be nil")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.Min() != 0 || c.Max() != 0 {
		t.Error("empty CDF should return zeros")
	}
}

func TestTailIndexHill(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	heavy := make([]float64, 20000)
	for i := range heavy {
		heavy[i] = Pareto(r, 1, 1.5)
	}
	light := make([]float64, 20000)
	for i := range light {
		light[i] = math.Abs(r.NormFloat64()) + 1
	}
	hHeavy := NewCDF(heavy).TailIndexHill(1000)
	hLight := NewCDF(light).TailIndexHill(1000)
	if hHeavy <= 0 || hHeavy >= 2.2 {
		t.Errorf("Hill index for Pareto(1.5) = %v, want ~1.5", hHeavy)
	}
	if hLight <= hHeavy {
		t.Errorf("Gaussian tail (%v) should be lighter than Pareto tail (%v)", hLight, hHeavy)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.1, 0.9, -5, 5}, 2, 0, 1)
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	// -5 clamps to first bin, 5 clamps to last.
	if h.Counts[0] != 3 || h.Counts[1] != 2 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if !almostEq(h.Fraction(0), 0.6, 1e-12) {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
	if !almostEq(h.BinCenter(0), 0.25, 1e-12) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if h.Fraction(99) != 0 {
		t.Error("out-of-range Fraction should be 0")
	}
}

func TestSamplers(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		if v := Pareto(r, 2, 1.1); v < 2 {
			t.Fatalf("Pareto below xmin: %v", v)
		}
		if v := BoundedPareto(r, 1, 0.8, 100); v < 1 || v > 100 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
		if v := TruncNorm(r, 0.5, 10, 0, 1); v < 0 || v > 1 {
			t.Fatalf("TruncNorm out of range: %v", v)
		}
		if v := LogNormal(r, 0, 1); v <= 0 {
			t.Fatalf("LogNormal non-positive: %v", v)
		}
		if v := Exponential(r, 3); v < 0 {
			t.Fatalf("Exponential negative: %v", v)
		}
	}
}

func TestChoice(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[Choice(r, []float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	if Choice(r, []float64{0, 0}) != 0 {
		t.Error("all-zero weights should return 0")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 <= v2 && v1 >= Min(xs) && v2 <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is bounded to [-1, 1] and symmetric.
func TestPearsonBoundedProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		for _, v := range append(append([]float64{}, xs...), ys...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		r := Pearson(xs, ys)
		if math.IsNaN(r) || r < -1.0000001 || r > 1.0000001 {
			return false
		}
		return almostEq(r, Pearson(ys, xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CDF.At is monotone non-decreasing.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		c := NewCDF(xs)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: histogram conserves sample count.
func TestHistogramConservesProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		h := NewHistogram(xs, 8, 0, 1)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs) && h.N == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A pure cycle has autocorrelation ~1 at its period and ~-1 at half.
	period := 48
	xs := make([]float64, period*6)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / float64(period))
	}
	if got := Autocorrelation(xs, period); got < 0.8 {
		t.Errorf("autocorr at period = %v, want ~1", got)
	}
	if got := Autocorrelation(xs, period/2); got > -0.5 {
		t.Errorf("autocorr at half period = %v, want strongly negative", got)
	}
	if Autocorrelation(xs, 0) < 0.999 {
		t.Error("lag-0 autocorrelation should be 1")
	}
	if Autocorrelation(nil, 1) != 0 || Autocorrelation(xs, -1) != 0 || Autocorrelation(xs, len(xs)) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestKSDistance(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	same1 := make([]float64, 5000)
	same2 := make([]float64, 5000)
	shifted := make([]float64, 5000)
	for i := range same1 {
		same1[i] = r.NormFloat64()
		same2[i] = r.NormFloat64()
		shifted[i] = r.NormFloat64() + 2
	}
	if d := KSDistance(same1, same2); d > 0.05 {
		t.Errorf("same-distribution KS = %v, want small", d)
	}
	if d := KSDistance(same1, shifted); d < 0.5 {
		t.Errorf("shifted-distribution KS = %v, want large", d)
	}
	if KSDistance(nil, same1) != 1 {
		t.Error("empty sample should give distance 1")
	}
	// Symmetry.
	if KSDistance(same1, shifted) != KSDistance(shifted, same1) {
		t.Error("KS distance not symmetric")
	}
}

func TestDiurnalPeriodDetectable(t *testing.T) {
	// The generated QPS series has its diurnal period recoverable by
	// autocorrelation — a validation of the generator itself.
	r := rand.New(rand.NewSource(9))
	day := 96 // samples per synthetic day
	xs := make([]float64, day*4)
	for i := range xs {
		xs[i] = 200*(1+0.4*math.Sin(2*math.Pi*float64(i)/float64(day))) + 10*r.NormFloat64()
	}
	best, bestLag := -2.0, 0
	for lag := day / 2; lag <= 2*day; lag++ {
		if ac := Autocorrelation(xs, lag); ac > best {
			best, bestLag = ac, lag
		}
	}
	if bestLag < day-6 || bestLag > day+6 {
		t.Errorf("recovered period %d, want ~%d", bestLag, day)
	}
}
