package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function built from samples.
// The zero value is unusable; construct with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied and sorted.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples that are <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Upper bound: first index with sorted[i] > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile of the samples.
func (c *CDF) Quantile(q float64) float64 {
	return quantileSorted(c.sorted, q)
}

// Min returns the smallest sample (0 if empty).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample (0 if empty).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Points returns n evenly spaced (value, cumulative-probability) points
// suitable for plotting or printing the CDF as a series.
func (c *CDF) Points(n int) []CDFPoint {
	if n <= 0 || len(c.sorted) == 0 {
		return nil
	}
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if n == 1 {
			q = 1
		}
		pts = append(pts, CDFPoint{Value: quantileSorted(c.sorted, q), P: q})
	}
	return pts
}

// CDFPoint is a single (value, cumulative probability) pair.
type CDFPoint struct {
	Value float64
	P     float64
}

// String renders a compact, human-readable summary of the distribution.
func (c *CDF) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d min=%.4g p25=%.4g p50=%.4g p75=%.4g p90=%.4g p99=%.4g max=%.4g",
		c.Len(), c.Min(), c.Quantile(0.25), c.Quantile(0.5), c.Quantile(0.75),
		c.Quantile(0.9), c.Quantile(0.99), c.Max())
	return b.String()
}

// TailIndexHill estimates the tail index of the distribution using the Hill
// estimator over the top k order statistics. Smaller values indicate heavier
// tails; a value below ~2 is commonly read as "heavy-tailed". Returns 0 if
// there are not enough positive samples.
func (c *CDF) TailIndexHill(k int) float64 {
	n := len(c.sorted)
	if k <= 0 || k >= n {
		return 0
	}
	xk := c.sorted[n-k-1]
	if xk <= 0 {
		return 0
	}
	var s float64
	for i := n - k; i < n; i++ {
		if c.sorted[i] <= 0 {
			return 0
		}
		s += logRatio(c.sorted[i], xk)
	}
	if s == 0 {
		return 0
	}
	return float64(k) / s
}

func logRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return ln(a / b)
}
