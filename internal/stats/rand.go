package stats

import (
	"math"
	"math/rand"
)

// The samplers below wrap math/rand with the distributions the synthetic
// trace generator needs. All take an explicit *rand.Rand so experiments are
// reproducible from a single seed.

// LogNormal samples from a log-normal distribution with the given log-space
// mean mu and standard deviation sigma.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Pareto samples from a Pareto (power-law) distribution with scale xmin and
// shape alpha. Smaller alpha yields a heavier tail; alpha <= 2 has infinite
// variance, which is the regime the pod waiting-time and arrival-rate
// distributions in the trace study live in.
func Pareto(r *rand.Rand, xmin, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// BoundedPareto samples from a Pareto distribution truncated at xmax by
// rejection (falling back to xmax after a few tries to stay O(1)).
func BoundedPareto(r *rand.Rand, xmin, alpha, xmax float64) float64 {
	for i := 0; i < 16; i++ {
		if v := Pareto(r, xmin, alpha); v <= xmax {
			return v
		}
	}
	return xmax
}

// TruncNorm samples from a normal distribution with mean mu and standard
// deviation sigma, clamped to [lo, hi].
func TruncNorm(r *rand.Rand, mu, sigma, lo, hi float64) float64 {
	return Clamp(r.NormFloat64()*sigma+mu, lo, hi)
}

// Exponential samples an exponential inter-arrival with the given mean.
func Exponential(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Choice returns a random index in [0, len(weights)) with probability
// proportional to the weights. Non-positive weights are treated as zero.
// If all weights are zero it returns 0.
func Choice(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
