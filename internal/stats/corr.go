package stats

import "math"

// ln is a tiny alias so files in this package avoid importing math twice for
// one call site.
func ln(x float64) float64 { return math.Log(x) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant or the series are empty or of
// different non-overlapping length; only the common prefix is used.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	mx := Mean(xs[:n])
	my := Mean(ys[:n])
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient between xs and
// ys, i.e. the Pearson correlation of the fractional ranks. Ties receive
// their average rank.
func Spearman(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	rx := fractionalRanks(xs[:n])
	ry := fractionalRanks(ys[:n])
	return Pearson(rx, ry)
}

// fractionalRanks assigns average ranks to ties.
func fractionalRanks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion-free sort of indices by value.
	quickSortIdx(xs, idx, 0, n-1)
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func quickSortIdx(vals []float64, idx []int, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && vals[idx[j]] < vals[idx[j-1]]; j-- {
					idx[j], idx[j-1] = idx[j-1], idx[j]
				}
			}
			return
		}
		p := vals[idx[(lo+hi)/2]]
		i, j := lo, hi
		for i <= j {
			for vals[idx[i]] < p {
				i++
			}
			for vals[idx[j]] > p {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half to bound stack depth.
		if j-lo < hi-i {
			quickSortIdx(vals, idx, lo, j)
			lo = i
		} else {
			quickSortIdx(vals, idx, i, hi)
			hi = j
		}
	}
}

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Samples outside the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram of xs with nbins bins spanning [lo, hi].
func NewHistogram(xs []float64, nbins int, lo, hi float64) *Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	nb := len(h.Counts)
	var i int
	if h.Hi > h.Lo {
		i = int((x - h.Lo) / (h.Hi - h.Lo) * float64(nb))
	}
	if i < 0 {
		i = 0
	}
	if i >= nb {
		i = nb - 1
	}
	h.Counts[i]++
	h.N++
}

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 || i < 0 || i >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	nb := len(h.Counts)
	w := (h.Hi - h.Lo) / float64(nb)
	return h.Lo + (float64(i)+0.5)*w
}

// Autocorrelation returns the sample autocorrelation of xs at the given
// lag — the tool the trace study uses to confirm the diurnal period of the
// QPS and utilization series.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n || n < 2 {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// KSDistance returns the two-sample Kolmogorov-Smirnov statistic between
// xs and ys: the maximum vertical distance between their empirical CDFs.
// The trace generator's validation compares generated distributions against
// reference shapes with it.
func KSDistance(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 1
	}
	a := NewCDF(xs)
	b := NewCDF(ys)
	var d float64
	for _, v := range xs {
		if diff := math.Abs(a.At(v) - b.At(v)); diff > d {
			d = diff
		}
	}
	for _, v := range ys {
		if diff := math.Abs(a.At(v) - b.At(v)); diff > d {
			d = diff
		}
	}
	return d
}
