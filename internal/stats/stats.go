// Package stats provides the statistical primitives used throughout the
// unified-scheduling study: descriptive statistics, empirical CDFs,
// quantiles, correlation coefficients, histograms and a handful of
// heavy-tailed random samplers.
//
// The package is deliberately small and allocation-conscious: the
// characterization pipeline calls these functions over millions of samples.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs (division by n, matching
// the N-sigma predictor convention), or 0 for fewer than one sample.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoV returns the coefficient of variation (standard deviation divided by
// mean) of xs. A zero mean yields CoV 0 when all samples are zero and +Inf
// otherwise, mirroring how the trace study treats degenerate series.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if m == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// Min returns the minimum of xs, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is Quantile for already-sorted input, avoiding the copy.
func QuantileSorted(sorted []float64, q float64) float64 {
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs.
func Percentile(xs []float64, p float64) float64 {
	return Quantile(xs, p/100)
}

// MAPE returns the mean absolute percentage error of predictions against
// truths: mean(|pred-true| / |true|). Pairs whose truth is zero are skipped;
// if every truth is zero, MAPE returns 0.
func MAPE(pred, truth []float64) float64 {
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	var s float64
	var k int
	for i := 0; i < n; i++ {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
		k++
	}
	if k == 0 {
		return 0
	}
	return s / float64(k)
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Rank returns, for each element of xs, its 1-based rank when xs is sorted
// ascending. Ties receive the rank of their first occurrence (competition
// ranking), which is what the host-rank analysis of Fig. 10 uses.
func Rank(xs []float64) []int {
	type iv struct {
		i int
		v float64
	}
	ivs := make([]iv, len(xs))
	for i, v := range xs {
		ivs[i] = iv{i, v}
	}
	sort.SliceStable(ivs, func(a, b int) bool { return ivs[a].v < ivs[b].v })
	ranks := make([]int, len(xs))
	for pos, e := range ivs {
		r := pos + 1
		if pos > 0 && ivs[pos-1].v == e.v {
			r = ranks[ivs[pos-1].i]
		}
		ranks[e.i] = r
	}
	return ranks
}
