// Package engine is the online scheduling service: a long-running,
// event-driven wrapper around the repository's schedulers that replaces
// the batch tick-loop of internal/sim with a concurrent submission
// pipeline, the way production unified schedulers (and the paper's §4.4
// parallel-scheduler arrangement) actually run.
//
// The pieces:
//
//   - a sharded cluster-state Store with per-shard locking and an
//     optimistic-concurrency commit path (store.go), so N scheduler
//     workers place pods in parallel and same-host races are arbitrated
//     like the Deployment Module arbitrates them: first committer wins,
//     losers are re-dispatched;
//   - a bounded admission queue with per-SLO priority lanes and
//     backpressure — LSR/LS jump best-effort, submissions block or shed
//     when the queue is full (queue.go);
//   - a virtual-clock event loop that advances usage sampling, BE
//     progress, lifetime expiry and chaos injection in 30-second virtual
//     ticks, either paced against the wall clock (a live service) or
//     as fast as the workers drain the queue (benchmarks and tests);
//   - an engine-wide metrics registry (metrics.go) snapshot-able as JSON.
//
// Conservation invariant: every accepted submission ends in exactly one of
// the terminal-or-pending states (queued, placed, done, shed, exhausted).
// Snapshot.Lost() is always zero.
package engine

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/journal"
	"unisched/internal/obs"
	"unisched/internal/pipeline"
	"unisched/internal/quota"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// RetryPolicy tunes how failed and displaced pods are re-dispatched. It
// mirrors sim.RetryPolicy; the engine additionally floors every backoff at
// one virtual tick so an unschedulable pod cannot spin the pipeline within
// a single tick.
type RetryPolicy struct {
	// MaxDisplacements bounds how many times one pod may be removed while
	// running before the engine abandons it as exhausted (0 = unlimited).
	MaxDisplacements int
	// BaseBackoff is the initial BE retry backoff in virtual seconds,
	// doubling per failed attempt (0 = one tick).
	BaseBackoff int64
	// MaxBackoff caps the exponential backoff (0 = 32x BaseBackoff).
	MaxBackoff int64
}

// DefaultRetryPolicy matches sim.DefaultRetryPolicy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxDisplacements: 8, BaseBackoff: trace.SampleInterval, MaxBackoff: 960}
}

// Backoff returns the wait before retry number attempts+1.
func (rp RetryPolicy) Backoff(attempts int) int64 {
	if rp.BaseBackoff <= 0 {
		return 0
	}
	limit := rp.MaxBackoff
	if limit <= 0 {
		limit = 32 * rp.BaseBackoff
	}
	b := rp.BaseBackoff
	for i := 0; i < attempts && b < limit; i++ {
		b *= 2
	}
	if b > limit {
		b = limit
	}
	return b
}

// SchedulerFactory builds one worker's scheduler over the shared cluster.
// Each worker gets its own instance (schedulers carry per-batch state);
// worker is the worker index and seed is already de-correlated per worker.
type SchedulerFactory func(c *cluster.Cluster, worker int, seed int64) sched.Scheduler

// candidateRestrictor is implemented by schedulers (via sched.Base) that
// can limit their candidate universe to a partition of the cluster.
type candidateRestrictor interface {
	RestrictTo(ids []int)
}

// Config tunes the engine.
type Config struct {
	// Workers is the number of parallel scheduler workers (default 1).
	Workers int
	// Shards is the state-store shard count (default 8, clamped to the
	// node count).
	Shards int
	// BlockShards switches the store's node→shard mapping from modular
	// (id % Shards) to contiguous blocks (id / ceil(N/Shards)). Federation
	// partitions with block-assigned node shards set this so owned nodes
	// occupy dedicated store shards: commits republish — and the worker
	// re-adopts — only the shards the partition actually owns, keeping
	// per-decision reconcile cost proportional to the owned subset rather
	// than the whole fleet. Placement outcomes are unaffected; only
	// publish and adoption traffic move.
	BlockShards bool
	// QueueCap bounds the admission queue (default 4096).
	QueueCap int
	// MaxBatch bounds one worker's scheduling batch (default 64).
	MaxBatch int
	// Tick is the virtual step in seconds (default trace.SampleInterval).
	Tick int64
	// TickWall paces the virtual clock against the wall clock: one Tick
	// of virtual time per TickWall of wall time. 0 runs in fast mode —
	// the clock advances whenever the ready queue is drained and no
	// worker holds pods in flight (benchmarks, tests, in-process use).
	TickWall time.Duration
	// Horizon stops the virtual clock (0 = unbounded). Pods still in
	// backoff past the horizon stay pending, as in sim.Run.
	Horizon int64
	// BlockOnFull makes Submit block for queue space instead of shedding.
	BlockOnFull bool
	// PartitionNodes assigns each worker a disjoint slice of the cluster
	// (node ID mod Workers), the scale-out arrangement of §4.4: per-pod
	// scan cost shrinks with the worker count at a small placement-
	// quality cost. Requires schedulers built on sched.Base.
	PartitionNodes bool
	// PerPodCommit reverts commit validation to the pre-epoch
	// one-lock-acquisition-per-decision path. Scoring still runs on epoch
	// snapshots; only the commit grouping changes. Kept for A/B
	// comparison and the StateHash-equivalence tests that pin the batched
	// path to identical semantics.
	PerPodCommit bool
	// Retry tunes re-dispatch of failed and displaced pods; the zero
	// value retries every tick with an 8-displacement budget.
	Retry RetryPolicy
	// Chaos, when non-nil, injects faults at the top of every tick;
	// displaced pods are re-dispatched under Retry.
	Chaos *chaos.Injector
	// Seed de-correlates the workers' samplers.
	Seed int64

	// InactiveNodes marks nodes this engine does not own at genesis
	// (true = start Down): the federation partition baseline. It is
	// applied before the store's first publish and before any journaling,
	// so it is part of the deterministic genesis state rather than the
	// log; post-boot migrations (SetNodeActive) journal as node-phase
	// records, and checkpoints capture exactly the deviations from this
	// baseline. Nil (the default) leaves every node Up.
	InactiveNodes []bool

	// OnUnschedulable, when non-nil, switches genuine capacity failures
	// (the scheduler returned no node) to fail-fast: the pod's record
	// moves to the terminal PodRejected state, its quota admission is
	// released, and the hook fires with the pod and the reject reason —
	// after every engine lock is dropped, so it may re-submit elsewhere.
	// Commit conflicts and stale commits still retry in-engine; they are
	// transient races, not capacity verdicts. Federation uses this to
	// spill a pod from a full partition to the next-best one.
	OnUnschedulable func(p *trace.Pod, reason sched.Reason)

	// Quota, when non-nil, is the multi-tenant hierarchical quota tree
	// (internal/quota) gating admission ahead of the SLO lanes: pods carry
	// tenant/queue attribution, over-max submissions are shed, queued pods
	// drain in fair-share order, and under-guaranteed tenants' LS/LSR pods
	// may preempt over-quota tenants' BE pods through the displaced-pod
	// path. Nil runs the engine single-tenant with zero quota cost.
	Quota *quota.Tree

	// TraceEvery samples one decision trace per this many scheduling
	// attempts (0 disables tracing entirely: no recorder is built and the
	// hot path pays nothing).
	TraceEvery int
	// TraceBuffer bounds the decision-trace ring (default 4096).
	TraceBuffer int
	// HistoryCap bounds the rolling cluster-telemetry ring (default 2880
	// samples — 24h of 30s ticks).
	HistoryCap int
	// Logger receives structured engine lifecycle events; nil discards
	// them (tests, benchmarks, embedded use).
	Logger *slog.Logger

	// DataDir is the durability directory used by OpenDurable: a
	// write-ahead journal of engine events plus periodic checkpoints.
	// Engines built with New never journal regardless of this field, so
	// the scheduling hot path pays nothing when durability is off.
	DataDir string
	// CheckpointEvery cuts a checkpoint every this many virtual ticks
	// (default 120 — one virtual hour at 30-second ticks).
	CheckpointEvery int
	// FsyncEvery is the journal's group-commit interval (default 10ms).
	FsyncEvery time.Duration
	// JournalSegmentBytes rotates journal segments at this size
	// (default 8 MiB).
	JournalSegmentBytes int64

	// LifecycleBuffer enables pod-lifecycle tracing (DESIGN.md §4k) with
	// a flight-recorder ring of this many events. LifecycleEvery samples
	// one full per-pod timeline per this many pod IDs (ID-modulus
	// sampling, so federation processes sample the same pods and their
	// spans stitch into one trace). Both zero disables lifecycle tracing
	// entirely: no recorder is built and the hot path pays one nil check.
	LifecycleBuffer int
	LifecycleEvery  int
	// LifecycleRole names this process in stitched traces and Chrome
	// exports (default "engine"; the daemon sets "partition-N" or
	// "coordinator").
	LifecycleRole string
	// FlightWindow bounds the trailing window of lifecycle events an
	// anomaly dump writes (default 10s).
	FlightWindow time.Duration
	// Anomaly trip thresholds for the flight recorder, evaluated once per
	// tick when lifecycle tracing is on and DataDir is set: a shed spike
	// (sheds observed within one tick), a commit-conflict storm
	// (conflicts within one tick), and an fsync stall (latest group-fsync
	// duration). Zero values take the defaults (64, 256, 50ms); negative
	// values disable the individual trigger.
	AnomalyShedSpike     int64
	AnomalyConflictStorm int64
	AnomalyFsyncStall    time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Tick <= 0 {
		c.Tick = trace.SampleInterval
	}
	if c.Retry.MaxDisplacements == 0 && c.Retry.BaseBackoff == 0 && c.Retry.MaxBackoff == 0 {
		c.Retry = RetryPolicy{MaxDisplacements: 8}
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 120
	}
	if c.LifecycleRole == "" {
		c.LifecycleRole = "engine"
	}
	if c.FlightWindow <= 0 {
		c.FlightWindow = 10 * time.Second
	}
	if c.AnomalyShedSpike == 0 {
		c.AnomalyShedSpike = 64
	}
	if c.AnomalyConflictStorm == 0 {
		c.AnomalyConflictStorm = 256
	}
	if c.AnomalyFsyncStall == 0 {
		c.AnomalyFsyncStall = 50 * time.Millisecond
	}
	return c
}

// PodPhase is a submitted pod's lifecycle state in the engine.
type PodPhase int

// Pod phases. PodQueued covers waiting in the queue, sitting out a retry
// backoff, and being mid-decision in a worker; PodDone covers BE
// completion and lifetime expiry.
const (
	PodQueued PodPhase = iota
	PodPlaced
	PodDone
	PodShed
	PodExhausted
	// PodRejected is the fail-fast terminal state: the scheduler found no
	// capacity and Config.OnUnschedulable asked for withdrawal instead of
	// the in-engine retry loop (federation spillover re-dispatches the pod
	// to another partition). Conservation still holds — the record stays.
	PodRejected
)

var phaseNames = [...]string{"queued", "placed", "done", "shed", "exhausted", "rejected"}

// String names the phase.
func (p PodPhase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return "?"
	}
	return phaseNames[p]
}

// PodStatus is the queryable view of one submission.
type PodStatus struct {
	ID            int    `json:"id"`
	SLO           string `json:"slo"`
	Phase         string `json:"phase"`
	Node          int    `json:"node"` // -1 unless placed
	Attempts      int    `json:"attempts"`
	Displacements int    `json:"displacements"`
	Reason        string `json:"reason,omitempty"`
}

// NodeStatus is the queryable view of one host.
type NodeStatus struct {
	ID      int     `json:"id"`
	Phase   string  `json:"phase"`
	Pods    int     `json:"pods"`
	ReqCPU  float64 `json:"req_cpu"`
	ReqMem  float64 `json:"req_mem"`
	CapCPU  float64 `json:"cap_cpu"`
	CapMem  float64 `json:"cap_mem"`
	Version uint64  `json:"version"`
}

// Series holds the engine's per-tick utilization series, directly
// comparable to the same-named fields of sim.Result.
type Series struct {
	Times      []int64   `json:"times"`
	CPUUtilAvg []float64 `json:"cpu_util_avg"`
	MemUtilAvg []float64 `json:"mem_util_avg"`
	Violation  []float64 `json:"violation"`
}

// podRecord is the engine's bookkeeping for one submission.
type podRecord struct {
	pod           *trace.Pod
	phase         PodPhase
	node          int
	attempts      int
	displacements int
	// since is when the pod last entered the queue (virtual seconds);
	// reset on displacement, it drives the waiting-time metrics.
	since  int64
	reason sched.Reason
	// leaf is the pod's quota-tree leaf handle, -1 without a quota tree.
	leaf int32
}

// Engine is the online scheduling service.
type Engine struct {
	cfg   Config
	store *Store
	c     *cluster.Cluster
	q     *queue
	m     *Metrics
	// qt is the quota tree; nil when the engine runs single-tenant, so
	// every quota hook is one predictable nil-check branch.
	qt *quota.Tree

	workers []*worker

	now      atomic.Int64
	inFlight atomic.Int64
	// queued counts records in PodQueued phase (queue + backoff + in
	// flight); zero means the engine is settled.
	queued atomic.Int64
	// quiet is an edge-triggered wake for Drain: commit paths send
	// (non-blocking, capacity 1) when queued reaches zero, so a drain
	// waiter unparks within the commit that settled the engine instead
	// of on its next coarse poll. Drain re-checks settled() after every
	// wake; a missed edge only costs it the fallback sleep.
	quiet chan struct{}
	// active counts pods currently running on the cluster.
	active atomic.Int64

	recMu sync.Mutex
	recs  map[int]*podRecord
	// recSlab batches podRecord allocations (guarded by recMu): records are
	// retained for the engine's lifetime, so chunking wastes nothing and
	// removes one heap object per submission.
	recSlab []podRecord

	wMu     sync.Mutex
	waiting waitHeap

	exMu   sync.Mutex
	expiry expiryHeap

	serMu  sync.Mutex
	series Series

	// tickMu serializes tick-scope mutators: the event loop's tick and
	// external membership flips (SetNodeActive). The store's
	// BeginMutate/EndMutate quiescence barrier assumes a single writer;
	// this mutex is what makes that true once a federation rebalancer can
	// migrate nodes while the engine runs.
	tickMu sync.Mutex

	// jr is the write-ahead journal; nil for engines built with New, so
	// every durability hook is one predictable nil-check branch on the
	// hot path. See durability.go for the record semantics and the
	// locking protocol around checkpoint assembly.
	jr *journal.Journal
	// ckptMu orders journaled mutations against checkpoint assembly:
	// mutators that are not otherwise exclusive with the assembler
	// (Submit, fail) hold it shared across their append+mutate unit;
	// assembly holds it exclusively while capturing the cut, so a
	// checkpoint at LSN L reflects exactly the records with LSN <= L.
	ckptMu sync.RWMutex
	// phaseSeen tracks each node's last journaled lifecycle phase
	// (element i guarded by node i's shard lock).
	phaseSeen []cluster.NodePhase
	// tickN counts virtual ticks for the checkpoint cadence (event-loop
	// goroutine only).
	tickN int64
	// recovery holds the stats of the recovery that built this engine
	// (OpenDurable), nil for fresh engines.
	recovery  *RecoveryStats
	jrErrOnce sync.Once
	jrClosed  sync.Once

	// rec is the sampled decision-trace recorder; nil when TraceEvery is 0
	// so the scheduling path carries no tracing cost at all.
	rec *obs.Recorder
	// lc is the pod-lifecycle recorder (flight ring + sampled timelines +
	// stage latency histograms); nil when LifecycleBuffer and
	// LifecycleEvery are both 0, so the hot path pays one nil check.
	lc *obs.Lifecycle
	// anomaly trip baselines (event-loop goroutine only): last observed
	// shed/conflict totals and per-reason wall-clock cooldowns.
	anShed     int64
	anConflict int64
	anCool     map[string]time.Time
	// hist is the rolling cluster-telemetry ring, fed once per tick.
	hist *obs.History
	// log receives lifecycle events; always non-nil (discarding by default).
	log *slog.Logger

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// worker is one scheduling worker: a scheduler built over a private
// epoch-view cluster, the adoption bookkeeping that keeps the view
// current with the store's published shard snapshots, a private deque
// for work stealing, and reusable scratch so the steady-state loop
// allocates nothing.
type worker struct {
	id   int
	sc   sched.Scheduler
	view *cluster.Cluster
	// member[id] marks nodes this worker can place on (PartitionNodes);
	// nil means all. Adoption skips non-member nodes — the worker never
	// scores them, so reconciling them into its view is pure waste.
	member []bool
	// memberShards[sh] marks store shards containing at least one member
	// node; nil means all. Adoption skips whole shards outside the set,
	// so a partitioned worker's reconcile cost scales with its partition
	// rather than the cluster.
	memberShards []bool
	// adopted[id] is the clone currently installed in the view; pointer
	// comparison against the published shardView detects staleness.
	adopted []*cluster.NodeState
	// gens[sh] is the last shardView generation adopted per shard.
	gens []uint64
	// vers[id] is the adopted version per node — the observed version the
	// commit validates.
	vers []uint64

	dq wdeque

	// Reusable scratch (owner goroutine only).
	itemBuf  []item
	chunkBuf []item
	stealBuf []item
	batch    []*trace.Pod
	decVers  []uint64
	results  []CommitResult
	scr      CommitScratch
	perPod   map[int]uint64
	acc      batchAcc
}

// New builds an engine over a cluster. The cluster must be empty and must
// not be mutated by anyone else while the engine runs.
func New(c *cluster.Cluster, factory SchedulerFactory, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	// The partition membership baseline lands before the store's first
	// publish and before the workers' views are cloned, so non-owned
	// nodes are Down everywhere from genesis: the candidate indexes never
	// admit them and the per-decision scan cost scales with the owned
	// subset, not the cluster.
	for id, off := range cfg.InactiveNodes {
		if off && id < len(c.Nodes()) {
			c.FailNode(id, 0)
		}
	}
	e := &Engine{
		cfg:    cfg,
		store:  NewStore(c, cfg.Shards, cfg.BlockShards),
		c:      c,
		q:      newQueue(cfg.QueueCap, cfg.Quota),
		m:      newMetrics(),
		qt:     cfg.Quota,
		recs:   make(map[int]*podRecord, 8192),
		log:    cfg.Logger,
		stopCh: make(chan struct{}),
		quiet:  make(chan struct{}, 1),
	}
	if e.log == nil {
		e.log = discardLogger()
	}
	if cfg.TraceEvery > 0 {
		e.rec = obs.NewRecorder(cfg.TraceBuffer, cfg.TraceEvery)
	}
	if cfg.LifecycleBuffer > 0 || cfg.LifecycleEvery > 0 {
		e.lc = obs.NewLifecycle(cfg.LifecycleBuffer, cfg.LifecycleEvery, cfg.LifecycleRole)
		e.anCool = make(map[string]time.Time, 4)
	}
	histCap := cfg.HistoryCap
	if histCap <= 0 {
		histCap = 2880
	}
	e.hist = obs.NewHistory(histCap, sloNames())
	e.q.onPop = func(n int) { e.inFlight.Add(int64(n)) }
	for wi := 0; wi < cfg.Workers; wi++ {
		// Each worker's scheduler is built over a private epoch-view
		// cluster, so its candidate index and prediction summaries register
		// their observers on the view and maintain themselves during clone
		// adoption — lock-free, on the worker's own goroutine — instead of
		// fanning out synchronously under the live cluster's shard locks.
		vc := cluster.NewView(c)
		s := factory(vc, wi, cfg.Seed+int64(wi)*7919)
		w := &worker{id: wi, sc: s, view: vc}
		w.adopted = make([]*cluster.NodeState, len(c.Nodes()))
		copy(w.adopted, vc.Nodes())
		w.gens = make([]uint64, e.store.Shards())
		w.vers = make([]uint64, len(c.Nodes()))
		if cfg.PartitionNodes && cfg.Workers > 1 {
			if r, ok := s.(candidateRestrictor); ok {
				var ids []int
				w.member = make([]bool, len(c.Nodes()))
				for _, n := range c.Nodes() {
					if n.Node.ID%cfg.Workers == wi {
						ids = append(ids, n.Node.ID)
						w.member[n.Node.ID] = true
					}
				}
				r.RestrictTo(ids)
				w.memberShards = make([]bool, e.store.Shards())
				for _, id := range ids {
					w.memberShards[e.store.shardOf(id)] = true
				}
			}
		}
		if pp, ok := s.(interface{ Pipeline() *pipeline.Pipeline }); ok {
			// The view's index is owned by this worker alone: drop its
			// internal mutex from the adoption path.
			pp.Pipeline().Index().SetExclusive(true)
			// Stage spans cost two to three clock reads per decision;
			// sample them. Counters (visits, prunes, placements) stay
			// exact, and traced decisions are always timed.
			pp.Pipeline().Stats().SetSpanSampling(64)
			if e.rec != nil {
				// Every worker's pipeline feeds the shared recorder;
				// sampling and the ring are concurrency-safe.
				pp.Pipeline().SetRecorder(e.rec)
			}
		}
		e.workers = append(e.workers, w)
	}
	return e
}

// sloNames lists the SLO classes in index order for the telemetry ring.
func sloNames() []string {
	out := make([]string, int(trace.SLOBE)+1)
	for i := range out {
		out[i] = trace.SLO(i).String()
	}
	return out
}

// Store exposes the sharded state store (tests and diagnostics).
func (e *Engine) Store() *Store { return e.store }

// Now returns the virtual clock in seconds.
func (e *Engine) Now() int64 { return e.now.Load() }

// Traces returns the decision-trace recorder, or nil when tracing is
// disabled (Config.TraceEvery 0).
func (e *Engine) Traces() *obs.Recorder { return e.rec }

// Lifecycle returns the pod-lifecycle recorder, or nil when lifecycle
// tracing is disabled (Config.LifecycleBuffer and LifecycleEvery both 0).
// A nil *obs.Lifecycle is safe to call.
func (e *Engine) Lifecycle() *obs.Lifecycle { return e.lc }

// History returns the rolling cluster-telemetry ring.
func (e *Engine) History() *obs.History { return e.hist }

// Start launches the scheduler workers and the event loop.
func (e *Engine) Start() {
	e.log.Info("engine starting",
		"workers", e.cfg.Workers,
		"shards", e.cfg.Shards,
		"queue_cap", e.cfg.QueueCap,
		"tick_s", e.cfg.Tick,
		"trace_every", e.cfg.TraceEvery,
		"nodes", len(e.c.Nodes()))
	// Recovery replay (OpenDurable) mutates the cluster after NewStore's
	// initial publish; republish so the first adoption sees current state.
	e.store.PublishAll()
	for i := range e.workers {
		e.wg.Add(1)
		go e.runWorker(e.workers[i])
	}
	e.wg.Add(1)
	go e.loop()
}

// Stop shuts the engine down gracefully: no further submissions are
// accepted, workers finish their in-flight batches, and the event loop
// exits. Pods still queued stay accounted as pending. A durable engine
// cuts a final checkpoint and closes the journal, so the next boot
// restores without replaying the whole tail.
func (e *Engine) Stop() { e.shutdown(true) }

// crashStop stops the workers and abandons the journal without the final
// checkpoint a graceful Stop would cut: the next OpenDurable must recover
// from the last periodic checkpoint plus the journal tail, exactly like a
// process killed mid-run (the tail is still flushed on close, so tests
// recover a deterministic state). Test hook; no-op difference when the
// engine is not durable.
func (e *Engine) crashStop() { e.shutdown(false) }

func (e *Engine) shutdown(final bool) {
	e.stopOnce.Do(func() {
		close(e.stopCh)
		e.q.close()
	})
	e.wg.Wait()
	if e.jr != nil {
		e.jrClosed.Do(func() {
			if final {
				e.checkpoint()
			}
			if err := e.jr.Close(); err != nil {
				e.log.Error("journal close failed", "err", err)
			}
		})
	}
	e.log.Info("engine stopped",
		"virtual_now", e.now.Load(),
		"placed", e.m.placed.Load(),
		"running", e.active.Load())
}

// Submit admits one pod. The pod must be linked to its application
// (Workload.LinkPod). It returns ErrQueueFull when the submission was shed
// under backpressure, ErrDuplicate for a known pod ID, ErrClosed after
// Stop. A shed submission is still accounted: its record ends in the shed
// state.
func (e *Engine) Submit(p *trace.Pod) error {
	if e.jr == nil {
		return e.submit(p)
	}
	// The whole admission unit (record creation, OpAccept append, queue
	// push) runs under the shared checkpoint lock, so a checkpoint cut
	// can never separate a record from its log entry. A full queue must
	// not block while the lock is held — that would wedge the assembler
	// behind a submitter that only workers can unblock — so the durable
	// path always attempts without blocking, and waits for space outside
	// the lock.
	for {
		e.ckptMu.RLock()
		err := e.submitDurable(p)
		e.ckptMu.RUnlock()
		if err == errWouldBlock {
			e.q.waitSpace()
			continue
		}
		return err
	}
}

func (e *Engine) submit(p *trace.Pod) error {
	if p == nil || !p.Linked() {
		return ErrNotLinked
	}
	// Lifecycle arrival stamp: one clock read, only when tracing is on.
	var lt0 time.Time
	if e.lc != nil {
		lt0 = time.Now()
	}
	// Resolve the pod's quota leaf before any state is created: an
	// unresolvable tenant is a hard reject, like an unlinked pod.
	leaf := int32(-1)
	if e.qt != nil {
		var err error
		if leaf, err = e.qt.Resolve(p.Tenant, p.Queue); err != nil {
			return err
		}
	}
	now := e.now.Load()
	e.recMu.Lock()
	if _, ok := e.recs[p.ID]; ok {
		e.recMu.Unlock()
		return ErrDuplicate
	}
	if len(e.recSlab) == 0 {
		e.recSlab = make([]podRecord, 512)
	}
	rec := &e.recSlab[0]
	e.recSlab = e.recSlab[1:]
	rec.pod, rec.node, rec.since, rec.leaf = p, -1, now, leaf
	e.recs[p.ID] = rec
	e.recMu.Unlock()
	e.m.submitted.Add(1)

	// The quota gate runs ahead of the SLO lanes: an admission that would
	// push any ancestor over its max is shed, accounted exactly like a
	// backpressure shed (the record survives in the shed state).
	if e.qt != nil {
		if err := e.qt.Admit(leaf, p.Request); err != nil {
			e.shedQuotaRec(rec, p, leaf)
			return err
		}
	}

	err := e.q.push(item{pod: p, leaf: leaf}, e.cfg.BlockOnFull, nil)
	switch err {
	case nil:
		e.queued.Add(1)
		e.m.accepted.Add(1)
		if e.lc != nil {
			e.lc.Submitted(int64(p.ID), laneName(laneOf(p.SLO, false)), lt0, time.Now())
		}
		return nil
	case ErrQueueFull:
		e.recMu.Lock()
		rec.phase = PodShed
		e.recMu.Unlock()
		e.m.shedBySLO[sloIdx(p.SLO)].Add(1)
		if e.qt != nil {
			e.qt.ReleaseAdmitted(leaf, p.Request)
			e.qt.NoteShed(leaf)
		}
		if e.lc != nil {
			e.lc.Shed(int64(p.ID), "backpressure", time.Now())
		}
		return ErrQueueFull
	default: // ErrClosed
		e.recMu.Lock()
		delete(e.recs, p.ID)
		e.recMu.Unlock()
		e.m.submitted.Add(-1)
		if e.qt != nil {
			e.qt.ReleaseAdmitted(leaf, p.Request)
		}
		return err
	}
}

// shedQuotaRec marks a submission shed by the quota gate: the record stays
// (conservation), the tenant's shed counter advances, nothing was charged.
func (e *Engine) shedQuotaRec(rec *podRecord, p *trace.Pod, leaf int32) {
	e.recMu.Lock()
	rec.phase = PodShed
	e.recMu.Unlock()
	e.m.shedBySLO[sloIdx(p.SLO)].Add(1)
	e.m.quotaShed.Add(1)
	e.qt.NoteShed(leaf)
	if e.lc != nil {
		e.lc.Shed(int64(p.ID), "quota", time.Now())
	}
}

// submitDurable is the journaled admission path. The OpAccept append runs
// under the queue lock immediately before the enqueue, so the log carries
// an accept exactly when the pod actually entered the queue: a rejected
// push leaves no trace and can be retried (blocking mode) or recorded as
// a self-contained OpShed (shedding mode).
func (e *Engine) submitDurable(p *trace.Pod) error {
	if p == nil || !p.Linked() {
		return ErrNotLinked
	}
	var lt0 time.Time
	if e.lc != nil {
		lt0 = time.Now()
	}
	leaf := int32(-1)
	if e.qt != nil {
		var err error
		if leaf, err = e.qt.Resolve(p.Tenant, p.Queue); err != nil {
			return err
		}
	}
	now := e.now.Load()
	e.recMu.Lock()
	if _, ok := e.recs[p.ID]; ok {
		e.recMu.Unlock()
		return ErrDuplicate
	}
	if len(e.recSlab) == 0 {
		e.recSlab = make([]podRecord, 512)
	}
	rec := &e.recSlab[0]
	e.recSlab = e.recSlab[1:]
	rec.pod, rec.node, rec.since, rec.leaf = p, -1, now, leaf
	e.recs[p.ID] = rec
	e.recMu.Unlock()
	e.m.submitted.Add(1)

	blob, merr := json.Marshal(p)
	if merr != nil {
		e.journalError(merr)
	}

	// Quota gate before the journaled enqueue: a quota shed is journaled
	// as its own self-contained OpShed (nothing was accepted to roll back).
	if e.qt != nil {
		if err := e.qt.Admit(leaf, p.Request); err != nil {
			e.shedQuotaRec(rec, p, leaf)
			if merr == nil {
				e.jrAppend(journal.OpShed, now, int64(p.ID), shedQuota, 0, blob)
			}
			return err
		}
	}

	err := e.q.push(item{pod: p, leaf: leaf}, false, func() {
		if merr == nil {
			e.jrAppend(journal.OpAccept, now, int64(p.ID), 0, 0, blob)
		}
	})
	switch err {
	case nil:
		e.queued.Add(1)
		e.m.accepted.Add(1)
		if e.lc != nil {
			e.lc.Submitted(int64(p.ID), laneName(laneOf(p.SLO, false)), lt0, time.Now())
		}
		return nil
	case ErrQueueFull:
		if e.cfg.BlockOnFull {
			// Nothing was journaled; undo the record and let Submit wait
			// for space outside the checkpoint lock.
			e.recMu.Lock()
			delete(e.recs, p.ID)
			e.recMu.Unlock()
			e.m.submitted.Add(-1)
			if e.qt != nil {
				e.qt.ReleaseAdmitted(leaf, p.Request)
			}
			return errWouldBlock
		}
		e.recMu.Lock()
		rec.phase = PodShed
		e.recMu.Unlock()
		e.m.shedBySLO[sloIdx(p.SLO)].Add(1)
		if e.qt != nil {
			e.qt.ReleaseAdmitted(leaf, p.Request)
			e.qt.NoteShed(leaf)
		}
		if merr == nil {
			e.jrAppend(journal.OpShed, now, int64(p.ID), shedBackpressure, 0, blob)
		}
		if e.lc != nil {
			e.lc.Shed(int64(p.ID), "backpressure", time.Now())
		}
		return ErrQueueFull
	default: // ErrClosed
		e.recMu.Lock()
		delete(e.recs, p.ID)
		e.recMu.Unlock()
		e.m.submitted.Add(-1)
		if e.qt != nil {
			e.qt.ReleaseAdmitted(leaf, p.Request)
		}
		return err
	}
}

// Drain blocks until the engine settles — every accepted pod placed, done,
// shed or exhausted, or (with a Horizon) the virtual clock has reached the
// horizon with nothing left ready to schedule. It returns false on
// timeout.
func (e *Engine) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if e.settled() {
			return true
		}
		if time.Now().After(deadline) {
			return e.settled()
		}
		// Commit paths signal quiet when the pending counter hits zero,
		// so the common case unparks immediately; the timeout keeps
		// horizon-mode settling (no counter edge) making progress.
		select {
		case <-e.quiet:
		case <-time.After(time.Millisecond):
		}
	}
}

// signalQuiet wakes a Drain waiter. The channel is a capacity-1 edge
// trigger: a send with no waiter parked is retained for the next one,
// and extra sends are dropped.
func (e *Engine) signalQuiet() {
	select {
	case e.quiet <- struct{}{}:
	default:
	}
}

func (e *Engine) settled() bool {
	if e.cfg.Horizon > 0 {
		// In fast mode the clock always reaches the horizon (so the
		// utilization series covers it, like a sim.Run Result); past it
		// the clock stops, pods still in backoff will never be released,
		// and the engine is settled once nothing is ready to schedule.
		if e.now.Load() >= e.cfg.Horizon {
			return e.q.len() == 0 && e.inFlight.Load() == 0
		}
		if e.cfg.TickWall == 0 {
			return false
		}
	}
	return e.queued.Load() == 0
}

// Snapshot assembles the JSON-ready metrics view.
func (e *Engine) Snapshot() Snapshot {
	sn := e.m.snapshot()
	sn.VirtualNow = e.now.Load()
	sn.QueueDepth = e.q.len()
	sn.InFlight = int(e.inFlight.Load())
	e.wMu.Lock()
	sn.Backlogged = len(e.waiting)
	e.wMu.Unlock()
	sn.Pending = sn.QueueDepth + sn.Backlogged + sn.InFlight
	sn.Running = int(e.active.Load())
	sn.States = make(map[string]int64)
	e.recMu.Lock()
	for _, rec := range e.recs {
		sn.States[rec.phase.String()]++
	}
	e.recMu.Unlock()
	sn.EpochsPublished = e.store.Epochs()
	var ps pipeline.StatsSnapshot
	merged := false
	for _, w := range e.workers {
		if pp, ok := w.sc.(interface{ Pipeline() *pipeline.Pipeline }); ok {
			pp.Pipeline().Stats().AddTo(&ps)
			merged = true
		}
	}
	if merged {
		ps.Finalize()
		sn.Pipeline = &ps
	}
	if e.jr != nil {
		st := e.jr.Stats()
		sn.Journal = &st
		sn.Recovery = e.recovery
	}
	if e.qt != nil {
		qs := e.qt.Snapshot()
		sn.Quota = &qs
	}
	if e.lc != nil {
		h := e.lc.StageHistogram(obs.StagePlaced)
		sn.E2E = &E2ESummary{
			Count:           h.Count(),
			P50Ms:           1000 * h.Quantile(0.50),
			P99Ms:           1000 * h.Quantile(0.99),
			MeanMs:          1000 * h.Mean(),
			QueueWaitMeanMs: 1000 * e.lc.StageHistogram(obs.StageQueueWait).Mean(),
			SchedMeanMs:     1000 * e.lc.StageHistogram(obs.StageSched).Mean(),
			CommitMeanMs:    1000 * e.lc.StageHistogram(obs.StageCommit).Mean(),
			FsyncWaitMeanMs: 1000 * e.lc.StageHistogram(obs.StageFsyncWait).Mean(),
		}
	}
	return sn
}

// PodStatus reports one submission's state.
func (e *Engine) PodStatus(id int) (PodStatus, bool) {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	rec, ok := e.recs[id]
	if !ok {
		return PodStatus{}, false
	}
	st := PodStatus{
		ID: id, SLO: rec.pod.SLO.String(), Phase: rec.phase.String(),
		Node: rec.node, Attempts: rec.attempts, Displacements: rec.displacements,
	}
	if rec.reason != sched.ReasonNone {
		st.Reason = rec.reason.String()
	}
	return st, true
}

// NodeStatus reports one host's state.
func (e *Engine) NodeStatus(id int) (NodeStatus, bool) {
	if id < 0 || id >= len(e.c.Nodes()) {
		return NodeStatus{}, false
	}
	var st NodeStatus
	e.store.ReadNode(id, func(n *cluster.NodeState) {
		st = e.nodeStatusLocked(n)
	})
	return st, true
}

// NodeStatuses reports every host under one consistent read lock.
func (e *Engine) NodeStatuses() []NodeStatus {
	e.store.RLockAll()
	defer e.store.RUnlockAll()
	out := make([]NodeStatus, 0, len(e.c.Nodes()))
	for _, n := range e.c.Nodes() {
		out = append(out, e.nodeStatusLocked(n))
	}
	return out
}

func (e *Engine) nodeStatusLocked(n *cluster.NodeState) NodeStatus {
	id := n.Node.ID
	return NodeStatus{
		ID: id, Phase: n.Phase().String(), Pods: len(n.Pods()),
		ReqCPU: n.ReqSum().CPU, ReqMem: n.ReqSum().Mem,
		CapCPU: n.Capacity().CPU, CapMem: n.Capacity().Mem,
		Version: e.store.version[id],
	}
}

// Series returns a copy of the per-tick utilization series recorded so
// far.
func (e *Engine) Series() Series {
	e.serMu.Lock()
	defer e.serMu.Unlock()
	return Series{
		Times:      append([]int64(nil), e.series.Times...),
		CPUUtilAvg: append([]float64(nil), e.series.CPUUtilAvg...),
		MemUtilAvg: append([]float64(nil), e.series.MemUtilAvg...),
		Violation:  append([]float64(nil), e.series.Violation...),
	}
}

// runWorker is one scheduling worker: drain the private deque in
// MaxBatch bites, refill it from the shared admission queue in
// double-size chunks, and — when both are empty — steal half the tail of
// the longest peer deque. Deque residents were already popped from the
// shared queue, so they count as in flight and the fast-mode tick
// barrier (queue empty AND nothing in flight) stays exact.
func (e *Engine) runWorker(w *worker) {
	defer e.wg.Done()
	chunk := 2 * e.cfg.MaxBatch
	idle := 0
	for {
		items := w.dq.popFront(e.cfg.MaxBatch, w.itemBuf[:0])
		if len(items) == 0 {
			got, closed := e.q.tryPopBatch(chunk, w.chunkBuf[:0])
			w.chunkBuf = got[:0]
			if len(got) > 0 {
				w.dq.pushBack(got)
				items = w.dq.popFront(e.cfg.MaxBatch, w.itemBuf[:0])
			} else if closed {
				// The queue yields nothing after close; finish what is
				// already in the deque (in flight) and exit.
				return
			} else if stolen := e.steal(w); len(stolen) > 0 {
				w.dq.pushBack(stolen)
				items = w.dq.popFront(e.cfg.MaxBatch, w.itemBuf[:0])
			}
		}
		if len(items) == 0 {
			// One yield covers a peer mid-commit about to requeue; after
			// that, park on the queue's condvar so the next push (or a
			// tick's backoff release) wakes the worker directly — timed
			// sleeps here cost a full scheduler quantum per probe.
			if idle++; idle < 2 {
				runtime.Gosched()
				continue
			}
			got := e.q.popBatch(chunk)
			if got == nil {
				return // closed
			}
			w.dq.pushBack(got)
			if len(got) < e.cfg.MaxBatch {
				// Woken on the leading edge of a burst: yield once so
				// the producer can land the rest, then top the deque up
				// — otherwise every push after an idle park schedules a
				// near-empty batch at full per-batch cost.
				runtime.Gosched()
				more, _ := e.q.tryPopBatch(chunk-len(got), w.chunkBuf[:0])
				w.chunkBuf = more[:0]
				if len(more) > 0 {
					w.dq.pushBack(more)
				}
			}
			idle = 0
			continue
		}
		idle = 0
		w.itemBuf = items[:0]
		e.processBatch(w, items)
	}
}

// steal takes half the tail of the longest peer deque (at least two items
// long, so there is something left for the owner). Called only when the
// thief's own deque and the shared queue are both empty.
func (e *Engine) steal(w *worker) []item {
	var best *worker
	bestN := 1
	for _, p := range e.workers {
		if p == w {
			continue
		}
		if n := p.dq.size(); n > bestN {
			best, bestN = p, n
		}
	}
	if best == nil {
		return nil
	}
	buf := best.dq.stealTail(w.stealBuf[:0])
	w.stealBuf = buf[:0]
	if len(buf) > 0 {
		e.m.steals.Add(1)
	}
	return buf
}

// processBatch scores one batch against the worker's epoch view with zero
// locks, then commits the staged decisions: one write-lock acquisition
// per target shard by default (CommitBatch), or the legacy per-decision
// path under Config.PerPodCommit. Failures recycle through the retry
// path in decision order either way.
func (e *Engine) processBatch(w *worker, items []item) {
	now := e.now.Load()
	batch := w.batch[:0]
	for _, it := range items {
		batch = append(batch, it.pod)
	}
	w.batch = batch[:0]

	if e.lc != nil {
		// One clock read for the whole batch: every pod's queue wait ends
		// at this dequeue.
		deq := time.Now()
		for _, it := range items {
			e.lc.Dequeued(int64(it.pod.ID), laneName(laneOf(it.pod.SLO, it.displaced)), deq)
		}
	}

	start := time.Now()
	// Snapshot load: enter the epoch-read section, adopt the newest
	// published shard views into the private view cluster, then score.
	// No sync primitive is acquired from here until the staged decisions
	// go to commit — the view index runs in exclusive (mutex-free) mode
	// and the barrier is pure atomics.
	e.store.BeginScore()
	e.adopt(w)
	decisions := w.sc.Schedule(batch, now)
	if cap(w.decVers) < len(decisions) {
		w.decVers = make([]uint64, len(decisions))
	}
	vers := w.decVers[:len(decisions)]
	for i := range decisions {
		if id := decisions[i].NodeID; id >= 0 && id < len(w.vers) {
			vers[i] = w.vers[id]
		} else {
			vers[i] = 0
		}
	}
	e.store.EndScore()
	schedSpan := time.Since(start)
	e.m.schedNanos.Add(int64(schedSpan))
	perPod := time.Duration(int64(schedSpan) / int64(len(items)))

	// Sampled traces from this batch, by pod — the commit stage below
	// amends exactly the attempt the scheduler just recorded (a pod can
	// have older traces from earlier retries).
	var btr map[int]*obs.DecisionTrace
	if e.rec != nil {
		if pp, ok := w.sc.(interface{ Pipeline() *pipeline.Pipeline }); ok {
			if bt := pp.Pipeline().BatchTraces(); len(bt) > 0 {
				btr = make(map[int]*obs.DecisionTrace, len(bt))
				for _, dt := range bt {
					btr[dt.PodID] = dt
				}
			}
		}
	}

	if cap(w.results) < len(decisions) {
		w.results = make([]CommitResult, len(decisions))
	}
	results := w.results[:len(decisions)]
	c0 := time.Now()
	staged := 0
	if e.cfg.PerPodCommit {
		// bumps tracks this worker's own commits per node within the
		// batch, so stacking two pods on one host doesn't read as a
		// conflict with itself.
		if w.perPod == nil {
			w.perPod = make(map[int]uint64, 16)
		} else {
			clear(w.perPod)
		}
		for i := range decisions {
			d := decisions[i]
			if d.NodeID < 0 {
				continue
			}
			staged++
			results[i] = e.store.Commit(d, vers[i]+w.perPod[d.NodeID], now, func(evicted []*cluster.PodState) {
				e.onPlaced(d, now, evicted)
			})
			if st := results[i].Status; st == CommitPlaced || st == CommitConflictPlaced {
				w.perPod[d.NodeID]++
			}
		}
	} else {
		for i := range decisions {
			if decisions[i].NodeID >= 0 {
				staged++
			}
		}
		if staged > 0 {
			// The record mutex is taken lazily on a group's first placement
			// and held until the store signals the group is done, so a shard
			// group's record updates cost one acquisition instead of one per
			// pod. Counter deltas accumulate in acc and flush once below —
			// nothing on the per-pod path but the record write itself.
			acc := &w.acc
			*acc = batchAcc{}
			recLocked := false
			lockRec := func() {
				if !recLocked {
					e.recMu.Lock()
					recLocked = true
				}
			}
			unlockRec := func() {
				if recLocked {
					e.recMu.Unlock()
					recLocked = false
				}
			}
			e.store.CommitBatch(decisions, vers, now, results, &w.scr, func(i int, evicted []*cluster.PodState) {
				e.onPlacedGrouped(decisions[i], now, evicted, lockRec, unlockRec, acc)
			}, unlockRec)
			e.m.batchCommits.Add(1)
			e.flushAcc(acc)
		}
	}
	commitSpan := time.Since(c0)
	e.m.commitNanos.Add(int64(commitSpan))

	// Lifecycle attribution for the batch: the sched and commit spans are
	// batch windows (each pod's share is the amortized perPod for the
	// histograms); placements watch the journal's current LSN watermark,
	// which is at or past each pod's OpPlace append, until the covering
	// group fsync reports back through FsyncCovered.
	var lcNow time.Time
	var lcLSN uint64
	if e.lc != nil {
		lcNow = time.Now()
		if e.jr != nil {
			lcLSN = e.jr.LastLSN()
		}
	}

	e.m.decision.observeN(perPod, int64(len(decisions)))
	for i, d := range decisions {
		dt := btr[d.Pod.ID]
		if d.NodeID < 0 {
			if dt != nil {
				e.rec.Amend(dt, func(t *obs.DecisionTrace) { t.Now = now })
			}
			if e.lc != nil {
				e.lc.SchedAttempt(int64(d.Pod.ID), 0, start, schedSpan, perPod, d.Reason.String())
			}
			if e.cfg.OnUnschedulable != nil {
				e.reject(items[i], d.Reason, now)
			} else {
				e.fail(items[i], d.Reason, now)
			}
			continue
		}
		res := results[i]
		if e.lc != nil {
			e.lc.SchedAttempt(int64(d.Pod.ID), 0, start, schedSpan, perPod, "")
			outcome := "placed"
			switch res.Status {
			case CommitConflictPlaced:
				outcome = "conflict-placed"
			case CommitConflictRejected:
				outcome = "conflict-rejected"
			case CommitStale:
				outcome = "stale-rejected"
			}
			e.lc.Committed(int64(d.Pod.ID), 0, c0, commitSpan, outcome)
			if res.Status == CommitPlaced || res.Status == CommitConflictPlaced {
				e.lc.Placed(int64(d.Pod.ID), d.NodeID, lcNow, lcLSN)
			}
		}
		if dt != nil {
			e.rec.Amend(dt, func(t *obs.DecisionTrace) {
				t.Now = now
				// Commits are validated per shard group; the span is the
				// whole batch's commit window.
				t.SpanFrom("commit", c0, commitSpan)
				switch res.Status {
				case CommitConflictPlaced:
					t.Outcome = "conflict-placed"
				case CommitConflictRejected:
					t.Outcome = "conflict-rejected"
					t.Reject("commit", "commit conflict", 1)
				case CommitStale:
					t.Outcome = "stale-rejected"
					t.Reject("commit", "node not schedulable", 1)
				}
			})
		}
		switch res.Status {
		case CommitPlaced:
		case CommitConflictPlaced:
			e.m.commitConflicts.Add(1)
			e.m.batchConflicts.Add(1)
		case CommitConflictRejected:
			e.m.commitConflicts.Add(1)
			e.m.conflictRejects.Add(1)
			e.m.batchConflicts.Add(1)
			e.fail(items[i], sched.ReasonOther, now)
		case CommitStale:
			e.m.staleRejects.Add(1)
			e.fail(items[i], sched.ReasonOther, now)
		}
	}
	e.inFlight.Add(-int64(len(items)))
}

// adopt brings the worker's view cluster up to date with the store's
// published epoch snapshots: for each shard whose generation moved, swap
// in the clones that changed (pointer comparison) and record their
// versions. Runs inside the snapshot-read section; touches no locks.
// Partitioned workers skip nodes outside their member set — they never
// score them, and commit validation runs against live state anyway.
func (e *Engine) adopt(w *worker) {
	nsh := e.store.Shards()
	for sh := 0; sh < nsh; sh++ {
		if w.memberShards != nil && !w.memberShards[sh] {
			continue
		}
		v := e.store.view(sh)
		if v == nil || v.gen == w.gens[sh] {
			continue
		}
		w.gens[sh] = v.gen
		start, stride, _ := e.store.shardSpan(sh)
		for i, cl := range v.nodes {
			id := start + i*stride
			if w.member != nil && !w.member[id] {
				continue
			}
			if w.adopted[id] != cl {
				w.adopted[id] = cl
				w.view.AdoptNode(cl)
			}
			w.vers[id] = v.vers[i]
		}
	}
}

// onPlaced runs under the target's shard write lock, immediately after the
// placement: record updates happen atomically with the deployment so the
// event loop can never observe a placed pod without its record agreeing.
func (e *Engine) onPlaced(d sched.Decision, now int64, evicted []*cluster.PodState) {
	p := d.Pod
	// Evictions first: the deployment path (pipeline.Deploy) removes the
	// preempted BE pods from the node before placing the new pod, so the
	// journal must carry the OpRemoves before the OpPlace for replay to
	// apply the accounting adds and subs in the identical order.
	for _, ev := range evicted {
		e.m.preempted.Add(1)
		e.displacedPod(ev, now, false)
	}
	if e.jr != nil {
		e.jrAppend(journal.OpPlace, now, int64(p.ID), int64(d.NodeID), 0, nil)
	}
	leaf := int32(-1)
	e.recMu.Lock()
	rec := e.recs[p.ID]
	if rec != nil {
		rec.phase = PodPlaced
		rec.node = d.NodeID
		rec.reason = sched.ReasonNone
		leaf = rec.leaf
		wait := now - rec.since
		idx := sloIdx(p.SLO)
		e.m.waitSum[idx].Add(wait)
		e.m.waitCount[idx].Add(1)
	}
	e.recMu.Unlock()
	if e.qt != nil {
		e.qt.MarkPlaced(leaf, p.ID, p.Request, p.SLO == trace.SLOBE)
	}
	if e.queued.Add(-1) == 0 {
		e.signalQuiet()
	}
	e.active.Add(1)
	e.m.placed.Add(1)
	e.m.placedBySLO[sloIdx(p.SLO)].Add(1)
	if p.Lifetime > 0 {
		e.exMu.Lock()
		heap.Push(&e.expiry, expiryEntry{at: p.Lifetime, podID: p.ID})
		e.exMu.Unlock()
	}
}

// batchAcc accumulates one batch's counter deltas so the commit path
// issues a handful of atomic adds per batch instead of several per pod.
type batchAcc struct {
	placed    int64
	bySLO     [int(trace.SLOBE) + 1]int64
	waitSum   [int(trace.SLOBE) + 1]int64
	waitCount [int(trace.SLOBE) + 1]int64
}

// flushAcc publishes a batch's accumulated counter deltas.
func (e *Engine) flushAcc(acc *batchAcc) {
	if acc.placed == 0 {
		return
	}
	if e.queued.Add(-acc.placed) == 0 {
		e.signalQuiet()
	}
	e.active.Add(acc.placed)
	e.m.placed.Add(acc.placed)
	for i := range acc.bySLO {
		if acc.bySLO[i] > 0 {
			e.m.placedBySLO[i].Add(acc.bySLO[i])
		}
		if acc.waitCount[i] > 0 {
			e.m.waitSum[i].Add(acc.waitSum[i])
			e.m.waitCount[i].Add(acc.waitCount[i])
		}
	}
}

// onPlacedGrouped is onPlaced for the batched commit path: the record
// mutex is acquired through lockRec (lazily, held across the shard
// group), and counters go to acc instead of straight to the atomics.
// Paths that take other engine locks (displacement, quota, expiry) call
// unlockRec first so the lock order stays recMu-last everywhere.
func (e *Engine) onPlacedGrouped(d sched.Decision, now int64, evicted []*cluster.PodState, lockRec, unlockRec func(), acc *batchAcc) {
	p := d.Pod
	if len(evicted) > 0 {
		unlockRec() // displaced() takes recMu (and wMu) itself
		for _, ev := range evicted {
			e.m.preempted.Add(1)
			e.displacedPod(ev, now, false)
		}
	}
	if e.jr != nil {
		e.jrAppend(journal.OpPlace, now, int64(p.ID), int64(d.NodeID), 0, nil)
	}
	leaf := int32(-1)
	lockRec()
	rec := e.recs[p.ID]
	if rec != nil {
		rec.phase = PodPlaced
		rec.node = d.NodeID
		rec.reason = sched.ReasonNone
		leaf = rec.leaf
		idx := sloIdx(p.SLO)
		acc.waitSum[idx] += now - rec.since
		acc.waitCount[idx]++
	}
	acc.placed++
	acc.bySLO[sloIdx(p.SLO)]++
	if e.qt != nil {
		unlockRec() // quota tree has its own lock; keep recMu innermost
		e.qt.MarkPlaced(leaf, p.ID, p.Request, p.SLO == trace.SLOBE)
	}
	if p.Lifetime > 0 {
		unlockRec() // the tick acquires exMu before recMu
		e.exMu.Lock()
		heap.Push(&e.expiry, expiryEntry{at: p.Lifetime, podID: p.ID})
		e.exMu.Unlock()
	}
}

// fail parks a pod that could not be placed this attempt. Everyone waits
// at least one virtual tick (retrying within the tick would re-score
// unchanged state); BE pods additionally back off exponentially. With a
// quota tree, a capacity failure of an under-guaranteed tenant's LS/LSR
// pod first evicts over-quota tenants' BE pods (cross-queue preemption),
// so the retry lands on freed capacity.
func (e *Engine) fail(it item, reason sched.Reason, now int64) {
	if e.jr != nil {
		// The whole unit — record update, retry counter, journal append,
		// heap push — must land on one side of a checkpoint cut, and the
		// append shares the wMu critical section with the push so the log
		// order of this OpFail against the tick's OpTick agrees with
		// whether that tick's release saw the entry. Lock order (ckptMu,
		// then wMu) matches checkpoint assembly, and the quota evictions
		// below take shard locks, which also nest inside ckptMu.
		e.ckptMu.RLock()
		defer e.ckptMu.RUnlock()
	}
	if e.qt != nil {
		e.quotaPreempt(it, reason, now)
	}
	at := now
	attempts := int32(0)
	e.recMu.Lock()
	if rec := e.recs[it.pod.ID]; rec != nil {
		rec.attempts++
		rec.reason = reason
		attempts = int32(rec.attempts)
		if b := e.cfg.Retry.Backoff(rec.attempts - 1); it.pod.SLO == trace.SLOBE && b > e.cfg.Tick {
			at = now + b
		} else {
			at = now + e.cfg.Tick
		}
	}
	e.recMu.Unlock()
	e.m.retries.Add(1)
	if e.lc != nil {
		e.lc.Retried(int64(it.pod.ID), attempts, reason.String(), time.Now())
	}
	e.wMu.Lock()
	if e.jr != nil {
		e.jrAppend(journal.OpFail, now, int64(it.pod.ID), int64(reason)|packFlag(it.displaced), at, nil)
	}
	heap.Push(&e.waiting, waitEntry{notBefore: at, it: it})
	e.wMu.Unlock()
}

// reject is fail's fail-fast sibling (Config.OnUnschedulable): instead of
// parking the pod for an in-engine retry, the record moves to the terminal
// PodRejected state, the quota admission is released, and the hook fires —
// after every engine lock is dropped — so a federation coordinator can
// re-dispatch the pod to another partition.
func (e *Engine) reject(it item, reason sched.Reason, now int64) {
	p := it.pod
	if e.jr != nil {
		// Same unit discipline as fail: the record flip and its OpReject
		// land on one side of any checkpoint cut.
		e.ckptMu.RLock()
	}
	e.recMu.Lock()
	if rec := e.recs[p.ID]; rec != nil {
		rec.attempts++
		rec.reason = reason
		rec.phase = PodRejected
	}
	e.recMu.Unlock()
	e.m.rejected.Add(1)
	if e.jr != nil {
		e.jrAppend(journal.OpReject, now, int64(p.ID), int64(reason), 0, nil)
		e.ckptMu.RUnlock()
	}
	if e.qt != nil {
		e.qt.ReleaseAdmitted(it.leaf, p.Request)
	}
	if e.lc != nil {
		e.lc.Rejected(int64(p.ID), reason.String(), time.Now())
	}
	// The hook fires before the queued count drops: Drain cannot report
	// the engine settled while a coordinator has not yet been told about
	// this reject, so "all partitions drained" implies "all spillover
	// queued". Every engine lock is already released here.
	e.cfg.OnUnschedulable(p, reason)
	if e.queued.Add(-1) == 0 {
		e.signalQuiet()
	}
}

// maxQuotaVictims bounds the BE evictions one failed attempt may trigger.
const maxQuotaVictims = 4

// quotaPreempt composes the quota tree with the displaced-pod machinery:
// when an under-guaranteed tenant's latency-sensitive pod fails on
// capacity, the most over-quota tenants' best-effort pods are evicted
// through the same removal/re-dispatch path chaos faults and LSR
// preemption use. The failed pod itself retries next tick onto the freed
// capacity.
func (e *Engine) quotaPreempt(it item, reason sched.Reason, now int64) {
	p := it.pod
	if !p.SLO.LatencySensitive() {
		return
	}
	if reason != sched.ReasonCPU && reason != sched.ReasonMem && reason != sched.ReasonCPUMem {
		return
	}
	if !e.qt.UnderGuaranteed(it.leaf) {
		return
	}
	for _, v := range e.qt.PickVictims(it.leaf, p.Request, maxQuotaVictims) {
		ps := e.store.Evict(v.PodID, now)
		if ps == nil {
			continue // raced with completion or another preemption
		}
		e.m.preempted.Add(1)
		e.m.quotaPreempted.Add(1)
		e.qt.NotePreempted(v.Leaf)
		e.displaced(ps, now, false, true)
	}
}

// displacedPod handles a pod removed while running (chaos fault or BE
// preemption): re-dispatch under the retry policy, or abandon it once the
// displacement budget is spent. jump marks chaos displacement, which lets
// latency-sensitive pods jump the queue.
func (e *Engine) displacedPod(ps *cluster.PodState, now int64, jump bool) {
	e.displaced(ps, now, jump, false)
}

// displaced is the displacement bookkeeping shared by chaos faults, LSR
// preemption, and quota preemption (quotaEv). The pod has already been
// removed from the cluster by the caller; this updates the record, the
// quota tree, the journal, and re-dispatches or abandons the pod.
func (e *Engine) displaced(ps *cluster.PodState, now int64, jump, quotaEv bool) {
	p := ps.Pod
	flags := packFlag(jump) | packQuotaFlag(quotaEv)
	e.recMu.Lock()
	rec := e.recs[p.ID]
	if rec == nil || rec.phase != PodPlaced {
		e.recMu.Unlock()
		return
	}
	leaf := rec.leaf
	e.active.Add(-1)
	e.m.displaced.Add(1)
	rec.node = -1
	rec.displacements++
	if e.qt != nil {
		// The pod no longer holds its node either way; terminal branches
		// below additionally return the admission charge.
		e.qt.UnmarkPlaced(leaf, p.ID, p.Request)
	}
	if p.Lifetime > 0 && p.Lifetime <= now {
		// Its scheduled life is over anyway; nothing to replace.
		rec.phase = PodDone
		e.m.expired.Add(1)
		e.recMu.Unlock()
		if e.qt != nil {
			e.qt.ReleaseAdmitted(leaf, p.Request)
		}
		if e.jr != nil {
			e.jrAppend(journal.OpRemove, now, int64(p.ID), rmDispExpired|flags, 0, nil)
		}
		return
	}
	if mx := e.cfg.Retry.MaxDisplacements; mx > 0 && rec.displacements > mx {
		rec.phase = PodExhausted
		e.m.exhausted.Add(1)
		e.recMu.Unlock()
		if e.qt != nil {
			e.qt.ReleaseAdmitted(leaf, p.Request)
		}
		if e.jr != nil {
			e.jrAppend(journal.OpRemove, now, int64(p.ID), rmExhausted|flags, 0, nil)
		}
		return
	}
	rec.phase = PodQueued
	rec.since = now
	rec.attempts = 0
	rec.reason = sched.ReasonNone
	e.recMu.Unlock()
	e.queued.Add(1)
	it := item{pod: p, displaced: jump, leaf: leaf}
	if p.SLO == trace.SLOBE {
		if b := e.cfg.Retry.Backoff(0); b > 0 {
			e.wMu.Lock()
			if e.jr != nil {
				e.jrAppend(journal.OpRemove, now, int64(p.ID), rmRequeued|flags, now+b, nil)
			}
			heap.Push(&e.waiting, waitEntry{notBefore: now + b, it: it})
			e.wMu.Unlock()
			return
		}
	}
	if e.jr != nil {
		e.jrAppend(journal.OpRemove, now, int64(p.ID), rmRequeued|flags, 0, nil)
	}
	e.q.forcePush(it)
}

// loop is the event loop. With TickWall set it paces virtual ticks
// against the wall clock; in fast mode it advances whenever the pipeline
// is quiescent (ready queue drained, nothing in flight) and there is
// still work a tick could unlock.
func (e *Engine) loop() {
	defer e.wg.Done()
	if e.cfg.TickWall > 0 {
		tk := time.NewTicker(e.cfg.TickWall)
		defer tk.Stop()
		for {
			select {
			case <-e.stopCh:
				return
			case <-tk.C:
				if e.cfg.Horizon <= 0 || e.now.Load() < e.cfg.Horizon {
					e.tick()
				}
			}
		}
	}
	const idleMin, idleMax = 50 * time.Microsecond, time.Millisecond
	sleep := idleMin
	for {
		select {
		case <-e.stopCh:
			return
		default:
		}
		// Order matters: queue length before inFlight (popBatch moves
		// counts from the former to the latter atomically under the
		// queue lock, so this order can never see both at zero mid-pop).
		if e.q.len() == 0 && e.inFlight.Load() == 0 && e.tickWorthwhile() {
			e.tick()
			sleep = idleMin
			continue
		}
		// While the pipeline is busy the loop has nothing to do; back
		// off so the polling does not steal cycles (and context
		// switches) from the workers mid-burst.
		time.Sleep(sleep)
		if sleep *= 2; sleep > idleMax {
			sleep = idleMax
		}
	}
}

// tickWorthwhile reports whether advancing the clock can make progress.
// With a Horizon set the clock always runs to it (so the utilization
// series covers the horizon exactly like a sim.Run Result); without one,
// ticks only fire while they can change something — pods waiting out a
// backoff, lifetime expiries due eventually, BE pods accumulating work,
// or chaos faults to inject. Running pods with none of those are not
// enough: a tick over them is pure telemetry, and free-running it would
// burn the core on O(nodes) physics — in a federation, every idle
// partition would steal exactly that much CPU from the busy ones.
func (e *Engine) tickWorthwhile() bool {
	if e.cfg.Horizon > 0 {
		return e.now.Load() < e.cfg.Horizon
	}
	e.wMu.Lock()
	waiting := len(e.waiting)
	e.wMu.Unlock()
	if waiting > 0 {
		return true
	}
	if e.cfg.Chaos != nil {
		return e.active.Load() > 0
	}
	e.exMu.Lock()
	expiring := len(e.expiry) > 0
	e.exMu.Unlock()
	return expiring || e.c.WorkingPods() > 0
}

// tick advances one virtual step: chaos faults, lifetime expiry, physics
// and usage sampling under full write locks, then release of due retries.
func (e *Engine) tick() {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	t := e.now.Load()
	// Tick writes reach state the published clones share (the usage
	// history, PodState usage): quiesce every snapshot reader before
	// mutating. Clones read usage history through a shared pointer, so
	// history advances need no republish at all — only the nodes whose
	// placement accounting changes (completions, expiries, displacements)
	// are republished, via the store's dirty capture.
	e.store.BeginMutate()
	e.store.LockAll()
	e.store.podMu.Lock()
	e.store.beginDirtyCaptureLocked()

	if e.cfg.Chaos != nil {
		for _, ps := range e.cfg.Chaos.Step(e.c, t, e.cfg.Tick) {
			e.displacedPod(ps, t, true)
		}
	}

	e.exMu.Lock()
	for len(e.expiry) > 0 && e.expiry[0].at <= t {
		ent := heap.Pop(&e.expiry).(expiryEntry)
		e.recMu.Lock()
		rec := e.recs[ent.podID]
		if rec != nil && rec.phase == PodPlaced {
			if e.jr != nil {
				e.jrAppend(journal.OpRemove, t, int64(ent.podID), rmExpired, 0, nil)
			}
			e.c.Remove(ent.podID, t, false)
			rec.phase = PodDone
			rec.node = -1
			e.active.Add(-1)
			e.m.expired.Add(1)
			if e.qt != nil {
				e.qt.UnmarkPlaced(rec.leaf, ent.podID, rec.pod.Request)
				e.qt.ReleaseAdmitted(rec.leaf, rec.pod.Request)
			}
		}
		e.recMu.Unlock()
	}
	e.exMu.Unlock()

	completed, snaps := e.c.Tick(t, float64(e.cfg.Tick))
	for _, ps := range completed {
		e.recMu.Lock()
		if rec := e.recs[ps.Pod.ID]; rec != nil && rec.phase == PodPlaced {
			if e.jr != nil {
				e.jrAppend(journal.OpRemove, t, int64(ps.Pod.ID), rmCompleted, 0, nil)
			}
			rec.phase = PodDone
			rec.node = -1
			e.active.Add(-1)
			e.m.completed.Add(1)
			if e.qt != nil {
				e.qt.UnmarkPlaced(rec.leaf, ps.Pod.ID, rec.pod.Request)
				e.qt.ReleaseAdmitted(rec.leaf, rec.pod.Request)
			}
		}
		e.recMu.Unlock()
	}

	e.store.publishDirtyLocked()
	e.store.podMu.Unlock()
	e.store.UnlockAll()
	e.store.EndMutate()

	e.observeTick(t, snaps)
	next := t + e.cfg.Tick
	e.now.Store(next)

	// Release retries whose backoff has expired into the queue — in one
	// atomic push, so workers see the whole release or none of it and
	// batch composition stays deterministic. The OpTick append shares the
	// wMu critical section with the pops: the log position of the tick
	// decides exactly which OpFail/OpRemove entries it released.
	e.wMu.Lock()
	if e.jr != nil {
		// The tick count advances in the same critical section as the
		// OpTick append: capture() reads tickN under wMu, so a state
		// capture racing the end of a tick sees the journal position and
		// the count move together — never one without the other.
		e.jrAppend(journal.OpTick, next, next, 0, 0, nil)
		e.tickN++
	}
	var due []item
	for len(e.waiting) > 0 && e.waiting[0].notBefore <= next {
		due = append(due, heap.Pop(&e.waiting).(waitEntry).it)
	}
	e.wMu.Unlock()
	e.q.forcePushAll(due)

	// tickN is only ever written by this goroutine; the unlocked read
	// here races nothing.
	if e.jr != nil && e.tickN%int64(e.cfg.CheckpointEvery) == 0 {
		e.checkpoint()
	}

	if e.lc != nil {
		e.checkAnomalies()
	}
}

// checkAnomalies evaluates the flight-recorder trip wires once per tick,
// after every store lock is released: a shed spike or commit-conflict
// storm within the last tick, or a stalled group fsync. A trip dumps the
// trailing FlightWindow of lifecycle events to the data dir (skipped,
// with a log line, when the engine has none) under a per-reason
// wall-clock cooldown so a sustained storm produces one dump, not one
// per tick. Event-loop goroutine only.
func (e *Engine) checkAnomalies() {
	shed := e.m.quotaShed.Load()
	for i := range e.m.shedBySLO {
		shed += e.m.shedBySLO[i].Load()
	}
	conflicts := e.m.commitConflicts.Load()
	dShed, dConf := shed-e.anShed, conflicts-e.anConflict
	e.anShed, e.anConflict = shed, conflicts
	if t := e.cfg.AnomalyShedSpike; t > 0 && dShed >= t {
		e.dumpFlight("shed-spike", fmt.Sprintf("%d sheds in one tick (threshold %d)", dShed, t))
	}
	if t := e.cfg.AnomalyConflictStorm; t > 0 && dConf >= t {
		e.dumpFlight("conflict-storm", fmt.Sprintf("%d commit conflicts in one tick (threshold %d)", dConf, t))
	}
	if t := e.cfg.AnomalyFsyncStall; t > 0 {
		if d := time.Duration(e.lc.LastFsyncNanos()); d >= t {
			e.dumpFlight("fsync-stall", fmt.Sprintf("last group fsync took %s (threshold %s)", d, t))
		}
	}
}

// anomalyCooldown spaces flight dumps per trip reason.
const anomalyCooldown = 30 * time.Second

// dumpFlight writes the flight ring's trailing window to
// DataDir/flight-<reason>-<unixns>.json.
func (e *Engine) dumpFlight(reason, detail string) {
	now := time.Now()
	if until, ok := e.anCool[reason]; ok && now.Before(until) {
		return
	}
	e.anCool[reason] = now.Add(anomalyCooldown)
	if e.cfg.DataDir == "" {
		e.log.Warn("flight recorder tripped with no data dir; dump skipped",
			"reason", reason, "detail", detail)
		return
	}
	path := filepath.Join(e.cfg.DataDir, fmt.Sprintf("flight-%s-%d.json", reason, now.UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		e.log.Warn("flight dump failed", "reason", reason, "err", err)
		return
	}
	werr := e.lc.WriteFlight(f, e.cfg.FlightWindow, reason, detail)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		e.log.Warn("flight dump failed", "reason", reason, "err", werr)
		return
	}
	e.log.Warn("flight recorder dumped", "reason", reason, "detail", detail, "path", path)
}

// observeTick records the per-tick utilization sample, mirroring
// sim.Result.observeTick's headline series (Down hosts excluded), and
// appends one cluster-telemetry sample to the rolling history ring. It
// runs after the store unlocks, so it reads only snapshot copies and
// immutable pod/node descriptors — never live node state. The history
// sample is a stack value copied into a preallocated slot: no allocation
// per tick.
func (e *Engine) observeTick(t int64, snaps []cluster.NodeSnapshot) {
	var cpuSum, memSum, violated float64
	var capSum, reqSum, limSum, useSum trace.Resources
	sample := obs.ClusterSample{T: t}
	up := 0
	for i := range snaps {
		s := &snaps[i]
		if s.Phase == cluster.NodeDown {
			continue
		}
		up++
		cpuSum += s.CPUUtil()
		memSum += s.MemUtil()
		if s.Violated() {
			violated++
		}
		capSum = capSum.Add(s.Node.Node.Capacity)
		useSum = useSum.Add(s.Usage)
		for j := range s.Pods {
			p := s.Pods[j].Pod.Pod
			reqSum = reqSum.Add(p.Request)
			limSum = limSum.Add(p.Limit)
			sample.Running[sloIdx(p.SLO)]++
		}
	}
	n := float64(up)
	if up == 0 {
		n = 1
	}
	sample.UpNodes = up
	if capSum.CPU > 0 {
		sample.CPUAlloc = reqSum.CPU / capSum.CPU
		sample.CPUUtil = useSum.CPU / capSum.CPU
		// Over-commitment: the ratio of promised limits to physical
		// capacity — >1 means the cluster is over-committed (§3.2).
		sample.CPUOverCommit = limSum.CPU / capSum.CPU
	}
	if capSum.Mem > 0 {
		sample.MemAlloc = reqSum.Mem / capSum.Mem
		sample.MemUtil = useSum.Mem / capSum.Mem
	}
	sample.Violation = violated / n
	e.hist.Record(sample)

	e.serMu.Lock()
	e.series.Times = append(e.series.Times, t)
	e.series.CPUUtilAvg = append(e.series.CPUUtilAvg, cpuSum/n)
	e.series.MemUtilAvg = append(e.series.MemUtilAvg, memSum/n)
	e.series.Violation = append(e.series.Violation, violated/n)
	e.serMu.Unlock()
}

// waitEntry is a pod sitting out a retry backoff.
type waitEntry struct {
	notBefore int64
	it        item
}

type waitHeap []waitEntry

func (h waitHeap) Len() int            { return len(h) }
func (h waitHeap) Less(i, j int) bool  { return h[i].notBefore < h[j].notBefore }
func (h waitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waitHeap) Push(x interface{}) { *h = append(*h, x.(waitEntry)) }
func (h *waitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// expiryEntry is a placed pod's scheduled lifetime end.
type expiryEntry struct {
	at    int64
	podID int
}

type expiryHeap []expiryEntry

func (h expiryHeap) Len() int            { return len(h) }
func (h expiryHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x interface{}) { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
