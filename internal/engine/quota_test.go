package engine

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/quota"
	"unisched/internal/trace"
)

func mustTree(t testing.TB, cfg quota.Config) *quota.Tree {
	t.Helper()
	qt, err := quota.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return qt
}

func r(cpu, mem float64) trace.Resources { return trace.Resources{CPU: cpu, Mem: mem} }

// tenantWorkload builds nodes plus separate BE and LS pod populations
// (IDs 0.. and 1000..) sharing one request size, unlinked to any tenant.
func tenantWorkload(t testing.TB, nodes, bePods, lsPods int, req float64) *trace.Workload {
	t.Helper()
	mk := func(id string, slo trace.SLO) *trace.App {
		return &trace.App{
			ID: id, SLO: slo,
			Request: r(req, req), Limit: r(req, req),
			MemUtil: 0.5, CPUBaseUtil: 0.3, Affinity: -1,
		}
	}
	w := &trace.Workload{
		Apps:    []*trace.App{mk("be", trace.SLOBE), mk("ls", trace.SLOLS)},
		Horizon: 3600, Seed: 1,
	}
	for i := 0; i < nodes; i++ {
		w.Nodes = append(w.Nodes, &trace.Node{ID: i, Capacity: r(1, 1)})
	}
	add := func(base, n int, appID string, slo trace.SLO) {
		for i := 0; i < n; i++ {
			p := &trace.Pod{
				ID: base + i, AppID: appID, SLO: slo,
				Request: r(req, req), Limit: r(req, req),
				CPUScale: 1, MemScale: 1,
			}
			if err := w.LinkPod(p); err != nil {
				t.Fatal(err)
			}
			w.Pods = append(w.Pods, p)
		}
	}
	add(0, bePods, "be", trace.SLOBE)
	add(1000, lsPods, "ls", trace.SLOLS)
	return w
}

// TestEngineQuotaAdmissionGate: the quota gate runs ahead of the SLO
// lanes — over-max admissions shed like backpressure (conservation holds),
// unresolvable tenants hard-reject like unlinked pods, and unattributed
// pods land on the default tenant.
func TestEngineQuotaAdmissionGate(t *testing.T) {
	w := testWorkload(t, 4, 16, 0.25)
	qt := mustTree(t, quota.Config{
		DefaultTenant: "shared",
		Tenants: []quota.TenantConfig{
			{Name: "shared", Guaranteed: r(2, 2)},
			{Name: "capped", Guaranteed: r(1, 1), Max: r(1, 1)},
		},
	})
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{Workers: 1, Horizon: w.Horizon, BlockOnFull: true, Quota: qt})

	// capped admits exactly 4 quarter-CPU pods; the 5th sheds on max.
	for i := 0; i < 5; i++ {
		w.Pods[i].Tenant = "capped"
		err := e.Submit(w.Pods[i])
		if i < 4 && err != nil {
			t.Fatalf("submit %d under max: %v", i, err)
		}
		if i == 4 && !errors.Is(err, quota.ErrOverMax) {
			t.Fatalf("submit %d over max = %v, want ErrOverMax", i, err)
		}
	}
	// Hard rejects create no record at all.
	w.Pods[5].Tenant = "ghost"
	if err := e.Submit(w.Pods[5]); !errors.Is(err, quota.ErrUnknownTenant) {
		t.Fatalf("unknown tenant = %v", err)
	}
	w.Pods[6].Tenant = "capped"
	w.Pods[6].Queue = "nope"
	if err := e.Submit(w.Pods[6]); !errors.Is(err, quota.ErrUnknownQueue) {
		t.Fatalf("unknown queue = %v", err)
	}
	// Unattributed pods fall back to the default tenant.
	for _, p := range w.Pods[7:] {
		if err := e.Submit(p); err != nil {
			t.Fatalf("default-tenant submit %d: %v", p.ID, err)
		}
	}

	sn := e.Snapshot()
	if sn.Submitted != 14 { // 5 capped + 9 shared; hard rejects uncounted
		t.Fatalf("submitted %d, want 14", sn.Submitted)
	}
	if sn.QuotaShed != 1 || sn.Shed != 1 || sn.States["shed"] != 1 {
		t.Fatalf("quota shed accounting: quota %d shed %d states %v", sn.QuotaShed, sn.Shed, sn.States)
	}
	if sn.Quota == nil {
		t.Fatal("snapshot has no quota tree view")
	}

	e.Start()
	if !e.Drain(30 * time.Second) {
		t.Fatalf("did not settle: %+v", e.Snapshot())
	}
	e.Stop()
	sn = e.Snapshot()
	if sn.Lost() != 0 {
		t.Fatalf("lost %d; states %v", sn.Lost(), sn.States)
	}
	// The snapshot's tree view conserves: root usage equals the tenant sum.
	var cpuSum float64
	for _, tn := range sn.Quota.Root.Children {
		cpuSum += tn.Admitted.CPU
	}
	if root := sn.Quota.Root.Admitted.CPU; root != cpuSum {
		t.Fatalf("root admitted %v != tenant sum %v", root, cpuSum)
	}
	placed, _, ok := qt.TenantUsage("capped")
	if !ok || placed.CPU != 1 {
		t.Fatalf("capped placed %v ok=%v, want exactly its 1-CPU max", placed, ok)
	}
}

// TestEngineQuotaStarvationResistance is the cross-queue preemption
// guarantee end to end: an adversary tenant's best-effort flood fills the
// whole cluster first, and the guaranteed tenant's latency-sensitive pods
// must still reach their full guarantee by evicting the adversary's BE
// pods through the displaced-pod machinery.
func TestEngineQuotaStarvationResistance(t *testing.T) {
	const req = 0.25
	w := tenantWorkload(t, 8, 36, 8, req) // 36 BE > 8-CPU cluster; 8 LS = 2 CPU
	qt := mustTree(t, quota.Config{
		Tenants: []quota.TenantConfig{
			{Name: "prod", Guaranteed: r(2, 2)},
			{Name: "greedy", Guaranteed: r(0.25, 0.25)},
		},
	})
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{
		Workers: 1, Shards: 2, QueueCap: 256, BlockOnFull: true,
		Horizon: 1 << 40, TickWall: 100 * time.Microsecond, Quota: qt,
	})
	e.Start()
	defer e.Stop()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", what, e.Snapshot())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Phase 1: the adversary saturates the cluster (32 quarter-CPU pods
	// fill 8 one-CPU nodes; the 4 spares keep retrying in backoff).
	for _, p := range w.Pods[:36] {
		p.Tenant = "greedy"
		if err := e.Submit(p); err != nil {
			t.Fatalf("flood submit %d: %v", p.ID, err)
		}
	}
	waitFor("adversary flood to fill the cluster", func() bool {
		return e.Snapshot().Placed >= 32
	})

	// Phase 2: the guaranteed tenant arrives late and must still get its
	// full 2 CPU.
	for _, p := range w.Pods[36:] {
		p.Tenant = "prod"
		if err := e.Submit(p); err != nil {
			t.Fatalf("prod submit %d: %v", p.ID, err)
		}
	}
	waitFor("prod to reach its guarantee", func() bool {
		placed, _, ok := qt.TenantUsage("prod")
		return ok && placed.CPU >= 2-1e-9
	})

	sn := e.Snapshot()
	if sn.QuotaPreempted == 0 {
		t.Fatal("prod reached its guarantee without a single quota preemption on a full cluster")
	}
	if sn.Lost() != 0 {
		t.Fatalf("lost %d; states %v", sn.Lost(), sn.States)
	}
	var greedy *quota.NodeSnapshot
	for i := range sn.Quota.Root.Children {
		if sn.Quota.Root.Children[i].Name == "greedy" {
			greedy = &sn.Quota.Root.Children[i]
		}
	}
	if greedy == nil || greedy.Preempted == 0 {
		t.Fatalf("adversary's preemption counter empty: %+v", greedy)
	}
	if greedy.FairShare <= 1 {
		t.Fatalf("adversary fair share %v, want over-guarantee (>1)", greedy.FairShare)
	}
}

// TestDurableQuotaCRUDRecovery: quota CRUD is journaled — after a crash
// the recovered tree reflects every applied change bit-identically even
// when the caller hands OpenDurable a stale seed config, and recovered
// usage matches the pre-crash tree.
func TestDurableQuotaCRUDRecovery(t *testing.T) {
	w := testWorkload(t, 4, 10, 0.2)
	base := quota.Config{
		DefaultTenant: "shared",
		Tenants: []quota.TenantConfig{
			{Name: "shared", Guaranteed: r(2, 2)},
			{Name: "prod", Guaranteed: r(1, 1)},
		},
	}
	dir := t.TempDir()
	cfg := durableConfig(dir, w)
	cfg.Quota = mustTree(t, base)

	e, _ := openDurable(t, w, cfg)
	e.Start()
	for _, p := range w.Pods[:6] {
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	drainOrFatal(t, e)

	// Live CRUD: grow a tenant, retire an unused one, and verify an
	// in-use deletion refuses.
	if err := e.SetTenantQuota(quota.TenantConfig{Name: "batch", Guaranteed: r(1, 1), Max: r(2, 2)}); err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Pods[6:] {
		p.Tenant = "batch"
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	drainOrFatal(t, e)
	if err := e.DeleteTenantQuota("prod"); err != nil {
		t.Fatalf("delete drained tenant: %v", err)
	}
	if err := e.DeleteTenantQuota("batch"); !errors.Is(err, quota.ErrInUse) {
		t.Fatalf("delete in-use tenant = %v, want ErrInUse", err)
	}

	hash := e.StateHash()
	cfgHash := e.Quota().ConfigHash()
	prePlaced, _, ok := e.Quota().TenantUsage("batch")
	if !ok || prePlaced.CPU == 0 {
		t.Fatalf("batch holds no usage before the crash: %v ok=%v", prePlaced, ok)
	}
	e.crashStop()

	// Recovery gets the STALE base config (no batch, prod alive): the
	// journaled tree must win.
	cfg2 := durableConfig(dir, w)
	cfg2.Quota = mustTree(t, base)
	e2, st2 := openDurable(t, w, cfg2)
	if st2.StateHash != hash {
		t.Fatalf("recovered hash %s != pre-crash %s", st2.StateHash, hash)
	}
	if got := e2.Quota().ConfigHash(); got != cfgHash {
		t.Fatalf("recovered quota config hash %s != pre-crash %s", got, cfgHash)
	}
	names := strings.Join(e2.Quota().Tenants(), ",")
	if !strings.Contains(names, "batch") || strings.Contains(names, "prod") {
		t.Fatalf("recovered tenants %q: want batch present, prod tombstoned", names)
	}
	if _, err := e2.Quota().Resolve("prod", ""); !errors.Is(err, quota.ErrUnknownTenant) {
		t.Fatalf("tombstoned tenant resolves: %v", err)
	}
	postPlaced, _, ok := e2.Quota().TenantUsage("batch")
	if !ok || postPlaced != prePlaced {
		t.Fatalf("recovered batch usage %v, want %v", postPlaced, prePlaced)
	}

	// The recovered tree keeps working end to end.
	e2.Start()
	fresh := makeLatePods(t, w, 1)[0]
	fresh.Tenant = "batch"
	if err := e2.Submit(fresh); err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}
	drainOrFatal(t, e2)
	e2.Stop()
	if sn := e2.Snapshot(); sn.Lost() != 0 {
		t.Fatalf("post-recovery lost %d", sn.Lost())
	}
}

// TestEngineNoQuotaInert pins zero-cost-when-off: without a tree the quota
// surface is absent from the snapshot JSON entirely and the CRUD API
// refuses, while tenant-attributed pods still schedule as single-tenant.
func TestEngineNoQuotaInert(t *testing.T) {
	w := testWorkload(t, 2, 4, 0.25)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{Workers: 1, Horizon: w.Horizon, BlockOnFull: true})
	if e.Quota() != nil {
		t.Fatal("quota tree on a single-tenant engine")
	}
	if _, err := e.QuotaSnapshot(); !errors.Is(err, ErrNoQuota) {
		t.Fatalf("QuotaSnapshot = %v, want ErrNoQuota", err)
	}
	if err := e.SetTenantQuota(quota.TenantConfig{Name: "x"}); !errors.Is(err, ErrNoQuota) {
		t.Fatalf("SetTenantQuota = %v, want ErrNoQuota", err)
	}
	if err := e.DeleteTenantQuota("x"); !errors.Is(err, ErrNoQuota) {
		t.Fatalf("DeleteTenantQuota = %v, want ErrNoQuota", err)
	}
	e.Start()
	for _, p := range w.Pods {
		p.Tenant = "whoever" // ignored without a tree, not rejected
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Drain(30 * time.Second) {
		t.Fatal("did not settle")
	}
	e.Stop()
	sn := e.Snapshot()
	if sn.Lost() != 0 || sn.Placed == 0 {
		t.Fatalf("single-tenant run broke: %+v", sn.States)
	}
	blob, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "quota") {
		t.Fatalf("single-tenant snapshot leaks quota fields:\n%s", blob)
	}
}

// BenchmarkEngineQuota measures the quota gate's overhead on the
// throughput path: the same drain as BenchmarkEngineThroughput/workers=4
// with a three-tenant tree attached and every pod attributed, so the
// allocs/op delta against the no-tree run is the price of multi-tenancy.
func BenchmarkEngineQuota(b *testing.B) {
	const (
		nodes = 2048
		pods  = 4096
	)
	w := testWorkload(b, nodes, pods, 0.1)
	tenants := []string{"a", "b", "c"}
	for i, p := range w.Pods {
		p.Tenant = tenants[i%len(tenants)]
	}
	qcfg := quota.Config{Tenants: []quota.TenantConfig{
		{Name: "a", Guaranteed: r(512, 512)},
		{Name: "b", Guaranteed: r(512, 512)},
		{Name: "c", Guaranteed: r(512, 512)},
	}}
	b.Run("workers=4", func(b *testing.B) {
		var placed int64
		var busy time.Duration
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			qt, err := quota.New(qcfg)
			if err != nil {
				b.Fatal(err)
			}
			c := cluster.New(w.Nodes, cluster.DefaultPhysics())
			e := New(c, alibabaFactory, Config{
				Workers:        4,
				Shards:         16,
				QueueCap:       len(w.Pods),
				PartitionNodes: true,
				Seed:           int64(i + 1),
				Quota:          qt,
			})
			b.StartTimer()
			start := time.Now()
			e.Start()
			for _, p := range w.Pods {
				if err := e.Submit(p); err != nil {
					b.Fatalf("submit pod %d: %v", p.ID, err)
				}
			}
			if !e.Drain(2 * time.Minute) {
				b.Fatalf("engine did not settle: %+v", e.Snapshot())
			}
			busy += time.Since(start)
			e.Stop()
			sn := e.Snapshot()
			if sn.Lost() != 0 || sn.QuotaShed != 0 {
				b.Fatalf("lost %d, quota shed %d", sn.Lost(), sn.QuotaShed)
			}
			placed += sn.Placed
		}
		if busy > 0 {
			b.ReportMetric(float64(placed)/busy.Seconds(), "placements/s")
		}
	})
}
