package engine

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/obs"
)

func TestHistQuantilePinned(t *testing.T) {
	var h hist
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}

	// 1000 observations of 3 µs land in the (2µs, 4µs] bucket. The median
	// interpolates log-linearly to lower*2^0.5 = 2µs*sqrt(2).
	for i := 0; i < 1000; i++ {
		h.observe(3 * time.Microsecond)
	}
	want := 2e-6 * math.Sqrt2
	if got := h.quantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	// The quantile stays inside the containing bucket at the extremes.
	if got := h.quantile(0); math.Abs(got-2e-6) > 1e-12 {
		t.Fatalf("p0 = %v, want bucket lower bound 2e-6", got)
	}
	if got := h.quantile(1); math.Abs(got-4e-6) > 1e-12 {
		t.Fatalf("p100 = %v, want bucket upper bound 4e-6", got)
	}

	// The first bucket spans [0, 1µs] and interpolates linearly.
	var h0 hist
	for i := 0; i < 10; i++ {
		h0.observe(500 * time.Nanosecond)
	}
	if got := h0.quantile(0.5); math.Abs(got-0.5e-6) > 1e-12 {
		t.Fatalf("first-bucket p50 = %v, want 5e-7", got)
	}

	// A bimodal split: 900 fast (3µs) + 100 slow (33µs, bucket (32µs,64µs]).
	// p50 stays in the fast bucket, p99 interpolates 90% into the slow one.
	var hb hist
	for i := 0; i < 900; i++ {
		hb.observe(3 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		hb.observe(33 * time.Microsecond)
	}
	if p50, p99 := hb.quantile(0.5), hb.quantile(0.99); p50 >= 4e-6 || p99 <= 32e-6 {
		t.Fatalf("bimodal p50=%v p99=%v", p50, p99)
	}
	wantP99 := 32e-6 * math.Pow(2, 0.9)
	if got := hb.quantile(0.99); math.Abs(got-wantP99) > 1e-10 {
		t.Fatalf("p99 = %v, want %v", got, wantP99)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := hb.quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistExportCumulative(t *testing.T) {
	var h hist
	for _, d := range []time.Duration{500 * time.Nanosecond, 3 * time.Microsecond, 3 * time.Microsecond, 40 * time.Second} {
		h.observe(d)
	}
	var bounds [latBuckets - 1]float64
	var cum [latBuckets - 1]int64
	sum, total := h.export(&bounds, &cum)
	if total != 4 {
		t.Fatalf("total = %d, want 4", total)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts not monotone at %d: %v", i, cum)
		}
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, bounds)
		}
	}
	// The 40s observation overflows every finite bucket, so the last finite
	// cumulative count must be 3 while +Inf (total) is 4.
	if cum[len(cum)-1] != 3 {
		t.Fatalf("last finite bucket = %d, want 3", cum[len(cum)-1])
	}
	wantSum := 0.5e-6 + 2*3e-6 + 40.0
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}
}

// TestEngineTracingConcurrent runs a multi-worker engine with every
// decision traced while goroutines hammer the observability readers, and
// asserts no decision record is lost and the histogram stays monotone.
// Run with -race to exercise the synchronization.
func TestEngineTracingConcurrent(t *testing.T) {
	w := smallWorkload(t)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{
		Workers: 4, Shards: 8, Horizon: w.Horizon, BlockOnFull: true,
		TraceEvery: 1, TraceBuffer: 1 << 16,
	})
	e.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var pollErr error
	var pollMu sync.Mutex
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastCount int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.Traces().Last(16, "")
				e.Traces().Last(16, "failed")
				e.History().Samples()
				if err := e.WritePrometheus(io.Discard); err != nil {
					pollMu.Lock()
					pollErr = err
					pollMu.Unlock()
					return
				}
				var bounds [latBuckets - 1]float64
				var cum [latBuckets - 1]int64
				if _, total := e.m.decision.export(&bounds, &cum); total < lastCount {
					pollMu.Lock()
					pollErr = errHistWentBackwards
					pollMu.Unlock()
					return
				} else {
					lastCount = total
				}
			}
		}()
	}

	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatalf("submit pod %d: %v", p.ID, err)
		}
	}
	if !e.Drain(60 * time.Second) {
		t.Fatalf("engine did not settle: %+v", e.Snapshot())
	}
	e.Stop()
	close(stop)
	wg.Wait()
	if pollErr != nil {
		t.Fatalf("poller failed: %v", pollErr)
	}

	started, committed := e.Traces().Counts()
	if started == 0 {
		t.Fatal("no traces started with TraceEvery=1")
	}
	if started != committed {
		t.Fatalf("lost decision records: started %d, committed %d", started, committed)
	}
	if e.Traces().Total() != committed {
		t.Fatalf("ring total %d != committed %d", e.Traces().Total(), committed)
	}
	sn := e.Snapshot()
	// Every pipeline decision was sampled, so the recorder must hold at
	// least one record per placed pod (retries add more).
	if committed < sn.Placed {
		t.Fatalf("committed %d traces for %d placements", committed, sn.Placed)
	}
	for _, dt := range e.Traces().Last(64, "") {
		switch dt.Outcome {
		case "placed", "preempt-placed", "conflict-placed":
			if dt.Node < 0 {
				t.Fatalf("trace %d outcome %q has node %d", dt.PodID, dt.Outcome, dt.Node)
			}
		case "failed", "conflict-rejected", "stale-rejected":
			if dt.Reason == "" && len(dt.Rejections) == 0 {
				t.Fatalf("failed trace %d carries no reason or rejections", dt.PodID)
			}
		default:
			t.Fatalf("trace %d has unexpected outcome %q", dt.PodID, dt.Outcome)
		}
		if len(dt.Spans) == 0 {
			t.Fatalf("trace %d has no stage spans", dt.PodID)
		}
	}
}

var errHistWentBackwards = errDecreasing{}

type errDecreasing struct{}

func (errDecreasing) Error() string { return "decision histogram count decreased" }

func TestEngineMetricsExposition(t *testing.T) {
	w := smallWorkload(t)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{
		Workers: 2, Shards: 4, Horizon: w.Horizon, BlockOnFull: true,
		TraceEvery: 4,
	})
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Drain(60 * time.Second) {
		t.Fatalf("did not settle: %+v", e.Snapshot())
	}
	e.Stop()

	rr := httptest.NewRecorder()
	e.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	body := rr.Body.String()
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"unisched_placed_total",
		"unisched_decision_seconds_bucket",
		"unisched_decision_seconds_sum",
		"unisched_decision_seconds_count",
		"unisched_pipeline_stage_seconds_total{stage=\"scan\"}",
		"unisched_traces_started_total",
		"unisched_history_samples",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestEngineHistoryRecordsSamples(t *testing.T) {
	w := smallWorkload(t)
	e, sn := runEngine(t, w, Config{Workers: 2, Shards: 4})
	checkConservation(t, w, sn)
	// A 60-virtual-second run ticks twice at SampleInterval=30; the small
	// workload's 3 h horizon yields far more.
	hist := e.History()
	if hist.Len() < 2 {
		t.Fatalf("history holds %d samples, want >= 2", hist.Len())
	}
	samples := hist.Samples()
	var prev int64 = -1
	sawRunning := false
	for _, s := range samples {
		if s.T <= prev {
			t.Fatalf("history times not increasing: %d after %d", s.T, prev)
		}
		prev = s.T
		if s.UpNodes <= 0 {
			t.Fatalf("sample at t=%d has %d up nodes", s.T, s.UpNodes)
		}
		if s.CPUAlloc < 0 || s.CPUUtil < 0 || s.CPUOverCommit < 0 {
			t.Fatalf("negative utilization at t=%d: %+v", s.T, s)
		}
		for _, n := range s.Running {
			if n > 0 {
				sawRunning = true
			}
		}
	}
	if !sawRunning {
		t.Fatal("no history sample ever saw a running pod")
	}
	last, ok := hist.Last()
	if !ok || last.T != samples[len(samples)-1].T {
		t.Fatalf("Last() = %+v, ok=%v", last, ok)
	}
}

func TestEngineNoRecorderWhenTracingOff(t *testing.T) {
	w := smallWorkload(t)
	e, sn := runEngine(t, w, Config{Workers: 2})
	checkConservation(t, w, sn)
	if e.Traces() != nil {
		t.Fatal("engine built a recorder with TraceEvery=0")
	}
	// The nil recorder is safe to query through the public accessors.
	if e.Traces().Enabled() || e.Traces().Len() != 0 || e.Traces().Last(5, "") != nil {
		t.Fatal("nil recorder accessors misbehaved")
	}
	// /metrics still renders (without trace families).
	rr := httptest.NewRecorder()
	e.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if err := obs.ValidateExposition(strings.NewReader(rr.Body.String())); err != nil {
		t.Fatalf("exposition invalid with tracing off: %v", err)
	}
	if strings.Contains(rr.Body.String(), "unisched_traces_started_total") {
		t.Fatal("trace counters exported with tracing off")
	}
}
