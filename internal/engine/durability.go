package engine

// Durability: the engine's crash-recovery layer over internal/journal.
//
// Every externally-visible state mutation appends one journal record
// before (or atomically with) the mutation, and a checkpoint is cut every
// Config.CheckpointEvery virtual ticks serializing the full logical state
// — cluster placements and accounting sums, pod records, queue contents,
// retry and expiry heaps, counters — at a known log position. Recovery
// (OpenDurable) restores the newest valid checkpoint and replays the log
// tail, rebuilding a state that is bit-identical to the pre-crash engine
// for everything the scheduler can observe: placements (node, sequence,
// start time), the float64 accounting sums (restored verbatim from the
// checkpoint and advanced by replaying the identical Add/Sub order),
// record phases and counters.
//
// What is deliberately NOT durable, and why it is safe:
//
//   - Usage histories and BE progress: re-learned from post-recovery
//     sampling, exactly like a fresh machine; predictors degrade briefly
//     and recover.
//   - Decision-latency and commit-conflict diagnostics: wall-clock
//     contention measurements of a live process, meaningless across a
//     restart.
//   - Store versions: optimistic-concurrency tokens, valid only within
//     one process lifetime; they restart at zero.
//   - Queue order across concurrently-admitted pods: membership and lane
//     assignment are exact; the interleaving of racing Submits is not.
//   - Per-tenant outcome counters on the quota tree (placed/shed/
//     preempted pods): process-local diagnostics. The tree's config and
//     usage vectors ARE durable — config via checkpoint + OpQuota replay,
//     usage recharged from the restored pod records.
//
// Locking protocol: checkpoint assembly takes ckptMu exclusively FIRST,
// then every store shard, podMu, recMu, wMu, exMu (and the queue lock via
// snapshot), reads the journal's last LSN, and captures everything.
// Mutators that do not already run under a lock the assembler holds —
// Submit and fail — hold ckptMu shared across their whole append+mutate
// unit. Everything else (commit callbacks, displacement, the tick body)
// runs under shard locks, so a checkpoint at LSN L reflects exactly the
// records with LSN <= L. Taking ckptMu before the shard locks matters:
// the reverse order deadlocks against a Submit blocked on queue space
// while workers wait for a shard.

import (
	"container/heap"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/journal"
	"unisched/internal/quota"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// OpRemove outcome codes (low 16 bits of the B field). Stable on-disk
// values; never renumber.
const (
	rmCompleted   int64 = 1 // BE pod finished its work
	rmExpired     int64 = 2 // lifetime expiry while running
	rmRequeued    int64 = 3 // displaced and re-admitted (C = backoff release, 0 = immediate)
	rmExhausted   int64 = 4 // displaced past the displacement budget
	rmDispExpired int64 = 5 // displaced with its lifetime already over

	rmOutcomeMask int64 = 0xffff
	// jumpFlag marks a chaos displacement (vs a BE preemption), which lets
	// latency-sensitive pods jump the queue on re-admission.
	jumpFlag int64 = 1 << 16
	// quotaFlag marks a cross-queue quota eviction (an over-quota tenant's
	// BE pod removed for an under-guaranteed tenant).
	quotaFlag int64 = 1 << 17

	// OpShed B values.
	shedBackpressure int64 = 0
	shedClosed       int64 = 1
	// shedQuota marks a submission shed by the quota gate (over max).
	shedQuota int64 = 2

	// OpQuota A values: the quota CRUD op the blob carries.
	quotaSetTenant    int64 = 1 // blob = quota.TenantConfig JSON
	quotaDeleteTenant int64 = 2 // blob = tenant name, JSON string
)

func packFlag(jump bool) int64 {
	if jump {
		return jumpFlag
	}
	return 0
}

func packQuotaFlag(quotaEv bool) int64 {
	if quotaEv {
		return quotaFlag
	}
	return 0
}

// errWouldBlock is the internal signal that a durable submission found the
// queue full in blocking mode: nothing was journaled, wait and retry.
var errWouldBlock = errors.New("engine: queue full, retry")

// jrAppend appends one record, degrading to non-durable operation on a
// journal write error (disk full, torn device): the engine keeps serving,
// logs the failure once, and the operator sees it via journal stats.
func (e *Engine) jrAppend(op journal.Op, t, a, b, c int64, blob []byte) {
	if _, err := e.jr.Append(op, t, a, b, c, blob); err != nil && err != journal.ErrClosed {
		e.journalError(err)
	}
}

func (e *Engine) journalError(err error) {
	e.jrErrOnce.Do(func() {
		e.log.Error("journal write failed; continuing without durability", "err", err)
	})
}

// installPhaseHook registers the cluster observer that journals node
// lifecycle transitions. Installed only after recovery finishes, so replay
// itself journals nothing.
func (e *Engine) installPhaseHook() {
	e.phaseSeen = make([]cluster.NodePhase, len(e.c.Nodes()))
	for i, n := range e.c.Nodes() {
		e.phaseSeen[i] = n.Phase()
	}
	e.c.AddObserver(func(nodeID int) {
		// Runs under the mutating node's shard lock (or LockAll), which
		// also guards phaseSeen[nodeID]. The phase record lands before
		// the displacement OpRemoves: Fail/DrainNode flip the phase
		// before removing pods, and the engine's displacement hooks run
		// strictly after.
		ph := e.c.Node(nodeID).Phase()
		if e.phaseSeen[nodeID] == ph {
			return
		}
		e.phaseSeen[nodeID] = ph
		e.jrAppend(journal.OpNodePhase, e.now.Load(), int64(nodeID), int64(ph), 0, nil)
	})
}

// ckptState is the checkpoint payload: the engine's full logical state in
// canonical (deterministically ordered) form.
type ckptState struct {
	Now   int64 `json:"now"`
	TickN int64 `json:"tick_n"`
	// Nodes lists every node with non-default state (phase, sequence
	// counter, accounting sums), ascending by ID.
	Nodes []ckptNode `json:"nodes,omitempty"`
	// Pods lists every submission record, ascending by pod ID. Placed
	// pods carry their node-local scheduling sequence and start time.
	Pods []ckptPod `json:"pods,omitempty"`
	// Queue lists the admission queue in pop order, with pods that were
	// in flight inside a worker at the cut appended at the tail (they
	// re-enter the queue on recovery).
	Queue []ckptQueued `json:"queue,omitempty"`
	// Waiting and Expiry are the retry-backoff and lifetime heaps,
	// sorted by (release time, pod ID) — a sorted array is a valid
	// min-heap, and sorting makes the layout canonical (live heap layout
	// depends on push interleaving).
	Waiting  []ckptWaiting `json:"waiting,omitempty"`
	Expiry   []ckptExpiry  `json:"expiry,omitempty"`
	Counters ckptCounters  `json:"counters"`
	// Quota is the quota tree's canonical configuration (quota.Config
	// JSON), absent on single-tenant engines. Usage vectors are not
	// serialized: recovery recharges them from the restored pod records,
	// which is exactly conservation applied in reverse.
	Quota json.RawMessage `json:"quota,omitempty"`
}

type ckptNode struct {
	ID      int             `json:"id"`
	Phase   int             `json:"phase"`
	NextSeq int             `json:"next_seq"`
	Req     trace.Resources `json:"req"`
	Limit   trace.Resources `json:"limit"`
	Guar    trace.Resources `json:"guar"`
}

type ckptPod struct {
	ID            int             `json:"id"`
	Phase         int             `json:"phase"`
	Node          int             `json:"node"`
	Attempts      int             `json:"attempts"`
	Displacements int             `json:"displacements"`
	Since         int64           `json:"since"`
	Reason        int             `json:"reason"`
	Seq           int             `json:"seq,omitempty"`
	Start         int64           `json:"start,omitempty"`
	Spec          json.RawMessage `json:"spec,omitempty"`
}

type ckptQueued struct {
	ID        int  `json:"id"`
	Displaced bool `json:"displaced,omitempty"`
}

type ckptWaiting struct {
	At        int64 `json:"at"`
	ID        int   `json:"id"`
	Displaced bool  `json:"displaced,omitempty"`
}

type ckptExpiry struct {
	At int64 `json:"at"`
	ID int   `json:"id"`
}

// ckptCounters carries the durable subset of Metrics. Commit-conflict
// counters and the decision-latency histogram are per-process contention
// diagnostics and deliberately excluded.
type ckptCounters struct {
	Submitted   int64   `json:"submitted"`
	Accepted    int64   `json:"accepted"`
	Placed      int64   `json:"placed"`
	Completed   int64   `json:"completed"`
	Expired     int64   `json:"expired"`
	Preempted   int64   `json:"preempted"`
	Displaced   int64   `json:"displaced"`
	Exhausted   int64   `json:"exhausted"`
	Retries     int64   `json:"retries"`
	ShedBySLO   []int64 `json:"shed_by_slo"`
	PlacedBySLO []int64 `json:"placed_by_slo"`
	WaitSum     []int64 `json:"wait_sum"`
	WaitCount   []int64 `json:"wait_count"`
	// omitempty keeps single-tenant checkpoints byte-identical to the
	// pre-quota format.
	QuotaShed      int64 `json:"quota_shed,omitempty"`
	QuotaPreempted int64 `json:"quota_preempted,omitempty"`
	// omitempty likewise keeps non-federated checkpoints byte-identical
	// to the pre-federation format.
	Rejected int64 `json:"rejected,omitempty"`
}

func (e *Engine) captureCounters() ckptCounters {
	n := int(trace.SLOBE) + 1
	c := ckptCounters{
		Submitted:   e.m.submitted.Load(),
		Accepted:    e.m.accepted.Load(),
		Placed:      e.m.placed.Load(),
		Completed:   e.m.completed.Load(),
		Expired:     e.m.expired.Load(),
		Preempted:   e.m.preempted.Load(),
		Displaced:   e.m.displaced.Load(),
		Exhausted:   e.m.exhausted.Load(),
		Retries:     e.m.retries.Load(),
		ShedBySLO:   make([]int64, n),
		PlacedBySLO: make([]int64, n),
		WaitSum:     make([]int64, n),
		WaitCount:   make([]int64, n),
	}
	for i := 0; i < n; i++ {
		c.ShedBySLO[i] = e.m.shedBySLO[i].Load()
		c.PlacedBySLO[i] = e.m.placedBySLO[i].Load()
		c.WaitSum[i] = e.m.waitSum[i].Load()
		c.WaitCount[i] = e.m.waitCount[i].Load()
	}
	c.QuotaShed = e.m.quotaShed.Load()
	c.QuotaPreempted = e.m.quotaPreempted.Load()
	c.Rejected = e.m.rejected.Load()
	return c
}

func (e *Engine) restoreCounters(c ckptCounters) {
	e.m.submitted.Store(c.Submitted)
	e.m.accepted.Store(c.Accepted)
	e.m.placed.Store(c.Placed)
	e.m.completed.Store(c.Completed)
	e.m.expired.Store(c.Expired)
	e.m.preempted.Store(c.Preempted)
	e.m.displaced.Store(c.Displaced)
	e.m.exhausted.Store(c.Exhausted)
	e.m.retries.Store(c.Retries)
	for i := 0; i <= int(trace.SLOBE); i++ {
		if i < len(c.ShedBySLO) {
			e.m.shedBySLO[i].Store(c.ShedBySLO[i])
		}
		if i < len(c.PlacedBySLO) {
			e.m.placedBySLO[i].Store(c.PlacedBySLO[i])
		}
		if i < len(c.WaitSum) {
			e.m.waitSum[i].Store(c.WaitSum[i])
		}
		if i < len(c.WaitCount) {
			e.m.waitCount[i].Store(c.WaitCount[i])
		}
	}
	e.m.quotaShed.Store(c.QuotaShed)
	e.m.quotaPreempted.Store(c.QuotaPreempted)
	e.m.rejected.Store(c.Rejected)
}

// capture assembles the canonical state under every lock the protocol
// requires and returns it together with the pods backing each record (for
// spec marshaling outside the locks) and the journal LSN the capture
// reflects. It is safe on a stopped engine and the foundation of both
// checkpoint() and StateHash().
func (e *Engine) capture() (*ckptState, []*trace.Pod, uint64) {
	e.ckptMu.Lock()
	e.store.LockAll()
	e.store.podMu.Lock()
	e.recMu.Lock()
	e.wMu.Lock()
	e.exMu.Lock()

	st := &ckptState{Now: e.now.Load(), TickN: e.tickN}

	for _, n := range e.c.Nodes() {
		// "Default" is relative to the genesis baseline: a federation
		// partition's non-owned nodes sit Down from birth and are not
		// worth serializing, while a node migrated in (Up where the
		// baseline says Down) is a deviation the checkpoint must carry —
		// recovery re-applies the baseline first, then the deviations.
		base := cluster.NodeUp
		if e.cfg.InactiveNodes != nil && e.cfg.InactiveNodes[n.Node.ID] {
			base = cluster.NodeDown
		}
		if n.Phase() == base && n.NextSeq() == 0 {
			continue // never touched: baseline state
		}
		st.Nodes = append(st.Nodes, ckptNode{
			ID:      n.Node.ID,
			Phase:   int(n.Phase()),
			NextSeq: n.NextSeq(),
			Req:     n.ReqSum(),
			Limit:   n.LimitSum(),
			Guar:    n.GuaranteedReq(),
		})
	}

	ids := make([]int, 0, len(e.recs))
	for id := range e.recs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	pods := make([]*trace.Pod, 0, len(ids))
	st.Pods = make([]ckptPod, 0, len(ids))
	for _, id := range ids {
		rec := e.recs[id]
		cp := ckptPod{
			ID:            id,
			Phase:         int(rec.phase),
			Node:          rec.node,
			Attempts:      rec.attempts,
			Displacements: rec.displacements,
			Since:         rec.since,
			Reason:        int(rec.reason),
		}
		if rec.phase == PodPlaced {
			if ps := e.c.PodState(id); ps != nil && !ps.Done {
				cp.Seq, cp.Start = ps.Seq, ps.Start
			}
		}
		st.Pods = append(st.Pods, cp)
		pods = append(pods, rec.pod)
	}

	inHeapOrQueue := make(map[int]bool)
	for _, it := range e.q.snapshot() {
		st.Queue = append(st.Queue, ckptQueued{ID: it.pod.ID, Displaced: it.displaced})
		inHeapOrQueue[it.pod.ID] = true
	}
	for _, w := range e.waiting {
		st.Waiting = append(st.Waiting, ckptWaiting{At: w.notBefore, ID: w.it.pod.ID, Displaced: w.it.displaced})
		inHeapOrQueue[w.it.pod.ID] = true
	}
	// Pods mid-decision inside a worker at the cut: queued per their
	// record but in neither structure. They re-enter the queue tail on
	// recovery (ascending by ID, for determinism).
	var inflight []int
	for _, id := range ids {
		if e.recs[id].phase == PodQueued && !inHeapOrQueue[id] {
			inflight = append(inflight, id)
		}
	}
	for _, id := range inflight {
		st.Queue = append(st.Queue, ckptQueued{ID: id})
	}
	sort.Slice(st.Waiting, func(i, j int) bool {
		a, b := st.Waiting[i], st.Waiting[j]
		return a.At < b.At || (a.At == b.At && a.ID < b.ID)
	})
	for _, x := range e.expiry {
		st.Expiry = append(st.Expiry, ckptExpiry{At: x.at, ID: x.podID})
	}
	sort.Slice(st.Expiry, func(i, j int) bool {
		a, b := st.Expiry[i], st.Expiry[j]
		return a.At < b.At || (a.At == b.At && a.ID < b.ID)
	})
	st.Counters = e.captureCounters()
	if e.qt != nil {
		// Quota CRUD holds ckptMu shared, so the tree cannot change within
		// this critical section and the config lands on the cut exactly.
		if blob, err := e.qt.MarshalCanonical(); err == nil {
			st.Quota = blob
		}
	}

	var lsn uint64
	if e.jr != nil {
		lsn = e.jr.LastLSN()
	}

	e.exMu.Unlock()
	e.wMu.Unlock()
	e.recMu.Unlock()
	e.store.podMu.Unlock()
	e.store.UnlockAll()
	e.ckptMu.Unlock()
	return st, pods, lsn
}

// checkpoint cuts one checkpoint at the current log position. Runs on the
// event-loop goroutine (the tick cadence) or during shutdown.
func (e *Engine) checkpoint() {
	st, pods, lsn := e.capture()
	// Specs marshal outside the locks: pod descriptors are immutable
	// after linking, only the capture itself needs exclusion.
	for i := range st.Pods {
		blob, err := json.Marshal(pods[i])
		if err != nil {
			e.journalError(err)
			return
		}
		st.Pods[i].Spec = blob
	}
	payload, err := json.Marshal(st)
	if err != nil {
		e.journalError(err)
		return
	}
	if err := e.jr.WriteCheckpoint(lsn, payload); err != nil && err != journal.ErrClosed {
		e.journalError(err)
	}
}

// StateHash returns a SHA-256 over the engine's canonical logical state.
// On a quiescent engine it is deterministic, and a recovered engine hashes
// identically to the pre-crash one — the golden-hash recovery check. The
// admission queue is hashed as a sorted set: membership and lanes are
// exact across recovery, the interleaving of racing Submits is not.
func (e *Engine) StateHash() string {
	st, _, _ := e.capture()
	q := append([]ckptQueued(nil), st.Queue...)
	sort.Slice(q, func(i, j int) bool { return q[i].ID < q[j].ID })
	st.Queue = q
	h := sha256.New()
	if err := json.NewEncoder(h).Encode(st); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RecoveryStats describes one crash recovery.
type RecoveryStats struct {
	// CheckpointLSN is the log position of the restored checkpoint (0 =
	// no checkpoint; the whole log was replayed).
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// ReplayedRecords counts log-tail records applied on top of it.
	ReplayedRecords int `json:"replayed_records"`
	// TruncatedBytes counts bytes cut from the log's torn tail.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// CorruptCheckpoints counts checkpoint files skipped as invalid.
	CorruptCheckpoints int `json:"corrupt_checkpoints"`
	// RecoveredPlaced and RecoveredPending count running and re-queued
	// pods after recovery.
	RecoveredPlaced  int `json:"recovered_placed"`
	RecoveredPending int `json:"recovered_pending"`
	// DurationMs is the wall time of restore + replay.
	DurationMs float64 `json:"duration_ms"`
	// StateHash is the canonical state hash at the end of recovery.
	StateHash string `json:"state_hash"`
}

// Recovery returns the stats of the recovery that built this engine, or
// nil for engines that started fresh.
func (e *Engine) Recovery() *RecoveryStats { return e.recovery }

// pendingSet accumulates the queue contents during recovery in admission
// order, with O(1) removal when a later record places, parks or sheds the
// pod.
type pendingSet struct {
	items []item
	idx   map[int]int
}

func newPendingSet() *pendingSet { return &pendingSet{idx: make(map[int]int)} }

func (s *pendingSet) add(it item) {
	if _, ok := s.idx[it.pod.ID]; ok {
		return
	}
	s.idx[it.pod.ID] = len(s.items)
	s.items = append(s.items, it)
}

func (s *pendingSet) remove(id int) {
	if i, ok := s.idx[id]; ok {
		s.items[i].pod = nil // tombstone keeps indexes stable
		delete(s.idx, id)
	}
}

func (s *pendingSet) drain() []item {
	out := make([]item, 0, len(s.idx))
	for _, it := range s.items {
		if it.pod != nil {
			out = append(out, it)
		}
	}
	return out
}

// OpenDurable builds an engine with a write-ahead journal under
// cfg.DataDir, recovering any state a previous run left there: the newest
// valid checkpoint is restored and the log tail replayed on top. link
// resolves each recovered pod spec against its application (typically
// Workload.LinkPod). The returned engine is fully recovered but not
// started; call Start as usual.
func OpenDurable(c *cluster.Cluster, factory SchedulerFactory, cfg Config, link func(*trace.Pod) error) (*Engine, *RecoveryStats, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, nil, errors.New("engine: OpenDurable requires Config.DataDir")
	}
	if link == nil {
		return nil, nil, errors.New("engine: OpenDurable requires a pod link function")
	}
	t0 := time.Now()
	jr, rec, err := journal.Open(journal.Config{
		Dir:          cfg.DataDir,
		SegmentBytes: cfg.JournalSegmentBytes,
		FsyncEvery:   cfg.FsyncEvery,
	})
	if err != nil {
		return nil, nil, err
	}
	e := New(c, factory, cfg)
	e.jr = jr
	if e.lc != nil {
		// Close fsync-wait spans when a group commit covers a placed pod's
		// OpPlace record. FsyncCovered only sweeps a watch list and feeds a
		// histogram — safe under the journal lock, no journal re-entry.
		jr.SetOnSync(e.lc.FsyncCovered)
	}
	stats := &RecoveryStats{
		CheckpointLSN:      rec.CheckpointLSN,
		ReplayedRecords:    len(rec.Records),
		TruncatedBytes:     rec.TruncatedBytes,
		CorruptCheckpoints: rec.CorruptCheckpoints,
	}
	pending := newPendingSet()
	if rec.Checkpoint != nil {
		if err := e.restoreCheckpoint(rec.Checkpoint, link, pending); err != nil {
			jr.Close()
			return nil, nil, fmt.Errorf("engine: checkpoint restore: %w", err)
		}
	}
	for i := range rec.Records {
		r := &rec.Records[i]
		if err := e.replayRecord(r, link, pending); err != nil {
			jr.Close()
			return nil, nil, fmt.Errorf("engine: replay LSN %d (%s): %w", r.LSN, r.Op, err)
		}
	}
	e.q.forcePushAll(pending.drain())
	stats.RecoveredPlaced = int(e.active.Load())
	stats.RecoveredPending = int(e.queued.Load())
	stats.StateHash = e.StateHash()
	stats.DurationMs = float64(time.Since(t0).Nanoseconds()) / 1e6
	e.recovery = stats
	e.installPhaseHook()
	e.log.Info("engine recovered",
		"checkpoint_lsn", stats.CheckpointLSN,
		"replayed", stats.ReplayedRecords,
		"truncated_bytes", stats.TruncatedBytes,
		"placed", stats.RecoveredPlaced,
		"pending", stats.RecoveredPending,
		"duration_ms", stats.DurationMs)
	return e, stats, nil
}

// newRecoveredRecord hands out one record during single-threaded recovery.
func (e *Engine) newRecoveredRecord() *podRecord {
	if len(e.recSlab) == 0 {
		e.recSlab = make([]podRecord, 512)
	}
	rec := &e.recSlab[0]
	e.recSlab = e.recSlab[1:]
	return rec
}

// restoreCheckpoint rebuilds the engine's state from a checkpoint payload.
// Single-threaded: the engine is not started yet.
func (e *Engine) restoreCheckpoint(payload []byte, link func(*trace.Pod) error, pending *pendingSet) error {
	var st ckptState
	if err := json.Unmarshal(payload, &st); err != nil {
		return err
	}
	e.now.Store(st.Now)
	e.tickN = st.TickN

	// The journaled quota tree wins over the caller's configuration: CRUD
	// applied through the API before the crash outlives the seed config.
	if len(st.Quota) > 0 {
		var qcfg quota.Config
		if err := json.Unmarshal(st.Quota, &qcfg); err != nil {
			return fmt.Errorf("quota config: %w", err)
		}
		qt, err := quota.New(qcfg)
		if err != nil {
			return fmt.Errorf("quota config: %w", err)
		}
		e.qt = qt
		e.cfg.Quota = qt
		e.q.setTree(qt)
	}

	type placedPod struct {
		p     *trace.Pod
		node  int
		seq   int
		start int64
	}
	var placed []placedPod
	var queued, active int64
	for i := range st.Pods {
		cp := &st.Pods[i]
		p := new(trace.Pod)
		if err := json.Unmarshal(cp.Spec, p); err != nil {
			return fmt.Errorf("pod %d spec: %w", cp.ID, err)
		}
		if err := link(p); err != nil {
			return err
		}
		if _, ok := e.recs[p.ID]; ok {
			return fmt.Errorf("pod %d appears twice", p.ID)
		}
		rec := e.newRecoveredRecord()
		rec.pod = p
		rec.phase = PodPhase(cp.Phase)
		rec.node = cp.Node
		rec.attempts = cp.Attempts
		rec.displacements = cp.Displacements
		rec.since = cp.Since
		rec.reason = sched.Reason(cp.Reason)
		rec.leaf = e.rechargeQuota(p, rec.phase)
		e.recs[p.ID] = rec
		switch rec.phase {
		case PodQueued:
			queued++
		case PodPlaced:
			active++
			placed = append(placed, placedPod{p: p, node: cp.Node, seq: cp.Seq, start: cp.Start})
		}
	}
	e.queued.Store(queued)
	e.active.Store(active)

	// Re-attach running pods in their original per-node scheduling order,
	// then overwrite each node's accounting verbatim: serialized float64s
	// round-trip exactly, so the sums match the live cluster bit for bit.
	sort.Slice(placed, func(i, j int) bool {
		a, b := placed[i], placed[j]
		return a.node < b.node || (a.node == b.node && a.seq < b.seq)
	})
	for _, pp := range placed {
		if _, err := e.c.RestorePod(pp.p, pp.node, pp.seq, pp.start); err != nil {
			return err
		}
	}
	for _, cn := range st.Nodes {
		e.c.RestoreNodePhase(cn.ID, cluster.NodePhase(cn.Phase))
		e.c.RestoreNodeAccounting(cn.ID, cn.NextSeq, cn.Req, cn.Limit, cn.Guar)
	}

	for _, cq := range st.Queue {
		rec := e.recs[cq.ID]
		if rec == nil {
			return fmt.Errorf("queued pod %d has no record", cq.ID)
		}
		pending.add(item{pod: rec.pod, displaced: cq.Displaced, leaf: rec.leaf})
	}
	// A sorted array is a valid min-heap: install the canonical forms
	// directly.
	for _, cw := range st.Waiting {
		rec := e.recs[cw.ID]
		if rec == nil {
			return fmt.Errorf("waiting pod %d has no record", cw.ID)
		}
		e.waiting = append(e.waiting, waitEntry{notBefore: cw.At, it: item{pod: rec.pod, displaced: cw.Displaced, leaf: rec.leaf}})
	}
	for _, cx := range st.Expiry {
		e.expiry = append(e.expiry, expiryEntry{at: cx.At, podID: cx.ID})
	}
	e.restoreCounters(st.Counters)
	return nil
}

// rechargeQuota resolves one recovered pod's quota leaf and recharges the
// usage its restored phase implies — admitted for queued pods, admitted
// plus placed for running ones; terminal phases were released before the
// cut. Pods whose tenant no longer resolves (pre-quota data dirs, or a
// tenant deleted after the pod finished) are grandfathered with leaf -1
// and charge nothing. Tenant outcome counters are process-local
// diagnostics and deliberately not recharged.
func (e *Engine) rechargeQuota(p *trace.Pod, phase PodPhase) int32 {
	if e.qt == nil {
		return -1
	}
	leaf, err := e.qt.Resolve(p.Tenant, p.Queue)
	if err != nil {
		return -1
	}
	switch phase {
	case PodQueued:
		e.qt.RestoreAdmitted(leaf, p.Request)
	case PodPlaced:
		e.qt.RestoreAdmitted(leaf, p.Request)
		e.qt.RestorePlaced(leaf, p.ID, p.Request, p.SLO == trace.SLOBE)
	}
	return leaf
}

// replayRecord applies one log-tail record. Replay is strict: a record
// that does not fit the current state means the journal and checkpoint
// disagree, and recovery fails loudly rather than guessing.
func (e *Engine) replayRecord(r *journal.Record, link func(*trace.Pod) error, pending *pendingSet) error {
	switch r.Op {
	case journal.OpAccept, journal.OpShed:
		if r.Op == journal.OpShed && r.B == shedClosed {
			return nil // historical form; nothing was admitted
		}
		p := new(trace.Pod)
		if err := json.Unmarshal(r.Blob, p); err != nil {
			return err
		}
		if err := link(p); err != nil {
			return err
		}
		if _, ok := e.recs[p.ID]; ok {
			return fmt.Errorf("pod %d already known", p.ID)
		}
		rec := e.newRecoveredRecord()
		rec.pod, rec.node, rec.since = p, -1, r.Time
		rec.leaf = -1
		e.recs[p.ID] = rec
		e.m.submitted.Add(1)
		if r.Op == journal.OpShed {
			rec.phase = PodShed
			e.m.shedBySLO[sloIdx(p.SLO)].Add(1)
			if r.B == shedQuota {
				e.m.quotaShed.Add(1)
			}
			return nil
		}
		rec.leaf = e.rechargeQuota(p, PodQueued)
		e.m.accepted.Add(1)
		e.queued.Add(1)
		pending.add(item{pod: p, leaf: rec.leaf})
		return nil

	case journal.OpPlace:
		id, node := int(r.A), int(r.B)
		rec := e.recs[id]
		if rec == nil || rec.phase != PodQueued {
			return fmt.Errorf("place for pod %d in state %v", id, recPhase(rec))
		}
		if _, err := e.c.Place(rec.pod, node, r.Time); err != nil {
			return err
		}
		pending.remove(id)
		rec.phase = PodPlaced
		rec.node = node
		rec.reason = sched.ReasonNone
		if e.qt != nil {
			e.qt.RestorePlaced(rec.leaf, id, rec.pod.Request, rec.pod.SLO == trace.SLOBE)
		}
		idx := sloIdx(rec.pod.SLO)
		e.m.waitSum[idx].Add(r.Time - rec.since)
		e.m.waitCount[idx].Add(1)
		e.queued.Add(-1)
		e.active.Add(1)
		e.m.placed.Add(1)
		e.m.placedBySLO[idx].Add(1)
		if rec.pod.Lifetime > 0 {
			heap.Push(&e.expiry, expiryEntry{at: rec.pod.Lifetime, podID: id})
		}
		return nil

	case journal.OpRemove:
		id := int(r.A)
		outcome := r.B & rmOutcomeMask
		jump := r.B&jumpFlag != 0
		rec := e.recs[id]
		if rec == nil || rec.phase != PodPlaced {
			return fmt.Errorf("remove for pod %d in state %v", id, recPhase(rec))
		}
		e.c.Remove(id, r.Time, false)
		e.active.Add(-1)
		rec.node = -1
		if e.qt != nil {
			e.qt.UnmarkPlaced(rec.leaf, id, rec.pod.Request)
			if r.B&quotaFlag != 0 {
				e.m.quotaPreempted.Add(1)
			}
		}
		releaseQuota := func() {
			if e.qt != nil {
				e.qt.ReleaseAdmitted(rec.leaf, rec.pod.Request)
			}
		}
		switch outcome {
		case rmCompleted:
			rec.phase = PodDone
			e.m.completed.Add(1)
			releaseQuota()
		case rmExpired:
			rec.phase = PodDone
			e.m.expired.Add(1)
			releaseQuota()
		case rmRequeued, rmExhausted, rmDispExpired:
			// Displacement: a BE preemption (jump clear) also counts as a
			// preemption, mirroring onPlaced's eviction loop.
			if !jump {
				e.m.preempted.Add(1)
			}
			e.m.displaced.Add(1)
			rec.displacements++
			switch outcome {
			case rmDispExpired:
				rec.phase = PodDone
				e.m.expired.Add(1)
				releaseQuota()
			case rmExhausted:
				rec.phase = PodExhausted
				e.m.exhausted.Add(1)
				releaseQuota()
			case rmRequeued:
				rec.phase = PodQueued
				rec.since = r.Time
				rec.attempts = 0
				rec.reason = sched.ReasonNone
				e.queued.Add(1)
				it := item{pod: rec.pod, displaced: jump, leaf: rec.leaf}
				if r.C > 0 {
					heap.Push(&e.waiting, waitEntry{notBefore: r.C, it: it})
				} else {
					pending.add(it)
				}
			}
		default:
			return fmt.Errorf("unknown remove outcome %d for pod %d", outcome, id)
		}
		return nil

	case journal.OpFail:
		id := int(r.A)
		rec := e.recs[id]
		if rec == nil || rec.phase != PodQueued {
			return fmt.Errorf("fail for pod %d in state %v", id, recPhase(rec))
		}
		jump := r.B&jumpFlag != 0
		rec.attempts++
		rec.reason = sched.Reason(r.B & rmOutcomeMask)
		e.m.retries.Add(1)
		pending.remove(id)
		heap.Push(&e.waiting, waitEntry{notBefore: r.C, it: item{pod: rec.pod, displaced: jump, leaf: rec.leaf}})
		return nil

	case journal.OpReject:
		id := int(r.A)
		rec := e.recs[id]
		if rec == nil || rec.phase != PodQueued {
			return fmt.Errorf("reject for pod %d in state %v", id, recPhase(rec))
		}
		pending.remove(id)
		rec.attempts++
		rec.reason = sched.Reason(r.B)
		rec.phase = PodRejected
		e.m.rejected.Add(1)
		if e.qt != nil {
			e.qt.ReleaseAdmitted(rec.leaf, rec.pod.Request)
		}
		e.queued.Add(-1)
		return nil

	case journal.OpTick:
		next := r.A
		e.now.Store(next)
		e.tickN++
		for len(e.waiting) > 0 && e.waiting[0].notBefore <= next {
			pending.add(heap.Pop(&e.waiting).(waitEntry).it)
		}
		return nil

	case journal.OpNodePhase:
		e.c.RestoreNodePhase(int(r.A), cluster.NodePhase(r.B))
		return nil

	case journal.OpQuota:
		// A pre-checkpoint crash can leave OpQuota records in the tail; they
		// only exist when the live engine ran with a tree, so recovery must
		// be handed the same seed config (or a checkpoint carrying it).
		if e.qt == nil {
			return errors.New("quota record but the engine has no quota tree")
		}
		switch r.A {
		case quotaSetTenant:
			var tc quota.TenantConfig
			if err := json.Unmarshal(r.Blob, &tc); err != nil {
				return err
			}
			return e.qt.SetTenant(tc)
		case quotaDeleteTenant:
			var name string
			if err := json.Unmarshal(r.Blob, &name); err != nil {
				return err
			}
			return e.qt.DeleteTenant(name)
		}
		return fmt.Errorf("unknown quota op %d", r.A)
	}
	return fmt.Errorf("unknown op %d", r.Op)
}

func recPhase(rec *podRecord) string {
	if rec == nil {
		return "unknown"
	}
	return rec.phase.String()
}
