package engine

import (
	"fmt"
	"testing"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// BenchmarkEngineThroughput measures end-to-end placement throughput —
// submit a pre-linked workload, drain it, count placements per wall
// second — across worker counts. With PartitionNodes each worker scans a
// disjoint slice of the cluster, so per-decision cost shrinks with the
// worker count: more workers means higher placements/sec even on a single
// core, and genuinely parallel commits on larger machines.
func BenchmarkEngineThroughput(b *testing.B) {
	const (
		nodes = 2048
		pods  = 4096
	)
	w := testWorkload(b, nodes, pods, 0.1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var placed int64
			var busy time.Duration
			var visited, decisions int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := cluster.New(w.Nodes, cluster.DefaultPhysics())
				e := New(c, alibabaFactory, Config{
					Workers:        workers,
					Shards:         16,
					QueueCap:       len(w.Pods),
					PartitionNodes: true,
					Seed:           int64(i + 1),
				})
				b.StartTimer()
				start := time.Now()
				e.Start()
				for _, p := range w.Pods {
					if err := e.Submit(p); err != nil {
						b.Fatalf("submit pod %d: %v", p.ID, err)
					}
				}
				if !e.Drain(2 * time.Minute) {
					b.Fatalf("engine did not settle: %+v", e.Snapshot())
				}
				busy += time.Since(start)
				e.Stop()
				sn := e.Snapshot()
				if sn.Lost() != 0 {
					b.Fatalf("lost %d submissions", sn.Lost())
				}
				placed += sn.Placed
				if sn.Pipeline != nil {
					visited += sn.Pipeline.VisitedNodes
					decisions += sn.Pipeline.Decisions
				}
			}
			if busy > 0 {
				b.ReportMetric(float64(placed)/busy.Seconds(), "placements/s")
			}
			if decisions > 0 {
				b.ReportMetric(float64(visited)/float64(decisions), "nodes_visited/decision")
			}
		})
	}
}

// BenchmarkPipelineVsScan isolates the tentpole perf claim: on a mostly-full
// cluster the indexed candidate store's headroom-bucket pruning skips the
// saturated hosts wholesale, so each decision visits a fraction of the
// nodes a flat scan walks — while choosing the same hosts (the equivalence
// tests assert that; this benchmark measures the saved work). pruning=false
// forces the pre-refactor behaviour, a full filter scan per decision.
func BenchmarkPipelineVsScan(b *testing.B) {
	const (
		perNode = 4    // preload pods per occupied node
		req     = 0.22 // request per pod; 4x leaves headroom 0.12 < req
		spacing = 16   // every spacing-th node stays empty
		probes  = 64   // pods scheduled per benchmark op
	)
	for _, nodes := range []int{1024, 6144} {
		w := testWorkload(b, nodes, nodes*perNode+probes, req)
		for _, pruning := range []bool{false, true} {
			b.Run(fmt.Sprintf("nodes=%d/pruning=%v", nodes, pruning), func(b *testing.B) {
				c := cluster.New(w.Nodes, cluster.DefaultPhysics())
				s := sched.NewAlibabaLike(c, 1)
				s.Pipeline().Index().SetPruning(pruning)
				next := 0
				for id := 0; id < nodes; id++ {
					if id%spacing == 0 {
						continue // leave sparse admissible hosts to find
					}
					for k := 0; k < perNode; k++ {
						if _, err := c.Place(w.Pods[next], id, 0); err != nil {
							b.Fatal(err)
						}
						next++
					}
				}
				batch := w.Pods[nodes*perNode : nodes*perNode+probes]
				before := s.Pipeline().Stats().Snapshot()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Schedule(batch, 0) // BeginBatch resets reservations
				}
				b.StopTimer()
				after := s.Pipeline().Stats().Snapshot()
				decisions := after.Decisions - before.Decisions
				if decisions > 0 {
					b.ReportMetric(float64(after.VisitedNodes-before.VisitedNodes)/float64(decisions),
						"nodes_visited/decision")
					b.ReportMetric(float64(after.PrunedNodes-before.PrunedNodes)/float64(decisions),
						"nodes_pruned/decision")
				}
			})
		}
	}
}

// BenchmarkEngineSoak is the sustained-churn benchmark (the
// clusterloader2 shape: fixed workload waves replayed back-to-back
// rather than one burst): successive waves of short-lived pods are
// submitted and drained while earlier waves expire, so the engine
// schedules against a cluster that is continuously filling and freeing.
// Workers share the full cluster (no partitioning), which makes the
// batched-commit conflict path and the work-stealing path do real work —
// the reported commit_conflicts/placement and steals metrics are the
// point of the benchmark, alongside placements/s.
func BenchmarkEngineSoak(b *testing.B) {
	const (
		nodes    = 1024
		wavePods = 2048
		waves    = 3
	)
	// Hand-rolled workload (one LS app, unit nodes) with per-wave
	// lifetimes: wave k expires one virtual tick after wave k+1 starts,
	// so capacity recycles throughout the run.
	app := testWorkload(b, 1, 1, 0.1).Apps[0]
	w := &trace.Workload{Apps: []*trace.App{app}, Horizon: 3600, Seed: 1}
	for i := 0; i < nodes; i++ {
		w.Nodes = append(w.Nodes, &trace.Node{ID: i, Capacity: trace.Resources{CPU: 1, Mem: 1}})
	}
	for i := 0; i < waves*wavePods; i++ {
		p := &trace.Pod{
			ID: i, AppID: app.ID, SLO: app.SLO,
			Request: app.Request, Limit: app.Limit,
			CPUScale: 1, MemScale: 1,
			Lifetime: int64(i/wavePods+2) * trace.SampleInterval,
		}
		if err := w.LinkPod(p); err != nil {
			b.Fatal(err)
		}
		w.Pods = append(w.Pods, p)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var placed, conflicts, steals int64
			var busy time.Duration
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := cluster.New(w.Nodes, cluster.DefaultPhysics())
				e := New(c, alibabaFactory, Config{
					Workers:  workers,
					Shards:   16,
					QueueCap: wavePods,
					Seed:     int64(i + 1),
				})
				b.StartTimer()
				start := time.Now()
				e.Start()
				for wave := 0; wave < waves; wave++ {
					for _, p := range w.Pods[wave*wavePods : (wave+1)*wavePods] {
						if err := e.Submit(p); err != nil {
							b.Fatalf("submit pod %d: %v", p.ID, err)
						}
					}
					if !e.Drain(2 * time.Minute) {
						b.Fatalf("wave %d did not settle: %+v", wave, e.Snapshot())
					}
				}
				busy += time.Since(start)
				e.Stop()
				sn := e.Snapshot()
				if sn.Lost() != 0 {
					b.Fatalf("lost %d submissions", sn.Lost())
				}
				placed += sn.Placed
				conflicts += sn.CommitConflicts
				steals += sn.Steals
			}
			if busy > 0 {
				b.ReportMetric(float64(placed)/busy.Seconds(), "placements/s")
			}
			if placed > 0 {
				b.ReportMetric(float64(conflicts)/float64(placed), "commit_conflicts/placement")
			}
			b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
		})
	}
}
