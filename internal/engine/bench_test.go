package engine

import (
	"fmt"
	"testing"
	"time"

	"unisched/internal/cluster"
)

// BenchmarkEngineThroughput measures end-to-end placement throughput —
// submit a pre-linked workload, drain it, count placements per wall
// second — across worker counts. With PartitionNodes each worker scans a
// disjoint slice of the cluster, so per-decision cost shrinks with the
// worker count: more workers means higher placements/sec even on a single
// core, and genuinely parallel commits on larger machines.
func BenchmarkEngineThroughput(b *testing.B) {
	const (
		nodes = 2048
		pods  = 4096
	)
	w := testWorkload(b, nodes, pods, 0.1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var placed int64
			var busy time.Duration
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := cluster.New(w.Nodes, cluster.DefaultPhysics())
				e := New(c, alibabaFactory, Config{
					Workers:        workers,
					Shards:         16,
					QueueCap:       len(w.Pods),
					PartitionNodes: true,
					Seed:           int64(i + 1),
				})
				b.StartTimer()
				start := time.Now()
				e.Start()
				for _, p := range w.Pods {
					if err := e.Submit(p); err != nil {
						b.Fatalf("submit pod %d: %v", p.ID, err)
					}
				}
				if !e.Drain(2 * time.Minute) {
					b.Fatalf("engine did not settle: %+v", e.Snapshot())
				}
				busy += time.Since(start)
				e.Stop()
				sn := e.Snapshot()
				if sn.Lost() != 0 {
					b.Fatalf("lost %d submissions", sn.Lost())
				}
				placed += sn.Placed
			}
			if busy > 0 {
				b.ReportMetric(float64(placed)/busy.Seconds(), "placements/s")
			}
		})
	}
}
