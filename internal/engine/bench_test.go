package engine

import (
	"fmt"
	"testing"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/sched"
)

// BenchmarkEngineThroughput measures end-to-end placement throughput —
// submit a pre-linked workload, drain it, count placements per wall
// second — across worker counts. With PartitionNodes each worker scans a
// disjoint slice of the cluster, so per-decision cost shrinks with the
// worker count: more workers means higher placements/sec even on a single
// core, and genuinely parallel commits on larger machines.
func BenchmarkEngineThroughput(b *testing.B) {
	const (
		nodes = 2048
		pods  = 4096
	)
	w := testWorkload(b, nodes, pods, 0.1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var placed int64
			var busy time.Duration
			var visited, decisions int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := cluster.New(w.Nodes, cluster.DefaultPhysics())
				e := New(c, alibabaFactory, Config{
					Workers:        workers,
					Shards:         16,
					QueueCap:       len(w.Pods),
					PartitionNodes: true,
					Seed:           int64(i + 1),
				})
				b.StartTimer()
				start := time.Now()
				e.Start()
				for _, p := range w.Pods {
					if err := e.Submit(p); err != nil {
						b.Fatalf("submit pod %d: %v", p.ID, err)
					}
				}
				if !e.Drain(2 * time.Minute) {
					b.Fatalf("engine did not settle: %+v", e.Snapshot())
				}
				busy += time.Since(start)
				e.Stop()
				sn := e.Snapshot()
				if sn.Lost() != 0 {
					b.Fatalf("lost %d submissions", sn.Lost())
				}
				placed += sn.Placed
				if sn.Pipeline != nil {
					visited += sn.Pipeline.VisitedNodes
					decisions += sn.Pipeline.Decisions
				}
			}
			if busy > 0 {
				b.ReportMetric(float64(placed)/busy.Seconds(), "placements/s")
			}
			if decisions > 0 {
				b.ReportMetric(float64(visited)/float64(decisions), "nodes_visited/decision")
			}
		})
	}
}

// BenchmarkPipelineVsScan isolates the tentpole perf claim: on a mostly-full
// cluster the indexed candidate store's headroom-bucket pruning skips the
// saturated hosts wholesale, so each decision visits a fraction of the
// nodes a flat scan walks — while choosing the same hosts (the equivalence
// tests assert that; this benchmark measures the saved work). pruning=false
// forces the pre-refactor behaviour, a full filter scan per decision.
func BenchmarkPipelineVsScan(b *testing.B) {
	const (
		perNode = 4    // preload pods per occupied node
		req     = 0.22 // request per pod; 4x leaves headroom 0.12 < req
		spacing = 16   // every spacing-th node stays empty
		probes  = 64   // pods scheduled per benchmark op
	)
	for _, nodes := range []int{1024, 6144} {
		w := testWorkload(b, nodes, nodes*perNode+probes, req)
		for _, pruning := range []bool{false, true} {
			b.Run(fmt.Sprintf("nodes=%d/pruning=%v", nodes, pruning), func(b *testing.B) {
				c := cluster.New(w.Nodes, cluster.DefaultPhysics())
				s := sched.NewAlibabaLike(c, 1)
				s.Pipeline().Index().SetPruning(pruning)
				next := 0
				for id := 0; id < nodes; id++ {
					if id%spacing == 0 {
						continue // leave sparse admissible hosts to find
					}
					for k := 0; k < perNode; k++ {
						if _, err := c.Place(w.Pods[next], id, 0); err != nil {
							b.Fatal(err)
						}
						next++
					}
				}
				batch := w.Pods[nodes*perNode : nodes*perNode+probes]
				before := s.Pipeline().Stats().Snapshot()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Schedule(batch, 0) // BeginBatch resets reservations
				}
				b.StopTimer()
				after := s.Pipeline().Stats().Snapshot()
				decisions := after.Decisions - before.Decisions
				if decisions > 0 {
					b.ReportMetric(float64(after.VisitedNodes-before.VisitedNodes)/float64(decisions),
						"nodes_visited/decision")
					b.ReportMetric(float64(after.PrunedNodes-before.PrunedNodes)/float64(decisions),
						"nodes_pruned/decision")
				}
			})
		}
	}
}
