package engine

// Quota CRUD: the engine's runtime surface for reshaping the quota tree
// (unischedd's /v1/quotas endpoints call these). Every change is applied
// and journaled as one OpQuota record under the shared checkpoint lock, so
// a checkpoint either reflects the change and sits after its record, or
// neither — recovery rebuilds the tree bit-identically either way.
//
// Apply runs before the append: a change the tree rejects (validation,
// tenant still in use) journals nothing, so strict replay only ever sees
// records that succeeded live — and succeeds again at the same log
// position, because the tree state there is identical.

import (
	"encoding/json"
	"errors"

	"unisched/internal/journal"
	"unisched/internal/quota"
)

// ErrNoQuota reports a quota operation on an engine running single-tenant
// (no quota tree configured).
var ErrNoQuota = errors.New("engine: no quota tree configured")

// Quota returns the engine's quota tree, or nil when it runs single-tenant.
func (e *Engine) Quota() *quota.Tree { return e.qt }

// QuotaSnapshot captures the tree with usage and fair shares at every
// level.
func (e *Engine) QuotaSnapshot() (quota.Snapshot, error) {
	if e.qt == nil {
		return quota.Snapshot{}, ErrNoQuota
	}
	return e.qt.Snapshot(), nil
}

// SetTenantQuota creates or updates one tenant subtree and journals the
// change.
func (e *Engine) SetTenantQuota(cfg quota.TenantConfig) error {
	if e.qt == nil {
		return ErrNoQuota
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	e.ckptMu.RLock()
	defer e.ckptMu.RUnlock()
	if err := e.qt.SetTenant(cfg); err != nil {
		return err
	}
	if e.jr != nil {
		e.jrAppend(journal.OpQuota, e.now.Load(), quotaSetTenant, 0, 0, blob)
	}
	return nil
}

// DeleteTenantQuota tombstones a drained tenant and journals the deletion.
// A tenant still holding admitted usage fails with quota.ErrInUse.
func (e *Engine) DeleteTenantQuota(name string) error {
	if e.qt == nil {
		return ErrNoQuota
	}
	blob, err := json.Marshal(name)
	if err != nil {
		return err
	}
	e.ckptMu.RLock()
	defer e.ckptMu.RUnlock()
	if err := e.qt.DeleteTenant(name); err != nil {
		return err
	}
	if e.jr != nil {
		e.jrAppend(journal.OpQuota, e.now.Load(), quotaDeleteTenant, 0, 0, blob)
	}
	return nil
}
