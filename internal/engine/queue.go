package engine

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"unisched/internal/quota"
	"unisched/internal/trace"
)

// Submission errors.
var (
	// ErrQueueFull reports a shed submission: the admission queue was at
	// capacity and the engine is configured to shed rather than block.
	ErrQueueFull = errors.New("engine: admission queue full")
	// ErrClosed reports a submission to a stopped engine.
	ErrClosed = errors.New("engine: closed")
	// ErrDuplicate reports a pod ID the engine has already accepted.
	ErrDuplicate = errors.New("engine: duplicate pod")
	// ErrNotLinked reports a pod whose App pointer is unresolved.
	ErrNotLinked = errors.New("engine: pod not linked to an app")
)

// numLanes is the number of priority lanes: LSR, LS, no-explicit-SLO, BE —
// the production queueing discipline sim.sortQueue encodes, as lanes.
const numLanes = 4

// laneOf maps an SLO class to its priority lane. Displaced
// latency-sensitive pods jump to the front lane: they already held capacity
// and their users are actively degraded until replacement.
func laneOf(slo trace.SLO, displaced bool) int {
	if displaced && slo.LatencySensitive() {
		return 0
	}
	switch slo {
	case trace.SLOLSR:
		return 0
	case trace.SLOLS:
		return 1
	case trace.SLOBE:
		return 3
	default:
		return 2
	}
}

// laneName labels the priority lanes for lifecycle events and exports.
func laneName(lane int) string {
	switch lane {
	case 0:
		return "lsr"
	case 1:
		return "ls"
	case 2:
		return "default"
	default:
		return "be"
	}
}

// item is one queued scheduling request.
type item struct {
	pod *trace.Pod
	// displaced marks a pod that was running and lost its host.
	displaced bool
	// leaf is the pod's quota-tree leaf handle, -1 when the engine runs
	// without a quota tree.
	leaf int32
}

// lane is a FIFO of items with an amortized-O(1) pop-front.
type lane struct {
	items []item
	head  int
}

func (l *lane) len() int { return len(l.items) - l.head }

func (l *lane) push(it item) { l.items = append(l.items, it) }

func (l *lane) pop() item {
	it := l.items[l.head]
	l.items[l.head] = item{}
	l.head++
	if l.head > 64 && l.head*2 >= len(l.items) {
		n := copy(l.items, l.items[l.head:])
		l.items = l.items[:n]
		l.head = 0
	}
	return it
}

// fairLane fans one priority lane out into per-quota-leaf sub-queues.
// Within the lane, popBatch drains leaves in fair-share order (most
// under-guaranteed tenant first); within a leaf, FIFO order is preserved.
type fairLane struct {
	subs map[int32]*lane
	// keys lists every leaf that ever had a sub-queue, ascending — the
	// deterministic iteration order for ranking and snapshots.
	keys []int32
	size int
}

func (f *fairLane) push(it item) {
	if f.subs == nil {
		f.subs = make(map[int32]*lane)
	}
	sub := f.subs[it.leaf]
	if sub == nil {
		sub = &lane{}
		f.subs[it.leaf] = sub
		i := sort.Search(len(f.keys), func(i int) bool { return f.keys[i] >= it.leaf })
		f.keys = append(f.keys, 0)
		copy(f.keys[i+1:], f.keys[i:])
		f.keys[i] = it.leaf
	}
	sub.push(it)
	f.size++
}

// queue is the bounded admission queue: per-SLO priority lanes, blocking or
// shedding submission, and batched priority-ordered pops. External
// submissions respect the capacity bound; internal re-admissions (displaced
// and retried pods, which were already accepted once) bypass it so faults
// can never turn an accepted pod into a lost one.
//
// With a quota tree attached each priority lane is a fairLane — the lane
// hierarchy becomes (SLO priority, fair share, FIFO) — and without one the
// flat lanes carry zero quota cost.
type queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	lanes    [numLanes]lane
	// qt and flanes replace the flat lanes when a quota tree is attached.
	qt       *quota.Tree
	flanes   [numLanes]fairLane
	size     int
	capacity int
	closed   bool
	// sz mirrors size for lock-free length reads. The event loop and
	// Drain poll len() continuously; taking the queue mutex there
	// contends with the producer/consumer hot path. Pops decrement sz
	// after onPop has moved the count to in-flight, so a reader that
	// checks length before in-flight can never see both at zero
	// mid-handoff.
	sz atomic.Int64
	// onPop, when set, runs under the queue lock with the batch size
	// just popped. The engine uses it to move counts from queue depth to
	// in-flight atomically, so quiescence checks never see both at zero
	// mid-handoff.
	onPop func(n int)
}

func newQueue(capacity int, qt *quota.Tree) *queue {
	q := &queue{capacity: capacity, qt: qt}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// setTree attaches a quota tree after construction (recovery found a
// journaled tree the caller's config did not carry). Only legal before the
// engine starts; the queue must be empty.
func (q *queue) setTree(qt *quota.Tree) {
	q.mu.Lock()
	q.qt = qt
	q.mu.Unlock()
}

// add appends one item to its (priority, fair-share) lane. Caller holds
// q.mu.
func (q *queue) add(it item) {
	l := laneOf(it.pod.SLO, it.displaced)
	if q.qt == nil {
		q.lanes[l].push(it)
	} else {
		q.flanes[l].push(it)
	}
	q.size++
	q.sz.Add(1)
}

// push admits an external submission. When the queue is full it blocks
// (block=true) or fails with ErrQueueFull (block=false). beforeAdd, when
// non-nil, runs under the queue lock once space is secured, immediately
// before the item becomes visible — the durable engine appends the
// admission's journal record there, so the log carries an accept exactly
// when the pod actually entered the queue.
func (q *queue) push(it item, block bool, beforeAdd func()) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size >= q.capacity && !q.closed {
		if !block {
			return ErrQueueFull
		}
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	if beforeAdd != nil {
		beforeAdd()
	}
	q.add(it)
	q.notEmpty.Signal()
	return nil
}

// waitSpace blocks until the queue has room for an external push, or the
// queue is closed. The durable submission path waits here instead of
// inside push, because it must never block while holding the checkpoint
// read lock.
func (q *queue) waitSpace() {
	q.mu.Lock()
	for q.size >= q.capacity && !q.closed {
		q.notFull.Wait()
	}
	q.mu.Unlock()
}

// forcePush re-admits an already-accepted pod (displacement, retry,
// preemption), bypassing the capacity bound. It is a no-op on a closed
// queue (the pod stays accounted as pending via its record).
func (q *queue) forcePush(it item) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.add(it)
	q.notEmpty.Signal()
}

// forcePushAll re-admits a batch of already-accepted pods under one lock
// acquisition, so a consumer blocked in popBatch observes either none or
// all of them. The event loop releases each tick's due retries this way:
// releasing them one by one would let a worker pop a wall-clock-dependent
// prefix, making batch composition — and with it the decisions of
// history-sensitive schedulers — nondeterministic.
func (q *queue) forcePushAll(its []item) {
	if len(its) == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	for _, it := range its {
		q.add(it)
	}
	q.notEmpty.Broadcast()
}

// popBatch removes up to max items in priority order, blocking while the
// queue is empty. It returns nil once the queue is closed.
func (q *queue) popBatch(max int) []item {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.closed {
		return nil
	}
	if max > q.size {
		max = q.size
	}
	out := make([]item, 0, max)
	if q.qt == nil {
		for l := 0; l < numLanes && len(out) < max; l++ {
			for q.lanes[l].len() > 0 && len(out) < max {
				out = append(out, q.lanes[l].pop())
			}
		}
	} else {
		for l := 0; l < numLanes && len(out) < max; l++ {
			out = q.popFair(&q.flanes[l], out, max)
		}
	}
	q.size -= len(out)
	if q.onPop != nil {
		q.onPop(len(out))
	}
	q.sz.Add(-int64(len(out)))
	if q.size < q.capacity {
		q.notFull.Broadcast()
	}
	return out
}

// popFair drains one fair lane into out: leaves ranked once per call by
// (tenant fair share, queue fair share, leaf ID) ascending, so the most
// under-guaranteed tenant's pods leave first. Caller holds q.mu; the
// tree's own lock nests inside the queue lock (the tree never calls back
// into the queue).
func (q *queue) popFair(fl *fairLane, out []item, max int) []item {
	if fl.size == 0 {
		return out
	}
	type rankedLeaf struct {
		leaf   int32
		ts, qs float64
	}
	ranked := make([]rankedLeaf, 0, len(fl.keys))
	for _, id := range fl.keys {
		if fl.subs[id].len() == 0 {
			continue
		}
		ts, qs := q.qt.ShareOf(id)
		ranked = append(ranked, rankedLeaf{leaf: id, ts: ts, qs: qs})
	}
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.qs != b.qs {
			return a.qs < b.qs
		}
		return a.leaf < b.leaf
	})
	for _, r := range ranked {
		sub := fl.subs[r.leaf]
		for sub.len() > 0 && len(out) < max {
			out = append(out, sub.pop())
			fl.size--
		}
		if len(out) >= max {
			break
		}
	}
	return out
}

// tryPopBatch is popBatch's non-blocking variant for the work-stealing
// worker loop: it appends up to max items in priority order to buf and
// returns immediately. closed reports a closed queue (matching popBatch,
// a closed queue yields nothing — pods stay accounted as pending).
func (q *queue) tryPopBatch(max int, buf []item) (out []item, closed bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return buf, true
	}
	if q.size == 0 {
		return buf, false
	}
	if max > q.size {
		max = q.size
	}
	base := len(buf)
	out = buf
	if q.qt == nil {
		for l := 0; l < numLanes && len(out)-base < max; l++ {
			for q.lanes[l].len() > 0 && len(out)-base < max {
				out = append(out, q.lanes[l].pop())
			}
		}
	} else {
		for l := 0; l < numLanes && len(out)-base < max; l++ {
			out = q.popFair(&q.flanes[l], out, base+max)
		}
	}
	took := len(out) - base
	q.size -= took
	if q.onPop != nil {
		q.onPop(took)
	}
	q.sz.Add(-int64(took))
	if q.size < q.capacity {
		q.notFull.Broadcast()
	}
	return out, false
}

// snapshot copies the queued items in deterministic order — checkpoint
// assembly. Flat lanes snapshot in pop (priority) order; fair lanes in
// (priority, leaf ID, FIFO) order, which preserves per-leaf FIFO across a
// recovery round-trip.
func (q *queue) snapshot() []item {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]item, 0, q.size)
	if q.qt == nil {
		for l := 0; l < numLanes; l++ {
			la := &q.lanes[l]
			out = append(out, la.items[la.head:]...)
		}
		return out
	}
	for l := 0; l < numLanes; l++ {
		fl := &q.flanes[l]
		for _, id := range fl.keys {
			la := fl.subs[id]
			out = append(out, la.items[la.head:]...)
		}
	}
	return out
}

// len returns the number of queued items.
// len reads the queue length without the lock (see sz).
func (q *queue) len() int {
	return int(q.sz.Load())
}

// close wakes every blocked producer and consumer; subsequent pushes fail
// with ErrClosed and popBatch returns nil.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
