package engine

import (
	"errors"
	"sync"

	"unisched/internal/trace"
)

// Submission errors.
var (
	// ErrQueueFull reports a shed submission: the admission queue was at
	// capacity and the engine is configured to shed rather than block.
	ErrQueueFull = errors.New("engine: admission queue full")
	// ErrClosed reports a submission to a stopped engine.
	ErrClosed = errors.New("engine: closed")
	// ErrDuplicate reports a pod ID the engine has already accepted.
	ErrDuplicate = errors.New("engine: duplicate pod")
	// ErrNotLinked reports a pod whose App pointer is unresolved.
	ErrNotLinked = errors.New("engine: pod not linked to an app")
)

// numLanes is the number of priority lanes: LSR, LS, no-explicit-SLO, BE —
// the production queueing discipline sim.sortQueue encodes, as lanes.
const numLanes = 4

// laneOf maps an SLO class to its priority lane. Displaced
// latency-sensitive pods jump to the front lane: they already held capacity
// and their users are actively degraded until replacement.
func laneOf(slo trace.SLO, displaced bool) int {
	if displaced && slo.LatencySensitive() {
		return 0
	}
	switch slo {
	case trace.SLOLSR:
		return 0
	case trace.SLOLS:
		return 1
	case trace.SLOBE:
		return 3
	default:
		return 2
	}
}

// item is one queued scheduling request.
type item struct {
	pod *trace.Pod
	// displaced marks a pod that was running and lost its host.
	displaced bool
}

// lane is a FIFO of items with an amortized-O(1) pop-front.
type lane struct {
	items []item
	head  int
}

func (l *lane) len() int { return len(l.items) - l.head }

func (l *lane) push(it item) { l.items = append(l.items, it) }

func (l *lane) pop() item {
	it := l.items[l.head]
	l.items[l.head] = item{}
	l.head++
	if l.head > 64 && l.head*2 >= len(l.items) {
		n := copy(l.items, l.items[l.head:])
		l.items = l.items[:n]
		l.head = 0
	}
	return it
}

// queue is the bounded admission queue: per-SLO priority lanes, blocking or
// shedding submission, and batched priority-ordered pops. External
// submissions respect the capacity bound; internal re-admissions (displaced
// and retried pods, which were already accepted once) bypass it so faults
// can never turn an accepted pod into a lost one.
type queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	lanes    [numLanes]lane
	size     int
	capacity int
	closed   bool
	// onPop, when set, runs under the queue lock with the batch size
	// just popped. The engine uses it to move counts from queue depth to
	// in-flight atomically, so quiescence checks never see both at zero
	// mid-handoff.
	onPop func(n int)
}

func newQueue(capacity int) *queue {
	q := &queue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// push admits an external submission. When the queue is full it blocks
// (block=true) or fails with ErrQueueFull (block=false). beforeAdd, when
// non-nil, runs under the queue lock once space is secured, immediately
// before the item becomes visible — the durable engine appends the
// admission's journal record there, so the log carries an accept exactly
// when the pod actually entered the queue.
func (q *queue) push(it item, block bool, beforeAdd func()) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size >= q.capacity && !q.closed {
		if !block {
			return ErrQueueFull
		}
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	if beforeAdd != nil {
		beforeAdd()
	}
	q.lanes[laneOf(it.pod.SLO, it.displaced)].push(it)
	q.size++
	q.notEmpty.Signal()
	return nil
}

// waitSpace blocks until the queue has room for an external push, or the
// queue is closed. The durable submission path waits here instead of
// inside push, because it must never block while holding the checkpoint
// read lock.
func (q *queue) waitSpace() {
	q.mu.Lock()
	for q.size >= q.capacity && !q.closed {
		q.notFull.Wait()
	}
	q.mu.Unlock()
}

// forcePush re-admits an already-accepted pod (displacement, retry,
// preemption), bypassing the capacity bound. It is a no-op on a closed
// queue (the pod stays accounted as pending via its record).
func (q *queue) forcePush(it item) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.lanes[laneOf(it.pod.SLO, it.displaced)].push(it)
	q.size++
	q.notEmpty.Signal()
}

// forcePushAll re-admits a batch of already-accepted pods under one lock
// acquisition, so a consumer blocked in popBatch observes either none or
// all of them. The event loop releases each tick's due retries this way:
// releasing them one by one would let a worker pop a wall-clock-dependent
// prefix, making batch composition — and with it the decisions of
// history-sensitive schedulers — nondeterministic.
func (q *queue) forcePushAll(its []item) {
	if len(its) == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	for _, it := range its {
		q.lanes[laneOf(it.pod.SLO, it.displaced)].push(it)
	}
	q.size += len(its)
	q.notEmpty.Broadcast()
}

// popBatch removes up to max items in priority order, blocking while the
// queue is empty. It returns nil once the queue is closed.
func (q *queue) popBatch(max int) []item {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.closed {
		return nil
	}
	if max > q.size {
		max = q.size
	}
	out := make([]item, 0, max)
	for l := 0; l < numLanes && len(out) < max; l++ {
		for q.lanes[l].len() > 0 && len(out) < max {
			out = append(out, q.lanes[l].pop())
		}
	}
	q.size -= len(out)
	if q.onPop != nil {
		q.onPop(len(out))
	}
	if q.size < q.capacity {
		q.notFull.Broadcast()
	}
	return out
}

// snapshot copies the queued items in pop (priority) order — checkpoint
// assembly.
func (q *queue) snapshot() []item {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]item, 0, q.size)
	for l := 0; l < numLanes; l++ {
		la := &q.lanes[l]
		out = append(out, la.items[la.head:]...)
	}
	return out
}

// len returns the number of queued items.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// close wakes every blocked producer and consumer; subsequent pushes fail
// with ErrClosed and popBatch returns nil.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
