package engine

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/obs"
)

// TestLifecycleEngineTimeline drains a fixed-seed workload with full
// lifecycle sampling and checks the recorder captured complete per-pod
// journeys, the e2e summary landed in the snapshot, and the new latency
// families reach the Prometheus page.
func TestLifecycleEngineTimeline(t *testing.T) {
	w := smallWorkload(t)
	// Stay under the recorder's 1024-timeline cap: with every pod sampled,
	// a bigger run FIFO-evicts early timelines (bounded memory by design)
	// and this test wants complete journeys.
	if len(w.Pods) > 512 {
		w.Pods = w.Pods[:512]
	}
	e, sn := runEngine(t, w, Config{Workers: 1, LifecycleEvery: 1, LifecycleBuffer: 4096})
	checkConservation(t, w, sn)

	lc := e.Lifecycle()
	if lc == nil {
		t.Fatal("lifecycle recorder not built despite LifecycleEvery > 0")
	}
	if lc.Role() != "engine" {
		t.Errorf("default role %q, want engine", lc.Role())
	}

	// Every placed pod fed the end-to-end histogram.
	if got := lc.StageHistogram(obs.StagePlaced).Count(); got != sn.Placed {
		t.Errorf("e2e histogram count %d, want placed %d", got, sn.Placed)
	}
	if sn.E2E == nil {
		t.Fatal("snapshot has no e2e summary")
	}
	if sn.E2E.Count != sn.Placed {
		t.Errorf("e2e summary count %d, want %d", sn.E2E.Count, sn.Placed)
	}
	if sn.E2E.P50Ms < 0 || sn.E2E.P99Ms < sn.E2E.P50Ms {
		t.Errorf("e2e quantiles out of order: %+v", sn.E2E)
	}
	if sn.E2E.QueueWaitMeanMs < 0 || sn.E2E.SchedMeanMs < 0 || sn.E2E.CommitMeanMs < 0 {
		t.Errorf("negative stage means: %+v", sn.E2E)
	}

	// Some placed pod has a complete sampled journey.
	var full bool
	for _, p := range w.Pods {
		tl, ok := lc.Timeline(int64(p.ID))
		if !ok {
			continue
		}
		have := map[string]bool{}
		for _, ev := range tl.Events {
			have[ev.Stage] = true
		}
		if have[obs.StageSubmit] && have[obs.StageAdmission] && have[obs.StageQueueWait] &&
			have[obs.StageSched] && have[obs.StageCommit] && have[obs.StagePlaced] {
			full = true
			break
		}
	}
	if !full {
		t.Error("no pod recorded a complete submit-to-placed timeline")
	}

	// The new latency families reach the exposition and it stays valid.
	var buf bytes.Buffer
	if err := e.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{
		"unisched_pod_e2e_seconds_bucket",
		"unisched_stage_queue_wait_seconds_count",
		"unisched_stage_sched_seconds_count",
		"unisched_stage_commit_seconds_count",
		"unisched_stage_fsync_wait_seconds_count",
		"unisched_lifecycle_events_total",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("exposition with lifecycle families invalid: %v", err)
	}
}

// TestLifecycleOffIsInert pins the zero-cost-when-off contract's
// observable half: no recorder is built, the snapshot has no e2e block,
// and the exposition carries none of the lifecycle families.
func TestLifecycleOffIsInert(t *testing.T) {
	w := smallWorkload(t)
	e, sn := runEngine(t, w, Config{Workers: 1})
	checkConservation(t, w, sn)
	if e.Lifecycle() != nil {
		t.Fatal("lifecycle recorder built with tracing off")
	}
	if sn.E2E != nil {
		t.Fatalf("snapshot carries e2e summary with tracing off: %+v", sn.E2E)
	}
	raw, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"e2e"`) {
		t.Error("snapshot JSON contains e2e key with tracing off")
	}
	var buf bytes.Buffer
	if err := e.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "unisched_pod_e2e_seconds") {
		t.Error("exposition contains lifecycle families with tracing off")
	}
}

// TestLifecycleConcurrentWorkers drains with four workers and full
// sampling — the race-detector target for the recorder's lock
// discipline (flight ring, pending clocks, timelines, fsync watches all
// hammered from worker goroutines and the event loop).
func TestLifecycleConcurrentWorkers(t *testing.T) {
	w := smallWorkload(t)
	e, sn := runEngine(t, w, Config{Workers: 4, Shards: 8, LifecycleEvery: 1, LifecycleBuffer: 2048})
	checkConservation(t, w, sn)
	lc := e.Lifecycle()
	if got := lc.StageHistogram(obs.StagePlaced).Count(); got != sn.Placed {
		t.Errorf("e2e count %d, want placed %d", got, sn.Placed)
	}
	if lc.Total() == 0 {
		t.Error("no lifecycle events recorded")
	}
	// Per-pod timelines must be internally start-ordered even when stages
	// were recorded from different workers.
	checked := 0
	for _, p := range w.Pods {
		tl, ok := lc.Timeline(int64(p.ID))
		if !ok {
			continue
		}
		for i := 1; i < len(tl.Events); i++ {
			if tl.Events[i].StartNs < tl.Events[i-1].StartNs {
				t.Fatalf("pod %d timeline unordered: %+v", p.ID, tl.Events)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Error("no timelines recorded")
	}
}

// TestLifecycleDurableFsyncStage drains a durable engine and checks
// placements acquire journal-append and fsync-wait stages attributed
// against the covering group fsync.
func TestLifecycleDurableFsyncStage(t *testing.T) {
	w := smallWorkload(t)
	dir := t.TempDir()
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e, _, err := OpenDurable(c, alibabaFactory, Config{
		Workers: 1, Horizon: w.Horizon, BlockOnFull: true,
		DataDir: dir, FsyncEvery: time.Millisecond,
		LifecycleEvery: 1, LifecycleBuffer: 2048,
	}, w.LinkPod)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatalf("submit pod %d: %v", p.ID, err)
		}
	}
	if !e.Drain(60 * time.Second) {
		e.Stop()
		t.Fatalf("engine did not settle: %+v", e.Snapshot())
	}
	e.Stop()
	sn := e.Snapshot()
	checkConservation(t, w, sn)

	lc := e.Lifecycle()
	fsyncs := lc.StageHistogram(obs.StageFsyncWait).Count()
	if fsyncs == 0 {
		t.Fatal("no fsync-wait spans recorded on a durable engine")
	}
	if fsyncs > sn.Placed {
		t.Errorf("fsync-wait count %d above placed %d", fsyncs, sn.Placed)
	}
	if sn.E2E.FsyncWaitMeanMs < 0 {
		t.Errorf("negative fsync-wait mean: %+v", sn.E2E)
	}
	var withFsync bool
	for _, p := range w.Pods {
		tl, ok := lc.Timeline(int64(p.ID))
		if !ok {
			continue
		}
		var appended, synced bool
		for _, ev := range tl.Events {
			if ev.Stage == obs.StageJournalAppend {
				appended = true
			}
			if ev.Stage == obs.StageFsyncWait {
				synced = true
			}
		}
		if appended && synced {
			withFsync = true
			break
		}
	}
	if !withFsync {
		t.Error("no pod timeline carries journal-append + fsync-wait")
	}
}

// TestLifecycleAnomalyFlightDump trips the shed-spike detector with a
// tiny queue and checks the engine wrote a flight-recorder dump into the
// data dir.
func TestLifecycleAnomalyFlightDump(t *testing.T) {
	w := smallWorkload(t)
	dir := t.TempDir()
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{
		Workers: 1, Horizon: w.Horizon, QueueCap: 4,
		DataDir:          dir,
		LifecycleEvery:   1,
		LifecycleBuffer:  2048,
		AnomalyShedSpike: 8,
		// Keep the other detectors out of the way.
		AnomalyConflictStorm: -1, AnomalyFsyncStall: -1,
	})
	e.Start()
	shed := 0
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			shed++
		}
	}
	if shed < 16 {
		e.Stop()
		t.Skipf("only %d sheds; spike detector not exercised", shed)
	}
	// The detector runs on the engine tick; give it time to fire.
	deadline := time.Now().Add(10 * time.Second)
	var dumps []string
	for time.Now().Before(deadline) {
		m, _ := filepath.Glob(filepath.Join(dir, "flight-shed-spike-*.json"))
		if len(m) > 0 {
			dumps = m
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	e.Stop()
	if len(dumps) == 0 {
		t.Fatalf("no flight dump written after %d sheds", shed)
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("flight dump not valid JSON: %v", err)
	}
	if dump.Reason != "shed-spike" {
		t.Errorf("dump reason %q, want shed-spike", dump.Reason)
	}
	if len(dump.Events) == 0 {
		t.Error("flight dump carries no events")
	}
}
