package engine

import (
	"sync"
	"testing"
	"time"

	"unisched/internal/trace"
)

func mkPod(id int, slo trace.SLO) *trace.Pod {
	return &trace.Pod{ID: id, SLO: slo}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newQueue(16, nil)
	q.forcePush(item{pod: mkPod(1, trace.SLOBE)})
	q.forcePush(item{pod: mkPod(2, trace.SLOLS)})
	q.forcePush(item{pod: mkPod(3, trace.SLOSystem)})
	q.forcePush(item{pod: mkPod(4, trace.SLOLSR)})
	q.forcePush(item{pod: mkPod(5, trace.SLOLS), displaced: true}) // jumps to front lane

	got := q.popBatch(16)
	want := []int{4, 5, 2, 3, 1} // LSR, displaced LS, LS, no-SLO, BE
	if len(got) != len(want) {
		t.Fatalf("popped %d items, want %d", len(got), len(want))
	}
	for i, it := range got {
		if it.pod.ID != want[i] {
			t.Fatalf("pop order %d = pod %d, want %d", i, it.pod.ID, want[i])
		}
	}
}

func TestQueueShedsWhenFull(t *testing.T) {
	q := newQueue(2, nil)
	if err := q.push(item{pod: mkPod(1, trace.SLOBE)}, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.push(item{pod: mkPod(2, trace.SLOBE)}, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.push(item{pod: mkPod(3, trace.SLOBE)}, false, nil); err != ErrQueueFull {
		t.Fatalf("push on full queue = %v, want ErrQueueFull", err)
	}
	// Internal re-admissions bypass the bound.
	q.forcePush(item{pod: mkPod(4, trace.SLOBE)})
	if q.len() != 3 {
		t.Fatalf("len = %d after forcePush, want 3", q.len())
	}
}

func TestQueueBlockingPushUnblocksOnPop(t *testing.T) {
	q := newQueue(1, nil)
	if err := q.push(item{pod: mkPod(1, trace.SLOBE)}, true, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.push(item{pod: mkPod(2, trace.SLOBE)}, true, nil) }()
	select {
	case err := <-done:
		t.Fatalf("blocking push returned early: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	q.popBatch(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked push failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("push still blocked after pop freed space")
	}
}

func TestQueueCloseWakesEveryone(t *testing.T) {
	q := newQueue(1, nil)
	if err := q.push(item{pod: mkPod(1, trace.SLOBE)}, false, nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 1)
	batches := make(chan []item, 2)
	wg.Add(3)
	go func() { defer wg.Done(); errs <- q.push(item{pod: mkPod(2, trace.SLOBE)}, true, nil) }()
	// One consumer drains the queued item; a second blocks empty.
	for i := 0; i < 2; i++ {
		go func() { defer wg.Done(); batches <- q.popBatch(4) }()
	}
	time.Sleep(10 * time.Millisecond)
	q.close()
	wg.Wait()
	if err := <-errs; err != ErrClosed && err != nil {
		t.Fatalf("blocked push after close = %v, want ErrClosed or success", err)
	}
	if err := q.push(item{pod: mkPod(9, trace.SLOBE)}, false, nil); err != ErrClosed {
		t.Fatalf("push after close = %v, want ErrClosed", err)
	}
}

func TestLaneCompaction(t *testing.T) {
	var l lane
	for i := 0; i < 1000; i++ {
		l.push(item{pod: mkPod(i, trace.SLOBE)})
	}
	for i := 0; i < 1000; i++ {
		if it := l.pop(); it.pod.ID != i {
			t.Fatalf("pop %d = pod %d", i, it.pod.ID)
		}
	}
	if l.len() != 0 {
		t.Fatalf("len = %d after draining", l.len())
	}
}

// TestQueueForcePushAllBypassKeepsExternalBound: batched re-admissions
// bypass the capacity bound (an accepted pod must never be lost to a full
// queue), but the bound keeps holding for external pushes, and draining
// restores normal admission. Regression test for the backpressure /
// re-admission interaction.
func TestQueueForcePushAllBypassKeepsExternalBound(t *testing.T) {
	q := newQueue(2, nil)
	for i := 0; i < 2; i++ {
		if err := q.push(item{pod: mkPod(i, trace.SLOLS)}, false, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.push(item{pod: mkPod(2, trace.SLOLS)}, false, nil); err != ErrQueueFull {
		t.Fatalf("push on full queue = %v, want ErrQueueFull", err)
	}
	q.forcePushAll([]item{
		{pod: mkPod(10, trace.SLOBE)},
		{pod: mkPod(11, trace.SLOLSR)},
		{pod: mkPod(12, trace.SLOLS), displaced: true},
	})
	if q.len() != 5 {
		t.Fatalf("len = %d after batched re-admission over a full queue, want 5", q.len())
	}
	// External admission is still shed: re-admissions must not open the
	// gate for new work.
	if err := q.push(item{pod: mkPod(3, trace.SLOLS)}, false, nil); err != ErrQueueFull {
		t.Fatalf("push after forcePushAll = %v, want ErrQueueFull", err)
	}
	got := q.popBatch(16)
	if len(got) != 5 {
		t.Fatalf("popped %d, want 5", len(got))
	}
	// Priority order holds across the mixed batch: LSR and displaced LS
	// first, then the LS lane in FIFO order, then BE.
	want := []int{11, 12, 0, 1, 10}
	for i, it := range got {
		if it.pod.ID != want[i] {
			t.Fatalf("pop order %d = pod %d, want %d", i, it.pod.ID, want[i])
		}
	}
	// Drained below capacity, external pushes work again.
	if err := q.push(item{pod: mkPod(4, trace.SLOLS)}, false, nil); err != nil {
		t.Fatalf("push after drain = %v", err)
	}
}

// TestQueuePushBeforeAddRunsOnlyOnAdmission: the beforeAdd hook (the
// durable engine's journal append) fires exactly when the item is actually
// enqueued — never on shed or closed pushes.
func TestQueuePushBeforeAddRunsOnlyOnAdmission(t *testing.T) {
	q := newQueue(1, nil)
	calls := 0
	hook := func() { calls++ }
	if err := q.push(item{pod: mkPod(1, trace.SLOLS)}, false, hook); err != nil || calls != 1 {
		t.Fatalf("admitted push: err=%v calls=%d", err, calls)
	}
	if err := q.push(item{pod: mkPod(2, trace.SLOLS)}, false, hook); err != ErrQueueFull || calls != 1 {
		t.Fatalf("shed push: err=%v calls=%d", err, calls)
	}
	q.close()
	if err := q.push(item{pod: mkPod(3, trace.SLOLS)}, false, hook); err != ErrClosed || calls != 1 {
		t.Fatalf("closed push: err=%v calls=%d", err, calls)
	}
}
