package engine

import (
	"sync"

	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// Store wraps a cluster with sharded locking and per-node versions so N
// scheduler workers can race over live state without a global lock — the
// online analogue of the §4.4 Deployment Module.
//
// Locking protocol:
//
//   - A scheduling pass holds every shard's read lock while a scheduler
//     scores candidates, and captures the version of each chosen host
//     before releasing. Passes from different workers run concurrently.
//   - A commit takes one shard's write lock, so commits to different
//     shards proceed in parallel and only block scheduling passes briefly.
//   - Cluster-wide mutations (the physics tick, chaos injection, lifetime
//     expiry) take every write lock via LockAll.
//   - The cluster's pod index is shared across shards, so the short
//     index-mutating sections (Place/Remove) additionally hold podMu.
//     Lock order is always shards-ascending, then podMu.
//
// Versions advance only when a placement consumes capacity on a node. A
// commit whose observed version is stale therefore means another worker
// placed onto the same host in the race window — exactly the conflict the
// Deployment Module arbitrates. The first committer won; the late commit
// re-validates against the conservative request-based rule and either
// deploys alongside (there is clearly room) or is rejected for
// re-dispatch.
type Store struct {
	c      *cluster.Cluster
	shards []sync.RWMutex
	podMu  sync.Mutex
	// version[nodeID] is guarded by the owning shard's lock.
	version []uint64
}

// NewStore builds a sharded store over the cluster. shards is clamped to
// [1, nodes].
func NewStore(c *cluster.Cluster, shards int) *Store {
	n := len(c.Nodes())
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1 // empty cluster: keep one shard so locking still works
	}
	return &Store{
		c:       c,
		shards:  make([]sync.RWMutex, shards),
		version: make([]uint64, n),
	}
}

// Cluster returns the wrapped cluster. Callers must hold the appropriate
// locks while reading or writing it.
func (s *Store) Cluster() *cluster.Cluster { return s.c }

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

func (s *Store) shardOf(nodeID int) int { return nodeID % len(s.shards) }

// RLockAll takes every shard's read lock in ascending order (scheduling
// pass).
func (s *Store) RLockAll() {
	for i := range s.shards {
		s.shards[i].RLock()
	}
}

// RUnlockAll releases every shard's read lock.
func (s *Store) RUnlockAll() {
	for i := range s.shards {
		s.shards[i].RUnlock()
	}
}

// LockAll takes every shard's write lock in ascending order (tick-scope
// mutations).
func (s *Store) LockAll() {
	for i := range s.shards {
		s.shards[i].Lock()
	}
}

// UnlockAll releases every shard's write lock.
func (s *Store) UnlockAll() {
	for i := range s.shards {
		s.shards[i].Unlock()
	}
}

// ScheduleBatch runs one scheduler pass over the batch under read locks
// and returns the decisions together with the observed version of each
// chosen host — the optimistic-concurrency token the commit validates.
func (s *Store) ScheduleBatch(sc sched.Scheduler, batch []*trace.Pod, now int64) ([]sched.Decision, []uint64) {
	s.RLockAll()
	ds := sc.Schedule(batch, now)
	vers := make([]uint64, len(ds))
	for i, d := range ds {
		if d.NodeID >= 0 && d.NodeID < len(s.version) {
			vers[i] = s.version[d.NodeID]
		}
	}
	s.RUnlockAll()
	return ds, vers
}

// CommitStatus classifies one commit attempt.
type CommitStatus int

// Commit outcomes. CommitPlaced deployed on first attempt;
// CommitConflictPlaced deployed after winning the conservative
// re-validation of a version conflict; CommitConflictRejected lost the
// race and must be re-dispatched; CommitStale targeted a host that is no
// longer schedulable (crashed or cordoned after the scheduling pass).
const (
	CommitPlaced CommitStatus = iota
	CommitConflictPlaced
	CommitConflictRejected
	CommitStale
)

// CommitResult reports what Commit did.
type CommitResult struct {
	Status CommitStatus
	// Evicted holds BE pods preempted for an LSR admission; the caller
	// must re-dispatch them.
	Evicted []*cluster.PodState
}

// Commit deploys one scheduling decision through the optimistic commit
// path. onPlaced, when non-nil, runs while the shard lock is still held on
// successful deployment, so callers can update their own bookkeeping
// atomically with the placement (the engine updates pod records there).
func (s *Store) Commit(d sched.Decision, observed uint64, now int64, onPlaced func(evicted []*cluster.PodState)) CommitResult {
	if d.NodeID < 0 || d.NodeID >= len(s.version) {
		return CommitResult{Status: CommitConflictRejected}
	}
	sh := s.shardOf(d.NodeID)
	s.shards[sh].Lock()
	defer s.shards[sh].Unlock()

	n := s.c.Node(d.NodeID)
	if !n.Schedulable() {
		return CommitResult{Status: CommitStale}
	}
	status := CommitPlaced
	if s.version[d.NodeID] != observed {
		// Another worker placed onto this host after our scheduling pass
		// read it. First committer wins; we only deploy on top if the
		// conservative request-based rule still clearly admits the pod.
		status = CommitConflictPlaced
		if !requestFits(n, d.Pod) {
			return CommitResult{Status: CommitConflictRejected}
		}
	}

	var res CommitResult
	res.Status = status
	s.podMu.Lock()
	evicted, err := pipeline.Deploy(s.c, d, now)
	s.podMu.Unlock()
	res.Evicted = evicted
	if err != nil {
		// Already running (a duplicate decision surviving a race): treat
		// as a rejected commit; the engine's records keep it consistent.
		res.Status = CommitConflictRejected
		return res
	}
	s.version[d.NodeID]++
	if onPlaced != nil {
		onPlaced(res.Evicted)
	}
	return res
}

// Evict removes one running pod on behalf of the quota-preemption path and
// returns its state for re-dispatch, or nil when the pod is not running
// (it completed, expired, or was preempted in the race window). The caller
// must hold no shard lock; the shard is derived from the pod's own node.
func (s *Store) Evict(podID int, now int64) *cluster.PodState {
	// The pod index is only mutated under podMu, so a brief podMu-only
	// read pins the PodState and its node. The shard lock is then taken in
	// protocol order (shard, then podMu) and the liveness re-checked: the
	// pointer is stable, so a completion or re-placement in the window
	// flips Done and the eviction bails.
	s.podMu.Lock()
	ps := s.c.PodState(podID)
	var nodeID int
	if ps != nil && !ps.Done {
		nodeID = ps.NodeID
	} else {
		ps = nil
	}
	s.podMu.Unlock()
	if ps == nil {
		return nil
	}
	sh := s.shardOf(nodeID)
	s.shards[sh].Lock()
	s.podMu.Lock()
	if ps.Done || ps.NodeID != nodeID {
		ps = nil
	} else {
		s.c.Remove(podID, now, true)
	}
	s.podMu.Unlock()
	s.shards[sh].Unlock()
	return ps
}

// Remove removes a running pod under the owning shard's write lock and the
// pod-index lock (displacements driven from outside the tick).
func (s *Store) Remove(podID, nodeID int, now int64) {
	sh := s.shardOf(nodeID)
	s.shards[sh].Lock()
	s.podMu.Lock()
	s.c.Remove(podID, now, false)
	s.podMu.Unlock()
	s.shards[sh].Unlock()
}

// ReadNode runs fn with the node's shard read-locked.
func (s *Store) ReadNode(nodeID int, fn func(n *cluster.NodeState)) {
	sh := s.shardOf(nodeID)
	s.shards[sh].RLock()
	fn(s.c.Node(nodeID))
	s.shards[sh].RUnlock()
}

// requestFits is the conservative re-validation applied to conflicting
// commits: the pod's request must fit within remaining request-based
// capacity in both dimensions. Stricter than most schedulers' own
// admission (which over-commit), so a post-conflict deploy never admits
// more aggressively than the losing scheduler intended.
func requestFits(n *cluster.NodeState, p *trace.Pod) bool {
	load := n.ReqSum().Add(p.Request)
	capc := n.Capacity()
	return load.CPU <= capc.CPU && load.Mem <= capc.Mem
}
