package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// shardView is one shard's published epoch snapshot: an immutable
// copy-on-write array of node clones plus the version each clone was
// published at. The node→shard mapping (modular by default, contiguous
// blocks for federation partitions — see Store.blk and shardSpan) fixes
// where each node's clone sits in the array. Once stored through the
// atomic pointer a shardView is never mutated; publishers replace it
// wholesale.
type shardView struct {
	gen   uint64
	nodes []*cluster.NodeState
	vers  []uint64
}

// Store wraps a cluster with sharded locking, per-node versions, and
// per-shard epoch snapshots so N scheduler workers can score entirely
// lock-free and only serialize on commit — the online analogue of the
// §4.4 Deployment Module, shaped like the Kubernetes scheduler cache /
// Omega shared-state arrangement.
//
// Protocol:
//
//   - A scheduling pass takes ZERO locks: the worker loads each shard's
//     current shardView through its atomic pointer, adopts the clones
//     into its private view cluster, and scores against those. The
//     observed version of the chosen host comes from the snapshot.
//   - A commit takes one shard's write lock, validates the batch against
//     the live versions, applies winners, and republishes the shard's
//     view (gen+1) before unlocking — so the next snapshot load anywhere
//     sees the placements.
//   - Cluster-wide mutations (the physics tick, chaos injection, lifetime
//     expiry) take every write lock via LockAll AND quiesce snapshot
//     readers via BeginMutate/EndMutate: clones share usage-history ring
//     backings and PodState pointers with the live nodes, and the tick
//     writes those in place.
//   - The cluster's pod index is shared across shards, so the short
//     index-mutating sections (Place/Remove) additionally hold podMu.
//     Lock order is always shards-ascending, then podMu.
//
// Versions advance only when a placement consumes capacity on a node. A
// commit whose observed version is stale therefore means another worker
// placed onto the same host in the race window — exactly the conflict the
// Deployment Module arbitrates. The first committer won; the late commit
// re-validates against the conservative request-based rule and either
// deploys alongside (there is clearly room) or is rejected for
// re-dispatch. Batched validation applies the identical rule per decision
// in decision order, just under one lock acquisition per shard.
type Store struct {
	c      *cluster.Cluster
	shards []sync.RWMutex
	podMu  sync.Mutex
	// blk selects the node→shard mapping: 0 means modular (shard sh owns
	// IDs sh, sh+S, ...), >0 means contiguous blocks of blk IDs (shard sh
	// owns [sh*blk, (sh+1)*blk)). Modular aligns with the engine's
	// interleaved worker partitions; contiguous aligns with federation's
	// block-assigned node shards, so a partition's commits republish — and
	// its worker re-adopts — only the shards it actually owns.
	blk int
	// version[nodeID] is guarded by the owning shard's lock.
	version []uint64

	// views[sh] is shard sh's current epoch snapshot. Stored under the
	// shard's write lock; loaded lock-free by scheduling passes.
	views []atomic.Pointer[shardView]
	// epochs counts shard views ever published.
	epochs atomic.Int64

	// tickPending + scoreRef implement the atomics-only tick barrier:
	// snapshot readers hold a scoreRef while scoring, the tick raises
	// tickPending and waits for the count to drain before mutating the
	// shared backings, and readers spin (yielding) while a tick is
	// pending. No sync primitives — the zero-lock read path stays
	// mutex-free.
	tickPending atomic.Bool
	scoreRef    atomic.Int64

	// slabs[sh] holds shard sh's clone-publication slabs, guarded by the
	// shard's write lock (every publish happens under it).
	slabs []publishSlabs

	// Dirty capture: while a tick-scope mutation holds LockAll it flips
	// capturing on, and the store's observer on the live cluster records
	// every node whose accounting changed. Clones share usage history by
	// pointer, so after the mutations only these dirty nodes need
	// republishing — not the whole cluster. The flag is written under
	// LockAll and read under a shard lock (commit-path placements), which
	// are mutually exclusive, so plain fields suffice.
	capturing  bool
	dirtyIDs   []int
	dirtyGroup []int
	dirtySeen  []uint64
	dirtyGen   uint64
}

// publishSlabs batches the allocations a shard-view publication makes:
// node clones plus the copy-on-write nodes/vers arrays. Chunks become
// garbage only when every view referencing them has been replaced.
type publishSlabs struct {
	arena cluster.CloneArena
	nodes []*cluster.NodeState
	vers  []uint64
}

func (p *publishSlabs) nodeSlice(n int) []*cluster.NodeState {
	if len(p.nodes) < n {
		c := 4096
		if c < n {
			c = n
		}
		p.nodes = make([]*cluster.NodeState, c)
	}
	out := p.nodes[:n:n]
	p.nodes = p.nodes[n:]
	return out
}

func (p *publishSlabs) verSlice(n int) []uint64 {
	if len(p.vers) < n {
		c := 4096
		if c < n {
			c = n
		}
		p.vers = make([]uint64, c)
	}
	out := p.vers[:n:n]
	p.vers = p.vers[n:]
	return out
}

// NewStore builds a sharded store over the cluster. shards is clamped to
// [1, nodes]. block selects the contiguous node→shard mapping (see
// Store.blk). The initial epoch (gen 1) is published immediately so
// snapshot readers always find a view.
func NewStore(c *cluster.Cluster, shards int, block bool) *Store {
	n := len(c.Nodes())
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1 // empty cluster: keep one shard so locking still works
	}
	s := &Store{
		c:         c,
		shards:    make([]sync.RWMutex, shards),
		version:   make([]uint64, n),
		views:     make([]atomic.Pointer[shardView], shards),
		slabs:     make([]publishSlabs, shards),
		dirtySeen: make([]uint64, n),
	}
	if block {
		s.blk = (n + shards - 1) / shards
		if s.blk < 1 {
			s.blk = 1
		}
	}
	c.AddObserver(s.noteDirty)
	s.PublishAll()
	return s
}

// noteDirty is the store's observer on the live cluster: during a
// tick-scope dirty capture it records which nodes' accounting changed.
func (s *Store) noteDirty(nodeID int) {
	if s.capturing {
		s.dirtyIDs = append(s.dirtyIDs, nodeID)
	}
}

// beginDirtyCaptureLocked arms dirty capture. Caller holds LockAll.
func (s *Store) beginDirtyCaptureLocked() {
	s.capturing = true
	s.dirtyIDs = s.dirtyIDs[:0]
}

// publishDirtyLocked disarms dirty capture and republishes exactly the
// shards holding captured nodes — each with only its dirty members
// re-cloned. Caller holds LockAll. On a quiet tick (histories advanced,
// no accounting changed) this publishes nothing at all: clones see the
// new usage samples through the shared history pointers.
func (s *Store) publishDirtyLocked() {
	s.capturing = false
	if len(s.dirtyIDs) == 0 {
		return
	}
	s.dirtyGen++
	// Group dirty IDs by shard, deduplicating via the generation-stamped
	// seen array, then publish each affected shard once.
	for start := 0; start < len(s.dirtyIDs); start++ {
		first := s.dirtyIDs[start]
		if s.dirtySeen[first] == s.dirtyGen {
			continue
		}
		sh := s.shardOf(first)
		s.dirtyGroup = s.dirtyGroup[:0]
		for _, id := range s.dirtyIDs[start:] {
			if s.shardOf(id) != sh || s.dirtySeen[id] == s.dirtyGen {
				continue
			}
			s.dirtySeen[id] = s.dirtyGen
			s.dirtyGroup = append(s.dirtyGroup, id)
		}
		s.publishShardLocked(sh, s.dirtyGroup)
	}
}

// Cluster returns the wrapped cluster. Callers must hold the appropriate
// locks while reading or writing it.
func (s *Store) Cluster() *cluster.Cluster { return s.c }

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

func (s *Store) shardOf(nodeID int) int {
	if s.blk > 0 {
		return nodeID / s.blk
	}
	return nodeID % len(s.shards)
}

// shardSpan describes shard sh's node IDs: member i of the shard is node
// start + i*stride, for i in [0, count). Modular shards interleave
// (stride = shard count); block shards are contiguous (stride = 1). A
// trailing block shard may be empty (count 0) when the block size does
// not divide the fleet evenly.
func (s *Store) shardSpan(sh int) (start, stride, count int) {
	n := len(s.version)
	if s.blk > 0 {
		start = sh * s.blk
		count = n - start
		if count > s.blk {
			count = s.blk
		}
		if count < 0 {
			count = 0
		}
		return start, 1, count
	}
	nsh := len(s.shards)
	count = 0
	if n > sh {
		count = (n - sh + nsh - 1) / nsh
	}
	return sh, nsh, count
}

// view loads one shard's current epoch snapshot — the zero-lock entry
// point of a scheduling pass.
func (s *Store) view(sh int) *shardView { return s.views[sh].Load() }

// Epochs returns how many shard views have ever been published.
func (s *Store) Epochs() int64 { return s.epochs.Load() }

// publishShardLocked republishes shard sh's view with gen+1. Caller holds
// shard sh's write lock. dirty lists the node IDs to re-clone; nil means
// every node in the shard (ticks, recovery). Clean nodes keep their
// existing clones — copy-on-write, so a one-placement commit clones one
// node and copies two small slices.
func (s *Store) publishShardLocked(sh int, dirty []int) {
	start, stride, count := s.shardSpan(sh)
	old := s.views[sh].Load()
	slab := &s.slabs[sh]
	var nodes []*cluster.NodeState
	var vers []uint64
	if dirty == nil || old == nil {
		nodes = slab.nodeSlice(count)
		vers = slab.verSlice(count)
		for i := 0; i < count; i++ {
			id := start + i*stride
			nodes[i] = slab.arena.Clone(s.c.Node(id))
			vers[i] = s.version[id]
		}
	} else {
		nodes = slab.nodeSlice(len(old.nodes))
		vers = slab.verSlice(len(old.vers))
		copy(nodes, old.nodes)
		copy(vers, old.vers)
		for _, id := range dirty {
			i := (id - start) / stride
			nodes[i] = slab.arena.Clone(s.c.Node(id))
			vers[i] = s.version[id]
		}
	}
	gen := uint64(1)
	if old != nil {
		gen = old.gen + 1
	}
	s.views[sh].Store(&shardView{gen: gen, nodes: nodes, vers: vers})
	s.epochs.Add(1)
}

// publishAllLocked republishes every shard. Caller holds all shard write
// locks (LockAll).
func (s *Store) publishAllLocked() {
	for sh := range s.shards {
		s.publishShardLocked(sh, nil)
	}
}

// PublishAll republishes every shard's view from the live cluster —
// construction, and after recovery replay mutated the cluster outside
// the commit path.
func (s *Store) PublishAll() {
	s.LockAll()
	s.publishAllLocked()
	s.UnlockAll()
}

// BeginScore enters the zero-lock snapshot-read section. It spins (with
// yields) while a tick is pending, so clones' shared history backings are
// never read mid-mutation. Pure atomics — no mutex is acquired between
// here and batch staging.
func (s *Store) BeginScore() {
	for {
		s.scoreRef.Add(1)
		if !s.tickPending.Load() {
			return
		}
		s.scoreRef.Add(-1)
		for s.tickPending.Load() {
			runtime.Gosched()
		}
	}
}

// EndScore leaves the snapshot-read section.
func (s *Store) EndScore() { s.scoreRef.Add(-1) }

// BeginMutate quiesces snapshot readers ahead of in-place mutation of
// state the published clones share (the physics tick's usage-history and
// PodState writes). Pair with EndMutate. Readers hold no locks inside
// the scoring section and scoring batches are bounded, so the wait is
// short; commits need no quiescing (they only touch copied state under
// shard locks and republish).
func (s *Store) BeginMutate() {
	s.tickPending.Store(true)
	for s.scoreRef.Load() != 0 {
		runtime.Gosched()
	}
}

// EndMutate releases snapshot readers after a tick's mutations are
// published.
func (s *Store) EndMutate() { s.tickPending.Store(false) }

// ScheduleBatch runs one scheduler pass over the batch under read locks
// and returns the decisions together with the observed version of each
// chosen host. This is the legacy locked pass — the engine's workers now
// score lock-free against epoch views — retained for direct store users
// and the per-pod-commit A/B path.
func (s *Store) ScheduleBatch(sc sched.Scheduler, batch []*trace.Pod, now int64) ([]sched.Decision, []uint64) {
	s.RLockAll()
	ds := sc.Schedule(batch, now)
	vers := make([]uint64, len(ds))
	for i, d := range ds {
		if d.NodeID >= 0 && d.NodeID < len(s.version) {
			vers[i] = s.version[d.NodeID]
		}
	}
	s.RUnlockAll()
	return ds, vers
}

// RLockAll takes every shard's read lock in ascending order.
func (s *Store) RLockAll() {
	for i := range s.shards {
		s.shards[i].RLock()
	}
}

// RUnlockAll releases every shard's read lock.
func (s *Store) RUnlockAll() {
	for i := range s.shards {
		s.shards[i].RUnlock()
	}
}

// LockAll takes every shard's write lock in ascending order (tick-scope
// mutations).
func (s *Store) LockAll() {
	for i := range s.shards {
		s.shards[i].Lock()
	}
}

// UnlockAll releases every shard's write lock.
func (s *Store) UnlockAll() {
	for i := range s.shards {
		s.shards[i].Unlock()
	}
}

// CommitStatus classifies one commit attempt.
type CommitStatus int

// Commit outcomes. CommitPlaced deployed on first attempt;
// CommitConflictPlaced deployed after winning the conservative
// re-validation of a version conflict; CommitConflictRejected lost the
// race and must be re-dispatched; CommitStale targeted a host that is no
// longer schedulable (crashed or cordoned after the scheduling pass).
const (
	CommitPlaced CommitStatus = iota
	CommitConflictPlaced
	CommitConflictRejected
	CommitStale
)

// CommitResult reports what a commit did.
type CommitResult struct {
	Status CommitStatus
	// Evicted holds BE pods preempted for an LSR admission; the caller
	// must re-dispatch them.
	Evicted []*cluster.PodState
}

// commitLocked is the validation + deploy core shared by the per-pod and
// batched commit paths. Caller holds the target's shard write lock AND
// podMu (the batched path amortizes both over a whole shard group).
func (s *Store) commitLocked(d sched.Decision, observed uint64, now int64, onPlaced func(evicted []*cluster.PodState)) CommitResult {
	n := s.c.Node(d.NodeID)
	if !n.Schedulable() {
		return CommitResult{Status: CommitStale}
	}
	status := CommitPlaced
	if s.version[d.NodeID] != observed {
		// Another worker placed onto this host after our scheduling pass
		// read it. First committer wins; we only deploy on top if the
		// conservative request-based rule still clearly admits the pod.
		status = CommitConflictPlaced
		if !requestFits(n, d.Pod) {
			return CommitResult{Status: CommitConflictRejected}
		}
	}

	var res CommitResult
	res.Status = status
	evicted, err := pipeline.Deploy(s.c, d, now)
	res.Evicted = evicted
	if err != nil {
		// Already running (a duplicate decision surviving a race): treat
		// as a rejected commit; the engine's records keep it consistent.
		res.Status = CommitConflictRejected
		return res
	}
	s.version[d.NodeID]++
	if onPlaced != nil {
		onPlaced(res.Evicted)
	}
	return res
}

// Commit deploys one scheduling decision through the optimistic commit
// path and republishes the node's shard view. onPlaced, when non-nil,
// runs while the shard lock is still held on successful deployment, so
// callers can update their own bookkeeping atomically with the placement
// (the engine updates pod records there).
func (s *Store) Commit(d sched.Decision, observed uint64, now int64, onPlaced func(evicted []*cluster.PodState)) CommitResult {
	if d.NodeID < 0 || d.NodeID >= len(s.version) {
		return CommitResult{Status: CommitConflictRejected}
	}
	sh := s.shardOf(d.NodeID)
	s.shards[sh].Lock()
	s.podMu.Lock()
	res := s.commitLocked(d, observed, now, onPlaced)
	s.podMu.Unlock()
	if res.Status == CommitPlaced || res.Status == CommitConflictPlaced || len(res.Evicted) > 0 {
		one := [1]int{d.NodeID}
		s.publishShardLocked(sh, one[:])
	}
	s.shards[sh].Unlock()
	return res
}

// CommitScratch holds one worker's reusable batched-commit buffers.
type CommitScratch struct {
	dirty []int
	bumps map[int]uint64
}

// CommitBatch validates and applies a whole batch of staged decisions,
// taking each target shard's write lock exactly once: decisions are
// grouped by shard (ascending), validated in decision order within the
// group under the identical first-committer-wins rule Commit applies,
// winners deployed, and the shard's view republished before unlock.
// res[i] is filled for every decision with a valid NodeID; decisions the
// scheduler left unplaced (NodeID < 0) are untouched and out-of-range
// NodeIDs are rejected. bumps tracks the batch's own commits per node so
// stacking two pods on one host never reads as a conflict with itself —
// the same semantics the per-pod path gets from the engine's bump map.
// podMu is held once around each shard group rather than per deploy, so a
// group's placements cost two lock acquisitions total. onPlaced runs
// under the shard lock (and podMu), with the decision's index; groupDone,
// when non-nil, runs after each shard group's commits with podMu released
// but the shard lock still held — callers use it to close out their own
// per-group bookkeeping (the engine batches record-lock acquisition).
func (s *Store) CommitBatch(ds []sched.Decision, observed []uint64, now int64, res []CommitResult, scr *CommitScratch, onPlaced func(i int, evicted []*cluster.PodState), groupDone func()) {
	if scr.bumps == nil {
		scr.bumps = make(map[int]uint64, 16)
	} else {
		clear(scr.bumps)
	}
	nsh := len(s.shards)
	for i := range ds {
		if id := ds[i].NodeID; id >= len(s.version) {
			res[i] = CommitResult{Status: CommitConflictRejected}
		}
	}
	for sh := 0; sh < nsh; sh++ {
		locked := false
		scr.dirty = scr.dirty[:0]
		for i := range ds {
			d := &ds[i]
			if d.NodeID < 0 || d.NodeID >= len(s.version) || s.shardOf(d.NodeID) != sh {
				continue
			}
			if !locked {
				s.shards[sh].Lock()
				s.podMu.Lock()
				locked = true
			}
			idx := i
			r := s.commitLocked(*d, observed[i]+scr.bumps[d.NodeID], now, func(evicted []*cluster.PodState) {
				onPlaced(idx, evicted)
			})
			res[i] = r
			if r.Status == CommitPlaced || r.Status == CommitConflictPlaced {
				scr.bumps[d.NodeID]++
				scr.dirty = append(scr.dirty, d.NodeID)
			} else if len(r.Evicted) > 0 {
				scr.dirty = append(scr.dirty, d.NodeID)
			}
		}
		if locked {
			s.podMu.Unlock()
			if groupDone != nil {
				groupDone()
			}
			s.publishShardLocked(sh, scr.dirty)
			s.shards[sh].Unlock()
		}
	}
}

// Evict removes one running pod on behalf of the quota-preemption path and
// returns its state for re-dispatch, or nil when the pod is not running
// (it completed, expired, or was preempted in the race window). The caller
// must hold no shard lock; the shard is derived from the pod's own node.
func (s *Store) Evict(podID int, now int64) *cluster.PodState {
	// The pod index is only mutated under podMu, so a brief podMu-only
	// read pins the PodState and its node. The shard lock is then taken in
	// protocol order (shard, then podMu) and the liveness re-checked: the
	// pointer is stable, so a completion or re-placement in the window
	// flips Done and the eviction bails.
	s.podMu.Lock()
	ps := s.c.PodState(podID)
	var nodeID int
	if ps != nil && !ps.Done {
		nodeID = ps.NodeID
	} else {
		ps = nil
	}
	s.podMu.Unlock()
	if ps == nil {
		return nil
	}
	sh := s.shardOf(nodeID)
	s.shards[sh].Lock()
	s.podMu.Lock()
	if ps.Done || ps.NodeID != nodeID {
		ps = nil
	} else {
		s.c.Remove(podID, now, true)
	}
	s.podMu.Unlock()
	if ps != nil {
		one := [1]int{nodeID}
		s.publishShardLocked(sh, one[:])
	}
	s.shards[sh].Unlock()
	return ps
}

// Remove removes a running pod under the owning shard's write lock and the
// pod-index lock (displacements driven from outside the tick), then
// republishes the node's shard view.
func (s *Store) Remove(podID, nodeID int, now int64) {
	sh := s.shardOf(nodeID)
	s.shards[sh].Lock()
	s.podMu.Lock()
	s.c.Remove(podID, now, false)
	s.podMu.Unlock()
	one := [1]int{nodeID}
	s.publishShardLocked(sh, one[:])
	s.shards[sh].Unlock()
}

// ReadNode runs fn with the node's shard read-locked.
func (s *Store) ReadNode(nodeID int, fn func(n *cluster.NodeState)) {
	sh := s.shardOf(nodeID)
	s.shards[sh].RLock()
	fn(s.c.Node(nodeID))
	s.shards[sh].RUnlock()
}

// requestFits is the conservative re-validation applied to conflicting
// commits: the pod's request must fit within remaining request-based
// capacity in both dimensions. Stricter than most schedulers' own
// admission (which over-commit), so a post-conflict deploy never admits
// more aggressively than the losing scheduler intended.
func requestFits(n *cluster.NodeState, p *trace.Pod) bool {
	load := n.ReqSum().Add(p.Request)
	capc := n.Capacity()
	return load.CPU <= capc.CPU && load.Mem <= capc.Mem
}
