package engine

import (
	"unisched/internal/trace"
)

// Digest is the cheap per-partition load summary a federation coordinator
// routes on: per-dimension log2 headroom-bucket histograms over the
// partition's active nodes, the top-K largest free vectors (so one huge
// pod is not routed into a partition of confetti), and the queue gauges
// that proxy routing pressure. It is built lock-free from the store's
// published epoch snapshots — the decision path of the coordinator never
// takes a partition lock.
type Digest struct {
	// Gen sums the published shard generations: a change detector, not a
	// version (two digests with equal Gen are almost certainly equal).
	Gen uint64 `json:"gen"`
	// ActiveNodes counts schedulable (Up) nodes — the partition's size.
	ActiveNodes int `json:"active_nodes"`
	// FreeCPU and FreeMem sum request-able headroom over active nodes;
	// CapCPU and CapMem sum their capacities. 1-Free/Cap is the
	// utilization the rebalancer compares across partitions.
	FreeCPU float64 `json:"free_cpu"`
	FreeMem float64 `json:"free_mem"`
	CapCPU  float64 `json:"cap_cpu"`
	CapMem  float64 `json:"cap_mem"`
	// CPU[b] and Mem[b] count active nodes whose free capacity in that
	// dimension lies in bucket b: [digestBase<<b, digestBase<<(b+1)).
	CPU [DigestBuckets]int32 `json:"cpu"`
	Mem [DigestBuckets]int32 `json:"mem"`
	// TopK holds the largest free vectors, descending by CPU+Mem sum —
	// the existence check for pods too big for the histogram's resolution.
	TopK []trace.Resources `json:"top_k,omitempty"`
	// QueueDepth and Backlogged are the partition's admission-queue and
	// retry-backoff gauges at digest time: the routing pressure penalty.
	QueueDepth int `json:"queue_depth"`
	Backlogged int `json:"backlogged"`
}

// Digest resolution: 16 power-of-two buckets starting at 1/64 core (or
// memory unit) cover free capacities from 0.015625 to beyond 512 — wider
// than any node in the traces — and DigestTopK free vectors ride along.
const (
	DigestBuckets = 16
	DigestTopK    = 8
	digestBase    = 1.0 / 64
)

// digestBucket returns the bucket whose range contains v, or -1 when v is
// below the smallest threshold (no usable headroom).
func digestBucket(v float64) int {
	if v < digestBase {
		return -1
	}
	b := 0
	for bound := digestBase * 2; b < DigestBuckets-1 && v >= bound; b++ {
		bound *= 2
	}
	return b
}

// digestCeilBucket returns the smallest bucket whose lower edge is >= r:
// every node counted in it or above has free >= r in that dimension.
func digestCeilBucket(r float64) int {
	if r <= digestBase {
		return 0
	}
	b := 0
	for bound := digestBase; b < DigestBuckets; b++ {
		if bound >= r {
			return b
		}
		bound *= 2
	}
	return DigestBuckets
}

// EstimateFit returns a cheap estimate of how many active nodes could
// host req: the min over dimensions of the conservative suffix counts,
// with the top-K free vectors as a fallback existence check (a pod larger
// than every bucket edge can still fit on a top-K node). Zero means "this
// partition almost certainly rejects the pod".
func (d *Digest) EstimateFit(req trace.Resources) int {
	cb, mb := digestCeilBucket(req.CPU), digestCeilBucket(req.Mem)
	var nc, nm int32
	for b := cb; b < DigestBuckets; b++ {
		nc += d.CPU[b]
	}
	for b := mb; b < DigestBuckets; b++ {
		nm += d.Mem[b]
	}
	n := int(nc)
	if int(nm) < n {
		n = int(nm)
	}
	if n > 0 {
		return n
	}
	for _, f := range d.TopK {
		if f.CPU >= req.CPU && f.Mem >= req.Mem {
			return 1
		}
	}
	return 0
}

// Digest assembles the partition digest from the published epoch
// snapshots: no shard lock, no worker interference — the same lock-free
// read path the scoring workers use. Cost is one pass over the published
// clones, so callers cache it per tick (federation.Partition does).
func (e *Engine) Digest() Digest {
	var d Digest
	var top [DigestTopK]trace.Resources
	nTop := 0
	nsh := e.store.Shards()
	for sh := 0; sh < nsh; sh++ {
		v := e.store.view(sh)
		if v == nil {
			continue
		}
		d.Gen += v.gen
		for _, n := range v.nodes {
			if n == nil || !n.Schedulable() {
				continue
			}
			d.ActiveNodes++
			cap, req := n.Capacity(), n.ReqSum()
			fc, fm := cap.CPU-req.CPU, cap.Mem-req.Mem
			if fc < 0 {
				fc = 0
			}
			if fm < 0 {
				fm = 0
			}
			d.FreeCPU += fc
			d.FreeMem += fm
			d.CapCPU += cap.CPU
			d.CapMem += cap.Mem
			if b := digestBucket(fc); b >= 0 {
				d.CPU[b]++
			}
			if b := digestBucket(fm); b >= 0 {
				d.Mem[b]++
			}
			// Keep the K largest free vectors by CPU+Mem sum, insertion
			// sort on a fixed array: K is 8 and most nodes lose at slot 0.
			s := fc + fm
			if nTop < len(top) || s > top[nTop-1].CPU+top[nTop-1].Mem {
				i := nTop
				if i == len(top) {
					i--
				}
				for ; i > 0 && s > top[i-1].CPU+top[i-1].Mem; i-- {
					top[i] = top[i-1]
				}
				top[i] = trace.Resources{CPU: fc, Mem: fm}
				if nTop < len(top) {
					nTop++
				}
			}
		}
	}
	if nTop > 0 {
		d.TopK = append(d.TopK, top[:nTop]...)
	}
	d.QueueDepth = e.q.len()
	e.wMu.Lock()
	d.Backlogged = len(e.waiting)
	e.wMu.Unlock()
	return d
}
