package engine

import (
	"testing"
	"time"

	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

func alibabaFactory(c *cluster.Cluster, worker int, seed int64) sched.Scheduler {
	return sched.NewAlibabaLike(c, seed)
}

func smallWorkload(t *testing.T) *trace.Workload {
	t.Helper()
	cfg := trace.SmallConfig()
	return trace.MustGenerate(cfg)
}

// runEngine submits the whole workload to a fresh engine and drains it.
func runEngine(t *testing.T, w *trace.Workload, cfg Config) (*Engine, Snapshot) {
	t.Helper()
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	if cfg.Horizon == 0 {
		cfg.Horizon = w.Horizon
	}
	cfg.BlockOnFull = true
	e := New(c, alibabaFactory, cfg)
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatalf("submit pod %d: %v", p.ID, err)
		}
	}
	if !e.Drain(60 * time.Second) {
		e.Stop()
		t.Fatalf("engine did not settle: %+v", e.Snapshot())
	}
	e.Stop()
	return e, e.Snapshot()
}

func checkConservation(t *testing.T, w *trace.Workload, sn Snapshot) {
	t.Helper()
	if sn.Submitted != int64(len(w.Pods)) {
		t.Fatalf("submitted %d, want %d", sn.Submitted, len(w.Pods))
	}
	if lost := sn.Lost(); lost != 0 {
		t.Fatalf("lost %d submissions; states %v", lost, sn.States)
	}
	if sn.Placed == 0 {
		t.Fatal("engine placed nothing")
	}
}

func TestEngineDrainsWorkload(t *testing.T) {
	w := smallWorkload(t)
	e, sn := runEngine(t, w, Config{Workers: 1})
	checkConservation(t, w, sn)
	if sn.States["queued"] != int64(sn.Pending) {
		t.Fatalf("queued records %d != pending %d", sn.States["queued"], sn.Pending)
	}
	// The utilization series must cover the horizon like a sim run does.
	ser := e.Series()
	if len(ser.Times) == 0 {
		t.Fatal("no utilization series recorded")
	}
	if got := ser.Times[len(ser.Times)-1]; got < w.Horizon-2*trace.SampleInterval {
		t.Fatalf("series stops at %d, horizon %d", got, w.Horizon)
	}
}

func TestEngineParallelWorkersConserve(t *testing.T) {
	w := smallWorkload(t)
	_, sn := runEngine(t, w, Config{Workers: 4, Shards: 8})
	checkConservation(t, w, sn)
}

func TestEnginePartitionedWorkersConserve(t *testing.T) {
	w := smallWorkload(t)
	_, sn := runEngine(t, w, Config{Workers: 4, Shards: 8, PartitionNodes: true})
	checkConservation(t, w, sn)
}

func TestEngineChaosConserves(t *testing.T) {
	w := smallWorkload(t)
	inj := chaos.NewInjector(7, nil, chaos.DefaultRates())
	_, sn := runEngine(t, w, Config{Workers: 2, Chaos: inj})
	checkConservation(t, w, sn)
	if sn.Displaced == 0 {
		t.Log("warning: chaos displaced nothing at this scale")
	}
	// Displaced pods either came back, exhausted their budget, or are
	// pending — never vanished (Lost()==0 above already guarantees it).
}

func TestEngineShedsUnderBackpressure(t *testing.T) {
	w := testWorkload(t, 2, 64, 0.25)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{QueueCap: 4, Horizon: 3600})
	// Not started: the queue fills to capacity, the rest shed.
	shed := 0
	for _, p := range w.Pods {
		if err := e.Submit(p); err == ErrQueueFull {
			shed++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if shed != len(w.Pods)-4 {
		t.Fatalf("shed %d, want %d", shed, len(w.Pods)-4)
	}
	e.Start()
	if !e.Drain(10 * time.Second) {
		t.Fatalf("did not settle: %+v", e.Snapshot())
	}
	e.Stop()
	sn := e.Snapshot()
	if sn.Lost() != 0 {
		t.Fatalf("lost %d; states %v", sn.Lost(), sn.States)
	}
	if sn.Shed != int64(shed) || sn.States["shed"] != int64(shed) {
		t.Fatalf("shed accounting: metric %d, state %d, want %d", sn.Shed, sn.States["shed"], shed)
	}
	if sn.ShedBySLO["LS"] != int64(shed) {
		t.Fatalf("shed_by_slo %v", sn.ShedBySLO)
	}
}

func TestEngineRejectsBadSubmissions(t *testing.T) {
	w := testWorkload(t, 2, 2, 0.25)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{})
	if err := e.Submit(&trace.Pod{ID: 99, AppID: "nope"}); err != ErrNotLinked {
		t.Fatalf("unlinked submit = %v, want ErrNotLinked", err)
	}
	if err := e.Submit(w.Pods[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(w.Pods[0]); err != ErrDuplicate {
		t.Fatalf("duplicate submit = %v, want ErrDuplicate", err)
	}
	e.Start()
	e.Stop()
	if err := e.Submit(w.Pods[1]); err != ErrClosed {
		t.Fatalf("submit after stop = %v, want ErrClosed", err)
	}
	sn := e.Snapshot()
	if sn.Submitted != 1 || sn.Lost() != 0 {
		t.Fatalf("accounting after rejects: %+v", sn.States)
	}
}

func TestEngineStatusQueries(t *testing.T) {
	w := testWorkload(t, 4, 4, 0.25)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{Horizon: 3600})
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Drain(10 * time.Second) {
		t.Fatal("did not settle")
	}
	e.Stop()

	st, ok := e.PodStatus(w.Pods[0].ID)
	if !ok || st.Phase != "placed" || st.Node < 0 {
		t.Fatalf("pod status = %+v, ok=%v", st, ok)
	}
	if _, ok := e.PodStatus(12345); ok {
		t.Fatal("unknown pod reported present")
	}
	ns := e.NodeStatuses()
	if len(ns) != 4 {
		t.Fatalf("got %d node statuses", len(ns))
	}
	pods := 0
	for _, n := range ns {
		pods += n.Pods
	}
	if pods != 4 {
		t.Fatalf("nodes hold %d pods, want 4", pods)
	}
	if _, ok := e.NodeStatus(99); ok {
		t.Fatal("bogus node reported present")
	}
}
