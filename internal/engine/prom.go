package engine

import (
	"io"
	"net/http"
	"sort"

	"unisched/internal/obs"
	"unisched/internal/trace"
)

// WritePrometheus renders every engine counter, the decision-latency
// histogram, the merged pipeline stage stats, and the queue gauges in
// Prometheus text exposition format (0.0.4), using only the standard
// library. Scrapes take the same snapshots the JSON endpoint takes; the
// scheduling hot path is never touched.
func (e *Engine) WritePrometheus(w io.Writer) error {
	sn := e.Snapshot()
	x := obs.NewExposition(w)

	x.Counter("unisched_submitted_total", "Pods ever submitted to the engine.", float64(sn.Submitted))
	x.Counter("unisched_accepted_total", "Submissions admitted to the queue.", float64(sn.Accepted))
	x.Counter("unisched_placed_total", "Pods placed on a host.", float64(sn.Placed))
	x.Counter("unisched_completed_total", "BE pods that finished their work.", float64(sn.Completed))
	x.Counter("unisched_expired_total", "Pods that reached their lifetime.", float64(sn.Expired))
	x.Counter("unisched_preempted_total", "BE pods evicted for LSR admission.", float64(sn.Preempted))
	x.Counter("unisched_displaced_total", "Pods removed while running (faults or preemption).", float64(sn.Displaced))
	x.Counter("unisched_exhausted_total", "Pods abandoned after the displacement budget.", float64(sn.Exhausted))
	x.Counter("unisched_retries_total", "Failed scheduling attempts re-queued.", float64(sn.Retries))
	x.Counter("unisched_commit_conflicts_total", "Optimistic commits that hit a stale node version.", float64(sn.CommitConflicts))
	x.Counter("unisched_conflict_rejects_total", "Commits that lost re-validation after a conflict.", float64(sn.ConflictRejects))
	x.Counter("unisched_stale_rejects_total", "Commits onto no-longer-schedulable hosts.", float64(sn.StaleRejects))
	x.Counter("unisched_epochs_published_total", "Copy-on-write shard snapshots published.", float64(sn.EpochsPublished))
	x.Counter("unisched_batch_commits_total", "Batched commit-validation rounds.", float64(sn.BatchCommits))
	x.Counter("unisched_batch_conflicts_total", "Conflicts detected during batched commit validation.", float64(sn.BatchConflicts))
	x.Counter("unisched_steals_total", "Work-stealing transfers between scheduler workers.", float64(sn.Steals))

	x.Family("unisched_shed_total", "Submissions shed under backpressure, by SLO class.", "counter")
	emitBySLO(x, "unisched_shed_total", sn.ShedBySLO)
	x.Family("unisched_placed_by_slo_total", "Pods placed, by SLO class.", "counter")
	emitBySLO(x, "unisched_placed_by_slo_total", sn.PlacedBySLO)

	x.Family("unisched_wait_virtual_seconds_total", "Virtual seconds pods spent waiting before placement, by SLO class.", "counter")
	x.Family("unisched_wait_placements_total", "Placements contributing to the waiting-time sums, by SLO class.", "counter")
	for i := 0; i <= int(trace.SLOBE); i++ {
		slo := trace.SLO(i).String()
		if n := e.m.waitCount[i].Load(); n > 0 {
			x.Sample("unisched_wait_virtual_seconds_total", []obs.Label{{Name: "slo", Value: slo}}, float64(e.m.waitSum[i].Load()))
			x.Sample("unisched_wait_placements_total", []obs.Label{{Name: "slo", Value: slo}}, float64(n))
		}
	}

	x.Gauge("unisched_virtual_seconds", "The engine's virtual clock.", float64(sn.VirtualNow))
	x.Gauge("unisched_queue_depth", "Pods in the admission queue.", float64(sn.QueueDepth))
	x.Gauge("unisched_backlogged", "Pods sitting out a retry backoff.", float64(sn.Backlogged))
	x.Gauge("unisched_in_flight", "Pods inside a worker's scheduling batch.", float64(sn.InFlight))
	x.Gauge("unisched_pending", "Accepted pods not yet placed, shed, or exhausted.", float64(sn.Pending))
	x.Gauge("unisched_running", "Pods currently running on the cluster.", float64(sn.Running))

	var bounds [latBuckets - 1]float64
	var cum [latBuckets - 1]int64
	sum, total := e.m.decision.export(&bounds, &cum)
	x.Histogram("unisched_decision_seconds", "Per-pod scheduling decision latency.", bounds[:], cum[:], sum, total)

	if ps := sn.Pipeline; ps != nil {
		x.Counter("unisched_pipeline_decisions_total", "Placement-pipeline decisions.", float64(ps.Decisions))
		x.Counter("unisched_pipeline_placed_total", "Pipeline decisions that selected a host.", float64(ps.Placed))
		x.Counter("unisched_pipeline_preemptions_total", "LSR preemption placements.", float64(ps.Preemptions))
		x.Counter("unisched_pipeline_prefilter_rejects_total", "Pods rejected before any node was considered.", float64(ps.PrefilterRejects))
		x.Counter("unisched_pipeline_candidate_nodes_total", "Candidate-universe sizes summed over decisions.", float64(ps.CandidateNodes))
		x.Counter("unisched_pipeline_sampled_nodes_total", "Candidates surviving the Sample stage.", float64(ps.SampledNodes))
		x.Counter("unisched_pipeline_pruned_nodes_total", "Nodes skipped wholesale via headroom buckets.", float64(ps.PrunedNodes))
		x.Counter("unisched_pipeline_visited_nodes_total", "Per-node filter or eval executions.", float64(ps.VisitedNodes))
		x.Counter("unisched_pipeline_scored_nodes_total", "Score executions on admitted nodes.", float64(ps.ScoredNodes))
		x.Counter("unisched_pipeline_summary_hits_total", "Prediction-summary cache hits.", float64(ps.SummaryHits))
		x.Counter("unisched_pipeline_summary_appends_total", "Prediction-summary O(1) appends.", float64(ps.SummaryAppends))
		x.Counter("unisched_pipeline_summary_rebuilds_total", "Prediction-summary full rebuilds.", float64(ps.SummaryRebuilds))
		x.Family("unisched_pipeline_stage_seconds_total", "Time spent per pipeline stage.", "counter")
		stages := make([]string, 0, len(ps.StageMicros))
		for st := range ps.StageMicros {
			stages = append(stages, st)
		}
		sort.Strings(stages)
		for _, st := range stages {
			x.Sample("unisched_pipeline_stage_seconds_total", []obs.Label{{Name: "stage", Value: st}}, ps.StageMicros[st]/1e6)
		}
	}

	if js := sn.Journal; js != nil {
		x.Counter("unisched_journal_records_total", "Records appended to the write-ahead journal.", float64(js.Records))
		x.Counter("unisched_journal_bytes_total", "Bytes appended to the write-ahead journal.", float64(js.Bytes))
		x.Counter("unisched_journal_fsyncs_total", "Group-commit fsyncs issued by the journal.", float64(js.Fsyncs))
		x.Counter("unisched_journal_checkpoints_total", "Checkpoints written.", float64(js.Checkpoints))
		x.Gauge("unisched_journal_segments", "Live journal segment files.", float64(js.Segments))
		x.Gauge("unisched_journal_last_lsn", "Highest log sequence number appended.", float64(js.LastLSN))
		bounds, cum, fsum, ftotal := e.jr.FsyncHistogram()
		x.Histogram("unisched_journal_fsync_seconds", "Journal group-commit fsync latency.", bounds, cum, fsum, ftotal)
	}
	if rs := sn.Recovery; rs != nil {
		x.Gauge("unisched_recovery_checkpoint_lsn", "LSN of the checkpoint restored at boot.", float64(rs.CheckpointLSN))
		x.Gauge("unisched_recovery_replayed_records", "Journal records replayed on top of the checkpoint at boot.", float64(rs.ReplayedRecords))
		x.Gauge("unisched_recovery_truncated_bytes", "Bytes truncated from the journal's torn tail at boot.", float64(rs.TruncatedBytes))
		x.Gauge("unisched_recovery_corrupt_checkpoints", "Invalid checkpoint files skipped at boot.", float64(rs.CorruptCheckpoints))
		x.Gauge("unisched_recovery_duration_seconds", "Wall time of checkpoint restore plus tail replay.", rs.DurationMs/1e3)
	}

	if qs := sn.Quota; qs != nil {
		x.Counter("unisched_quota_shed_total", "Submissions shed by the quota gate (over max).", float64(sn.QuotaShed))
		x.Counter("unisched_quota_preempted_total", "BE pods evicted by cross-queue quota preemption.", float64(sn.QuotaPreempted))
		x.Family("unisched_tenant_guaranteed_cpu", "Tenant guaranteed CPU cores.", "gauge")
		x.Family("unisched_tenant_guaranteed_mem", "Tenant guaranteed memory.", "gauge")
		x.Family("unisched_tenant_admitted_cpu", "Tenant admitted CPU cores (queued plus running).", "gauge")
		x.Family("unisched_tenant_admitted_mem", "Tenant admitted memory (queued plus running).", "gauge")
		x.Family("unisched_tenant_placed_cpu", "Tenant CPU cores currently placed on hosts.", "gauge")
		x.Family("unisched_tenant_placed_mem", "Tenant memory currently placed on hosts.", "gauge")
		x.Family("unisched_tenant_fair_share", "Tenant dominant-resource fair share (placed over guaranteed; -1 = over share with no guarantee).", "gauge")
		x.Family("unisched_tenant_placed_pods_total", "Pods placed, by tenant.", "counter")
		x.Family("unisched_tenant_shed_pods_total", "Submissions shed by the quota gate, by tenant.", "counter")
		x.Family("unisched_tenant_preempted_pods_total", "BE pods quota-preempted, by tenant.", "counter")
		for _, tn := range qs.Root.Children {
			lbl := []obs.Label{{Name: "tenant", Value: tn.Name}}
			x.Sample("unisched_tenant_guaranteed_cpu", lbl, tn.Guaranteed.CPU)
			x.Sample("unisched_tenant_guaranteed_mem", lbl, tn.Guaranteed.Mem)
			x.Sample("unisched_tenant_admitted_cpu", lbl, tn.Admitted.CPU)
			x.Sample("unisched_tenant_admitted_mem", lbl, tn.Admitted.Mem)
			x.Sample("unisched_tenant_placed_cpu", lbl, tn.Placed.CPU)
			x.Sample("unisched_tenant_placed_mem", lbl, tn.Placed.Mem)
			x.Sample("unisched_tenant_fair_share", lbl, tn.FairShare)
			x.Sample("unisched_tenant_placed_pods_total", lbl, float64(tn.PlacedPods))
			x.Sample("unisched_tenant_shed_pods_total", lbl, float64(tn.ShedPods))
			x.Sample("unisched_tenant_preempted_pods_total", lbl, float64(tn.Preempted))
		}
	}

	if e.lc != nil {
		emitStageHist(x, e.lc, obs.StagePlaced, "unisched_pod_e2e_seconds",
			"End-to-end wall latency from submit to placement.")
		emitStageHist(x, e.lc, obs.StageQueueWait, "unisched_stage_queue_wait_seconds",
			"Wall time pods spent waiting in the admission queue (per dequeue).")
		emitStageHist(x, e.lc, obs.StageSched, "unisched_stage_sched_seconds",
			"Per-pod share of the zero-lock scheduling pass.")
		emitStageHist(x, e.lc, obs.StageCommit, "unisched_stage_commit_seconds",
			"Batched commit-validation window covering each decision.")
		emitStageHist(x, e.lc, obs.StageFsyncWait, "unisched_stage_fsync_wait_seconds",
			"Wall time from journal append to the covering group fsync.")
		x.Counter("unisched_lifecycle_events_total", "Lifecycle events recorded to the flight ring.", float64(e.lc.Total()))
	}

	if e.rec != nil {
		started, committed := e.rec.Counts()
		x.Counter("unisched_traces_started_total", "Decision traces sampled.", float64(started))
		x.Counter("unisched_traces_committed_total", "Decision traces published to the ring.", float64(committed))
		x.Gauge("unisched_traces_retained", "Decision traces currently in the ring buffer.", float64(e.rec.Len()))
	}
	x.Gauge("unisched_history_samples", "Cluster-telemetry samples currently retained.", float64(e.hist.Len()))

	return x.Flush()
}

// emitStageHist writes one lifecycle stage histogram as a Prometheus
// histogram family.
func emitStageHist(x *obs.Exposition, lc *obs.Lifecycle, stage, name, help string) {
	bounds, cum, sum, total := lc.StageHistogram(stage).Export()
	x.Histogram(name, help, bounds, cum, sum, total)
}

// emitBySLO writes one sample per SLO class in stable (index) order.
func emitBySLO(x *obs.Exposition, name string, bySLO map[string]int64) {
	for i := 0; i <= int(trace.SLOBE); i++ {
		slo := trace.SLO(i).String()
		if v, ok := bySLO[slo]; ok {
			x.Sample(name, []obs.Label{{Name: "slo", Value: slo}}, float64(v))
		}
	}
}

// MetricsHandler serves WritePrometheus over HTTP — mounted at /metrics
// by cmd/unischedd and usable directly in tests.
func (e *Engine) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := e.WritePrometheus(w); err != nil {
			// Headers are already gone; nothing useful to do but note it.
			e.log.Warn("metrics write failed", "err", err)
		}
	})
}
