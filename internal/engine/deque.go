package engine

import "sync"

// wdeque is one worker's private run queue for work stealing: the owner
// refills it from the shared admission queue in chunks and pops batches
// from the front; idle peers steal half of the tail. The mutex guards
// only these O(batch) transfers — it is never held during scoring, and
// the zero-lock property of the snapshot read path (no sync primitives
// between snapshot load and batch staging) is unaffected because every
// deque operation happens before the snapshot load.
type wdeque struct {
	mu    sync.Mutex
	items []item
	head  int
}

// size returns how many items are queued.
func (d *wdeque) size() int {
	d.mu.Lock()
	n := len(d.items) - d.head
	d.mu.Unlock()
	return n
}

// pushBack appends items at the tail (owner refill, or landing stolen
// work).
func (d *wdeque) pushBack(its []item) {
	if len(its) == 0 {
		return
	}
	d.mu.Lock()
	d.items = append(d.items, its...)
	d.mu.Unlock()
}

// popFront moves up to max items from the front into buf (owner only),
// preserving FIFO order. The head compacts amortized-O(1) like the
// admission queue's lanes.
func (d *wdeque) popFront(max int, buf []item) []item {
	d.mu.Lock()
	n := len(d.items) - d.head
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		buf = append(buf, d.items[d.head])
		d.items[d.head] = item{}
		d.head++
	}
	if d.head == len(d.items) {
		d.items = d.items[:0]
		d.head = 0
	} else if d.head > 64 && d.head*2 >= len(d.items) {
		k := copy(d.items, d.items[d.head:])
		d.items = d.items[:k]
		d.head = 0
	}
	d.mu.Unlock()
	return buf
}

// stealTail moves the back half of the deque into buf (a thief), leaving
// the owner the front half it is about to process. Deques with fewer than
// two items are not worth splitting.
func (d *wdeque) stealTail(buf []item) []item {
	d.mu.Lock()
	n := len(d.items) - d.head
	if n < 2 {
		d.mu.Unlock()
		return buf
	}
	take := n / 2
	start := len(d.items) - take
	buf = append(buf, d.items[start:]...)
	for i := start; i < len(d.items); i++ {
		d.items[i] = item{}
	}
	d.items = d.items[:start]
	d.mu.Unlock()
	return buf
}
