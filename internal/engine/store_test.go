package engine

import (
	"sync"
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// testWorkload builds a tiny hand-rolled workload: nodes of unit capacity
// and one LS app whose pods request (req, req).
func testWorkload(t testing.TB, nodes, pods int, req float64) *trace.Workload {
	t.Helper()
	app := &trace.App{
		ID: "app", SLO: trace.SLOLS,
		Request: trace.Resources{CPU: req, Mem: req},
		Limit:   trace.Resources{CPU: req, Mem: req},
		MemUtil: 0.5, CPUBaseUtil: 0.3, Affinity: -1,
	}
	w := &trace.Workload{Apps: []*trace.App{app}, Horizon: 3600, Seed: 1}
	for i := 0; i < nodes; i++ {
		w.Nodes = append(w.Nodes, &trace.Node{ID: i, Capacity: trace.Resources{CPU: 1, Mem: 1}})
	}
	for i := 0; i < pods; i++ {
		p := &trace.Pod{
			ID: i, AppID: "app", SLO: trace.SLOLS,
			Request: app.Request, Limit: app.Limit,
			CPUScale: 1, MemScale: 1,
		}
		if err := w.LinkPod(p); err != nil {
			t.Fatal(err)
		}
		w.Pods = append(w.Pods, p)
	}
	return w
}

func dec(p *trace.Pod, node int) sched.Decision {
	return sched.Decision{Pod: p, NodeID: node}
}

func TestCommitBumpsVersionAndPlaces(t *testing.T) {
	w := testWorkload(t, 2, 2, 0.3)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	s := NewStore(c, 2, false)

	res := s.Commit(dec(w.Pods[0], 0), 0, 0, nil)
	if res.Status != CommitPlaced {
		t.Fatalf("status = %v, want CommitPlaced", res.Status)
	}
	if s.version[0] != 1 {
		t.Fatalf("version = %d, want 1", s.version[0])
	}
	if len(c.Node(0).Pods()) != 1 {
		t.Fatal("pod not on node")
	}
}

func TestCommitConflictRevalidates(t *testing.T) {
	w := testWorkload(t, 1, 4, 0.3)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	s := NewStore(c, 1, false)

	// Both "workers" observed version 0; the first commit wins.
	if res := s.Commit(dec(w.Pods[0], 0), 0, 0, nil); res.Status != CommitPlaced {
		t.Fatalf("first commit = %v", res.Status)
	}
	// Second commit is stale but the pod still clearly fits: deployed.
	if res := s.Commit(dec(w.Pods[1], 0), 0, 0, nil); res.Status != CommitConflictPlaced {
		t.Fatalf("conflicting fitting commit = %v, want CommitConflictPlaced", res.Status)
	}
	// Third fits too (0.9 total), fourth would exceed capacity: rejected.
	if res := s.Commit(dec(w.Pods[2], 0), 0, 0, nil); res.Status != CommitConflictPlaced {
		t.Fatalf("third commit = %v", res.Status)
	}
	if res := s.Commit(dec(w.Pods[3], 0), 0, 0, nil); res.Status != CommitConflictRejected {
		t.Fatalf("overflowing commit = %v, want CommitConflictRejected", res.Status)
	}
	if got := len(c.Node(0).Pods()); got != 3 {
		t.Fatalf("node holds %d pods, want 3", got)
	}
}

func TestCommitStaleOnUnschedulableNode(t *testing.T) {
	w := testWorkload(t, 2, 1, 0.3)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	s := NewStore(c, 2, false)

	c.FailNode(1, 0)
	if res := s.Commit(dec(w.Pods[0], 1), 0, 0, nil); res.Status != CommitStale {
		t.Fatalf("commit onto down node = %v, want CommitStale", res.Status)
	}
	if res := s.Commit(dec(w.Pods[0], 99), 0, 0, nil); res.Status != CommitConflictRejected {
		t.Fatalf("commit onto bogus node = %v, want CommitConflictRejected", res.Status)
	}
}

// TestConcurrentCommitsConserveCapacity hammers one node from many
// goroutines with stale versions; under -race this exercises the locking,
// and the request-based re-validation must never oversubscribe the host.
func TestConcurrentCommitsConserveCapacity(t *testing.T) {
	const pods = 64
	w := testWorkload(t, 1, pods, 0.1)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	s := NewStore(c, 1, false)

	var wg sync.WaitGroup
	placed := make(chan int, pods)
	for i := 0; i < pods; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every committer observed version 0: all but the first conflict.
			res := s.Commit(dec(w.Pods[i], 0), 0, 0, nil)
			if res.Status == CommitPlaced || res.Status == CommitConflictPlaced {
				placed <- i
			}
		}(i)
	}
	wg.Wait()
	close(placed)
	n := 0
	for range placed {
		n++
	}
	if got := len(c.Node(0).Pods()); got != n {
		t.Fatalf("node holds %d pods but %d commits reported placed", got, n)
	}
	req := c.Node(0).ReqSum()
	capc := c.Node(0).Capacity()
	if req.CPU > capc.CPU+1e-9 || req.Mem > capc.Mem+1e-9 {
		t.Fatalf("oversubscribed: req %+v > cap %+v", req, capc)
	}
	if n != 10 { // 0.1 request against unit capacity
		t.Fatalf("placed %d pods, want 10", n)
	}
}

func TestScheduleBatchCapturesVersions(t *testing.T) {
	w := testWorkload(t, 4, 2, 0.3)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	s := NewStore(c, 2, false)
	sc := sched.NewAlibabaLike(c, 1)

	ds, vers := s.ScheduleBatch(sc, w.Pods, 0)
	if len(ds) != len(w.Pods) || len(vers) != len(ds) {
		t.Fatalf("got %d decisions / %d versions for %d pods", len(ds), len(vers), len(w.Pods))
	}
	// Track our own commits per node, as the engine worker does: stacking
	// two batch pods on one host is not a conflict with ourselves.
	bumps := make(map[int]uint64)
	for i, d := range ds {
		if d.NodeID < 0 {
			t.Fatalf("pod %d unplaced: %v", i, d.Reason)
		}
		if res := s.Commit(d, vers[i]+bumps[d.NodeID], 0, nil); res.Status != CommitPlaced {
			t.Fatalf("commit %d = %v", i, res.Status)
		}
		bumps[d.NodeID]++
	}
}
