package engine

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/obs"
	"unisched/internal/trace"
)

func durableConfig(dir string, w *trace.Workload) Config {
	return Config{
		Workers:         2,
		Shards:          4,
		BlockOnFull:     true,
		Horizon:         w.Horizon,
		DataDir:         dir,
		CheckpointEvery: 5,
		FsyncEvery:      time.Millisecond,
	}
}

func openDurable(t *testing.T, w *trace.Workload, cfg Config) (*Engine, *RecoveryStats) {
	t.Helper()
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e, st, err := OpenDurable(c, alibabaFactory, cfg, w.LinkPod)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return e, st
}

func drainOrFatal(t *testing.T, e *Engine) {
	t.Helper()
	if !e.Drain(60 * time.Second) {
		e.Stop()
		t.Fatalf("engine did not settle: %+v", e.Snapshot())
	}
}

// TestDurableGoldenHashCrashRecover is the core recovery guarantee: after a
// crash (no final checkpoint, journal tail only), the recovered engine's
// canonical state hash is bit-identical to the pre-crash live engine's.
func TestDurableGoldenHashCrashRecover(t *testing.T) {
	w := smallWorkload(t)
	dir := t.TempDir()
	cfg := durableConfig(dir, w)

	e, st := openDurable(t, w, cfg)
	if st.CheckpointLSN != 0 || st.ReplayedRecords != 0 {
		t.Fatalf("fresh data dir produced recovery work: %+v", st)
	}
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatalf("submit %d: %v", p.ID, err)
		}
	}
	drainOrFatal(t, e)

	// Late submissions after the last checkpoint guarantee the recovery
	// exercises tail replay, not just checkpoint restore.
	late := makeLatePods(t, w, 3)
	for _, p := range late {
		if err := e.Submit(p); err != nil {
			t.Fatalf("late submit %d: %v", p.ID, err)
		}
	}
	drainOrFatal(t, e)

	pre := e.Snapshot()
	hash := e.StateHash()
	if hash == "" {
		t.Fatal("empty state hash")
	}
	e.crashStop() // no final checkpoint: recovery must replay the tail

	e2, st2 := openDurable(t, w, cfg)
	defer e2.Stop()
	if st2.StateHash != hash {
		t.Fatalf("recovered hash %s != pre-crash %s (checkpoint LSN %d, replayed %d)",
			st2.StateHash, hash, st2.CheckpointLSN, st2.ReplayedRecords)
	}
	if again := e2.StateHash(); again != hash {
		t.Fatalf("hash not stable after recovery: %s then %s", st2.StateHash, again)
	}
	if st2.CheckpointLSN == 0 {
		t.Fatalf("no checkpoint was restored: %+v", st2)
	}
	if st2.ReplayedRecords == 0 {
		t.Fatalf("no tail replay happened: %+v", st2)
	}
	if st2.TruncatedBytes != 0 || st2.CorruptCheckpoints != 0 {
		t.Fatalf("clean shutdown reported corruption: %+v", st2)
	}

	post := e2.Snapshot()
	if post.Submitted != pre.Submitted || post.Lost() != 0 {
		t.Fatalf("conservation broke: pre %d post %d lost %d", pre.Submitted, post.Submitted, post.Lost())
	}
	for phase, n := range pre.States {
		if post.States[phase] != n {
			t.Fatalf("state %q: recovered %d, want %d", phase, post.States[phase], n)
		}
	}
	if post.Running != pre.Running || post.Pending != pre.Pending {
		t.Fatalf("running/pending diverge: pre %d/%d post %d/%d",
			pre.Running, pre.Pending, post.Running, post.Pending)
	}
	if post.Recovery == nil || post.Recovery.StateHash != hash {
		t.Fatalf("snapshot recovery stats missing or wrong: %+v", post.Recovery)
	}
	if post.Journal == nil {
		t.Fatal("snapshot journal stats missing on durable engine")
	}

	// Idempotent resubmission: every pre-crash pod is already known.
	for _, p := range append(append([]*trace.Pod(nil), w.Pods...), late...) {
		if err := e2.Submit(p); err != ErrDuplicate {
			t.Fatalf("resubmit %d = %v, want ErrDuplicate", p.ID, err)
		}
	}
	// And the recovered engine keeps working: a genuinely new pod is
	// accepted and scheduled by the running workers.
	e2.Start()
	fresh := makeLatePods(t, w, 1)[0]
	fresh.ID += 1000
	if err := w.LinkPod(fresh); err != nil {
		t.Fatal(err)
	}
	if err := e2.Submit(fresh); err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}
	drainOrFatal(t, e2)
	if sn := e2.Snapshot(); sn.Submitted != pre.Submitted+1 || sn.Lost() != 0 {
		t.Fatalf("post-recovery accounting: %+v lost %d", sn.States, sn.Lost())
	}
}

// makeLatePods builds n linked pods with IDs beyond the workload's.
func makeLatePods(t *testing.T, w *trace.Workload, n int) []*trace.Pod {
	t.Helper()
	base := 0
	for _, p := range w.Pods {
		if p.ID >= base {
			base = p.ID + 1
		}
	}
	tmpl := w.Pods[0]
	out := make([]*trace.Pod, 0, n)
	for i := 0; i < n; i++ {
		p := &trace.Pod{
			ID: base + i, AppID: tmpl.AppID, SLO: tmpl.SLO,
			Request: tmpl.Request, Limit: tmpl.Limit,
			CPUScale: tmpl.CPUScale, MemScale: tmpl.MemScale,
		}
		if err := w.LinkPod(p); err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestDurableTornTailGarbage: trailing garbage on the newest segment (a
// torn write past the last complete record) is truncated away and the
// recovered state still matches the pre-crash hash exactly.
func TestDurableTornTailGarbage(t *testing.T) {
	w := testWorkload(t, 2, 6, 0.25)
	dir := t.TempDir()
	cfg := durableConfig(dir, w)
	cfg.Horizon = 60

	e, _ := openDurable(t, w, cfg)
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	drainOrFatal(t, e)
	hash := e.StateHash()
	e.crashStop()

	seg := newestSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 64)
	for i := range garbage {
		garbage[i] = 0xff
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, st := openDurable(t, w, cfg)
	defer e2.Stop()
	if st.TruncatedBytes != int64(len(garbage)) {
		t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, len(garbage))
	}
	if st.StateHash != hash {
		t.Fatalf("recovered hash %s != pre-crash %s", st.StateHash, hash)
	}
}

// TestDurableLostTailResubmission: a crash that loses acknowledged records
// off the journal tail (simulated by chopping bytes from the newest
// segment) is healed by the idempotent-resubmission protocol — the client
// resubmits everything, survivors dedupe, the lost tail is re-accepted,
// and nothing is lost or double-counted.
func TestDurableLostTailResubmission(t *testing.T) {
	w := testWorkload(t, 2, 8, 0.25)
	dir := t.TempDir()
	cfg := durableConfig(dir, w)
	cfg.Horizon = 60
	cfg.CheckpointEvery = 1 << 30 // no checkpoints: pure log recovery

	e, _ := openDurable(t, w, cfg)
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	drainOrFatal(t, e)
	e.crashStop()

	seg := newestSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	e2, st := openDurable(t, w, cfg)
	defer e2.Stop()
	if st.TruncatedBytes == 0 {
		t.Fatal("chopped segment reported no truncation")
	}
	e2.Start()
	accepted, dup := 0, 0
	for _, p := range w.Pods {
		switch err := e2.Submit(p); err {
		case nil:
			accepted++
		case ErrDuplicate:
			dup++
		default:
			t.Fatalf("resubmit %d: %v", p.ID, err)
		}
	}
	if accepted+dup != len(w.Pods) {
		t.Fatalf("resubmission split %d+%d, want %d", accepted, dup, len(w.Pods))
	}
	drainOrFatal(t, e2)
	e2.Stop()
	sn := e2.Snapshot()
	if sn.Submitted != int64(len(w.Pods)) {
		t.Fatalf("submitted %d after resubmission, want %d", sn.Submitted, len(w.Pods))
	}
	if sn.Lost() != 0 {
		t.Fatalf("lost %d; states %v", sn.Lost(), sn.States)
	}
}

// TestDurableChaosCrashMidRun: crash while workers are mid-placement under
// chaos faults, recover, resubmit everything, and verify conservation —
// zero lost, zero duplicated.
func TestDurableChaosCrashMidRun(t *testing.T) {
	w := smallWorkload(t)
	dir := t.TempDir()
	cfg := durableConfig(dir, w)
	cfg.Chaos = chaos.NewInjector(7, nil, chaos.DefaultRates())

	e, _ := openDurable(t, w, cfg)
	e.Start()
	half := len(w.Pods) / 2
	for _, p := range w.Pods[:half] {
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	// Crash while placements are still in flight.
	deadline := time.Now().Add(10 * time.Second)
	for e.Snapshot().Placed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	e.crashStop()

	e2, _ := openDurable(t, w, cfg)
	e2.Start()
	for _, p := range w.Pods {
		if err := e2.Submit(p); err != nil && err != ErrDuplicate {
			t.Fatalf("resubmit %d: %v", p.ID, err)
		}
	}
	drainOrFatal(t, e2)
	e2.Stop()
	sn := e2.Snapshot()
	if sn.Submitted != int64(len(w.Pods)) {
		t.Fatalf("submitted %d, want %d (duplicated admissions?)", sn.Submitted, len(w.Pods))
	}
	if sn.Lost() != 0 {
		t.Fatalf("lost %d; states %v", sn.Lost(), sn.States)
	}
	if sn.Displaced == 0 {
		t.Log("warning: chaos displaced nothing at this scale")
	}
}

// TestDurableDisabledIsInert: without a DataDir the engine journals
// nothing, exposes no journal stats, and OpenDurable refuses to run.
func TestDurableDisabledIsInert(t *testing.T) {
	w := testWorkload(t, 2, 2, 0.25)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{Horizon: 10})
	if e.jr != nil {
		t.Fatal("journal open without DataDir")
	}
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	drainOrFatal(t, e)
	e.Stop()
	sn := e.Snapshot()
	if sn.Journal != nil || sn.Recovery != nil {
		t.Fatalf("non-durable snapshot carries journal fields: %+v %+v", sn.Journal, sn.Recovery)
	}
	if _, _, err := OpenDurable(c, alibabaFactory, Config{}, w.LinkPod); err == nil {
		t.Fatal("OpenDurable without DataDir succeeded")
	}
	if _, _, err := OpenDurable(c, alibabaFactory, Config{DataDir: t.TempDir()}, nil); err == nil {
		t.Fatal("OpenDurable without link function succeeded")
	}
}

// TestReadmissionUnderBackpressureConserves: displaced pods force-pushed
// past a saturated admission queue are never lost, and backpressure sheds
// are counted exactly once (metric == records == observed rejections).
func TestReadmissionUnderBackpressureConserves(t *testing.T) {
	w := smallWorkload(t)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	inj := chaos.NewInjector(7, nil, chaos.DefaultRates())
	e := New(c, alibabaFactory, Config{Workers: 2, QueueCap: 8, Chaos: inj, Horizon: w.Horizon})
	e.Start()
	shed := 0
	for _, p := range w.Pods {
		switch err := e.Submit(p); err {
		case nil:
		case ErrQueueFull:
			shed++
		default:
			t.Fatalf("submit %d: %v", p.ID, err)
		}
	}
	drainOrFatal(t, e)
	e.Stop()
	sn := e.Snapshot()
	if sn.Submitted != int64(len(w.Pods)) {
		t.Fatalf("submitted %d, want %d", sn.Submitted, len(w.Pods))
	}
	if sn.Shed != int64(shed) || sn.States["shed"] != int64(shed) {
		t.Fatalf("shed double-counted: metric %d, records %d, observed %d",
			sn.Shed, sn.States["shed"], shed)
	}
	if sn.Lost() != 0 {
		t.Fatalf("lost %d under backpressure readmission; states %v", sn.Lost(), sn.States)
	}
}

func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments in %s: %v", dir, err)
	}
	return segs[len(segs)-1]
}

// TestDurableMetricsExposition: journal counters, the fsync-latency
// histogram, and recovery gauges appear on /metrics and the exposition
// stays valid.
func TestDurableMetricsExposition(t *testing.T) {
	w := testWorkload(t, 2, 6, 0.25)
	dir := t.TempDir()
	cfg := durableConfig(dir, w)
	cfg.Horizon = 60

	e, _ := openDurable(t, w, cfg)
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	drainOrFatal(t, e)
	e.Stop()

	e2, _ := openDurable(t, w, cfg)
	defer e2.Stop()
	rr := httptest.NewRecorder()
	e2.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"unisched_journal_records_total",
		"unisched_journal_bytes_total",
		"unisched_journal_fsyncs_total",
		"unisched_journal_fsync_seconds_bucket",
		"unisched_journal_fsync_seconds_count",
		"unisched_recovery_checkpoint_lsn",
		"unisched_recovery_replayed_records",
		"unisched_recovery_duration_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}
