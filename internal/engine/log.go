package engine

import (
	"io"
	"log/slog"
)

// discardLogger returns a logger that drops every record — the default
// when Config.Logger is nil, so logging call sites stay unconditional.
// The level gate rejects records before formatting, keeping the cost to a
// single comparison.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
