package engine

import (
	"math"
	"sync/atomic"
	"time"

	"unisched/internal/journal"
	"unisched/internal/pipeline"
	"unisched/internal/quota"
	"unisched/internal/trace"
)

// latBuckets are power-of-two decision-latency histogram bucket upper
// bounds in nanoseconds, from 1 µs to ~34 s.
const (
	latBase    = 1000 // 1 µs
	latBuckets = 26
)

// hist is a lock-free log-scale latency histogram.
type hist struct {
	buckets [latBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

func (h *hist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := 0
	for bound := int64(latBase); b < latBuckets-1 && ns > bound; b++ {
		bound *= 2
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// observeN records n observations of the same value with one bucket
// search and three atomic adds — the batched commit path attributes a
// batch's amortized per-decision latency to every decision in it, so the
// value repeats across the whole batch.
func (h *hist) observeN(d time.Duration, n int64) {
	if n <= 0 {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := 0
	for bound := int64(latBase); b < latBuckets-1 && ns > bound; b++ {
		bound *= 2
	}
	h.buckets[b].Add(n)
	h.count.Add(n)
	h.sum.Add(ns * n)
}

// quantile returns the q-quantile in seconds, interpolated within the
// containing bucket, or 0 with no observations. The first bucket spans
// [0, latBase] and interpolates linearly; every later bucket spans one
// doubling, so the latency distribution is roughly uniform in log-space
// within it and the interpolation is log-linear (lower * 2^frac). The
// bucket layout itself is unchanged, so recorded histograms stay
// comparable across versions.
func (h *hist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen int64
	bound := int64(latBase)
	for b := 0; b < latBuckets; b++ {
		n := h.buckets[b].Load()
		if float64(seen+n) >= rank && n > 0 {
			frac := (rank - float64(seen)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			if b == 0 {
				return float64(bound) * frac / 1e9
			}
			lower := float64(bound) / 2
			return lower * math.Pow(2, frac) / 1e9
		}
		seen += n
		if b < latBuckets-1 {
			bound *= 2
		}
	}
	return float64(bound) / 1e9
}

// export snapshots the histogram in cumulative Prometheus form: finite
// upper bounds in seconds, cumulative counts per bound, the total count
// (the +Inf bucket), and the sum in seconds. The total is derived from
// the same per-bucket snapshot so cumulative counts stay monotone and the
// +Inf bucket always equals _count even while workers keep observing.
func (h *hist) export(bounds *[latBuckets - 1]float64, cum *[latBuckets - 1]int64) (sum float64, total int64) {
	bound := int64(latBase)
	var seen int64
	for b := 0; b < latBuckets-1; b++ {
		seen += h.buckets[b].Load()
		bounds[b] = float64(bound) / 1e9
		cum[b] = seen
		bound *= 2
	}
	total = seen + h.buckets[latBuckets-1].Load()
	return float64(h.sum.Load()) / 1e9, total
}

func (h *hist) mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n) / 1e9
}

// Metrics is the engine-wide registry: lock-free counters updated by
// workers and the event loop, snapshot-able as JSON at any time.
type Metrics struct {
	start time.Time

	submitted atomic.Int64
	accepted  atomic.Int64
	placed    atomic.Int64
	completed atomic.Int64
	expired   atomic.Int64
	preempted atomic.Int64
	displaced atomic.Int64
	exhausted atomic.Int64
	retries   atomic.Int64
	// rejected counts fail-fast withdrawals (Config.OnUnschedulable):
	// pods handed back to a federation coordinator for re-dispatch.
	rejected atomic.Int64

	commitConflicts atomic.Int64
	conflictRejects atomic.Int64
	staleRejects    atomic.Int64

	// batchCommits counts CommitBatch calls that staged at least one
	// decision; batchConflicts the conflicts found inside them; steals the
	// deque transfers between workers.
	batchCommits   atomic.Int64
	batchConflicts atomic.Int64
	steals         atomic.Int64

	// schedNanos/commitNanos accumulate wall time inside the zero-lock
	// scheduling pass and the batched commit path (one add per batch) —
	// the phase split behind the soak benchmark's reporting.
	schedNanos  atomic.Int64
	commitNanos atomic.Int64

	shedBySLO   [int(trace.SLOBE) + 1]atomic.Int64
	placedBySLO [int(trace.SLOBE) + 1]atomic.Int64

	// waitSum/waitCount accumulate virtual waiting seconds per SLO.
	waitSum   [int(trace.SLOBE) + 1]atomic.Int64
	waitCount [int(trace.SLOBE) + 1]atomic.Int64

	// quotaShed counts submissions shed by the quota gate (over max);
	// quotaPreempted counts BE pods evicted by cross-queue quota
	// preemption. Both stay zero without a quota tree.
	quotaShed      atomic.Int64
	quotaPreempted atomic.Int64

	decision hist
}

func newMetrics() *Metrics { return &Metrics{start: time.Now()} }

func sloIdx(s trace.SLO) int {
	i := int(s)
	if i < 0 || i > int(trace.SLOBE) {
		return 0
	}
	return i
}

// Snapshot is a JSON-serializable view of the engine's state at one
// instant.
type Snapshot struct {
	// WallSeconds is the time since the engine was built.
	WallSeconds float64 `json:"wall_seconds"`
	// VirtualNow is the engine's virtual clock (seconds).
	VirtualNow int64 `json:"virtual_now"`

	Submitted int64 `json:"submitted"`
	Accepted  int64 `json:"accepted"`
	Shed      int64 `json:"shed"`
	Placed    int64 `json:"placed"`
	Completed int64 `json:"completed"`
	Expired   int64 `json:"expired"`
	Preempted int64 `json:"preempted"`
	Displaced int64 `json:"displaced"`
	Exhausted int64 `json:"exhausted"`
	// Retries counts failed scheduling attempts that were re-queued.
	Retries int64 `json:"retries"`
	// Rejected counts fail-fast withdrawals handed to
	// Config.OnUnschedulable (federation spillover). Absent outside
	// federation, keeping single-engine snapshots unchanged.
	Rejected int64 `json:"rejected,omitempty"`

	// CommitConflicts counts commits whose observed node version was
	// stale (another worker placed first); ConflictRejects the subset
	// that lost re-validation, StaleRejects commits onto no-longer-
	// schedulable hosts.
	CommitConflicts int64 `json:"commit_conflicts"`
	ConflictRejects int64 `json:"conflict_rejects"`
	StaleRejects    int64 `json:"stale_rejects"`

	// EpochsPublished counts copy-on-write shard snapshots published;
	// BatchCommits the batched validation rounds; BatchConflicts the
	// conflicts they detected; Steals the work-stealing deque transfers.
	EpochsPublished int64 `json:"epochs_published"`
	BatchCommits    int64 `json:"batch_commits"`
	BatchConflicts  int64 `json:"batch_conflicts"`
	Steals          int64 `json:"steals"`

	// SchedSeconds/CommitSeconds split worker wall time between the
	// zero-lock scheduling pass and the batched commit path, summed across
	// workers.
	SchedSeconds  float64 `json:"sched_seconds"`
	CommitSeconds float64 `json:"commit_seconds"`

	// QuotaShed and QuotaPreempted count the quota gate's sheds and
	// cross-queue preemption's evictions; Quota is the tree snapshot.
	// All absent without a quota tree.
	QuotaShed      int64           `json:"quota_shed,omitempty"`
	QuotaPreempted int64           `json:"quota_preempted,omitempty"`
	Quota          *quota.Snapshot `json:"quota,omitempty"`

	ShedBySLO   map[string]int64 `json:"shed_by_slo,omitempty"`
	PlacedBySLO map[string]int64 `json:"placed_by_slo,omitempty"`
	// MeanWaitBySLO is the mean virtual waiting time (seconds) from
	// admission to placement, per SLO class.
	MeanWaitBySLO map[string]float64 `json:"mean_wait_by_slo,omitempty"`

	// PlacementsPerSec is Placed / WallSeconds — the headline throughput.
	PlacementsPerSec float64 `json:"placements_per_sec"`

	QueueDepth int `json:"queue_depth"`
	// Backlogged counts pods sitting out a retry backoff.
	Backlogged int `json:"backlogged"`
	InFlight   int `json:"in_flight"`
	// Pending = QueueDepth + Backlogged + InFlight: accepted pods not yet
	// placed, shed, or exhausted.
	Pending int `json:"pending"`
	Running int `json:"running"`

	DecisionP50Ms  float64 `json:"decision_p50_ms"`
	DecisionP99Ms  float64 `json:"decision_p99_ms"`
	DecisionMeanMs float64 `json:"decision_mean_ms"`

	// States counts pod records by phase (queued/placed/done/shed/
	// exhausted). Submitted == sum of all states; the engine loses
	// nothing.
	States map[string]int64 `json:"states"`

	// Pipeline merges the placement-pipeline stage counters across every
	// worker's scheduler (visited/pruned/sampled nodes, per-stage
	// latencies). Nil when no worker runs on the shared pipeline.
	Pipeline *pipeline.StatsSnapshot `json:"pipeline,omitempty"`

	// Journal holds the write-ahead journal's counters; nil when the
	// engine runs without durability (New rather than OpenDurable).
	Journal *journal.Stats `json:"journal,omitempty"`
	// Recovery describes the crash recovery that built this engine; nil
	// for engines that started fresh.
	Recovery *RecoveryStats `json:"recovery,omitempty"`

	// E2E summarizes the end-to-end submit→placed wall latency from the
	// lifecycle recorder; nil when lifecycle tracing is off.
	E2E *E2ESummary `json:"e2e,omitempty"`
}

// E2ESummary is the wall-clock end-to-end placement-latency summary
// (lifecycle recorder's e2e histogram) plus its stage means, so a client
// can sanity-check its own observed latencies against the server's
// attribution (loadgen -latency-check does exactly this).
type E2ESummary struct {
	Count           int64   `json:"count"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	MeanMs          float64 `json:"mean_ms"`
	QueueWaitMeanMs float64 `json:"queue_wait_mean_ms"`
	SchedMeanMs     float64 `json:"sched_mean_ms"`
	CommitMeanMs    float64 `json:"commit_mean_ms"`
	FsyncWaitMeanMs float64 `json:"fsync_wait_mean_ms"`
}

// Lost returns the number of submissions unaccounted for — zero on a
// correct engine.
func (s Snapshot) Lost() int64 {
	var sum int64
	for _, v := range s.States {
		sum += v
	}
	return s.Submitted - sum
}

func (m *Metrics) snapshot() Snapshot {
	wall := time.Since(m.start).Seconds()
	sn := Snapshot{
		WallSeconds:     wall,
		Submitted:       m.submitted.Load(),
		Accepted:        m.accepted.Load(),
		Placed:          m.placed.Load(),
		Completed:       m.completed.Load(),
		Expired:         m.expired.Load(),
		Preempted:       m.preempted.Load(),
		Displaced:       m.displaced.Load(),
		Exhausted:       m.exhausted.Load(),
		Retries:         m.retries.Load(),
		Rejected:        m.rejected.Load(),
		CommitConflicts: m.commitConflicts.Load(),
		ConflictRejects: m.conflictRejects.Load(),
		StaleRejects:    m.staleRejects.Load(),
		BatchCommits:    m.batchCommits.Load(),
		BatchConflicts:  m.batchConflicts.Load(),
		Steals:          m.steals.Load(),
		SchedSeconds:    float64(m.schedNanos.Load()) / 1e9,
		CommitSeconds:   float64(m.commitNanos.Load()) / 1e9,
		QuotaShed:       m.quotaShed.Load(),
		QuotaPreempted:  m.quotaPreempted.Load(),
		DecisionP50Ms:   1000 * m.decision.quantile(0.50),
		DecisionP99Ms:   1000 * m.decision.quantile(0.99),
		DecisionMeanMs:  1000 * m.decision.mean(),
	}
	sn.ShedBySLO = make(map[string]int64)
	sn.PlacedBySLO = make(map[string]int64)
	sn.MeanWaitBySLO = make(map[string]float64)
	for i := 0; i <= int(trace.SLOBE); i++ {
		slo := trace.SLO(i)
		if v := m.shedBySLO[i].Load(); v > 0 {
			sn.ShedBySLO[slo.String()] = v
			sn.Shed += v
		}
		if v := m.placedBySLO[i].Load(); v > 0 {
			sn.PlacedBySLO[slo.String()] = v
		}
		if n := m.waitCount[i].Load(); n > 0 {
			sn.MeanWaitBySLO[slo.String()] = float64(m.waitSum[i].Load()) / float64(n)
		}
	}
	if wall > 0 {
		sn.PlacementsPerSec = float64(sn.Placed) / wall
	}
	return sn
}
