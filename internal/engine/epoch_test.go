package engine

import (
	"testing"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/sched"
)

// TestBatchedCommitRaceConserves is the seeded multi-worker race test for
// commit-conflict recycling under batched validation: four unpartitioned
// workers score the same cluster, so identical pods routinely stage the
// same best node and the per-shard-group version check must reject the
// losers. Whatever the interleaving, conservation holds — every accepted
// pod is placed exactly once, nothing is lost, nothing is duplicated.
// Conflict presence is asserted across the seed sweep (a single run may
// serialize on one core), conservation on every run.
func TestBatchedCommitRaceConserves(t *testing.T) {
	const (
		nodes = 512
		pods  = 2048
		seeds = 6
	)
	w := testWorkload(t, nodes, pods, 0.1)
	var conflicts int64
	for seed := int64(1); seed <= seeds; seed++ {
		c := cluster.New(w.Nodes, cluster.DefaultPhysics())
		e := New(c, alibabaFactory, Config{
			Workers:  4,
			Shards:   16,
			QueueCap: pods,
			Seed:     seed,
			// No PartitionNodes: all workers race over all nodes.
		})
		e.Start()
		for _, p := range w.Pods {
			if err := e.Submit(p); err != nil {
				t.Fatalf("seed %d: submit %d: %v", seed, p.ID, err)
			}
		}
		if !e.Drain(2 * time.Minute) {
			t.Fatalf("seed %d: engine did not settle: %+v", seed, e.Snapshot())
		}
		e.Stop()
		sn := e.Snapshot()
		if lost := sn.Lost(); lost != 0 {
			t.Fatalf("seed %d: lost %d submissions: %+v", seed, lost, sn.States)
		}
		if sn.States["placed"] != pods {
			t.Fatalf("seed %d: placed %d of %d pods: %+v", seed, sn.States["placed"], pods, sn.States)
		}
		// No duplicated placements: each pod ID occupies exactly one node
		// slot, and the cluster's total matches the placed count.
		seen := make(map[int]int, pods)
		total := 0
		for _, n := range c.Nodes() {
			for _, ps := range n.Pods() {
				seen[ps.Pod.ID]++
				total++
			}
		}
		if total != pods {
			t.Fatalf("seed %d: cluster holds %d pods, want %d", seed, total, pods)
		}
		for id, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("seed %d: pod %d placed %d times", seed, id, cnt)
			}
		}
		conflicts += sn.CommitConflicts
	}
	// On a single core the racing workers can serialize perfectly and
	// produce no conflicts at all; the deterministic staging test below
	// guarantees the validation path itself, so conflict presence here is
	// informational.
	t.Logf("commit conflicts across %d seeded races: %d", seeds, conflicts)
}

// TestBatchedCommitConflictDeterministic pins the conflict outcomes of
// batched validation without relying on goroutine timing: two workers
// adopt the same published epoch and each stage a pod onto the same
// single node; worker A's batch commits first, so worker B's observed
// version is stale and the per-shard-group check must flag it. With no
// headroom left the stale deploy is rejected; with headroom remaining it
// is re-validated and placed, counted as a conflict either way.
func TestBatchedCommitConflictDeterministic(t *testing.T) {
	run := func(req float64) (a, b CommitResult) {
		w := testWorkload(t, 1, 2, req)
		c := cluster.New(w.Nodes, cluster.DefaultPhysics())
		e := New(c, alibabaFactory, Config{Workers: 2, Shards: 2, QueueCap: 4})
		// Publish initial snapshots without starting the engine: the
		// worker goroutines stay parked and this test owns the commits.
		e.store.PublishAll()
		stage := func(wk *worker, pod int) ([]sched.Decision, []uint64) {
			e.store.BeginScore()
			defer e.store.EndScore()
			e.adopt(wk)
			ds := wk.sc.Schedule(w.Pods[pod:pod+1], 0)
			if len(ds) != 1 || ds[0].NodeID != 0 {
				t.Fatalf("worker %d staged %+v, want pod on node 0", wk.id, ds)
			}
			return ds, []uint64{wk.vers[0]}
		}
		wa, wb := e.workers[0], e.workers[1]
		da, va := stage(wa, 0)
		db, vb := stage(wb, 1) // same epoch: B observes the same version A did
		commit := func(wk *worker, ds []sched.Decision, vers []uint64) CommitResult {
			res := make([]CommitResult, 1)
			e.store.CommitBatch(ds, vers, 0, res, &wk.scr, func(int, []*cluster.PodState) {}, nil)
			return res[0]
		}
		return commit(wa, da, va), commit(wb, db, vb)
	}

	// req 0.6 on a unit node: A fills past half, B's stale deploy cannot
	// fit on re-validation.
	a, b := run(0.6)
	if a.Status != CommitPlaced {
		t.Fatalf("first commit: got %v, want CommitPlaced", a.Status)
	}
	if b.Status != CommitConflictRejected {
		t.Fatalf("stale commit without headroom: got %v, want CommitConflictRejected", b.Status)
	}

	// req 0.3: the conflict is detected but the deploy still fits, so the
	// loser is re-validated in place rather than recycled.
	a, b = run(0.3)
	if a.Status != CommitPlaced {
		t.Fatalf("first commit: got %v, want CommitPlaced", a.Status)
	}
	if b.Status != CommitConflictPlaced {
		t.Fatalf("stale commit with headroom: got %v, want CommitConflictPlaced", b.Status)
	}
}

// TestBatchedPerPodCommitStateHashEqual pins the batched commit path to
// per-pod-commit semantics: with one worker the decision stream is
// identical, so grouping commits by shard must not change one bit of the
// canonical engine state. The workload is prefilled before Start and run
// to a fixed horizon: the event loop only ticks at true quiescence
// (empty queue, nothing in flight), so with no producer racing the
// worker the tick sequence — and hence the virtual clock in the hashed
// state — is identical across commit paths of different speed.
func TestBatchedPerPodCommitStateHashEqual(t *testing.T) {
	w := testWorkload(t, 256, 1024, 0.1)
	run := func(perPod bool) (string, Snapshot) {
		c := cluster.New(w.Nodes, cluster.DefaultPhysics())
		e := New(c, alibabaFactory, Config{
			Workers:      1,
			Shards:       8,
			QueueCap:     len(w.Pods),
			Horizon:      w.Horizon,
			PerPodCommit: perPod,
			Seed:         1,
		})
		for _, p := range w.Pods {
			if err := e.Submit(p); err != nil {
				t.Fatalf("submit %d: %v", p.ID, err)
			}
		}
		e.Start()
		if !e.Drain(2 * time.Minute) {
			t.Fatalf("engine did not settle: %+v", e.Snapshot())
		}
		e.Stop()
		return e.StateHash(), e.Snapshot()
	}
	batchedHash, batchedSn := run(false)
	perPodHash, perPodSn := run(true)
	if batchedHash == "" || perPodHash == "" {
		t.Fatal("empty state hash")
	}
	if batchedHash != perPodHash {
		t.Fatalf("batched commit state hash %s != per-pod %s", batchedHash, perPodHash)
	}
	if batchedSn.Placed != perPodSn.Placed || batchedSn.Retries != perPodSn.Retries {
		t.Fatalf("snapshot divergence: batched placed=%d retries=%d, per-pod placed=%d retries=%d",
			batchedSn.Placed, batchedSn.Retries, perPodSn.Placed, perPodSn.Retries)
	}
	if batchedSn.BatchCommits == 0 {
		t.Fatal("batched run recorded no batch commits")
	}
	if perPodSn.BatchCommits != 0 {
		t.Fatalf("per-pod run recorded %d batch commits", perPodSn.BatchCommits)
	}
}

// TestDurableCrashRecoverAcrossCommitPaths extends the golden-hash crash
// recovery guarantee across the commit grouping: a journaled run with
// batched commits and one with per-pod commits produce bit-identical
// canonical state, and each recovers to its own pre-crash hash from the
// journal tail alone. One worker and a prefilled queue make the decision
// stream and tick sequence identical across the two paths (see
// TestBatchedPerPodCommitStateHashEqual); the durable layer must not
// reintroduce divergence.
func TestDurableCrashRecoverAcrossCommitPaths(t *testing.T) {
	w := smallWorkload(t)
	run := func(perPod bool) string {
		dir := t.TempDir()
		cfg := durableConfig(dir, w)
		cfg.Workers = 1
		cfg.PerPodCommit = perPod
		e, _ := openDurable(t, w, cfg)
		for _, p := range w.Pods {
			if err := e.Submit(p); err != nil {
				t.Fatalf("submit %d: %v", p.ID, err)
			}
		}
		e.Start()
		drainOrFatal(t, e)
		hash := e.StateHash()
		if hash == "" {
			t.Fatal("empty state hash")
		}
		e.crashStop() // no final checkpoint: recovery replays the tail

		e2, st := openDurable(t, w, cfg)
		defer e2.Stop()
		if st.StateHash != hash {
			t.Fatalf("perPod=%v: recovered hash %s != pre-crash %s", perPod, st.StateHash, hash)
		}
		return hash
	}
	batched := run(false)
	perPod := run(true)
	if batched != perPod {
		t.Fatalf("crash-recovery hash differs across commit paths: batched %s, per-pod %s", batched, perPod)
	}
}

// TestScoringTakesNoLocks proves the zero-lock read path mechanically:
// with every shard write lock held, a worker can still adopt the
// published epoch snapshots and score a full batch, because the path from
// snapshot load to decision staging reads only atomically-published
// immutable state. If scoring acquired any shard lock this test would
// deadlock; the watchdog turns that into a failure.
func TestScoringTakesNoLocks(t *testing.T) {
	w := testWorkload(t, 64, 32, 0.1)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	e := New(c, alibabaFactory, Config{Workers: 1, Shards: 8, QueueCap: 64})
	// Publish initial snapshots without starting the engine: the worker
	// goroutines must stay parked so the only scoring pass is ours.
	e.store.PublishAll()

	e.store.LockAll()
	defer e.store.UnlockAll()

	done := make(chan int, 1)
	go func() {
		wk := e.workers[0]
		e.store.BeginScore()
		e.adopt(wk)
		decisions := wk.sc.Schedule(w.Pods, 0)
		e.store.EndScore()
		done <- len(decisions)
	}()
	select {
	case n := <-done:
		if n != len(w.Pods) {
			t.Fatalf("scored %d of %d pods", n, len(w.Pods))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scoring blocked while shard locks were held: the read path is not lock-free")
	}
}
