package engine

import (
	"testing"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// trainOptumProfiles replays a short round-robin warmup on a throwaway
// cluster so the engine tests can run the full Optum scheduler.
func trainOptumProfiles(t *testing.T, w *trace.Workload) core.Profiles {
	t.Helper()
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	col := profiler.NewCollector(1)
	next := 0
	placed := map[int]bool{}
	for tick := 0; tick < 60; tick++ {
		now := int64(tick) * trace.SampleInterval
		for _, p := range w.Pods {
			if p.Submit > now {
				break
			}
			if placed[p.ID] {
				continue
			}
			if _, err := c.Place(p, next%len(w.Nodes), now); err == nil {
				placed[p.ID] = true
				next++
			}
		}
		completed, snaps := c.Tick(now, float64(trace.SampleInterval))
		col.ObserveTick(snaps)
		for _, ps := range completed {
			col.ObserveCompletion(ps)
		}
	}
	models, err := col.TrainInterference(profiler.DefaultFactory(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return core.Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models}
}

// TestEngineOptumWorkersSummaries runs the full Optum scheduler on a
// multi-worker engine: every worker owns a scheduler (and so a summary
// store), but they share one cluster, so each store's observer fires on
// every worker's commit. The race detector covers the observer/scan
// interplay when CI runs this package with -race; the assertions cover
// conservation and that the summary counters surface in the merged engine
// snapshot.
func TestEngineOptumWorkersSummaries(t *testing.T) {
	w := smallWorkload(t)
	prof := trainOptumProfiles(t, w)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	factory := func(c *cluster.Cluster, worker int, seed int64) sched.Scheduler {
		return core.New(c, prof, core.DefaultOptions(), seed)
	}
	e := New(c, factory, Config{Workers: 4, Shards: 8, Horizon: w.Horizon, BlockOnFull: true})
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatalf("submit pod %d: %v", p.ID, err)
		}
	}
	if !e.Drain(60 * time.Second) {
		e.Stop()
		t.Fatalf("engine did not settle: %+v", e.Snapshot())
	}
	e.Stop()
	sn := e.Snapshot()
	checkConservation(t, w, sn)
	if sn.Pipeline == nil {
		t.Fatal("snapshot carries no pipeline stats")
	}
	if sn.Pipeline.SummaryHits == 0 {
		t.Errorf("no summary cache hits recorded: %+v", *sn.Pipeline)
	}
	if sn.Pipeline.SummaryAppends+sn.Pipeline.SummaryRebuilds == 0 {
		t.Errorf("no summary maintenance recorded: %+v", *sn.Pipeline)
	}
}
