package engine

// Federation support: the hooks internal/federation drives a partition
// engine through. A partition engine owns exactly the nodes that are Up
// in its cluster — Config.InactiveNodes pins the genesis baseline, and
// SetNodeActive migrates ownership online (the rebalancer moves empty
// nodes between partitions). Rejected and Crash serve the coordinator's
// recovery reconciliation and the crash-recovery tests.

import (
	"errors"
	"sort"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// SetNodeActive errors.
var (
	// ErrNodeOutOfRange reports a node ID outside the cluster.
	ErrNodeOutOfRange = errors.New("engine: node id out of range")
	// ErrNodeNotEmpty refuses to deactivate a node that still hosts pods:
	// the rebalancer migrates empty nodes only.
	ErrNodeNotEmpty = errors.New("engine: node holds pods")
)

// SetNodeActive flips one node's partition membership while the engine
// runs: active=true adopts the node (it becomes schedulable and enters
// the candidate indexes on the next adoption), active=false releases it
// (refused while the node hosts pods). The flip runs under the same
// writer-quiescence protocol as a tick — tickMu serializes it against the
// event loop, BeginMutate drains the epoch readers — and the node-phase
// observer journals it exactly like a chaos fault, so recovery replays
// migrations bit-identically.
func (e *Engine) SetNodeActive(id int, active bool) error {
	if id < 0 || id >= len(e.c.Nodes()) {
		return ErrNodeOutOfRange
	}
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	now := e.now.Load()
	e.store.BeginMutate()
	e.store.LockAll()
	e.store.podMu.Lock()
	e.store.beginDirtyCaptureLocked()
	var err error
	n := e.c.Node(id)
	if active {
		e.c.RecoverNode(id)
	} else if len(n.Pods()) > 0 {
		// Re-checked under the locks: a worker may have placed here since
		// the rebalancer picked the node as idle.
		err = ErrNodeNotEmpty
	} else {
		e.c.FailNode(id, now)
	}
	e.store.publishDirtyLocked()
	e.store.podMu.Unlock()
	e.store.UnlockAll()
	e.store.EndMutate()
	return err
}

// IdleOwnedNodes returns up to max owned (Up) nodes that currently host
// no pods, ascending by ID — the rebalancer's donation candidates. The
// snapshot is advisory: SetNodeActive re-validates emptiness under the
// write locks.
func (e *Engine) IdleOwnedNodes(max int) []int {
	var out []int
	e.store.RLockAll()
	for _, n := range e.c.Nodes() {
		if n.Phase() == cluster.NodeUp && len(n.Pods()) == 0 {
			out = append(out, n.Node.ID)
			if len(out) == max {
				break
			}
		}
	}
	e.store.RUnlockAll()
	return out
}

// Rejected lists the pods currently in the terminal PodRejected state,
// ascending by ID. After a durable partition recovers, the coordinator
// reconciles these against its sibling partitions: a pod rejected here
// and unknown everywhere else is re-dispatched rather than lost.
func (e *Engine) Rejected() []*trace.Pod {
	e.recMu.Lock()
	var out []*trace.Pod
	for _, rec := range e.recs {
		if rec.phase == PodRejected {
			out = append(out, rec.pod)
		}
	}
	e.recMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EachPod calls fn for every submission record under the record lock,
// in unspecified order: the coordinator's recovery reconciliation
// rebuilds its routing table from the partitions' records. fn must not
// call back into the engine.
func (e *Engine) EachPod(fn func(id int, phase PodPhase, pod *trace.Pod)) {
	e.recMu.Lock()
	for id, rec := range e.recs {
		fn(id, rec.phase, rec.pod)
	}
	e.recMu.Unlock()
}

// Crash stops the engine as if the process died: workers halt, but no
// final checkpoint is cut — the next OpenDurable recovers from the last
// periodic checkpoint plus the journal tail. Exported for the federation
// crash-recovery tests; identical to Stop on a non-durable engine.
func (e *Engine) Crash() { e.crashStop() }
