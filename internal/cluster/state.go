// Package cluster models the runtime state of a data center under unified
// scheduling: nodes, placed pods, capacity and over-commitment accounting,
// per-pod and per-node usage histories, and the contention "physics" that
// turn co-location into PSI and completion-time inflation.
//
// The physics implement the functional relationships the paper measures on
// real hosts (Implication 7): CPU PSI of a latency-sensitive pod is a
// function of its utilization, host utilization and QPS; a best-effort
// pod's completion time inflates with pod and host utilization. Schedulers
// never see the physics directly — they observe samples, exactly like the
// production tracing system.
package cluster

import (
	"fmt"
	"sort"
	"sync/atomic"

	"unisched/internal/trace"
)

// PodState is a pod placed on (or finished from) a node.
type PodState struct {
	Pod    *trace.Pod
	NodeID int
	// Seq is the pod's scheduling order on its node; the pairwise resource
	// usage predictor (Eq. 7-8) pairs pods in this order.
	Seq int

	// Start is when the pod started running (seconds from trace start).
	Start int64
	// Progress is the accumulated CPU work of a BE pod.
	Progress float64
	// Done marks completion (BE) or termination (lifetime end, preemption).
	Done bool
	// Finish is when the pod stopped, valid when Done.
	Finish int64
	// Preempted marks pods evicted to make room for LSR pods.
	Preempted bool
	// Displaced marks pods removed by a node failure, drain, or chaos
	// eviction — still-live workloads that must be rescheduled, unlike
	// completed or lifetime-expired pods.
	Displaced bool

	hist podHistory
}

// CPUHistory returns the pod's recent CPU usage samples, oldest first.
func (p *PodState) CPUHistory() []float64 { return p.hist.cpuSamples() }

// MaxCPU returns the largest CPU usage observed for this pod so far.
func (p *PodState) MaxCPU() float64 { return p.hist.maxCPU }

// MaxMem returns the largest memory usage observed so far.
func (p *PodState) MaxMem() float64 { return p.hist.maxMem }

// P99CPU returns (approximately) the 99th percentile of the pod's observed
// CPU usage — the statistic the Resource Central predictor sums per host.
func (p *PodState) P99CPU() float64 { return p.hist.p99CPU() }

// NodeState is a physical host with its placed pods and accounting.
type NodeState struct {
	Node *trace.Node

	phase   NodePhase
	pods    []*PodState // running pods, in scheduling order
	nextSeq int

	// Incrementally maintained sums over running pods.
	reqSum   trace.Resources
	limitSum trace.Resources
	// guarReq is the request sum of guaranteed-class pods (everything but
	// BE): the capacity the production scheduler reserves for them.
	guarReq trace.Resources

	// appCounts is the per-application resident pod count, maintained on
	// Place/Remove so replica-spread scoring is O(distinct apps) instead of
	// O(pods). Few distinct apps share a node, so a linear multiset beats a
	// map and allocates only on first sight of an app.
	appCounts []appCount

	// hist is shared by pointer between the live node and every published
	// clone (CloneView copies the pointer): history is written only by the
	// physics tick, which quiesces all snapshot readers first, so clones
	// always observe the freshest samples without being republished.
	hist *nodeHistory
}

// appCount is one entry of a node's per-application pod counter.
type appCount struct {
	app string
	n   int
}

// AppPodCount returns how many running pods of the application the node
// hosts.
func (n *NodeState) AppPodCount(app string) int {
	for i := range n.appCounts {
		if n.appCounts[i].app == app {
			return n.appCounts[i].n
		}
	}
	return 0
}

func (n *NodeState) bumpApp(app string, delta int) {
	for i := range n.appCounts {
		if n.appCounts[i].app == app {
			n.appCounts[i].n += delta
			if n.appCounts[i].n <= 0 {
				last := len(n.appCounts) - 1
				n.appCounts[i] = n.appCounts[last]
				n.appCounts = n.appCounts[:last]
			}
			return
		}
	}
	if delta > 0 {
		n.appCounts = append(n.appCounts, appCount{app: app, n: delta})
	}
}

// Pods returns the running pods in scheduling order. The slice is shared;
// callers must not modify it.
func (n *NodeState) Pods() []*PodState { return n.pods }

// ReqSum returns the sum of resource requests of running pods.
func (n *NodeState) ReqSum() trace.Resources { return n.reqSum }

// LimitSum returns the sum of resource limits of running pods.
func (n *NodeState) LimitSum() trace.Resources { return n.limitSum }

// GuaranteedReq returns the request sum of the node's non-BE pods — the
// reservation the production scheduler holds for guaranteed classes.
func (n *NodeState) GuaranteedReq() trace.Resources { return n.guarReq }

// Capacity returns the node's physical capacity.
func (n *NodeState) Capacity() trace.Resources { return n.Node.Capacity }

// OvercommitRate returns the request-based and limit-based over-commitment
// rates of the node (Fig. 5): sum(requests)/capacity per dimension.
func (n *NodeState) OvercommitRate() (req, limit trace.Resources) {
	c := n.Node.Capacity
	return trace.Resources{CPU: n.reqSum.CPU / c.CPU, Mem: n.reqSum.Mem / c.Mem},
		trace.Resources{CPU: n.limitSum.CPU / c.CPU, Mem: n.limitSum.Mem / c.Mem}
}

// UsageHistory returns recent (usage) samples of the node, oldest first.
func (n *NodeState) UsageHistory() []trace.Resources { return n.hist.samples() }

// LastUsage returns the most recent usage sample, or zero if none yet.
func (n *NodeState) LastUsage() trace.Resources { return n.hist.last() }

// PeakUsage returns a decayed running peak of the node's usage — roughly
// the maximum over the last hour. Usage-based (aggressive) over-commitment
// policies admit against this rather than the instantaneous sample so that
// diurnal peaks are not forgotten at the trough.
func (n *NodeState) PeakUsage() trace.Resources {
	return trace.Resources{CPU: n.hist.peak[0], Mem: n.hist.peak[1]}
}

// UsageStats returns the mean and population standard deviation of the
// node's recorded usage window, per dimension, in O(1) — the inputs to the
// N-sigma predictor.
func (n *NodeState) UsageStats() (cpuMean, cpuStd, memMean, memStd float64) {
	cpuMean, cpuStd = n.hist.meanStd(0)
	memMean, memStd = n.hist.meanStd(1)
	return cpuMean, cpuStd, memMean, memStd
}

// HistoryLen returns how many usage samples the node has recorded (capped
// at the window size).
func (n *NodeState) HistoryLen() int {
	k := n.hist.n
	if k > len(n.hist.buf) {
		k = len(n.hist.buf)
	}
	return k
}

// BEPeakUsage returns the decayed recent peak of best-effort-only usage.
func (n *NodeState) BEPeakUsage() trace.Resources {
	return trace.Resources{CPU: n.hist.bePeak[0], Mem: n.hist.bePeak[1]}
}

// UnmeasuredReq returns the summed requests of pods that have been placed
// but never sampled yet. Usage-based predictors must reserve these
// requests explicitly: a pod placed milliseconds ago contributes nothing to
// usage history but will start consuming resources before the next sample.
func (n *NodeState) UnmeasuredReq() trace.Resources {
	var sum trace.Resources
	for _, ps := range n.pods {
		if ps.hist.n == 0 {
			sum = sum.Add(ps.Pod.Request)
		}
	}
	return sum
}

// Cluster is the full data-center state.
type Cluster struct {
	Physics Physics

	nodes []*NodeState
	byPod map[int]*PodState
	// notUp counts nodes not in the Up phase, so the all-healthy fast path
	// is O(1).
	notUp int
	// observers are notified (with the node ID) after every state change
	// that affects a node's scheduling-relevant accounting: placement,
	// removal, and lifecycle transitions. The pipeline's candidate index
	// maintains itself through this hook.
	observers []func(nodeID int)

	// slab batches PodState allocations: placements are the dominant
	// allocation source at engine scale, and every PodState is retained for
	// the cluster's lifetime (byPod keeps finished pods), so chunked
	// allocation wastes nothing.
	slab []PodState
	// podRefSlab carves the initial per-node pod slices in 16-entry views,
	// sparing every node its own append-growth cascade; Remove truncates in
	// place, so the backing views live as long as the cluster.
	podRefSlab []*PodState
	// snapScratch is Tick's reusable snapshot buffer.
	snapScratch []NodeSnapshot

	// workPods counts running pods with Work > 0 — the only pods a
	// physics tick can complete. Atomic so the engine's tick pacing can
	// read it without taking the cluster's write locks.
	workPods atomic.Int64
}

// WorkingPods returns the number of running pods with Work > 0, i.e.
// pods whose completion depends on the clock advancing.
func (c *Cluster) WorkingPods() int64 { return c.workPods.Load() }

// newPodState hands out one PodState from the slab.
func (c *Cluster) newPodState() *PodState {
	if len(c.slab) == 0 {
		c.slab = make([]PodState, 512)
	}
	ps := &c.slab[0]
	c.slab = c.slab[1:]
	return ps
}

// AddObserver registers a callback invoked after every node state change.
// Observers run synchronously on the mutating goroutine; they must be fast
// and must not mutate the cluster.
func (c *Cluster) AddObserver(fn func(nodeID int)) {
	c.observers = append(c.observers, fn)
}

func (c *Cluster) notify(nodeID int) {
	for _, fn := range c.observers {
		fn(nodeID)
	}
}

// New builds a cluster over the workload's nodes with the given physics.
func New(nodes []*trace.Node, phys Physics) *Cluster {
	c := &Cluster{
		Physics: phys,
		nodes:   make([]*NodeState, len(nodes)),
		byPod:   make(map[int]*PodState),
	}
	// One backing array for every NodeState: node states live as long as
	// the cluster, so a slab halves the per-node allocation count and keeps
	// the scan's node metadata contiguous.
	states := make([]NodeState, len(nodes))
	hists := make([]nodeHistory, len(nodes))
	// Seed every node's history ring from one contiguous slab so the first
	// tick doesn't pay len(nodes) ring allocations at once; rings that
	// outgrow the seed chunk re-allocate (and unshare) via append.
	rings := make([][2]float64, len(nodes)*histSeedCap)
	for i, n := range nodes {
		states[i].Node = n
		states[i].hist = &hists[i]
		hists[i].buf = rings[i*histSeedCap : i*histSeedCap : (i+1)*histSeedCap]
		c.nodes[i] = &states[i]
	}
	return c
}

// Nodes returns all node states, indexed by node ID.
func (c *Cluster) Nodes() []*NodeState { return c.nodes }

// Node returns the node state with the given ID.
func (c *Cluster) Node(id int) *NodeState {
	if id < 0 || id >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range", id))
	}
	return c.nodes[id]
}

// PodState returns the placement state of a pod, or nil if never placed.
func (c *Cluster) PodState(podID int) *PodState { return c.byPod[podID] }

// RunningPods returns the number of running pods across the cluster.
func (c *Cluster) RunningPods() int {
	total := 0
	for _, n := range c.nodes {
		total += len(n.pods)
	}
	return total
}

// Place starts pod p on node nodeID at time now. It returns the new
// PodState or an error if the pod is already placed. Place does not check
// capacity — over-commitment is the scheduler's decision; the physics
// deliver the consequences.
func (c *Cluster) Place(p *trace.Pod, nodeID int, now int64) (*PodState, error) {
	if prev, ok := c.byPod[p.ID]; ok && !prev.Done {
		return nil, fmt.Errorf("cluster: pod %d already running on node %d", p.ID, prev.NodeID)
	}
	n := c.Node(nodeID)
	if n.phase != NodeUp {
		return nil, fmt.Errorf("cluster: node %d is %s", nodeID, n.phase)
	}
	ps := c.newPodState()
	ps.Pod, ps.NodeID, ps.Seq, ps.Start = p, nodeID, n.nextSeq, now
	n.nextSeq++
	if n.pods == nil {
		if len(c.podRefSlab) < 16 {
			c.podRefSlab = make([]*PodState, 4096)
		}
		n.pods = c.podRefSlab[:0:16]
		c.podRefSlab = c.podRefSlab[16:]
	}
	n.pods = append(n.pods, ps)
	n.reqSum = n.reqSum.Add(p.Request)
	n.limitSum = n.limitSum.Add(p.Limit)
	if p.SLO != trace.SLOBE {
		n.guarReq = n.guarReq.Add(p.Request)
	}
	n.bumpApp(p.AppID, 1)
	c.byPod[p.ID] = ps
	if p.Work > 0 {
		c.workPods.Add(1)
	}
	c.notify(nodeID)
	return ps, nil
}

// Remove stops the pod at time now (completion, lifetime end or
// preemption). It is a no-op for pods already done.
func (c *Cluster) Remove(podID int, now int64, preempted bool) {
	ps, ok := c.byPod[podID]
	if !ok || ps.Done {
		return
	}
	ps.Done = true
	ps.Finish = now
	ps.Preempted = preempted
	n := c.Node(ps.NodeID)
	for i, q := range n.pods {
		if q == ps {
			n.pods = append(n.pods[:i], n.pods[i+1:]...)
			break
		}
	}
	n.reqSum = n.reqSum.Sub(ps.Pod.Request)
	n.limitSum = n.limitSum.Sub(ps.Pod.Limit)
	if ps.Pod.SLO != trace.SLOBE {
		n.guarReq = n.guarReq.Sub(ps.Pod.Request)
	}
	n.bumpApp(ps.Pod.AppID, -1)
	if ps.Pod.Work > 0 {
		c.workPods.Add(-1)
	}
	clampNonNeg(&n.reqSum)
	clampNonNeg(&n.limitSum)
	clampNonNeg(&n.guarReq)
	c.notify(ps.NodeID)
}

// PreemptBE evicts up to the cheapest BE pods on the node freeing at least
// need CPU request, returning the evicted pods. The unified scheduler uses
// this to admit LSR pods quickly (§3.1.3: LSR pods wait less than BE
// because the scheduler can preempt BE for them).
func (c *Cluster) PreemptBE(nodeID int, need trace.Resources, now int64) []*PodState {
	n := c.Node(nodeID)
	var be []*PodState
	for _, ps := range n.pods {
		if ps.Pod.SLO == trace.SLOBE {
			be = append(be, ps)
		}
	}
	// Evict least-progressed pods first: they lose the least work.
	sort.Slice(be, func(i, j int) bool { return be[i].Progress < be[j].Progress })
	var freed trace.Resources
	var out []*PodState
	for _, ps := range be {
		if freed.CPU >= need.CPU && freed.Mem >= need.Mem {
			break
		}
		freed = freed.Add(ps.Pod.Request)
		c.Remove(ps.Pod.ID, now, true)
		out = append(out, ps)
	}
	return out
}

func clampNonNeg(r *trace.Resources) {
	if r.CPU < 0 {
		r.CPU = 0
	}
	if r.Mem < 0 {
		r.Mem = 0
	}
}
