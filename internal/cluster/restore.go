package cluster

import (
	"fmt"

	"unisched/internal/trace"
)

// Restore support: the engine's crash-recovery path (internal/engine
// durability) rebuilds a cluster from a checkpoint by re-attaching pods
// with their original sequence numbers and restoring node lifecycle phases
// and accounting sums verbatim. These entry points bypass the normal
// Place/FailNode invariant checks precisely because recovery replays a
// history that already satisfied them; nothing else should call them.

// RestorePod re-attaches a pod to a node with its recorded scheduling
// sequence and start time. Unlike Place it does not advance nextSeq and
// does not touch the accounting sums — recovery restores those verbatim
// via RestoreNodeAccounting so the sums stay bit-identical to the live
// cluster rather than being re-derived in a different addition order.
// Pods must be restored in their original per-node scheduling order.
func (c *Cluster) RestorePod(p *trace.Pod, nodeID int, seq int, start int64) (*PodState, error) {
	if prev, ok := c.byPod[p.ID]; ok && !prev.Done {
		return nil, fmt.Errorf("cluster: restore: pod %d already running on node %d", p.ID, prev.NodeID)
	}
	n := c.Node(nodeID)
	ps := c.newPodState()
	ps.Pod, ps.NodeID, ps.Seq, ps.Start = p, nodeID, seq, start
	if n.pods == nil {
		if len(c.podRefSlab) < 16 {
			c.podRefSlab = make([]*PodState, 4096)
		}
		n.pods = c.podRefSlab[:0:16]
		c.podRefSlab = c.podRefSlab[16:]
	}
	n.pods = append(n.pods, ps)
	n.bumpApp(p.AppID, 1)
	c.byPod[p.ID] = ps
	if p.Work > 0 {
		c.workPods.Add(1)
	}
	c.notify(nodeID)
	return ps, nil
}

// RestoreNodePhase sets a node's lifecycle phase without displacing pods
// or wiping history: replay applies each pod's own removal record, so a
// FailNode-style cascade here would double-remove them.
func (c *Cluster) RestoreNodePhase(id int, phase NodePhase) {
	n := c.Node(id)
	if n.phase == phase {
		return
	}
	wasUp := n.phase == NodeUp
	n.phase = phase
	switch {
	case wasUp && phase != NodeUp:
		c.notUp++
	case !wasUp && phase == NodeUp:
		c.notUp--
	}
	c.notify(id)
}

// RestoreNodeAccounting overwrites a node's incremental accounting sums
// and next scheduling sequence with checkpointed values. Serialized
// float64s round-trip exactly, so restored sums match the live cluster
// bit for bit even though the addition order that produced them is gone.
func (c *Cluster) RestoreNodeAccounting(id int, nextSeq int, req, limit, guar trace.Resources) {
	n := c.Node(id)
	n.nextSeq = nextSeq
	n.reqSum = req
	n.limitSum = limit
	n.guarReq = guar
	c.notify(id)
}

// NextSeq returns the node's next scheduling sequence number (checkpoint
// assembly).
func (n *NodeState) NextSeq() int { return n.nextSeq }
