package cluster

// Epoch-view support: the engine's zero-lock scheduling path scores
// against per-worker view clusters whose nodes are immutable clones
// published in copy-on-write shard snapshots (internal/engine/store.go).
// A view cluster is structurally a Cluster — so pipelines, candidate
// indexes, and prediction summaries built over it work unchanged — but it
// is never mutated through Place/Remove. Instead the owning worker swaps
// fresh clones in via AdoptNode, which fires the view's own observers
// (index reconcile, summary maintenance) on the worker's goroutine.

// CloneView returns an immutable copy of the node state for publication
// in an epoch snapshot. The pods and appCounts slices are copied because
// the live cluster mutates them in place (Remove shifts pods, bumpApp
// swap-removes); the usage history (by pointer) and the PodState pointers
// are shared, which is safe because only the physics tick writes them and
// the engine quiesces every snapshot reader across ticks. Sharing the
// history means a clone never goes stale on usage data — ticks only have
// to republish nodes whose placement accounting changed.
func (n *NodeState) CloneView() *NodeState {
	cp := *n
	cp.cloneSlicesFrom(n)
	return &cp
}

// CloneViewInto overwrites dst with a publishable copy of n, like
// CloneView but into caller-provided (typically slab-allocated) storage.
func (n *NodeState) CloneViewInto(dst *NodeState) {
	*dst = *n
	dst.cloneSlicesFrom(n)
}

func (cp *NodeState) cloneSlicesFrom(n *NodeState) {
	if len(n.pods) > 0 {
		cp.pods = append([]*PodState(nil), n.pods...)
	} else {
		cp.pods = nil
	}
	if len(n.appCounts) > 0 {
		cp.appCounts = append([]appCount(nil), n.appCounts...)
	} else {
		cp.appCounts = nil
	}
}

// CloneArena slab-allocates view clones for a publisher that makes them
// at high rate (the engine's epoch store: one clone per placement). The
// clone structs and their pods/appCounts copies are carved from chunks,
// cutting the three heap allocations per clone to amortized chunk
// refills. Chunks are garbage-collected once every epoch snapshot
// referencing them has been replaced. Not safe for concurrent use; the
// engine keeps one arena per shard, used only under that shard's lock.
type CloneArena struct {
	nodes []NodeState
	pods  []*PodState
	apps  []appCount
}

// Clone returns a publishable copy of n, equivalent to CloneView but
// arena-allocated.
func (a *CloneArena) Clone(n *NodeState) *NodeState {
	if len(a.nodes) == 0 {
		a.nodes = make([]NodeState, 256)
	}
	cp := &a.nodes[0]
	a.nodes = a.nodes[1:]
	*cp = *n
	if np := len(n.pods); np > 0 {
		if len(a.pods) < np {
			c := 4096
			if c < np {
				c = np
			}
			a.pods = make([]*PodState, c)
		}
		cp.pods = a.pods[:np:np]
		a.pods = a.pods[np:]
		copy(cp.pods, n.pods)
	} else {
		cp.pods = nil
	}
	if na := len(n.appCounts); na > 0 {
		if len(a.apps) < na {
			c := 1024
			if c < na {
				c = na
			}
			a.apps = make([]appCount, c)
		}
		cp.appCounts = a.apps[:na:na]
		a.apps = a.apps[na:]
		copy(cp.appCounts, n.appCounts)
	} else {
		cp.appCounts = nil
	}
	return cp
}

// NewView builds a read-only view cluster over src: same physics, same
// node IDs, every node a CloneView of src's current state. The byPod
// index stays empty — views never deploy, they only score. Node slots are
// one contiguous slab, ordered by ID and stable for the view's lifetime:
// adoption copies clone contents into the slot rather than retargeting
// the pointer, so scoring scans walk sequential memory no matter where
// the published clones were allocated.
func NewView(src *Cluster) *Cluster {
	v := &Cluster{
		Physics: src.Physics,
		nodes:   make([]*NodeState, len(src.nodes)),
		byPod:   make(map[int]*PodState),
		notUp:   src.notUp,
	}
	states := make([]NodeState, len(src.nodes))
	for i, n := range src.nodes {
		n.CloneViewInto(&states[i])
		v.nodes[i] = &states[i]
	}
	return v
}

// AdoptNode installs a published clone into a view cluster, maintaining
// the notUp counter across lifecycle transitions and firing the view's
// observers so its candidate index and prediction summaries reconcile.
// The clone's contents are copied into the view's stable per-ID slot
// (its pods/appCounts slices are shared — the published clone is
// immutable, and views never deploy), preserving the contiguous scan
// layout. Only the view's owning goroutine may call it.
func (c *Cluster) AdoptNode(clone *NodeState) {
	id := clone.Node.ID
	slot := c.nodes[id]
	if (slot.phase == NodeUp) != (clone.phase == NodeUp) {
		if clone.phase == NodeUp {
			c.notUp--
		} else {
			c.notUp++
		}
	}
	*slot = *clone
	c.notify(id)
}
