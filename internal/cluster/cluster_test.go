package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"unisched/internal/stats"
	"unisched/internal/trace"
)

// testWorkload builds a tiny deterministic workload for unit tests.
func testWorkload(t *testing.T) *trace.Workload {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = 10
	return trace.MustGenerate(cfg)
}

func newTestCluster(t *testing.T) (*Cluster, *trace.Workload) {
	t.Helper()
	w := testWorkload(t)
	return New(w.Nodes, DefaultPhysics()), w
}

func TestPlaceRemoveAccounting(t *testing.T) {
	c, w := newTestCluster(t)
	n := c.Node(0)
	p1, p2 := w.Pods[0], w.Pods[1]

	ps1, err := c.Place(p1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(p1, 1, 100); err == nil {
		t.Fatal("double placement should fail")
	}
	ps2, err := c.Place(p2, 0, 130)
	if err != nil {
		t.Fatal(err)
	}
	if ps1.Seq >= ps2.Seq {
		t.Error("Seq not monotone in placement order")
	}
	wantReq := p1.Request.Add(p2.Request)
	if got := n.ReqSum(); math.Abs(got.CPU-wantReq.CPU) > 1e-12 || math.Abs(got.Mem-wantReq.Mem) > 1e-12 {
		t.Errorf("ReqSum = %+v, want %+v", got, wantReq)
	}
	if len(n.Pods()) != 2 {
		t.Fatalf("pod count = %d", len(n.Pods()))
	}

	c.Remove(p1.ID, 200, false)
	if !ps1.Done || ps1.Finish != 200 || ps1.Preempted {
		t.Errorf("removed pod state: %+v", ps1)
	}
	if got := n.ReqSum(); math.Abs(got.CPU-p2.Request.CPU) > 1e-12 {
		t.Errorf("ReqSum after removal = %+v", got)
	}
	// Idempotent removal.
	c.Remove(p1.ID, 300, false)
	if ps1.Finish != 200 {
		t.Error("second Remove changed finish time")
	}
	// A done pod can be re-placed (re-dispatch after preemption).
	if _, err := c.Place(p1, 1, 400); err != nil {
		t.Fatalf("re-placing done pod: %v", err)
	}
}

func TestOvercommitRate(t *testing.T) {
	c, w := newTestCluster(t)
	var req trace.Resources
	for _, p := range w.Pods[:20] {
		if _, err := c.Place(p, 3, 0); err != nil {
			t.Fatal(err)
		}
		req = req.Add(p.Request)
	}
	r, l := c.Node(3).OvercommitRate()
	capc := c.Node(3).Capacity()
	if math.Abs(r.CPU-req.CPU/capc.CPU) > 1e-12 {
		t.Errorf("req overcommit = %v", r.CPU)
	}
	if l.CPU < r.CPU {
		t.Error("limit overcommit below request overcommit")
	}
}

func TestSnapshotCappingConservation(t *testing.T) {
	c, w := newTestCluster(t)
	// Overload node 0 far beyond capacity.
	for _, p := range w.Pods[:300] {
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot(0, 3600, false)
	capc := c.Node(0).Capacity()
	if snap.Usage.CPU > capc.CPU*1.0000001 {
		t.Errorf("capped CPU usage %v exceeds capacity %v", snap.Usage.CPU, capc.CPU)
	}
	if snap.Demand.CPU < snap.Usage.CPU {
		t.Error("demand below usage")
	}
	// Per-pod usages sum to node usage.
	var sum float64
	for _, p := range snap.Pods {
		sum += p.CPUUse
	}
	if math.Abs(sum-snap.Usage.CPU) > 1e-9 {
		t.Errorf("pod usage sum %v != node usage %v", sum, snap.Usage.CPU)
	}
	if snap.CPUPressure <= 1 {
		t.Errorf("expected overload, pressure = %v", snap.CPUPressure)
	}
	if !snap.Violated() {
		t.Error("overloaded snapshot should be Violated")
	}
}

func TestSnapshotIdleNode(t *testing.T) {
	c, _ := newTestCluster(t)
	snap := c.Snapshot(5, 0, false)
	if snap.Usage.CPU != 0 || len(snap.Pods) != 0 || snap.Violated() {
		t.Errorf("idle node snapshot: %+v", snap)
	}
}

func TestPSIGrowsWithLoad(t *testing.T) {
	c, w := newTestCluster(t)
	// Find an LS pod and measure its PSI alone vs on a crowded host.
	var ls *trace.Pod
	for _, p := range w.Pods {
		if p.SLO == trace.SLOLS {
			ls = p
			break
		}
	}
	if _, err := c.Place(ls, 0, 0); err != nil {
		t.Fatal(err)
	}
	lonePSI := avgPSI(c, 0, ls.ID)

	// Crowd the node.
	placed := 1
	for _, p := range w.Pods {
		if p.ID != ls.ID && placed < 400 {
			if _, err := c.Place(p, 0, 0); err == nil {
				placed++
			}
		}
	}
	crowdedPSI := avgPSI(c, 0, ls.ID)
	if crowdedPSI <= lonePSI+0.05 {
		t.Errorf("PSI alone=%v crowded=%v; contention should raise PSI", lonePSI, crowdedPSI)
	}
}

func avgPSI(c *Cluster, nodeID, podID int) float64 {
	var s float64
	var k int
	for ts := int64(0); ts < 3600; ts += trace.SampleInterval {
		snap := c.Snapshot(nodeID, ts, false)
		for _, p := range snap.Pods {
			if p.Pod.Pod.ID == podID {
				s += p.CPUPSI60
				k++
			}
		}
	}
	if k == 0 {
		return 0
	}
	return s / float64(k)
}

func TestBERateDropsUnderContention(t *testing.T) {
	c, w := newTestCluster(t)
	var be *trace.Pod
	for _, p := range w.Pods {
		if p.SLO == trace.SLOBE {
			be = p
			break
		}
	}
	if _, err := c.Place(be, 0, 0); err != nil {
		t.Fatal(err)
	}
	alone := c.Snapshot(0, 60, false)
	rateAlone := podRate(alone, be.ID)

	for _, p := range w.Pods[:250] {
		if p.ID != be.ID {
			c.Place(p, 0, 0) //nolint:errcheck // duplicates skipped by design
		}
	}
	crowded := c.Snapshot(0, 60, false)
	rateCrowded := podRate(crowded, be.ID)
	if rateCrowded >= rateAlone {
		t.Errorf("BE rate alone=%v crowded=%v; contention should slow BE", rateAlone, rateCrowded)
	}
}

func podRate(s NodeSnapshot, podID int) float64 {
	for _, p := range s.Pods {
		if p.Pod.Pod.ID == podID {
			return p.Rate
		}
	}
	return -1
}

func TestTickCompletesBEPods(t *testing.T) {
	c, w := newTestCluster(t)
	var be *trace.Pod
	for _, p := range w.Pods {
		if p.SLO == trace.SLOBE {
			be = p
			break
		}
	}
	if _, err := c.Place(be, 0, 0); err != nil {
		t.Fatal(err)
	}
	var done bool
	deadline := int64(be.NominalDuration()*10) + 7200
	for ts := int64(0); ts < deadline; ts += trace.SampleInterval {
		completed, snaps := c.Tick(ts, float64(trace.SampleInterval))
		if len(snaps) != 10 {
			t.Fatalf("snapshot count = %d", len(snaps))
		}
		for _, ps := range completed {
			if ps.Pod.ID == be.ID {
				done = true
			}
		}
		if done {
			break
		}
	}
	if !done {
		t.Fatal("BE pod never completed")
	}
	if c.RunningPods() != 0 {
		t.Errorf("running pods after completion = %d", c.RunningPods())
	}
	ps := c.PodState(be.ID)
	if !ps.Done || ps.Finish == 0 {
		t.Error("completed pod not marked done")
	}
	// Completion time should be at least the nominal duration.
	ct := float64(ps.Finish - ps.Start)
	if ct < be.NominalDuration()*0.5 {
		t.Errorf("completion time %v impossibly below nominal %v", ct, be.NominalDuration())
	}
}

func TestPreemptBE(t *testing.T) {
	c, w := newTestCluster(t)
	var bes []*trace.Pod
	var ls *trace.Pod
	for _, p := range w.Pods {
		if p.SLO == trace.SLOBE && len(bes) < 5 {
			bes = append(bes, p)
		}
		if p.SLO == trace.SLOLS && ls == nil {
			ls = p
		}
	}
	for _, p := range bes {
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Place(ls, 0, 0); err != nil {
		t.Fatal(err)
	}
	need := trace.Resources{CPU: bes[0].Request.CPU * 2.5, Mem: 0}
	evicted := c.PreemptBE(0, need, 500)
	if len(evicted) == 0 {
		t.Fatal("nothing evicted")
	}
	var freed float64
	for _, ps := range evicted {
		if ps.Pod.SLO != trace.SLOBE {
			t.Error("preempted a non-BE pod")
		}
		if !ps.Preempted || !ps.Done {
			t.Error("evicted pod not marked preempted")
		}
		freed += ps.Pod.Request.CPU
	}
	if freed < need.CPU {
		t.Errorf("freed %v < needed %v", freed, need.CPU)
	}
	// The LS pod must survive.
	if c.PodState(ls.ID).Done {
		t.Error("LS pod was removed")
	}
}

func TestHistoriesRecorded(t *testing.T) {
	c, w := newTestCluster(t)
	for _, p := range w.Pods[:10] {
		if _, err := c.Place(p, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	for ts := int64(0); ts < 40*trace.SampleInterval; ts += trace.SampleInterval {
		c.Tick(ts, float64(trace.SampleInterval))
	}
	n := c.Node(2)
	hist := n.UsageHistory()
	if len(hist) == 0 {
		t.Fatal("no node history")
	}
	if n.LastUsage() != hist[len(hist)-1] {
		t.Error("LastUsage != last history sample")
	}
	for _, ps := range n.Pods() {
		if len(ps.CPUHistory()) == 0 {
			t.Error("pod history empty")
		}
		if ps.MaxCPU() <= 0 {
			t.Error("pod MaxCPU not tracked")
		}
		if ps.P99CPU() > ps.MaxCPU()+1e-12 {
			t.Error("P99 above max")
		}
	}
}

func TestPodHistoryRingWrap(t *testing.T) {
	var h podHistory
	for i := 0; i < podHistCap*2+5; i++ {
		h.record(float64(i), float64(i)/2)
	}
	s := h.cpuSamples()
	if len(s) != podHistCap {
		t.Fatalf("len = %d", len(s))
	}
	// Oldest-first ordering after wrap.
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1]+1 {
			t.Fatalf("samples not in order: %v", s[:8])
		}
	}
	if h.maxCPU != float64(podHistCap*2+4) {
		t.Errorf("maxCPU = %v", h.maxCPU)
	}
}

func TestNodeHistoryRingWrap(t *testing.T) {
	var h nodeHistory
	for i := 0; i < nodeHistCap+100; i++ {
		h.record(trace.Resources{CPU: float64(i)})
	}
	s := h.samples()
	if len(s) != nodeHistCap {
		t.Fatalf("len = %d", len(s))
	}
	if s[0].CPU != 100 || s[len(s)-1].CPU != float64(nodeHistCap+99) {
		t.Errorf("wrap order wrong: first=%v last=%v", s[0].CPU, s[len(s)-1].CPU)
	}
	if h.last().CPU != float64(nodeHistCap+99) {
		t.Errorf("last = %v", h.last().CPU)
	}
}

func TestContentionFunction(t *testing.T) {
	if got := contention(0.3, 0.55); got <= 0 || got > 0.05 {
		t.Errorf("sub-knee contention should be small but positive, got %v", got)
	}
	if got := contention(1, 0.55); math.Abs(got-1.07) > 1e-12 {
		t.Errorf("contention(1) = %v, want 1.07", got)
	}
	if contention(1.5, 0.55) <= 1.07 {
		t.Error("overcommitted pressure should exceed the full-load level")
	}
	if contention(-1, 0.55) != 0 {
		t.Error("negative pressure should be zero")
	}
	// Monotone.
	prev := -1.0
	for p := 0.0; p < 2; p += 0.01 {
		v := contention(p, 0.55)
		if v < prev {
			t.Fatal("contention not monotone")
		}
		prev = v
	}
}

func TestPSICorrelatesWithHostUtil(t *testing.T) {
	// Place a fixed LS pod with varying co-location and verify the
	// PSI-vs-host-utilization correlation the profiler will learn.
	c, w := newTestCluster(t)
	var ls *trace.Pod
	for _, p := range w.Pods {
		if p.SLO == trace.SLOLS {
			ls = p
			break
		}
	}
	if _, err := c.Place(ls, 0, 0); err != nil {
		t.Fatal(err)
	}
	var utils, psis []float64
	i := 0
	for _, p := range w.Pods {
		if p.ID == ls.ID || p.SLO == trace.SLOBE {
			continue
		}
		if _, err := c.Place(p, 0, 0); err != nil {
			continue
		}
		i++
		if i%10 == 0 {
			snap := c.Snapshot(0, 7200, false)
			utils = append(utils, snap.CPUUtil())
			for _, pp := range snap.Pods {
				if pp.Pod.Pod.ID == ls.ID {
					psis = append(psis, pp.CPUPSI60)
				}
			}
		}
		if i > 600 {
			break
		}
	}
	if len(utils) < 5 {
		t.Skip("not enough co-location steps")
	}
	if corr := stats.Pearson(utils, psis); corr < 0.5 {
		t.Errorf("PSI-host util correlation = %v, want > 0.5", corr)
	}
}

// Property: placements and removals conserve request accounting.
func TestAccountingConservationProperty(t *testing.T) {
	w := testWorkload(t)
	f := func(ops []uint8) bool {
		c := New(w.Nodes, DefaultPhysics())
		placed := map[int]bool{}
		for i, op := range ops {
			pod := w.Pods[int(op)%len(w.Pods)]
			node := i % len(w.Nodes)
			if placed[pod.ID] && op%3 == 0 {
				c.Remove(pod.ID, int64(i), false)
				placed[pod.ID] = false
			} else if !placed[pod.ID] {
				if _, err := c.Place(pod, node, int64(i)); err == nil {
					placed[pod.ID] = true
				}
			}
		}
		// Recompute sums from scratch and compare.
		for _, n := range c.Nodes() {
			var req trace.Resources
			for _, ps := range n.Pods() {
				req = req.Add(ps.Pod.Request)
			}
			got := n.ReqSum()
			if math.Abs(got.CPU-req.CPU) > 1e-9 || math.Abs(got.Mem-req.Mem) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGuaranteedReqAccounting(t *testing.T) {
	c, w := newTestCluster(t)
	n := c.Node(0)
	var wantGuar, wantAll trace.Resources
	var placed []*trace.Pod
	for _, p := range w.Pods[:30] {
		if _, err := c.Place(p, 0, 0); err != nil {
			continue
		}
		placed = append(placed, p)
		wantAll = wantAll.Add(p.Request)
		if p.SLO != trace.SLOBE {
			wantGuar = wantGuar.Add(p.Request)
		}
	}
	if g := n.GuaranteedReq(); math.Abs(g.CPU-wantGuar.CPU) > 1e-9 {
		t.Errorf("GuaranteedReq = %v, want %v", g.CPU, wantGuar.CPU)
	}
	if g := n.GuaranteedReq(); g.CPU > n.ReqSum().CPU+1e-9 {
		t.Error("guaranteed above total")
	}
	// Removing pods keeps the split consistent.
	for _, p := range placed {
		c.Remove(p.ID, 100, false)
	}
	if g := n.GuaranteedReq(); g.CPU != 0 || g.Mem != 0 {
		t.Errorf("GuaranteedReq after removals = %+v", g)
	}
}

func TestBEPeakUsageTracksOnlyBE(t *testing.T) {
	c, w := newTestCluster(t)
	// Place only LS pods: BE peak must stay zero.
	placed := 0
	for _, p := range w.Pods {
		if !p.SLO.LatencySensitive() {
			continue
		}
		if _, err := c.Place(p, 1, 0); err == nil {
			placed++
		}
		if placed == 10 {
			break
		}
	}
	for i := 0; i < 10; i++ {
		c.Tick(int64(i)*30, 30)
	}
	n := c.Node(1)
	if be := n.BEPeakUsage(); be.CPU != 0 {
		t.Errorf("BE peak %v with no BE pods", be.CPU)
	}
	if n.PeakUsage().CPU == 0 {
		t.Error("total peak should be positive")
	}
	// Now add BE pods: BE peak grows but stays below total peak.
	added := 0
	for _, p := range w.Pods {
		if p.SLO != trace.SLOBE {
			continue
		}
		if _, err := c.Place(p, 1, 300); err == nil {
			added++
		}
		if added == 10 {
			break
		}
	}
	for i := 10; i < 20; i++ {
		c.Tick(int64(i)*30, 30)
	}
	be := n.BEPeakUsage()
	if be.CPU <= 0 {
		t.Error("BE peak should be positive with BE pods")
	}
	if be.CPU > n.PeakUsage().CPU+1e-9 {
		t.Errorf("BE peak %v above total peak %v", be.CPU, n.PeakUsage().CPU)
	}
}
