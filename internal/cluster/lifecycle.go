package cluster

import "unisched/internal/trace"

// NodePhase is the lifecycle state of a host. The testbed starts every node
// Up; fault injection (internal/chaos) and operator actions move nodes
// through Draining and Down and back.
type NodePhase int

// Node lifecycle phases. Up accepts placements and runs pods; Draining is
// cordoned (no new placements) while its pods are relocated; Down is
// crashed — no placements, no pods, capacity lost.
const (
	NodeUp NodePhase = iota
	NodeDraining
	NodeDown
)

var phaseNames = [...]string{"Up", "Draining", "Down"}

// String names the phase.
func (p NodePhase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return "?"
	}
	return phaseNames[p]
}

// Phase returns the node's lifecycle phase.
func (n *NodeState) Phase() NodePhase { return n.phase }

// Schedulable reports whether new pods may be placed on the node.
func (n *NodeState) Schedulable() bool { return n.phase == NodeUp }

// AllUp reports whether every node is schedulable — the fast path that lets
// candidate filtering skip the per-node phase check on healthy clusters.
func (c *Cluster) AllUp() bool { return c.notUp == 0 }

// FailNode crashes a host: the node goes Down, every running pod is
// displaced (removed, marked Displaced, returned in scheduling order for the
// caller to re-queue), and the node's sampling history is wiped — a machine
// that comes back after a crash is a fresh machine. Failing a Down node is a
// no-op; Draining nodes can still crash.
func (c *Cluster) FailNode(id int, now int64) []*PodState {
	n := c.Node(id)
	if n.phase == NodeDown {
		return nil
	}
	if n.phase == NodeUp {
		c.notUp++
	}
	n.phase = NodeDown
	out := c.displaceAll(n, now)
	*n.hist = nodeHistory{}
	c.notify(id)
	return out
}

// DrainNode cordons a host for maintenance: no new placements land on it and
// its running pods are gracefully displaced (removed, marked Displaced,
// returned for rescheduling). Unlike a crash the node keeps sampling
// history — the machine never went away. Draining a non-Up node is a no-op.
func (c *Cluster) DrainNode(id int, now int64) []*PodState {
	n := c.Node(id)
	if n.phase != NodeUp {
		return nil
	}
	n.phase = NodeDraining
	c.notUp++
	out := c.displaceAll(n, now)
	c.notify(id)
	return out
}

// RecoverNode returns a Down or Draining host to service. Recovering an Up
// node is a no-op.
func (c *Cluster) RecoverNode(id int) {
	n := c.Node(id)
	if n.phase == NodeUp {
		return
	}
	n.phase = NodeUp
	c.notUp--
	c.notify(id)
}

// Evict removes one running pod (chaos-style displacement, distinct from
// the LSR preemption path), marking it Displaced so reschedulers and
// disruption metrics can tell it apart from completed pods. Returns nil if
// the pod is not running.
func (c *Cluster) Evict(podID int, now int64) *PodState {
	ps, ok := c.byPod[podID]
	if !ok || ps.Done {
		return nil
	}
	c.Remove(podID, now, false)
	ps.Displaced = true
	return ps
}

// displaceAll removes every pod from the node, preserving scheduling order
// and the node's capacity-accounting invariants (Remove maintains the sums,
// so an emptied node reads exactly zero).
func (c *Cluster) displaceAll(n *NodeState, now int64) []*PodState {
	if len(n.pods) == 0 {
		return nil
	}
	victims := make([]*PodState, len(n.pods))
	copy(victims, n.pods)
	for _, ps := range victims {
		c.Remove(ps.Pod.ID, now, false)
		ps.Displaced = true
	}
	return victims
}

// DownStats returns the number of Down hosts and their summed capacity —
// the "capacity lost" disruption metric.
func (c *Cluster) DownStats() (nodes int, capacity trace.Resources) {
	if c.notUp == 0 {
		return 0, trace.Resources{}
	}
	for _, n := range c.nodes {
		if n.phase == NodeDown {
			nodes++
			capacity = capacity.Add(n.Node.Capacity)
		}
	}
	return nodes, capacity
}

// TotalCapacity returns the summed capacity of every node regardless of
// phase.
func (c *Cluster) TotalCapacity() trace.Resources {
	var sum trace.Resources
	for _, n := range c.nodes {
		sum = sum.Add(n.Node.Capacity)
	}
	return sum
}
