package cluster

import (
	"testing"

	"unisched/internal/trace"
)

func restoreFixture() (*Cluster, []*trace.Pod) {
	nodes := []*trace.Node{
		{ID: 0, Capacity: trace.Resources{CPU: 64, Mem: 256}},
		{ID: 1, Capacity: trace.Resources{CPU: 64, Mem: 256}},
	}
	pods := []*trace.Pod{
		{ID: 10, AppID: "a", SLO: trace.SLOLS, Request: trace.Resources{CPU: 4, Mem: 8}, Limit: trace.Resources{CPU: 8, Mem: 16}},
		{ID: 11, AppID: "a", SLO: trace.SLOBE, Request: trace.Resources{CPU: 2, Mem: 4}, Limit: trace.Resources{CPU: 4, Mem: 8}},
		{ID: 12, AppID: "b", SLO: trace.SLOLSR, Request: trace.Resources{CPU: 1, Mem: 2}, Limit: trace.Resources{CPU: 2, Mem: 4}},
	}
	return New(nodes, DefaultPhysics()), pods
}

func TestRestorePodMatchesPlace(t *testing.T) {
	// A live cluster built via Place/Remove and a restored one rebuilt
	// from its observable state must agree on every scheduling-relevant
	// field.
	live, pods := restoreFixture()
	for _, p := range pods {
		if _, err := live.Place(p, 0, 100); err != nil {
			t.Fatalf("place %d: %v", p.ID, err)
		}
	}
	live.Remove(pods[1].ID, 200, false) // BE pod leaves; sums shrink

	rest, _ := restoreFixture()
	ln := live.Node(0)
	for _, ps := range ln.pods {
		if _, err := rest.RestorePod(ps.Pod, 0, ps.Seq, ps.Start); err != nil {
			t.Fatalf("restore %d: %v", ps.Pod.ID, err)
		}
	}
	rest.RestoreNodeAccounting(0, ln.nextSeq, ln.reqSum, ln.limitSum, ln.guarReq)

	rn := rest.Node(0)
	if len(rn.pods) != len(ln.pods) {
		t.Fatalf("restored %d pods, want %d", len(rn.pods), len(ln.pods))
	}
	for i := range ln.pods {
		l, r := ln.pods[i], rn.pods[i]
		if l.Pod.ID != r.Pod.ID || l.Seq != r.Seq || l.Start != r.Start || l.NodeID != r.NodeID {
			t.Fatalf("pod %d: live (%d,%d,%d) restored (%d,%d,%d)",
				i, l.Pod.ID, l.Seq, l.Start, r.Pod.ID, r.Seq, r.Start)
		}
	}
	if rn.reqSum != ln.reqSum || rn.limitSum != ln.limitSum || rn.guarReq != ln.guarReq {
		t.Fatalf("sums diverge: restored %+v/%+v/%+v live %+v/%+v/%+v",
			rn.reqSum, rn.limitSum, rn.guarReq, ln.reqSum, ln.limitSum, ln.guarReq)
	}
	if rn.nextSeq != ln.nextSeq {
		t.Fatalf("nextSeq %d, want %d", rn.nextSeq, ln.nextSeq)
	}
	if got := rn.AppPodCount("a"); got != ln.AppPodCount("a") {
		t.Fatalf(`AppPodCount("a") = %d, want %d`, got, ln.AppPodCount("a"))
	}
	// A later Place on the restored node continues the sequence exactly
	// like the live one.
	extra := &trace.Pod{ID: 99, AppID: "b", SLO: trace.SLOLS, Request: trace.Resources{CPU: 1, Mem: 1}}
	lp, _ := live.Place(extra, 0, 300)
	extra2 := *extra
	rp, err := rest.Place(&extra2, 0, 300)
	if err != nil {
		t.Fatalf("place after restore: %v", err)
	}
	if rp.Seq != lp.Seq {
		t.Fatalf("post-restore seq %d, want %d", rp.Seq, lp.Seq)
	}
}

func TestRestorePodRejectsDuplicate(t *testing.T) {
	c, pods := restoreFixture()
	if _, err := c.RestorePod(pods[0], 0, 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestorePod(pods[0], 1, 0, 10); err == nil {
		t.Fatal("restoring a running pod twice must fail")
	}
}

func TestRestoreNodePhase(t *testing.T) {
	c, pods := restoreFixture()
	if !c.AllUp() {
		t.Fatal("fresh cluster not AllUp")
	}
	// Down with a pod still attached: replay order applies the phase
	// first, the pod's own removal record later — no cascade here.
	c.RestorePod(pods[0], 0, 0, 10)
	c.RestoreNodePhase(0, NodeDown)
	if c.AllUp() {
		t.Fatal("AllUp after RestoreNodePhase(Down)")
	}
	if len(c.Node(0).pods) != 1 {
		t.Fatal("RestoreNodePhase displaced pods")
	}
	c.Remove(pods[0].ID, 20, false)
	c.RestoreNodePhase(0, NodeUp)
	if !c.AllUp() {
		t.Fatal("notUp accounting broken after restore round-trip")
	}
	// Idempotent on same phase.
	c.RestoreNodePhase(0, NodeUp)
	if !c.AllUp() {
		t.Fatal("same-phase restore changed notUp")
	}
}
