package cluster

import (
	"math"
	"sort"
	"sync"

	"unisched/internal/trace"
)

// podHistCap bounds the per-pod usage sample ring; with 30 s samples this
// covers the last ~32 minutes, enough for the P99 statistic the Resource
// Central predictor consumes while keeping memory flat.
const podHistCap = 64

// nodeHistCap bounds the per-node usage ring; 2880 samples of 30 s cover
// the 24-hour window the N-sigma predictor uses.
const nodeHistCap = 2880

// histSeedCap is the initial ring capacity each node's history is seeded
// with at construction (~2 hours of samples); rings grow toward
// nodeHistCap by append doubling from there.
const histSeedCap = 256

// podHistory tracks a pod's recent usage plus running extremes. The P99
// statistic is cached and invalidated on record, because the Resource
// Central predictor evaluates it once per candidate scan.
type podHistory struct {
	cpu    [podHistCap]float64
	n      int // total samples ever recorded
	maxCPU float64
	maxMem float64

	// The cached P99 may be computed lazily from concurrent scheduler
	// goroutines (parallel schedulers share the cluster view), so it has
	// its own lock. record() is only called from the single-threaded
	// simulation tick, never concurrently with scheduling.
	p99Mu    sync.Mutex
	p99      float64
	p99Valid bool
}

func (h *podHistory) record(cpu, mem float64) {
	h.cpu[h.n%podHistCap] = cpu
	h.n++
	h.p99Mu.Lock()
	h.p99Valid = false
	h.p99Mu.Unlock()
	if cpu > h.maxCPU {
		h.maxCPU = cpu
	}
	if mem > h.maxMem {
		h.maxMem = mem
	}
}

func (h *podHistory) cpuSamples() []float64 {
	k := h.n
	if k > podHistCap {
		k = podHistCap
	}
	out := make([]float64, k)
	if h.n <= podHistCap {
		copy(out, h.cpu[:k])
		return out
	}
	// Ring wrapped: oldest sample sits at n % cap.
	start := h.n % podHistCap
	copy(out, h.cpu[start:])
	copy(out[podHistCap-start:], h.cpu[:start])
	return out
}

func (h *podHistory) p99CPU() float64 {
	h.p99Mu.Lock()
	defer h.p99Mu.Unlock()
	if h.p99Valid {
		return h.p99
	}
	k := h.n
	if k == 0 {
		return 0
	}
	if k > podHistCap {
		k = podHistCap
	}
	tmp := make([]float64, k)
	copy(tmp, h.cpu[:k])
	sort.Float64s(tmp)
	i := int(0.99 * float64(k))
	if i >= k {
		i = k - 1
	}
	h.p99 = tmp[i]
	h.p99Valid = true
	return h.p99
}

// peakDecay is the per-sample decay of the running peak tracker: ~0.995
// per 30 s sample gives a peak memory of roughly the last hour — the
// horizon a production scheduler's "recent peak" estimate covers.
const peakDecay = 0.995

// nodeHistory is a ring of node usage samples plus a decayed peak and
// incremental window sums, so the Gaussian statistics the N-sigma
// predictor needs are O(1) per query.
type nodeHistory struct {
	buf  [][2]float64 // (cpu, mem), grown lazily up to nodeHistCap
	n    int
	peak [2]float64
	// bePeak tracks the decayed peak of best-effort-only usage, the
	// quantity the production scheduler's usage-based BE admission reads.
	bePeak [2]float64
	sum    [2]float64 // window sums over buf
	sum2   [2]float64 // window sums of squares
}

func (h *nodeHistory) recordBE(be trace.Resources) {
	for i, v := range [2]float64{be.CPU, be.Mem} {
		h.bePeak[i] *= peakDecay
		if v > h.bePeak[i] {
			h.bePeak[i] = v
		}
	}
}

func (h *nodeHistory) record(u trace.Resources) {
	v := [2]float64{u.CPU, u.Mem}
	if len(h.buf) < nodeHistCap {
		if h.buf == nil {
			// Seed the ring with a chunk: every node records every tick, so
			// letting append grow from 1 would cost each node a cascade of
			// reallocations in its first minutes.
			h.buf = make([][2]float64, 0, 256)
		}
		h.buf = append(h.buf, v)
	} else {
		old := h.buf[h.n%nodeHistCap]
		for i := 0; i < 2; i++ {
			h.sum[i] -= old[i]
			h.sum2[i] -= old[i] * old[i]
		}
		h.buf[h.n%nodeHistCap] = v
	}
	h.n++
	for i := 0; i < 2; i++ {
		h.sum[i] += v[i]
		h.sum2[i] += v[i] * v[i]
		h.peak[i] *= peakDecay
		if v[i] > h.peak[i] {
			h.peak[i] = v[i]
		}
	}
}

// meanStd returns the window mean and population standard deviation per
// dimension (0 = CPU, 1 = memory).
func (h *nodeHistory) meanStd(dim int) (mean, std float64) {
	k := h.n
	if k > len(h.buf) {
		k = len(h.buf)
	}
	if k == 0 {
		return 0, 0
	}
	n := float64(k)
	mean = h.sum[dim] / n
	vr := h.sum2[dim]/n - mean*mean
	if vr < 0 {
		vr = 0
	}
	return mean, sqrt(vr)
}

func (h *nodeHistory) last() trace.Resources {
	if h.n == 0 {
		return trace.Resources{}
	}
	v := h.buf[(h.n-1)%nodeHistCap]
	return trace.Resources{CPU: v[0], Mem: v[1]}
}

func (h *nodeHistory) samples() []trace.Resources {
	k := h.n
	if k > len(h.buf) {
		k = len(h.buf)
	}
	out := make([]trace.Resources, 0, k)
	if h.n <= nodeHistCap {
		for _, v := range h.buf[:k] {
			out = append(out, trace.Resources{CPU: v[0], Mem: v[1]})
		}
		return out
	}
	start := h.n % nodeHistCap
	for i := 0; i < k; i++ {
		v := h.buf[(start+i)%nodeHistCap]
		out = append(out, trace.Resources{CPU: v[0], Mem: v[1]})
	}
	return out
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
