package cluster

import (
	"math"

	"unisched/internal/trace"
)

// Physics parameterizes the contention model: how co-located demand turns
// into capped usage, CPU PSI and best-effort slowdown. The defaults are
// tuned so the synthetic cluster reproduces the relationships the paper
// measures (PSI grows superlinearly past ~55 % host CPU utilization and is
// strongly correlated with host and pod utilization; BE completion time is
// strongly correlated with node CPU utilization).
type Physics struct {
	// ContentionKnee is the host CPU pressure where interference starts.
	ContentionKnee float64
	// MemKnee is the host memory pressure where memory stalls start.
	MemKnee float64
	// PSINoise is the relative noise on PSI samples.
	PSINoise float64
	// RTPSIGain scales how PSI inflates response time.
	RTPSIGain float64
}

// DefaultPhysics returns the tuned contention model.
func DefaultPhysics() Physics {
	return Physics{
		ContentionKnee: 0.7,
		MemKnee:        0.8,
		PSINoise:       0.08,
		RTPSIGain:      6.0,
	}
}

// contention maps pressure (demand/capacity) to a contention level: a
// small smooth polynomial component at moderate pressure (queueing delays
// rise gradually well before saturation) plus a quadratic blow-up past the
// knee, reaching ~1.07 at pressure 1 and continuing to grow for
// over-committed hosts.
func contention(pressure, knee float64) float64 {
	if pressure < 0 {
		return 0
	}
	p2 := pressure * pressure
	c := 0.07 * p2 * p2 // smooth sub-knee component
	if pressure > knee {
		x := (pressure - knee) / (1 - knee)
		c += x * x
	}
	return c
}

// PodSnapshot is one pod's 30-second trace record: OS-level usage, PSI and
// application-level metrics, mirroring the "Pod running information" block
// of Fig. 2(a).
type PodSnapshot struct {
	Pod    *PodState
	T      int64
	CPUUse float64 // capped by host contention
	MemUse float64
	QPS    float64

	// CPUPSI* are "some" CPU pressure-stall ratios at the three kernel
	// windows; PSI60 is the cleanest signal, as in Fig. 13-15.
	CPUPSI10, CPUPSI60, CPUPSI300 float64
	// MemPSISome/Full are memory pressure-stall ratios (weakly informative
	// for LS RT, as the paper finds).
	MemPSISome, MemPSIFull float64

	// RT is the pod's average response time over the interval (LS only).
	// It includes dependency-induced noise, which is why the paper finds
	// RT a poor per-pod performance indicator.
	RT float64
	// Rate is the effective BE progress rate in CPU work units/second.
	Rate float64
	// RX and TX are the pod's received/sent network bytes over the
	// interval: proportional to served queries for LS pods and to data
	// processed for BE pods.
	RX, TX float64
}

// NodeSnapshot is a node's 30-second record plus its pods' records.
type NodeSnapshot struct {
	T      int64
	Node   *NodeState
	Phase  NodePhase       // lifecycle phase at sample time
	Usage  trace.Resources // capped actual usage
	Demand trace.Resources // sum of uncapped pod demand
	// CPUPressure and MemPressure are demand/capacity (may exceed 1).
	CPUPressure, MemPressure float64
	Pods                     []PodSnapshot
}

// CPUUtil returns usage/capacity for CPU.
func (s *NodeSnapshot) CPUUtil() float64 { return s.Usage.CPU / s.Node.Node.Capacity.CPU }

// MemUtil returns usage/capacity for memory.
func (s *NodeSnapshot) MemUtil() float64 { return s.Usage.Mem / s.Node.Node.Capacity.Mem }

// Violated reports whether demand exceeded capacity in either dimension —
// the "resource usage violation" of Fig. 19(b).
func (s *NodeSnapshot) Violated() bool {
	return s.CPUPressure > 1.0000001 || s.MemPressure > 1.0000001
}

// Snapshot computes the node's state at time t: pod demands, contention
// capping, usage, PSI and performance metrics. record controls whether the
// sample is appended to pod/node histories (the simulator records once per
// tick; ad-hoc inspection passes false). The returned snapshot owns its pod
// slice and may be retained; the bulk path (Tick) reuses buffers instead.
func (c *Cluster) Snapshot(nodeID int, t int64, record bool) NodeSnapshot {
	var snap NodeSnapshot
	c.snapshotInto(&snap, nodeID, t, record)
	return snap
}

// snapshotInto computes the node's snapshot in place, reusing snap.Pods'
// capacity across calls — the per-tick path would otherwise allocate one
// pod slice per node per tick.
func (c *Cluster) snapshotInto(snap *NodeSnapshot, nodeID int, t int64, record bool) {
	n := c.Node(nodeID)
	pods := snap.Pods
	if cap(pods) < len(n.pods) {
		// Headroom so a node steadily gaining pods doesn't reallocate its
		// snapshot slice every tick.
		pods = make([]PodSnapshot, len(n.pods), len(n.pods)+8)
	} else {
		pods = pods[:len(n.pods)]
	}
	*snap = NodeSnapshot{T: t, Node: n, Phase: n.phase, Pods: pods}
	if n.phase == NodeDown {
		// A crashed host produces no telemetry: no pods run, nothing is
		// recorded, and its history stays wiped until recovery.
		for i := range pods {
			pods[i] = PodSnapshot{}
		}
		return
	}
	capc := n.Node.Capacity

	// Pass 1: demand.
	var cpuDemand, memDemand float64
	for i, ps := range n.pods {
		d := ps.Pod.CPUDemand(t)
		m := ps.Pod.MemDemand(t)
		snap.Pods[i] = PodSnapshot{Pod: ps, T: t, CPUUse: d, MemUse: m, QPS: ps.Pod.QPS(t)}
		cpuDemand += d
		memDemand += m
	}
	snap.Demand = trace.Resources{CPU: cpuDemand, Mem: memDemand}
	snap.CPUPressure = cpuDemand / capc.CPU
	snap.MemPressure = memDemand / capc.Mem

	// Pass 2: proportional capping when demand exceeds capacity.
	cpuScale, memScale := 1.0, 1.0
	if snap.CPUPressure > 1 {
		cpuScale = 1 / snap.CPUPressure
	}
	if snap.MemPressure > 1 {
		memScale = 1 / snap.MemPressure
	}
	cCPU := contention(snap.CPUPressure, c.Physics.ContentionKnee)
	cMem := contention(snap.MemPressure, c.Physics.MemKnee)

	var useCPU, useMem float64
	var beCPU, beMem float64
	for i := range snap.Pods {
		p := &snap.Pods[i]
		p.CPUUse *= cpuScale
		p.MemUse *= memScale
		useCPU += p.CPUUse
		useMem += p.MemUse
		if p.Pod.Pod.SLO == trace.SLOBE {
			beCPU += p.CPUUse
			beMem += p.MemUse
		}
		c.fillPerf(p, cCPU, cMem, t)
		if record {
			p.Pod.hist.record(p.CPUUse, p.MemUse)
		}
	}
	snap.Usage = trace.Resources{CPU: useCPU, Mem: useMem}
	if record {
		n.hist.record(snap.Usage)
		n.hist.recordBE(trace.Resources{CPU: beCPU, Mem: beMem})
	}
}

// fillPerf computes PSI, RT and BE progress rate for one pod snapshot.
func (c *Cluster) fillPerf(p *PodSnapshot, cCPU, cMem float64, t int64) {
	app := p.Pod.Pod.App()
	id := uint64(p.Pod.Pod.ID)

	// Pod-level utilization relative to request: busier pods feel more
	// contention (Fig. 15b: PSI-vs-host-util correlation grows with pod
	// utilization).
	podUtil := 0.0
	if r := p.Pod.Pod.Request.CPU; r > 0 {
		podUtil = p.CPUUse / r
	}
	qpsn := 0.0
	if app.QPSBase > 0 {
		qpsn = p.QPS / (app.QPSBase * 2) // normalize by ~max
	}

	base := app.PSISensitivity * cCPU * (0.35 + podUtil) * (0.4 + 1.2*qpsn)
	psi := clamp01(base)
	noise := c.Physics.PSINoise
	p.CPUPSI10 = clamp01(psi * (1 + 3*noise*hashNoise(id^0x11, t)))
	p.CPUPSI60 = clamp01(psi * (1 + noise*hashNoise(id^0x22, t)))
	// The 300 s window lags the instantaneous signal.
	lagBase := app.PSISensitivity * cCPU * (0.35 + podUtil) * (0.4 + 1.2*qpsn)
	p.CPUPSI300 = clamp01(0.6*lagBase + 0.4*psi*(1+2*noise*hashNoise(id^0x33, t-150)))

	memBase := 0.6 * app.PSISensitivity * cMem
	p.MemPSISome = clamp01(memBase * (1 + 2*noise*hashNoise(id^0x44, t)))
	p.MemPSIFull = clamp01(0.5 * memBase * (1 + 2*noise*hashNoise(id^0x55, t)))

	if p.Pod.Pod.SLO.LatencySensitive() && app.RTBase > 0 {
		// A pod's response time includes the processing of every pod it
		// depends on: a static per-pod dependency factor (replicas serve
		// different downstream partners) plus per-request jitter. This is
		// why RT is inconsistent across the pods of one application
		// (Fig. 12a) and a poor per-pod performance indicator (§3.3.1).
		podDep := 1 + app.RTDepNoise*(0.5+0.5*hashNoise(id^0xAB, 0))
		dep := podDep * (1 + 0.3*math.Abs(hashNoise(id^0x66, t)))
		p.RT = app.RTBase * (1 + c.Physics.RTPSIGain*p.CPUPSI60) * dep
	}

	if p.Pod.Pod.SLO == trace.SLOBE || p.Pod.Pod.Work > 0 {
		// Effective progress: the capped CPU allocation further degraded
		// by app-specific contention sensitivity (cache/IO effects beyond
		// raw CPU share).
		slow := 1 + app.CTSlowCPU*cCPU + app.CTSlowMem*cMem
		p.Rate = p.CPUUse / slow
		// Batch pods stream their input: bytes follow processing rate.
		p.RX = 1e6 * p.Rate * (1 + 0.1*hashNoise(id^0x77, t))
		p.TX = 0.3 * p.RX
	} else if p.QPS > 0 {
		p.RX = 2e3 * p.QPS * (1 + 0.1*hashNoise(id^0x88, t))
		p.TX = 8e3 * p.QPS * (1 + 0.1*hashNoise(id^0x99, t))
	}
}

// Tick advances all BE pods on every node by dt seconds at time t and
// returns the pods that completed. It records histories for all nodes.
//
// The returned snapshots live in a buffer reused by the next Tick call:
// consumers (collectors, recorders, result observers) process them
// synchronously; anything retained past the tick must be copied out.
func (c *Cluster) Tick(t int64, dt float64) (completed []*PodState, snaps []NodeSnapshot) {
	if len(c.snapScratch) != len(c.nodes) {
		c.snapScratch = make([]NodeSnapshot, len(c.nodes))
	}
	snaps = c.snapScratch
	for i := range c.nodes {
		// A Down host produces no telemetry: once its scratch snapshot
		// was written as Down (zero usage, no pods), only the timestamp
		// changes tick to tick. Skipping the rewrite keeps a federated
		// partition's tick cost proportional to the nodes it owns, not
		// the whole cluster — non-owned nodes are Down from genesis.
		n := c.nodes[i]
		if n.phase == NodeDown && snaps[i].Node == n && snaps[i].Phase == NodeDown && len(snaps[i].Pods) == 0 {
			snaps[i].T = t
			continue
		}
		c.snapshotInto(&snaps[i], i, t, true)
		snap := &snaps[i]
		for j := range snap.Pods {
			p := &snap.Pods[j]
			if p.Pod.Pod.Work <= 0 {
				continue
			}
			p.Pod.Progress += p.Rate * dt
			if p.Pod.Progress >= p.Pod.Pod.Work {
				completed = append(completed, p.Pod)
			}
		}
	}
	// Completions take effect at the end of the tick: a pod that finished
	// its work during [t, t+dt) ran for at least dt seconds.
	for _, ps := range completed {
		c.Remove(ps.Pod.ID, t+int64(dt), false)
	}
	return completed, snaps
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// hashNoise returns a deterministic value in [-1, 1) from an identity and a
// time, quantized to the sampling grid — the same trick trace uses, kept
// separate so cluster noise streams never collide with demand noise.
func hashNoise(id uint64, t int64) float64 {
	x := id*0xd1342543de82ef95 ^ uint64(t/trace.SampleInterval)*0xaf251af3b0f025b5
	x ^= x >> 29
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 32
	return 2*(float64(x>>11)/float64(1<<53)) - 1
}
