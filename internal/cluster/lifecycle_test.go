package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"unisched/internal/trace"
)

func TestFailNodeDisplacesAndZeroesAccounting(t *testing.T) {
	c, w := newTestCluster(t)
	var want int
	for _, p := range w.Pods[:8] {
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
		want++
	}
	c.Tick(0, 30) // record some history before the crash

	displaced := c.FailNode(0, 100)
	if len(displaced) != want {
		t.Fatalf("displaced %d pods, want %d", len(displaced), want)
	}
	for _, ps := range displaced {
		if !ps.Displaced {
			t.Error("displaced pod not marked Displaced")
		}
		if ps.Preempted {
			t.Error("failure displacement marked as preemption")
		}
	}
	n := c.Node(0)
	if n.Phase() != NodeDown {
		t.Fatalf("phase = %v, want Down", n.Phase())
	}
	if n.Schedulable() {
		t.Error("down node is schedulable")
	}
	if got := n.ReqSum(); got.CPU != 0 || got.Mem != 0 {
		t.Errorf("ReqSum after failure = %+v, want zero", got)
	}
	if len(n.Pods()) != 0 {
		t.Errorf("pods after failure = %d", len(n.Pods()))
	}
	if len(n.UsageHistory()) != 0 {
		t.Error("crash should wipe node history")
	}
	if _, err := c.Place(w.Pods[20], 0, 200); err == nil {
		t.Fatal("placement on a down node should fail")
	}
	if c.AllUp() {
		t.Error("AllUp with a down node")
	}
	nodes, capc := c.DownStats()
	if nodes != 1 || capc.CPU != n.Capacity().CPU {
		t.Errorf("DownStats = (%d, %+v)", nodes, capc)
	}

	// Failing an already-down node is a no-op.
	if again := c.FailNode(0, 300); len(again) != 0 {
		t.Errorf("second failure displaced %d pods", len(again))
	}

	c.RecoverNode(0)
	if n.Phase() != NodeUp || !c.AllUp() {
		t.Errorf("after recovery: phase=%v allUp=%v", n.Phase(), c.AllUp())
	}
	if _, err := c.Place(w.Pods[20], 0, 400); err != nil {
		t.Fatalf("placement after recovery: %v", err)
	}
}

func TestDrainNodeKeepsHistory(t *testing.T) {
	c, w := newTestCluster(t)
	for _, p := range w.Pods[:5] {
		if _, err := c.Place(p, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Tick(0, 30)
	n := c.Node(1)
	histLen := len(n.UsageHistory())
	if histLen == 0 {
		t.Fatal("no history before drain")
	}

	displaced := c.DrainNode(1, 100)
	if len(displaced) != 5 {
		t.Fatalf("drained %d pods, want 5", len(displaced))
	}
	if n.Phase() != NodeDraining {
		t.Fatalf("phase = %v, want Draining", n.Phase())
	}
	if len(n.UsageHistory()) != histLen {
		t.Error("drain should keep node history (graceful shutdown)")
	}
	if _, err := c.Place(w.Pods[20], 1, 200); err == nil {
		t.Fatal("placement on a draining node should fail")
	}
	// Draining nodes are unavailable but not Down: no capacity is "lost".
	if nodes, _ := c.DownStats(); nodes != 0 {
		t.Errorf("DownStats counts draining nodes: %d", nodes)
	}
	// A draining node cannot be drained or failed into displacing again.
	if again := c.DrainNode(1, 300); len(again) != 0 {
		t.Errorf("second drain displaced %d pods", len(again))
	}
}

func TestEvictSinglePod(t *testing.T) {
	c, w := newTestCluster(t)
	p := w.Pods[0]
	if _, err := c.Place(p, 2, 0); err != nil {
		t.Fatal(err)
	}
	ps := c.Evict(p.ID, 50)
	if ps == nil || !ps.Displaced {
		t.Fatalf("Evict = %+v", ps)
	}
	if got := c.Node(2).ReqSum(); got.CPU != 0 {
		t.Errorf("ReqSum after evict = %+v", got)
	}
	if c.Evict(p.ID, 60) != nil {
		t.Error("evicting a non-running pod should return nil")
	}
	// An evicted pod can be re-placed (the testbed reschedules it).
	if _, err := c.Place(p, 3, 100); err != nil {
		t.Fatalf("re-place after evict: %v", err)
	}
}

func TestSnapshotSkipsDownNodes(t *testing.T) {
	c, w := newTestCluster(t)
	for _, p := range w.Pods[:5] {
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.FailNode(0, 0)
	snap := c.Snapshot(0, 30, false)
	if snap.Phase != NodeDown {
		t.Errorf("snapshot phase = %v", snap.Phase)
	}
	if snap.Usage.CPU != 0 || len(snap.Pods) != 0 {
		t.Errorf("down node reported telemetry: %+v", snap.Usage)
	}
}

// Property (satellite of the fault-injection PR): capacity accounting is
// conserved across arbitrary interleavings of place, evict, fail, drain and
// recover — every node's request sum always equals the sum over its running
// pods, the cluster-wide running set matches per-node pod lists, and the
// phase bookkeeping behind AllUp never drifts.
func TestLifecycleConservationProperty(t *testing.T) {
	w := testWorkload(t)
	f := func(ops []uint16) bool {
		c := New(w.Nodes, DefaultPhysics())
		running := map[int]bool{}
		now := int64(0)
		for _, op := range ops {
			now += 30
			node := int(op) % len(w.Nodes)
			switch op % 5 {
			case 0, 1: // place (two slots: placement should dominate the mix)
				pod := w.Pods[int(op/5)%len(w.Pods)]
				if !running[pod.ID] {
					if _, err := c.Place(pod, node, now); err == nil {
						running[pod.ID] = true
					}
				}
			case 2: // evict one random running pod
				pod := w.Pods[int(op/5)%len(w.Pods)]
				if c.Evict(pod.ID, now) != nil {
					delete(running, pod.ID)
				}
			case 3: // fail or drain
				var out []*PodState
				if op%2 == 0 {
					out = c.FailNode(node, now)
				} else {
					out = c.DrainNode(node, now)
				}
				for _, ps := range out {
					if !running[ps.Pod.ID] {
						return false // displaced a pod we never saw running
					}
					delete(running, ps.Pod.ID)
				}
			case 4:
				c.RecoverNode(node)
			}
		}
		// Invariant 1: per-node request sums match their pod lists.
		total := 0
		for _, n := range c.Nodes() {
			var req, lim trace.Resources
			for _, ps := range n.Pods() {
				req = req.Add(ps.Pod.Request)
				lim = lim.Add(ps.Pod.Limit)
			}
			got := n.ReqSum()
			if math.Abs(got.CPU-req.CPU) > 1e-9 || math.Abs(got.Mem-req.Mem) > 1e-9 {
				return false
			}
			gotLim := n.LimitSum()
			if math.Abs(gotLim.CPU-lim.CPU) > 1e-9 || math.Abs(gotLim.Mem-lim.Mem) > 1e-9 {
				return false
			}
			// Down/Draining nodes hold no pods.
			if n.Phase() != NodeUp && len(n.Pods()) != 0 {
				return false
			}
			total += len(n.Pods())
		}
		// Invariant 2: the running set matches the cluster's pod lists.
		if total != len(running) {
			return false
		}
		// Invariant 3: AllUp agrees with a direct phase scan.
		allUp := true
		for _, n := range c.Nodes() {
			if n.Phase() != NodeUp {
				allUp = false
			}
		}
		return allUp == c.AllUp()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
