// Package experiments reproduces the paper's evaluation (§5): predictor
// accuracy (Fig. 11), profiler accuracy across learning models (Fig. 18),
// end-to-end utilization and violation comparisons across schedulers
// (Fig. 19), pod performance under each scheduler (Fig. 20), sensitivity
// to the objective weights (Fig. 21), scheduling overhead versus cluster
// size (Fig. 22), and the ablations called out in DESIGN.md.
//
// Every harness returns plain result structs that cmd/expbench renders;
// bench_test.go at the repo root wraps each in a testing.B benchmark.
package experiments

import (
	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/trace"
)

// Scale sizes an experiment. Quick scales run in seconds for tests; Full
// approaches the paper's testbed shape.
type Scale struct {
	Nodes   int
	Horizon int64
	Seed    int64
}

// QuickScale is the test-sized configuration.
func QuickScale() Scale { return Scale{Nodes: 24, Horizon: 3 * 3600, Seed: 1} }

// FullScale is the cmd-sized configuration: one simulated day on a few
// hundred hosts (the paper's 6000-host cluster shape at laptop cost).
func FullScale() Scale { return Scale{Nodes: 200, Horizon: trace.Day, Seed: 1} }

// workloadFor builds the experiment workload at a scale.
func workloadFor(s Scale) *trace.Workload {
	cfg := trace.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.NumNodes = s.Nodes
	cfg.Horizon = s.Horizon
	if s.Nodes <= 50 {
		small := trace.SmallConfig()
		small.Seed = s.Seed
		small.NumNodes = s.Nodes
		small.Horizon = s.Horizon
		cfg = small
	}
	return trace.MustGenerate(cfg)
}

// Setup is the shared evaluation context: the workload, the baseline
// (Alibaba-like) run that every comparison normalizes against, and the
// profiles trained from that run's trace feed — the "first seven days"
// of §5.1.
type Setup struct {
	Scale    Scale
	Workload *trace.Workload
	Baseline *sim.Result
	Profiles core.Profiles
	// Collector keeps the live ERO/stats stores that were trained.
	Collector *profiler.Collector
}

// NewSetup generates the workload, replays it under the production
// baseline with the Tracing Coordinator attached, adds a high-pressure
// profiling replay, and trains the profiles.
//
// The stress replay packs the workload round-robin onto half the hosts so
// the training data covers the contended regime. Production profiling data
// has this for free — host CPU utilization reaches 100 % in the trace
// (Fig. 4b) — but a well-behaved baseline replay alone would leave the
// profiles blind above the contention knee.
func NewSetup(s Scale) (*Setup, error) {
	w := workloadFor(s)
	col := profiler.NewCollector(s.Seed)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	base := sim.Run(w, c, sched.NewAlibabaLike(c, s.Seed), sim.Config{Collector: col})
	stressProfile(w, col)
	models, err := col.TrainInterference(profiler.DefaultFactory(), 0.25)
	if err != nil {
		return nil, err
	}
	return &Setup{
		Scale:     s,
		Workload:  w,
		Baseline:  base,
		Profiles:  core.Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models},
		Collector: col,
	}, nil
}

// stressProfile replays the workload with dumb round-robin placement onto
// half the cluster, feeding the collector samples from hot hosts. Each
// stress node gets a different pod cap, so the fleet covers a *graded*
// range of pressures — the profiles need training points throughout the
// utilization range, not just "calm" and "saturated". The caps also keep
// the run bounded: without admission control, contention-slowed BE pods
// would accumulate without limit and the pairwise ERO scan is quadratic in
// pods per host. A few hours of graded samples are plenty.
func stressProfile(w *trace.Workload, col *profiler.Collector) {
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	nodes := len(w.Nodes)/2 + 1
	// Per-node caps from ~4 to ~46 pods: with typical per-pod demand this
	// spans pressures from well below the contention knee to past
	// saturation.
	capOf := func(n int) int { return 4 + (n%15)*3 }
	horizon := w.Horizon
	if max := int64(6 * 3600); horizon > max {
		horizon = max
	}
	next := 0
	idx := 0
	for now := int64(0); now < horizon; now += trace.SampleInterval {
		for idx < len(w.Pods) && w.Pods[idx].Submit <= now {
			p := w.Pods[idx]
			idx++
			// Find a node with room, scanning at most one full round.
			for tries := 0; tries < nodes; tries++ {
				n := c.Node(next % nodes)
				next++
				if len(n.Pods()) >= capOf(n.Node.ID) {
					continue
				}
				if _, err := c.Place(p, n.Node.ID, now); err == nil {
					break
				}
			}
		}
		completed, snaps := c.Tick(now, float64(trace.SampleInterval))
		col.ObserveTick(snaps)
		for _, ps := range completed {
			col.ObserveCompletion(ps)
		}
	}
}

// SchedulerName identifies the evaluated schedulers in result tables.
type SchedulerName string

// The §5.1 scheduler lineup.
const (
	NameOptum    SchedulerName = "Optum"
	NameRCLike   SchedulerName = "RC-like"
	NameNSigma   SchedulerName = "N-sigma"
	NameBorgLike SchedulerName = "Borg-like"
	NameMedea    SchedulerName = "Medea"
	NameKubeLike SchedulerName = "Kube-like"
	NameAlibaba  SchedulerName = "Alibaba"
)

// EvalSchedulers is the comparison set of Fig. 19-20, in display order.
var EvalSchedulers = []SchedulerName{NameOptum, NameRCLike, NameNSigma, NameBorgLike, NameMedea}

// buildScheduler constructs a named scheduler over a fresh cluster.
func (s *Setup) buildScheduler(name SchedulerName, c *cluster.Cluster, opt core.Options) sched.Scheduler {
	seed := s.Scale.Seed + 100
	switch name {
	case NameOptum:
		return core.New(c, s.Profiles, opt, seed)
	case NameRCLike:
		return sched.NewRCLike(c, seed)
	case NameNSigma:
		return sched.NewNSigma(c, seed)
	case NameBorgLike:
		return sched.NewBorgLike(c, seed)
	case NameMedea:
		return sched.NewMedea(c, seed)
	case NameKubeLike:
		return sched.NewKubeLike(c, seed)
	default:
		return sched.NewAlibabaLike(c, seed)
	}
}

// RunScheduler replays the workload under one scheduler with the given
// Optum options (ignored for baselines).
func (s *Setup) RunScheduler(name SchedulerName, opt core.Options) *sim.Result {
	c := cluster.New(s.Workload.Nodes, cluster.DefaultPhysics())
	schd := s.buildScheduler(name, c, opt)
	return sim.Run(s.Workload, c, schd, sim.Config{})
}
