package experiments

import (
	"sync"
	"testing"
)

// Setup is expensive (a full baseline replay plus model training); share
// one across the package's tests.
var (
	setupOnce sync.Once
	gSetup    *Setup
	gErr      error
)

func quickSetup(t *testing.T) *Setup {
	t.Helper()
	setupOnce.Do(func() { gSetup, gErr = NewSetup(QuickScale()) })
	if gErr != nil {
		t.Fatal(gErr)
	}
	return gSetup
}

func TestSetupTrainsProfiles(t *testing.T) {
	s := quickSetup(t)
	if s.Profiles.ERO.Pairs() == 0 {
		t.Error("no ERO pairs")
	}
	if len(s.Profiles.Models.LS) == 0 {
		t.Error("no LS models")
	}
	if s.Baseline.Placed == 0 {
		t.Error("baseline placed nothing")
	}
}

func TestFig11Shapes(t *testing.T) {
	s := quickSetup(t)
	rows := Fig11PredictorErrors(s, 4)
	if len(rows) != 5 {
		t.Fatalf("got %d predictors", len(rows))
	}
	byName := map[string]PredictorErrors{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Over.Len()+r.Under.Len() == 0 {
			t.Fatalf("%s produced no samples", r.Name)
		}
	}
	borg := byName["Borg default"]
	optum := byName["Optum Predictor"]
	rc := byName["Resource Central"]
	max := byName["Max Predictor"]

	// Fig 11a: Borg default over-estimates severely (p50 of its
	// over-estimations >= ~50%); Optum's mean error is far smaller.
	if borg.Over.Quantile(0.5) < 40 {
		t.Errorf("Borg over-estimation median = %v%%, expected severe", borg.Over.Quantile(0.5))
	}
	if optum.MeanAbs >= borg.MeanAbs {
		t.Errorf("Optum mean error (%v) should beat Borg (%v)", optum.MeanAbs, borg.MeanAbs)
	}
	// Max predictor over-estimates at least as much as Borg (it takes the
	// maximum of its members).
	if max.Over.Quantile(0.5) < borg.Over.Quantile(0.5)-1 {
		t.Errorf("Max over-estimation (%v) should dominate Borg (%v)",
			max.Over.Quantile(0.5), borg.Over.Quantile(0.5))
	}
	// Fig 11b: Resource Central under-estimates (by > 10 %) more often
	// than Optum — the paper reports a 3x gap. Optum is a peak estimator,
	// so deep under-estimation should be rare.
	if rc.UnderFrac10 < optum.UnderFrac10 {
		t.Errorf("RC under-estimation rate (%v) should exceed Optum's (%v)",
			rc.UnderFrac10, optum.UnderFrac10)
	}
	// Optum's worst over-estimation stays bounded relative to Borg's.
	if optum.Over.Len() > 20 && borg.Over.Len() > 20 {
		if optum.Over.Quantile(0.9) > borg.Over.Quantile(0.9) {
			t.Errorf("Optum over-estimation p90 (%v) above Borg's (%v)",
				optum.Over.Quantile(0.9), borg.Over.Quantile(0.9))
		}
	}
}

func TestFig18RFBest(t *testing.T) {
	s := quickSetup(t)
	rows, err := Fig18ProfilerAccuracy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d models", len(rows))
	}
	byName := map[string]ModelAccuracy{}
	for _, r := range rows {
		byName[r.Model] = r
		if r.LS.Len() == 0 {
			t.Fatalf("%s trained no LS apps", r.Model)
		}
	}
	// Fig 18a: RF has the best (lowest) median LS MAPE of the lineup.
	rf := byName["RF"].LS.Quantile(0.5)
	for _, name := range []string{"LR", "Ridge", "SVR", "MLP"} {
		if other := byName[name].LS.Quantile(0.5); rf > other+0.02 {
			t.Errorf("RF median MAPE (%v) should not exceed %s (%v)", rf, name, other)
		}
	}
	// Fig 18a magnitude: most LS apps profile accurately under RF.
	if f := byName["RF"].LS.At(0.3); f < 0.5 {
		t.Errorf("only %v of LS apps under MAPE 0.3 with RF", f)
	}
}

func TestFig19OptumWins(t *testing.T) {
	s := quickSetup(t)
	evals := RunEvaluation(s, nil)
	if len(evals) != len(EvalSchedulers) {
		t.Fatalf("got %d evals", len(evals))
	}
	byName := map[SchedulerName]SchedulerEval{}
	for _, e := range evals {
		byName[e.Name] = e
	}
	optum := byName[NameOptum]

	// Fig 19a: every scheduler improves utilization over the production
	// baseline (the original wastes the guaranteed classes' reservations);
	// Optum's improvement is positive on both the raw and the goodput
	// metric.
	for _, e := range evals {
		if e.MeanImprovement < -0.5 {
			t.Errorf("%s improvement %vpp — should improve over the baseline",
				e.Name, e.MeanImprovement)
		}
	}
	if optum.MeanImprovement <= 0 || optum.GoodputImprovement <= 0 {
		t.Errorf("Optum improvement = %v/%vpp, want positive",
			optum.MeanImprovement, optum.GoodputImprovement)
	}
	// Fig 20 + §5.4, Optum's distinguishing claims: no capacity
	// violations, no LS degradation, scheduling delay an order of
	// magnitude below every baseline (the paper reports < 10 s; one
	// 30 s tick is our floor).
	if optum.ViolationRate > 0.005 || optum.PSIViolationRate > 0.08 {
		t.Errorf("Optum not safe: viol=%v psi=%v", optum.ViolationRate, optum.PSIViolationRate)
	}
	if optum.MeanWait > 2*30 {
		t.Errorf("Optum mean wait %vs, want within ~one tick", optum.MeanWait)
	}
	for _, name := range []SchedulerName{NameRCLike, NameNSigma, NameBorgLike, NameMedea} {
		if byName[name].MeanWait <= optum.MeanWait {
			t.Errorf("%s mean wait (%vs) at or below Optum's (%vs)",
				name, byName[name].MeanWait, optum.MeanWait)
		}
	}
	// The utilization-chasing baseline pays in BE degradation: N-sigma
	// may beat Optum's raw improvement but not its performance.
	if ns := byName[NameNSigma]; ns.MeanImprovement > optum.MeanImprovement &&
		ns.CTViolationRate <= optum.CTViolationRate {
		t.Errorf("N-sigma dominates Optum: %vpp/%v vs %vpp/%v",
			ns.MeanImprovement, ns.CTViolationRate,
			optum.MeanImprovement, optum.CTViolationRate)
	}
	// Fig 19b: violation rates stay small for every scheduler.
	for _, e := range evals {
		if e.ViolationRate > 0.05 {
			t.Errorf("%s violation rate %v too high", e.Name, e.ViolationRate)
		}
	}
}

func TestFig21Trends(t *testing.T) {
	s := quickSetup(t)
	pts := Fig21Sensitivity(s, []float64{0.1, 0.9})
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	var small, large Fig21Point
	for _, p := range pts {
		if p.OmegaO == 0.1 && p.OmegaB == 0.1 {
			small = p
		}
		if p.OmegaO == 0.9 && p.OmegaB == 0.9 {
			large = p
		}
	}
	// §5.5: small weights chase utilization (higher improvement, more
	// violations); large weights protect performance.
	if small.MeanImprovement < large.MeanImprovement-1 {
		t.Errorf("small weights (%vpp) should improve at least as much as large (%vpp)",
			small.MeanImprovement, large.MeanImprovement)
	}
	if large.PSIViolationRate > small.PSIViolationRate+0.05 {
		t.Errorf("large weights PSI violation %v should not exceed small %v",
			large.PSIViolationRate, small.PSIViolationRate)
	}
}

func TestFig22Overhead(t *testing.T) {
	s := quickSetup(t)
	pts := Fig22Overhead(s, []int{200, 400}, 10)
	if len(pts) != 2*len(EvalSchedulers) {
		t.Fatalf("got %d points", len(pts))
	}
	lat := map[SchedulerName]map[int]float64{}
	for _, p := range pts {
		if p.MeanMs < 0 || p.MaxMs < p.MeanMs {
			t.Fatalf("bad latency point %+v", p)
		}
		if lat[p.Scheduler] == nil {
			lat[p.Scheduler] = map[int]float64{}
		}
		lat[p.Scheduler][p.Nodes] = p.MeanMs
	}
	// Borg-like is the cheapest full-scan scheduler (request sums only).
	if lat[NameBorgLike][400] > lat[NameRCLike][400]*2+0.05 {
		t.Errorf("Borg-like latency (%v) should be among the lowest (RC %v)",
			lat[NameBorgLike][400], lat[NameRCLike][400])
	}
}

func TestAblationERO(t *testing.T) {
	s := quickSetup(t)
	ab := RunAblationERO(s)
	if ab.Samples == 0 {
		t.Fatal("no samples")
	}
	// The pairwise peak predictor trades some average accuracy for safety:
	// it must under-estimate less often than RC and stay within a
	// reasonable factor on mean error.
	if ab.OptumUnderRate > ab.RCUnderRate+1e-9 {
		t.Errorf("Optum under-estimation rate %v above RC %v", ab.OptumUnderRate, ab.RCUnderRate)
	}
	if ab.OptumMeanAbs > ab.RCMeanAbs*5+20 {
		t.Errorf("Optum mean abs error %v far above RC %v", ab.OptumMeanAbs, ab.RCMeanAbs)
	}
}

func TestAblationBucketize(t *testing.T) {
	s := quickSetup(t)
	ab, err := RunAblationBucketize(s)
	if err != nil {
		t.Fatal(err)
	}
	if ab.BucketizedLSMAPE < 0 || ab.RawLSMAPE < 0 {
		t.Fatal("negative MAPE")
	}
	// Bucketization must not be catastrophically worse; the paper adopts
	// it for accuracy/stability.
	if ab.BucketizedLSMAPE > ab.RawLSMAPE*3+0.3 {
		t.Errorf("bucketized MAPE %v >> raw %v", ab.BucketizedLSMAPE, ab.RawLSMAPE)
	}
}

func TestAblationPPO(t *testing.T) {
	s := quickSetup(t)
	ab := RunAblationPPO(s)
	// PPO sampling must not destroy scheduling quality (§5.6: performance
	// was not degraded thanks to the interference-aware node selection).
	if ab.SampledPSIViol > ab.FullPSIViol+0.1 {
		t.Errorf("sampled PSI violations %v far above full scan %v",
			ab.SampledPSIViol, ab.FullPSIViol)
	}
	if ab.SampledMeanMs < 0 || ab.FullMeanMs < 0 {
		t.Fatal("negative latency")
	}
}

func TestAblationScoreForm(t *testing.T) {
	s := quickSetup(t)
	ab := RunAblationScoreForm(s)
	if ab.JointMemBusy <= 0 || ab.CPUOnlyMemBusy <= 0 {
		t.Fatal("no memory utilization measured")
	}
}

func TestAblationTriples(t *testing.T) {
	s := quickSetup(t)
	ab := RunAblationTriples(s)
	if ab.Samples == 0 || ab.Triples == 0 {
		t.Fatalf("no data: %+v", ab)
	}
	// The triple-wise extension exists to tighten the peak estimate: its
	// mean over-estimation must not exceed the pairwise predictor's.
	if ab.TripleMeanOver > ab.PairMeanOver+1 {
		t.Errorf("triple over-estimation %v above pairwise %v",
			ab.TripleMeanOver, ab.PairMeanOver)
	}
	// And the profiling overhead the paper warns about is real: far more
	// combinations tracked.
	if ab.Triples < ab.Pairs {
		t.Logf("triples %d < pairs %d (subsampled)", ab.Triples, ab.Pairs)
	}
}

func TestKubeLikeEvaluates(t *testing.T) {
	s := quickSetup(t)
	evals := RunEvaluation(s, []SchedulerName{NameKubeLike})
	if len(evals) != 1 || evals[0].Name != NameKubeLike {
		t.Fatalf("unexpected evals: %+v", evals)
	}
	// Stock Kubernetes never over-commits requests, so it can only lose
	// utilization against the usage-aware baseline — but it must stay
	// violation-free.
	if evals[0].ViolationRate > 0.005 {
		t.Errorf("Kube-like violation rate %v", evals[0].ViolationRate)
	}
}
