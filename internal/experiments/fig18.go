package experiments

import (
	"unisched/internal/mlearn"
	"unisched/internal/profiler"
	"unisched/internal/stats"
)

// ModelAccuracy is one model family's Fig. 18 row: the distribution of
// per-application held-out MAPE for LS (PSI) and BE (completion time)
// profiles.
type ModelAccuracy struct {
	Model string
	LS    *stats.CDF
	BE    *stats.CDF
}

// fig18Factories builds the §5.2 model lineup, in the paper's legend order.
func fig18Factories() []struct {
	name    string
	factory profiler.ModelFactory
} {
	bucket := func(inner func(seed int64) mlearn.Regressor) profiler.ModelFactory {
		return func(seed int64) mlearn.Regressor {
			return &mlearn.Bucketized{Inner: inner(seed), B: mlearn.NewBucketizer(0, 1, 25)}
		}
	}
	return []struct {
		name    string
		factory profiler.ModelFactory
	}{
		{"RF", bucket(func(seed int64) mlearn.Regressor { return mlearn.NewForest(20, seed) })},
		{"LR", bucket(func(int64) mlearn.Regressor { return mlearn.NewLinear() })},
		{"Ridge", bucket(func(int64) mlearn.Regressor { return mlearn.NewRidge(1.0) })},
		{"SVR", bucket(func(seed int64) mlearn.Regressor { return mlearn.NewSVR(seed) })},
		{"MLP", bucket(func(seed int64) mlearn.Regressor { return mlearn.NewMLP(seed) })},
	}
}

// Fig18ProfilerAccuracy trains the Interference Profiler with each §5.2
// model family on the setup's collected samples and reports per-app MAPE
// distributions (25-bucket discretized targets, 25 % held-out split).
func Fig18ProfilerAccuracy(s *Setup) ([]ModelAccuracy, error) {
	out := make([]ModelAccuracy, 0, 5)
	for _, f := range fig18Factories() {
		models, err := s.Collector.TrainInterference(f.factory, 0.25)
		if err != nil {
			return nil, err
		}
		var ls, be []float64
		for _, m := range models.LS {
			ls = append(ls, m.MAPE)
		}
		for _, m := range models.BE {
			be = append(be, m.MAPE)
		}
		out = append(out, ModelAccuracy{Model: f.name, LS: stats.NewCDF(ls), BE: stats.NewCDF(be)})
	}
	return out, nil
}
