package experiments

import (
	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/stats"
	"unisched/internal/trace"
)

// ChurnEval is one scheduler's row in the fault-injection comparison: how
// the scheduler behaves when nodes crash, drain and recover mid-run, pods
// are randomly evicted, and profiler data blacks out.
type ChurnEval struct {
	Name SchedulerName

	// Disruption counters from the run.
	Evictions   int
	Reschedules int
	Exhausted   int
	// LostPods counts submitted pods with no terminal accounting at all —
	// never placed, not pending at the end, and not reported as
	// evicted-with-exhausted-retries. Any scheduler/testbed combination
	// that loses track of a pod under churn reports it here; the invariant
	// is zero.
	LostPods int

	// MeanTimeToReplace is the mean seconds from a displacement to the
	// pod's next placement (NaN-free: zero when nothing was displaced).
	MeanTimeToReplace float64
	// MeanCapacityLost is the run-average fraction of cluster CPU capacity
	// sitting on Down hosts.
	MeanCapacityLost float64
	// MaxDownNodes is the worst simultaneous Down-host count.
	MaxDownNodes int

	// ViolationRate is the mean per-(up-host, tick) usage-violation rate —
	// the safety metric that must survive degraded-mode scheduling.
	ViolationRate float64
	// MeanUtilBusy is the run-average CPU utilization over busy hosts.
	MeanUtilBusy float64
	// MeanWaitLS is the mean scheduling delay of latency-sensitive pods
	// (displaced LSR/LS pods jump the queue, so churn should barely move
	// this).
	MeanWaitLS float64

	// FaultEvents is how many faults actually fired.
	FaultEvents int

	Result *sim.Result
}

// RunSchedulerChaos replays the workload under one scheduler with fault
// injection. Each run gets a fresh injector with the same seed, schedule
// and rates, so every scheduler faces an identical fault stream. For Optum
// the injector doubles as the profiler-blackout signal, exercising the
// degraded request-based fallback.
func (s *Setup) RunSchedulerChaos(name SchedulerName, opt core.Options, schedule []chaos.Event, rates chaos.Rates) (*sim.Result, *chaos.Injector) {
	c := cluster.New(s.Workload.Nodes, cluster.DefaultPhysics())
	inj := chaos.NewInjector(s.Scale.Seed+999, schedule, rates)
	var schd sched.Scheduler
	if name == NameOptum {
		prof := s.Profiles
		prof.Blackout = inj
		schd = core.New(c, prof, opt, s.Scale.Seed+100)
	} else {
		schd = s.buildScheduler(name, c, opt)
	}
	res := sim.Run(s.Workload, c, schd, sim.Config{Chaos: inj})
	return res, inj
}

// ChurnSchedulers is the default fault-injection comparison: Optum against
// the production baseline it replaces.
var ChurnSchedulers = []SchedulerName{NameOptum, NameAlibaba}

// FigChurn replays the workload under identical fault streams for each
// scheduler and summarizes disruption handling. A nil/empty name list runs
// ChurnSchedulers; zero rates plus a nil schedule mean DefaultRates.
func FigChurn(s *Setup, schedule []chaos.Event, rates chaos.Rates, names []SchedulerName) []ChurnEval {
	if len(names) == 0 {
		names = ChurnSchedulers
	}
	if rates == (chaos.Rates{}) && len(schedule) == 0 {
		rates = chaos.DefaultRates()
	}
	out := make([]ChurnEval, 0, len(names))
	for _, name := range names {
		res, inj := s.RunSchedulerChaos(name, core.DefaultOptions(), schedule, rates)
		out = append(out, EvaluateChurn(s, res, inj))
	}
	return out
}

// EvaluateChurn summarizes one chaos run.
func EvaluateChurn(s *Setup, res *sim.Result, inj *chaos.Injector) ChurnEval {
	d := &res.Disruption
	ev := ChurnEval{
		Name:          SchedulerName(res.Scheduler),
		Evictions:     d.Evictions,
		Reschedules:   d.Reschedules,
		Exhausted:     d.Exhausted,
		LostPods:      LostPods(s.Workload, res),
		ViolationRate: stats.Mean(res.Violation),
		MeanUtilBusy:  stats.Mean(res.CPUUtilBusy),
		Result:        res,
	}
	if len(d.TimeToReplace) > 0 {
		ev.MeanTimeToReplace = stats.Mean(d.TimeToReplace)
	}
	if len(d.CapacityLost) > 0 {
		ev.MeanCapacityLost = stats.Mean(d.CapacityLost)
	}
	for _, n := range d.DownNodes {
		if n > ev.MaxDownNodes {
			ev.MaxDownNodes = n
		}
	}
	var lsWaits []float64
	for _, pw := range res.Waits {
		if pw.Scheduled && pw.SLO.LatencySensitive() {
			lsWaits = append(lsWaits, float64(pw.Wait))
		}
	}
	if len(lsWaits) > 0 {
		ev.MeanWaitLS = stats.Mean(lsWaits)
	}
	if inj != nil {
		ev.FaultEvents = len(inj.Applied())
	}
	return ev
}

// LostPods counts submitted pods the run lost track of. Every pod submitted
// within the horizon must have at least one PodWait record: placed, censored
// pending at the end, or evicted-with-exhausted-retries. Zero is the
// invariant FigChurn asserts.
func LostPods(w *trace.Workload, res *sim.Result) int {
	seen := make(map[int]bool, len(res.Waits))
	for _, pw := range res.Waits {
		seen[pw.PodID] = true
	}
	lost := 0
	for _, p := range w.Pods {
		if p.Submit <= w.Horizon && !seen[p.ID] {
			lost++
		}
	}
	return lost
}
