package experiments

import (
	"unisched/internal/cluster"
	"unisched/internal/predictor"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/stats"
)

// PredictorErrors holds Fig. 11's data for one predictor: the distribution
// of signed relative errors against next-interval ground truth, split into
// the over-estimation CDF (Fig. 11a) and under-estimation CDF (Fig. 11b).
type PredictorErrors struct {
	Name string
	// Over holds errors > 0 (percent), Under errors < 0 (percent).
	Over, Under *stats.CDF
	// MeanAbs is the mean absolute error (percent) over all samples.
	MeanAbs float64
	// UnderFrac10 is the fraction of all samples under-estimating by more
	// than 10 % — the §3.2.2 safety metric (Resource Central is three
	// times more likely than Optum to under-estimate by over 10 %).
	UnderFrac10 float64
}

// Fig11PredictorErrors replays the workload under the production baseline
// and, every sampleEvery ticks, records each predictor's host-level CPU
// prediction against the usage actually observed one interval later
// (§3.2.2's evaluation protocol).
func Fig11PredictorErrors(s *Setup, sampleEvery int) []PredictorErrors {
	if sampleEvery <= 0 {
		sampleEvery = 4
	}
	preds := []predictor.Predictor{
		predictor.NewNSigma(),
		predictor.ResourceCentral{},
		predictor.NewBorgDefault(),
		predictor.NewMax(),
		predictor.NewOptum(s.Profiles.ERO),
	}
	errsByPred := make([][]float64, len(preds))

	c := cluster.New(s.Workload.Nodes, cluster.DefaultPhysics())
	type pendingPred struct {
		vals []float64 // one prediction per predictor
	}
	pendingByNode := make(map[int]pendingPred)
	tick := 0
	cfg := sim.Config{OnTick: func(t int64, snaps []cluster.NodeSnapshot) {
		tick++
		// Resolve predictions made last sampled tick against current truth.
		for i := range snaps {
			snap := &snaps[i]
			pp, ok := pendingByNode[snap.Node.Node.ID]
			if !ok {
				continue
			}
			truth := snap.Usage.CPU
			if truth <= 0.05 { // skip (near-)idle hosts: relative error meaningless
				continue
			}
			for k, v := range pp.vals {
				errsByPred[k] = append(errsByPred[k], 100*predictor.Error(v, truth))
			}
		}
		pendingByNode = make(map[int]pendingPred)
		if tick%sampleEvery != 0 {
			return
		}
		for i := range snaps {
			snap := &snaps[i]
			if len(snap.Pods) == 0 {
				continue
			}
			vals := make([]float64, len(preds))
			for k, p := range preds {
				vals[k] = p.PredictCPU(snap.Node)
			}
			pendingByNode[snap.Node.Node.ID] = pendingPred{vals: vals}
		}
	}}
	sim.Run(s.Workload, c, sched.NewAlibabaLike(c, s.Scale.Seed), cfg)

	out := make([]PredictorErrors, len(preds))
	for k, p := range preds {
		var over, under []float64
		var absSum float64
		deep := 0
		for _, e := range errsByPred[k] {
			if e > 0 {
				over = append(over, e)
			} else if e < 0 {
				under = append(under, e)
			}
			if e < -10 {
				deep++
			}
			if e < 0 {
				absSum -= e
			} else {
				absSum += e
			}
		}
		mean, uf := 0.0, 0.0
		if n := len(errsByPred[k]); n > 0 {
			mean = absSum / float64(n)
			uf = float64(deep) / float64(n)
		}
		out[k] = PredictorErrors{
			Name: p.Name(), Over: stats.NewCDF(over), Under: stats.NewCDF(under),
			MeanAbs: mean, UnderFrac10: uf,
		}
	}
	return out
}
