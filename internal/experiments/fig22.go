package experiments

import (
	"time"

	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/trace"
)

// OverheadPoint is one Fig. 22 measurement: mean and max wall-clock
// per-pod scheduling latency for one scheduler at one cluster size.
type OverheadPoint struct {
	Scheduler SchedulerName
	Nodes     int
	MeanMs    float64
	MaxMs     float64
}

// Fig22Overhead measures real scheduling latency against pre-loaded
// clusters of increasing size. Each cluster is filled to a realistic pod
// density, warmed so histories exist, and then each scheduler decides
// podsToSchedule placements one at a time while the wall clock runs.
func Fig22Overhead(s *Setup, nodeCounts []int, podsToSchedule int) []OverheadPoint {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1000, 2000, 3000, 4000, 5000, 6000}
	}
	if podsToSchedule <= 0 {
		podsToSchedule = 50
	}
	var out []OverheadPoint
	for _, nn := range nodeCounts {
		cfg := trace.DefaultConfig()
		cfg.Seed = s.Scale.Seed
		cfg.NumNodes = nn
		cfg.Horizon = 3600
		w := trace.MustGenerate(cfg)

		// Pre-load the cluster round-robin and warm histories.
		base := cluster.New(w.Nodes, cluster.DefaultPhysics())
		next := 0
		for _, p := range w.Pods {
			if next >= nn*20 {
				break
			}
			if _, err := base.Place(p, next%nn, 0); err == nil {
				next++
			}
		}
		for i := 0; i < 4; i++ {
			base.Tick(int64(i)*trace.SampleInterval, float64(trace.SampleInterval))
		}

		// The pods to schedule: the next unplaced ones.
		var batch []*trace.Pod
		for _, p := range w.Pods {
			if base.PodState(p.ID) == nil {
				batch = append(batch, p)
			}
			if len(batch) == podsToSchedule {
				break
			}
		}

		for _, name := range append([]SchedulerName{}, EvalSchedulers...) {
			schd := s.buildScheduler(name, base, core.DefaultOptions())
			var total, max time.Duration
			for _, p := range batch {
				start := time.Now()
				schd.Schedule([]*trace.Pod{p}, 120)
				el := time.Since(start)
				total += el
				if el > max {
					max = el
				}
			}
			out = append(out, OverheadPoint{
				Scheduler: name,
				Nodes:     nn,
				MeanMs:    total.Seconds() * 1000 / float64(len(batch)),
				MaxMs:     max.Seconds() * 1000,
			})
		}
	}
	return out
}
