package experiments

import (
	"hash/fnv"
	"sort"
	"testing"

	"unisched/internal/core"
	"unisched/internal/sim"
)

// GoldenSchedulers is every scheduler config the repo evaluates — the
// Fig. 19-20 lineup plus the two production reference points.
var GoldenSchedulers = []SchedulerName{
	NameOptum, NameRCLike, NameNSigma, NameBorgLike,
	NameMedea, NameKubeLike, NameAlibaba,
}

// goldenPlacements freezes the fixed-seed placement outcome of every
// scheduler config: an FNV-1a hash over the final pod-to-node assignment
// plus the placed/pending totals of a QuickScale replay.
//
// These values are the repo's bit-identity gate. Performance work on the
// scoring path (prediction summaries, scratch reuse, index pruning) must
// reproduce scores EXACTLY — floating-point accumulation order included —
// so a hash change here is a correctness regression unless the PR
// deliberately changes scheduling policy, in which case the new values
// must be justified in the PR description and updated together.
var goldenPlacements = map[SchedulerName]uint64{
	NameOptum:    0x0d4fcd25ba6186c8,
	NameRCLike:   0xd7a385e05d8e3d42,
	NameNSigma:   0x04c997864d9a3c13,
	NameBorgLike: 0x3d41ebb87180c93d,
	NameMedea:    0x68c6fe639fe630c1,
	NameKubeLike: 0x45332a2555a1e998,
	NameAlibaba:  0x72da2df3fd080b9a,
}

// placementHash digests the deterministic placement outcome of a run.
func placementHash(res *sim.Result) uint64 {
	ids := make([]int, 0, len(res.NodeOf))
	for id := range res.NodeOf {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h := fnv.New64a()
	buf := make([]byte, 0, 16)
	put := func(v int) {
		buf = buf[:0]
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
		h.Write(buf)
	}
	put(res.Placed)
	put(res.Pending)
	for _, id := range ids {
		put(id)
		put(res.NodeOf[id])
	}
	return h.Sum64()
}

func TestGoldenPlacements(t *testing.T) {
	s := quickSetup(t)
	for _, name := range GoldenSchedulers {
		res := s.RunScheduler(name, core.DefaultOptions())
		got := placementHash(res)
		if want := goldenPlacements[name]; got != want {
			t.Errorf("%s: placement hash %#016x, want %#016x (placed=%d pending=%d) — "+
				"scores moved; see goldenPlacements doc before updating",
				name, got, want, res.Placed, res.Pending)
		}
	}
}
