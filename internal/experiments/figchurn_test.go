package experiments

import (
	"testing"

	"unisched/internal/chaos"
)

func TestFigChurnAcceptance(t *testing.T) {
	s := quickSetup(t)
	evals := FigChurn(s, nil, chaos.Rates{}, nil) // defaults: Optum vs Alibaba, DefaultRates
	if len(evals) != 2 {
		t.Fatalf("got %d churn evals", len(evals))
	}
	var optum *ChurnEval
	for i := range evals {
		ev := &evals[i]
		// Zero lost pods: under churn every scheduler/testbed combination
		// must account for every submitted pod — placed, pending at the
		// end, or evicted-with-exhausted-retries.
		if ev.LostPods != 0 {
			t.Errorf("%s lost %d pods under churn", ev.Name, ev.LostPods)
		}
		if ev.FaultEvents == 0 || ev.Evictions == 0 {
			t.Errorf("%s saw no faults (%d events, %d evictions) — injector not wired",
				ev.Name, ev.FaultEvents, ev.Evictions)
		}
		if ev.Reschedules+ev.Exhausted > ev.Evictions {
			t.Errorf("%s: reschedules %d + exhausted %d exceed evictions %d",
				ev.Name, ev.Reschedules, ev.Exhausted, ev.Evictions)
		}
		if ev.MaxDownNodes == 0 {
			t.Errorf("%s never saw a down node under default crash rates", ev.Name)
		}
		if ev.Name == NameOptum {
			optum = ev
		}
	}
	if optum == nil {
		t.Fatal("no Optum row")
	}
	// Degraded-mode safety: even with crashes, drains and profiler
	// blackouts, Optum's conservative fallback keeps capacity violations
	// essentially at zero.
	if optum.ViolationRate >= 0.01 {
		t.Errorf("Optum violation rate under churn = %v, want < 0.01", optum.ViolationRate)
	}
	// Displaced pods actually come back.
	if optum.Reschedules == 0 {
		t.Error("Optum rescheduled nothing after displacement")
	}
}

func TestFigChurnIdenticalFaultStreams(t *testing.T) {
	// Every scheduler in one FigChurn call must face the same fault
	// schedule: same seed, same injector construction.
	s := quickSetup(t)
	schedule := []chaos.Event{
		{At: 1800, Kind: chaos.NodeFail, NodeID: 1},
		{At: 3600, Kind: chaos.NodeRecover, NodeID: 1},
	}
	evals := FigChurn(s, schedule, chaos.Rates{}, nil)
	for _, ev := range evals {
		if ev.FaultEvents != len(schedule) {
			t.Errorf("%s fired %d events, want %d", ev.Name, ev.FaultEvents, len(schedule))
		}
		if ev.Evictions != ev.Result.Disruption.Evictions {
			t.Errorf("%s eval/result eviction mismatch", ev.Name)
		}
	}
}
