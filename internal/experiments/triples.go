package experiments

import (
	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/predictor"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/sim"
)

// AblationTriples quantifies the §4.2.2 triple-wise ERO extension against
// the default pairwise profiling: prediction tightness (mean absolute
// error and mean over-estimation) and the profiling cost (observed
// combination counts).
type AblationTriples struct {
	PairMeanAbs, TripleMeanAbs   float64
	PairMeanOver, TripleMeanOver float64
	Pairs, Triples               int
	Samples                      int
}

// RunAblationTriples builds a fresh collector with triple observation
// enabled, replays the workload under the baseline, and evaluates both
// predictor variants against next-interval truth on the same hosts.
func RunAblationTriples(s *Setup) AblationTriples {
	col := profiler.NewCollector(s.Scale.Seed)
	col.ERO().EnableTriples(2)
	warm := cluster.New(s.Workload.Nodes, cluster.DefaultPhysics())
	sim.Run(s.Workload, warm, sched.NewAlibabaLike(warm, s.Scale.Seed),
		sim.Config{Collector: col})

	pair := predictor.NewOptum(col.ERO())
	triple := predictor.NewOptum(col.ERO())
	triple.UseTriples = true

	var absSum, overSum [2]float64
	var n int
	c := cluster.New(s.Workload.Nodes, cluster.DefaultPhysics())
	pendingVals := map[int][2]float64{}
	cfg := sim.Config{OnTick: func(t int64, snaps []cluster.NodeSnapshot) {
		for i := range snaps {
			snap := &snaps[i]
			if vals, ok := pendingVals[snap.Node.Node.ID]; ok && snap.Usage.CPU > 0.05 {
				for k := 0; k < 2; k++ {
					e := predictor.Error(vals[k], snap.Usage.CPU)
					if e > 0 {
						overSum[k] += e
					}
					if e < 0 {
						e = -e
					}
					absSum[k] += e
				}
				n++
			}
		}
		pendingVals = map[int][2]float64{}
		for i := range snaps {
			snap := &snaps[i]
			if len(snap.Pods) == 0 {
				continue
			}
			pendingVals[snap.Node.Node.ID] = [2]float64{
				pair.PredictCPU(snap.Node),
				triple.PredictCPU(snap.Node),
			}
		}
	}}
	schd := s.buildScheduler(NameAlibaba, c, core.DefaultOptions())
	sim.Run(s.Workload, c, schd, cfg)

	out := AblationTriples{
		Pairs:   col.ERO().Pairs(),
		Triples: col.ERO().Triples(),
		Samples: n,
	}
	if n > 0 {
		out.PairMeanAbs = 100 * absSum[0] / float64(n)
		out.TripleMeanAbs = 100 * absSum[1] / float64(n)
		out.PairMeanOver = 100 * overSum[0] / float64(n)
		out.TripleMeanOver = 100 * overSum[1] / float64(n)
	}
	return out
}
