package experiments

import (
	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/mlearn"
	"unisched/internal/predictor"
	"unisched/internal/profiler"
	"unisched/internal/sim"
	"unisched/internal/stats"
)

// The ablations below probe the design decisions DESIGN.md calls out:
// pairwise ERO vs per-pod P99 profiles, bucketized vs raw regression
// targets, PPO sampling vs full host scans, and the joint CPUxmem score
// versus a CPU-only score.

// AblationERO compares the Optum pairwise predictor against Resource
// Central's per-pod P99 sum on identical hosts: mean absolute CPU
// prediction error (percent) for each.
type AblationERO struct {
	OptumMeanAbs float64
	RCMeanAbs    float64
	// Under-estimation rates (fraction of samples below -10 %): the
	// safety axis on which the pairwise predictor wins.
	OptumUnderRate float64
	RCUnderRate    float64
	Samples        int
}

// RunAblationERO measures both predictors over a warmed baseline replay.
func RunAblationERO(s *Setup) AblationERO {
	preds := []predictor.Predictor{
		predictor.NewOptum(s.Profiles.ERO),
		predictor.ResourceCentral{},
	}
	var sums [2]float64
	var unders [2]int
	var n int
	c := cluster.New(s.Workload.Nodes, cluster.DefaultPhysics())
	pendingVals := map[int][2]float64{}
	cfg := sim.Config{OnTick: func(t int64, snaps []cluster.NodeSnapshot) {
		for i := range snaps {
			snap := &snaps[i]
			if vals, ok := pendingVals[snap.Node.Node.ID]; ok && snap.Usage.CPU > 0.05 {
				for k := range preds {
					e := predictor.Error(vals[k], snap.Usage.CPU)
					if e < -0.1 {
						unders[k]++
					}
					if e < 0 {
						e = -e
					}
					sums[k] += 100 * e
				}
				n++
			}
		}
		pendingVals = map[int][2]float64{}
		for i := range snaps {
			snap := &snaps[i]
			if len(snap.Pods) == 0 {
				continue
			}
			pendingVals[snap.Node.Node.ID] = [2]float64{
				preds[0].PredictCPU(snap.Node),
				preds[1].PredictCPU(snap.Node),
			}
		}
	}}
	schd := s.buildScheduler(NameAlibaba, c, core.DefaultOptions())
	sim.Run(s.Workload, c, schd, cfg)
	out := AblationERO{Samples: n}
	if n > 0 {
		out.OptumMeanAbs = sums[0] / float64(n)
		out.RCMeanAbs = sums[1] / float64(n)
		out.OptumUnderRate = float64(unders[0]) / float64(n)
		out.RCUnderRate = float64(unders[1]) / float64(n)
	}
	return out
}

// AblationBucketize compares profiler accuracy with and without the
// §4.2.1 target discretization.
type AblationBucketize struct {
	BucketizedLSMAPE float64 // mean per-app LS MAPE with 25-bucket targets
	RawLSMAPE        float64 // same with raw continuous targets
}

// RunAblationBucketize trains RF profiles both ways on the setup's samples.
// Raw targets are evaluated against raw truths, bucketized against
// bucketized, mirroring what each protocol would deploy.
func RunAblationBucketize(s *Setup) (AblationBucketize, error) {
	bucketized, err := s.Collector.TrainInterference(profiler.DefaultFactory(), 0.25)
	if err != nil {
		return AblationBucketize{}, err
	}
	raw, err := s.Collector.TrainInterference(func(seed int64) mlearn.Regressor {
		return mlearn.NewForest(20, seed)
	}, 0.25)
	if err != nil {
		return AblationBucketize{}, err
	}
	mean := func(ms map[string]*profiler.AppModel) float64 {
		var xs []float64
		for _, m := range ms {
			xs = append(xs, m.MAPE)
		}
		return stats.Mean(xs)
	}
	return AblationBucketize{
		BucketizedLSMAPE: mean(bucketized.LS),
		RawLSMAPE:        mean(raw.LS),
	}, nil
}

// AblationPPO compares PPO-sampled node selection against a full scan:
// scheduling latency and end-to-end quality.
type AblationPPO struct {
	SampledMeanMs  float64
	FullMeanMs     float64
	SampledImprove float64 // mean utilization improvement (pp)
	FullImprove    float64
	SampledPSIViol float64
	FullPSIViol    float64
}

// RunAblationPPO runs Optum twice on the workload: once with the 5 %
// sample, once scoring every host.
func RunAblationPPO(s *Setup) AblationPPO {
	run := func(full bool) (SchedulerEval, float64) {
		opt := core.DefaultOptions()
		opt.FullScan = full
		res := s.RunScheduler(NameOptum, opt)
		lat := 1000 * stats.Mean(res.SchedLatency) // ms
		return Evaluate(s, res), lat
	}
	sampled, sLat := run(false)
	fullEv, fLat := run(true)
	return AblationPPO{
		SampledMeanMs: sLat, FullMeanMs: fLat,
		SampledImprove: sampled.MeanImprovement, FullImprove: fullEv.MeanImprovement,
		SampledPSIViol: sampled.PSIViolationRate, FullPSIViol: fullEv.PSIViolationRate,
	}
}

// AblationScoreForm compares the joint CPUxmem utilization term of Eq. 11
// against a CPU-only objective by measuring memory stranding: how much
// memory stays unused on busy hosts under each.
type AblationScoreForm struct {
	JointMemBusy   float64 // mean busy-host memory utilization (joint score)
	CPUOnlyMemBusy float64
	JointImprove   float64
	CPUOnlyImprove float64
}

// RunAblationScoreForm runs Optum with the Eq. 11 joint utilization term
// and again with CPUOnlyScore enabled, comparing memory utilization on
// busy hosts and the overall improvement.
func RunAblationScoreForm(s *Setup) AblationScoreForm {
	joint := Evaluate(s, s.RunScheduler(NameOptum, core.DefaultOptions()))

	cpuOnly := func() *sim.Result {
		c := cluster.New(s.Workload.Nodes, cluster.DefaultPhysics())
		o := core.New(c, s.Profiles, core.DefaultOptions(), s.Scale.Seed+100)
		o.Opt.CPUOnlyScore = true
		return sim.Run(s.Workload, c, o, sim.Config{})
	}
	cpuRes := Evaluate(s, cpuOnly())
	return AblationScoreForm{
		JointMemBusy:   stats.Mean(joint.Result.MemUtilBusy),
		CPUOnlyMemBusy: stats.Mean(cpuRes.Result.MemUtilBusy),
		JointImprove:   joint.MeanImprovement,
		CPUOnlyImprove: cpuRes.MeanImprovement,
	}
}
