package experiments

import (
	"unisched/internal/core"
	"unisched/internal/sim"
	"unisched/internal/stats"
)

// SchedulerEval is one scheduler's Fig. 19 + Fig. 20 row.
type SchedulerEval struct {
	Name SchedulerName

	// ImprovementSeries is the per-tick CPU-utilization improvement over
	// the Alibaba baseline, in percentage points over busy hosts (Fig. 19a).
	ImprovementSeries []float64
	Times             []int64
	// MeanImprovement summarizes the series after warm-up.
	MeanImprovement float64
	// GoodputImprovement is the same comparison on effective work rate
	// (LS usage + BE progress) over busy hosts. Raw utilization counts
	// contention-burnt cycles as "used", so an over-packing scheduler can
	// inflate it; goodput cannot be gamed that way.
	GoodputImprovement float64

	// ViolationRate is the mean per-(host, tick) resource-usage violation
	// rate (Fig. 19b).
	ViolationRate float64

	// PSIViolationRate is the fraction of LS pods whose worst PSI exceeds
	// what they saw under the baseline (Fig. 20a: Optum keeps >97 % of LS
	// pods at or below baseline PSI).
	PSIViolationRate float64
	// PSIIncreaseCDF is the distribution of per-pod PSI increase (new -
	// baseline), for the Fig. 20a curve.
	PSIIncreaseCDF *stats.CDF
	// CTViolationRate is the mean over BE applications of the fraction of
	// pods completing later than under the baseline (Fig. 20b).
	CTViolationRate float64

	// MeanWait and MaxWait summarize scheduling delay (§5.4 reports the
	// delay staying below ~10 s under Optum).
	MeanWait, MaxWait float64

	Result *sim.Result
}

// RunEvaluation replays the workload under every §5.1 scheduler and
// compares against the setup's baseline run — producing both Fig. 19 and
// Fig. 20 in one pass.
func RunEvaluation(s *Setup, names []SchedulerName) []SchedulerEval {
	if len(names) == 0 {
		names = EvalSchedulers
	}
	out := make([]SchedulerEval, 0, len(names))
	for _, name := range names {
		res := s.RunScheduler(name, core.DefaultOptions())
		out = append(out, Evaluate(s, res))
	}
	return out
}

// Evaluate compares one run against the setup's baseline.
func Evaluate(s *Setup, res *sim.Result) SchedulerEval {
	base := s.Baseline
	ev := SchedulerEval{Name: SchedulerName(res.Scheduler), Result: res, Times: res.Times}

	// Fig 19a: utilization improvement over busy hosts, percentage points.
	n := len(res.CPUUtilBusy)
	if len(base.CPUUtilBusy) < n {
		n = len(base.CPUUtilBusy)
	}
	warm := n / 4 // skip ramp-up
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		d := 100 * (res.CPUUtilBusy[i] - base.CPUUtilBusy[i])
		ev.ImprovementSeries = append(ev.ImprovementSeries, d)
		if i >= warm {
			sum += d
			cnt++
		}
	}
	if cnt > 0 {
		ev.MeanImprovement = sum / float64(cnt)
	}
	var gsum float64
	var gcnt int
	gn := len(res.GoodputBusy)
	if len(base.GoodputBusy) < gn {
		gn = len(base.GoodputBusy)
	}
	for i := gn / 4; i < gn; i++ {
		gsum += 100 * (res.GoodputBusy[i] - base.GoodputBusy[i])
		gcnt++
	}
	if gcnt > 0 {
		ev.GoodputImprovement = gsum / float64(gcnt)
	}

	// Fig 19b: violation rate.
	ev.ViolationRate = stats.Mean(res.Violation)

	// Fig 20a: PSI violations vs baseline, per LS pod. A small absolute
	// tolerance keeps sampling noise in near-zero PSI values from counting
	// as degradation.
	const psiTol = 0.05
	var worse, total int
	var increases []float64
	for id, psi := range res.MaxPSI {
		basePSI, ok := base.MaxPSI[id]
		if !ok {
			continue
		}
		total++
		increases = append(increases, psi-basePSI)
		if psi > basePSI+psiTol {
			worse++
		}
	}
	if total > 0 {
		ev.PSIViolationRate = float64(worse) / float64(total)
	}
	ev.PSIIncreaseCDF = stats.NewCDF(increases)

	// Fig 20b: mean per-app CT violation rate.
	type appCT struct{ worse, total int }
	byApp := map[string]*appCT{}
	for id, ct := range res.BECT {
		baseCT, ok := base.BECT[id]
		if !ok {
			continue
		}
		app := s.Workload.Pods[id].AppID
		a := byApp[app]
		if a == nil {
			a = &appCT{}
			byApp[app] = a
		}
		a.total++
		if ct > baseCT*1.05 {
			a.worse++
		}
	}
	var rates []float64
	for _, a := range byApp {
		if a.total > 0 {
			rates = append(rates, float64(a.worse)/float64(a.total))
		}
	}
	ev.CTViolationRate = stats.Mean(rates)

	// Scheduling delay.
	var waits []float64
	for _, pw := range res.Waits {
		if pw.SLO.Explicit() {
			waits = append(waits, float64(pw.Wait))
		}
	}
	ev.MeanWait = stats.Mean(waits)
	ev.MaxWait = stats.Max(waits)
	return ev
}

// Fig21Point is one (omega_o, omega_b) sensitivity cell.
type Fig21Point struct {
	OmegaO, OmegaB   float64
	MeanImprovement  float64 // Fig 21a
	CTViolationRate  float64 // Fig 21b
	PSIViolationRate float64 // Fig 21c
}

// Fig21Sensitivity sweeps the objective weights over the given grid
// (§5.5 uses {0.1, 0.3, 0.5, 0.7, 0.9}²).
func Fig21Sensitivity(s *Setup, grid []float64) []Fig21Point {
	if len(grid) == 0 {
		grid = []float64{0.1, 0.5, 0.9}
	}
	var out []Fig21Point
	for _, wo := range grid {
		for _, wb := range grid {
			opt := core.DefaultOptions()
			opt.OmegaO = wo
			opt.OmegaB = wb
			res := s.RunScheduler(NameOptum, opt)
			ev := Evaluate(s, res)
			out = append(out, Fig21Point{
				OmegaO: wo, OmegaB: wb,
				MeanImprovement:  ev.MeanImprovement,
				CTViolationRate:  ev.CTViolationRate,
				PSIViolationRate: ev.PSIViolationRate,
			})
		}
	}
	return out
}
