package quota

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"unisched/internal/trace"
)

func r(cpu, mem float64) trace.Resources { return trace.Resources{CPU: cpu, Mem: mem} }

func testConfig() Config {
	return Config{
		DefaultTenant: "shared",
		Tenants: []TenantConfig{
			{Name: "shared", Guaranteed: r(10, 10), Max: r(40, 40)},
			{
				Name: "prod", Guaranteed: r(60, 60), Max: r(100, 100),
				Queues: []QueueConfig{
					{Name: "web", Guaranteed: r(40, 40)},
					{Name: "batch", Guaranteed: r(20, 20), Max: r(30, 30)},
				},
			},
			{Name: "scratch", Guaranteed: r(5, 5)},
		},
	}
}

func mustTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestResolve(t *testing.T) {
	tr := mustTree(t, testConfig())

	web, err := tr.Resolve("prod", "web")
	if err != nil {
		t.Fatalf("resolve prod/web: %v", err)
	}
	if got := tr.LeafPath(web); got != "prod/web" {
		t.Fatalf("LeafPath = %q, want prod/web", got)
	}

	// Empty queue lands on the implicit default queue.
	def, err := tr.Resolve("prod", "")
	if err != nil {
		t.Fatalf("resolve prod/: %v", err)
	}
	if got := tr.LeafPath(def); got != "prod/default" {
		t.Fatalf("LeafPath = %q, want prod/default", got)
	}

	// Empty tenant falls back to the default tenant.
	shared, err := tr.Resolve("", "")
	if err != nil {
		t.Fatalf("resolve default tenant: %v", err)
	}
	if got := tr.LeafPath(shared); got != "shared/default" {
		t.Fatalf("LeafPath = %q, want shared/default", got)
	}

	if _, err := tr.Resolve("nosuch", ""); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant err = %v", err)
	}
	if _, err := tr.Resolve("prod", "nosuch"); !errors.Is(err, ErrUnknownQueue) {
		t.Fatalf("unknown queue err = %v", err)
	}

	// Resolution is stable: same leaf handle every time.
	web2, _ := tr.Resolve("prod", "web")
	if web2 != web {
		t.Fatalf("leaf handle changed: %d vs %d", web, web2)
	}
}

func TestNoDefaultTenantRejects(t *testing.T) {
	cfg := testConfig()
	cfg.DefaultTenant = ""
	tr := mustTree(t, cfg)
	if _, err := tr.Resolve("", ""); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("want ErrUnknownTenant without default tenant, got %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Tenants: []TenantConfig{{Name: ""}}},
		{Tenants: []TenantConfig{{Name: "a/b"}}},
		{Tenants: []TenantConfig{{Name: "t", Guaranteed: r(10, 10), Max: r(5, 20)}}},
		{Tenants: []TenantConfig{{Name: "t", Guaranteed: r(-1, 0)}}},
		{Tenants: []TenantConfig{{Name: "t", Queues: []QueueConfig{{Name: "q"}, {Name: "q"}}}}},
		{DefaultTenant: "ghost", Tenants: []TenantConfig{{Name: "t"}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}

func TestAdmitMaxEnforcement(t *testing.T) {
	tr := mustTree(t, testConfig())
	batch, _ := tr.Resolve("prod", "batch")

	// Queue max (30) trips before tenant max (100).
	if err := tr.Admit(batch, r(25, 25)); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := tr.Admit(batch, r(10, 10)); !errors.Is(err, ErrOverMax) {
		t.Fatalf("want ErrOverMax over queue cap, got %v", err)
	}
	// A fit under the cap still goes through, and the failed admit charged
	// nothing.
	if err := tr.Admit(batch, r(5, 5)); err != nil {
		t.Fatalf("admit under cap: %v", err)
	}

	// Tenant max trips even when each queue is individually unlimited.
	web, _ := tr.Resolve("prod", "web")
	if err := tr.Admit(web, r(80, 80)); !errors.Is(err, ErrOverMax) {
		t.Fatalf("want ErrOverMax over tenant cap, got %v", err)
	}

	// Releases reopen headroom.
	tr.ReleaseAdmitted(batch, r(30, 30))
	if err := tr.Admit(web, r(80, 80)); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if err := tr.checkConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroMaxIsUnlimited(t *testing.T) {
	tr := mustTree(t, Config{Tenants: []TenantConfig{{Name: "t", Guaranteed: r(1, 1)}}})
	leaf, _ := tr.Resolve("t", "")
	if err := tr.Admit(leaf, r(1e6, 1e6)); err != nil {
		t.Fatalf("zero max should be unlimited: %v", err)
	}
}

func TestSharesAndOrdering(t *testing.T) {
	tr := mustTree(t, testConfig())
	web, _ := tr.Resolve("prod", "web")
	shared, _ := tr.Resolve("shared", "")

	// prod/web at 30 of 40 guaranteed -> queue share 0.75, tenant 30/60=0.5.
	tr.MarkPlaced(web, 1, r(30, 30), false)
	ts, qs := tr.ShareOf(web)
	if math.Abs(ts-0.5) > 1e-12 || math.Abs(qs-0.75) > 1e-12 {
		t.Fatalf("ShareOf(web) = %v, %v; want 0.5, 0.75", ts, qs)
	}

	// shared at 20 of 10 guaranteed -> share 2.0 (over quota).
	tr.MarkPlaced(shared, 2, r(20, 20), true)
	ts, _ = tr.ShareOf(shared)
	if math.Abs(ts-2.0) > 1e-12 {
		t.Fatalf("ShareOf(shared) tenant = %v, want 2.0", ts)
	}

	if !tr.UnderGuaranteed(web) {
		t.Fatal("prod at 0.5 share should be under guaranteed")
	}
	if tr.UnderGuaranteed(shared) {
		t.Fatal("shared at 2.0 share should not be under guaranteed")
	}
}

func TestDominantResourceShare(t *testing.T) {
	tr := mustTree(t, Config{Tenants: []TenantConfig{{Name: "t", Guaranteed: r(10, 100)}}})
	leaf, _ := tr.Resolve("t", "")
	// CPU is the dominant dimension: 8/10 vs 20/100.
	tr.MarkPlaced(leaf, 1, r(8, 20), false)
	ts, _ := tr.ShareOf(leaf)
	if math.Abs(ts-0.8) > 1e-12 {
		t.Fatalf("dominant share = %v, want 0.8", ts)
	}
}

func TestPickVictims(t *testing.T) {
	tr := mustTree(t, testConfig())
	web, _ := tr.Resolve("prod", "web")
	shared, _ := tr.Resolve("shared", "")
	scratch, _ := tr.Resolve("scratch", "")

	// shared: share 2.0 with BE pods 10, 11. scratch: share 4.0 with BE pod 20.
	tr.MarkPlaced(shared, 10, r(10, 10), true)
	tr.MarkPlaced(shared, 11, r(10, 10), true)
	tr.MarkPlaced(scratch, 20, r(20, 20), true)
	// prod holds a non-BE pod — never a victim.
	tr.MarkPlaced(web, 30, r(10, 10), false)

	// Most over-share tenant (scratch, 4.0) is tapped first.
	vs := tr.PickVictims(web, r(15, 15), 4)
	if len(vs) != 1 || vs[0].PodID != 20 {
		t.Fatalf("victims = %+v, want [pod 20]", vs)
	}

	// Larger need spills into shared, ascending pod ID.
	vs = tr.PickVictims(web, r(25, 25), 4)
	if len(vs) != 2 || vs[0].PodID != 20 || vs[1].PodID != 10 {
		t.Fatalf("victims = %+v, want pods [20 10]", vs)
	}

	// maxN bounds selection.
	vs = tr.PickVictims(web, r(1000, 1000), 1)
	if len(vs) != 1 {
		t.Fatalf("maxN=1 got %d victims", len(vs))
	}

	// The requesting tenant's own BE pods are never picked.
	vs = tr.PickVictims(shared, r(1000, 1000), 10)
	for _, v := range vs {
		if v.PodID == 10 || v.PodID == 11 {
			t.Fatalf("picked the requester's own pod: %+v", v)
		}
	}

	// Under-share tenants are untouchable: clear scratch, shrink shared
	// below guarantee.
	tr.UnmarkPlaced(scratch, 20, r(20, 20))
	tr.UnmarkPlaced(shared, 10, r(10, 10))
	tr.UnmarkPlaced(shared, 11, r(10, 10))
	tr.MarkPlaced(shared, 12, r(5, 5), true)
	if vs := tr.PickVictims(web, r(100, 100), 10); len(vs) != 0 {
		t.Fatalf("picked victims from under-share tenants: %+v", vs)
	}
}

func TestCRUDAndCanonicalConfig(t *testing.T) {
	tr := mustTree(t, testConfig())
	h0 := tr.ConfigHash()
	if h0 == "" {
		t.Fatal("empty config hash")
	}

	// Adding a tenant changes the hash; a rebuilt tree matches it.
	if err := tr.SetTenant(TenantConfig{Name: "ml", Guaranteed: r(15, 15)}); err != nil {
		t.Fatalf("SetTenant: %v", err)
	}
	h1 := tr.ConfigHash()
	if h1 == h0 {
		t.Fatal("hash unchanged after SetTenant")
	}
	rebuilt := mustTree(t, tr.CanonicalConfig())
	if rebuilt.ConfigHash() != h1 {
		t.Fatalf("rebuilt hash %s != %s", rebuilt.ConfigHash(), h1)
	}

	// Updating guarantees in place keeps leaf handles valid.
	ml, _ := tr.Resolve("ml", "")
	if err := tr.SetTenant(TenantConfig{Name: "ml", Guaranteed: r(30, 30)}); err != nil {
		t.Fatalf("update: %v", err)
	}
	ml2, _ := tr.Resolve("ml", "")
	if ml2 != ml {
		t.Fatalf("leaf handle changed across update: %d vs %d", ml, ml2)
	}

	// Deletion: blocked while in use, allowed when drained, revivable.
	if err := tr.Admit(ml, r(1, 1)); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := tr.DeleteTenant("ml"); !errors.Is(err, ErrInUse) {
		t.Fatalf("delete in-use: %v", err)
	}
	tr.ReleaseAdmitted(ml, r(1, 1))
	if err := tr.DeleteTenant("ml"); err != nil {
		t.Fatalf("delete drained: %v", err)
	}
	if _, err := tr.Resolve("ml", ""); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("resolve deleted tenant: %v", err)
	}
	if tr.ConfigHash() != h0 {
		t.Fatal("hash should return to pre-add value after delete")
	}
	if err := tr.DeleteTenant("shared"); err == nil {
		t.Fatal("deleting the default tenant should fail")
	}
	// Revival reuses the tombstoned subtree: the old handle works again.
	if err := tr.SetTenant(TenantConfig{Name: "ml", Guaranteed: r(5, 5)}); err != nil {
		t.Fatalf("revive: %v", err)
	}
	ml3, err := tr.Resolve("ml", "")
	if err != nil || ml3 != ml {
		t.Fatalf("revived handle = %d (err %v), want %d", ml3, err, ml)
	}
}

func TestSnapshot(t *testing.T) {
	tr := mustTree(t, testConfig())
	web, _ := tr.Resolve("prod", "web")
	if err := tr.Admit(web, r(10, 10)); err != nil {
		t.Fatal(err)
	}
	tr.MarkPlaced(web, 1, r(10, 10), false)
	tr.NoteShed(web)

	snap := tr.Snapshot()
	if snap.ConfigHash != tr.ConfigHash() {
		t.Fatal("snapshot hash mismatch")
	}
	if len(snap.Root.Children) != 3 {
		t.Fatalf("want 3 tenants, got %d", len(snap.Root.Children))
	}
	// Tenants sorted by name: prod, scratch, shared.
	prod := snap.Root.Children[0]
	if prod.Name != "prod" {
		t.Fatalf("first tenant = %q", prod.Name)
	}
	if prod.Placed.CPU != 10 || prod.Admitted.CPU != 10 {
		t.Fatalf("prod usage = %+v / %+v", prod.Placed, prod.Admitted)
	}
	if prod.PlacedPods != 1 || prod.ShedPods != 1 {
		t.Fatalf("prod counters: placed=%d shed=%d", prod.PlacedPods, prod.ShedPods)
	}
	if snap.Root.Placed.CPU != 10 {
		t.Fatalf("root placed = %+v", snap.Root.Placed)
	}
}

// TestConservationProperty churns the tree with random admissions,
// placements, preemptions, removals, and CRUD, checking after every step
// that each interior node's usage equals the sum over its children.
func TestConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := mustTree(t, testConfig())

	leaves := []string{"shared/", "prod/web", "prod/batch", "prod/", "scratch/"}
	type livePod struct {
		leaf   int32
		req    trace.Resources
		placed bool
	}
	pods := make(map[int]*livePod)
	next := 1

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // admit a new pod
			name := leaves[rng.Intn(len(leaves))]
			tenant, queue := name[:len(name)-1], ""
			for i := 0; i < len(name); i++ {
				if name[i] == '/' {
					tenant, queue = name[:i], name[i+1:]
					break
				}
			}
			leaf, err := tr.Resolve(tenant, queue)
			if err != nil {
				break // tenant may be deleted this instant
			}
			req := r(float64(rng.Intn(8)+1), float64(rng.Intn(8)+1))
			if tr.Admit(leaf, req) == nil {
				pods[next] = &livePod{leaf: leaf, req: req}
				next++
			}
		case op < 6: // place a queued pod
			for id, p := range pods {
				if !p.placed {
					tr.MarkPlaced(p.leaf, id, p.req, rng.Intn(2) == 0)
					p.placed = true
					break
				}
			}
		case op < 8: // remove a pod terminally
			for id, p := range pods {
				if p.placed {
					tr.UnmarkPlaced(p.leaf, id, p.req)
				}
				tr.ReleaseAdmitted(p.leaf, p.req)
				delete(pods, id)
				break
			}
		case op < 9: // preempt: victims are unplaced but stay admitted
			var anyLeaf int32
			for _, p := range pods {
				anyLeaf = p.leaf
				break
			}
			for _, v := range tr.PickVictims(anyLeaf, r(10, 10), 2) {
				if p := pods[v.PodID]; p != nil && p.placed {
					tr.UnmarkPlaced(v.Leaf, v.PodID, v.Req)
					tr.NotePreempted(v.Leaf)
					p.placed = false
				}
			}
		default: // CRUD churn on a side tenant
			if rng.Intn(2) == 0 {
				_ = tr.SetTenant(TenantConfig{Name: "churn", Guaranteed: r(float64(rng.Intn(20)+1), 5)})
			} else {
				_ = tr.DeleteTenant("churn")
			}
		}
		if err := tr.checkConservation(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}

	// Drain everything: usage must return exactly to zero.
	for id, p := range pods {
		if p.placed {
			tr.UnmarkPlaced(p.leaf, id, p.req)
		}
		tr.ReleaseAdmitted(p.leaf, p.req)
	}
	snap := tr.Snapshot()
	if snap.Root.Admitted.CPU != 0 || snap.Root.Admitted.Mem != 0 ||
		snap.Root.Placed.CPU != 0 || snap.Root.Placed.Mem != 0 {
		t.Fatalf("drained tree not empty: %+v / %+v", snap.Root.Admitted, snap.Root.Placed)
	}
	if err := tr.checkConservation(); err != nil {
		t.Fatal(err)
	}
}
