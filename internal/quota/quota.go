// Package quota is the multi-tenant admission layer: a hierarchical quota
// tree (root → tenant → queue) in the YuniKorn style, where every node
// carries guaranteed and maximum resources, usage is accounted at every
// level as pods are admitted, placed, and removed, and siblings are
// ordered by fair share — usage divided by guarantee — so under-guaranteed
// tenants drain first. The tree is the engine's admission gate ahead of
// the SLO lanes (internal/engine): a submission that would push any
// ancestor past its max is shed, queued pods pop in fair-share order, and
// an under-guaranteed tenant's latency-sensitive pod may evict an
// over-quota tenant's best-effort pod through the engine's existing
// displaced-pod machinery (PickVictims chooses the victims; the engine
// executes the eviction and re-dispatch).
//
// Two usage vectors are tracked per node:
//
//   - admitted: charged when the engine accepts a submission, released
//     only when the pod reaches a terminal state (done, shed, exhausted).
//     Max enforcement runs against admitted usage, so a tenant cannot park
//     unbounded work in the queue.
//   - placed: charged while the pod actually holds resources on a node.
//     Fair-share ordering and preemption eligibility run against placed
//     usage — queued work does not change what a tenant currently owns.
//
// Conservation invariant: at every interior node, each usage vector equals
// the sum over its children, which the randomized property tests pin.
//
// The package is a stdlib-only leaf (it imports only internal/trace), so
// the engine, the daemon, and the facade can all share it.
package quota

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"unisched/internal/trace"
)

// DefaultQueue is the leaf a pod lands in when it names a tenant but no
// queue; every tenant has one implicitly.
const DefaultQueue = "default"

// Admission errors. The engine maps ErrOverMax to a shed submission (the
// tenant is over its cap; accepting would let it starve its siblings) and
// the resolution errors to hard rejects.
var (
	// ErrOverMax reports an admission that would exceed some ancestor's
	// maximum. Wrapped with the violating level's path.
	ErrOverMax = errors.New("quota: over max")
	// ErrUnknownTenant reports a pod naming no configured tenant (and the
	// tree has no default tenant to fall back to).
	ErrUnknownTenant = errors.New("quota: unknown tenant")
	// ErrUnknownQueue reports a pod naming a queue its tenant lacks.
	ErrUnknownQueue = errors.New("quota: unknown queue")
	// ErrInUse reports a tenant deletion while the tenant still holds
	// admitted usage (queued or running pods).
	ErrInUse = errors.New("quota: tenant in use")
)

// QueueConfig declares one leaf queue under a tenant.
type QueueConfig struct {
	Name string `json:"name"`
	// Guaranteed is the queue's fair-share anchor: usage below it makes
	// the queue drain ahead of its siblings.
	Guaranteed trace.Resources `json:"guaranteed"`
	// Max caps the queue's admitted usage per dimension; a zero dimension
	// is unlimited (the tenant's own cap still applies).
	Max trace.Resources `json:"max,omitempty"`
}

// TenantConfig declares one tenant subtree.
type TenantConfig struct {
	Name       string          `json:"name"`
	Guaranteed trace.Resources `json:"guaranteed"`
	Max        trace.Resources `json:"max,omitempty"`
	// Queues are the tenant's leaf queues; a "default" queue is added
	// implicitly when not declared.
	Queues []QueueConfig `json:"queues,omitempty"`
}

// Config declares the whole tree.
type Config struct {
	// DefaultTenant, when set, receives pods that carry no tenant
	// attribution; when empty such pods are rejected.
	DefaultTenant string         `json:"default_tenant,omitempty"`
	Tenants       []TenantConfig `json:"tenants"`
}

// node is one tree vertex. All fields are guarded by the owning Tree's
// mutex.
type node struct {
	name     string
	parent   *node
	children []*node
	byName   map[string]*node

	guaranteed trace.Resources
	max        trace.Resources

	admitted trace.Resources
	placed   trace.Resources

	// leafID indexes Tree.leaves for leaf nodes, -1 for interior nodes.
	leafID int32
	// bePods tracks placed best-effort pods on a leaf — the preemption
	// victim pool — with their requests.
	bePods map[int]trace.Resources

	// Tenant-level outcome counters (zero on other levels).
	placedN    int64
	shedN      int64
	preemptedN int64

	// dead marks a tombstoned node after tenant deletion: resolution
	// fails, but leaf IDs stay stable for the tree's lifetime.
	dead bool
}

// Tree is the live quota hierarchy. All methods are safe for concurrent
// use.
type Tree struct {
	mu            sync.Mutex
	root          *node
	defaultTenant string
	leaves        []*node
}

// Victim is one preemption candidate chosen by PickVictims.
type Victim struct {
	PodID int
	Leaf  int32
	Req   trace.Resources
}

func validName(s string) error {
	if s == "" {
		return errors.New("quota: empty name")
	}
	if strings.ContainsAny(s, "/\n\"") {
		return fmt.Errorf("quota: name %q contains a reserved character", s)
	}
	return nil
}

func validCaps(what string, g, m trace.Resources) error {
	if g.CPU < 0 || g.Mem < 0 || m.CPU < 0 || m.Mem < 0 {
		return fmt.Errorf("quota: %s has negative resources", what)
	}
	if (m.CPU > 0 && m.CPU < g.CPU) || (m.Mem > 0 && m.Mem < g.Mem) {
		return fmt.Errorf("quota: %s max below guaranteed", what)
	}
	return nil
}

// New builds a tree from cfg. The configuration is copied; later edits to
// cfg do not affect the tree.
func New(cfg Config) (*Tree, error) {
	t := &Tree{root: &node{name: "root", leafID: -1, byName: make(map[string]*node)}}
	t.defaultTenant = cfg.DefaultTenant
	for i := range cfg.Tenants {
		if err := t.setTenantLocked(cfg.Tenants[i]); err != nil {
			return nil, err
		}
	}
	if cfg.DefaultTenant != "" {
		if _, ok := t.root.byName[cfg.DefaultTenant]; !ok {
			return nil, fmt.Errorf("quota: default tenant %q not configured", cfg.DefaultTenant)
		}
	}
	return t, nil
}

// newChild attaches a node under parent.
func (t *Tree) newChild(parent *node, name string) *node {
	n := &node{name: name, parent: parent, leafID: -1, byName: make(map[string]*node)}
	parent.children = append(parent.children, n)
	parent.byName[name] = n
	return n
}

// makeLeaf registers n in the leaf table.
func (t *Tree) makeLeaf(n *node) {
	n.leafID = int32(len(t.leaves))
	n.bePods = make(map[int]trace.Resources)
	t.leaves = append(t.leaves, n)
}

// setTenantLocked creates or updates one tenant subtree. Updates change
// guarantees and caps in place and add new queues; existing queues absent
// from cfg keep their current caps (queue removal is deliberate work:
// delete and recreate the tenant when it is drained).
func (t *Tree) setTenantLocked(cfg TenantConfig) error {
	if err := validName(cfg.Name); err != nil {
		return err
	}
	if err := validCaps("tenant "+cfg.Name, cfg.Guaranteed, cfg.Max); err != nil {
		return err
	}
	seen := make(map[string]bool, len(cfg.Queues)+1)
	for _, q := range cfg.Queues {
		if err := validName(q.Name); err != nil {
			return err
		}
		if seen[q.Name] {
			return fmt.Errorf("quota: tenant %q declares queue %q twice", cfg.Name, q.Name)
		}
		seen[q.Name] = true
		if err := validCaps(cfg.Name+"/"+q.Name, q.Guaranteed, q.Max); err != nil {
			return err
		}
	}

	tn := t.root.byName[cfg.Name]
	if tn == nil || tn.dead {
		if tn != nil && tn.dead {
			// Revive the tombstone in place: leaf IDs stay valid.
			tn.dead = false
			for _, q := range tn.children {
				q.dead = false
			}
		} else {
			tn = t.newChild(t.root, cfg.Name)
		}
	}
	tn.guaranteed, tn.max = cfg.Guaranteed, cfg.Max

	queues := cfg.Queues
	if !seen[DefaultQueue] {
		queues = append(append([]QueueConfig(nil), queues...), QueueConfig{Name: DefaultQueue})
	}
	for _, qc := range queues {
		qn := tn.byName[qc.Name]
		if qn == nil {
			qn = t.newChild(tn, qc.Name)
			t.makeLeaf(qn)
		}
		qn.guaranteed, qn.max = qc.Guaranteed, qc.Max
		qn.dead = false
	}
	// Root guarantee is informational: the sum of its tenants'.
	var g trace.Resources
	for _, c := range t.root.children {
		if !c.dead {
			g = g.Add(c.guaranteed)
		}
	}
	t.root.guaranteed = g
	return nil
}

// SetTenant creates or updates one tenant subtree (the /v1/quotas CRUD
// surface; the engine journals the call before applying it).
func (t *Tree) SetTenant(cfg TenantConfig) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.setTenantLocked(cfg)
}

// DeleteTenant tombstones a drained tenant: resolution fails afterwards,
// and its guarantees leave the fair-share denominator. A tenant still
// holding admitted usage cannot be deleted.
func (t *Tree) DeleteTenant(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	tn := t.root.byName[name]
	if tn == nil || tn.dead {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	if tn.admitted.CPU > 0 || tn.admitted.Mem > 0 {
		return fmt.Errorf("%w: tenant %q still holds admitted usage", ErrInUse, name)
	}
	if name == t.defaultTenant {
		return fmt.Errorf("quota: tenant %q is the default tenant", name)
	}
	tn.dead = true
	for _, q := range tn.children {
		q.dead = true
	}
	var g trace.Resources
	for _, c := range t.root.children {
		if !c.dead {
			g = g.Add(c.guaranteed)
		}
	}
	t.root.guaranteed = g
	return nil
}

// Resolve maps a pod's (tenant, queue) attribution to a stable leaf
// handle. An empty tenant falls back to the default tenant; an empty queue
// means the tenant's "default" queue.
func (t *Tree) Resolve(tenant, queue string) (int32, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tenant == "" {
		if t.defaultTenant == "" {
			return -1, ErrUnknownTenant
		}
		tenant = t.defaultTenant
	}
	tn := t.root.byName[tenant]
	if tn == nil || tn.dead {
		return -1, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	if queue == "" {
		queue = DefaultQueue
	}
	qn := tn.byName[queue]
	if qn == nil || qn.dead {
		return -1, fmt.Errorf("%w: %q/%q", ErrUnknownQueue, tenant, queue)
	}
	return qn.leafID, nil
}

// leaf returns the leaf node for a handle, or nil for out-of-range IDs.
func (t *Tree) leaf(id int32) *node {
	if id < 0 || int(id) >= len(t.leaves) {
		return nil
	}
	return t.leaves[id]
}

// LeafPath names a leaf handle as "tenant/queue" (metrics labels, errors).
func (t *Tree) LeafPath(id int32) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leaf(id)
	if n == nil {
		return "?"
	}
	return n.parent.name + "/" + n.name
}

// Admit charges one admission against every level from the leaf to the
// root, or returns ErrOverMax (wrapped with the violating level) charging
// nothing. Max enforcement runs against admitted usage per dimension;
// zero max dimensions are unlimited.
func (t *Tree) Admit(id int32, req trace.Resources) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leaf(id)
	if n == nil {
		return ErrUnknownTenant
	}
	for v := n; v != nil; v = v.parent {
		next := v.admitted.Add(req)
		if (v.max.CPU > 0 && next.CPU > v.max.CPU) || (v.max.Mem > 0 && next.Mem > v.max.Mem) {
			return fmt.Errorf("%w at %s", ErrOverMax, t.pathOf(v))
		}
	}
	for v := n; v != nil; v = v.parent {
		v.admitted = v.admitted.Add(req)
	}
	return nil
}

// ReleaseAdmitted returns an admission's charge at every level — the pod
// reached a terminal state.
func (t *Tree) ReleaseAdmitted(id int32, req trace.Resources) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for v := t.leaf(id); v != nil; v = v.parent {
		v.admitted = clampNonNeg(v.admitted.Sub(req))
	}
}

// MarkPlaced charges a placement against every level and, for best-effort
// pods, registers the pod in the leaf's preemption victim pool.
func (t *Tree) MarkPlaced(id int32, podID int, req trace.Resources, be bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leaf(id)
	if n == nil {
		return
	}
	for v := n; v != nil; v = v.parent {
		v.placed = v.placed.Add(req)
	}
	if be {
		n.bePods[podID] = req
	}
	n.parent.placedN++
}

// UnmarkPlaced returns a placement's charge at every level (the pod left
// its node: completion, expiry, displacement, preemption).
func (t *Tree) UnmarkPlaced(id int32, podID int, req trace.Resources) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leaf(id)
	if n == nil {
		return
	}
	for v := n; v != nil; v = v.parent {
		v.placed = clampNonNeg(v.placed.Sub(req))
	}
	delete(n.bePods, podID)
}

// RestoreAdmitted recharges an admission during crash recovery. Unlike
// Admit it never checks max: the charge was legal when the live engine
// accepted it, and a config shrunk since must not make recovery fail.
func (t *Tree) RestoreAdmitted(id int32, req trace.Resources) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for v := t.leaf(id); v != nil; v = v.parent {
		v.admitted = v.admitted.Add(req)
	}
}

// RestorePlaced recharges a placement during crash recovery, rebuilding the
// preemption victim pool but not the tenant outcome counters (those are
// process-local diagnostics).
func (t *Tree) RestorePlaced(id int32, podID int, req trace.Resources, be bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leaf(id)
	if n == nil {
		return
	}
	for v := n; v != nil; v = v.parent {
		v.placed = v.placed.Add(req)
	}
	if be {
		n.bePods[podID] = req
	}
}

// NoteShed counts one over-max shed on the leaf's tenant.
func (t *Tree) NoteShed(id int32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := t.leaf(id); n != nil {
		n.parent.shedN++
	}
}

// share is the dominant-resource fair share: the largest placed/guaranteed
// ratio over the guaranteed dimensions. A node with no guarantee at all is
// infinitely over share as soon as it holds anything, so zero-guarantee
// tenants always drain last and are first in line for preemption.
func share(placed, guaranteed trace.Resources) float64 {
	s := 0.0
	any := false
	if guaranteed.CPU > 0 {
		s = placed.CPU / guaranteed.CPU
		any = true
	}
	if guaranteed.Mem > 0 {
		if m := placed.Mem / guaranteed.Mem; m > s {
			s = m
		}
		any = true
	}
	if !any {
		if placed.CPU > 0 || placed.Mem > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return s
}

// ShareOf returns the leaf's tenant-level and queue-level fair shares —
// the sort key the engine's admission queue drains leaves by (lowest
// first).
func (t *Tree) ShareOf(id int32) (tenant, queue float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leaf(id)
	if n == nil {
		return math.Inf(1), math.Inf(1)
	}
	return share(n.parent.placed, n.parent.guaranteed), share(n.placed, n.guaranteed)
}

// UnderGuaranteed reports whether the leaf's tenant holds less than its
// guarantee — the precondition for cross-queue preemption on the tenant's
// behalf.
func (t *Tree) UnderGuaranteed(id int32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leaf(id)
	if n == nil {
		return false
	}
	g := n.parent.guaranteed
	if g.CPU <= 0 && g.Mem <= 0 {
		return false
	}
	return share(n.parent.placed, g) < 1
}

// PickVictims selects best-effort pods of over-quota tenants (placed share
// strictly above 1) to evict on behalf of leaf id's tenant: most over-share
// tenant first, then most over-share queue, then ascending pod ID, until
// the victims' requests cover need or maxN victims are chosen. The
// requesting tenant's own pods are never picked. Selection only reads the
// tree; the caller executes the evictions (and UnmarkPlaced fires through
// the normal removal path).
func (t *Tree) PickVictims(id int32, need trace.Resources, maxN int) []Victim {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leaf(id)
	if n == nil || maxN <= 0 {
		return nil
	}
	self := n.parent

	type rankedTenant struct {
		tn *node
		s  float64
	}
	var tenants []rankedTenant
	for _, tn := range t.root.children {
		if tn == self || tn.dead {
			continue
		}
		if s := share(tn.placed, tn.guaranteed); s > 1 {
			tenants = append(tenants, rankedTenant{tn, s})
		}
	}
	sort.Slice(tenants, func(i, j int) bool {
		if tenants[i].s != tenants[j].s {
			return tenants[i].s > tenants[j].s
		}
		return tenants[i].tn.name < tenants[j].tn.name
	})

	var out []Victim
	var freed trace.Resources
	covered := func() bool {
		return (need.CPU <= 0 || freed.CPU >= need.CPU) && (need.Mem <= 0 || freed.Mem >= need.Mem)
	}
	for _, rt := range tenants {
		queues := append([]*node(nil), rt.tn.children...)
		sort.Slice(queues, func(i, j int) bool {
			si, sj := share(queues[i].placed, queues[i].guaranteed), share(queues[j].placed, queues[j].guaranteed)
			if si != sj {
				return si > sj
			}
			return queues[i].name < queues[j].name
		})
		for _, qn := range queues {
			if len(qn.bePods) == 0 {
				continue
			}
			ids := make([]int, 0, len(qn.bePods))
			for pid := range qn.bePods {
				ids = append(ids, pid)
			}
			sort.Ints(ids)
			for _, pid := range ids {
				out = append(out, Victim{PodID: pid, Leaf: qn.leafID, Req: qn.bePods[pid]})
				freed = freed.Add(qn.bePods[pid])
				if len(out) >= maxN || covered() {
					return out
				}
			}
		}
	}
	return out
}

// NotePreempted counts one victim eviction against the victim leaf's
// tenant.
func (t *Tree) NotePreempted(id int32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := t.leaf(id); n != nil {
		n.parent.preemptedN++
	}
}

func (t *Tree) pathOf(n *node) string {
	if n.parent == nil {
		return "root"
	}
	if n.parent.parent == nil {
		return n.name
	}
	return n.parent.name + "/" + n.name
}

func clampNonNeg(r trace.Resources) trace.Resources {
	if r.CPU < 0 {
		r.CPU = 0
	}
	if r.Mem < 0 {
		r.Mem = 0
	}
	return r
}

// CanonicalConfig returns the live configuration in canonical form:
// tenants and queues sorted by name, tombstoned subtrees omitted. A tree
// rebuilt from it resolves and enforces identically.
func (t *Tree) CanonicalConfig() Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	cfg := Config{DefaultTenant: t.defaultTenant}
	for _, tn := range t.root.children {
		if tn.dead {
			continue
		}
		tc := TenantConfig{Name: tn.name, Guaranteed: tn.guaranteed, Max: tn.max}
		for _, qn := range tn.children {
			if qn.dead {
				continue
			}
			tc.Queues = append(tc.Queues, QueueConfig{Name: qn.name, Guaranteed: qn.guaranteed, Max: qn.max})
		}
		sort.Slice(tc.Queues, func(i, j int) bool { return tc.Queues[i].Name < tc.Queues[j].Name })
		cfg.Tenants = append(cfg.Tenants, tc)
	}
	sort.Slice(cfg.Tenants, func(i, j int) bool { return cfg.Tenants[i].Name < cfg.Tenants[j].Name })
	return cfg
}

// MarshalCanonical serializes CanonicalConfig deterministically — the
// checkpoint payload and the basis of ConfigHash.
func (t *Tree) MarshalCanonical() ([]byte, error) {
	return json.Marshal(t.CanonicalConfig())
}

// ConfigHash is a SHA-256 over the canonical configuration: two trees with
// the same hash admit, order, and preempt identically (usage aside).
func (t *Tree) ConfigHash() string {
	b, err := t.MarshalCanonical()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// NodeSnapshot is the JSON view of one tree vertex.
type NodeSnapshot struct {
	Name       string          `json:"name"`
	Guaranteed trace.Resources `json:"guaranteed"`
	Max        trace.Resources `json:"max,omitempty"`
	Admitted   trace.Resources `json:"admitted"`
	Placed     trace.Resources `json:"placed"`
	// FairShare is the dominant-resource placed/guaranteed ratio.
	FairShare float64 `json:"fair_share"`
	// Tenant-level outcome counters.
	PlacedPods int64 `json:"placed_pods,omitempty"`
	ShedPods   int64 `json:"shed_pods,omitempty"`
	Preempted  int64 `json:"preempted_pods,omitempty"`

	Children []NodeSnapshot `json:"children,omitempty"`
}

// Snapshot is the queryable view of the whole tree.
type Snapshot struct {
	ConfigHash    string       `json:"config_hash"`
	DefaultTenant string       `json:"default_tenant,omitempty"`
	Root          NodeSnapshot `json:"root"`
}

// Snapshot captures the tree with usage and shares at every level, tenants
// and queues in name order.
func (t *Tree) Snapshot() Snapshot {
	hash := t.ConfigHash()
	t.mu.Lock()
	defer t.mu.Unlock()
	var snap func(n *node) NodeSnapshot
	snap = func(n *node) NodeSnapshot {
		fs := share(n.placed, n.guaranteed)
		if math.IsInf(fs, 1) {
			fs = -1 // JSON has no Inf; -1 marks "over share with no guarantee"
		}
		s := NodeSnapshot{
			Name:       n.name,
			Guaranteed: n.guaranteed,
			Max:        n.max,
			Admitted:   n.admitted,
			Placed:     n.placed,
			FairShare:  fs,
			PlacedPods: n.placedN,
			ShedPods:   n.shedN,
			Preempted:  n.preemptedN,
		}
		kids := append([]*node(nil), n.children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i].name < kids[j].name })
		for _, c := range kids {
			if c.dead {
				continue
			}
			s.Children = append(s.Children, snap(c))
		}
		return s
	}
	return Snapshot{ConfigHash: hash, DefaultTenant: t.defaultTenant, Root: snap(t.root)}
}

// Tenants lists the live tenant names in sorted order.
func (t *Tree) Tenants() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for _, tn := range t.root.children {
		if !tn.dead {
			out = append(out, tn.name)
		}
	}
	sort.Strings(out)
	return out
}

// TenantUsage reports one tenant's placed usage and guarantee (the
// loadgen quota check reads it through /v1/quotas).
func (t *Tree) TenantUsage(name string) (placed, guaranteed trace.Resources, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tn := t.root.byName[name]
	if tn == nil || tn.dead {
		return trace.Resources{}, trace.Resources{}, false
	}
	return tn.placed, tn.guaranteed, true
}

// checkConservation verifies the per-level sum invariant: every interior
// node's usage vectors equal the sums over its live children (tombstoned
// children must be empty). Tests call it after every random operation.
func (t *Tree) checkConservation() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(n *node) error
	walk = func(n *node) error {
		if len(n.children) == 0 {
			return nil
		}
		var adm, pl trace.Resources
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
			adm = adm.Add(c.admitted)
			pl = pl.Add(c.placed)
		}
		const eps = 1e-9
		if math.Abs(adm.CPU-n.admitted.CPU) > eps || math.Abs(adm.Mem-n.admitted.Mem) > eps {
			return fmt.Errorf("quota: %s admitted %v != children sum %v", t.pathOf(n), n.admitted, adm)
		}
		if math.Abs(pl.CPU-n.placed.CPU) > eps || math.Abs(pl.Mem-n.placed.Mem) > eps {
			return fmt.Errorf("quota: %s placed %v != children sum %v", t.pathOf(n), n.placed, pl)
		}
		return nil
	}
	return walk(t.root)
}
